// Command keddah-trace inspects a binary packet trace (written by
// keddah-capture -pcap): it reassembles flows and prints capture-wide
// statistics, the per-phase breakdown, and the top talkers — the
// first-look analysis the measurement stage of the toolchain starts from.
//
// Usage:
//
//	keddah-trace -in packets.kdh
//	keddah-trace -in packets.kdh -flows flows.csv -top 20
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"text/tabwriter"

	"keddah/internal/flows"
	"keddah/internal/pcap"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "keddah-trace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in      = flag.String("in", "packets.kdh", "packet trace input path")
		top     = flag.Int("top", 10, "number of top talkers to print")
		flowCSV = flag.String("flows", "", "optional per-flow CSV output path")
	)
	flag.Parse()

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		return err
	}

	ft := pcap.NewFlowTable(0)
	var packets int64
	var bytes int64
	var firstNs, lastNs int64
	for {
		p, err := r.ReadPacket()
		if err != nil {
			break
		}
		if packets == 0 || p.TsNs < firstNs {
			firstNs = p.TsNs
		}
		if p.TsNs > lastNs {
			lastNs = p.TsNs
		}
		packets++
		bytes += int64(p.Len)
		ft.Add(p)
	}
	records := ft.Records()
	ds := flows.NewDataset(records)

	fmt.Printf("trace: %s\n", *in)
	fmt.Printf("  packets: %d   bytes: %.1f MB   span: %.2fs   flows: %d\n",
		packets, float64(bytes)/(1<<20), float64(lastNs-firstNs)/1e9, len(records))

	// Per-phase breakdown.
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\tflows\tMB\tshare\tmedian flow KB\tp99 flow KB")
	allPhases := append(append([]flows.Phase{}, flows.AllPhases...), flows.PhaseOther)
	for _, ph := range allPhases {
		n := ds.Count(ph)
		if n == 0 {
			continue
		}
		e, err := ds.SizeSample(ph).ECDF()
		if err != nil {
			return fmt.Errorf("phase %s: %w", ph, err)
		}
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f%%\t%.1f\t%.1f\n",
			ph, n, float64(ds.Volume(ph))/(1<<20),
			100*float64(ds.Volume(ph))/float64(maxInt64(1, bytes)),
			e.Quantile(0.5)/1024, e.Quantile(0.99)/1024)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Top talkers by bytes sent.
	talkers := map[pcap.Addr]int64{}
	for _, rec := range records {
		talkers[rec.Key.Src] += rec.Bytes
	}
	type talker struct {
		addr  pcap.Addr
		bytes int64
	}
	list := make([]talker, 0, len(talkers))
	for a, b := range talkers {
		list = append(list, talker{a, b})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].bytes != list[j].bytes {
			return list[i].bytes > list[j].bytes
		}
		return list[i].addr < list[j].addr
	})
	if len(list) > *top {
		list = list[:*top]
	}
	fmt.Println("top talkers (bytes sent):")
	for _, tk := range list {
		fmt.Printf("  %-15s %10.1f MB\n", tk.addr, float64(tk.bytes)/(1<<20))
	}

	if *flowCSV != "" {
		if err := writeFlowCSV(*flowCSV, ds); err != nil {
			return fmt.Errorf("flow csv: %w", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s: %d flows\n", *flowCSV, len(records))
	}
	return nil
}

func writeFlowCSV(path string, ds *flows.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"first_s", "last_s", "src", "dst", "src_port", "dst_port", "bytes", "packets", "phase"}); err != nil {
		return err
	}
	for i, rec := range ds.Records {
		row := []string{
			strconv.FormatFloat(float64(rec.FirstNs)/1e9, 'f', 6, 64),
			strconv.FormatFloat(float64(rec.LastNs)/1e9, 'f', 6, 64),
			rec.Key.Src.String(),
			rec.Key.Dst.String(),
			strconv.Itoa(int(rec.Key.SrcPort)),
			strconv.Itoa(int(rec.Key.DstPort)),
			strconv.FormatInt(rec.Bytes, 10),
			strconv.FormatInt(rec.Packets, 10),
			string(ds.Phase(i)),
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return f.Close()
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
