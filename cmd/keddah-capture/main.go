// Command keddah-capture runs MapReduce workloads on a simulated Hadoop
// cluster, captures every flow, and writes the measurement corpus as a
// JSON trace set (and optionally the raw packet trace).
//
// Usage:
//
//	keddah-capture -workloads terasort,wordcount -input-gb 4 -runs 3 \
//	    -workers 16 -topology star -out traces.json -pcap packets.kdh
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"keddah/internal/core"
	"keddah/internal/flows"
	"keddah/internal/netsim"
	"keddah/internal/pcap"
	"keddah/internal/telemetry"
	"keddah/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "keddah-capture:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workloads  = flag.String("workloads", "terasort", "comma-separated workload profiles "+fmt.Sprint(workload.Names()))
		inputGB    = flag.Float64("input-gb", 4, "input size per run in GiB")
		runs       = flag.Int("runs", 3, "repetitions per workload")
		workers    = flag.Int("workers", 16, "worker host count")
		topology   = flag.String("topology", "star", "fabric: star | multirack | fattree")
		racks      = flag.Int("racks", 2, "rack count (multirack)")
		uplinkGbps = flag.Float64("uplink-gbps", 10, "rack uplink capacity (multirack)")
		fatTreeK   = flag.Int("fattree-k", 4, "fat-tree arity (fattree)")
		blockMB    = flag.Int64("block-mb", 128, "HDFS block size in MiB")
		repl       = flag.Int("replication", 3, "HDFS replication factor")
		transport  = flag.String("transport", "fluid", "network transport model: fluid | tcp")
		pods       = flag.Int("pods", 1, "federated pod count (each pod is its own cluster; runs stripe across pods)")
		shards     = flag.Int("shards", 0, "engine layout for multi-pod captures: 0 = serial, -1 = one engine per pod, 1..pods explicit (output is byte-identical at every setting)")
		crossPod   = flag.String("crosspod", "", "cross-pod copy pattern after each pod's last run: ring | fanin | none (multi-pod only)")
		seed       = flag.Int64("seed", 1, "simulation seed")
		out        = flag.String("out", "traces.json", "trace-set output path")
		flowsCSV   = flag.String("flows-csv", "", "optional flow-records CSV output path (the shard-determinism CI job byte-diffs this)")
		pcapOut    = flag.String("pcap", "", "optional packet trace output path (single-pod only)")
		failWorker = flag.Int("fail-worker", -1, "worker index to kill mid-session (-1 = none)")
		failAt     = flag.Float64("fail-at", 30, "failure time in seconds (with -fail-worker)")
		strict     = flag.Bool("strict-checks", false, "run the capture with the invariants layer enabled (read-only cross-layer checks; identical trace, more wall time)")
	)
	var tf telemetry.Flags
	tf.Register(flag.CommandLine)
	flag.Parse()

	spec := core.ClusterSpec{
		Topology:    *topology,
		Workers:     *workers,
		Racks:       *racks,
		UplinkGbps:  *uplinkGbps,
		FatTreeK:    *fatTreeK,
		BlockSize:   *blockMB << 20,
		Replication: *repl,
		Transport:   *transport,
		Pods:        *pods,
		Shards:      *shards,
		CrossPod:    *crossPod,
		Seed:        *seed,
	}
	if _, err := netsim.ParseTransport(*transport); err != nil {
		return err
	}
	if *pods > 1 && *pcapOut != "" {
		return fmt.Errorf("-pcap is single-pod only (the streaming packet sink has no multi-pod merge yet)")
	}
	var runSpecs []workload.RunSpec
	for _, prof := range strings.Split(*workloads, ",") {
		prof = strings.TrimSpace(prof)
		if prof == "" {
			continue
		}
		if _, err := workload.Get(prof); err != nil {
			return err
		}
		for i := 0; i < *runs; i++ {
			runSpecs = append(runSpecs, workload.RunSpec{
				Profile:    prof,
				InputBytes: int64(*inputGB * float64(1<<30)),
				JobName:    fmt.Sprintf("%s-run%d", prof, i),
				InputPath:  fmt.Sprintf("/data/%s", prof),
			})
		}
	}
	if len(runSpecs) == 0 {
		return fmt.Errorf("no workloads requested")
	}

	fmt.Fprintf(os.Stderr, "capturing %d runs on %d workers (%s)...\n", len(runSpecs), *workers, *topology)
	var opts core.CaptureOpts
	opts.StrictChecks = *strict
	if *failWorker >= 0 {
		opts.Failures = []core.FailureSpec{{WorkerIndex: *failWorker, AtNs: int64(*failAt * 1e9)}}
		fmt.Fprintf(os.Stderr, "injecting worker %d failure at %.1fs\n", *failWorker, *failAt)
	}
	tel := tf.Telemetry()
	opts.Telemetry = tel
	ts, results, err := core.CaptureWith(spec, runSpecs, opts)
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ts.WriteJSON(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	if *flowsCSV != "" {
		cf, err := os.Create(*flowsCSV)
		if err != nil {
			return err
		}
		if err := core.WriteFlowCSV(cf, ts); err != nil {
			cf.Close()
			return err
		}
		if err := cf.Close(); err != nil {
			return err
		}
	}

	if *pcapOut != "" {
		if err := writePackets(spec, runSpecs, *pcapOut); err != nil {
			return fmt.Errorf("packet trace: %w", err)
		}
	}

	// Per-run summary to stderr.
	for _, rr := range results {
		for _, round := range rr.Rounds {
			fmt.Fprintf(os.Stderr, "  %-22s in=%6.2fGB maps=%3d reds=%3d shuffle=%7.1fMB took %6.1fs\n",
				round.Name, float64(round.InputBytes)/(1<<30), round.Maps, round.Reducers,
				float64(round.ShuffleBytes)/(1<<20), float64(round.Duration())/1e9)
		}
	}
	var totalFlows int
	for _, r := range ts.Runs {
		totalFlows += len(r.Records)
	}
	ds := flows.NewDataset(ts.Background)
	fmt.Fprintf(os.Stderr, "wrote %s: %d runs, %d job flows, %d background flows\n",
		*out, len(ts.Runs), totalFlows, ds.Len())
	if ts.Stats.ReReplicatedBlocks > 0 || ts.Stats.LostContainers > 0 {
		fmt.Fprintf(os.Stderr, "failure recovery: %d blocks re-replicated (%.1f MB), %d containers lost\n",
			ts.Stats.ReReplicatedBlocks, float64(ts.Stats.ReReplicatedBytes)/(1<<20), ts.Stats.LostContainers)
	}
	return tf.Emit(tel, os.Stdout)
}

// writePackets re-runs the capture with a streaming packet sink. Runs are
// deterministic, so the packet trace corresponds exactly to the trace set.
func writePackets(spec core.ClusterSpec, runSpecs []workload.RunSpec, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := pcap.NewWriter(f)
	if err != nil {
		return err
	}
	cluster, err := spec.BuildCluster()
	if err != nil {
		return err
	}
	capture := pcap.NewStreamingCapture(w.WritePacket)
	cluster.Net.AddTap(capture)
	// Chain runs sequentially, mirroring core.Capture, so the packet
	// trace corresponds to the trace set run for run.
	var launch func(i int) error
	launch = func(i int) error {
		if i == len(runSpecs) {
			return nil
		}
		return workload.Run(cluster, runSpecs[i], i, func(workload.RunResult) {
			if err := launch(i + 1); err != nil {
				fmt.Fprintln(os.Stderr, "keddah-capture: launch:", err)
			}
		})
	}
	if err := launch(0); err != nil {
		return err
	}
	if _, err := cluster.RunToIdle(); err != nil {
		return err
	}
	if capture.Err() != nil {
		return capture.Err()
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d packet records\n", path, w.Count())
	return f.Close()
}
