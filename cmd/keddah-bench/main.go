// Command keddah-bench reproduces the paper's evaluation tables and
// figures. Each experiment (E1–E15) and ablation (A1–A3) prints the
// series/rows the corresponding paper artefact reports.
//
// Usage:
//
//	keddah-bench -list
//	keddah-bench -exp E1            # one experiment at full scale
//	keddah-bench -exp all -scale 0.25
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"keddah/internal/experiments"
)

// writeTableCSV dumps one experiment table as <dir>/<id>.csv for plotting.
func writeTableCSV(dir string, t experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, strings.ToLower(t.ID)+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return f.Close()
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "keddah-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp    = flag.String("exp", "all", "experiment id (E1..E15, A1..A3) or 'all'")
		scale  = flag.Float64("scale", 1, "input-size multiplier (1 = paper scale)")
		seed   = flag.Int64("seed", 1, "simulation seed")
		list   = flag.Bool("list", false, "list experiments and exit")
		csvDir = flag.String("csv", "", "also write each table as CSV into this directory")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-4s %s\n", id, experiments.Describe(id))
		}
		return nil
	}

	ids := experiments.IDs()
	if *exp != "all" {
		ids = []string{*exp}
	}
	cfg := experiments.Config{Scale: *scale, Seed: *seed, Out: os.Stderr}
	for _, id := range ids {
		start := time.Now()
		tables, err := experiments.Run(id, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		for _, t := range tables {
			if err := t.Fprint(os.Stdout); err != nil {
				return err
			}
			if *csvDir != "" {
				if err := writeTableCSV(*csvDir, t); err != nil {
					return fmt.Errorf("%s csv: %w", t.ID, err)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "%s done in %.1fs\n", id, time.Since(start).Seconds())
	}
	return nil
}
