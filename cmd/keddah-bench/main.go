// Command keddah-bench reproduces the paper's evaluation tables and
// figures. Each experiment (E1–E16) and ablation (A1–A3) prints the
// series/rows the corresponding paper artefact reports.
//
// Usage:
//
//	keddah-bench -list
//	keddah-bench -exp E1            # one experiment at full scale
//	keddah-bench -exp all -scale 0.25
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"keddah/internal/benchcases"
	"keddah/internal/experiments"
	"keddah/internal/telemetry"
)

// writeTableCSV dumps one experiment table as <dir>/<id>.csv for plotting.
func writeTableCSV(dir string, t experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, strings.ToLower(t.ID)+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return f.Close()
}

// benchEntry is one benchmark's machine-readable result.
type benchEntry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
}

// benchReport is the BENCH_netsim.json schema.
type benchReport struct {
	GoVersion  string       `json:"goVersion"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

// runBenchJSON executes the shared benchmark cases via testing.Benchmark
// and writes ns/op, B/op and allocs/op as JSON to path.
func runBenchJSON(path string) error {
	report := benchReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, c := range benchcases.Cases() {
		fmt.Fprintf(os.Stderr, "bench %s...\n", c.Name)
		r := testing.Benchmark(c.Fn)
		if r.N == 0 {
			return fmt.Errorf("benchmark %s failed", c.Name)
		}
		report.Benchmarks = append(report.Benchmarks, benchEntry{
			Name:        c.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "bench %s: %s %s\n", c.Name, r.String(), r.MemString())
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "keddah-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp       = flag.String("exp", "all", "experiment id (E1..E16, A1..A3) or 'all'")
		scale     = flag.Float64("scale", 1, "input-size multiplier (1 = paper scale)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		list      = flag.Bool("list", false, "list experiments and exit")
		csvDir    = flag.String("csv", "", "also write each table as CSV into this directory")
		workers   = flag.Int("parallel", 0, "experiment worker count (0 = GOMAXPROCS, 1 = serial)")
		benchJSON = flag.String("benchjson", "", "run the netsim/replay micro-benchmarks and write results as JSON to this path, then exit")
	)
	var tf telemetry.Flags
	tf.Register(flag.CommandLine)
	flag.Parse()

	if *benchJSON != "" {
		return runBenchJSON(*benchJSON)
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-4s %s\n", id, experiments.Describe(id))
		}
		return nil
	}

	ids := experiments.IDs()
	if *exp != "all" {
		ids = []string{*exp}
	}
	tel := tf.Telemetry()
	cfg := experiments.Config{Scale: *scale, Seed: *seed, Telemetry: tel}
	start := time.Now()
	results := experiments.RunAll(ids, cfg, *workers)
	// Results come back in id order whatever the completion order, so the
	// report reads identically to a serial run.
	for _, res := range results {
		if res.Err != nil {
			return fmt.Errorf("%s: %w", res.ID, res.Err)
		}
		for _, t := range res.Tables {
			if err := t.Fprint(os.Stdout); err != nil {
				return err
			}
			if *csvDir != "" {
				if err := writeTableCSV(*csvDir, t); err != nil {
					return fmt.Errorf("%s csv: %w", t.ID, err)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "%s done in %.1fs\n", res.ID, res.Elapsed.Seconds())
	}
	fmt.Fprintf(os.Stderr, "suite done in %.1fs\n", time.Since(start).Seconds())
	return tf.Emit(tel, os.Stdout)
}
