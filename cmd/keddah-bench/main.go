// Command keddah-bench reproduces the paper's evaluation tables and
// figures. Each experiment (E1–E17) and ablation (A1–A3) prints the
// series/rows the corresponding paper artefact reports.
//
// Usage:
//
//	keddah-bench -list
//	keddah-bench -exp E1            # one experiment at full scale
//	keddah-bench -exp all -scale 0.25
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"keddah/internal/benchcases"
	"keddah/internal/experiments"
	"keddah/internal/telemetry"
)

// gatedBenchmarks are the cases the CI regression gate enforces: the
// netsim hot path, the replay pipeline with and without telemetry, the
// modelling stage (fit + dataset classification), whose sort-once
// sample pipeline this gate keeps honest, and the multi-pod sharded
// capture, so the window scheduler's capture-path overhead stays within
// its budget. The TCP-transport variants are gated too, so per-flow
// window bookkeeping stays within its budget.
// CaptureTerasort/CaptureTerasortTCP are reported but not gated (their
// ns/op is dominated by one-off model fitting and too noisy for a 15%
// bound); NetsimFanInSharded is reported for the window-vs-RunAll
// comparison but gated through CaptureMultiPodSharded, which covers the
// same scheduler on the path users run.
var gatedBenchmarks = []string{
	"NetsimFanIn",
	"NetsimFanInTCP",
	"ReplayFatTree",
	"ReplayFatTreeTelemetry",
	"CaptureMultiPodSharded",
	"FitTerasort",
	"ClassifyDataset",
}

// writeTableCSV dumps one experiment table as <dir>/<id>.csv for plotting.
func writeTableCSV(dir string, t experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, strings.ToLower(t.ID)+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return f.Close()
}

// runBench executes the shared benchmark cases once and serves every
// bench flag from that single run: -benchjson writes the machine-readable
// report, -benchbaseline gates ns/op and allocs/op against a committed
// baseline, and -benchdiff records the comparison (the CI artifact).
func runBench(jsonPath, baselinePath, diffPath string) error {
	report, err := benchcases.RunReport(os.Stderr)
	if err != nil {
		return err
	}
	if jsonPath != "" {
		if err := report.WriteFile(jsonPath); err != nil {
			return err
		}
	}
	if baselinePath == "" {
		return nil
	}
	baseline, err := benchcases.LoadReport(baselinePath)
	if err != nil {
		return err
	}
	diffs, gateErr := benchcases.Gate(baseline, report, gatedBenchmarks, 0.15, 0.10)
	for _, d := range diffs {
		verdict := "ok"
		if d.Regressed || d.AllocRegressed {
			verdict = "REGRESSED"
		}
		fmt.Fprintf(os.Stderr, "gate %-24s %9.0f -> %9.0f ns/op (%.2fx)  %6d -> %6d allocs/op (%.2fx) %s\n",
			d.Name, d.BaselineNs, d.CurrentNs, d.Ratio,
			d.BaselineAllocs, d.CurrentAllocs, d.AllocRatio, verdict)
	}
	if diffPath != "" {
		if err := benchcases.WriteDiffs(diffPath, diffs); err != nil {
			return err
		}
	}
	return gateErr
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "keddah-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp       = flag.String("exp", "all", "experiment id (E1..E18, A1..A3) or 'all'")
		scale     = flag.Float64("scale", 1, "input-size multiplier (1 = paper scale)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		list      = flag.Bool("list", false, "list experiments and exit")
		csvDir    = flag.String("csv", "", "also write each table as CSV into this directory")
		workers   = flag.Int("parallel", 0, "experiment worker count (0 = GOMAXPROCS, 1 = serial)")
		benchJSON = flag.String("benchjson", "", "run the netsim/replay micro-benchmarks and write results as JSON to this path, then exit")
		benchBase = flag.String("benchbaseline", "", "compare the micro-benchmarks against this committed baseline JSON and fail on >15% ns/op or >10% allocs/op regression, then exit")
		benchDiff = flag.String("benchdiff", "", "with -benchbaseline, write the per-benchmark comparison as JSON to this path")
		strict    = flag.Bool("strict-checks", false, "run every capture with the invariants layer enabled (read-only cross-layer checks; identical results, more wall time)")
		shardsFlg = flag.Int("shards", -2, "override the engine layout of every multi-pod capture: 0 = serial, -1 = one engine per pod, 1..pods explicit (-2 = leave each experiment's default; output is byte-identical at every setting)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof format)")
		memProf   = flag.String("memprofile", "", "write a heap profile taken at exit to this file (go tool pprof format)")
	)
	var tf telemetry.Flags
	tf.Register(flag.CommandLine)
	flag.Parse()

	// Profiling brackets whatever mode runs below — experiments or the
	// bench suite — so allocation hotspots in either are attributable.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return err
		}
		defer func() {
			// Flush dead objects first so the profile shows live retained
			// memory, not garbage awaiting collection.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "keddah-bench: heap profile:", err)
			}
			f.Close()
		}()
	}

	if *benchJSON != "" || *benchBase != "" {
		return runBench(*benchJSON, *benchBase, *benchDiff)
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-4s %s\n", id, experiments.Describe(id))
		}
		return nil
	}

	ids := experiments.IDs()
	if *exp != "all" {
		ids = []string{*exp}
	}
	tel := tf.Telemetry()
	cfg := experiments.Config{Scale: *scale, Seed: *seed, Telemetry: tel, StrictChecks: *strict}
	if *shardsFlg != -2 {
		cfg.Shards = shardsFlg
	}
	start := time.Now()
	results := experiments.RunAll(ids, cfg, *workers)
	// Results come back in id order whatever the completion order, so the
	// report reads identically to a serial run.
	for _, res := range results {
		if res.Err != nil {
			return fmt.Errorf("%s: %w", res.ID, res.Err)
		}
		for _, t := range res.Tables {
			if err := t.Fprint(os.Stdout); err != nil {
				return err
			}
			if *csvDir != "" {
				if err := writeTableCSV(*csvDir, t); err != nil {
					return fmt.Errorf("%s csv: %w", t.ID, err)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "%s done in %.1fs\n", res.ID, res.Elapsed.Seconds())
	}
	fmt.Fprintf(os.Stderr, "suite done in %.1fs\n", time.Since(start).Seconds())
	return tf.Emit(tel, os.Stdout)
}
