package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"

	"keddah/internal/core"
	"keddah/internal/workload"
)

// TestDaemonSIGTERMDrain runs the real daemon body end to end: a
// SIGTERM mid-stream must stop admission (503 for new work) while the
// in-flight stream runs to a byte-perfect end, and run() must return.
func TestDaemonSIGTERMDrain(t *testing.T) {
	ts, _, err := core.Capture(core.ClusterSpec{Workers: 8, Seed: 13}, []workload.RunSpec{
		{Profile: "terasort", InputBytes: 256 << 20, JobName: "t0", InputPath: "/d/t"},
		{Profile: "terasort", InputBytes: 256 << 20, JobName: "t1", InputPath: "/d/t"},
	})
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.Fit(ts, core.FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	modelPath := t.TempDir() + "/bench.json"
	f, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := model.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// A schedule far larger than kernel socket buffers, so the stream is
	// genuinely in flight while we deliver the signal.
	spec := core.GenSpec{Workload: "terasort", Jobs: 5000, Seed: 11}
	sched, err := model.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := core.ExportJSONL(&want, sched); err != nil {
		t.Fatal(err)
	}

	addrCh := make(chan string, 1)
	onListen = func(addr string) { addrCh <- addr }
	defer func() { onListen = nil }()
	sig := make(chan os.Signal, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{
			"-addr", "127.0.0.1:0",
			"-model", "bench=" + modelPath,
			"-drain-timeout", "30s",
		}, sig, io.Discard)
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case err := <-runErr:
		t.Fatalf("daemon exited before listening: %v", err)
	}

	url := fmt.Sprintf("%s/v1/generate?workload=terasort&jobs=%d&seed=%d", base, spec.Jobs, spec.Seed)
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	got := make([]byte, 0, want.Len())
	buf := make([]byte, 64<<10)
	n, err := io.ReadFull(resp.Body, buf)
	if err != nil {
		t.Fatalf("first chunk: %v", err)
	}
	got = append(got, buf[:n]...)

	// Stream in flight: deliver the signal the process manager would.
	sig <- syscall.SIGTERM

	// Admission must stop: poll readiness until the drain takes effect.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, err := http.Get(base + "/readyz")
		if err != nil {
			t.Fatalf("readyz during drain: %v", err)
		}
		r.Body.Close()
		if r.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped to 503 after SIGTERM")
		}
		time.Sleep(10 * time.Millisecond)
	}
	r, err := http.Get(base + "/v1/generate?workload=terasort")
	if err != nil {
		t.Fatalf("new request during drain: %v", err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable || r.Header.Get("Retry-After") == "" {
		t.Fatalf("new request during drain: status %d, Retry-After %q", r.StatusCode, r.Header.Get("Retry-After"))
	}

	// The in-flight stream must finish completely and byte-identically.
	rest, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("drained stream truncated: %v", err)
	}
	got = append(got, rest...)
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("drained stream delivered %d bytes, batch export is %d", len(got), want.Len())
	}

	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after draining")
	}
}
