// Command keddah-serve runs the streaming trace-generation daemon: it
// loads fitted model libraries and serves synthetic flow schedules over
// HTTP to many concurrent clients, with admission control, per-request
// deadlines and graceful SIGTERM draining.
//
// Usage:
//
//	keddah-serve -addr :8080 -model bench=model.json \
//	    -max-streams 64 -max-queue 256 -drain-timeout 30s
//
// Endpoints: /v1/generate, /v1/mix, /v1/models, /healthz, /readyz and
// the telemetry surface (/metrics, /metrics.json, /debug/pprof/).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"keddah/internal/serve"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	if err := run(os.Args[1:], sig, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "keddah-serve:", err)
		os.Exit(1)
	}
}

// onListen, when non-nil, receives the bound address before serving
// begins — the test seam for ephemeral ports.
var onListen func(addr string)

// run is the testable daemon body: parse flags, serve until the first
// signal, drain, exit.
func run(args []string, sig <-chan os.Signal, logw io.Writer) error {
	fs := flag.NewFlagSet("keddah-serve", flag.ContinueOnError)
	fs.SetOutput(logw)
	var cfg serve.Config
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		modelDir     = fs.String("models", "", "directory resolving <name>.json model files lazily")
		defaultModel = fs.String("default-model", "", "model used when a request names none")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight streams")
	)
	fs.Func("model", "model source as name=path or a bare path (repeatable; bare paths use the file basename)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok {
			path = v
			name = strings.TrimSuffix(filepath.Base(v), ".json")
		}
		if name == "" || path == "" {
			return fmt.Errorf("model %q: want name=path", v)
		}
		if cfg.Models == nil {
			cfg.Models = make(map[string]string)
		}
		cfg.Models[name] = path
		return nil
	})
	fs.IntVar(&cfg.MaxStreams, "max-streams", 0, "concurrent stream cap (0 = 4x GOMAXPROCS)")
	fs.IntVar(&cfg.MaxQueue, "max-queue", 0, "wait-queue depth (0 = 4x max-streams, negative = no queue)")
	fs.DurationVar(&cfg.QueueWait, "queue-wait", 0, "max time a request waits for a stream slot (0 = 2s)")
	fs.DurationVar(&cfg.RequestTimeout, "request-timeout", 0, "per-request generation deadline (0 = 60s)")
	fs.DurationVar(&cfg.WriteTimeout, "write-timeout", 0, "per-chunk client write deadline (0 = 15s)")
	fs.DurationVar(&cfg.RetryAfter, "retry-after", 0, "Retry-After hint on 503 responses (0 = 1s)")
	fs.DurationVar(&cfg.NegModelTTL, "neg-ttl", 0, "how long a failed model load is remembered (0 = 5s)")
	fs.IntVar(&cfg.ChunkFlows, "chunk", 0, "flows per encoded chunk (0 = 2048)")
	fs.Int64Var(&cfg.MaxFlows, "max-flows", 0, "per-request schedule size cap (0 = 8M flows)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg.ModelDir = *modelDir
	cfg.DefaultModel = *defaultModel

	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if onListen != nil {
		onListen(ln.Addr().String())
	}
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(logw, "keddah-serve: listening on %s\n", ln.Addr())

	select {
	case err := <-serveErr:
		return err
	case got := <-sig:
		fmt.Fprintf(logw, "keddah-serve: %v: draining (up to %v)\n", got, *drainTimeout)
	}

	// Drain: stop admission, let in-flight streams finish, then force the
	// stragglers. The HTTP server shuts down afterwards so streams keep
	// their connections while draining.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		fmt.Fprintf(logw, "keddah-serve: drain deadline hit, streams aborted: %v\n", err)
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		hs.Close()
	}
	<-serveErr // always http.ErrServerClosed after Shutdown/Close
	fmt.Fprintln(logw, "keddah-serve: drained, exiting")
	return nil
}
