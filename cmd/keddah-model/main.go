// Command keddah-model fits an empirical traffic model from a captured
// trace set and writes it as JSON, printing the fitted-law table.
//
// Usage:
//
//	keddah-model -in traces.json -out model.json
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"keddah/internal/core"
	"keddah/internal/flows"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "keddah-model:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in         = flag.String("in", "traces.json", "trace-set input path")
		out        = flag.String("out", "model.json", "model output path")
		minSamples = flag.Int("min-samples", 8, "minimum flows to fit a continuous law")
	)
	flag.Parse()

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	ts, err := core.ReadTraceSet(f)
	f.Close()
	if err != nil {
		return err
	}

	model, err := core.Fit(ts, core.FitOptions{MinSamples: *minSamples})
	if err != nil {
		return err
	}

	o, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer o.Close()
	if err := model.WriteJSON(o); err != nil {
		return err
	}
	if err := o.Close(); err != nil {
		return err
	}

	// Fitted-law table.
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tphase\tsamples\tatoms\tsize law\tKS\tcount unit\tflows/unit\tvolume share")
	for _, name := range model.WorkloadNames() {
		jm := model.Jobs[name]
		for _, ph := range flows.AllPhases {
			pm, ok := jm.Phases[ph]
			if !ok {
				continue
			}
			law, err := pm.Size.Build()
			if err != nil {
				return err
			}
			atoms := "-"
			for i, a := range pm.SizeAtoms {
				s := fmt.Sprintf("%.1fMB@%.0f%%", a.Value/(1<<20), a.Weight*100)
				if i == 0 {
					atoms = s
				} else {
					atoms += " " + s
				}
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\t%.3f\t%s\t%.2f\t%.1f%%\n",
				name, ph, pm.Samples, atoms, law, pm.SizeGoF.KS, pm.Unit, pm.CountPerUnit,
				pm.VolumeShare*100)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d workload models\n", *out, len(model.Jobs))
	return nil
}
