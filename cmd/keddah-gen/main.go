// Command keddah-gen generates synthetic Hadoop traffic from a fitted
// model and either writes the flow schedule as JSON (for use with an
// external simulator) or replays it on the built-in network simulator.
//
// Usage:
//
//	keddah-gen -model model.json -workload terasort -input-gb 16 \
//	    -jobs 4 -stagger 0.25 -workers 64 -replay -topology fattree -fattree-k 8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"keddah/internal/core"
	"keddah/internal/flows"
	"keddah/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "keddah-gen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modelPath  = flag.String("model", "model.json", "fitted model input path")
		wl         = flag.String("workload", "terasort", "workload to generate")
		inputGB    = flag.Float64("input-gb", 0, "target input size in GiB (0 = model reference)")
		reducers   = flag.Int("reducers", 0, "reducer count (0 = scaled from reference)")
		jobs       = flag.Int("jobs", 1, "job instances")
		stagger    = flag.Float64("stagger", 1, "job start spacing as fraction of job duration")
		workers    = flag.Int("workers", 16, "worker hosts to spread traffic over")
		background = flag.Bool("background", false, "include cluster heartbeat traffic")
		seed       = flag.Int64("seed", 1, "generation seed")
		out        = flag.String("out", "", "schedule output path (empty = skip)")
		format     = flag.String("format", "json", "schedule format: json | jsonl | csv | ns3")
		replay     = flag.Bool("replay", false, "replay the schedule on the built-in simulator")
		shards     = flag.Int("shards", 0, "replay engine layout: 0 = plain engine, nonzero = windowed sharded scheduler (output is byte-identical)")
		topology   = flag.String("topology", "star", "replay fabric: star | multirack | fattree")
		transport  = flag.String("transport", "fluid", "replay transport model: fluid | tcp")
		racks      = flag.Int("racks", 2, "rack count (multirack)")
		uplinkGbps = flag.Float64("uplink-gbps", 10, "rack uplink capacity (multirack)")
		fatTreeK   = flag.Int("fattree-k", 4, "fat-tree arity (fattree)")
	)
	flag.Parse()

	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	model, err := core.ReadModel(f)
	f.Close()
	if err != nil {
		return err
	}

	sched, err := model.Generate(core.GenSpec{
		Workload:          *wl,
		InputBytes:        int64(*inputGB * float64(1<<30)),
		Reducers:          *reducers,
		Workers:           *workers,
		Jobs:              *jobs,
		Stagger:           *stagger,
		IncludeBackground: *background,
		Seed:              *seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %d flows\n", len(sched))

	if *out != "" {
		o, err := os.Create(*out)
		if err != nil {
			return err
		}
		switch *format {
		case "json":
			err = json.NewEncoder(o).Encode(sched)
		case "jsonl":
			err = core.ExportJSONL(o, sched)
		case "csv":
			err = core.ExportCSV(o, sched)
		case "ns3":
			err = core.ExportNS3(o, sched, *workers)
		default:
			err = fmt.Errorf("unknown format %q (json | jsonl | csv | ns3)", *format)
		}
		if err != nil {
			o.Close()
			return err
		}
		if err := o.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%s)\n", *out, *format)
	}

	if !*replay {
		return nil
	}
	if _, err := netsim.ParseTransport(*transport); err != nil {
		return err
	}
	spec := core.ClusterSpec{
		Topology:   *topology,
		Workers:    *workers,
		Racks:      *racks,
		UplinkGbps: *uplinkGbps,
		FatTreeK:   *fatTreeK,
		Transport:  *transport,
		Shards:     *shards,
		Seed:       *seed,
	}
	recs, makespan, err := core.Replay(sched, spec)
	if err != nil {
		return err
	}
	ds := flows.NewDataset(recs)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "phase\tflows\tMB\tmean flow s\n")
	for _, ph := range flows.AllPhases {
		durs := ds.Durations(ph)
		var mean float64
		for _, d := range durs {
			mean += d
		}
		if len(durs) > 0 {
			mean /= float64(len(durs))
		}
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.3f\n", ph, ds.Count(ph),
			float64(ds.Volume(ph))/(1<<20), mean)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("replay makespan: %.2fs on %s\n", float64(makespan)/1e9, *topology)
	return nil
}
