module keddah

go 1.22
