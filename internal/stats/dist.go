package stats

import (
	"errors"
	"fmt"
	"math"
)

// Family identifies a parametric distribution family.
type Family string

// Supported families. The set mirrors the candidates Keddah fits against
// captured flow statistics.
const (
	FamilyExponential Family = "exponential"
	FamilyNormal      Family = "normal"
	FamilyLogNormal   Family = "lognormal"
	FamilyGamma       Family = "gamma"
	FamilyWeibull     Family = "weibull"
	FamilyPareto      Family = "pareto"
	FamilyUniform     Family = "uniform"
	FamilyConstant    Family = "constant"
)

// Distribution is a continuous probability law. Implementations must be
// immutable after construction.
type Distribution interface {
	// Family identifies the parametric family.
	Family() Family
	// Params returns the family parameters in a fixed, documented order.
	Params() []float64
	// LogPDF returns the log density at x (−Inf outside support).
	LogPDF(x float64) float64
	// CDF returns P(X ≤ x).
	CDF(x float64) float64
	// Quantile returns the p-quantile, p ∈ (0,1).
	Quantile(p float64) float64
	// Mean returns the expectation (may be +Inf, e.g. Pareto α ≤ 1).
	Mean() float64
	// Sample draws one variate using rng.
	Sample(rng *RNG) float64
	// String renders the family with parameters.
	String() string
}

// ErrBadParam reports an invalid distribution parameter.
var ErrBadParam = errors.New("stats: invalid distribution parameter")

// ---------------------------------------------------------------- Exponential

// Exponential is the exponential law with rate λ.
type Exponential struct{ Rate float64 }

// NewExponential returns an exponential distribution with rate λ > 0.
func NewExponential(rate float64) (Exponential, error) {
	if !(rate > 0) || math.IsInf(rate, 0) {
		return Exponential{}, fmt.Errorf("%w: exponential rate %v", ErrBadParam, rate)
	}
	return Exponential{Rate: rate}, nil
}

// Family implements Distribution.
func (d Exponential) Family() Family { return FamilyExponential }

// Params returns [rate].
func (d Exponential) Params() []float64 { return []float64{d.Rate} }

// LogPDF implements Distribution.
func (d Exponential) LogPDF(x float64) float64 {
	if x < 0 {
		return math.Inf(-1)
	}
	return math.Log(d.Rate) - d.Rate*x
}

// CDF implements Distribution.
func (d Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-d.Rate * x)
}

// Quantile implements Distribution.
func (d Exponential) Quantile(p float64) float64 {
	return -math.Log1p(-p) / d.Rate
}

// Mean implements Distribution.
func (d Exponential) Mean() float64 { return 1 / d.Rate }

// Sample implements Distribution.
func (d Exponential) Sample(rng *RNG) float64 { return rng.ExpFloat64() / d.Rate }

func (d Exponential) String() string { return fmt.Sprintf("Exp(rate=%.6g)", d.Rate) }

// --------------------------------------------------------------------- Normal

// Normal is the Gaussian law with mean μ and standard deviation σ.
type Normal struct{ Mu, Sigma float64 }

// NewNormal returns a normal distribution with σ > 0.
func NewNormal(mu, sigma float64) (Normal, error) {
	if !(sigma > 0) || math.IsInf(sigma, 0) || math.IsNaN(mu) {
		return Normal{}, fmt.Errorf("%w: normal(mu=%v, sigma=%v)", ErrBadParam, mu, sigma)
	}
	return Normal{Mu: mu, Sigma: sigma}, nil
}

// Family implements Distribution.
func (d Normal) Family() Family { return FamilyNormal }

// Params returns [mu, sigma].
func (d Normal) Params() []float64 { return []float64{d.Mu, d.Sigma} }

// LogPDF implements Distribution.
func (d Normal) LogPDF(x float64) float64 {
	z := (x - d.Mu) / d.Sigma
	return -0.5*z*z - math.Log(d.Sigma) - 0.5*math.Log(2*math.Pi)
}

// CDF implements Distribution.
func (d Normal) CDF(x float64) float64 { return normCDF((x - d.Mu) / d.Sigma) }

// Quantile implements Distribution.
func (d Normal) Quantile(p float64) float64 { return d.Mu + d.Sigma*normQuantile(p) }

// Mean implements Distribution.
func (d Normal) Mean() float64 { return d.Mu }

// Sample implements Distribution.
func (d Normal) Sample(rng *RNG) float64 { return d.Mu + d.Sigma*rng.NormFloat64() }

func (d Normal) String() string { return fmt.Sprintf("Normal(mu=%.6g, sigma=%.6g)", d.Mu, d.Sigma) }

// ------------------------------------------------------------------ LogNormal

// LogNormal is the law of exp(N(μ,σ²)).
type LogNormal struct{ Mu, Sigma float64 }

// NewLogNormal returns a log-normal distribution with σ > 0.
func NewLogNormal(mu, sigma float64) (LogNormal, error) {
	if !(sigma > 0) || math.IsInf(sigma, 0) || math.IsNaN(mu) {
		return LogNormal{}, fmt.Errorf("%w: lognormal(mu=%v, sigma=%v)", ErrBadParam, mu, sigma)
	}
	return LogNormal{Mu: mu, Sigma: sigma}, nil
}

// Family implements Distribution.
func (d LogNormal) Family() Family { return FamilyLogNormal }

// Params returns [mu, sigma] of the underlying normal.
func (d LogNormal) Params() []float64 { return []float64{d.Mu, d.Sigma} }

// LogPDF implements Distribution.
func (d LogNormal) LogPDF(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	lx := math.Log(x)
	z := (lx - d.Mu) / d.Sigma
	return -0.5*z*z - lx - math.Log(d.Sigma) - 0.5*math.Log(2*math.Pi)
}

// CDF implements Distribution.
func (d LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return normCDF((math.Log(x) - d.Mu) / d.Sigma)
}

// Quantile implements Distribution.
func (d LogNormal) Quantile(p float64) float64 {
	return math.Exp(d.Mu + d.Sigma*normQuantile(p))
}

// Mean implements Distribution.
func (d LogNormal) Mean() float64 { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }

// Sample implements Distribution.
func (d LogNormal) Sample(rng *RNG) float64 {
	return math.Exp(d.Mu + d.Sigma*rng.NormFloat64())
}

func (d LogNormal) String() string {
	return fmt.Sprintf("LogNormal(mu=%.6g, sigma=%.6g)", d.Mu, d.Sigma)
}

// ---------------------------------------------------------------------- Gamma

// Gamma is the gamma law with shape k and scale θ.
type Gamma struct{ Shape, Scale float64 }

// NewGamma returns a gamma distribution with k, θ > 0.
func NewGamma(shape, scale float64) (Gamma, error) {
	if !(shape > 0) || !(scale > 0) || math.IsInf(shape, 0) || math.IsInf(scale, 0) {
		return Gamma{}, fmt.Errorf("%w: gamma(shape=%v, scale=%v)", ErrBadParam, shape, scale)
	}
	return Gamma{Shape: shape, Scale: scale}, nil
}

// Family implements Distribution.
func (d Gamma) Family() Family { return FamilyGamma }

// Params returns [shape, scale].
func (d Gamma) Params() []float64 { return []float64{d.Shape, d.Scale} }

// LogPDF implements Distribution.
func (d Gamma) LogPDF(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	lg, _ := math.Lgamma(d.Shape)
	return (d.Shape-1)*math.Log(x) - x/d.Scale - lg - d.Shape*math.Log(d.Scale)
}

// CDF implements Distribution.
func (d Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return regIncGammaLower(d.Shape, x/d.Scale)
}

// Quantile implements Distribution.
func (d Gamma) Quantile(p float64) float64 { return quantileByBisection(d, p) }

// Mean implements Distribution.
func (d Gamma) Mean() float64 { return d.Shape * d.Scale }

// Sample implements Distribution using Marsaglia–Tsang.
func (d Gamma) Sample(rng *RNG) float64 {
	k := d.Shape
	boost := 1.0
	if k < 1 {
		// Boost k above 1 and correct with U^{1/k}.
		boost = math.Pow(rng.Float64(), 1/k)
		k++
	}
	dd := k - 1.0/3
	c := 1 / math.Sqrt(9*dd)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return boost * dd * v * d.Scale
		}
		if math.Log(u) < 0.5*x*x+dd*(1-v+math.Log(v)) {
			return boost * dd * v * d.Scale
		}
	}
}

func (d Gamma) String() string {
	return fmt.Sprintf("Gamma(shape=%.6g, scale=%.6g)", d.Shape, d.Scale)
}

// -------------------------------------------------------------------- Weibull

// Weibull is the Weibull law with shape k and scale λ.
type Weibull struct{ Shape, Scale float64 }

// NewWeibull returns a Weibull distribution with k, λ > 0.
func NewWeibull(shape, scale float64) (Weibull, error) {
	if !(shape > 0) || !(scale > 0) || math.IsInf(shape, 0) || math.IsInf(scale, 0) {
		return Weibull{}, fmt.Errorf("%w: weibull(shape=%v, scale=%v)", ErrBadParam, shape, scale)
	}
	return Weibull{Shape: shape, Scale: scale}, nil
}

// Family implements Distribution.
func (d Weibull) Family() Family { return FamilyWeibull }

// Params returns [shape, scale].
func (d Weibull) Params() []float64 { return []float64{d.Shape, d.Scale} }

// LogPDF implements Distribution.
func (d Weibull) LogPDF(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	z := x / d.Scale
	return math.Log(d.Shape/d.Scale) + (d.Shape-1)*math.Log(z) - math.Pow(z, d.Shape)
}

// CDF implements Distribution.
func (d Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(x/d.Scale, d.Shape))
}

// Quantile implements Distribution.
func (d Weibull) Quantile(p float64) float64 {
	return d.Scale * math.Pow(-math.Log1p(-p), 1/d.Shape)
}

// Mean implements Distribution.
func (d Weibull) Mean() float64 {
	lg, _ := math.Lgamma(1 + 1/d.Shape)
	return d.Scale * math.Exp(lg)
}

// Sample implements Distribution.
func (d Weibull) Sample(rng *RNG) float64 {
	return d.Quantile(rng.Float64())
}

func (d Weibull) String() string {
	return fmt.Sprintf("Weibull(shape=%.6g, scale=%.6g)", d.Shape, d.Scale)
}

// --------------------------------------------------------------------- Pareto

// Pareto is the (type I) Pareto law with minimum xm and tail index α.
type Pareto struct{ Xm, Alpha float64 }

// NewPareto returns a Pareto distribution with xm, α > 0.
func NewPareto(xm, alpha float64) (Pareto, error) {
	if !(xm > 0) || !(alpha > 0) || math.IsInf(xm, 0) || math.IsInf(alpha, 0) {
		return Pareto{}, fmt.Errorf("%w: pareto(xm=%v, alpha=%v)", ErrBadParam, xm, alpha)
	}
	return Pareto{Xm: xm, Alpha: alpha}, nil
}

// Family implements Distribution.
func (d Pareto) Family() Family { return FamilyPareto }

// Params returns [xm, alpha].
func (d Pareto) Params() []float64 { return []float64{d.Xm, d.Alpha} }

// LogPDF implements Distribution.
func (d Pareto) LogPDF(x float64) float64 {
	if x < d.Xm {
		return math.Inf(-1)
	}
	return math.Log(d.Alpha) + d.Alpha*math.Log(d.Xm) - (d.Alpha+1)*math.Log(x)
}

// CDF implements Distribution.
func (d Pareto) CDF(x float64) float64 {
	if x <= d.Xm {
		return 0
	}
	return 1 - math.Pow(d.Xm/x, d.Alpha)
}

// Quantile implements Distribution.
func (d Pareto) Quantile(p float64) float64 {
	return d.Xm / math.Pow(1-p, 1/d.Alpha)
}

// Mean implements Distribution. Infinite for α ≤ 1.
func (d Pareto) Mean() float64 {
	if d.Alpha <= 1 {
		return math.Inf(1)
	}
	return d.Alpha * d.Xm / (d.Alpha - 1)
}

// Sample implements Distribution.
func (d Pareto) Sample(rng *RNG) float64 { return d.Quantile(rng.Float64()) }

func (d Pareto) String() string { return fmt.Sprintf("Pareto(xm=%.6g, alpha=%.6g)", d.Xm, d.Alpha) }

// -------------------------------------------------------------------- Uniform

// Uniform is the continuous uniform law on [A,B].
type Uniform struct{ A, B float64 }

// NewUniform returns a uniform distribution with A < B.
func NewUniform(a, b float64) (Uniform, error) {
	if !(a < b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return Uniform{}, fmt.Errorf("%w: uniform(a=%v, b=%v)", ErrBadParam, a, b)
	}
	return Uniform{A: a, B: b}, nil
}

// Family implements Distribution.
func (d Uniform) Family() Family { return FamilyUniform }

// Params returns [a, b].
func (d Uniform) Params() []float64 { return []float64{d.A, d.B} }

// LogPDF implements Distribution.
func (d Uniform) LogPDF(x float64) float64 {
	if x < d.A || x > d.B {
		return math.Inf(-1)
	}
	return -math.Log(d.B - d.A)
}

// CDF implements Distribution.
func (d Uniform) CDF(x float64) float64 {
	switch {
	case x <= d.A:
		return 0
	case x >= d.B:
		return 1
	default:
		return (x - d.A) / (d.B - d.A)
	}
}

// Quantile implements Distribution.
func (d Uniform) Quantile(p float64) float64 { return d.A + p*(d.B-d.A) }

// Mean implements Distribution.
func (d Uniform) Mean() float64 { return (d.A + d.B) / 2 }

// Sample implements Distribution.
func (d Uniform) Sample(rng *RNG) float64 { return d.A + rng.Float64()*(d.B-d.A) }

func (d Uniform) String() string { return fmt.Sprintf("Uniform(a=%.6g, b=%.6g)", d.A, d.B) }

// ------------------------------------------------------------------- Constant

// Constant is the degenerate law concentrated at a single value. Keddah
// uses it when a traffic statistic is (near-)deterministic, e.g. HDFS
// block-sized flows or fixed heartbeat intervals.
type Constant struct{ Value float64 }

// NewConstant returns the point mass at v.
func NewConstant(v float64) (Constant, error) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return Constant{}, fmt.Errorf("%w: constant %v", ErrBadParam, v)
	}
	return Constant{Value: v}, nil
}

// Family implements Distribution.
func (d Constant) Family() Family { return FamilyConstant }

// Params returns [value].
func (d Constant) Params() []float64 { return []float64{d.Value} }

// LogPDF implements Distribution. The point mass has no density; callers
// compare fits via the dedicated selection logic, which special-cases it.
func (d Constant) LogPDF(x float64) float64 {
	if x == d.Value {
		return 0
	}
	return math.Inf(-1)
}

// CDF implements Distribution.
func (d Constant) CDF(x float64) float64 {
	if x < d.Value {
		return 0
	}
	return 1
}

// Quantile implements Distribution.
func (d Constant) Quantile(float64) float64 { return d.Value }

// Mean implements Distribution.
func (d Constant) Mean() float64 { return d.Value }

// Sample implements Distribution.
func (d Constant) Sample(*RNG) float64 { return d.Value }

func (d Constant) String() string { return fmt.Sprintf("Constant(%.6g)", d.Value) }

// quantileByBisection inverts a monotone CDF numerically. Used by families
// with no closed-form quantile (gamma).
func quantileByBisection(d Distribution, p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Bracket: expand hi until CDF(hi) >= p.
	lo, hi := 0.0, 1.0
	if m := d.Mean(); m > 0 && !math.IsInf(m, 0) {
		hi = m
	}
	for d.CDF(hi) < p {
		hi *= 2
		if hi > 1e300 {
			return hi
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if d.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2
}
