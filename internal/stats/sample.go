package stats

import (
	"math"
	"slices"
	"sync"
)

// Sample is an immutable sorted-sample handle: the data sorted once at
// construction plus lazily cached moments (mean, variance, min/max,
// Σlog x, Σlog² x). Every fitter and goodness-of-fit statistic accepts
// it, so a sample that used to be copied and re-sorted once per
// candidate family and once per GoF metric is now sorted exactly once
// and shared everywhere — including across the parallel fit workers in
// internal/core (the lazy caches are synchronised, everything else is
// read-only after construction).
//
// Ownership rules: NewSample copies its input; NewSampleOwned and
// NewSampleSorted take ownership of the caller's slice, and the caller
// must not read or mutate it afterwards. Values() returns the internal
// sorted slice as a read-only view — mutating it breaks every cached
// moment and statistic derived from the Sample.
type Sample struct {
	sorted []float64

	momentsOnce sync.Once
	mom         moments

	logsOnce sync.Once
	logs     []float64 // ln(x) per sorted element; nil unless all positive
	logMom   logMoments
}

// moments holds the order-2 cache filled on first use.
type moments struct {
	mean     float64
	variance float64
}

// logMoments holds the log-domain cache filled on first use (only
// meaningful when the sample is strictly positive).
type logMoments struct {
	allPositive bool
	sumLog      float64 // Σ ln x
	sumLogSq    float64 // Σ ln² x
	meanLog     float64
	varLog      float64 // centered: Σ (ln x − meanLog)² / n
}

// NewSample copies xs, sorts the copy, and wraps it.
func NewSample(xs []float64) *Sample {
	s := make([]float64, len(xs))
	copy(s, xs)
	slices.Sort(s)
	return &Sample{sorted: s}
}

// NewSampleOwned takes ownership of xs, sorts it in place, and wraps it.
// The caller must not use xs afterwards.
func NewSampleOwned(xs []float64) *Sample {
	slices.Sort(xs)
	return &Sample{sorted: xs}
}

// NewSampleSorted wraps an already-sorted slice without copying. The
// sortedness is verified in O(n); an unsorted input is sorted in place
// rather than producing silently wrong statistics. The caller must not
// use xs afterwards.
func NewSampleSorted(xs []float64) *Sample {
	if !slices.IsSorted(xs) {
		slices.Sort(xs)
	}
	return &Sample{sorted: xs}
}

// Len returns the sample size.
func (s *Sample) Len() int { return len(s.sorted) }

// Values returns the sorted sample as a read-only view; do not modify.
func (s *Sample) Values() []float64 { return s.sorted }

// Min returns the smallest value (0 for an empty sample).
func (s *Sample) Min() float64 {
	if len(s.sorted) == 0 {
		return 0
	}
	return s.sorted[0]
}

// Max returns the largest value (0 for an empty sample).
func (s *Sample) Max() float64 {
	if len(s.sorted) == 0 {
		return 0
	}
	return s.sorted[len(s.sorted)-1]
}

func (s *Sample) moments() moments {
	s.momentsOnce.Do(func() {
		if len(s.sorted) == 0 {
			return
		}
		m := Mean(s.sorted)
		var v float64
		for _, x := range s.sorted {
			d := x - m
			v += d * d
		}
		s.mom = moments{mean: m, variance: v / float64(len(s.sorted))}
	})
	return s.mom
}

func (s *Sample) logMoments() ([]float64, logMoments) {
	s.logsOnce.Do(func() {
		n := len(s.sorted)
		if n == 0 || s.sorted[0] <= 0 {
			return // sorted: a non-positive minimum means not all positive
		}
		logs := make([]float64, n)
		var sum, sumSq float64
		for i, x := range s.sorted {
			l := math.Log(x)
			logs[i] = l
			sum += l
			sumSq += l * l
		}
		meanLog := sum / float64(n)
		var varLog float64
		for _, l := range logs {
			d := l - meanLog
			varLog += d * d
		}
		s.logs = logs
		s.logMom = logMoments{
			allPositive: true,
			sumLog:      sum,
			sumLogSq:    sumSq,
			meanLog:     meanLog,
			varLog:      varLog / float64(n),
		}
	})
	return s.logs, s.logMom
}

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 { return s.moments().mean }

// Variance returns the population variance.
func (s *Sample) Variance() float64 { return s.moments().variance }

// Std returns the population standard deviation.
func (s *Sample) Std() float64 { return math.Sqrt(s.Variance()) }

// AllPositive reports whether every value is strictly positive.
func (s *Sample) AllPositive() bool {
	return len(s.sorted) > 0 && s.sorted[0] > 0
}

// SumLog returns Σ ln x (NaN when the sample has non-positive values).
func (s *Sample) SumLog() float64 {
	_, lm := s.logMoments()
	if !lm.allPositive {
		return math.NaN()
	}
	return lm.sumLog
}

// SumLogSq returns Σ ln² x (NaN when the sample has non-positive values).
func (s *Sample) SumLogSq() float64 {
	_, lm := s.logMoments()
	if !lm.allPositive {
		return math.NaN()
	}
	return lm.sumLogSq
}

// MeanLog returns the mean of ln x (NaN for non-positive samples).
func (s *Sample) MeanLog() float64 {
	_, lm := s.logMoments()
	if !lm.allPositive {
		return math.NaN()
	}
	return lm.meanLog
}

// VarLog returns the population variance of ln x (NaN for non-positive
// samples). It is computed centered, not as Σln²x/n − mean², so
// near-constant samples cannot cancel into a negative variance.
func (s *Sample) VarLog() float64 {
	_, lm := s.logMoments()
	if !lm.allPositive {
		return math.NaN()
	}
	return lm.varLog
}

// ECDF wraps the sample as an empirical CDF without copying (the two
// share the sorted backing array). An empty sample returns
// ErrEmptySample, matching NewECDF.
func (s *Sample) ECDF() (*ECDF, error) {
	if len(s.sorted) == 0 {
		return nil, ErrEmptySample
	}
	return &ECDF{sorted: s.sorted}, nil
}

// Mean averages a slice (0 for empty). It is the single mean helper the
// rest of the toolchain shares; Sample.Mean caches it per sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
