package stats

import (
	"errors"
	"math"
	"testing"
)

// sample draws n variates from d with a fixed seed.
func sample(d Distribution, n int, seed int64) []float64 {
	rng := NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

// TestFitRecoversParameters: for every family, fitting a large sample
// drawn from known parameters recovers them within a few percent.
func TestFitRecoversParameters(t *testing.T) {
	const n = 50000
	cases := []struct {
		make func() Distribution
		tol  float64
	}{
		{func() Distribution { d, _ := NewExponential(0.35); return d }, 0.03},
		{func() Distribution { d, _ := NewNormal(5, 2); return d }, 0.03},
		{func() Distribution { d, _ := NewLogNormal(1.5, 0.6); return d }, 0.03},
		{func() Distribution { d, _ := NewGamma(2.2, 3); return d }, 0.05},
		{func() Distribution { d, _ := NewWeibull(1.4, 2.5); return d }, 0.05},
		{func() Distribution { d, _ := NewPareto(2, 2.8); return d }, 0.05},
		{func() Distribution { d, _ := NewUniform(1, 9); return d }, 0.03},
	}
	for i, c := range cases {
		truth := c.make()
		xs := sample(truth, n, int64(100+i))
		got, err := Fit(truth.Family(), xs)
		if err != nil {
			t.Errorf("%s: fit: %v", truth, err)
			continue
		}
		wantP, gotP := truth.Params(), got.Params()
		for j := range wantP {
			rel := math.Abs(gotP[j]-wantP[j]) / (math.Abs(wantP[j]) + 1e-12)
			if rel > c.tol {
				t.Errorf("%s: param %d = %v, want %v (rel err %.3f)", truth, j, gotP[j], wantP[j], rel)
			}
		}
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	if _, err := Fit(FamilyExponential, []float64{1}); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("1 sample: err = %v, want ErrInsufficientData", err)
	}
	if _, err := Fit(FamilyLogNormal, []float64{1, -2, 3}); !errors.Is(err, ErrUnsupportedData) {
		t.Errorf("negative sample for lognormal: err = %v, want ErrUnsupportedData", err)
	}
	if _, err := Fit(FamilyGamma, []float64{0, 1, 2}); !errors.Is(err, ErrUnsupportedData) {
		t.Errorf("zero sample for gamma: err = %v, want ErrUnsupportedData", err)
	}
	if _, err := Fit(FamilyNormal, []float64{3, 3, 3}); !errors.Is(err, ErrUnsupportedData) {
		t.Errorf("constant sample for normal: err = %v, want ErrUnsupportedData", err)
	}
	if _, err := Fit(Family("bogus"), []float64{1, 2}); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestDegenerateSampleTyped(t *testing.T) {
	// A zero-variance sample is a distinct, typed failure — callers can
	// catch it and fall back to FamilyConstant — and it still satisfies
	// the broader ErrUnsupportedData contract.
	constant := []float64{5, 5, 5}
	for _, fam := range []Family{FamilyNormal, FamilyLogNormal, FamilyGamma, FamilyPareto, FamilyUniform} {
		_, err := Fit(fam, constant)
		if !errors.Is(err, ErrDegenerateSample) {
			t.Errorf("%s on constant sample: err = %v, want ErrDegenerateSample", fam, err)
		}
		if !errors.Is(err, ErrUnsupportedData) {
			t.Errorf("%s: degenerate error does not wrap ErrUnsupportedData: %v", fam, err)
		}
	}
	// The designated fallback accepts the same sample.
	d, err := Fit(FamilyConstant, constant)
	if err != nil {
		t.Fatalf("constant family rejected constant sample: %v", err)
	}
	if got := d.Mean(); got != 5 {
		t.Errorf("constant fit mean = %v, want 5", got)
	}
	// A spread-out sample must not trip the degenerate path.
	if _, err := Fit(FamilyNormal, []float64{1, 2, 3}); err != nil {
		t.Errorf("normal fit on spread sample: %v", err)
	}
}

func TestSelectBestPicksGeneratingFamily(t *testing.T) {
	// With plenty of data, AIC selection should recover the generating
	// family (or an equivalent one) for distinctive shapes.
	lgn, _ := NewLogNormal(2, 0.9)
	xs := sample(lgn, 20000, 42)
	best, results, err := SelectBest(xs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if best.Family() != FamilyLogNormal {
		t.Errorf("best family = %s, want lognormal (results: %+v)", best.Family(), results[0])
	}
	// Results must be sorted by AIC.
	for i := 1; i < len(results); i++ {
		if results[i].AIC < results[i-1].AIC {
			t.Error("results not sorted by AIC")
		}
	}
}

func TestSelectBestConstantShortCircuit(t *testing.T) {
	xs := []float64{512, 512, 512, 512}
	best, _, err := SelectBest(xs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if best.Family() != FamilyConstant {
		t.Errorf("family = %s, want constant", best.Family())
	}
	if best.Mean() != 512 {
		t.Errorf("mean = %v, want 512", best.Mean())
	}
}

func TestSelectBestEmptySample(t *testing.T) {
	if _, _, err := SelectBest(nil, nil); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("err = %v, want ErrInsufficientData", err)
	}
}

func TestAICPrefersTrueModel(t *testing.T) {
	exp, _ := NewExponential(1.5)
	xs := sample(exp, 5000, 3)
	fitted, err := Fit(FamilyExponential, xs)
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := Fit(FamilyNormal, xs)
	if err != nil {
		t.Fatal(err)
	}
	if AIC(fitted, xs) >= AIC(wrong, xs) {
		t.Errorf("AIC(exp)=%v not better than AIC(normal)=%v on exponential data",
			AIC(fitted, xs), AIC(wrong, xs))
	}
	if BIC(fitted, xs) >= BIC(wrong, xs) {
		t.Error("BIC did not prefer the generating family")
	}
}

func TestCodecRoundTripAllFamilies(t *testing.T) {
	for _, d := range allDists(t) {
		data, err := MarshalDist(d)
		if err != nil {
			t.Errorf("%s: marshal: %v", d, err)
			continue
		}
		back, err := UnmarshalDist(data)
		if err != nil {
			t.Errorf("%s: unmarshal: %v", d, err)
			continue
		}
		if back.Family() != d.Family() {
			t.Errorf("family changed: %s -> %s", d.Family(), back.Family())
		}
		bp, dp := back.Params(), d.Params()
		for i := range dp {
			if bp[i] != dp[i] {
				t.Errorf("%s: param %d changed: %v -> %v", d, i, dp[i], bp[i])
			}
		}
	}
}

func TestCodecRejectsBadSpecs(t *testing.T) {
	bad := []DistSpec{
		{Family: "nope", Params: []float64{1}},
		{Family: FamilyNormal, Params: []float64{1}},        // wrong arity
		{Family: FamilyExponential, Params: []float64{-1}},  // invalid param
		{Family: FamilyUniform, Params: []float64{5, 5}},    // empty support
		{Family: FamilyGamma, Params: []float64{1, 2, 3}},   // extra param
		{Family: FamilyPareto, Params: []float64{0.0, 1.0}}, // xm=0
	}
	for _, s := range bad {
		if _, err := s.Build(); err == nil {
			t.Errorf("spec %+v built successfully", s)
		}
	}
}
