package stats

import "math"

// Special functions needed by the distribution library. Implementations
// follow the standard series / continued-fraction constructions (Abramowitz
// & Stegun; Numerical Recipes) and are accurate to ~1e-10 over the ranges
// the fitting code exercises.

// digamma returns d/dx ln Γ(x) for x > 0.
func digamma(x float64) float64 {
	var result float64
	// Recurrence to push x above 6 where the asymptotic series is accurate.
	for x < 6 {
		result -= 1 / x
		x++
	}
	// Asymptotic expansion.
	inv := 1 / x
	inv2 := inv * inv
	result += math.Log(x) - 0.5*inv
	result -= inv2 * (1.0/12 - inv2*(1.0/120-inv2*(1.0/252-inv2/240)))
	return result
}

// trigamma returns d²/dx² ln Γ(x) for x > 0.
func trigamma(x float64) float64 {
	var result float64
	for x < 6 {
		result += 1 / (x * x)
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	result += inv * (1 + 0.5*inv + inv2*(1.0/6-inv2*(1.0/30-inv2*(1.0/42-inv2/30))))
	return result
}

// regIncGammaLower returns P(a,x), the regularized lower incomplete gamma
// function, for a > 0 and x >= 0.
func regIncGammaLower(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 0
	case x < a+1:
		return gammaSeries(a, x)
	default:
		return 1 - gammaContinuedFraction(a, x)
	}
}

// gammaSeries evaluates P(a,x) by its power series (converges for x < a+1).
func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-14 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaContinuedFraction evaluates Q(a,x)=1-P(a,x) by Lentz's continued
// fraction (converges for x >= a+1).
func gammaContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-14 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// normCDF is the standard normal CDF.
func normCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// normQuantile inverts the standard normal CDF (Acklam's rational
// approximation refined by one Halley step).
func normQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the central and tail regions.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}

	var x float64
	switch {
	case p < 0.02425:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-0.02425:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
	// One Halley refinement step.
	e := normCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}
