package stats

import (
	"encoding/binary"
	"math"
	"sort"
	"testing"
)

// fuzzSample decodes a fuzz byte string into a bounded, finite float
// sample (8 bytes per value, non-finite and extreme magnitudes dropped).
func fuzzSample(data []byte) []float64 {
	const maxN = 256
	var xs []float64
	for len(data) >= 8 && len(xs) < maxN {
		v := math.Float64frombits(binary.LittleEndian.Uint64(data))
		data = data[8:]
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
			continue
		}
		xs = append(xs, v)
	}
	return xs
}

// FuzzECDF checks the empirical CDF's defining properties on arbitrary
// samples: F is a non-decreasing map into [0,1] hitting 1 at the sample
// maximum, and quantiles stay inside the sample range.
func FuzzECDF(f *testing.F) {
	f.Add([]byte{})
	seed := make([]byte, 0, 4*8)
	for _, v := range []float64{1, 2, 2, 100} {
		seed = binary.LittleEndian.AppendUint64(seed, math.Float64bits(v))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		xs := fuzzSample(data)
		e, err := NewECDF(xs)
		if len(xs) == 0 {
			if err == nil {
				t.Fatal("empty sample built an ECDF")
			}
			return
		}
		if err != nil {
			t.Fatalf("NewECDF(%d samples): %v", len(xs), err)
		}
		if e.Len() != len(xs) {
			t.Fatalf("Len = %d, want %d", e.Len(), len(xs))
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		lo, hi := sorted[0], sorted[len(sorted)-1]
		prev := 0.0
		for _, x := range sorted {
			fx := e.At(x)
			if fx < prev || fx < 0 || fx > 1 {
				t.Fatalf("At(%v) = %v not monotone in [0,1] (prev %v)", x, fx, prev)
			}
			prev = fx
		}
		if got := e.At(hi); got != 1 {
			t.Fatalf("At(max) = %v, want 1", got)
		}
		for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
			q := e.Quantile(p)
			if q < lo || q > hi {
				t.Fatalf("Quantile(%v) = %v outside sample range [%v, %v]", p, q, lo, hi)
			}
		}
	})
}

// FuzzFit checks that every family either rejects an arbitrary sample
// with an error or returns a distribution with finite parameters that
// survives a marshal/unmarshal round trip bit-exactly.
func FuzzFit(f *testing.F) {
	seed := make([]byte, 0, 6*8)
	for _, v := range []float64{0.5, 1.5, 2.5, 4, 8, 16} {
		seed = binary.LittleEndian.AppendUint64(seed, math.Float64bits(v))
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		xs := fuzzSample(data)
		for _, fam := range []Family{
			FamilyExponential, FamilyNormal, FamilyLogNormal, FamilyGamma,
			FamilyWeibull, FamilyPareto, FamilyUniform, FamilyConstant,
		} {
			d, err := Fit(fam, xs)
			if err != nil {
				continue
			}
			if d.Family() != fam {
				t.Fatalf("Fit(%s) returned family %s", fam, d.Family())
			}
			for i, p := range d.Params() {
				if math.IsNaN(p) || math.IsInf(p, 0) {
					t.Fatalf("Fit(%s) param %d non-finite: %v (sample %v)", fam, i, p, xs)
				}
			}
			blob, err := MarshalDist(d)
			if err != nil {
				t.Fatalf("marshal fitted %s: %v", fam, err)
			}
			back, err := UnmarshalDist(blob)
			if err != nil {
				t.Fatalf("unmarshal fitted %s: %v", fam, err)
			}
			if back.Family() != d.Family() {
				t.Fatalf("round trip changed family: %s -> %s", d.Family(), back.Family())
			}
			bp, dp := back.Params(), d.Params()
			if len(bp) != len(dp) {
				t.Fatalf("round trip changed arity: %v -> %v", dp, bp)
			}
			for i := range dp {
				if bp[i] != dp[i] {
					t.Fatalf("round trip changed %s param %d: %v -> %v", fam, i, dp[i], bp[i])
				}
			}
		}
	})
}
