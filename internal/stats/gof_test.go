package stats

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestKSStatisticZeroOnPerfectFit(t *testing.T) {
	// The ECDF of quantiles at (i-0.5)/n has minimal distance ~1/(2n).
	d, _ := NewExponential(1)
	n := 1000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Quantile((float64(i) + 0.5) / float64(n))
	}
	ks := KSStatistic(xs, d)
	if ks > 1.0/float64(n) {
		t.Errorf("KS = %v, want <= %v", ks, 1.0/float64(n))
	}
}

func TestKSDetectsWrongModel(t *testing.T) {
	exp, _ := NewExponential(1)
	nrm, _ := NewNormal(1, 1)
	xs := sample(exp, 5000, 9)
	ksGood := KSStatistic(xs, exp)
	ksBad := KSStatistic(xs, nrm)
	if ksGood >= ksBad {
		t.Errorf("KS(true)=%v >= KS(wrong)=%v", ksGood, ksBad)
	}
	if p := KSPValue(ksGood, len(xs)); p < 0.01 {
		t.Errorf("true-model p-value %v too small", p)
	}
	if p := KSPValue(ksBad, len(xs)); p > 1e-6 {
		t.Errorf("wrong-model p-value %v too large", p)
	}
}

func TestKSTwoSampleIdenticalIsZero(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if d := KSStatistic2(xs, xs); d != 0 {
		t.Errorf("KS2(x,x) = %v, want 0", d)
	}
}

func TestKSTwoSampleDisjointIsOne(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 20, 30}
	if d := KSStatistic2(a, b); d != 1 {
		t.Errorf("KS2 disjoint = %v, want 1", d)
	}
}

func TestKSTwoSampleSameDistSmall(t *testing.T) {
	lgn, _ := NewLogNormal(1, 0.5)
	a := sample(lgn, 4000, 1)
	b := sample(lgn, 4000, 2)
	d := KSStatistic2(a, b)
	if d > 0.05 {
		t.Errorf("same-law two-sample KS = %v, want small", d)
	}
	if p := KSPValue2(d, len(a), len(b)); p < 0.01 {
		t.Errorf("p-value %v too small for same-law samples", p)
	}
}

func TestKSTwoSampleEmpty(t *testing.T) {
	if d := KSStatistic2(nil, []float64{1}); d != 1 {
		t.Errorf("KS2 with empty sample = %v, want 1", d)
	}
}

// Property: two-sample KS is symmetric and within [0,1].
func TestKSTwoSampleSymmetricProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		for _, v := range append(a, b...) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true // skip pathological inputs
			}
		}
		d1 := KSStatistic2(a, b)
		d2 := KSStatistic2(b, a)
		return math.Abs(d1-d2) < 1e-12 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCvMOrdersModelsLikeKS(t *testing.T) {
	wbl, _ := NewWeibull(2, 3)
	xs := sample(wbl, 3000, 4)
	good, _ := Fit(FamilyWeibull, xs)
	bad, _ := NewExponential(0.3)
	if CvMStatistic(xs, good) >= CvMStatistic(xs, bad) {
		t.Error("CvM did not prefer the fitted model")
	}
}

func TestEvaluateReportFields(t *testing.T) {
	d, _ := NewNormal(0, 1)
	xs := sample(d, 500, 5)
	rep := Evaluate(d, xs)
	if rep.Samples != 500 {
		t.Errorf("samples = %d", rep.Samples)
	}
	if rep.KS <= 0 || rep.KS >= 1 {
		t.Errorf("KS = %v out of range", rep.KS)
	}
	if rep.KSP <= 0 || rep.KSP > 1 {
		t.Errorf("KSP = %v out of range", rep.KSP)
	}
	if rep.AIC <= 0 && rep.LogLik >= 0 {
		t.Error("inconsistent AIC/LogLik")
	}
}

func TestKolmogorovQLimits(t *testing.T) {
	if q := kolmogorovQ(0); q != 1 {
		t.Errorf("Q(0) = %v, want 1", q)
	}
	if q := kolmogorovQ(10); q > 1e-12 {
		t.Errorf("Q(10) = %v, want ~0", q)
	}
	// Known value: Q(0.83) ≈ 0.5 (median of the Kolmogorov law ~0.8276).
	if q := kolmogorovQ(0.8276); math.Abs(q-0.5) > 0.01 {
		t.Errorf("Q(0.8276) = %v, want ~0.5", q)
	}
}

func TestECDFBasics(t *testing.T) {
	e, err := NewECDF([]float64{3, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != 4 {
		t.Fatalf("len = %d", e.Len())
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); got != c.want {
			t.Errorf("F(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if q := e.Quantile(0.5); q != 2 {
		t.Errorf("median = %v, want 2", q)
	}
	xs, fs := e.Points()
	if len(xs) != 3 || fs[len(fs)-1] != 1 {
		t.Errorf("points = %v %v", xs, fs)
	}
}

func TestECDFQuantileEdges(t *testing.T) {
	e, err := NewECDF([]float64{5, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if e.Quantile(0) != 1 || e.Quantile(1) != 5 {
		t.Error("quantile edges wrong")
	}
}

// Regression: empty samples used to yield NaN-filled results; now both
// constructors report a typed error the caller can test for.
func TestEmptySampleTypedError(t *testing.T) {
	if _, err := NewECDF(nil); !errors.Is(err, ErrEmptySample) {
		t.Errorf("NewECDF(nil) err = %v, want ErrEmptySample", err)
	}
	if _, err := NewECDF([]float64{}); !errors.Is(err, ErrEmptySample) {
		t.Errorf("NewECDF(empty) err = %v, want ErrEmptySample", err)
	}
	if s, err := Describe(nil); !errors.Is(err, ErrEmptySample) || s.N != 0 {
		t.Errorf("Describe(nil) = %+v, %v, want zero summary and ErrEmptySample", s, err)
	}
}

func TestDescribe(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100}
	s, err := Describe(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Min != 1 || s.Max != 100 || s.Sum != 110 {
		t.Errorf("summary basics wrong: %+v", s)
	}
	if s.Mean != 22 {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.P50 != 3 {
		t.Errorf("median = %v", s.P50)
	}
	if s.Skewness <= 0 {
		t.Errorf("skewness = %v, want positive for right-skewed data", s.Skewness)
	}
	if math.IsNaN(s.GeometricMeanLog) {
		t.Error("geometric mean log should exist for positive data")
	}
	neg, err := Describe([]float64{-1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(neg.GeometricMeanLog) {
		t.Error("geometric mean log should be NaN with non-positive data")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	edges, counts := Histogram(xs, 5)
	if len(edges) != 5 || len(counts) != 5 {
		t.Fatalf("bins = %d/%d", len(edges), len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(xs) {
		t.Errorf("histogram total = %d, want %d", total, len(xs))
	}
	// Constant sample collapses to one bin.
	e, c := Histogram([]float64{2, 2, 2}, 4)
	if len(e) != 1 || c[0] != 3 {
		t.Errorf("constant histogram = %v %v", e, c)
	}
}

// Property: ECDF At is within [0,1] and monotone over sorted queries.
func TestECDFMonotoneProperty(t *testing.T) {
	f := func(xs []float64, qs []float64) bool {
		for _, v := range append(xs, qs...) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		e, err := NewECDF(xs)
		if err != nil {
			return len(xs) == 0 // only the empty sample may error
		}
		sort.Float64s(qs)
		prev := -1.0
		for _, q := range qs {
			v := e.At(q)
			if v < 0 || v > 1 || v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestADStatisticOrdersModels(t *testing.T) {
	lgn, _ := NewLogNormal(1, 0.6)
	xs := sample(lgn, 3000, 11)
	good, err := Fit(FamilyLogNormal, xs)
	if err != nil {
		t.Fatal(err)
	}
	bad, _ := NewExponential(0.2)
	adGood := ADStatistic(xs, good)
	adBad := ADStatistic(xs, bad)
	if adGood >= adBad {
		t.Errorf("AD(true)=%v >= AD(wrong)=%v", adGood, adBad)
	}
	// Well-fitted A² is small (≲ a few units); wrong model is large.
	if adGood > 5 {
		t.Errorf("AD on true model = %v, want small", adGood)
	}
	if ADStatistic(nil, good) != 0 {
		t.Error("empty sample AD != 0")
	}
	// Samples outside the support stay finite (clamped logs).
	par, _ := NewPareto(10, 2)
	if v := ADStatistic([]float64{1, 2, 3}, par); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Errorf("AD with out-of-support sample = %v", v)
	}
}
