package stats

import (
	"encoding/json"
	"fmt"
)

// DistSpec is the serialisable form of a Distribution: the family name and
// its parameters in the family's documented order. Keddah model files store
// every fitted law this way.
type DistSpec struct {
	Family Family    `json:"family"`
	Params []float64 `json:"params"`
}

// Spec captures d into its serialisable form.
func Spec(d Distribution) DistSpec {
	return DistSpec{Family: d.Family(), Params: d.Params()}
}

// Build reconstructs the Distribution described by the spec.
func (s DistSpec) Build() (Distribution, error) {
	need := func(n int) error {
		if len(s.Params) != n {
			return fmt.Errorf("stats: %s expects %d params, got %d", s.Family, n, len(s.Params))
		}
		return nil
	}
	switch s.Family {
	case FamilyExponential:
		if err := need(1); err != nil {
			return nil, err
		}
		return NewExponential(s.Params[0])
	case FamilyNormal:
		if err := need(2); err != nil {
			return nil, err
		}
		return NewNormal(s.Params[0], s.Params[1])
	case FamilyLogNormal:
		if err := need(2); err != nil {
			return nil, err
		}
		return NewLogNormal(s.Params[0], s.Params[1])
	case FamilyGamma:
		if err := need(2); err != nil {
			return nil, err
		}
		return NewGamma(s.Params[0], s.Params[1])
	case FamilyWeibull:
		if err := need(2); err != nil {
			return nil, err
		}
		return NewWeibull(s.Params[0], s.Params[1])
	case FamilyPareto:
		if err := need(2); err != nil {
			return nil, err
		}
		return NewPareto(s.Params[0], s.Params[1])
	case FamilyUniform:
		if err := need(2); err != nil {
			return nil, err
		}
		return NewUniform(s.Params[0], s.Params[1])
	case FamilyConstant:
		if err := need(1); err != nil {
			return nil, err
		}
		return NewConstant(s.Params[0])
	default:
		return nil, fmt.Errorf("stats: unknown family %q", s.Family)
	}
}

// MarshalDist encodes a distribution as JSON via its DistSpec.
func MarshalDist(d Distribution) ([]byte, error) {
	return json.Marshal(Spec(d))
}

// UnmarshalDist decodes a distribution from its DistSpec JSON.
func UnmarshalDist(data []byte) (Distribution, error) {
	var s DistSpec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("decode dist spec: %w", err)
	}
	return s.Build()
}
