package stats

import (
	"errors"
	"math"
	"slices"
	"sort"
)

// ErrEmptySample is returned by constructors and summaries that need at
// least one observation. Callers used to get NaN-filled results back;
// the typed error makes the empty case detectable with errors.Is.
var ErrEmptySample = errors.New("stats: empty sample")

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF. The input is copied and sorted. An empty
// sample returns ErrEmptySample. Callers already holding a stats.Sample
// should use Sample.ECDF, which shares the sorted data instead.
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmptySample
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	slices.Sort(s)
	return &ECDF{sorted: s}, nil
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// At returns F_n(x) = (#samples ≤ x)/n.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, x)
	// SearchFloat64s returns the first index with sorted[i] >= x; advance
	// past equal values so the ECDF is right-continuous ("≤").
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the p-quantile (nearest-rank).
func (e *ECDF) Quantile(p float64) float64 {
	n := len(e.sorted)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[n-1]
	}
	idx := int(math.Ceil(p*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	return e.sorted[idx]
}

// Values returns the sorted sample (read-only view; do not modify).
func (e *ECDF) Values() []float64 { return e.sorted }

// Points returns the (x, F(x)) step points of the ECDF, one per distinct
// sample value — convenient for printing CDF series.
func (e *ECDF) Points() (xs, fs []float64) {
	n := len(e.sorted)
	for i := 0; i < n; {
		j := i
		for j < n && e.sorted[j] == e.sorted[i] {
			j++
		}
		xs = append(xs, e.sorted[i])
		fs = append(fs, float64(j)/float64(n))
		i = j
	}
	return xs, fs
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N                int     `json:"n"`
	Mean             float64 `json:"mean"`
	Std              float64 `json:"std"`
	Min              float64 `json:"min"`
	P25, P50, P75    float64 `json:"-"`
	P90, P95, P99    float64 `json:"-"`
	Max              float64 `json:"max"`
	Sum              float64 `json:"sum"`
	CoefOfVariation  float64 `json:"cv"`
	Skewness         float64 `json:"skewness"`
	ExcessKurtosis   float64 `json:"kurtosis"`
	GeometricMeanLog float64 `json:"geoMeanLog"` // mean of ln(x) for positive samples; NaN otherwise
}

// Describe computes descriptive statistics of xs. An empty sample
// returns ErrEmptySample. Thin wrapper over Sample.Describe.
func Describe(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{N: 0}, ErrEmptySample
	}
	return NewSample(xs).Describe()
}

// Describe computes descriptive statistics of the sample, reading the
// cached moments. An empty sample returns ErrEmptySample.
func (sa *Sample) Describe() (Summary, error) {
	var s Summary
	s.N = sa.Len()
	if s.N == 0 {
		return s, ErrEmptySample
	}
	e, err := sa.ECDF()
	if err != nil {
		return s, err
	}
	s.Min = sa.Min()
	s.Max = sa.Max()
	s.P25 = e.Quantile(0.25)
	s.P50 = e.Quantile(0.50)
	s.P75 = e.Quantile(0.75)
	s.P90 = e.Quantile(0.90)
	s.P95 = e.Quantile(0.95)
	s.P99 = e.Quantile(0.99)
	m := sa.Mean()
	s.Mean = m
	for _, x := range sa.sorted {
		s.Sum += x
	}
	v := sa.Variance()
	s.Std = math.Sqrt(v)
	if m != 0 {
		s.CoefOfVariation = s.Std / math.Abs(m)
	}
	if v > 0 {
		var m3, m4 float64
		for _, x := range sa.sorted {
			d := x - m
			m3 += d * d * d
			m4 += d * d * d * d
		}
		n := float64(s.N)
		m3 /= n
		m4 /= n
		s.Skewness = m3 / math.Pow(v, 1.5)
		s.ExcessKurtosis = m4/(v*v) - 3
	}
	s.GeometricMeanLog = math.NaN()
	if sa.AllPositive() {
		s.GeometricMeanLog = sa.MeanLog()
	}
	return s, nil
}

// Histogram bins xs into nbins equal-width bins over [min,max] and returns
// bin left edges and counts. Useful for quick textual distribution views.
func Histogram(xs []float64, nbins int) (edges []float64, counts []int) {
	if len(xs) == 0 || nbins <= 0 {
		return nil, nil
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if lo == hi {
		return []float64{lo}, []int{len(xs)}
	}
	w := (hi - lo) / float64(nbins)
	edges = make([]float64, nbins)
	counts = make([]int, nbins)
	for i := range edges {
		edges[i] = lo + float64(i)*w
	}
	for _, x := range xs {
		i := int((x - lo) / w)
		if i >= nbins {
			i = nbins - 1
		}
		counts[i]++
	}
	return edges, counts
}
