package stats

import (
	"encoding/binary"
	"math"
	"slices"
	"testing"
)

// naiveMoments recomputes every cached Sample moment directly from the
// raw data, with none of the Sample's caching or shortcuts.
type naiveMoments struct {
	min, max    float64
	mean, vari  float64
	allPositive bool
	sumLog      float64
	sumLogSq    float64
	meanLog     float64
	varLog      float64
}

func computeNaive(xs []float64) naiveMoments {
	var nm naiveMoments
	n := float64(len(xs))
	if len(xs) == 0 {
		return nm
	}
	nm.min, nm.max = xs[0], xs[0]
	var sum float64
	nm.allPositive = true
	for _, x := range xs {
		if x < nm.min {
			nm.min = x
		}
		if x > nm.max {
			nm.max = x
		}
		sum += x
		if x <= 0 {
			nm.allPositive = false
		}
	}
	nm.mean = sum / n
	for _, x := range xs {
		d := x - nm.mean
		nm.vari += d * d
	}
	nm.vari /= n
	if !nm.allPositive {
		nm.sumLog = math.NaN()
		nm.sumLogSq = math.NaN()
		nm.meanLog = math.NaN()
		nm.varLog = math.NaN()
		return nm
	}
	for _, x := range xs {
		l := math.Log(x)
		nm.sumLog += l
		nm.sumLogSq += l * l
	}
	nm.meanLog = nm.sumLog / n
	for _, x := range xs {
		d := math.Log(x) - nm.meanLog
		nm.varLog += d * d
	}
	nm.varLog /= n
	return nm
}

// checkMoments compares every cached accessor of s against the naive
// recomputation within a relative tolerance (the Sample caches sum in
// sorted order, the naive pass in input order, so bit equality is not
// guaranteed for ill-conditioned samples).
func checkMoments(t *testing.T, s *Sample, xs []float64) {
	t.Helper()
	nm := computeNaive(xs)
	close := func(name string, got, want float64) {
		t.Helper()
		if math.IsNaN(want) {
			if !math.IsNaN(got) {
				t.Fatalf("%s = %v, want NaN", name, got)
			}
			return
		}
		tol := 1e-9 * (1 + math.Abs(want))
		if math.Abs(got-want) > tol {
			t.Fatalf("%s = %v, want %v (±%v)", name, got, want, tol)
		}
	}
	if s.Len() != len(xs) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(xs))
	}
	if len(xs) == 0 {
		return
	}
	if s.Min() != nm.min || s.Max() != nm.max {
		t.Fatalf("Min/Max = %v/%v, want %v/%v", s.Min(), s.Max(), nm.min, nm.max)
	}
	if s.AllPositive() != nm.allPositive {
		t.Fatalf("AllPositive = %v, want %v", s.AllPositive(), nm.allPositive)
	}
	close("Mean", s.Mean(), nm.mean)
	close("Variance", s.Variance(), nm.vari)
	close("Std", s.Std(), math.Sqrt(nm.vari))
	close("SumLog", s.SumLog(), nm.sumLog)
	close("SumLogSq", s.SumLogSq(), nm.sumLogSq)
	close("MeanLog", s.MeanLog(), nm.meanLog)
	close("VarLog", s.VarLog(), nm.varLog)
	if s.VarLog() < 0 {
		t.Fatalf("VarLog = %v negative (centering failed)", s.VarLog())
	}
}

func TestSampleCachedMomentsMatchNaive(t *testing.T) {
	cases := [][]float64{
		{},
		{3},
		{1, 2, 3, 4, 5},
		{5, 4, 3, 2, 1},
		{2, 2, 2, 2},
		{-1, 0, 1},
		{1e-9, 1e9, 3.5, 42},
		{1 + 1e-12, 1, 1 - 1e-12}, // near-constant: centered VarLog must not go negative
	}
	for _, xs := range cases {
		orig := append([]float64(nil), xs...)
		checkMoments(t, NewSample(xs), orig)
		owned := append([]float64(nil), orig...)
		checkMoments(t, NewSampleOwned(owned), orig)
	}
}

func TestSampleConstructorsOwnership(t *testing.T) {
	xs := []float64{3, 1, 2}
	s := NewSample(xs)
	if xs[0] != 3 {
		t.Fatal("NewSample mutated its input")
	}
	if got := s.Values(); !slices.IsSorted(got) {
		t.Fatalf("NewSample values not sorted: %v", got)
	}

	owned := []float64{3, 1, 2}
	so := NewSampleOwned(owned)
	if got := so.Values(); !slices.IsSorted(got) {
		t.Fatalf("NewSampleOwned values not sorted: %v", got)
	}

	// NewSampleSorted must detect (and repair) an unsorted slice rather
	// than serving wrong order statistics.
	ss := NewSampleSorted([]float64{2, 1, 3})
	if got := ss.Values(); !slices.IsSorted(got) {
		t.Fatalf("NewSampleSorted left values unsorted: %v", got)
	}
	if ss.Min() != 1 || ss.Max() != 3 {
		t.Fatalf("Min/Max = %v/%v, want 1/3", ss.Min(), ss.Max())
	}
}

func TestSampleECDFSharesData(t *testing.T) {
	s := NewSample([]float64{4, 1, 3, 2})
	e, err := s.ECDF()
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != 4 || e.Quantile(0.5) != 2 {
		t.Fatalf("ECDF Len/median = %d/%v", e.Len(), e.Quantile(0.5))
	}
	// Shared backing array, no copy.
	if &e.Values()[0] != &s.Values()[0] {
		t.Fatal("Sample.ECDF copied the sorted data")
	}
	if _, err := NewSample(nil).ECDF(); err == nil {
		t.Fatal("empty Sample.ECDF did not error")
	}
}

// TestSampleMomentsRaceSafe hammers the lazy caches from many goroutines;
// run with -race this proves the sync.Once guards are sufficient for the
// parallel fit pool.
func TestSampleMomentsRaceSafe(t *testing.T) {
	s := NewSample([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			_ = s.Mean()
			_ = s.Variance()
			_ = s.SumLog()
			_ = s.VarLog()
			_, _ = s.Fit(FamilyWeibull)
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}

func TestMeanHelper(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v, want 2", got)
	}
}

func TestKSStatistic2SortedMatchesGeneral(t *testing.T) {
	rng := NewRNG(11)
	for trial := 0; trial < 20; trial++ {
		a := make([]float64, 50+trial)
		b := make([]float64, 80)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64() + 0.3
		}
		want := KSStatistic2(a, b)
		sa := append([]float64(nil), a...)
		sb := append([]float64(nil), b...)
		slices.Sort(sa)
		slices.Sort(sb)
		if got := KSStatistic2Sorted(sa, sb); got != want {
			t.Fatalf("KSStatistic2Sorted = %v, KSStatistic2 = %v", got, want)
		}
	}
	if got := KSStatistic2Sorted(nil, []float64{1}); got != 1 {
		t.Fatalf("empty side = %v, want 1", got)
	}
}

// FuzzSampleMoments feeds arbitrary samples through the Sample cache and
// cross-checks every moment against direct recomputation (same decoder
// and seed shape as FuzzFit).
func FuzzSampleMoments(f *testing.F) {
	seed := make([]byte, 0, 6*8)
	for _, v := range []float64{0.5, 1.5, 2.5, 4, 8, 16} {
		seed = binary.LittleEndian.AppendUint64(seed, math.Float64bits(v))
	}
	f.Add(seed)
	f.Add([]byte{})
	neg := make([]byte, 0, 3*8)
	for _, v := range []float64{-1, 0, 2} {
		neg = binary.LittleEndian.AppendUint64(neg, math.Float64bits(v))
	}
	f.Add(neg)
	f.Fuzz(func(t *testing.T, data []byte) {
		xs := fuzzSample(data)
		orig := append([]float64(nil), xs...)
		checkMoments(t, NewSample(xs), orig)
	})
}

// TestSampleLogLikelihoodMatchesPointwise verifies the moment-based
// per-family likelihoods against the generic pointwise LogPDF sum.
func TestSampleLogLikelihoodMatchesPointwise(t *testing.T) {
	rng := NewRNG(5)
	samples := [][]float64{
		{1, 2, 3, 4, 5, 6, 7, 8},
		{0.5, 1.5, 2.5, 4, 8, 16, 32, 64},
		{-2, -1, 0, 1, 2, 3},
		{2, 2, 2, 2, 2},
	}
	big := make([]float64, 500)
	for i := range big {
		big[i] = math.Exp(rng.NormFloat64())
	}
	samples = append(samples, big)

	var dists []Distribution
	mk := func(d Distribution, err error) {
		if err != nil {
			t.Fatal(err)
		}
		dists = append(dists, d)
	}
	mk(NewExponential(0.5))
	mk(NewNormal(1.5, 2))
	mk(NewLogNormal(0.2, 0.8))
	mk(NewGamma(2.5, 1.2))
	mk(NewWeibull(1.7, 3))
	mk(NewPareto(0.5, 1.3))
	mk(NewUniform(-5, 100))
	mk(NewUniform(0.4, 3))
	mk(NewConstant(2))

	for si, xs := range samples {
		s := NewSample(xs)
		for _, d := range dists {
			want := LogLikelihood(d, xs)
			got := s.LogLikelihood(d)
			if math.IsInf(want, -1) || math.IsInf(got, -1) {
				if got != want {
					t.Fatalf("sample %d, %v: LogLikelihood = %v, want %v", si, d, got, want)
				}
				continue
			}
			tol := 1e-6 * (1 + math.Abs(want))
			if math.Abs(got-want) > tol {
				t.Fatalf("sample %d, %v: LogLikelihood = %v, want %v (±%v)", si, d, got, want, tol)
			}
			if aic := s.AIC(d); math.Abs(aic-(2*float64(len(d.Params()))-2*got)) > 1e-12*(1+math.Abs(aic)) {
				t.Fatalf("sample %d, %v: AIC inconsistent with LogLikelihood", si, d)
			}
		}
	}
}
