// Package stats provides the statistical machinery Keddah needs: a
// deterministic RNG, a library of continuous distributions with maximum
// likelihood fitting, empirical CDFs, and goodness-of-fit tests used to
// select the best model for each Hadoop traffic component.
package stats

import "math/rand"

// RNG is a deterministic pseudo-random source. Every stochastic component
// in the simulator draws from an RNG so that runs are reproducible from a
// single seed.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child stream. Children of the same parent in
// the same order are identical across runs.
func (g *RNG) Fork() *RNG {
	return NewRNG(g.r.Int63())
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns a unit-rate exponential variate.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
