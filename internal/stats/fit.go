package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a fit is attempted on too few
// samples to identify the family's parameters.
var ErrInsufficientData = errors.New("stats: insufficient data to fit")

// ErrUnsupportedData is returned when a family's support cannot contain the
// sample (e.g. non-positive values for a log-normal).
var ErrUnsupportedData = errors.New("stats: data outside family support")

// ErrDegenerateSample is returned when a sample has zero variance (all
// values equal), which no spread-parameterised family can fit by maximum
// likelihood. It wraps ErrUnsupportedData, so existing errors.Is checks
// keep matching; callers wanting the constant-sample case specifically
// can test for this error and fall back to FamilyConstant.
var ErrDegenerateSample = fmt.Errorf("%w: degenerate zero-variance sample", ErrUnsupportedData)

// Fit estimates the maximum-likelihood parameters of the given family for
// the sample xs.
func Fit(family Family, xs []float64) (Distribution, error) {
	if len(xs) < 2 {
		return nil, fmt.Errorf("%w: %d samples for %s", ErrInsufficientData, len(xs), family)
	}
	switch family {
	case FamilyExponential:
		return fitExponential(xs)
	case FamilyNormal:
		return fitNormal(xs)
	case FamilyLogNormal:
		return fitLogNormal(xs)
	case FamilyGamma:
		return fitGamma(xs)
	case FamilyWeibull:
		return fitWeibull(xs)
	case FamilyPareto:
		return fitPareto(xs)
	case FamilyUniform:
		return fitUniform(xs)
	case FamilyConstant:
		return fitConstant(xs)
	default:
		return nil, fmt.Errorf("stats: unknown family %q", family)
	}
}

func meanOf(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func varianceOf(xs []float64, mean float64) float64 {
	var s float64
	for _, x := range xs {
		d := x - mean
		s += d * d
	}
	return s / float64(len(xs))
}

func requirePositive(xs []float64, family Family) error {
	for _, x := range xs {
		if x <= 0 {
			return fmt.Errorf("%w: %s requires positive samples, got %v", ErrUnsupportedData, family, x)
		}
	}
	return nil
}

func fitExponential(xs []float64) (Distribution, error) {
	if err := requirePositive(xs, FamilyExponential); err != nil {
		return nil, err
	}
	m := meanOf(xs)
	return NewExponential(1 / m)
}

func fitNormal(xs []float64) (Distribution, error) {
	m := meanOf(xs)
	v := varianceOf(xs, m)
	if v == 0 {
		return nil, fmt.Errorf("%w: zero variance for normal", ErrDegenerateSample)
	}
	return NewNormal(m, math.Sqrt(v))
}

func fitLogNormal(xs []float64) (Distribution, error) {
	if err := requirePositive(xs, FamilyLogNormal); err != nil {
		return nil, err
	}
	logs := make([]float64, len(xs))
	for i, x := range xs {
		logs[i] = math.Log(x)
	}
	m := meanOf(logs)
	v := varianceOf(logs, m)
	if v == 0 {
		return nil, fmt.Errorf("%w: zero log-variance for log-normal", ErrDegenerateSample)
	}
	return NewLogNormal(m, math.Sqrt(v))
}

// fitGamma uses the Minka/Choi-Wette closed-form start followed by Newton
// iterations on the profile likelihood in the shape parameter.
func fitGamma(xs []float64) (Distribution, error) {
	if err := requirePositive(xs, FamilyGamma); err != nil {
		return nil, err
	}
	m := meanOf(xs)
	var meanLog float64
	for _, x := range xs {
		meanLog += math.Log(x)
	}
	meanLog /= float64(len(xs))
	s := math.Log(m) - meanLog
	if s <= 0 {
		// All values equal up to fp noise.
		return nil, fmt.Errorf("%w: gamma profile statistic %v", ErrDegenerateSample, s)
	}
	k := (3 - s + math.Sqrt((s-3)*(s-3)+24*s)) / (12 * s)
	for i := 0; i < 50; i++ {
		num := math.Log(k) - digamma(k) - s
		den := 1/k - trigamma(k)
		next := k - num/den
		if next <= 0 {
			next = k / 2
		}
		if math.Abs(next-k) < 1e-12*k {
			k = next
			break
		}
		k = next
	}
	return NewGamma(k, m/k)
}

// fitWeibull solves the MLE shape equation by bisection (robust; the
// equation is monotone in k on (0,∞)).
func fitWeibull(xs []float64) (Distribution, error) {
	if err := requirePositive(xs, FamilyWeibull); err != nil {
		return nil, err
	}
	n := float64(len(xs))
	var meanLog float64
	for _, x := range xs {
		meanLog += math.Log(x)
	}
	meanLog /= n

	// g(k) = Σ x^k ln x / Σ x^k − 1/k − meanLog; find g(k)=0.
	g := func(k float64) float64 {
		var sumXk, sumXkLog float64
		for _, x := range xs {
			xk := math.Pow(x, k)
			sumXk += xk
			sumXkLog += xk * math.Log(x)
		}
		return sumXkLog/sumXk - 1/k - meanLog
	}
	lo, hi := 1e-3, 1.0
	for g(hi) < 0 {
		hi *= 2
		if hi > 1e6 {
			return nil, fmt.Errorf("%w: weibull shape did not bracket", ErrUnsupportedData)
		}
	}
	if g(lo) > 0 {
		return nil, fmt.Errorf("%w: weibull shape did not bracket", ErrUnsupportedData)
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if g(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-10*(1+hi) {
			break
		}
	}
	k := (lo + hi) / 2
	var sumXk float64
	for _, x := range xs {
		sumXk += math.Pow(x, k)
	}
	lambda := math.Pow(sumXk/n, 1/k)
	return NewWeibull(k, lambda)
}

func fitPareto(xs []float64) (Distribution, error) {
	if err := requirePositive(xs, FamilyPareto); err != nil {
		return nil, err
	}
	xm := xs[0]
	for _, x := range xs {
		if x < xm {
			xm = x
		}
	}
	var sumLog float64
	for _, x := range xs {
		sumLog += math.Log(x / xm)
	}
	if sumLog == 0 {
		return nil, fmt.Errorf("%w: pareto on constant sample", ErrDegenerateSample)
	}
	alpha := float64(len(xs)) / sumLog
	return NewPareto(xm, alpha)
}

func fitUniform(xs []float64) (Distribution, error) {
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if lo == hi {
		return nil, fmt.Errorf("%w: uniform on constant sample", ErrDegenerateSample)
	}
	return NewUniform(lo, hi)
}

func fitConstant(xs []float64) (Distribution, error) {
	return NewConstant(meanOf(xs))
}

// LogLikelihood returns the sample log likelihood under d.
func LogLikelihood(d Distribution, xs []float64) float64 {
	var ll float64
	for _, x := range xs {
		ll += d.LogPDF(x)
	}
	return ll
}

// AIC returns Akaike's information criterion for d fitted to xs
// (lower is better).
func AIC(d Distribution, xs []float64) float64 {
	k := float64(len(d.Params()))
	return 2*k - 2*LogLikelihood(d, xs)
}

// BIC returns the Bayesian information criterion (lower is better).
func BIC(d Distribution, xs []float64) float64 {
	k := float64(len(d.Params()))
	return k*math.Log(float64(len(xs))) - 2*LogLikelihood(d, xs)
}

// FitResult records one candidate fit during model selection.
type FitResult struct {
	Dist Distribution
	// AIC of the fit (lower better). +Inf if the likelihood degenerated.
	AIC float64
	// KS is the one-sample Kolmogorov–Smirnov distance against the data.
	KS float64
	// Err is non-nil when the family could not be fitted to this sample.
	Err error
}

// DefaultCandidates is the family set Keddah considers for continuous
// traffic statistics, mirroring the paper's empirical-model search.
// Uniform is deliberately excluded: its MLE support hugs the sample
// min/max, which wins AIC on clustered data but generalises terribly
// (generated flows spread evenly where measured ones cluster). Callers
// that want it can pass an explicit candidate list.
var DefaultCandidates = []Family{
	FamilyExponential,
	FamilyNormal,
	FamilyLogNormal,
	FamilyGamma,
	FamilyWeibull,
	FamilyPareto,
}

// relSpread is the coefficient-of-variation threshold under which a sample
// is treated as deterministic and modelled by a Constant.
const relSpread = 1e-6

// SelectBest fits every candidate family and returns the winner by AIC,
// along with all per-family results (sorted best-first). Near-constant
// samples short-circuit to a Constant law, which no continuous family can
// represent.
func SelectBest(xs []float64, candidates []Family) (Distribution, []FitResult, error) {
	if len(xs) == 0 {
		return nil, nil, ErrInsufficientData
	}
	if len(candidates) == 0 {
		candidates = DefaultCandidates
	}
	m := meanOf(xs)
	sd := math.Sqrt(varianceOf(xs, m))
	if len(xs) < 2 || (m != 0 && sd/math.Abs(m) < relSpread) || sd == 0 {
		c, err := NewConstant(m)
		if err != nil {
			return nil, nil, err
		}
		return c, []FitResult{{Dist: c, AIC: math.Inf(-1)}}, nil
	}

	results := make([]FitResult, 0, len(candidates))
	for _, fam := range candidates {
		d, err := Fit(fam, xs)
		if err != nil {
			results = append(results, FitResult{Err: err, AIC: math.Inf(1), KS: 1})
			continue
		}
		aic := AIC(d, xs)
		if math.IsNaN(aic) {
			aic = math.Inf(1)
		}
		results = append(results, FitResult{Dist: d, AIC: aic, KS: KSStatistic(xs, d)})
	}
	sort.SliceStable(results, func(i, j int) bool { return results[i].AIC < results[j].AIC })
	if results[0].Err != nil || math.IsInf(results[0].AIC, 1) {
		return nil, results, fmt.Errorf("%w: no candidate family fit", ErrUnsupportedData)
	}
	return results[0].Dist, results, nil
}
