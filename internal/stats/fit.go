package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a fit is attempted on too few
// samples to identify the family's parameters.
var ErrInsufficientData = errors.New("stats: insufficient data to fit")

// ErrUnsupportedData is returned when a family's support cannot contain the
// sample (e.g. non-positive values for a log-normal).
var ErrUnsupportedData = errors.New("stats: data outside family support")

// ErrDegenerateSample is returned when a sample has zero variance (all
// values equal), which no spread-parameterised family can fit by maximum
// likelihood. It wraps ErrUnsupportedData, so existing errors.Is checks
// keep matching; callers wanting the constant-sample case specifically
// can test for this error and fall back to FamilyConstant.
var ErrDegenerateSample = fmt.Errorf("%w: degenerate zero-variance sample", ErrUnsupportedData)

// Fit estimates the maximum-likelihood parameters of the given family for
// the sample xs. It is a thin wrapper over Sample.Fit; callers fitting
// several families or evaluating goodness of fit should construct the
// Sample once and reuse it.
func Fit(family Family, xs []float64) (Distribution, error) {
	if len(xs) < 2 {
		return nil, fmt.Errorf("%w: %d samples for %s", ErrInsufficientData, len(xs), family)
	}
	return NewSample(xs).Fit(family)
}

// Fit estimates the maximum-likelihood parameters of the given family,
// reading the sample's cached moments instead of re-scanning the data
// where the estimator allows it.
func (s *Sample) Fit(family Family) (Distribution, error) {
	if s.Len() < 2 {
		return nil, fmt.Errorf("%w: %d samples for %s", ErrInsufficientData, s.Len(), family)
	}
	switch family {
	case FamilyExponential:
		return fitExponential(s)
	case FamilyNormal:
		return fitNormal(s)
	case FamilyLogNormal:
		return fitLogNormal(s)
	case FamilyGamma:
		return fitGamma(s)
	case FamilyWeibull:
		return fitWeibull(s)
	case FamilyPareto:
		return fitPareto(s)
	case FamilyUniform:
		return fitUniform(s)
	case FamilyConstant:
		return fitConstant(s)
	default:
		return nil, fmt.Errorf("stats: unknown family %q", family)
	}
}

// positiveErrs pre-builds the per-family "requires positive samples"
// rejection. SelectBest probes every candidate family against every
// sample, so on data with zeros these errors fire on each call — a
// fmt.Errorf here dominated the allocation profile of model fitting.
var positiveErrs = map[Family]error{
	FamilyExponential: fmt.Errorf("%w: %s requires positive samples", ErrUnsupportedData, FamilyExponential),
	FamilyLogNormal:   fmt.Errorf("%w: %s requires positive samples", ErrUnsupportedData, FamilyLogNormal),
	FamilyGamma:       fmt.Errorf("%w: %s requires positive samples", ErrUnsupportedData, FamilyGamma),
	FamilyWeibull:     fmt.Errorf("%w: %s requires positive samples", ErrUnsupportedData, FamilyWeibull),
	FamilyPareto:      fmt.Errorf("%w: %s requires positive samples", ErrUnsupportedData, FamilyPareto),
}

func requirePositive(s *Sample, family Family) error {
	// The sample is sorted, so the minimum decides for everyone.
	if s.AllPositive() {
		return nil
	}
	if err, ok := positiveErrs[family]; ok {
		return err
	}
	return fmt.Errorf("%w: %s requires positive samples", ErrUnsupportedData, family)
}

// Degenerate-sample rejections, pre-built for the same reason as
// positiveErrs: they fire once per rejected candidate on every
// SelectBest call over constant-heavy samples.
var (
	errZeroVarNormal    = fmt.Errorf("%w: zero variance for normal", ErrDegenerateSample)
	errZeroVarLogNormal = fmt.Errorf("%w: zero log-variance for log-normal", ErrDegenerateSample)
	errGammaDegenerate  = fmt.Errorf("%w: gamma profile statistic not positive", ErrDegenerateSample)
	errWeibullBracket   = fmt.Errorf("%w: weibull shape did not bracket", ErrUnsupportedData)
	errParetoConstant   = fmt.Errorf("%w: pareto on constant sample", ErrDegenerateSample)
	errUniformConstant  = fmt.Errorf("%w: uniform on constant sample", ErrDegenerateSample)
)

func fitExponential(s *Sample) (Distribution, error) {
	if err := requirePositive(s, FamilyExponential); err != nil {
		return nil, err
	}
	return NewExponential(1 / s.Mean())
}

func fitNormal(s *Sample) (Distribution, error) {
	v := s.Variance()
	if v == 0 {
		return nil, errZeroVarNormal
	}
	return NewNormal(s.Mean(), math.Sqrt(v))
}

func fitLogNormal(s *Sample) (Distribution, error) {
	if err := requirePositive(s, FamilyLogNormal); err != nil {
		return nil, err
	}
	v := s.VarLog()
	if v == 0 {
		return nil, errZeroVarLogNormal
	}
	return NewLogNormal(s.MeanLog(), math.Sqrt(v))
}

// fitGamma uses the Minka/Choi-Wette closed-form start followed by Newton
// iterations on the profile likelihood in the shape parameter. Only the
// cached mean and log-mean are needed, so the iteration is O(1) per step.
func fitGamma(s *Sample) (Distribution, error) {
	if err := requirePositive(s, FamilyGamma); err != nil {
		return nil, err
	}
	m := s.Mean()
	sv := math.Log(m) - s.MeanLog()
	if sv <= 0 {
		// All values equal up to fp noise.
		return nil, errGammaDegenerate
	}
	k := (3 - sv + math.Sqrt((sv-3)*(sv-3)+24*sv)) / (12 * sv)
	for i := 0; i < 50; i++ {
		num := math.Log(k) - digamma(k) - sv
		den := 1/k - trigamma(k)
		next := k - num/den
		if next <= 0 {
			next = k / 2
		}
		if math.Abs(next-k) < 1e-12*k {
			k = next
			break
		}
		k = next
	}
	return NewGamma(k, m/k)
}

// fitWeibull solves the MLE shape equation by bisection (robust; the
// equation is monotone in k on (0,∞)). The cached per-element logs turn
// every x^k into a single exp, which roughly halves the cost of each of
// the ~40 bisection evaluations.
func fitWeibull(s *Sample) (Distribution, error) {
	if err := requirePositive(s, FamilyWeibull); err != nil {
		return nil, err
	}
	logs, lm := s.logMoments()
	n := float64(s.Len())
	meanLog := lm.meanLog

	// g(k) = Σ x^k ln x / Σ x^k − 1/k − meanLog; find g(k)=0.
	g := func(k float64) float64 {
		var sumXk, sumXkLog float64
		for _, l := range logs {
			xk := math.Exp(k * l)
			sumXk += xk
			sumXkLog += xk * l
		}
		return sumXkLog/sumXk - 1/k - meanLog
	}
	lo, hi := 1e-3, 1.0
	for g(hi) < 0 {
		hi *= 2
		if hi > 1e6 {
			return nil, errWeibullBracket
		}
	}
	if g(lo) > 0 {
		return nil, errWeibullBracket
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if g(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-10*(1+hi) {
			break
		}
	}
	k := (lo + hi) / 2
	var sumXk float64
	for _, l := range logs {
		sumXk += math.Exp(k * l)
	}
	lambda := math.Pow(sumXk/n, 1/k)
	return NewWeibull(k, lambda)
}

func fitPareto(s *Sample) (Distribution, error) {
	if err := requirePositive(s, FamilyPareto); err != nil {
		return nil, err
	}
	xm := s.Min()
	if s.Max() == xm {
		return nil, errParetoConstant
	}
	// Σ log(x/xm) = Σ log x − n·log xm, both cached or O(1).
	sumLog := s.SumLog() - float64(s.Len())*math.Log(xm)
	if sumLog <= 0 {
		return nil, errParetoConstant
	}
	alpha := float64(s.Len()) / sumLog
	return NewPareto(xm, alpha)
}

func fitUniform(s *Sample) (Distribution, error) {
	if s.Min() == s.Max() {
		return nil, errUniformConstant
	}
	return NewUniform(s.Min(), s.Max())
}

func fitConstant(s *Sample) (Distribution, error) {
	return NewConstant(s.Mean())
}

// LogLikelihood returns the sample log likelihood under d.
func LogLikelihood(d Distribution, xs []float64) float64 {
	var ll float64
	for _, x := range xs {
		ll += d.LogPDF(x)
	}
	return ll
}

// LogLikelihood returns the sample log likelihood under d. For the
// built-in families it is computed from the cached sample moments —
// algebraically identical to summing LogPDF pointwise, but O(1) for
// most families (one exp per point for Weibull) instead of one or more
// transcendental calls per point. Unknown distribution types fall back
// to the generic pointwise sum.
func (s *Sample) LogLikelihood(d Distribution) float64 {
	n := float64(s.Len())
	if n == 0 {
		return 0
	}
	switch dd := d.(type) {
	case Exponential:
		// Σ [log λ − λx]; support x ≥ 0.
		if s.Min() < 0 {
			return math.Inf(-1)
		}
		return n*math.Log(dd.Rate) - dd.Rate*n*s.Mean()
	case Normal:
		// Σ(x−μ)² = Σ(x−x̄)² + n(x̄−μ)² (exact decomposition).
		dm := s.Mean() - dd.Mu
		ss := n * (s.Variance() + dm*dm)
		return -0.5*ss/(dd.Sigma*dd.Sigma) - n*math.Log(dd.Sigma) - 0.5*n*math.Log(2*math.Pi)
	case LogNormal:
		if !s.AllPositive() {
			return math.Inf(-1)
		}
		dm := s.MeanLog() - dd.Mu
		ss := n * (s.VarLog() + dm*dm)
		return -0.5*ss/(dd.Sigma*dd.Sigma) - s.SumLog() - n*math.Log(dd.Sigma) - 0.5*n*math.Log(2*math.Pi)
	case Gamma:
		if !s.AllPositive() {
			return math.Inf(-1)
		}
		lg, _ := math.Lgamma(dd.Shape)
		return (dd.Shape-1)*s.SumLog() - n*s.Mean()/dd.Scale - n*lg - n*dd.Shape*math.Log(dd.Scale)
	case Weibull:
		if !s.AllPositive() {
			return math.Inf(-1)
		}
		logs, _ := s.logMoments()
		logScale := math.Log(dd.Scale)
		var sumZk float64
		for _, l := range logs {
			sumZk += math.Exp(dd.Shape * (l - logScale))
		}
		return n*math.Log(dd.Shape/dd.Scale) + (dd.Shape-1)*(s.SumLog()-n*logScale) - sumZk
	case Pareto:
		// Support x ≥ xm (> 0, so the log cache applies).
		if s.Min() < dd.Xm {
			return math.Inf(-1)
		}
		return n*math.Log(dd.Alpha) + n*dd.Alpha*math.Log(dd.Xm) - (dd.Alpha+1)*s.SumLog()
	case Uniform:
		if s.Min() < dd.A || s.Max() > dd.B {
			return math.Inf(-1)
		}
		return -n * math.Log(dd.B-dd.A)
	case Constant:
		// Sorted: every value equals dd.Value iff min and max do.
		if s.Min() == dd.Value && s.Max() == dd.Value {
			return 0
		}
		return math.Inf(-1)
	default:
		return LogLikelihood(d, s.sorted)
	}
}

// numParams returns the parameter count of a distribution without the
// slice allocation d.Params() costs — AIC/BIC sit in the model-selection
// inner loop, where one alloc per call adds up.
func numParams(d Distribution) float64 {
	switch d.(type) {
	case Exponential, Constant:
		return 1
	case Normal, LogNormal, Gamma, Weibull, Pareto, Uniform:
		return 2
	default:
		return float64(len(d.Params()))
	}
}

// AIC returns Akaike's information criterion for d fitted to xs
// (lower is better).
func AIC(d Distribution, xs []float64) float64 {
	return 2*numParams(d) - 2*LogLikelihood(d, xs)
}

// AIC returns Akaike's information criterion (lower is better).
func (s *Sample) AIC(d Distribution) float64 {
	return 2*numParams(d) - 2*s.LogLikelihood(d)
}

// BIC returns the Bayesian information criterion (lower is better).
func BIC(d Distribution, xs []float64) float64 {
	return numParams(d)*math.Log(float64(len(xs))) - 2*LogLikelihood(d, xs)
}

// BIC returns the Bayesian information criterion (lower is better).
func (s *Sample) BIC(d Distribution) float64 {
	return numParams(d)*math.Log(float64(s.Len())) - 2*s.LogLikelihood(d)
}

// FitResult records one candidate fit during model selection.
type FitResult struct {
	Dist Distribution
	// AIC of the fit (lower better). +Inf if the likelihood degenerated.
	AIC float64
	// KS is the one-sample Kolmogorov–Smirnov distance against the data.
	KS float64
	// Err is non-nil when the family could not be fitted to this sample.
	Err error
}

// DefaultCandidates is the family set Keddah considers for continuous
// traffic statistics, mirroring the paper's empirical-model search.
// Uniform is deliberately excluded: its MLE support hugs the sample
// min/max, which wins AIC on clustered data but generalises terribly
// (generated flows spread evenly where measured ones cluster). Callers
// that want it can pass an explicit candidate list.
var DefaultCandidates = []Family{
	FamilyExponential,
	FamilyNormal,
	FamilyLogNormal,
	FamilyGamma,
	FamilyWeibull,
	FamilyPareto,
}

// relSpread is the coefficient-of-variation threshold under which a sample
// is treated as deterministic and modelled by a Constant.
const relSpread = 1e-6

// SelectBest fits every candidate family and returns the winner by AIC,
// along with all per-family results (sorted best-first). It is a thin
// wrapper over Sample.SelectBest.
func SelectBest(xs []float64, candidates []Family) (Distribution, []FitResult, error) {
	if len(xs) == 0 {
		return nil, nil, ErrInsufficientData
	}
	return NewSample(xs).SelectBest(candidates)
}

// SelectBest fits every candidate family against the sample — sorted
// once, moments shared across families — and returns the winner by AIC,
// along with all per-family results (sorted best-first). Near-constant
// samples short-circuit to a Constant law, which no continuous family
// can represent.
func (s *Sample) SelectBest(candidates []Family) (Distribution, []FitResult, error) {
	if s.Len() == 0 {
		return nil, nil, ErrInsufficientData
	}
	if len(candidates) == 0 {
		candidates = DefaultCandidates
	}
	m := s.Mean()
	sd := s.Std()
	if s.Len() < 2 || (m != 0 && sd/math.Abs(m) < relSpread) || sd == 0 {
		c, err := NewConstant(m)
		if err != nil {
			return nil, nil, err
		}
		return c, []FitResult{{Dist: c, AIC: math.Inf(-1)}}, nil
	}

	results := make([]FitResult, 0, len(candidates))
	for _, fam := range candidates {
		d, err := s.Fit(fam)
		if err != nil {
			results = append(results, FitResult{Err: err, AIC: math.Inf(1), KS: 1})
			continue
		}
		aic := s.AIC(d)
		if math.IsNaN(aic) {
			aic = math.Inf(1)
		}
		results = append(results, FitResult{Dist: d, AIC: aic, KS: s.KS(d)})
	}
	sort.SliceStable(results, func(i, j int) bool { return results[i].AIC < results[j].AIC })
	if results[0].Err != nil || math.IsInf(results[0].AIC, 1) {
		return nil, results, fmt.Errorf("%w: no candidate family fit", ErrUnsupportedData)
	}
	return results[0].Dist, results, nil
}
