package stats

import (
	"math"
	"testing"
	"testing/quick"
)

// allDists builds one instance of every continuous family for generic
// property checks.
func allDists(t *testing.T) []Distribution {
	t.Helper()
	exp, err := NewExponential(0.5)
	if err != nil {
		t.Fatal(err)
	}
	nrm, err := NewNormal(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	lgn, err := NewLogNormal(1, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	gam, err := NewGamma(2.5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	wbl, err := NewWeibull(1.7, 4)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewPareto(1, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := NewUniform(-1, 5)
	if err != nil {
		t.Fatal(err)
	}
	return []Distribution{exp, nrm, lgn, gam, wbl, par, uni}
}

func TestCDFMonotoneAndBounded(t *testing.T) {
	for _, d := range allDists(t) {
		prev := -1.0
		for x := -10.0; x <= 50; x += 0.25 {
			c := d.CDF(x)
			if c < 0 || c > 1 {
				t.Errorf("%s: CDF(%v) = %v out of [0,1]", d, x, c)
			}
			if c < prev-1e-12 {
				t.Errorf("%s: CDF decreasing at %v (%v -> %v)", d, x, prev, c)
			}
			prev = c
		}
	}
}

func TestQuantileInvertsCDF(t *testing.T) {
	for _, d := range allDists(t) {
		for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			x := d.Quantile(p)
			got := d.CDF(x)
			if math.Abs(got-p) > 1e-6 {
				t.Errorf("%s: CDF(Quantile(%v)) = %v", d, p, got)
			}
		}
	}
}

func TestSampleMeanMatchesAnalyticMean(t *testing.T) {
	rng := NewRNG(99)
	const n = 200000
	for _, d := range allDists(t) {
		if math.IsInf(d.Mean(), 0) {
			continue
		}
		var sum float64
		for i := 0; i < n; i++ {
			sum += d.Sample(rng)
		}
		got := sum / n
		want := d.Mean()
		tol := 0.03 * (math.Abs(want) + 1)
		if math.Abs(got-want) > tol {
			t.Errorf("%s: sample mean %v, analytic %v", d, got, want)
		}
	}
}

func TestSamplesRespectSupport(t *testing.T) {
	rng := NewRNG(7)
	exp, _ := NewExponential(2)
	lgn, _ := NewLogNormal(0, 1)
	gam, _ := NewGamma(0.7, 2) // shape < 1 exercises the boost branch
	wbl, _ := NewWeibull(0.8, 1)
	par, _ := NewPareto(3, 1.5)
	for i := 0; i < 10000; i++ {
		if v := exp.Sample(rng); v < 0 {
			t.Fatalf("exponential sample %v < 0", v)
		}
		if v := lgn.Sample(rng); v <= 0 {
			t.Fatalf("lognormal sample %v <= 0", v)
		}
		if v := gam.Sample(rng); v <= 0 {
			t.Fatalf("gamma sample %v <= 0", v)
		}
		if v := wbl.Sample(rng); v <= 0 {
			t.Fatalf("weibull sample %v <= 0", v)
		}
		if v := par.Sample(rng); v < 3 {
			t.Fatalf("pareto sample %v < xm", v)
		}
	}
}

func TestLogPDFOutsideSupport(t *testing.T) {
	exp, _ := NewExponential(1)
	lgn, _ := NewLogNormal(0, 1)
	par, _ := NewPareto(2, 1)
	uni, _ := NewUniform(0, 1)
	cases := []struct {
		d Distribution
		x float64
	}{
		{exp, -1}, {lgn, 0}, {lgn, -3}, {par, 1.5}, {uni, -0.1}, {uni, 1.1},
	}
	for _, c := range cases {
		if v := c.d.LogPDF(c.x); !math.IsInf(v, -1) {
			t.Errorf("%s: LogPDF(%v) = %v, want -Inf", c.d, c.x, v)
		}
	}
}

func TestInvalidParamsRejected(t *testing.T) {
	if _, err := NewExponential(0); err == nil {
		t.Error("Exponential(0) accepted")
	}
	if _, err := NewExponential(-1); err == nil {
		t.Error("Exponential(-1) accepted")
	}
	if _, err := NewNormal(0, 0); err == nil {
		t.Error("Normal sigma=0 accepted")
	}
	if _, err := NewNormal(math.NaN(), 1); err == nil {
		t.Error("Normal mu=NaN accepted")
	}
	if _, err := NewGamma(-1, 1); err == nil {
		t.Error("Gamma shape<0 accepted")
	}
	if _, err := NewWeibull(1, 0); err == nil {
		t.Error("Weibull scale=0 accepted")
	}
	if _, err := NewPareto(0, 1); err == nil {
		t.Error("Pareto xm=0 accepted")
	}
	if _, err := NewUniform(2, 2); err == nil {
		t.Error("Uniform a==b accepted")
	}
	if _, err := NewConstant(math.Inf(1)); err == nil {
		t.Error("Constant(+Inf) accepted")
	}
}

func TestConstantLaw(t *testing.T) {
	c, err := NewConstant(42)
	if err != nil {
		t.Fatal(err)
	}
	if c.CDF(41.9) != 0 || c.CDF(42) != 1 {
		t.Error("constant CDF wrong")
	}
	if c.Quantile(0.3) != 42 || c.Mean() != 42 {
		t.Error("constant quantile/mean wrong")
	}
	if c.Sample(NewRNG(1)) != 42 {
		t.Error("constant sample wrong")
	}
}

func TestParetoInfiniteMean(t *testing.T) {
	p, _ := NewPareto(1, 0.9)
	if !math.IsInf(p.Mean(), 1) {
		t.Errorf("Pareto alpha<1 mean = %v, want +Inf", p.Mean())
	}
}

func TestRNGDeterminismAndFork(t *testing.T) {
	a, b := NewRNG(5), NewRNG(5)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	// Forks of identical parents are identical.
	fa, fb := a.Fork(), b.Fork()
	for i := 0; i < 100; i++ {
		if fa.Float64() != fb.Float64() {
			t.Fatal("forked RNGs diverged")
		}
	}
}

// Property: quantile is monotone in p for every family.
func TestQuantileMonotoneProperty(t *testing.T) {
	dists := allDists(t)
	f := func(a, b uint16) bool {
		p1 := float64(a%9998+1) / 10000
		p2 := float64(b%9998+1) / 10000
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		for _, d := range dists {
			if d.Quantile(p1) > d.Quantile(p2)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
