package stats

import (
	"math"
	"slices"
)

// KSStatistic returns the one-sample Kolmogorov–Smirnov distance
// D = sup_x |F_n(x) − F(x)| between the sample xs and distribution d.
// It is a thin wrapper over Sample.KS; callers computing several
// statistics against one sample should construct the Sample once.
func KSStatistic(xs []float64, d Distribution) float64 {
	if len(xs) == 0 {
		return 0
	}
	return NewSample(xs).KS(d)
}

// KS returns the one-sample Kolmogorov–Smirnov distance
// D = sup_x |F_n(x) − F(x)| against distribution d.
func (s *Sample) KS(d Distribution) float64 {
	if s.Len() == 0 {
		return 0
	}
	n := float64(s.Len())
	var dmax float64
	for i, x := range s.sorted {
		f := d.CDF(x)
		lo := f - float64(i)/n
		hi := float64(i+1)/n - f
		if lo > dmax {
			dmax = lo
		}
		if hi > dmax {
			dmax = hi
		}
	}
	return dmax
}

// KSStatistic2 returns the two-sample KS distance between samples a and b.
// Keddah uses it to compare measured flow statistics against traffic
// regenerated from the fitted model. Both inputs are copied and sorted;
// callers that already hold sorted data (stats.Sample values, ECDF
// views) should use KSStatistic2Sorted.
func KSStatistic2(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	sa := make([]float64, len(a))
	sb := make([]float64, len(b))
	copy(sa, a)
	copy(sb, b)
	slices.Sort(sa)
	slices.Sort(sb)
	return KSStatistic2Sorted(sa, sb)
}

// KSStatistic2Sorted is KSStatistic2 for inputs that are already sorted
// ascending: it skips the defensive copy+sort, which matters for the
// replay and validation experiments that compare one fixed measured
// sample against many generated ones in a loop. Passing unsorted data
// yields a wrong statistic — use KSStatistic2 when unsure.
func KSStatistic2Sorted(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	na, nb := float64(len(a)), float64(len(b))
	var i, j int
	var dmax float64
	for i < len(a) && j < len(b) {
		v := math.Min(a[i], b[j])
		for i < len(a) && a[i] <= v {
			i++
		}
		for j < len(b) && b[j] <= v {
			j++
		}
		d := math.Abs(float64(i)/na - float64(j)/nb)
		if d > dmax {
			dmax = d
		}
	}
	return dmax
}

// KSPValue returns the asymptotic p-value for a one-sample KS statistic d
// with sample size n (Kolmogorov distribution with the Stephens small-n
// correction). Values below ~1e-12 are clamped to 0.
func KSPValue(d float64, n int) float64 {
	if n <= 0 || d <= 0 {
		return 1
	}
	sq := math.Sqrt(float64(n))
	lambda := (sq + 0.12 + 0.11/sq) * d
	return kolmogorovQ(lambda)
}

// KSPValue2 returns the asymptotic p-value of the two-sample KS statistic
// for sample sizes n and m.
func KSPValue2(d float64, n, m int) float64 {
	if n <= 0 || m <= 0 || d <= 0 {
		return 1
	}
	ne := float64(n) * float64(m) / float64(n+m)
	sq := math.Sqrt(ne)
	lambda := (sq + 0.12 + 0.11/sq) * d
	return kolmogorovQ(lambda)
}

// kolmogorovQ evaluates Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}.
func kolmogorovQ(lambda float64) float64 {
	if lambda < 1e-8 {
		return 1
	}
	var sum float64
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k)*float64(k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-14 {
			break
		}
		sign = -sign
	}
	q := 2 * sum
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// CvMStatistic returns the one-sample Cramér–von Mises statistic
// ω² = 1/(12n) + Σ ( (2i−1)/(2n) − F(x_(i)) )². Thin wrapper over
// Sample.CvM.
func CvMStatistic(xs []float64, d Distribution) float64 {
	if len(xs) == 0 {
		return 0
	}
	return NewSample(xs).CvM(d)
}

// CvM returns the one-sample Cramér–von Mises statistic against d.
func (s *Sample) CvM(d Distribution) float64 {
	if s.Len() == 0 {
		return 0
	}
	n := float64(s.Len())
	sum := 1 / (12 * n)
	for i, x := range s.sorted {
		u := (2*float64(i) + 1) / (2 * n)
		diff := u - d.CDF(x)
		sum += diff * diff
	}
	return sum
}

// GoFReport bundles the goodness-of-fit measures Keddah records for a
// chosen distribution.
type GoFReport struct {
	KS      float64 `json:"ks"`
	KSP     float64 `json:"ksPValue"`
	CvM     float64 `json:"cvm"`
	AD      float64 `json:"ad"`
	AIC     float64 `json:"aic"`
	BIC     float64 `json:"bic"`
	LogLik  float64 `json:"logLik"`
	Samples int     `json:"samples"`
}

// Evaluate computes a full goodness-of-fit report of d against xs.
// Thin wrapper over Sample.Evaluate.
func Evaluate(d Distribution, xs []float64) GoFReport {
	return NewSample(xs).Evaluate(d)
}

// Evaluate computes a full goodness-of-fit report of d against the
// sample. The fitted CDF is evaluated once per data point and shared by
// the KS, CvM and AD statistics, instead of each metric re-sorting the
// data and re-walking the CDF.
func (s *Sample) Evaluate(d Distribution) GoFReport {
	n := s.Len()
	ll := s.LogLikelihood(d)
	k := numParams(d)
	r := GoFReport{
		AIC:     2*k - 2*ll,
		BIC:     k*math.Log(float64(n)) - 2*ll,
		LogLik:  ll,
		Samples: n,
	}
	if n == 0 {
		return r
	}
	cdf := make([]float64, n)
	for i, x := range s.sorted {
		cdf[i] = d.CDF(x)
	}
	r.KS = ksFromCDF(cdf)
	r.KSP = KSPValue(r.KS, n)
	r.CvM = cvmFromCDF(cdf)
	r.AD = adFromCDF(cdf)
	return r
}

// ksFromCDF computes the one-sample KS distance from pre-evaluated
// order-statistic CDF values.
func ksFromCDF(cdf []float64) float64 {
	n := float64(len(cdf))
	var dmax float64
	for i, f := range cdf {
		lo := f - float64(i)/n
		hi := float64(i+1)/n - f
		if lo > dmax {
			dmax = lo
		}
		if hi > dmax {
			dmax = hi
		}
	}
	return dmax
}

// cvmFromCDF computes the Cramér–von Mises statistic from pre-evaluated
// CDF values.
func cvmFromCDF(cdf []float64) float64 {
	n := float64(len(cdf))
	sum := 1 / (12 * n)
	for i, f := range cdf {
		u := (2*float64(i) + 1) / (2 * n)
		diff := u - f
		sum += diff * diff
	}
	return sum
}

// adFromCDF computes the Anderson–Darling statistic from pre-evaluated
// CDF values (clamped away from {0,1} to keep the logs finite).
func adFromCDF(cdf []float64) float64 {
	n := len(cdf)
	const eps = 1e-12
	sum := 0.0
	for i := 0; i < n; i++ {
		fi := clamp(cdf[i], eps, 1-eps)
		fj := clamp(cdf[n-1-i], eps, 1-eps)
		sum += (2*float64(i) + 1) * (math.Log(fi) + math.Log(1-fj))
	}
	return -float64(n) - sum/float64(n)
}

// ADStatistic returns the one-sample Anderson–Darling statistic A² of xs
// against d. Unlike KS, A² weights the tails heavily, which is where
// heavy-tailed traffic models go wrong. Thin wrapper over Sample.AD.
func ADStatistic(xs []float64, d Distribution) float64 {
	if len(xs) == 0 {
		return 0
	}
	return NewSample(xs).AD(d)
}

// AD returns the one-sample Anderson–Darling statistic A² against d.
func (s *Sample) AD(d Distribution) float64 {
	if s.Len() == 0 {
		return 0
	}
	cdf := make([]float64, s.Len())
	for i, x := range s.sorted {
		cdf[i] = d.CDF(x)
	}
	return adFromCDF(cdf)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
