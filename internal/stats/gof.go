package stats

import (
	"math"
	"sort"
)

// KSStatistic returns the one-sample Kolmogorov–Smirnov distance
// D = sup_x |F_n(x) − F(x)| between the sample xs and distribution d.
func KSStatistic(xs []float64, d Distribution) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	n := float64(len(s))
	var dmax float64
	for i, x := range s {
		f := d.CDF(x)
		lo := f - float64(i)/n
		hi := float64(i+1)/n - f
		if lo > dmax {
			dmax = lo
		}
		if hi > dmax {
			dmax = hi
		}
	}
	return dmax
}

// KSStatistic2 returns the two-sample KS distance between samples a and b.
// Keddah uses it to compare measured flow statistics against traffic
// regenerated from the fitted model.
func KSStatistic2(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	sa := make([]float64, len(a))
	sb := make([]float64, len(b))
	copy(sa, a)
	copy(sb, b)
	sort.Float64s(sa)
	sort.Float64s(sb)
	na, nb := float64(len(sa)), float64(len(sb))
	var i, j int
	var dmax float64
	for i < len(sa) && j < len(sb) {
		v := math.Min(sa[i], sb[j])
		for i < len(sa) && sa[i] <= v {
			i++
		}
		for j < len(sb) && sb[j] <= v {
			j++
		}
		d := math.Abs(float64(i)/na - float64(j)/nb)
		if d > dmax {
			dmax = d
		}
	}
	return dmax
}

// KSPValue returns the asymptotic p-value for a one-sample KS statistic d
// with sample size n (Kolmogorov distribution with the Stephens small-n
// correction). Values below ~1e-12 are clamped to 0.
func KSPValue(d float64, n int) float64 {
	if n <= 0 || d <= 0 {
		return 1
	}
	sq := math.Sqrt(float64(n))
	lambda := (sq + 0.12 + 0.11/sq) * d
	return kolmogorovQ(lambda)
}

// KSPValue2 returns the asymptotic p-value of the two-sample KS statistic
// for sample sizes n and m.
func KSPValue2(d float64, n, m int) float64 {
	if n <= 0 || m <= 0 || d <= 0 {
		return 1
	}
	ne := float64(n) * float64(m) / float64(n+m)
	sq := math.Sqrt(ne)
	lambda := (sq + 0.12 + 0.11/sq) * d
	return kolmogorovQ(lambda)
}

// kolmogorovQ evaluates Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}.
func kolmogorovQ(lambda float64) float64 {
	if lambda < 1e-8 {
		return 1
	}
	var sum float64
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k)*float64(k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-14 {
			break
		}
		sign = -sign
	}
	q := 2 * sum
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// CvMStatistic returns the one-sample Cramér–von Mises statistic
// ω² = 1/(12n) + Σ ( (2i−1)/(2n) − F(x_(i)) )².
func CvMStatistic(xs []float64, d Distribution) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := make([]float64, n)
	copy(s, xs)
	sort.Float64s(s)
	sum := 1 / (12 * float64(n))
	for i, x := range s {
		u := (2*float64(i) + 1) / (2 * float64(n))
		diff := u - d.CDF(x)
		sum += diff * diff
	}
	return sum
}

// GoFReport bundles the goodness-of-fit measures Keddah records for a
// chosen distribution.
type GoFReport struct {
	KS      float64 `json:"ks"`
	KSP     float64 `json:"ksPValue"`
	CvM     float64 `json:"cvm"`
	AD      float64 `json:"ad"`
	AIC     float64 `json:"aic"`
	BIC     float64 `json:"bic"`
	LogLik  float64 `json:"logLik"`
	Samples int     `json:"samples"`
}

// Evaluate computes a full goodness-of-fit report of d against xs.
func Evaluate(d Distribution, xs []float64) GoFReport {
	ks := KSStatistic(xs, d)
	return GoFReport{
		KS:      ks,
		KSP:     KSPValue(ks, len(xs)),
		CvM:     CvMStatistic(xs, d),
		AD:      ADStatistic(xs, d),
		AIC:     AIC(d, xs),
		BIC:     BIC(d, xs),
		LogLik:  LogLikelihood(d, xs),
		Samples: len(xs),
	}
}

// ADStatistic returns the one-sample Anderson–Darling statistic A² of xs
// against d. Unlike KS, A² weights the tails heavily, which is where
// heavy-tailed traffic models go wrong. CDF values are clamped away from
// {0,1} to keep the logs finite for samples outside the fitted support.
func ADStatistic(xs []float64, d Distribution) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := make([]float64, n)
	copy(s, xs)
	sort.Float64s(s)
	const eps = 1e-12
	sum := 0.0
	for i := 0; i < n; i++ {
		fi := clamp(d.CDF(s[i]), eps, 1-eps)
		fj := clamp(d.CDF(s[n-1-i]), eps, 1-eps)
		sum += (2*float64(i) + 1) * (math.Log(fi) + math.Log(1-fj))
	}
	return -float64(n) - sum/float64(n)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
