package workload

import (
	"fmt"

	"keddah/internal/hadoop"
	"keddah/internal/hadoop/mapreduce"
)

// RunSpec is one workload execution request.
type RunSpec struct {
	// Profile names the workload ("terasort", …).
	Profile string
	// InputBytes sizes the dataset. If the input file does not exist it
	// is ingested first (generating HDFS load traffic).
	InputBytes int64
	// Reducers overrides the profile's sizing rule when > 0.
	Reducers int
	// JobName labels flows; defaults to "<profile><seq>".
	JobName string
	// InputPath overrides the dataset path (default derived from
	// profile + size so equal datasets are ingested once).
	InputPath string
}

// RunResult aggregates the per-round results of one workload run.
type RunResult struct {
	Spec   RunSpec
	Rounds []mapreduce.Result
}

// TotalDuration sums the submitted→finished span across rounds.
func (r RunResult) TotalDuration() (d int64) {
	for _, round := range r.Rounds {
		d += int64(round.Duration())
	}
	return d
}

// Run schedules the workload on the cluster. Iterative profiles submit
// one MapReduce round after another; every round re-reads the (round-
// specific) input as the real jobs do. done receives the aggregate
// result. Call before Cluster.RunToIdle.
func Run(c *hadoop.Cluster, spec RunSpec, seq int, done func(RunResult)) error {
	prof, err := Get(spec.Profile)
	if err != nil {
		return err
	}
	if spec.JobName == "" {
		spec.JobName = fmt.Sprintf("%s%d", prof.Name, seq)
	}
	if spec.InputPath == "" {
		spec.InputPath = fmt.Sprintf("/data/%s-%d", prof.Name, spec.InputBytes)
	}
	reducers := spec.Reducers
	if prof.MapOnly {
		reducers = 0
	} else if reducers <= 0 {
		reducers = prof.Reducers(spec.InputBytes, c.RM.TotalSlots())
	}

	result := &RunResult{Spec: spec}

	var runRound func(round int, inputPath string)
	runRound = func(round int, inputPath string) {
		jobCfg := mapreduce.JobConfig{
			Name:               fmt.Sprintf("%s-r%d", spec.JobName, round),
			InputPath:          inputPath,
			OutputPath:         fmt.Sprintf("/out/%s/round%d", spec.JobName, round),
			NumReducers:        reducers,
			MapSelectivity:     prof.MapSelectivity,
			ReduceSelectivity:  prof.ReduceSelectivity,
			OutputReplication:  prof.OutputReplication,
			MapCostSecPerMB:    prof.MapCostSecPerMB,
			ReduceCostSecPerMB: prof.ReduceCostSecPerMB,
		}
		err := c.Submit(jobCfg, func(res mapreduce.Result) {
			result.Rounds = append(result.Rounds, res)
			if round+1 < prof.Rounds {
				// Iterative jobs re-read the original dataset each
				// round (model state travels via the small output).
				runRound(round+1, spec.InputPath)
				return
			}
			if done != nil {
				done(*result)
			}
		})
		if err != nil {
			// Submission failures inside callbacks indicate a broken
			// experiment setup; surface loudly.
			panic(fmt.Sprintf("workload: submit round %d of %s: %v", round, spec.JobName, err))
		}
	}

	startJob := func() { runRound(0, spec.InputPath) }
	if c.FS.Exists(spec.InputPath) {
		// The dataset is already ingested — or another run's ingest is
		// in flight; either way start once it is complete.
		return c.FS.WhenComplete(spec.InputPath, startJob)
	}
	return c.Ingest(spec.InputPath, spec.InputBytes, startJob)
}
