package workload

import "testing"

func TestEstimatePeakFlows(t *testing.T) {
	specs := []RunSpec{{Profile: "terasort", InputBytes: 1 << 30}}
	got := EstimatePeakFlows(specs, 16, 4, 3)
	// 16 workers × 4 slots × 5 parallel shuffle fetches + 2×16 heartbeats + 16.
	if want := 16*4*5 + 2*16 + 16; got != want {
		t.Fatalf("EstimatePeakFlows = %d, want %d", got, want)
	}
	// Defaults kick in for non-positive cluster parameters.
	if got := EstimatePeakFlows(nil, 0, 0, 0); got <= 0 {
		t.Fatalf("EstimatePeakFlows with defaults = %d, want positive", got)
	}
	// A map-only profile drops the shuffle bound to the replication depth.
	mapOnly := []RunSpec{{Profile: "dfsio-write", InputBytes: 1 << 30}}
	if s, m := EstimatePeakFlows(specs, 16, 4, 3), EstimatePeakFlows(mapOnly, 16, 4, 3); m >= s {
		t.Fatalf("map-only estimate %d should be below shuffle estimate %d", m, s)
	}
}

func TestEstimatePeakFlowsMultiPod(t *testing.T) {
	specs := []RunSpec{{Profile: "terasort", InputBytes: 1 << 30}}
	base := EstimatePeakFlows(specs, 32, 4, 3)

	// Skewed fan-in: in an 8-pod federation where every transfer targets
	// one pod, that pod must be sized for all 7 inbound transfers — two
	// flow slots each (ingress plus possible relay leg) on top of its own
	// workload peak.
	skewed := EstimatePeakFlowsMultiPod(specs, 32, 4, 3, 7)
	if want := base + 2*7 + 8; skewed != want {
		t.Fatalf("skewed fan-in estimate = %d, want %d", skewed, want)
	}

	// The bound is monotone in the fan-in: more concurrent inbound
	// transfers can never shrink the reservation.
	prev := 0
	for inbound := 1; inbound <= 16; inbound++ {
		got := EstimatePeakFlowsMultiPod(specs, 32, 4, 3, inbound)
		if got <= prev {
			t.Fatalf("estimate not monotone: inbound=%d gave %d after %d", inbound, got, prev)
		}
		if got < base {
			t.Fatalf("multi-pod estimate %d below single-pod base %d", got, base)
		}
		prev = got
	}

	// inbound below one clamps rather than under-sizing the gateway.
	if got, min := EstimatePeakFlowsMultiPod(specs, 32, 4, 3, 0), base+2+8; got != min {
		t.Fatalf("clamped estimate = %d, want %d", got, min)
	}
}
