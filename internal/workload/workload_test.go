package workload

import (
	"testing"

	"keddah/internal/hadoop"
	"keddah/internal/netsim"
)

func TestGetKnownProfiles(t *testing.T) {
	names := Names()
	want := []string{"bayes", "grep", "join", "kmeans", "pagerank", "scan", "sort", "terasort", "wordcount"}
	if len(names) != len(want) {
		t.Fatalf("profiles = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("names[%d] = %s, want %s", i, names[i], n)
		}
		p, err := Get(n)
		if err != nil {
			t.Errorf("Get(%s): %v", n, err)
		}
		if p.Name != n {
			t.Errorf("profile name %s != key %s", p.Name, n)
		}
		if p.Rounds < 1 {
			t.Errorf("%s rounds = %d", n, p.Rounds)
		}
	}
	if _, err := Get("bogus"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestProfileTrafficCharacters(t *testing.T) {
	sort, _ := Get("sort")
	grep, _ := Get("grep")
	kmeans, _ := Get("kmeans")
	pagerank, _ := Get("pagerank")
	if sort.MapSelectivity != 1 || sort.ReduceSelectivity != 1 {
		t.Error("sort must be identity in both stages")
	}
	if grep.MapSelectivity > 0.01 {
		t.Error("grep must have near-zero shuffle")
	}
	if kmeans.Rounds < 2 || pagerank.Rounds < 2 {
		t.Error("iterative profiles must have multiple rounds")
	}
	terasort, _ := Get("terasort")
	if terasort.OutputReplication != 1 {
		t.Error("terasort writes single-replica output")
	}
	scan, _ := Get("scan")
	if !scan.MapOnly {
		t.Error("scan must be map-only")
	}
	join, _ := Get("join")
	if join.MapSelectivity <= 1 {
		t.Error("join shuffles more than its input")
	}
}

func TestRunMapOnlyWorkload(t *testing.T) {
	c := newCluster(t, 8, 6)
	var got RunResult
	err := Run(c, RunSpec{Profile: "scan", InputBytes: 256 << 20}, 0, func(r RunResult) { got = r })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunToIdle(); err != nil {
		t.Fatal(err)
	}
	round := got.Rounds[0]
	if round.Reducers != 0 {
		t.Errorf("scan ran %d reducers", round.Reducers)
	}
	if round.ShuffleBytes != 0 {
		t.Errorf("scan shuffled %d bytes", round.ShuffleBytes)
	}
	if round.OutputBytes <= 0 {
		t.Error("scan wrote no output")
	}
}

func TestReducersSizing(t *testing.T) {
	p, _ := Get("sort") // 4 per GB
	if n := p.Reducers(1<<30, 100); n != 4 {
		t.Errorf("1 GB → %d reducers, want 4", n)
	}
	if n := p.Reducers(8<<30, 100); n != 32 {
		t.Errorf("8 GB → %d reducers, want 32", n)
	}
	if n := p.Reducers(8<<30, 8); n != 8 {
		t.Errorf("slot clamp → %d, want 8", n)
	}
	if n := p.Reducers(1, 100); n != 1 {
		t.Errorf("tiny input → %d, want 1", n)
	}
}

func newCluster(t *testing.T, workers int, seed int64) *hadoop.Cluster {
	t.Helper()
	topo, err := netsim.Star(workers+1, netsim.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	c, err := hadoop.New(topo, hadoop.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunSingleRoundWorkload(t *testing.T) {
	c := newCluster(t, 8, 1)
	var got RunResult
	err := Run(c, RunSpec{Profile: "terasort", InputBytes: 512 << 20}, 0, func(r RunResult) { got = r })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunToIdle(); err != nil {
		t.Fatal(err)
	}
	if len(got.Rounds) != 1 {
		t.Fatalf("rounds = %d, want 1", len(got.Rounds))
	}
	if got.Rounds[0].InputBytes != 512<<20 {
		t.Errorf("input = %d", got.Rounds[0].InputBytes)
	}
	if got.TotalDuration() <= 0 {
		t.Error("zero total duration")
	}
}

func TestRunIterativeWorkload(t *testing.T) {
	c := newCluster(t, 8, 2)
	var got RunResult
	err := Run(c, RunSpec{Profile: "kmeans", InputBytes: 256 << 20}, 0, func(r RunResult) { got = r })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunToIdle(); err != nil {
		t.Fatal(err)
	}
	prof, _ := Get("kmeans")
	if len(got.Rounds) != prof.Rounds {
		t.Fatalf("rounds = %d, want %d", len(got.Rounds), prof.Rounds)
	}
	// Every round re-reads the same input.
	for i, r := range got.Rounds {
		if r.InputBytes != 256<<20 {
			t.Errorf("round %d input = %d", i, r.InputBytes)
		}
		if r.ShuffleBytes > r.InputBytes/100 {
			t.Errorf("kmeans round %d shuffle = %d, want tiny", i, r.ShuffleBytes)
		}
	}
}

func TestRunReusesExistingInput(t *testing.T) {
	c := newCluster(t, 8, 3)
	done := 0
	for i := 0; i < 2; i++ {
		err := Run(c, RunSpec{Profile: "grep", InputBytes: 256 << 20}, i, func(RunResult) { done++ })
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.RunToIdle(); err != nil {
		t.Fatal(err)
	}
	if done != 2 {
		t.Fatalf("completed %d runs, want 2", done)
	}
	// Both runs share one dataset path; only one ingest happened.
	if !c.FS.Exists("/data/grep-268435456") {
		t.Error("expected shared dataset path")
	}
}

func TestRunUnknownProfile(t *testing.T) {
	c := newCluster(t, 4, 4)
	if err := Run(c, RunSpec{Profile: "nope", InputBytes: 1 << 20}, 0, nil); err == nil {
		t.Error("unknown profile accepted")
	}
}
