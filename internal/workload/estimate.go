package workload

// shuffleParallelFetches mirrors the mapreduce default for
// mapreduce.reduce.shuffle.parallelcopies: the per-reducer bound on
// concurrent shuffle fetch flows.
const shuffleParallelFetches = 5

// EstimatePeakFlows predicts the peak number of concurrent network flows
// a capture session over the given (sequentially executed) workload runs
// can hold, from the profiles' traffic character and the cluster's task
// concurrency. The estimate intentionally rounds up: it pre-sizes the
// network's flow storage (Network.Reserve) so the steady-state capture
// loop never grows a slab mid-run, and overshooting costs only a few
// hundred bytes per slot.
//
// Per occupied task slot the flow fan-out is bounded by the larger of the
// HDFS pipeline depth (a map or reduce commit drives `replication`
// hop-flows; ingest does the same) and the reducer's parallel shuffle
// fetches. On top sit the cluster-wide heartbeat flows (YARN node
// managers and HDFS datanodes each keep roughly one in flight per worker)
// plus fixed headroom for control traffic.
func EstimatePeakFlows(specs []RunSpec, workers, slotsPerNode, replication int) int {
	if workers <= 0 {
		workers = 1
	}
	if slotsPerNode <= 0 {
		slotsPerNode = 4
	}
	if replication <= 0 {
		replication = 3
	}
	slots := workers * slotsPerNode

	perSlot := replication
	for _, rs := range specs {
		p, err := Get(rs.Profile)
		if err != nil {
			continue
		}
		if !p.MapOnly && shuffleParallelFetches > perSlot {
			perSlot = shuffleParallelFetches
		}
		if p.OutputReplication > perSlot {
			perSlot = p.OutputReplication
		}
	}
	if perSlot < 2 {
		perSlot = 2
	}
	return slots*perSlot + 2*workers + 16
}

// EstimatePeakFlowsMultiPod sizes one pod's flow storage for a multi-pod
// capture: the pod's own workload peak plus headroom for inter-pod
// fabric traffic funnelling through its gateway. inbound is the worst-
// case number of concurrent inter-pod transfers targeting or leaving
// this pod — under skewed placement (every reducer in one pod) that is
// the full transfer fan-in, so callers pass the pessimistic bound rather
// than the mean. Each transfer holds at most two flows inside a pod (an
// egress and an ingress leg never coexist for one transfer, but relay
// traffic can add a second), hence the factor of two.
func EstimatePeakFlowsMultiPod(specs []RunSpec, podWorkers, slotsPerNode, replication, inbound int) int {
	if inbound < 1 {
		inbound = 1
	}
	return EstimatePeakFlows(specs, podWorkers, slotsPerNode, replication) + 2*inbound + 8
}
