// Package workload defines the benchmark job profiles the paper drives
// its measurement study with (HiBench-style WordCount, Sort, TeraSort,
// Grep, PageRank and KMeans) and a runner that executes them — including
// multi-round iterative jobs — on a simulated cluster.
//
// A profile is characterised by its phase byte-selectivities, which are
// properties of the algorithm and determine the traffic mix: a sort
// shuffles everything it reads, a grep shuffles almost nothing, iterative
// ML jobs re-read their input every round but shuffle only model-sized
// state.
package workload

import (
	"fmt"
	"sort"
)

// Profile describes one benchmark job type.
type Profile struct {
	// Name is the canonical lower-case workload name.
	Name string
	// MapSelectivity is map-output bytes per input byte.
	MapSelectivity float64
	// ReduceSelectivity is job-output bytes per shuffled byte.
	ReduceSelectivity float64
	// MapCostSecPerMB / ReduceCostSecPerMB model task compute cost.
	MapCostSecPerMB    float64
	ReduceCostSecPerMB float64
	// Rounds > 1 marks an iterative job (each round is one MapReduce
	// pass over the same input, as PageRank and KMeans do).
	Rounds int
	// OutputReplication overrides HDFS replication for job output
	// (0 = default 3; TeraSort conventionally writes 1 replica).
	OutputReplication int
	// ReducersPerGB sizes the reduce stage from the input
	// (bounded by cluster slots at run time).
	ReducersPerGB float64
	// MapOnly jobs have no reduce stage: map output commits straight to
	// HDFS and there is no shuffle.
	MapOnly bool
	// Description summarises the traffic character for documentation.
	Description string
}

// The six benchmark workloads, keyed by name.
var profiles = map[string]Profile{
	"wordcount": {
		Name:               "wordcount",
		MapSelectivity:     0.08, // combiner collapses counts before shuffle
		ReduceSelectivity:  0.40,
		MapCostSecPerMB:    0.030,
		ReduceCostSecPerMB: 0.020,
		Rounds:             1,
		ReducersPerGB:      2,
		Description:        "CPU-bound aggregation; small shuffle, tiny output",
	},
	"sort": {
		Name:               "sort",
		MapSelectivity:     1.0, // identity map
		ReduceSelectivity:  1.0, // identity reduce
		MapCostSecPerMB:    0.010,
		ReduceCostSecPerMB: 0.012,
		Rounds:             1,
		ReducersPerGB:      4,
		Description:        "I/O-bound; shuffle ≈ input, output ≈ input (3-way replicated)",
	},
	"terasort": {
		Name:               "terasort",
		MapSelectivity:     1.0,
		ReduceSelectivity:  1.0,
		MapCostSecPerMB:    0.012,
		ReduceCostSecPerMB: 0.015,
		Rounds:             1,
		OutputReplication:  1, // TeraSort writes single-replica output
		ReducersPerGB:      4,
		Description:        "shuffle-dominated benchmark sort; 1-replica output",
	},
	"grep": {
		Name:               "grep",
		MapSelectivity:     0.002, // only matching lines leave the mapper
		ReduceSelectivity:  1.0,
		MapCostSecPerMB:    0.008,
		ReduceCostSecPerMB: 0.010,
		Rounds:             1,
		ReducersPerGB:      0.5,
		Description:        "scan-heavy filter; negligible shuffle and output",
	},
	"pagerank": {
		Name:               "pagerank",
		MapSelectivity:     1.2, // rank contributions along every edge
		ReduceSelectivity:  0.25,
		MapCostSecPerMB:    0.020,
		ReduceCostSecPerMB: 0.018,
		Rounds:             3,
		ReducersPerGB:      2,
		Description:        "iterative graph job; moderate shuffle every round",
	},
	"bayes": {
		Name:               "bayes",
		MapSelectivity:     0.35, // term-frequency vectors
		ReduceSelectivity:  0.30,
		MapCostSecPerMB:    0.040,
		ReduceCostSecPerMB: 0.025,
		Rounds:             1,
		ReducersPerGB:      2,
		Description:        "naive-bayes training; moderate shuffle, compact model output",
	},
	"join": {
		Name:               "join",
		MapSelectivity:     1.1, // both relations tagged and emitted
		ReduceSelectivity:  0.6,
		MapCostSecPerMB:    0.015,
		ReduceCostSecPerMB: 0.020,
		Rounds:             1,
		ReducersPerGB:      4,
		Description:        "repartition join; shuffle slightly above input",
	},
	"scan": {
		Name:            "scan",
		MapSelectivity:  1.0, // full copy of qualifying rows
		MapCostSecPerMB: 0.006,
		Rounds:          1,
		MapOnly:         true,
		Description:     "map-only table scan/copy; no shuffle at all",
	},
	"kmeans": {
		Name:               "kmeans",
		MapSelectivity:     0.0005, // per-centroid partial sums only
		ReduceSelectivity:  0.05,
		MapCostSecPerMB:    0.050,
		ReduceCostSecPerMB: 0.010,
		Rounds:             3,
		ReducersPerGB:      0.25,
		Description:        "iterative ML; re-reads input every round, near-zero shuffle",
	},
}

// Get returns the named profile.
func Get(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown profile %q (have %v)", name, Names())
	}
	return p, nil
}

// Names lists the available workloads in sorted order.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for k := range profiles {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Reducers sizes the reduce stage for an input, clamped to [1, maxSlots].
func (p Profile) Reducers(inputBytes int64, maxSlots int) int {
	gb := float64(inputBytes) / (1 << 30)
	n := int(p.ReducersPerGB*gb + 0.5)
	if n < 1 {
		n = 1
	}
	if maxSlots > 0 && n > maxSlots {
		n = maxSlots
	}
	return n
}
