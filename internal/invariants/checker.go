package invariants

import (
	"fmt"
	"strings"

	"keddah/internal/hadoop"
	"keddah/internal/pcap"
	"keddah/internal/telemetry"
)

// wireErr describes a wire-conservation failure.
func wireErr(wire, repl int64, rel string) error {
	return fmt.Errorf("write-pipeline wire bytes %d vs replica-pinned bytes %d (want wire %s pinned)", wire, repl, rel)
}

// Options tunes a Checker. The zero value is usable: checks sample every
// defaultEvery engine steps, with the (expensive) allocator oracle on
// every defaultOracleEvery-th sweep, and violations carry no span context.
type Options struct {
	// Tracer, when non-nil, supplies the span context attached to
	// violations.
	Tracer *telemetry.Tracer
	// Every is the number of engine steps between layer sweeps
	// (default 64).
	Every int
	// OracleEvery runs the from-scratch max-min allocator oracle on every
	// OracleEvery-th sweep (default 8) — it is O(rounds × flows × links),
	// far heavier than the other checks.
	OracleEvery int
}

const (
	defaultEvery       = 64
	defaultOracleEvery = 8
)

// Checker samples cross-layer invariants of a running cluster. Create
// with Attach; every check is read-only, so a checked capture's
// trajectory is identical to an unchecked one.
type Checker struct {
	cluster *hadoop.Cluster
	opts    Options
	steps   int
	sweeps  int
}

// Attach installs a Checker as the cluster's step hook: after every
// event the cluster's RunToIdle loop processes, the checker counts the
// step and — at the sampling interval — sweeps the netsim, HDFS, YARN,
// and MapReduce invariants. A violation aborts the run through
// RunToIdle's error path.
func Attach(cluster *hadoop.Cluster, opts Options) *Checker {
	if opts.Every <= 0 {
		opts.Every = defaultEvery
	}
	if opts.OracleEvery <= 0 {
		opts.OracleEvery = defaultOracleEvery
	}
	ck := &Checker{cluster: cluster, opts: opts}
	cluster.SetStepCheck(ck.step)
	return ck
}

// step is the per-event hook: run a sweep every opts.Every steps.
func (ck *Checker) step() error {
	ck.steps++
	if ck.steps%ck.opts.Every != 0 {
		return nil
	}
	ck.sweeps++
	return ck.sweep(ck.sweeps%ck.opts.OracleEvery == 0)
}

// Steps returns how many engine steps the checker has observed.
func (ck *Checker) Steps() int { return ck.steps }

// Sweep runs one layer sweep on demand, keeping the checker's oracle
// cadence. Multi-pod captures call it from the sharded scheduler's
// barrier hook — paced by processed-event deltas rather than per-event
// steps — where no shard goroutine is in flight, so the read-only checks
// stay race-free.
func (ck *Checker) Sweep() error {
	ck.sweeps++
	return ck.sweep(ck.sweeps%ck.opts.OracleEvery == 0)
}

// sweep runs every layer's invariant check once, optionally including
// the max-min allocator oracle.
func (ck *Checker) sweep(withOracle bool) error {
	now := int64(ck.cluster.Eng.Now())
	if err := ck.cluster.Net.VerifyState(); err != nil {
		return violation("netsim", "state", now, ck.opts.Tracer, err)
	}
	if withOracle {
		if err := ck.cluster.Net.CheckAllocatorOracle(); err != nil {
			return violation("netsim", "maxmin-oracle", now, ck.opts.Tracer, err)
		}
	}
	if err := ck.cluster.FS.VerifyInvariants(); err != nil {
		return violation("hdfs", "conservation", now, ck.opts.Tracer, err)
	}
	if err := ck.cluster.RM.VerifyInvariants(); err != nil {
		return violation("yarn", "slots", now, ck.opts.Tracer, err)
	}
	for _, j := range ck.cluster.Jobs() {
		if err := j.VerifyInvariants(); err != nil {
			return violation("mr", "shuffle-conservation", now, ck.opts.Tracer, err)
		}
	}
	return nil
}

// Final runs the end-of-capture checks once the cluster is idle: a full
// layer sweep including the allocator oracle, per-flow packet-train
// verification, and HDFS wire conservation against the capture's ground
// truth. faultFree asserts exact conservation — every byte the replica
// placement pins was carried exactly once by a write-pipeline flow;
// under fault injection, recovery restreaming makes the wire side a
// lower bound instead.
func (ck *Checker) Final(capture *pcap.Capture, faultFree bool) error {
	if err := ck.sweep(true); err != nil {
		return err
	}
	if capture == nil {
		return nil
	}
	now := int64(ck.cluster.Eng.Now())
	if err := capture.VerifyTrains(); err != nil {
		return violation("pcap", "train", now, ck.opts.Tracer, err)
	}
	var wire int64
	for _, tr := range capture.Truth() {
		if strings.HasSuffix(tr.Label, "/hdfsWrite") ||
			strings.HasSuffix(tr.Label, "/hdfsWrite-recovery") ||
			strings.HasSuffix(tr.Label, "/reReplication") {
			wire += tr.Bytes
		}
	}
	repl := ck.cluster.FS.ReplicatedBytes()
	if faultFree && wire != repl {
		return violation("hdfs", "wire-conservation", now, ck.opts.Tracer,
			wireErr(wire, repl, "=="))
	}
	if !faultFree && wire < repl {
		return violation("hdfs", "wire-conservation", now, ck.opts.Tracer,
			wireErr(wire, repl, ">="))
	}
	return nil
}
