package invariants

import (
	"keddah/internal/netsim"
	"keddah/internal/telemetry"
)

// CheckInterPod runs the inter-pod fabric's conservation check (transfer
// accounting, egress/ingress byte ordering) and wraps any failure as an
// interpod-layer violation. Call it at window barriers or after a drain,
// where the fabric's cross-shard counters are exact.
func CheckInterPod(ip *netsim.InterPod, nowNs int64, tracer *telemetry.Tracer) error {
	if ip == nil {
		return nil
	}
	if err := ip.CheckInvariants(); err != nil {
		return violation("interpod", "conservation", nowNs, tracer, err)
	}
	return nil
}
