//go:build keddah_checks

package invariants

// BuildEnabled reports whether the binary was built with the
// keddah_checks tag, which forces invariant checking on for every
// capture regardless of CaptureOpts.StrictChecks.
const BuildEnabled = true
