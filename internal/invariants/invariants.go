// Package invariants is the runtime checking layer of the toolchain: it
// asserts cross-layer conservation and ordering properties of a running
// capture — link capacity and max-min optimality in netsim, byte
// conservation in HDFS, slot accounting and failure-detection deadlines
// in YARN, shuffle conservation and re-execution accounting in
// MapReduce, and packet-train well-formedness in pcap.
//
// The layer is zero-cost when disabled: checks run only when a capture
// opts in (core.CaptureOpts.StrictChecks) or the binary is built with
// the keddah_checks tag (which turns BuildEnabled on and forces checks
// for every capture). Checks are strictly read-only — they draw no
// randomness and schedule no events — so a checked run's trajectory is
// byte-identical to an unchecked one.
package invariants

import (
	"errors"
	"fmt"
	"strings"

	"keddah/internal/telemetry"
)

// ErrViolation is wrapped by every Violation, so callers can classify
// invariant failures with errors.Is regardless of layer.
var ErrViolation = errors.New("invariants: violation")

// maxContextSpans bounds how many telemetry spans a Violation carries.
const maxContextSpans = 5

// Violation is one failed invariant: which layer and rule fired, at what
// simulated time, and — when a tracer was attached — the most recent
// telemetry spans, which place the violation inside the phases that led
// to it.
type Violation struct {
	// Layer is the subsystem that failed ("netsim", "hdfs", "yarn",
	// "mr", "pcap").
	Layer string
	// Rule names the violated invariant ("link-capacity",
	// "shuffle-conservation", ...).
	Rule string
	// AtNs is the simulated time of the check that fired.
	AtNs int64
	// Detail is the human-readable description with the observed values.
	Detail string
	// Spans holds the most recently started telemetry spans at the time
	// of the violation (empty without an attached tracer).
	Spans []telemetry.Span
}

// Error renders the violation with its span context.
func (v *Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "invariants: %s/%s violated at t=%dns: %s", v.Layer, v.Rule, v.AtNs, v.Detail)
	for _, s := range v.Spans {
		fmt.Fprintf(&b, "\n  in span %s/%s %s [%d..%d]", s.Cat, s.Name, s.Attr, s.StartNs, s.EndNs)
	}
	return b.String()
}

// Unwrap makes errors.Is(err, ErrViolation) match.
func (v *Violation) Unwrap() error { return ErrViolation }

// violation wraps a layer check error into a Violation, attaching span
// context from the tracer (nil-safe).
func violation(layer, rule string, atNs int64, tracer *telemetry.Tracer, err error) *Violation {
	v := &Violation{Layer: layer, Rule: rule, AtNs: atNs, Detail: err.Error()}
	if spans := tracer.Spans(); len(spans) > 0 {
		// Spans() sorts by start time; the tail is the most recent phase
		// context.
		n := len(spans)
		if n > maxContextSpans {
			spans = spans[n-maxContextSpans:]
		}
		v.Spans = spans
	}
	return v
}
