//go:build !keddah_checks

package invariants

// BuildEnabled is false in default builds: invariant checking runs only
// for captures that opt in via CaptureOpts.StrictChecks.
const BuildEnabled = false
