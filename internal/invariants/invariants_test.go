package invariants_test

import (
	"errors"
	"strings"
	"testing"

	"keddah/internal/core"
	"keddah/internal/faults"
	"keddah/internal/invariants"
	"keddah/internal/pcap"
	"keddah/internal/telemetry"
	"keddah/internal/workload"
)

func TestViolationRendersContextAndMatchesErrViolation(t *testing.T) {
	v := &invariants.Violation{
		Layer:  "hdfs",
		Rule:   "conservation",
		AtNs:   42,
		Detail: "BytesWritten drifted",
		Spans: []telemetry.Span{
			{Cat: "mr", Name: "map", Attr: "job0", StartNs: 10, EndNs: 40},
		},
	}
	msg := v.Error()
	for _, want := range []string{"hdfs/conservation", "t=42ns", "BytesWritten drifted", "mr/map"} {
		if !strings.Contains(msg, want) {
			t.Errorf("rendered violation %q missing %q", msg, want)
		}
	}
	if !errors.Is(v, invariants.ErrViolation) {
		t.Error("Violation does not match ErrViolation with errors.Is")
	}
	var got *invariants.Violation
	if !errors.As(error(v), &got) {
		t.Error("errors.As failed to recover the Violation")
	}
}

// TestCheckerSilentOnSeedCaptures: strict checks pass on healthy
// captures — fault-free, with crash-stop failures, and with a random
// fault schedule — at an aggressive sampling interval.
func TestCheckerSilentOnSeedCaptures(t *testing.T) {
	spec := core.ClusterSpec{Workers: 8, Seed: 5}
	runSpec := []workload.RunSpec{{Profile: "terasort", InputBytes: 64 << 20}}
	if _, _, err := core.CaptureWith(spec, runSpec, core.CaptureOpts{StrictChecks: true}); err != nil {
		t.Fatalf("strict fault-free capture: %v", err)
	}
	sched := faults.Random(7, faults.RandomOpts{
		N: 3, Links: 18, Workers: 8,
		WindowStartNs: 2_000_000_000, WindowEndNs: 20_000_000_000,
	})
	if _, _, err := core.CaptureWith(spec, runSpec, core.CaptureOpts{StrictChecks: true, Faults: sched}); err != nil {
		t.Fatalf("strict faulted capture: %v", err)
	}
}

// TestCheckerAbortsRunOnCorruptedState: Attach wires the checker into
// the cluster's event loop; a corrupted counter surfaces as a typed
// Violation through RunToIdle's error path.
func TestCheckerAbortsRunOnCorruptedState(t *testing.T) {
	spec := core.ClusterSpec{Workers: 8, Seed: 5}
	cluster, err := spec.BuildCluster()
	if err != nil {
		t.Fatal(err)
	}
	ck := invariants.Attach(cluster, invariants.Options{Every: 1})
	if err := workload.Run(cluster, workload.RunSpec{Profile: "terasort", InputBytes: 32 << 20}, 0, nil); err != nil {
		t.Fatal(err)
	}
	// Drift the conservation counter before the run: the very first
	// sweep must catch it.
	cluster.FS.BytesWritten += 1000
	_, err = cluster.RunToIdle()
	if err == nil {
		t.Fatal("corrupted cluster ran to idle without a violation")
	}
	if !errors.Is(err, invariants.ErrViolation) {
		t.Fatalf("RunToIdle error %v does not match ErrViolation", err)
	}
	var v *invariants.Violation
	if !errors.As(err, &v) {
		t.Fatalf("RunToIdle error %v is not a *Violation", err)
	}
	if v.Layer != "hdfs" || v.Rule != "conservation" {
		t.Errorf("violation attributed to %s/%s, want hdfs/conservation", v.Layer, v.Rule)
	}
	if ck.Steps() == 0 {
		t.Error("checker observed no engine steps")
	}
}

// TestCheckerFinalCatchesWireDrift: Final's wire-conservation check
// compares capture ground truth against the replica placement. The real
// capture must balance exactly in a fault-free run; an empty capture
// (wire side sees nothing) must fail the same check.
func TestCheckerFinalCatchesWireDrift(t *testing.T) {
	spec := core.ClusterSpec{Workers: 8, Seed: 5}
	cluster, err := spec.BuildCluster()
	if err != nil {
		t.Fatal(err)
	}
	capture := pcap.NewCapture()
	cluster.Net.AddTap(capture)
	ck := invariants.Attach(cluster, invariants.Options{})
	if err := workload.Run(cluster, workload.RunSpec{Profile: "terasort", InputBytes: 32 << 20}, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.RunToIdle(); err != nil {
		t.Fatal(err)
	}
	if err := ck.Final(capture, true); err != nil {
		t.Fatalf("balanced capture fails wire conservation: %v", err)
	}
	err = ck.Final(pcap.NewCapture(), true)
	if err == nil {
		t.Fatal("empty capture passed wire conservation against a written FS")
	}
	var v *invariants.Violation
	if !errors.As(err, &v) || v.Rule != "wire-conservation" {
		t.Fatalf("got %v, want a wire-conservation Violation", err)
	}
}
