// Package experiments reproduces the paper's evaluation: every table and
// figure has a runner that executes the relevant capture/model/replay
// pipeline and returns a printable table. The same runners back
// cmd/keddah-bench (full scale) and the root bench suite (reduced scale).
package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"text/tabwriter"
	"time"

	"keddah/internal/telemetry"
)

// Config scales the suite. Scale multiplies every input size: 1.0 runs
// the paper-scale experiment (gigabytes), 0.125 is a quick run.
type Config struct {
	Scale float64
	Seed  int64
	// Verbose enables per-step progress notes on Out.
	Verbose bool
	Out     io.Writer
	// Telemetry, when non-nil, instruments every capture and replay an
	// experiment runs. Its instruments are concurrency-safe, so one
	// Telemetry may be shared across a parallel RunAll.
	Telemetry *telemetry.Telemetry
	// StrictChecks runs every capture with the invariants layer enabled
	// (core.CaptureOpts.StrictChecks): sampled cross-layer sweeps plus
	// end-of-capture conservation checks. Checks are read-only, so
	// results are identical; only wall time changes.
	StrictChecks bool
	// Shards, when non-nil, overrides the engine layout of every
	// multi-pod capture an experiment runs (0 = serial, -1 = auto,
	// 1..Pods explicit). Output is byte-identical at every setting.
	Shards *int
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// gb returns n gigabytes scaled by the config.
func (c Config) gb(n float64) int64 {
	v := int64(n * c.Scale * float64(1<<30))
	if v < 1<<20 {
		v = 1 << 20
	}
	return v
}

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Note); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, h := range t.Headers {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, h)
	}
	fmt.Fprintln(tw)
	for _, row := range t.Rows {
		for i, cell := range row {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, cell)
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Runner executes one experiment.
type Runner func(Config) ([]Table, error)

// registry maps experiment ids to runners, populated by each file's
// register call.
var registry = map[string]Runner{}

// descriptions holds one-line summaries for listing.
var descriptions = map[string]string{}

func register(id, desc string, r Runner) {
	registry[id] = r
	descriptions[id] = desc
}

// IDs lists registered experiments in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Describe returns the one-line summary of an experiment.
func Describe(id string) string { return descriptions[id] }

// Run executes one experiment by id.
func Run(id string, cfg Config) ([]Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return r(cfg.withDefaults())
}

// Result is one experiment's outcome from RunAll.
type Result struct {
	ID      string
	Tables  []Table
	Err     error
	Elapsed time.Duration
}

// RunAll executes the given experiments on a pool of workers and returns
// results in the order of ids, regardless of completion order. Every
// runner builds its own cluster, capture and model from the shared
// immutable Config, so experiments are independent and safe to run
// concurrently. workers <= 0 means GOMAXPROCS. Config.Out is ignored
// (runners would interleave on a shared writer); per-experiment output
// belongs in the returned tables.
func RunAll(ids []string, cfg Config, workers int) []Result {
	return RunAllContext(context.Background(), ids, cfg, workers)
}

// RunAllContext is RunAll with cancellation: once ctx is cancelled no
// further experiment is started — runners already executing finish
// normally — and every unstarted id's Result carries ctx.Err(). The
// worker pool always drains and exits, so a cancelled run leaks no
// goroutines.
func RunAllContext(ctx context.Context, ids []string, cfg Config, workers int) []Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	cfg = cfg.withDefaults()
	cfg.Out = nil
	cfg.Verbose = false

	results := make([]Result, len(ids))
	// Pre-buffering every index means no feeding goroutine can block on a
	// cancelled pool: workers drain the closed channel unconditionally,
	// checking ctx per item.
	next := make(chan int, len(ids))
	for i := range ids {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := ctx.Err(); err != nil {
					results[i] = Result{ID: ids[i], Err: err}
					continue
				}
				start := time.Now()
				tables, err := Run(ids[i], cfg)
				results[i] = Result{ID: ids[i], Tables: tables, Err: err, Elapsed: time.Since(start)}
			}
		}()
	}
	wg.Wait()
	return results
}

// Formatting helpers shared by the experiment files.

func mb(bytes int64) string {
	return strconv.FormatFloat(float64(bytes)/(1<<20), 'f', 1, 64)
}

func f2(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
func f3(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
func itoa(v int) string   { return strconv.Itoa(v) }

func gbLabel(bytes int64) string {
	return strconv.FormatFloat(float64(bytes)/(1<<30), 'f', 2, 64)
}
