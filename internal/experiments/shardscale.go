package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"keddah/internal/core"
	"keddah/internal/telemetry"
	"keddah/internal/workload"
)

func init() {
	register("E18", "sharded engine scaling: multi-pod capture, serial vs sharded at several GOMAXPROCS", runE18)
}

// runE18 measures the sharded engine on the capture the tentpole targets:
// a 256-worker cluster (8 pods × 32 workers) running one terasort per
// pod with ring cross-pod copies. Every row re-runs the same capture
// under a different engine layout and GOMAXPROCS, records wall time and
// scheduler counters, and byte-compares the deterministic artifacts
// (TraceSet JSON + telemetry snapshot) against the serial reference —
// the "identical" column is the determinism claim, the "speedup" column
// the performance claim.
func runE18(cfg Config) ([]Table, error) {
	const pods, workers = 8, 32
	spec := core.ClusterSpec{
		Topology: "star", Workers: workers, Pods: pods,
		CrossPod: "ring", Seed: cfg.Seed,
		// Geo-distributed pods: a 100ms inter-pod latency (WAN RTT scale)
		// keeps the conservative windows wide enough that each shard
		// processes thousands of events between barriers. With the 1ms
		// datacenter default the barrier cost dominates and parallelism
		// cannot pay for itself — that regime is measured by the windows
		// column, not hidden.
		InterPodLatencyNs: 100_000_000,
	}
	runs := make([]workload.RunSpec, pods)
	for i := range runs {
		runs[i] = workload.RunSpec{Profile: "terasort", InputBytes: cfg.gb(4)}
	}

	// The layout sweep IS this experiment, so cfg.Shards (the keddah-bench
	// -shards override honored by ordinary multi-pod captures) is ignored
	// here: every row pins its own engine count.
	type layout struct {
		name   string
		shards int
		procs  int
	}
	layouts := []layout{
		{"serial", 0, 1},
		{"sharded-8", -1, 1},
		{"sharded-8", -1, 2},
		{"sharded-8", -1, 8},
	}

	type rowResult struct {
		out      string
		wallMs   float64
		critMs   float64
		windows  uint64
		boundary int64
	}
	run := func(l layout) (rowResult, error) {
		prev := runtime.GOMAXPROCS(l.procs)
		defer runtime.GOMAXPROCS(prev)
		// Fresh telemetry per row so the deterministic snapshot is
		// comparable across rows instead of accumulating.
		tel := telemetry.New()
		shards := l.shards
		start := time.Now()
		ts, _, err := core.CaptureWith(spec, runs, core.CaptureOpts{
			Telemetry: tel, Shards: &shards, StrictChecks: cfg.StrictChecks,
		})
		if err != nil {
			return rowResult{}, err
		}
		res := rowResult{wallMs: float64(time.Since(start).Milliseconds())}
		var buf bytes.Buffer
		if err := ts.WriteJSON(&buf); err != nil {
			return rowResult{}, err
		}
		snap, err := json.Marshal(tel.Snapshot())
		if err != nil {
			return rowResult{}, err
		}
		buf.Write(snap)
		res.out = buf.String()
		for _, c := range tel.Snapshot().Counters {
			switch c.Name {
			case "keddah_sim_shard_windows_total":
				res.windows = uint64(c.Value)
			case "keddah_sim_shard_boundary_events_total":
				res.boundary = c.Value
			}
		}
		// The critical path is wall-clock derived, so it lives only in
		// the volatile snapshot — never in the byte-compared output.
		for _, g := range tel.Reg.Snapshot(true).Gauges {
			if g.Name == "keddah_sim_shard_crit_ms" {
				res.critMs = g.Value
			}
		}
		return res, nil
	}

	t := Table{
		ID: "E18",
		Title: fmt.Sprintf("Sharded engine scaling: %d pods × %d workers (%d total), terasort per pod + ring distcp",
			pods, workers, pods*workers),
		Note: "wall speedup = serial wall / row wall (needs >= GOMAXPROCS free cores to show); " +
			"crit speedup = serial critical path / row critical path (per-window max shard busy, " +
			"the speedup a machine with one core per shard achieves); " +
			"identical = byte-equal TraceSet+telemetry vs serial",
		Headers: []string{"layout", "GOMAXPROCS", "wall ms", "wall speedup",
			"crit ms", "crit speedup", "windows", "boundary events", "identical"},
	}

	var ref rowResult
	for i, l := range layouts {
		res, err := run(l)
		if err != nil {
			return nil, fmt.Errorf("E18 %s@%d: %w", l.name, l.procs, err)
		}
		identical := "ref"
		if i == 0 {
			ref = res
		} else if res.out == ref.out {
			identical = "yes"
		} else {
			identical = "NO"
		}
		wallSpeedup, critSpeedup := 0.0, 0.0
		if res.wallMs > 0 {
			wallSpeedup = ref.wallMs / res.wallMs
		}
		if res.critMs > 0 {
			critSpeedup = ref.critMs / res.critMs
		}
		t.AddRow(l.name, itoa(l.procs), f2(res.wallMs), f2(wallSpeedup),
			f2(res.critMs), f2(critSpeedup),
			itoa(int(res.windows)), itoa(int(res.boundary)), identical)
		if cfg.Verbose && cfg.Out != nil {
			fmt.Fprintf(cfg.Out, "  E18 %s@%d: wall %.0fms (%.2fx) crit %.0fms (%.2fx) identical=%s\n",
				l.name, l.procs, res.wallMs, wallSpeedup, res.critMs, critSpeedup, identical)
		}
	}
	return []Table{t}, nil
}
