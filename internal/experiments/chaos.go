package experiments

import (
	"fmt"

	"keddah/internal/core"
	"keddah/internal/faults"
	"keddah/internal/flows"
	"keddah/internal/stats"
	"keddah/internal/workload"
)

func init() {
	register("E16", "extension: chaos sweep — traffic under link and node faults", runE16)
}

// runE16 is the chaos extension: the same terasort run captured healthy
// and under randomly scheduled faults, swept over fault kind (link down,
// link degrade, node crash+rejoin), fault count and fabric. Expected
// shape: jobs always complete; retry/recovery traffic grows with the
// fault count; shuffle is the most fault-sensitive phase (fetch retries
// and host blacklisting); the shuffle size distribution stays close to
// the healthy capture (low KS) because faults change *when* flows run
// far more than *how much* they carry.
func runE16(cfg Config) ([]Table, error) {
	t := Table{
		ID:    "E16",
		Title: "Chaos sweep: traffic under link and node faults (terasort, 16 workers)",
		Note: "random fault schedules inside the healthy run's job window; " +
			"link faults last 3–8s, node crashes 8–15s (NM expiry 10s); " +
			"KS compares faulty vs healthy shuffle flow sizes",
		Headers: []string{"fabric", "faults", "n", "duration s", "stretch",
			"retry MB", "re-repl MB", "aborted", "shuffle MB", "shuffle KS"},
	}
	input := cfg.gb(2)
	runSpec := []workload.RunSpec{{Profile: "terasort", InputBytes: input}}

	scenario := int64(0)
	for _, fabric := range []string{"star", "multirack"} {
		spec := core.ClusterSpec{Topology: fabric, Workers: 16, Seed: cfg.Seed}
		topo, err := spec.BuildTopology()
		if err != nil {
			return nil, fmt.Errorf("E16 %s topology: %w", fabric, err)
		}

		// Healthy baseline: calibrates the fault window and anchors the
		// stretch and KS columns.
		ts0, res0, err := core.CaptureWith(spec, runSpec, core.CaptureOpts{Telemetry: cfg.Telemetry, StrictChecks: cfg.StrictChecks})
		if err != nil {
			return nil, fmt.Errorf("E16 %s baseline: %w", fabric, err)
		}
		round0 := res0[0].Rounds[0]
		healthyDur := float64(round0.Duration()) / 1e9
		// Every faulty scenario compares against the same healthy shuffle
		// sample; sort it once and reuse the sorted view per row.
		healthySizes := ts0.Runs[0].Dataset().SizeSample(flows.PhaseShuffle)
		addE16Row(&t, fabric, "healthy", 0, ts0, res0, healthyDur, healthySizes)

		// Faults land between 10% and 70% of the healthy job window, so
		// every schedule hits the job mid-flight (seeds are shared, so
		// timelines align until the first fault).
		winStart := int64(round0.Submitted) + int64(round0.Duration())/10
		winEnd := int64(round0.Submitted) + int64(round0.Duration())*7/10

		for _, kind := range []faults.Kind{faults.LinkDown, faults.LinkDegrade, faults.NodeCrash} {
			minDur, maxDur := int64(3_000_000_000), int64(8_000_000_000)
			if kind == faults.NodeCrash {
				// Straddle the 10s NM expiry so some crashes rejoin
				// before detection and some after.
				minDur, maxDur = 8_000_000_000, 15_000_000_000
			}
			for _, n := range []int{2, 6} {
				scenario++
				sched := faults.Random(cfg.Seed*1000+scenario, faults.RandomOpts{
					N:             n,
					Kinds:         []faults.Kind{kind},
					Links:         topo.NumLinks(),
					Workers:       16,
					WindowStartNs: winStart,
					WindowEndNs:   winEnd,
					MinDurationNs: minDur,
					MaxDurationNs: maxDur,
					MinFactor:     0.1,
					MaxFactor:     0.5,
				})
				ts, res, err := core.CaptureWith(spec, runSpec, core.CaptureOpts{Faults: sched, Telemetry: cfg.Telemetry, StrictChecks: cfg.StrictChecks})
				if err != nil {
					return nil, fmt.Errorf("E16 %s %s n=%d: %w", fabric, kind, n, err)
				}
				addE16Row(&t, fabric, string(kind), len(sched.Faults), ts, res, healthyDur, healthySizes)
			}
		}
	}
	return []Table{t}, nil
}

// addE16Row reduces one capture to a chaos-sweep table row.
func addE16Row(t *Table, fabric, scenario string, nFaults int, ts *core.TraceSet,
	results []workload.RunResult, healthyDur float64, healthySizes *stats.Sample) {
	round := results[0].Rounds[0]
	ds := ts.Runs[0].Dataset()
	dur := float64(round.Duration()) / 1e9

	var retryBytes int64
	for _, run := range ts.Runs {
		for _, r := range run.Records {
			if flows.IsRecovery(r.Label) {
				retryBytes += r.Bytes
			}
		}
	}
	for _, r := range ts.Background {
		if flows.IsRecovery(r.Label) {
			retryBytes += r.Bytes
		}
	}

	ks := 0.0
	if scenario != "healthy" {
		if faulty := ds.SizeSample(flows.PhaseShuffle); faulty.Len() > 0 && healthySizes.Len() > 0 {
			ks = stats.KSStatistic2Sorted(healthySizes.Values(), faulty.Values())
		}
	}

	t.AddRow(fabric, scenario,
		itoa(nFaults),
		f2(dur),
		f2(dur/healthyDur),
		f2(float64(retryBytes)/(1<<20)),
		f2(float64(ts.Stats.ReReplicatedBytes)/(1<<20)),
		itoa(int(ts.Stats.AbortedFlows)),
		mb(ds.Volume(flows.PhaseShuffle)),
		f3(ks),
	)
}
