package experiments

import (
	"fmt"

	"keddah/internal/core"
	"keddah/internal/workload"
)

func init() {
	register("E15", "scaling validation: fit at small inputs, predict large", runE15)
}

// runE15 tests the property the toolchain exists to provide: a model
// fitted at small input sizes must generate correct traffic for a much
// larger job. It fits terasort on {1,2,4} GB runs, generates an 8 GB
// job, and validates against an actually-measured 8 GB run. Expected
// shape: flow counts scale structurally (maps × reducers), per-phase
// volumes land within ~15%, and per-flow size distributions match
// (sizes are scale-invariant: more input means more block-sized flows,
// not bigger ones).
func runE15(cfg Config) ([]Table, error) {
	// Fit corpus: three sizes, one run each.
	var specs []workload.RunSpec
	for i, gbs := range []float64{1, 2, 4} {
		specs = append(specs, workload.RunSpec{
			Profile:    "terasort",
			InputBytes: cfg.gb(gbs),
			JobName:    fmt.Sprintf("fit%d", i),
			InputPath:  fmt.Sprintf("/data/fit%d", i),
		})
	}
	ts, _, err := core.CaptureWith(core.ClusterSpec{Workers: 16, Seed: cfg.Seed}, specs, core.CaptureOpts{Telemetry: cfg.Telemetry, StrictChecks: cfg.StrictChecks})
	if err != nil {
		return nil, fmt.Errorf("E15 fit corpus: %w", err)
	}
	model, err := core.FitWith(ts, core.FitOptions{}, cfg.Telemetry)
	if err != nil {
		return nil, fmt.Errorf("E15 fit: %w", err)
	}
	jm := model.Jobs["terasort"]

	// Ground truth at the target size (unseen by the model).
	target := cfg.gb(8)
	truth, truthResults, err := core.CaptureWith(core.ClusterSpec{Workers: 16, Seed: cfg.Seed + 1},
		[]workload.RunSpec{{Profile: "terasort", InputBytes: target}},
		core.CaptureOpts{Telemetry: cfg.Telemetry, StrictChecks: cfg.StrictChecks})
	if err != nil {
		return nil, fmt.Errorf("E15 target capture: %w", err)
	}
	targetRound := truthResults[0].Rounds[0]

	// Model prediction at the target size.
	sched, err := model.Generate(core.GenSpec{
		Workload:   "terasort",
		InputBytes: target,
		Reducers:   targetRound.Reducers, // same configuration axis
		Workers:    16,
		Seed:       cfg.Seed + 2,
	})
	if err != nil {
		return nil, fmt.Errorf("E15 generate: %w", err)
	}
	gen, _, err := core.ReplayWith(sched, core.ClusterSpec{Workers: 16, Seed: cfg.Seed + 2}, cfg.Telemetry)
	if err != nil {
		return nil, fmt.Errorf("E15 replay: %w", err)
	}

	v := core.ValidateWith("terasort", truth.Runs[0].Records, gen, cfg.Telemetry)
	t := Table{
		ID:    "E15",
		Title: "Scaling validation: model fitted at {1,2,4} GB, tested at 8 GB",
		Note: fmt.Sprintf("fitted duration model: %.1fs + %.2fs/GB; predicted %.1fs for the target",
			jm.DurIntercept, jm.DurSecsPerByte*float64(1<<30), jm.DurationAt(target)),
		Headers: []string{"phase", "meas flows", "gen flows", "meas MB", "gen MB",
			"vol err %", "size KS"},
	}
	for _, pc := range v.Phases {
		t.AddRow(string(pc.Phase), itoa(pc.MeasuredFlows), itoa(pc.GeneratedFlows),
			mb(pc.MeasuredBytes), mb(pc.GeneratedBytes), f2(pc.VolumeError*100), f3(pc.SizeKS))
	}
	return []Table{t}, nil
}
