package experiments

import (
	"fmt"

	"keddah/internal/core"
	"keddah/internal/flows"
	"keddah/internal/pcap"
	"keddah/internal/stats"
	"keddah/internal/workload"
)

func init() {
	register("A1", "ablation: delay scheduling (data locality) on vs off", runA1)
	register("A2", "ablation: max-min fair sharing vs naive equal split", runA2)
	register("A3", "ablation: full distribution library vs exponential-only", runA3)
}

// runA1 quantifies why the simulator implements delay scheduling: without
// it, map inputs cross the network and HDFS-read traffic balloons — the
// design choice DESIGN.md calls out.
func runA1(cfg Config) ([]Table, error) {
	t := Table{
		ID:    "A1",
		Title: "Delay scheduling ablation (terasort, 2 racks, 4G uplink)",
		Headers: []string{"locality wait", "local maps %", "remote read MB",
			"hdfs_read MB", "duration s"},
	}
	input := cfg.gb(4)
	for _, mode := range []struct {
		name   string
		waitNs int64
	}{
		{"3s (default)", 0},
		{"disabled", 1},
	} {
		spec := core.ClusterSpec{
			Topology: "multirack", Workers: 16, Racks: 2, UplinkGbps: 4,
			LocalityWaitNs: mode.waitNs, Seed: cfg.Seed,
		}
		ts, results, err := core.CaptureWith(spec, []workload.RunSpec{{Profile: "terasort", InputBytes: input}}, core.CaptureOpts{Telemetry: cfg.Telemetry, StrictChecks: cfg.StrictChecks})
		if err != nil {
			return nil, fmt.Errorf("A1 capture (%s): %w", mode.name, err)
		}
		r := ts.Runs[0]
		ds := r.Dataset()
		// Remote reads show up as non-loopback hdfs_read flows between
		// distinct hosts; loopback flows have src == dst addresses.
		remote := ds.Filter(func(rec pcap.FlowRecord, p flows.Phase) bool {
			return p == flows.PhaseHDFSRead && rec.Key.Src != rec.Key.Dst
		})
		localPct := 0.0
		round := results[0].Rounds[0]
		if round.Maps > 0 {
			localPct = 100 * float64(round.LocalMaps) / float64(round.Maps)
		}
		t.AddRow(mode.name, f2(localPct), mb(remote.Volume("")),
			mb(ds.Volume(flows.PhaseHDFSRead)), f2(r.DurationSeconds()))
	}
	return []Table{t}, nil
}

// runA2 quantifies the bandwidth-sharing model: naive equal split
// mis-predicts transfer times on oversubscribed fabrics because it
// strands bandwidth freed by flows bottlenecked elsewhere.
func runA2(cfg Config) ([]Table, error) {
	t := Table{
		ID:    "A2",
		Title: "Bandwidth sharing ablation (terasort, 2 racks, 2G uplink)",
		Headers: []string{"allocator", "duration s", "mean shuffle flow s",
			"shuffle MB"},
	}
	input := cfg.gb(4)
	for _, alloc := range []string{"maxmin", "equalsplit"} {
		spec := core.ClusterSpec{
			Topology: "multirack", Workers: 16, Racks: 2, UplinkGbps: 2,
			Allocator: alloc, Seed: cfg.Seed,
		}
		ts, _, err := core.CaptureWith(spec, []workload.RunSpec{{Profile: "terasort", InputBytes: input}}, core.CaptureOpts{Telemetry: cfg.Telemetry, StrictChecks: cfg.StrictChecks})
		if err != nil {
			return nil, fmt.Errorf("A2 capture (%s): %w", alloc, err)
		}
		r := ts.Runs[0]
		ds := r.Dataset()
		t.AddRow(alloc, f2(r.DurationSeconds()),
			f3(meanDuration(r.Records, flows.PhaseShuffle)),
			mb(ds.Volume(flows.PhaseShuffle)))
	}
	return []Table{t}, nil
}

// runA3 quantifies the distribution library: restricting the candidate
// set to exponential-only degrades the size-law fit (higher KS), which is
// why Keddah searches a family library.
func runA3(cfg Config) ([]Table, error) {
	ts, err := corpus(cfg, []string{"terasort", "wordcount"}, 5)
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:    "A3",
		Title: "Distribution library ablation: size-law KS by candidate set",
		Headers: []string{"workload", "phase", "full library KS", "full family",
			"exp-only KS"},
	}
	full, err := core.FitWith(ts, core.FitOptions{}, cfg.Telemetry)
	if err != nil {
		return nil, fmt.Errorf("A3 full fit: %w", err)
	}
	expOnly, err := core.FitWith(ts, core.FitOptions{Candidates: []stats.Family{stats.FamilyExponential}}, cfg.Telemetry)
	if err != nil {
		return nil, fmt.Errorf("A3 exp-only fit: %w", err)
	}
	for _, name := range full.WorkloadNames() {
		for _, ph := range flows.AllPhases {
			fp, ok1 := full.Jobs[name].Phases[ph]
			ep, ok2 := expOnly.Jobs[name].Phases[ph]
			if !ok1 || !ok2 {
				continue
			}
			t.AddRow(name, string(ph), f3(fp.SizeGoF.KS), string(fp.Size.Family),
				f3(ep.SizeGoF.KS))
		}
	}
	return []Table{t}, nil
}
