package experiments

import (
	"fmt"

	"keddah/internal/core"
	"keddah/internal/flows"
	"keddah/internal/pcap"
)

func init() {
	register("E9", "replay fitted traffic on constrained fabrics", runE9)
}

// runE9 reproduces the "use with network simulators" result: a terasort
// traffic model is generated once and replayed over fabrics of varying
// shape and oversubscription. Expected shape: transfer times stretch as
// the uplink shrinks, with the shuffle phase the most sensitive — the
// reproducible what-if capability the toolchain exists to provide.
func runE9(cfg Config) ([]Table, error) {
	ts, err := corpus(cfg, []string{"terasort"}, 3)
	if err != nil {
		return nil, err
	}
	model, err := core.FitWith(ts, core.FitOptions{}, cfg.Telemetry)
	if err != nil {
		return nil, fmt.Errorf("fit: %w", err)
	}
	// Four overlapping job instances at twice the fitted reference size:
	// the multi-tenant, scaled what-if the toolchain was built for.
	jm := model.Jobs["terasort"]
	sched, err := model.Generate(core.GenSpec{
		Workload:   "terasort",
		InputBytes: 2 * jm.RefInputBytes,
		Workers:    16,
		Jobs:       4,
		Stagger:    0.25,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("generate: %w", err)
	}

	t := Table{
		ID:    "E9",
		Title: "Synthetic terasort traffic (4 overlapping jobs) on different fabrics",
		Note:  "same flow schedule; only the fabric changes; makespan covers data flows",
		Headers: []string{"fabric", "data makespan s", "mean shuffle flow s",
			"p99 shuffle flow s", "mean hdfs flow s"},
	}
	fabrics := []struct {
		name string
		spec core.ClusterSpec
	}{
		{"star 1G", core.ClusterSpec{Topology: "star", Workers: 16, Seed: cfg.Seed}},
		{"2 racks, 10G uplink", core.ClusterSpec{Topology: "multirack", Workers: 16, Racks: 2, UplinkGbps: 10, Seed: cfg.Seed}},
		{"2 racks, 4G uplink", core.ClusterSpec{Topology: "multirack", Workers: 16, Racks: 2, UplinkGbps: 4, Seed: cfg.Seed}},
		{"2 racks, 1G uplink", core.ClusterSpec{Topology: "multirack", Workers: 16, Racks: 2, UplinkGbps: 1, Seed: cfg.Seed}},
		{"fat-tree k=4", core.ClusterSpec{Topology: "fattree", FatTreeK: 4, Seed: cfg.Seed}},
	}
	for _, f := range fabrics {
		recs, _, err := core.ReplayWith(sched, f.spec, cfg.Telemetry)
		if err != nil {
			return nil, fmt.Errorf("replay on %s: %w", f.name, err)
		}
		t.AddRow(f.name,
			f2(dataMakespan(recs)),
			f3(meanDuration(recs, flows.PhaseShuffle)),
			f3(p99Duration(recs, flows.PhaseShuffle)),
			f3(meanDuration(recs, flows.PhaseHDFSRead, flows.PhaseHDFSWrite)),
		)
	}
	return []Table{t}, nil
}

// dataMakespan spans the first data-flow start to the last data-flow end
// in seconds, ignoring the long control-flow tail.
func dataMakespan(recs []pcap.FlowRecord) float64 {
	ds := flows.NewDataset(recs).Filter(func(_ pcap.FlowRecord, p flows.Phase) bool {
		return p == flows.PhaseShuffle || p == flows.PhaseHDFSRead || p == flows.PhaseHDFSWrite
	})
	first, last := ds.Span()
	return float64(last-first) / 1e9
}

// meanDuration averages flow durations (seconds) over the given phases.
func meanDuration(recs []pcap.FlowRecord, phases ...flows.Phase) float64 {
	ds := flows.NewDataset(recs)
	var sum float64
	var n int
	for _, ph := range phases {
		for _, d := range ds.Durations(ph) {
			sum += d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// p99Duration returns the 99th percentile flow duration for a phase.
func p99Duration(recs []pcap.FlowRecord, ph flows.Phase) float64 {
	ds := flows.NewDataset(recs)
	e, err := ds.DurationSample(ph).ECDF()
	if err != nil {
		return 0 // empty sample: no flows in this phase
	}
	return e.Quantile(0.99)
}
