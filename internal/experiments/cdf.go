package experiments

import (
	"fmt"

	"keddah/internal/core"
	"keddah/internal/flows"
	"keddah/internal/stats"
	"keddah/internal/workload"
)

func init() {
	register("E3", "per-phase flow size CDF quantiles per workload", runE3)
}

// runE3 reproduces the flow-size CDF figure: per workload × phase, the
// quantiles of the per-flow byte distribution. Expected shape: shuffle
// sizes unimodal near map-output/reducers; HDFS flows cluster at the
// block size; control flows are fixed-size RPCs.
func runE3(cfg Config) ([]Table, error) {
	t := Table{
		ID:    "E3",
		Title: "Per-phase flow size distribution (quantiles, MB)",
		Note:  "printed quantiles trace the CDF the paper plots",
		Headers: []string{"workload", "phase", "flows", "p10", "p25", "p50",
			"p75", "p90", "p99", "mean"},
	}
	input := cfg.gb(8)
	for _, prof := range workload.Names() {
		ts, err := captureOne(cfg, core.ClusterSpec{Workers: 16, Seed: cfg.Seed}, prof, input, 0)
		if err != nil {
			return nil, err
		}
		// Pool rounds.
		pool := map[flows.Phase][]float64{}
		for _, r := range ts.Runs {
			ds := r.Dataset()
			for _, ph := range flows.AllPhases {
				pool[ph] = append(pool[ph], ds.Sizes(ph)...)
			}
		}
		for _, ph := range flows.AllPhases {
			xs := pool[ph]
			if len(xs) == 0 {
				continue
			}
			// One Sample serves the quantiles and the summary: sorted once,
			// shared by both instead of two copy+sort passes.
			s := stats.NewSampleOwned(xs)
			e, err := s.ECDF()
			if err != nil {
				return nil, fmt.Errorf("E3 %s/%s: %w", prof, ph, err)
			}
			q := func(p float64) string { return f2(e.Quantile(p) / (1 << 20)) }
			sum, err := s.Describe()
			if err != nil {
				return nil, fmt.Errorf("E3 %s/%s: %w", prof, ph, err)
			}
			t.AddRow(prof, string(ph), itoa(s.Len()), q(0.10), q(0.25), q(0.50),
				q(0.75), q(0.90), q(0.99), f2(sum.Mean/(1<<20)))
		}
	}
	return []Table{t}, nil
}
