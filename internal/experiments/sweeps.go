package experiments

import (
	"keddah/internal/core"
	"keddah/internal/flows"
)

func init() {
	register("E4", "HDFS replication factor sweep (terasort)", runE4)
	register("E5", "HDFS block size sweep (terasort)", runE5)
	register("E6", "reducer count sweep (sort): shuffle shape and job time", runE6)
}

// runE4 reproduces the replication sweep: HDFS-write volume scales with
// the replication factor while reads and shuffle stay constant.
func runE4(cfg Config) ([]Table, error) {
	t := Table{
		ID:    "E4",
		Title: "Effect of dfs.replication on traffic (terasort)",
		Note:  "ingest + job output both replicate; read and shuffle volumes must not move",
		Headers: []string{"replication", "hdfs_write MB", "hdfs_read MB",
			"shuffle MB", "write flows", "duration s"},
	}
	input := cfg.gb(4)
	for _, repl := range []int{1, 2, 3, 4} {
		ts, err := captureOne(cfg, core.ClusterSpec{Workers: 16, Replication: repl, Seed: cfg.Seed},
			"sort", input, 8)
		if err != nil {
			return nil, err
		}
		r := ts.Runs[0]
		ds := r.Dataset()
		t.AddRow(itoa(repl), mb(ds.Volume(flows.PhaseHDFSWrite)), mb(ds.Volume(flows.PhaseHDFSRead)),
			mb(ds.Volume(flows.PhaseShuffle)), itoa(ds.Count(flows.PhaseHDFSWrite)),
			f2(r.DurationSeconds()))
	}
	return []Table{t}, nil
}

// runE5 reproduces the block-size sweep: flow count ∝ 1/blocksize,
// per-flow size ∝ blocksize, total volume ~constant.
func runE5(cfg Config) ([]Table, error) {
	t := Table{
		ID:    "E5",
		Title: "Effect of dfs.blocksize on traffic (terasort)",
		Note:  "smaller blocks = more, smaller flows; total volume steady",
		Headers: []string{"block MB", "maps", "hdfs flows", "mean hdfs flow MB",
			"total MB", "duration s"},
	}
	input := cfg.gb(4)
	for _, blockMB := range []int64{64, 128, 256, 512} {
		block := blockMB << 20
		if block > input {
			block = input
		}
		ts, err := captureOne(cfg, core.ClusterSpec{Workers: 16, BlockSize: block, Seed: cfg.Seed},
			"terasort", input, 8)
		if err != nil {
			return nil, err
		}
		r := ts.Runs[0]
		ds := r.Dataset()
		hdfsFlows := ds.Count(flows.PhaseHDFSRead) + ds.Count(flows.PhaseHDFSWrite)
		hdfsBytes := ds.Volume(flows.PhaseHDFSRead) + ds.Volume(flows.PhaseHDFSWrite)
		meanMB := 0.0
		if hdfsFlows > 0 {
			meanMB = float64(hdfsBytes) / float64(hdfsFlows) / (1 << 20)
		}
		t.AddRow(itoa(int(blockMB)), itoa(r.Maps), itoa(hdfsFlows), f2(meanMB),
			mb(ds.Volume("")), f2(r.DurationSeconds()))
	}
	return []Table{t}, nil
}

// runE6 reproduces the reducer sweep: shuffle flow count grows with
// reducers, per-flow size shrinks, and completion time is U-shaped
// (too few reducers serialise the reduce stage; too many pay overheads).
func runE6(cfg Config) ([]Table, error) {
	t := Table{
		ID:    "E6",
		Title: "Effect of reducer count on the shuffle (sort)",
		Headers: []string{"reducers", "shuffle flows", "mean shuffle flow MB",
			"shuffle MB", "duration s"},
	}
	input := cfg.gb(4)
	// 16 workers × 4 slots = 64 slots: 128/256 reducers need multiple
	// waves, exposing the per-task overhead that turns the curve back up.
	for _, reducers := range []int{2, 4, 8, 16, 32, 64, 128, 256} {
		ts, err := captureOne(cfg, core.ClusterSpec{Workers: 16, Seed: cfg.Seed}, "sort", input, reducers)
		if err != nil {
			return nil, err
		}
		r := ts.Runs[0]
		ds := r.Dataset()
		n := ds.Count(flows.PhaseShuffle)
		meanMB := 0.0
		if n > 0 {
			meanMB = float64(ds.Volume(flows.PhaseShuffle)) / float64(n) / (1 << 20)
		}
		t.AddRow(itoa(r.Reducers), itoa(n), f2(meanMB),
			mb(ds.Volume(flows.PhaseShuffle)), f2(r.DurationSeconds()))
	}
	return []Table{t}, nil
}
