package experiments

import (
	"reflect"
	"testing"
)

// TestStrictChecksPreserveTables: running an experiment with the
// invariants layer on must produce exactly the tables a bare run
// produces — across capture paths with failures (E11) and fault
// schedules (E16) as well as the plain sweep path (E4).
func TestStrictChecksPreserveTables(t *testing.T) {
	for _, id := range []string{"E4", "E11", "E16"} {
		t.Run(id, func(t *testing.T) {
			bare, err := Run(id, quickCfg())
			if err != nil {
				t.Fatal(err)
			}
			cfg := quickCfg()
			cfg.StrictChecks = true
			strict, err := Run(id, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(bare, strict) {
				t.Errorf("%s: strict checks changed the result tables", id)
			}
		})
	}
}
