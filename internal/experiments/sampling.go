package experiments

import (
	"math"

	"keddah/internal/core"
	"keddah/internal/flows"
	"keddah/internal/pcap"
	"keddah/internal/stats"
	"keddah/internal/workload"
)

func init() {
	register("A4", "ablation: packet-sampled capture vs full capture", runA4)
}

// runA4 quantifies what sFlow-style 1-in-N packet sampling costs the
// measurement stage: per sampling factor, the flow recall (flows whose
// boundaries survive), the per-phase volume estimation error after
// Horvitz–Thompson re-inflation, and the shuffle size-distribution drift.
// Expected shape: volumes stay accurate far longer than per-flow detail —
// the classic sampled-measurement trade-off — and the data phases hold up
// better than mouse-sized control flows.
func runA4(cfg Config) ([]Table, error) {
	// Full-fidelity packet capture of one sort run.
	spec := core.ClusterSpec{Workers: 16, Seed: cfg.Seed}
	cluster, err := spec.BuildCluster()
	if err != nil {
		return nil, err
	}
	capture := pcap.NewCapture()
	cluster.Net.AddTap(capture)
	if err := workload.Run(cluster, workload.RunSpec{Profile: "sort", InputBytes: cfg.gb(2)}, 0, nil); err != nil {
		return nil, err
	}
	if _, err := cluster.RunToIdle(); err != nil {
		return nil, err
	}
	packets := capture.Packets()

	// Ground truth from the unsampled stream.
	full := pcap.NewFlowTable(0)
	for _, p := range packets {
		full.Add(p)
	}
	truth := flows.NewDataset(full.Records())
	truthVol := map[flows.Phase]int64{}
	for _, ph := range flows.AllPhases {
		truthVol[ph] = truth.Volume(ph)
	}
	// One fixed truth sample compared against every sampling rate: sort it
	// once and reuse the sorted view in each KS comparison.
	truthShuffle := truth.SizeSample(flows.PhaseShuffle)

	t := Table{
		ID:    "A4",
		Title: "Packet-sampling ablation (sort, one run)",
		Note:  "1-in-N count-based sampling, SYN/FIN preserved; volumes re-inflated by N",
		Headers: []string{"1-in-N", "kept pkts", "flow recall %", "data vol err %",
			"control vol err %", "shuffle size KS"},
	}
	for _, n := range []int{1, 8, 64, 512} {
		s := pcap.NewSampler(n)
		for _, p := range packets {
			s.Add(p)
		}
		est := flows.NewDataset(s.EstimateFlows())
		recall := 100 * float64(est.Len()) / float64(truth.Len())

		dataErr := volErr(est, truth, flows.PhaseHDFSRead, flows.PhaseHDFSWrite, flows.PhaseShuffle)
		ctlErr := volErr(est, truth, flows.PhaseControl)
		ks := ksBetween(est.SizeSample(flows.PhaseShuffle), truthShuffle)

		t.AddRow(itoa(n), itoa(int(s.Kept())), f2(recall), f2(dataErr*100), f2(ctlErr*100), f3(ks))
	}
	return []Table{t}, nil
}

// volErr is |est−truth|/truth over the pooled phases.
func volErr(est, truth *flows.Dataset, phases ...flows.Phase) float64 {
	var e, tr int64
	for _, ph := range phases {
		e += est.Volume(ph)
		tr += truth.Volume(ph)
	}
	if tr == 0 {
		return 0
	}
	return math.Abs(float64(e-tr)) / float64(tr)
}

func ksBetween(a, b *stats.Sample) float64 {
	if a.Len() == 0 || b.Len() == 0 {
		return 1
	}
	return stats.KSStatistic2Sorted(a.Values(), b.Values())
}
