package experiments

import (
	"bytes"
	"fmt"
	"time"

	"keddah/internal/core"
	"keddah/internal/pcap"
	"keddah/internal/telemetry"
	"keddah/internal/workload"
)

func init() {
	register("E10", "toolchain overhead: capture, trace IO, reassembly, fitting", runE10)
}

// runE10 reproduces the toolchain-cost claims: per stage (packet
// synthesis, trace write/read, flow reassembly, model fitting), the
// wall-clock cost as the capture grows. Expected shape: every stage is
// linear in trace size; fitting is sub-second for 10⁵ flows.
func runE10(cfg Config) ([]Table, error) {
	t := Table{
		ID:    "E10",
		Title: "Toolchain stage costs vs capture size",
		Headers: []string{"input GB", "packets", "flows", "trace MB",
			"write ms", "read ms", "reassemble ms", "fit ms"},
	}
	for _, gbs := range []float64{1, 2, 4} {
		input := cfg.gb(gbs)
		// Capture a sort run with packet synthesis on.
		spec := core.ClusterSpec{Workers: 16, Seed: cfg.Seed}
		cluster, err := spec.BuildCluster()
		if err != nil {
			return nil, err
		}
		capt := pcap.NewCapture()
		cluster.Net.AddTap(capt)
		err = workload.Run(cluster, workload.RunSpec{Profile: "sort", InputBytes: input}, 0, nil)
		if err != nil {
			return nil, err
		}
		if _, err := cluster.RunToIdle(); err != nil {
			return nil, err
		}
		packets := capt.Packets()

		// Stage: trace write.
		var buf bytes.Buffer
		start := time.Now()
		w, err := pcap.NewWriter(&buf)
		if err != nil {
			return nil, err
		}
		for _, p := range packets {
			if err := w.WritePacket(p); err != nil {
				return nil, err
			}
		}
		if err := w.Flush(); err != nil {
			return nil, err
		}
		writeMs := time.Since(start).Seconds() * 1000
		traceMB := float64(buf.Len()) / (1 << 20)

		// Stage: trace read.
		start = time.Now()
		r, err := pcap.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return nil, err
		}
		readBack, err := r.ReadAll()
		if err != nil {
			return nil, err
		}
		readMs := time.Since(start).Seconds() * 1000
		if len(readBack) != len(packets) {
			return nil, fmt.Errorf("trace round trip lost packets: %d != %d", len(readBack), len(packets))
		}

		// Stage: flow reassembly.
		start = time.Now()
		ft := pcap.NewFlowTable(0)
		for _, p := range readBack {
			ft.Add(p)
		}
		recs := ft.Records()
		reassembleMs := time.Since(start).Seconds() * 1000

		// Stage: model fitting (on the ground-truth dataset, which has
		// job attribution).
		ts, _, err := core.CaptureWith(spec, []workload.RunSpec{{Profile: "sort", InputBytes: input}}, core.CaptureOpts{StrictChecks: cfg.StrictChecks})
		if err != nil {
			return nil, err
		}
		start = time.Now()
		if _, err := core.Fit(ts, core.FitOptions{}); err != nil {
			return nil, err
		}
		fitMs := time.Since(start).Seconds() * 1000

		t.AddRow(gbLabel(input), itoa(len(packets)), itoa(len(recs)),
			f2(traceMB), f2(writeMs), f2(readMs), f2(reassembleMs), f2(fitMs))
	}

	t2, err := telemetryOverhead(cfg)
	if err != nil {
		return nil, err
	}
	return []Table{t, *t2}, nil
}

// telemetryOverhead compares the same capture with telemetry attached
// and bare: the instrumentation cost claimed in DESIGN.md (≤5% on the
// replay benchmark; a full capture is dominated by simulation work, so
// the measured overhead here is typically lower still).
func telemetryOverhead(cfg Config) (*Table, error) {
	t := Table{
		ID:      "E10b",
		Title:   "Telemetry overhead: instrumented vs bare capture",
		Note:    "same spec and seed; instrumented run updates every counter/gauge/span hook",
		Headers: []string{"input GB", "bare ms", "instrumented ms", "overhead %"},
	}
	input := cfg.gb(2)
	spec := core.ClusterSpec{Workers: 16, Seed: cfg.Seed}
	runSpec := []workload.RunSpec{{Profile: "sort", InputBytes: input}}

	// StrictChecks (when set) applies to both sides so the comparison
	// isolates the telemetry cost.
	start := time.Now()
	if _, _, err := core.CaptureWith(spec, runSpec, core.CaptureOpts{StrictChecks: cfg.StrictChecks}); err != nil {
		return nil, fmt.Errorf("E10b bare: %w", err)
	}
	bareMs := time.Since(start).Seconds() * 1000

	tel := telemetry.New()
	start = time.Now()
	if _, _, err := core.CaptureWith(spec, runSpec, core.CaptureOpts{Telemetry: tel, StrictChecks: cfg.StrictChecks}); err != nil {
		return nil, fmt.Errorf("E10b instrumented: %w", err)
	}
	instMs := time.Since(start).Seconds() * 1000

	overhead := 0.0
	if bareMs > 0 {
		overhead = (instMs - bareMs) / bareMs * 100
	}
	t.AddRow(gbLabel(input), f2(bareMs), f2(instMs), f2(overhead))
	return &t, nil
}
