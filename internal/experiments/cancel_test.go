package experiments

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestRunAllContextCancellation: a cancelled suite stops starting
// experiments, marks everything unstarted with the context error, and
// leaks no worker goroutines.
func TestRunAllContextCancellation(t *testing.T) {
	ids := IDs()
	if len(ids) < 3 {
		t.Skip("registry too small to observe cancellation")
	}
	base := runtime.NumGoroutine()

	t.Run("pre-cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		results := RunAllContext(ctx, ids, quickCfg(), 2)
		if len(results) != len(ids) {
			t.Fatalf("%d results for %d ids", len(results), len(ids))
		}
		for _, r := range results {
			if !errors.Is(r.Err, context.Canceled) {
				t.Fatalf("%s: err = %v, want context.Canceled", r.ID, r.Err)
			}
			if r.Tables != nil {
				t.Fatalf("%s ran under a dead context", r.ID)
			}
		}
	})

	t.Run("mid-run", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		done := make(chan []Result, 1)
		go func() { done <- RunAllContext(ctx, ids, quickCfg(), 1) }()
		cancel() // one worker: at most a couple of experiments started
		var results []Result
		select {
		case results = <-done:
		case <-time.After(2 * time.Minute):
			t.Fatal("cancelled suite never returned")
		}
		cancelled := 0
		for _, r := range results {
			if errors.Is(r.Err, context.Canceled) {
				cancelled++
			} else if r.Err != nil {
				t.Errorf("%s: unexpected error %v", r.ID, r.Err)
			}
		}
		if cancelled == 0 {
			t.Error("no experiment observed the cancellation")
		}
	})

	// The pool must have drained completely: no worker survives its run.
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > base+2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > base+2 {
		t.Errorf("goroutine leak after cancelled runs: %d before, %d after", base, n)
	}
}
