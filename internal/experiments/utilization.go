package experiments

import (
	"fmt"

	"keddah/internal/core"
	"keddah/internal/netsim"
	"keddah/internal/pcap"
	"keddah/internal/sim"
)

func init() {
	register("E14", "extension: rack-uplink utilization under mix replay", runE14)
}

// runE14 plots the capacity-planning view: replay the standard job mix
// over a two-rack fabric while probing the rack uplinks. Expected shape:
// as the uplink shrinks, mean utilization and time-at-saturation rise
// until the fabric is the bottleneck.
func runE14(cfg Config) ([]Table, error) {
	ts, err := corpus(cfg, []string{"terasort", "wordcount"}, 3)
	if err != nil {
		return nil, err
	}
	model, err := core.FitWith(ts, core.FitOptions{}, cfg.Telemetry)
	if err != nil {
		return nil, fmt.Errorf("fit: %w", err)
	}
	sched, err := model.GenerateMix(core.MixSpec{
		Weights:       map[string]float64{"terasort": 2, "wordcount": 1},
		JobsPerMinute: 4,
		WindowSecs:    180,
		Workers:       16,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("mix: %w", err)
	}

	t := Table{
		ID:    "E14",
		Title: "Rack-uplink utilization under a 4 jobs/min mix (2 racks)",
		Note:  "uplink probed every 100 ms during replay; busy = utilization >= 95%",
		Headers: []string{"uplink Gbps", "mean util %", "peak util %",
			"busy time %", "replay makespan s"},
	}
	for _, uplink := range []float64{10, 4, 2, 1} {
		spec := core.ClusterSpec{
			Topology: "multirack", Workers: 16, Racks: 2,
			UplinkGbps: uplink, Seed: cfg.Seed,
		}
		mean, peak, busy, makespan, err := replayWithProbe(sched, spec)
		if err != nil {
			return nil, fmt.Errorf("uplink %v: %w", uplink, err)
		}
		t.AddRow(f2(uplink), f2(mean*100), f2(peak*100), f2(busy*100), f2(makespan))
	}
	return []Table{t}, nil
}

// replayWithProbe replays a schedule while probing the fabric's rack
// uplinks (links touching the core switch), returning the uplinks'
// average mean/peak/busy utilization and the makespan in seconds.
func replayWithProbe(sched []core.SynthFlow, spec core.ClusterSpec) (mean, peak, busy, makespanSecs float64, err error) {
	topo, err := spec.BuildTopology()
	if err != nil {
		return 0, 0, 0, 0, err
	}
	eng := sim.New()
	net := netsim.NewNetwork(eng, topo, netsim.Config{})
	capture := pcap.NewCapture()
	net.AddTap(capture)

	// Uplinks: links whose endpoint is a switch named "core".
	var uplinks []netsim.LinkID
	for i, l := range topo.Links() {
		if topo.Name(l.To) == "core" {
			uplinks = append(uplinks, netsim.LinkID(i))
		}
	}
	if len(uplinks) == 0 {
		return 0, 0, 0, 0, fmt.Errorf("no core uplinks in topology")
	}
	probe := netsim.NewUtilizationProbe(net, uplinks, 100_000_000)

	hosts := topo.Hosts()
	master, workers := hosts[0], hosts[1:]
	resolve := func(h int) netsim.NodeID {
		if h < 0 {
			return master
		}
		return workers[h%len(workers)]
	}
	for _, sf := range sched {
		sf := sf
		if _, err := eng.At(sim.Time(sf.StartNs), func() {
			if _, err := net.StartFlow(netsim.FlowSpec{
				Src: resolve(sf.SrcHost), Dst: resolve(sf.DstHost),
				SrcPort: sf.SrcPort, DstPort: sf.DstPort,
				SizeBytes: sf.Bytes, Label: sf.Job,
			}); err != nil {
				panic(fmt.Sprintf("replay flow: %v", err))
			}
		}); err != nil {
			return 0, 0, 0, 0, err
		}
	}
	probe.Start()
	end, err := eng.RunAll()
	if err != nil {
		return 0, 0, 0, 0, err
	}

	means := probe.MeanUtilization()
	peaks := probe.PeakUtilization()
	busys := probe.BusyFraction(0.95)
	for i := range means {
		mean += means[i]
		busy += busys[i]
		if peaks[i] > peak {
			peak = peaks[i]
		}
	}
	mean /= float64(len(means))
	busy /= float64(len(busys))
	return mean, peak, busy, float64(end) / 1e9, nil
}
