package experiments

import (
	"fmt"

	"keddah/internal/core"
	"keddah/internal/flows"
	"keddah/internal/workload"
)

func init() {
	register("E1", "per-phase traffic volume vs input size per workload", runE1)
	register("E2", "flow counts per phase vs task structure", runE2)
}

// captureOne runs a single workload at one input size on a fresh cluster
// and returns the resulting per-round runs.
func captureOne(cfg Config, spec core.ClusterSpec, profile string, input int64, reducers int) (*core.TraceSet, error) {
	ts, _, err := core.CaptureWith(spec, []workload.RunSpec{{
		Profile:    profile,
		InputBytes: input,
		Reducers:   reducers,
	}}, core.CaptureOpts{Telemetry: cfg.Telemetry, StrictChecks: cfg.StrictChecks})
	if err != nil {
		return nil, fmt.Errorf("capture %s@%d: %w", profile, input, err)
	}
	return ts, nil
}

// runE1 reproduces the volume-vs-input-size figure: for every workload
// and input size, the per-phase traffic volume. Expected shape: volumes
// grow ~linearly; shuffle dominates sort/terasort, is negligible for
// grep/kmeans; HDFS write ≈ replication × output.
func runE1(cfg Config) ([]Table, error) {
	t := Table{
		ID:    "E1",
		Title: "Per-phase traffic volume vs input size",
		Note:  "16-worker star cluster, 1 Gbps access links, dfs.replication=3",
		Headers: []string{"workload", "input GB", "hdfs_read MB", "hdfs_write MB",
			"shuffle MB", "control MB", "total MB", "duration s"},
	}
	sizes := []float64{1, 2, 4, 8}
	for _, prof := range workload.Names() {
		for _, gbs := range sizes {
			input := cfg.gb(gbs)
			ts, err := captureOne(cfg, core.ClusterSpec{Workers: 16, Seed: cfg.Seed}, prof, input, 0)
			if err != nil {
				return nil, err
			}
			// Aggregate all rounds of the run.
			var read, write, shuffle, control, total int64
			var dur float64
			for _, r := range ts.Runs {
				ds := r.Dataset()
				read += ds.Volume(flows.PhaseHDFSRead)
				write += ds.Volume(flows.PhaseHDFSWrite)
				shuffle += ds.Volume(flows.PhaseShuffle)
				control += ds.Volume(flows.PhaseControl)
				total += ds.Volume("")
				dur += r.DurationSeconds()
			}
			t.AddRow(prof, gbLabel(input), mb(read), mb(write), mb(shuffle), mb(control), mb(total), f2(dur))
		}
	}
	return []Table{t}, nil
}

// runE2 reproduces the flow-count structure figure: shuffle flows ≈
// maps × reducers; HDFS write flows ≈ blocks × replication (+ output);
// control flows scale with duration.
func runE2(cfg Config) ([]Table, error) {
	t := Table{
		ID:    "E2",
		Title: "Flow counts vs task structure (terasort)",
		Note:  "shuffle flows = maps x reducers; job hdfs_write flows ≈ output blocks x output replication (terasort writes 1 replica)",
		Headers: []string{"reducers", "maps", "shuffle flows", "maps*reducers",
			"hdfs_write flows", "~output blocks", "control flows"},
	}
	input := cfg.gb(4)
	for _, reducers := range []int{4, 8, 16, 32} {
		ts, err := captureOne(cfg, core.ClusterSpec{Workers: 16, Seed: cfg.Seed}, "terasort", input, reducers)
		if err != nil {
			return nil, err
		}
		r := ts.Runs[0]
		ds := r.Dataset()
		// TeraSort output ≈ input with 1-replica commit; each reducer's
		// part file rounds up to whole blocks.
		perReducer := (r.InputBytes + int64(r.Reducers) - 1) / int64(r.Reducers)
		blocksPerReducer := (perReducer + r.BlockSize - 1) / r.BlockSize
		outBlocks := int(blocksPerReducer) * r.Reducers
		t.AddRow(
			itoa(r.Reducers), itoa(r.Maps),
			itoa(ds.Count(flows.PhaseShuffle)), itoa(r.Maps*r.Reducers),
			itoa(ds.Count(flows.PhaseHDFSWrite)), itoa(outBlocks),
			itoa(ds.Count(flows.PhaseControl)),
		)
	}
	return []Table{t}, nil
}
