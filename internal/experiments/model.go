package experiments

import (
	"fmt"

	"keddah/internal/core"
	"keddah/internal/flows"
	"keddah/internal/pcap"
	"keddah/internal/workload"
)

func init() {
	register("E7", "fitted distribution table per workload x phase", runE7)
	register("E8", "model validation: measured vs generated traffic", runE8)
}

// corpus captures the measurement corpus the modelling experiments share:
// each workload run several times with slightly jittered input sizes, as
// the paper's repeated-trials methodology does.
func corpus(cfg Config, profiles []string, repeats int) (*core.TraceSet, error) {
	var specs []workload.RunSpec
	for _, p := range profiles {
		base := cfg.gb(2)
		for i := 0; i < repeats; i++ {
			// Jitter sizes ±12% so count/size laws see variation.
			jit := 1 + 0.12*float64(i-repeats/2)/float64(repeats)
			specs = append(specs, workload.RunSpec{
				Profile:    p,
				InputBytes: int64(float64(base) * jit),
				JobName:    fmt.Sprintf("%s-rep%d", p, i),
				InputPath:  fmt.Sprintf("/data/%s-rep%d", p, i),
			})
		}
	}
	ts, _, err := core.CaptureWith(core.ClusterSpec{Workers: 16, Seed: cfg.Seed}, specs, core.CaptureOpts{Telemetry: cfg.Telemetry, StrictChecks: cfg.StrictChecks})
	if err != nil {
		return nil, fmt.Errorf("corpus capture: %w", err)
	}
	return ts, nil
}

// runE7 reproduces the fitted-model table: per workload × phase, the
// selected distribution family, parameters, and goodness of fit —
// Keddah's central modelling artefact.
func runE7(cfg Config) ([]Table, error) {
	ts, err := corpus(cfg, workload.Names(), 5)
	if err != nil {
		return nil, err
	}
	model, err := core.FitWith(ts, core.FitOptions{}, cfg.Telemetry)
	if err != nil {
		return nil, fmt.Errorf("fit: %w", err)
	}
	t := Table{
		ID:    "E7",
		Title: "Fitted flow-size laws per workload x phase",
		Note:  "family selected by AIC among {exp, normal, lognormal, gamma, weibull, pareto}; atoms are block-size point masses",
		Headers: []string{"workload", "phase", "samples", "atoms", "size law",
			"KS", "KS p", "count unit", "flows/unit"},
	}
	for _, name := range model.WorkloadNames() {
		jm := model.Jobs[name]
		for _, ph := range flows.AllPhases {
			pm, ok := jm.Phases[ph]
			if !ok {
				continue
			}
			law, err := pm.Size.Build()
			if err != nil {
				return nil, err
			}
			atoms := ""
			for i, a := range pm.SizeAtoms {
				if i > 0 {
					atoms += " "
				}
				atoms += fmt.Sprintf("%.0fMB@%.0f%%", a.Value/(1<<20), a.Weight*100)
			}
			if atoms == "" {
				atoms = "-"
			}
			t.AddRow(name, string(ph), itoa(pm.Samples), atoms, law.String(),
				f3(pm.SizeGoF.KS), f3(pm.SizeGoF.KSP), pm.Unit, f2(pm.CountPerUnit))
		}
	}

	t2 := Table{
		ID:      "E7b",
		Title:   "Per-workload traffic scaling factors",
		Headers: []string{"workload", "runs", "bytes per input byte", "mean duration s"},
	}
	for _, name := range model.WorkloadNames() {
		jm := model.Jobs[name]
		t2.AddRow(name, itoa(jm.RefRuns), f2(jm.BytesPerInputByte), f2(jm.DurationSecs))
	}
	return []Table{t, t2}, nil
}

// runE8 reproduces the validation table: regenerate each workload from
// its fitted model, replay on the same fabric, and compare measured vs
// generated per-phase volumes, counts and size/arrival distributions.
func runE8(cfg Config) ([]Table, error) {
	profiles := workload.Names()
	const repeats = 5
	ts, err := corpus(cfg, profiles, repeats)
	if err != nil {
		return nil, err
	}
	model, err := core.FitWith(ts, core.FitOptions{}, cfg.Telemetry)
	if err != nil {
		return nil, fmt.Errorf("fit: %w", err)
	}
	t := Table{
		ID:    "E8",
		Title: "Model validation: measured vs generated",
		Note:  "two-sample KS over per-flow sizes; volumes per job instance",
		Headers: []string{"workload", "phase", "meas flows", "gen flows",
			"meas MB", "gen MB", "vol err %", "size KS", "arrival KS"},
	}
	byWorkload := ts.ByWorkload()
	for _, prof := range profiles {
		runs := byWorkload[prof]
		var measured []pcap.FlowRecord
		for _, r := range runs {
			measured = append(measured, r.Records...)
		}
		sched, err := model.Generate(core.GenSpec{
			Workload: prof,
			Workers:  16,
			Jobs:     len(runs),
			Seed:     cfg.Seed + 7,
		})
		if err != nil {
			return nil, fmt.Errorf("generate %s: %w", prof, err)
		}
		gen, _, err := core.ReplayWith(sched, core.ClusterSpec{Workers: 16, Seed: cfg.Seed + 7}, cfg.Telemetry)
		if err != nil {
			return nil, fmt.Errorf("replay %s: %w", prof, err)
		}
		v := core.ValidateWith(prof, measured, gen, cfg.Telemetry)
		for _, pc := range v.Phases {
			t.AddRow(prof, string(pc.Phase), itoa(pc.MeasuredFlows), itoa(pc.GeneratedFlows),
				mb(pc.MeasuredBytes), mb(pc.GeneratedBytes),
				f2(pc.VolumeError*100), f3(pc.SizeKS), f3(pc.ArrivalKS))
		}
	}
	return []Table{t}, nil
}
