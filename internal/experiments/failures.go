package experiments

import (
	"fmt"

	"keddah/internal/core"
	"keddah/internal/flows"
	"keddah/internal/workload"
)

func init() {
	register("E11", "extension: traffic under worker failure", runE11)
}

// runE11 is the failure extension: the same terasort run captured on a
// healthy cluster and on one that loses a worker mid-job. Expected
// shape: the job still completes; a new traffic component appears
// (block-sized DataNode→DataNode re-replication copies, classified as
// HDFS write); lost task attempts re-execute and stretch the job.
func runE11(cfg Config) ([]Table, error) {
	t := Table{
		ID:    "E11",
		Title: "Traffic under worker failure (terasort, 16 workers)",
		Note:  "failure at 50% of the healthy run's job window; detection delay 5s",
		Headers: []string{"scenario", "duration s", "re-replication MB",
			"re-repl blocks", "lost containers", "reexec maps", "reexec reducers",
			"hdfs_write MB", "shuffle MB"},
	}
	input := cfg.gb(4)
	spec := core.ClusterSpec{Workers: 16, Seed: cfg.Seed}
	runSpec := []workload.RunSpec{{Profile: "terasort", InputBytes: input}}

	// Healthy baseline (also calibrates the failure instant).
	ts0, res0, err := core.CaptureWith(spec, runSpec, core.CaptureOpts{Telemetry: cfg.Telemetry, StrictChecks: cfg.StrictChecks})
	if err != nil {
		return nil, fmt.Errorf("E11 baseline: %w", err)
	}
	addE11Row(&t, "healthy", ts0, res0)

	// Fail mid-job: halfway between the healthy run's submission and
	// completion (runs share a seed, so timelines align until the
	// failure).
	round0 := res0[0].Rounds[0]
	failAt := int64(round0.Submitted) + int64(round0.Duration())/2
	for _, victim := range []int{3, 7} {
		ts, res, err := core.CaptureWith(spec, runSpec, core.CaptureOpts{
			Failures:     []core.FailureSpec{{WorkerIndex: victim, AtNs: failAt}},
			Telemetry:    cfg.Telemetry,
			StrictChecks: cfg.StrictChecks,
		})
		if err != nil {
			return nil, fmt.Errorf("E11 failure run: %w", err)
		}
		addE11Row(&t, fmt.Sprintf("fail worker %d", victim), ts, res)
	}
	return []Table{t}, nil
}

func addE11Row(t *Table, name string, ts *core.TraceSet, results []workload.RunResult) {
	round := results[0].Rounds[0]
	ds := ts.Runs[0].Dataset()
	var reReplMB float64
	for _, r := range ts.Background {
		if r.Label == "hdfs/reReplication" {
			reReplMB += float64(r.Bytes) / (1 << 20)
		}
	}
	t.AddRow(name,
		f2(float64(round.Duration())/1e9),
		f2(reReplMB),
		itoa(int(ts.Stats.ReReplicatedBlocks)),
		itoa(int(ts.Stats.LostContainers)),
		itoa(round.ReexecutedMaps),
		itoa(round.ReexecutedReducers),
		mb(ds.Volume(flows.PhaseHDFSWrite)),
		mb(ds.Volume(flows.PhaseShuffle)),
	)
}
