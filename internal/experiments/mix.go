package experiments

import (
	"fmt"
	"sort"

	"keddah/internal/core"
	"keddah/internal/flows"
)

func init() {
	register("E12", "extension: multi-tenant job mix replayed across fabrics", runE12)
}

// runE12 is the multi-tenancy extension: a Poisson job mix generated
// from the fitted model library is replayed over fabrics of varying
// oversubscription. Expected shape: as arrival rate or oversubscription
// grows, per-flow transfer times stretch — the capacity-planning
// question a reusable traffic model exists to answer.
func runE12(cfg Config) ([]Table, error) {
	ts, err := corpus(cfg, []string{"terasort", "wordcount", "grep"}, 3)
	if err != nil {
		return nil, err
	}
	model, err := core.FitWith(ts, core.FitOptions{}, cfg.Telemetry)
	if err != nil {
		return nil, fmt.Errorf("fit: %w", err)
	}

	mixTable := Table{
		ID:      "E12a",
		Title:   "Poisson mix composition (60% terasort / 30% wordcount / 10% grep)",
		Headers: []string{"jobs/min", "arrivals", "flows", "total GB", "span s"},
	}
	replayTable := Table{
		ID:    "E12b",
		Title: "Mix replayed across fabrics (4 jobs/min, 5 min window)",
		Headers: []string{"fabric", "mean shuffle flow s", "p99 shuffle flow s",
			"mean hdfs flow s"},
	}

	weights := map[string]float64{"terasort": 6, "wordcount": 3, "grep": 1}
	for _, rate := range []float64{1, 2, 4, 8} {
		sched, err := model.GenerateMix(core.MixSpec{
			Weights:       weights,
			JobsPerMinute: rate,
			WindowSecs:    300,
			Workers:       16,
			Seed:          cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("mix rate %.0f: %w", rate, err)
		}
		sum := core.SummarizeMix(sched)
		arrivals := 0
		for _, n := range sum.Arrivals {
			arrivals += n
		}
		var totalBytes int64
		names := make([]string, 0, len(sum.Bytes))
		for n := range sum.Bytes {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			totalBytes += sum.Bytes[n]
		}
		mixTable.AddRow(f2(rate), itoa(arrivals), itoa(sum.Flows),
			f2(float64(totalBytes)/(1<<30)), f2(sum.SpanSecs))
	}

	sched, err := model.GenerateMix(core.MixSpec{
		Weights:       weights,
		JobsPerMinute: 4,
		WindowSecs:    300,
		Workers:       16,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	fabrics := []struct {
		name string
		spec core.ClusterSpec
	}{
		{"star 1G", core.ClusterSpec{Topology: "star", Workers: 16, Seed: cfg.Seed}},
		{"2 racks, 4G uplink", core.ClusterSpec{Topology: "multirack", Workers: 16, Racks: 2, UplinkGbps: 4, Seed: cfg.Seed}},
		{"2 racks, 1G uplink", core.ClusterSpec{Topology: "multirack", Workers: 16, Racks: 2, UplinkGbps: 1, Seed: cfg.Seed}},
	}
	for _, f := range fabrics {
		recs, _, err := core.ReplayWith(sched, f.spec, cfg.Telemetry)
		if err != nil {
			return nil, fmt.Errorf("replay mix on %s: %w", f.name, err)
		}
		replayTable.AddRow(f.name,
			f3(meanDuration(recs, flows.PhaseShuffle)),
			f3(p99Duration(recs, flows.PhaseShuffle)),
			f3(meanDuration(recs, flows.PhaseHDFSRead, flows.PhaseHDFSWrite)))
	}
	return []Table{mixTable, replayTable}, nil
}
