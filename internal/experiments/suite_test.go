package experiments

import (
	"bytes"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// quickCfg keeps experiment runtime in CI territory.
func quickCfg() Config {
	return Config{Scale: 1.0 / 16, Seed: 3}
}

func runOne(t *testing.T, id string) []Table {
	t.Helper()
	tables, err := Run(id, quickCfg())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Errorf("%s: table %s has no rows", id, tab.ID)
		}
		var buf bytes.Buffer
		if err := tab.Fprint(&buf); err != nil {
			t.Errorf("%s: print: %v", id, err)
		}
		if !strings.Contains(buf.String(), tab.Title) {
			t.Errorf("%s: printed output missing title", id)
		}
	}
	return tables
}

// cell parses a numeric table cell.
func cell(t *testing.T, tab Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"A1", "A2", "A3", "A4", "E1", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("experiments = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ids[%d] = %s, want %s", i, got[i], want[i])
		}
		if Describe(got[i]) == "" {
			t.Errorf("%s has no description", got[i])
		}
	}
	if _, err := Run("E99", quickCfg()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestE2ShuffleCountStructure(t *testing.T) {
	tabs := runOne(t, "E2")
	tab := tabs[0]
	for i := range tab.Rows {
		shuffleFlows := cell(t, tab, i, 2)
		pairs := cell(t, tab, i, 3)
		if shuffleFlows != pairs {
			t.Errorf("row %d: shuffle flows %v != maps*reducers %v", i, shuffleFlows, pairs)
		}
	}
}

func TestE4WriteVolumeScalesWithReplication(t *testing.T) {
	tabs := runOne(t, "E4")
	tab := tabs[0]
	w1 := cell(t, tab, 0, 1) // replication 1
	w3 := cell(t, tab, 2, 1) // replication 3
	if ratio := w3 / w1; ratio < 2.5 || ratio > 3.5 {
		t.Errorf("write volume ratio repl3/repl1 = %.2f, want ≈3", ratio)
	}
	// Shuffle volume must not scale with replication (it only wobbles
	// with per-run jitter — generous ±40% band at this tiny test scale).
	s1, s4 := cell(t, tab, 0, 3), cell(t, tab, 3, 3)
	if s1 == 0 || s4/s1 > 1.4 || s4/s1 < 0.6 {
		t.Errorf("shuffle volume moved with replication: %v -> %v", s1, s4)
	}
}

func TestE6ShuffleFlowsGrowWithReducers(t *testing.T) {
	tabs := runOne(t, "E6")
	tab := tabs[0]
	prev := -1.0
	for i := range tab.Rows {
		n := cell(t, tab, i, 1)
		if n <= prev {
			t.Errorf("shuffle flow count not increasing: row %d = %v", i, n)
		}
		prev = n
	}
	// Mean flow size must shrink as reducers grow.
	first := cell(t, tab, 0, 2)
	last := cell(t, tab, len(tab.Rows)-1, 2)
	if last >= first {
		t.Errorf("mean shuffle flow did not shrink: %v -> %v", first, last)
	}
}

func TestE9OversubscriptionStretchesMakespan(t *testing.T) {
	tabs := runOne(t, "E9")
	tab := tabs[0]
	// Rows: star, 10G, 4G, 1G uplink, fat-tree. The oversubscribed
	// uplink must slow shuffle flows down relative to the 10G fabric.
	s10 := cell(t, tab, 1, 2)
	s1 := cell(t, tab, 3, 2)
	if s1 <= s10 {
		t.Errorf("1G uplink mean shuffle duration %v not larger than 10G %v", s1, s10)
	}
	m10 := cell(t, tab, 1, 1)
	m1 := cell(t, tab, 3, 1)
	if m1 < m10 {
		t.Errorf("1G uplink data makespan %v shrank vs 10G %v", m1, m10)
	}
}

func TestA1LocalityAblation(t *testing.T) {
	tabs := runOne(t, "A1")
	tab := tabs[0]
	localOn := cell(t, tab, 0, 1)
	localOff := cell(t, tab, 1, 1)
	if localOn <= localOff {
		t.Errorf("delay scheduling did not raise local map share: %v vs %v", localOn, localOff)
	}
	remoteOn := cell(t, tab, 0, 2)
	remoteOff := cell(t, tab, 1, 2)
	if remoteOff <= remoteOn {
		t.Errorf("disabling locality did not raise remote reads: %v vs %v", remoteOn, remoteOff)
	}
}

func TestA4SamplingTradeoff(t *testing.T) {
	tabs := runOne(t, "A4")
	tab := tabs[0]
	// Unsampled row is exact.
	if v := cell(t, tab, 0, 3); v != 0 {
		t.Errorf("unsampled data volume error = %v", v)
	}
	// Data-volume estimation stays within a few percent even at heavy
	// sampling, while the shuffle size KS degrades monotonically-ish.
	last := len(tab.Rows) - 1
	if v := cell(t, tab, last, 3); v > 10 {
		t.Errorf("data volume error at heaviest sampling = %v%%", v)
	}
	if k0, kN := cell(t, tab, 0, 5), cell(t, tab, last, 5); kN <= k0 {
		t.Errorf("size KS did not degrade with sampling: %v -> %v", k0, kN)
	}
}

func TestA3LibraryBeatsExpOnly(t *testing.T) {
	tabs := runOne(t, "A3")
	tab := tabs[0]
	better := 0
	for i := range tab.Rows {
		fullKS := cell(t, tab, i, 2)
		expKS := cell(t, tab, i, 4)
		if fullKS <= expKS+1e-9 {
			better++
		}
	}
	if better < len(tab.Rows)/2 {
		t.Errorf("full library better on only %d of %d rows", better, len(tab.Rows))
	}
}

func TestSmokeRemainingExperiments(t *testing.T) {
	for _, id := range []string{"E3", "E5", "E10", "E13", "A2"} {
		runOne(t, id)
	}
}

// TestE17IncastCollapse checks the tentpole behaviour at experiment level:
// TCP goodput collapses relative to fluid as fan-in grows, driven by RTO
// stalls that the fluid model cannot express.
func TestE17IncastCollapse(t *testing.T) {
	tabs := runOne(t, "E17")
	if len(tabs) != 2 {
		t.Fatalf("E17 tables = %d, want 2", len(tabs))
	}
	sweep := tabs[0]
	last := len(sweep.Rows) - 1
	// Columns: 0 fan-in, 3 tcp/fluid ratio, 7 RTO fired.
	ratioSmall := cell(t, sweep, 0, 3)
	ratioBig := cell(t, sweep, last, 3)
	if ratioSmall < 0.5 {
		t.Errorf("fan-in 2 tcp/fluid ratio = %v, want ≥ 0.5 (no collapse at small fan-in)", ratioSmall)
	}
	if ratioBig >= 0.2 {
		t.Errorf("fan-in 64 tcp/fluid ratio = %v, want < 0.2 (incast collapse)", ratioBig)
	}
	if rto := cell(t, sweep, last, 7); rto == 0 {
		t.Error("fan-in 64 fired no RTOs — collapse without timeout stalls is not incast")
	}
	if rto := cell(t, sweep, 0, 7); rto != 0 {
		t.Errorf("fan-in 2 fired %v RTOs, want fast-retransmit-only recovery", rto)
	}
	// TCP tail FCT must dominate fluid's at the big fan-in.
	if fp99, tp99 := cell(t, sweep, last, 4), cell(t, sweep, last, 5); tp99 <= fp99 {
		t.Errorf("fan-in 64 tcp p99 FCT %v ms not above fluid %v ms", tp99, fp99)
	}
	// The capture table has all four transport x scenario cells.
	capTab := tabs[1]
	if len(capTab.Rows) != 4 {
		t.Fatalf("E17b rows = %d, want 4", len(capTab.Rows))
	}
	if capTab.Rows[0][0] != "fluid" || capTab.Rows[0][1] != "healthy" {
		t.Errorf("E17b row 0 = %v, want fluid healthy anchor", capTab.Rows[0][:2])
	}
	for i := range capTab.Rows {
		if d := cell(t, capTab, i, 2); d <= 0 {
			t.Errorf("E17b row %d duration %v not positive", i, d)
		}
	}
}

// TestRunAllMatchesSerial drives a slice of the suite through the worker
// pool and checks the results are byte-identical to serial Run calls and
// come back in request order. Run under -race this also proves the
// runners share no mutable state.
func TestRunAllMatchesSerial(t *testing.T) {
	ids := []string{"E2", "E4", "A2", "E6"}
	cfg := quickCfg()
	results := RunAll(ids, cfg, 4)
	if len(results) != len(ids) {
		t.Fatalf("results = %d, want %d", len(results), len(ids))
	}
	for i, res := range results {
		if res.ID != ids[i] {
			t.Fatalf("result %d is %s, want %s (ordering lost)", i, res.ID, ids[i])
		}
		if res.Err != nil {
			t.Fatalf("%s: %v", res.ID, res.Err)
		}
		want, err := Run(ids[i], cfg)
		if err != nil {
			t.Fatalf("serial %s: %v", ids[i], err)
		}
		if !reflect.DeepEqual(res.Tables, want) {
			t.Errorf("%s: parallel tables differ from serial run", res.ID)
		}
	}
}

func TestRunAllReportsErrors(t *testing.T) {
	results := RunAll([]string{"E2", "E99"}, quickCfg(), 2)
	if results[0].Err != nil {
		t.Errorf("E2 failed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Error("unknown experiment id did not error")
	}
}

func TestE12MixScalesWithArrivalRate(t *testing.T) {
	tabs := runOne(t, "E12")
	if len(tabs) != 2 {
		t.Fatalf("tables = %d, want 2", len(tabs))
	}
	mix := tabs[0]
	// Arrivals and volume grow with the rate.
	first := cell(t, mix, 0, 1)
	last := cell(t, mix, len(mix.Rows)-1, 1)
	if last <= first {
		t.Errorf("arrivals did not grow with rate: %v -> %v", first, last)
	}
	replay := tabs[1]
	// The 1G-uplink fabric stretches shuffle durations vs the star.
	star := cell(t, replay, 0, 1)
	oversub := cell(t, replay, 2, 1)
	if oversub < star {
		t.Errorf("oversubscribed mean shuffle %v below star %v", oversub, star)
	}
}

func TestE14UtilizationRisesWithOversubscription(t *testing.T) {
	tabs := runOne(t, "E14")
	tab := tabs[0]
	first := cell(t, tab, 0, 1)
	last := cell(t, tab, len(tab.Rows)-1, 1)
	if last <= first {
		t.Errorf("mean utilization did not rise with oversubscription: %v -> %v", first, last)
	}
}

func TestE15ScalingValidation(t *testing.T) {
	tabs := runOne(t, "E15")
	tab := tabs[0]
	for i, row := range tab.Rows {
		phase := row[0]
		if phase != "shuffle" && phase != "hdfs_read" {
			continue
		}
		// The headline scaling property: data-phase volumes predicted
		// within 30% even at this tiny test scale.
		if volErr := cell(t, tab, i, 5); volErr > 30 {
			t.Errorf("%s volume error %v%% at 4x extrapolation", phase, volErr)
		}
	}
}

func TestE11FailureTraffic(t *testing.T) {
	tabs := runOne(t, "E11")
	tab := tabs[0]
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	// Healthy run has no recovery traffic.
	if v := cell(t, tab, 0, 2); v != 0 {
		t.Errorf("healthy run re-replicated %v MB", v)
	}
	// At least one failure run produces re-replication traffic.
	if cell(t, tab, 1, 2) == 0 && cell(t, tab, 2, 2) == 0 {
		t.Error("no failure run produced re-replication traffic")
	}
}

func TestE1VolumesGrowWithInput(t *testing.T) {
	tabs := runOne(t, "E1")
	tab := tabs[0]
	// Group rows by workload (4 sizes each); total volume must grow.
	byWl := map[string][]float64{}
	var order []string
	for i, row := range tab.Rows {
		wl := row[0]
		if _, ok := byWl[wl]; !ok {
			order = append(order, wl)
		}
		byWl[wl] = append(byWl[wl], cell(t, tab, i, 6))
	}
	for _, wl := range order {
		vols := byWl[wl]
		if vols[len(vols)-1] <= vols[0] {
			t.Errorf("%s: total volume did not grow with input: %v", wl, vols)
		}
	}
	// Sort-class workloads must be shuffle-heavy; grep must not be.
	shuffleShare := func(wl string) float64 {
		var shuffle, total float64
		for i, row := range tab.Rows {
			if row[0] == wl {
				shuffle += cell(t, tab, i, 4)
				total += cell(t, tab, i, 6)
			}
		}
		return shuffle / total
	}
	if s := shuffleShare("sort"); s < 0.2 {
		t.Errorf("sort shuffle share = %.2f, want heavy", s)
	}
	if s := shuffleShare("grep"); s > 0.05 {
		t.Errorf("grep shuffle share = %.2f, want negligible", s)
	}
}

func TestE7E8ModelQuality(t *testing.T) {
	tabs := runOne(t, "E7")
	if len(tabs) != 2 {
		t.Fatalf("E7 tables = %d, want 2", len(tabs))
	}
	// E8's relative volume checks need inputs spanning several HDFS
	// blocks; below ~1/8 scale the 1-vs-2-block discretization of the
	// jittered corpus dominates the error. Run it a notch larger.
	tabs8, err := Run("E8", Config{Scale: 1.0 / 8, Seed: 3})
	if err != nil {
		t.Fatalf("E8: %v", err)
	}
	tab := tabs8[0]
	// Generated counts must be non-zero whenever measured are, and
	// volume errors bounded for the data phases.
	for i, row := range tab.Rows {
		meas := cell(t, tab, i, 2)
		gen := cell(t, tab, i, 3)
		if meas > 0 && gen == 0 {
			t.Errorf("row %v: measured %v flows but generated none", row, meas)
		}
		phase := row[1]
		measMB := cell(t, tab, i, 4)
		// Relative volume error is only meaningful for phases carrying
		// real volume at this reduced test scale; sub-5 MB phases (tiny
		// kmeans/grep shuffles) are dominated by per-flow jitter.
		if (phase == "shuffle" || phase == "hdfs_write" || phase == "hdfs_read") && measMB >= 5 {
			if volErr := cell(t, tab, i, 6); volErr > 60 {
				t.Errorf("%s/%s volume error %v%% too high", row[0], phase, volErr)
			}
		}
	}
}
