package experiments

import (
	"reflect"
	"testing"
)

func TestE16ChaosSweepStructure(t *testing.T) {
	tabs := runOne(t, "E16")
	tab := tabs[0]
	// 2 fabrics × (1 healthy + 3 kinds × 2 counts).
	if len(tab.Rows) != 14 {
		t.Fatalf("rows = %d, want 14", len(tab.Rows))
	}
	var faultyRetry float64
	for i, row := range tab.Rows {
		stretch := cell(t, tab, i, 4)
		retry := cell(t, tab, i, 5)
		if row[1] == "healthy" {
			if retry != 0 {
				t.Errorf("row %d (%s healthy): retry MB = %v, want 0", i, row[0], retry)
			}
			if stretch != 1 {
				t.Errorf("row %d (%s healthy): stretch = %v, want 1.00", i, row[0], stretch)
			}
			continue
		}
		faultyRetry += retry
		// Faults shift downstream placement draws, so a faulty run can
		// finish a little *faster* than healthy — but never collapse.
		if stretch < 0.5 {
			t.Errorf("row %d (%s %s): implausible stretch %v", i, row[0], row[1], stretch)
		}
		// Re-replication is retry traffic too, so the retry column must
		// dominate the re-replication column.
		if rerepl := cell(t, tab, i, 6); retry+1e-9 < rerepl {
			t.Errorf("row %d: retry MB %v < re-repl MB %v", i, retry, rerepl)
		}
	}
	if faultyRetry == 0 {
		t.Error("no fault scenario produced any retry traffic")
	}
	// Node crashes must generate recovery traffic in every scenario:
	// detection re-replicates the victim's blocks.
	for i, row := range tab.Rows {
		if row[1] == "nodeCrash" {
			if retry := cell(t, tab, i, 5); retry == 0 {
				t.Errorf("row %d (%s nodeCrash n=%s): no retry traffic", i, row[0], row[2])
			}
		}
	}
}

// TestE16SerialMatchesRunAll runs the chaos sweep twice concurrently
// through the worker pool and compares both against a serial run: fault
// injection must stay deterministic under parallel execution (the -race
// run of this test is the data-race proof the subsystem is gated on).
func TestE16SerialMatchesRunAll(t *testing.T) {
	cfg := quickCfg()
	serial, err := Run("E16", cfg)
	if err != nil {
		t.Fatal(err)
	}
	results := RunAll([]string{"E16", "E16"}, cfg, 2)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("RunAll result %d: %v", i, res.Err)
		}
		if !reflect.DeepEqual(res.Tables, serial) {
			t.Errorf("RunAll result %d differs from serial run:\n%+v\nvs\n%+v",
				i, res.Tables, serial)
		}
	}
}
