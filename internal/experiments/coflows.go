package experiments

import (
	"fmt"

	"keddah/internal/coflow"
	"keddah/internal/pcap"
)

func init() {
	register("E13", "extension: coflow characteristics of Hadoop shuffles", runE13)
}

// runE13 characterises each workload's shuffle stage as a coflow — the
// structure downstream coflow-scheduling research consumes. Expected
// shape: width = maps × reducers; per-workload sizes spanning orders of
// magnitude (KB KMeans model updates to multi-GB sorts); moderate skew
// from partition imbalance.
func runE13(cfg Config) ([]Table, error) {
	t := Table{
		ID:    "E13",
		Title: "Coflow characteristics per workload (5 runs each)",
		Note:  "one coflow per job round = its shuffle stage",
		Headers: []string{"workload", "coflows", "median width", "median MB",
			"p90 MB", "median skew", "median CCT s", "bottleneck share"},
	}
	// Shuffle-bearing workloads only (scan is map-only).
	names := []string{"bayes", "grep", "join", "kmeans", "pagerank", "sort", "terasort", "wordcount"}
	ts, err := corpus(cfg, names, 5)
	if err != nil {
		return nil, err
	}
	byWorkload := ts.ByWorkload()
	for _, name := range names {
		runs := byWorkload[name]
		var recs []pcap.FlowRecord
		for _, r := range runs {
			recs = append(recs, r.Records...)
		}
		cfs := coflow.FromRecords(recs)
		if len(cfs) == 0 {
			return nil, fmt.Errorf("E13: no coflows for %s", name)
		}
		pop, err := coflow.Describe(cfs)
		if err != nil {
			return nil, fmt.Errorf("E13 %s: %w", name, err)
		}
		// Bottleneck share of the first coflow (deterministic pick).
		_, share, err := coflow.BottleneckSender(cfs[0], recs)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, itoa(pop.Count),
			f2(pop.Width.P50), f2(pop.Bytes.P50/(1<<20)), f2(pop.Bytes.P90/(1<<20)),
			f2(pop.Skew.P50), f2(pop.Duration.P50), f2(share))
	}
	return []Table{t}, nil
}
