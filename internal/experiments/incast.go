package experiments

import (
	"fmt"
	"sort"

	"keddah/internal/core"
	"keddah/internal/faults"
	"keddah/internal/flows"
	"keddah/internal/netsim"
	"keddah/internal/sim"
	"keddah/internal/stats"
	"keddah/internal/workload"
)

func init() {
	register("E17", "extension: fluid vs TCP transport — shuffle fan-in incast", runE17)
}

// runE17 is the transport extension: the same shuffle fan-in pattern run
// under the fluid (max-min water-filling) and the flow-level TCP transport.
// Expected shape: the fluid model shares the bottleneck at full utilisation
// at every fan-in, while TCP collapses once the synchronized windows
// overflow the droptail buffer — windows drop below the fast-retransmit
// threshold and senders serialize on 200 ms RTO stalls (classic incast).
// The second table replays a full terasort capture under both transports,
// healthy and under the PR 2 chaos fault schedule, to show the collapse
// carries through to job-level shuffle behaviour.
func runE17(cfg Config) ([]Table, error) {
	sweep := Table{
		ID:    "E17",
		Title: "Incast: fluid vs TCP goodput under shuffle fan-in (star, 1 Gbps, 256 KiB units)",
		Note: "synchronized senders into one reducer port; goodput = total bytes / makespan; " +
			"tcp/fluid < 1 is the incast collapse the fluid model cannot express",
		Headers: []string{"fan-in", "fluid Mbps", "tcp Mbps", "tcp/fluid",
			"fluid p99 FCT ms", "tcp p99 FCT ms", "fast rtx", "RTO fired"},
	}
	// The collapse is a property of window synchronization against a fixed
	// buffer, not of data volume, so the unit size stays fixed across
	// Config.Scale: 256 KiB is the classic incast server-request unit.
	const unit = int64(256 << 10)
	for _, fanin := range []int{2, 4, 8, 16, 32, 64} {
		fluid, err := incastRun("fluid", fanin, unit)
		if err != nil {
			return nil, fmt.Errorf("E17 fluid fan-in %d: %w", fanin, err)
		}
		tcp, err := incastRun("tcp", fanin, unit)
		if err != nil {
			return nil, fmt.Errorf("E17 tcp fan-in %d: %w", fanin, err)
		}
		sweep.AddRow(itoa(fanin),
			f2(fluid.goodputBps/1e6),
			f2(tcp.goodputBps/1e6),
			f3(tcp.goodputBps/fluid.goodputBps),
			f2(fluid.p99Ms),
			f2(tcp.p99Ms),
			itoa(int(tcp.fastRtx)),
			itoa(int(tcp.rtoFired)),
		)
	}

	capture, err := runE17Capture(cfg)
	if err != nil {
		return nil, err
	}
	return []Table{sweep, *capture}, nil
}

// incastCell summarises one fan-in run for the sweep table.
type incastCell struct {
	goodputBps float64
	p99Ms      float64
	fastRtx    uint64
	rtoFired   uint64
}

// incastRun starts fanin synchronized senders, each pushing unit bytes into
// hosts[0] of a star, and runs to completion under the given transport.
func incastRun(transport string, fanin int, unit int64) (incastCell, error) {
	topo, err := netsim.Star(fanin+1, netsim.Gbps)
	if err != nil {
		return incastCell{}, err
	}
	eng := sim.New()
	net := netsim.NewNetwork(eng, topo, netsim.Config{Transport: transport, ExpectedFlows: fanin})
	hosts := topo.Hosts()
	var makespan sim.Time
	fcts := make([]float64, 0, fanin)
	for i := 0; i < fanin; i++ {
		_, err := net.StartFlow(netsim.FlowSpec{
			Src: hosts[i+1], Dst: hosts[0], SrcPort: 10000 + i, DstPort: 13562, SizeBytes: unit,
			OnComplete: func(f *netsim.Flow) {
				fcts = append(fcts, float64(f.End()-f.Start())/1e6)
				if f.End() > makespan {
					makespan = f.End()
				}
			},
		})
		if err != nil {
			return incastCell{}, err
		}
	}
	if _, err := eng.RunAll(); err != nil {
		return incastCell{}, err
	}
	if got := net.Completed(); got != uint64(fanin) {
		return incastCell{}, fmt.Errorf("completed %d of %d flows", got, fanin)
	}
	sort.Float64s(fcts)
	var cell incastCell
	cell.goodputBps = float64(fanin) * float64(unit) * 8 / (float64(makespan) / 1e9)
	cell.p99Ms = pctSorted(fcts, 99)
	cell.fastRtx, cell.rtoFired = net.TCPStats()
	return cell, nil
}

// runE17Capture builds the job-level table: terasort on 16 workers under
// {fluid, tcp} x {healthy, chaos}, with one shared random fault schedule
// derived from the fluid-healthy job window (E16 idiom) so the four cells
// are directly comparable.
func runE17Capture(cfg Config) (*Table, error) {
	t := Table{
		ID:    "E17b",
		Title: "Transport under load: terasort capture, fluid vs TCP, healthy vs chaos (16 workers)",
		Note: "stretch and KS compare against the fluid healthy capture; " +
			"chaos reuses one mixed fault schedule across both transports",
		Headers: []string{"transport", "scenario", "duration s", "stretch",
			"shuffle MB", "shuffle p50 ms", "shuffle p99 ms", "size KS"},
	}
	spec := core.ClusterSpec{Topology: "star", Workers: 16, Seed: cfg.Seed}
	runSpec := []workload.RunSpec{{Profile: "terasort", InputBytes: cfg.gb(0.5)}}
	topo, err := spec.BuildTopology()
	if err != nil {
		return nil, fmt.Errorf("E17b topology: %w", err)
	}

	// Fluid healthy anchors everything: the stretch column, the KS sample
	// and the fault window for the chaos cells.
	ts0, res0, err := core.CaptureWith(spec, runSpec, core.CaptureOpts{Telemetry: cfg.Telemetry, StrictChecks: cfg.StrictChecks})
	if err != nil {
		return nil, fmt.Errorf("E17b fluid healthy: %w", err)
	}
	round0 := res0[0].Rounds[0]
	healthyDur := float64(round0.Duration()) / 1e9
	healthySizes := ts0.Runs[0].Dataset().SizeSample(flows.PhaseShuffle)
	addE17Row(&t, "fluid", "healthy", ts0, res0, healthyDur, healthySizes)

	sched := faults.Random(cfg.Seed*1000+17, faults.RandomOpts{
		N:             6,
		Kinds:         []faults.Kind{faults.LinkDown, faults.LinkDegrade, faults.NodeCrash},
		Links:         topo.NumLinks(),
		Workers:       16,
		WindowStartNs: int64(round0.Submitted) + int64(round0.Duration())/10,
		WindowEndNs:   int64(round0.Submitted) + int64(round0.Duration())*7/10,
		MinDurationNs: 3_000_000_000,
		MaxDurationNs: 8_000_000_000,
		MinFactor:     0.1,
		MaxFactor:     0.5,
	})

	cells := []struct {
		transport string
		scenario  string
		opts      core.CaptureOpts
	}{
		{"fluid", "chaos", core.CaptureOpts{Faults: sched}},
		{"tcp", "healthy", core.CaptureOpts{Transport: "tcp"}},
		{"tcp", "chaos", core.CaptureOpts{Transport: "tcp", Faults: sched}},
	}
	for _, c := range cells {
		c.opts.Telemetry = cfg.Telemetry
		c.opts.StrictChecks = cfg.StrictChecks
		ts, res, err := core.CaptureWith(spec, runSpec, c.opts)
		if err != nil {
			return nil, fmt.Errorf("E17b %s %s: %w", c.transport, c.scenario, err)
		}
		addE17Row(&t, c.transport, c.scenario, ts, res, healthyDur, healthySizes)
	}
	return &t, nil
}

// addE17Row reduces one capture to a transport-comparison table row.
func addE17Row(t *Table, transport, scenario string, ts *core.TraceSet,
	results []workload.RunResult, healthyDur float64, healthySizes *stats.Sample) {
	round := results[0].Rounds[0]
	ds := ts.Runs[0].Dataset()
	dur := float64(round.Duration()) / 1e9

	durs := ds.DurationSample(flows.PhaseShuffle).Values()
	ks := 0.0
	if !(transport == "fluid" && scenario == "healthy") {
		if sizes := ds.SizeSample(flows.PhaseShuffle); sizes.Len() > 0 && healthySizes.Len() > 0 {
			ks = stats.KSStatistic2Sorted(healthySizes.Values(), sizes.Values())
		}
	}

	t.AddRow(transport, scenario,
		f2(dur),
		f2(dur/healthyDur),
		mb(ds.Volume(flows.PhaseShuffle)),
		f2(pctSorted(durs, 50)*1e3),
		f2(pctSorted(durs, 99)*1e3),
		f3(ks),
	)
}

// pctSorted returns the p-th percentile (nearest-rank) of an ascending
// slice, 0 when empty.
func pctSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p/100*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
