package sim

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// mix64 is splitmix64: the synthetic workload derives every choice from
// (seed, event id) so the schedule is a pure function of the pod — never
// of goroutine interleaving or engine layout.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// runSynthetic drives a randomized cross-pod event workload on the given
// layout and returns the concatenated per-pod logs plus the window and
// processed counters — everything that must be byte-identical across
// layouts and GOMAXPROCS.
func runSynthetic(t testing.TB, pods, engines int, serial bool, seed uint64, lookahead Time, depth int) string {
	t.Helper()
	s, err := NewSharded(pods, engines, lookahead)
	if err != nil {
		t.Fatalf("NewSharded(%d, %d): %v", pods, engines, err)
	}
	s.SetSerial(serial)

	logs := make([][]string, pods)
	var postErr error

	// body is one synthetic event: log, maybe spawn a local follow-up,
	// maybe post a continuation to another pod at >= lookahead delay.
	var body func(p int, id uint64, depth int) func()
	body = func(p int, id uint64, depth int) func() {
		return func() {
			eng := s.PodEngine(p)
			now := eng.Now()
			logs[p] = append(logs[p], fmt.Sprintf("p%d t%d id%x", p, now, id))
			if depth <= 0 {
				return
			}
			h := mix64(seed ^ id)
			if h%4 != 0 { // local follow-up
				if _, err := eng.At(now+Time(1+h%97), body(p, id*2+1, depth-1)); err != nil {
					t.Errorf("local At: %v", err)
				}
			}
			if pods > 1 && h%3 == 0 { // cross-pod continuation
				dst := (p + 1 + int((h>>8)%uint64(pods-1))) % pods
				at := now + lookahead + Time((h>>16)%127)
				if err := s.Post(p, dst, at, body(dst, id*2+2, depth-1)); err != nil && postErr == nil {
					postErr = err
				}
			}
		}
	}

	for p := 0; p < pods; p++ {
		for i := 0; i < 3; i++ {
			id := uint64(p)<<32 | uint64(i)
			at := Time(mix64(seed^id^0xabcd) % 200)
			if _, err := s.PodEngine(p).At(at, body(p, id, depth)); err != nil {
				t.Fatalf("seed event: %v", err)
			}
		}
	}

	end, err := s.Drain()
	if err != nil {
		t.Fatalf("Drain(pods=%d engines=%d serial=%v): %v", pods, engines, serial, err)
	}
	if postErr != nil {
		t.Fatalf("Post(pods=%d engines=%d serial=%v): %v", pods, engines, serial, postErr)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "end=%d windows=%d processed=%d\n", end, s.Windows(), s.ProcessedTotal())
	for p := 0; p < pods; p++ {
		fmt.Fprintf(&b, "pod%d: %s\n", p, strings.Join(logs[p], " | "))
	}
	return b.String()
}

// TestShardedLockstep is the core determinism proof at the sim layer:
// the serial baseline (one engine), the sharded layouts run serially,
// and the sharded layouts run on goroutines all produce byte-identical
// event logs at several GOMAXPROCS settings.
func TestShardedLockstep(t *testing.T) {
	const pods, lookahead, depth = 8, 64, 5
	for _, seed := range []uint64{1, 42, 0xdeadbeef} {
		ref := runSynthetic(t, pods, 1, false, seed, lookahead, depth)
		for _, engines := range []int{2, 4, 8} {
			if got := runSynthetic(t, pods, engines, true, seed, lookahead, depth); got != ref {
				t.Errorf("seed %d: serial-mode %d-engine log diverged from baseline\nref:\n%s\ngot:\n%s", seed, engines, ref, got)
			}
			for _, procs := range []int{1, 2, 8} {
				prev := runtime.GOMAXPROCS(procs)
				got := runSynthetic(t, pods, engines, false, seed, lookahead, depth)
				runtime.GOMAXPROCS(prev)
				if got != ref {
					t.Errorf("seed %d: parallel %d-engine log at GOMAXPROCS=%d diverged from baseline\nref:\n%s\ngot:\n%s",
						seed, engines, procs, ref, got)
				}
			}
		}
	}
}

func TestShardedValidation(t *testing.T) {
	if _, err := NewSharded(0, 1, 10); err == nil {
		t.Error("NewSharded(0 pods) succeeded")
	}
	if _, err := NewSharded(4, 0, 10); err == nil {
		t.Error("NewSharded(0 engines) succeeded")
	}
	if _, err := NewSharded(4, 5, 10); err == nil {
		t.Error("NewSharded(engines > pods) succeeded")
	}
	if _, err := NewSharded(4, 4, 0); err == nil {
		t.Error("NewSharded(zero lookahead) succeeded")
	}

	s, err := NewSharded(4, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.Pods() != 4 || s.Engines() != 2 || s.Lookahead() != 10 {
		t.Fatalf("accessors: pods=%d engines=%d lookahead=%v", s.Pods(), s.Engines(), s.Lookahead())
	}
	if s.PodEngine(0) != s.PodEngine(2) || s.PodEngine(0) == s.PodEngine(1) {
		t.Error("pod->engine mapping is not round-robin")
	}
	if err := s.Post(-1, 0, 100, func() {}); err == nil {
		t.Error("Post from pod -1 succeeded")
	}
	if err := s.Post(0, 4, 100, func() {}); err == nil {
		t.Error("Post to pod 4 succeeded")
	}
	if err := s.Post(1, 1, 100, func() {}); err == nil {
		t.Error("Post to own pod succeeded")
	}
	if err := s.Post(0, 1, 100, nil); err == nil {
		t.Error("Post with nil fn succeeded")
	}
}

// TestShardedWindowGuard proves the boundary invariant is enforced: a
// post with delivery time inside the current window is rejected.
func TestShardedWindowGuard(t *testing.T) {
	s, err := NewSharded(2, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	var guardErr error
	if _, err := s.PodEngine(0).At(5, func() {
		// Delivery at now+1 is far below the window boundary (tmin+100).
		guardErr = s.Post(0, 1, s.PodEngine(0).Now()+1, func() {})
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if guardErr == nil {
		t.Fatal("post inside window boundary was not rejected")
	}
}

// TestShardedBoundaryExact: a post landing exactly on the window
// boundary is legal and delivered in a later window.
func TestShardedBoundaryExact(t *testing.T) {
	s, err := NewSharded(2, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	delivered := Time(-1)
	if _, err := s.PodEngine(0).At(0, func() {
		if err := s.Post(0, 1, 10, func() { delivered = s.PodEngine(1).Now() }); err != nil {
			t.Errorf("boundary-exact post rejected: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if delivered != 10 {
		t.Fatalf("boundary event delivered at %v, want 10", delivered)
	}
	if s.Windows() < 2 {
		t.Fatalf("boundary event ran in %d windows, want at least 2", s.Windows())
	}
}

func TestShardedDrainedWithWorkPending(t *testing.T) {
	s, err := NewSharded(2, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PodEngine(0).At(1, func() {}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunWindows(func() bool { return false }); err == nil {
		t.Fatal("RunWindows with unsatisfiable done returned nil error")
	}
}

func TestShardedBarrierHook(t *testing.T) {
	s, err := NewSharded(2, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	s.SetBarrierHook(func() error {
		calls++
		if calls == 2 {
			return fmt.Errorf("hook says stop")
		}
		return nil
	})
	for p := 0; p < 2; p++ {
		p := p
		if _, err := s.PodEngine(p).At(1, func() {
			_, _ = s.PodEngine(p).At(s.PodEngine(p).Now()+20, func() {})
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Drain(); err == nil || !strings.Contains(err.Error(), "hook says stop") {
		t.Fatalf("barrier hook error not propagated, got %v", err)
	}
	if calls != 2 {
		t.Fatalf("hook ran %d times, want 2", calls)
	}
}

// FuzzShardWindowSync fuzzes pod counts, engine counts, lookahead sizes
// and boundary-straddling schedules, asserting the sharded parallel run
// reproduces the one-engine baseline byte for byte.
func FuzzShardWindowSync(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(2), uint16(10), uint8(3))
	f.Add(uint64(42), uint8(8), uint8(4), uint16(64), uint8(4))
	f.Add(uint64(7), uint8(5), uint8(5), uint16(1), uint8(2))
	f.Add(uint64(0xbeef), uint8(3), uint8(1), uint16(500), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, podsRaw, enginesRaw uint8, lookaheadRaw uint16, depthRaw uint8) {
		pods := 1 + int(podsRaw%9)
		engines := 1 + int(enginesRaw)%pods
		lookahead := Time(1 + lookaheadRaw%1000)
		depth := int(depthRaw % 5)
		ref := runSynthetic(t, pods, 1, false, seed, lookahead, depth)
		if got := runSynthetic(t, pods, engines, false, seed, lookahead, depth); got != ref {
			t.Fatalf("pods=%d engines=%d lookahead=%v depth=%d: parallel run diverged\nref:\n%s\ngot:\n%s",
				pods, engines, lookahead, depth, ref, got)
		}
		if got := runSynthetic(t, pods, engines, true, seed, lookahead, depth); got != ref {
			t.Fatalf("pods=%d engines=%d lookahead=%v depth=%d: serial-mode run diverged\nref:\n%s\ngot:\n%s",
				pods, engines, lookahead, depth, ref, got)
		}
	})
}
