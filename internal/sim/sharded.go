// Sharded conservative-window scheduler: several slab engines advance in
// lockstep through time windows derived from a lookahead bound, with
// cross-shard events exchanged through fixed-order merge queues at window
// barriers. Within a window the shards share nothing, so they may run on
// separate goroutines; the merge order at every barrier is fixed
// (destination pod, then source pod, then send order), which makes a run
// byte-identical at any GOMAXPROCS and any shard count.
package sim

import (
	"errors"
	"fmt"
	"time"

	"keddah/internal/telemetry"
)

// post is one cross-shard event waiting in a mailbox for the next barrier.
type post struct {
	at Time
	fn func()
}

// ShardedEngine multiplexes `pods` logical shards onto one or more slab
// engines and advances them through conservative time windows.
//
// The protocol: every window, the scheduler peeks each engine's earliest
// event to derive tmin, sets the boundary B = tmin + lookahead, and runs
// every engine over the half-open window [·, B). Events executing inside
// a window may hand work to another pod only through Post, whose delivery
// time must be at least B — guaranteed whenever the cross-pod delay is at
// least the lookahead, since the sender's clock is at least tmin. At the
// barrier the mailboxes are merged in fixed (destination, source, FIFO)
// order onto the destination engines, so sequence numbers — and therefore
// same-instant tie-breaks — are assigned identically however many engines
// exist and however the goroutines interleave.
type ShardedEngine struct {
	engines   []*Engine
	podEng    []int // pod -> engine index
	lookahead Time
	// serial forces windows to execute shard-by-shard on the calling
	// goroutine (lockstep tests compare this against the parallel path).
	serial bool
	// mail[src*pods+dst] is the (src → dst) mailbox. Each cell is
	// appended to only by src's goroutine and drained only at barriers,
	// so no cell is ever written concurrently.
	mail      [][]post
	windowEnd Time
	inWindow  bool
	windows   uint64
	// barrierHook, when set, runs after every barrier merge; a non-nil
	// error aborts the run (the invariants layer samples sweeps here,
	// where no shard goroutine is in flight).
	barrierHook func() error

	metrics telemetry.ShardMetrics
	busyNs  []int64
	winBusy []int64
	stallNs int64
	// critNs sums each window's slowest shard: the run's parallel
	// critical path, i.e. the wall time a machine with one core per
	// engine would need inside windows. Comparing the serial layout's
	// critNs against a sharded layout's measures achievable speedup
	// even on hosts without that many cores.
	critNs int64

	active  []int
	runErrs []error

	// Persistent window workers: one goroutine per engine, parked on its
	// work channel between windows. Spawning goroutines per window costs
	// more than a typical window's work, so RunWindows starts these once
	// and stops them on exit.
	work  []chan Time
	wdone chan int
}

// NewSharded builds a scheduler of `pods` logical shards multiplexed onto
// `engines` slab engines; pod i runs on engine i % engines. One engine is
// the serial baseline (every pod on one heap, still windowed, so barriers
// and boundary merges happen at identical instants); engines == pods is
// the fully sharded layout. lookahead is the minimum cross-pod delay and
// must be positive.
func NewSharded(pods, engines int, lookahead Time) (*ShardedEngine, error) {
	if pods < 1 {
		return nil, fmt.Errorf("sim: sharded scheduler needs at least one pod, got %d", pods)
	}
	if engines < 1 || engines > pods {
		return nil, fmt.Errorf("sim: engine count %d outside [1, %d pods]", engines, pods)
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("sim: non-positive lookahead %v", lookahead)
	}
	s := &ShardedEngine{
		engines:   make([]*Engine, engines),
		podEng:    make([]int, pods),
		lookahead: lookahead,
		mail:      make([][]post, pods*pods),
		busyNs:    make([]int64, engines),
		winBusy:   make([]int64, engines),
		active:    make([]int, 0, engines),
		runErrs:   make([]error, engines),
	}
	for i := range s.engines {
		s.engines[i] = New()
	}
	for p := range s.podEng {
		s.podEng[p] = p % engines
	}
	return s, nil
}

// Pods returns the logical shard count.
func (s *ShardedEngine) Pods() int { return len(s.podEng) }

// Engines returns the slab engine count (1 = serial baseline).
func (s *ShardedEngine) Engines() int { return len(s.engines) }

// Lookahead returns the minimum cross-pod delay windows are derived from.
func (s *ShardedEngine) Lookahead() Time { return s.lookahead }

// PodEngine returns the engine hosting pod's events. Callers schedule
// pod-local work on it directly; only cross-pod work goes through Post.
func (s *ShardedEngine) PodEngine(pod int) *Engine { return s.engines[s.podEng[pod]] }

// Windows returns how many windows have executed.
func (s *ShardedEngine) Windows() uint64 { return s.windows }

// ProcessedTotal returns the events executed across all engines. By
// construction it is identical at every barrier whatever the engine
// count, so it can pace deterministic sampling (e.g. invariant sweeps).
func (s *ShardedEngine) ProcessedTotal() uint64 {
	var n uint64
	for _, eng := range s.engines {
		n += eng.Processed()
	}
	return n
}

// CriticalPathNs returns the summed per-window maximum shard busy time:
// the wall time this run would need inside windows on a machine with one
// core per engine. Dividing the serial layout's value by a sharded
// layout's gives the speedup the shard partition can achieve, measured
// from real event execution times, independent of host core count.
func (s *ShardedEngine) CriticalPathNs() int64 { return s.critNs }

// Now returns the scheduler clock: the furthest any engine has advanced.
func (s *ShardedEngine) Now() Time {
	var max Time
	for _, eng := range s.engines {
		if t := eng.Now(); t > max {
			max = t
		}
	}
	return max
}

// SetSerial forces windows to run shard-by-shard on the calling
// goroutine. Output is byte-identical either way; lockstep tests flip
// this to prove it.
func (s *ShardedEngine) SetSerial(b bool) { s.serial = b }

// SetBarrierHook installs fn to run after every barrier merge.
func (s *ShardedEngine) SetBarrierHook(fn func() error) { s.barrierHook = fn }

// SetMetrics attaches scheduler instrumentation (telemetry.ShardSet).
func (s *ShardedEngine) SetMetrics(m telemetry.ShardMetrics) { s.metrics = m }

// Post queues fn to run on dst's engine at absolute time at, delivered
// at the next window barrier. During a window the delivery time must be
// at least the window boundary — callers satisfy this by scheduling at
// least `lookahead` after their own clock. Same-pod posts are rejected:
// pod-local work belongs directly on PodEngine(pod).
func (s *ShardedEngine) Post(src, dst int, at Time, fn func()) error {
	pods := len(s.podEng)
	if src < 0 || src >= pods || dst < 0 || dst >= pods {
		return fmt.Errorf("sim: post between pods %d and %d outside [0, %d)", src, dst, pods)
	}
	if src == dst {
		return errors.New("sim: post to own pod (schedule on PodEngine instead)")
	}
	if fn == nil {
		return errors.New("sim: post with nil callback")
	}
	if s.inWindow && at < s.windowEnd {
		return fmt.Errorf("sim: post at %v violates window boundary %v (cross-pod delay below lookahead %v)",
			at, s.windowEnd, s.lookahead)
	}
	s.mail[src*pods+dst] = append(s.mail[src*pods+dst], post{at: at, fn: fn})
	return nil
}

// nextEventAt returns the earliest event time across every engine.
func (s *ShardedEngine) nextEventAt() (Time, bool) {
	var min Time
	found := false
	for _, eng := range s.engines {
		if at, ok := eng.NextEventAt(); ok && (!found || at < min) {
			min, found = at, true
		}
	}
	return min, found
}

// window runs every engine over [·, bound) — in parallel unless serial
// mode is on — then merges the mailboxes at the barrier.
func (s *ShardedEngine) window(bound Time) error {
	s.windowEnd = bound
	s.active = s.active[:0]
	for i, eng := range s.engines {
		if at, ok := eng.NextEventAt(); ok && at < bound {
			s.active = append(s.active, i)
		}
	}
	s.inWindow = true
	wallStart := time.Now()
	if s.serial || len(s.active) <= 1 || s.work == nil {
		var winMax int64
		for _, i := range s.active {
			start := time.Now()
			_, err := s.engines[i].RunBefore(bound)
			took := time.Since(start).Nanoseconds()
			s.busyNs[i] += took
			if took > winMax {
				winMax = took
			}
			if err != nil {
				s.inWindow = false
				return fmt.Errorf("sim: shard %d: %w", i, err)
			}
		}
		s.critNs += winMax
	} else {
		for _, i := range s.active {
			s.work[i] <- bound
		}
		for range s.active {
			<-s.wdone
		}
		wallNs := time.Since(wallStart).Nanoseconds()
		var winMax int64
		for _, i := range s.active {
			s.busyNs[i] += s.winBusy[i]
			s.stallNs += wallNs - s.winBusy[i] // barrier wait: window wall minus this shard's work
			if s.winBusy[i] > winMax {
				winMax = s.winBusy[i]
			}
			if err := s.runErrs[i]; err != nil {
				s.runErrs[i] = nil
				s.inWindow = false
				return fmt.Errorf("sim: shard %d: %w", i, err)
			}
		}
		s.critNs += winMax
	}
	s.inWindow = false
	s.windows++
	s.metrics.Windows.Inc()

	// Barrier merge: deliver mailboxes in fixed (dst, src, FIFO) order so
	// sequence numbers — hence same-instant ordering — are reproducible.
	pods := len(s.podEng)
	delivered := 0
	for dst := 0; dst < pods; dst++ {
		eng := s.engines[s.podEng[dst]]
		for src := 0; src < pods; src++ {
			cell := &s.mail[src*pods+dst]
			for _, p := range *cell {
				if _, err := eng.At(p.at, p.fn); err != nil {
					return fmt.Errorf("sim: deliver boundary event %d→%d: %w", src, dst, err)
				}
			}
			delivered += len(*cell)
			*cell = (*cell)[:0]
		}
	}
	if delivered > 0 {
		s.metrics.BoundaryEvents.Add(int64(delivered))
	}
	if s.barrierHook != nil {
		if err := s.barrierHook(); err != nil {
			return err
		}
	}
	return nil
}

// RunWindows advances every shard window by window until done reports
// true at a barrier. A nil done drains: windows run until every engine's
// queue and every mailbox is empty. With a non-nil done, running out of
// events before done is satisfied is an error, mirroring the serial
// cluster loop's "queue drained with tasks pending". It returns the
// scheduler clock at exit.
func (s *ShardedEngine) RunWindows(done func() bool) (Time, error) {
	if !s.serial && len(s.engines) > 1 {
		s.startWorkers()
		defer s.stopWorkers()
	}
	for {
		if done != nil && done() {
			break
		}
		tmin, ok := s.nextEventAt()
		if !ok {
			if done == nil {
				break
			}
			return s.Now(), errors.New("sim: sharded queues drained with work pending")
		}
		if err := s.window(tmin + s.lookahead); err != nil {
			return s.Now(), err
		}
	}
	s.flushGauges()
	return s.Now(), nil
}

// Drain processes every remaining event (shutdown teardown, pre-scheduled
// fault recoveries) with no completion predicate.
func (s *ShardedEngine) Drain() (Time, error) { return s.RunWindows(nil) }

// startWorkers parks one goroutine per engine on its work channel. Each
// worker runs only its own engine over the window bound it receives, so
// the shard-local invariant (no engine touched by two goroutines) holds
// by construction; the barrier in window() is the completion drain.
func (s *ShardedEngine) startWorkers() {
	if s.work != nil {
		return
	}
	s.work = make([]chan Time, len(s.engines))
	s.wdone = make(chan int, len(s.engines))
	for i := range s.work {
		s.work[i] = make(chan Time)
		go s.runWorker(i, s.work[i])
	}
}

// stopWorkers releases the parked worker goroutines. RunWindows defers
// this, so a ShardedEngine holds no goroutines between runs.
func (s *ShardedEngine) stopWorkers() {
	for _, ch := range s.work {
		close(ch)
	}
	s.work = nil
	s.wdone = nil
}

// runWorker is the persistent window worker for engine i: run the engine
// up to each bound received, record busy time and error, announce done.
// The channel is passed in rather than read from s.work so a worker that
// is slow to start never observes stopWorkers clearing the slice.
func (s *ShardedEngine) runWorker(i int, work <-chan Time) {
	for bound := range work {
		start := time.Now()
		_, err := s.engines[i].RunBefore(bound)
		s.winBusy[i] = time.Since(start).Nanoseconds()
		s.runErrs[i] = err
		s.wdone <- i
	}
}

// flushGauges publishes the volatile per-shard utilisation gauges. These
// depend on wall clock and shard layout, so they are Prometheus-only —
// the deterministic snapshot stays byte-identical at any shard count.
func (s *ShardedEngine) flushGauges() {
	s.metrics.StallMs.Set(float64(s.stallNs) / 1e6)
	s.metrics.CritPathMs.Set(float64(s.critNs) / 1e6)
	for i, eng := range s.engines {
		if i < len(s.metrics.ShardEvents) {
			s.metrics.ShardEvents[i].Set(float64(eng.Processed()))
		}
		if i < len(s.metrics.ShardBusyMs) {
			s.metrics.ShardBusyMs[i].Set(float64(s.busyNs[i]) / 1e6)
		}
	}
}
