// Package sim provides a deterministic single-threaded discrete-event
// simulation engine. All higher layers (network, HDFS, YARN, MapReduce)
// schedule callbacks on one Engine so that an entire cluster run is a pure
// function of its inputs and RNG seed.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"

	"keddah/internal/telemetry"
)

// Time is simulated time measured from the start of the run.
// It uses time.Duration so call sites read naturally (500*time.Millisecond).
type Time = time.Duration

// MaxTime is the largest representable simulation instant.
const MaxTime Time = math.MaxInt64

// Event is a scheduled callback. Events with equal time fire in the order
// they were scheduled (stable FIFO tie-break by sequence number), which is
// what makes runs reproducible.
type Event struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
	idx  int
}

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.dead = true
	}
}

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e != nil && e.dead }

// At returns the simulated time the event is (or was) scheduled for.
func (e *Event) At() Time { return e.at }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*q = old[:n-1]
	return ev
}

// ErrHorizon is returned by Run when the event limit is exhausted before the
// queue drains, which almost always indicates a scheduling livelock.
var ErrHorizon = errors.New("sim: event budget exhausted before queue drained")

// Engine is the discrete-event core. The zero value is not usable; call New.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	running bool
	// MaxEvents bounds a single Run; 0 means the default of 500 million.
	MaxEvents uint64
	processed uint64
	metrics   telemetry.SimMetrics
}

// SetMetrics attaches engine instrumentation. The zero value detaches
// it (every hook degrades to a nil check).
func (e *Engine) SetMetrics(m telemetry.SimMetrics) { e.metrics = m }

// New returns an Engine with the clock at zero and an empty queue.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently queued (including
// cancelled events not yet discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past is an error: the engine cannot rewind.
func (e *Engine) At(t Time, fn func()) (*Event, error) {
	if t < e.now {
		return nil, fmt.Errorf("sim: schedule at %v before now %v", t, e.now)
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	e.metrics.HeapDepthMax.SetMax(float64(len(e.queue)))
	return ev, nil
}

// After schedules fn to run d after the current time. Negative delays
// clamp to zero (fire "now", after currently-running event returns).
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	ev, _ := e.At(e.now+d, fn) // never in the past by construction
	return ev
}

// Reschedule moves an existing event to absolute time t, keeping its
// callback. If the event is still queued it is sifted in place (no
// dead-event tombstone accumulates, unlike Cancel-then-At); if it already
// fired or was cancelled it is revived and re-queued. The event is given
// a fresh sequence number, so among same-time events it fires as if newly
// scheduled. Rescheduling into the past is an error.
func (e *Engine) Reschedule(ev *Event, t Time) error {
	if ev == nil {
		return errors.New("sim: Reschedule of nil event")
	}
	if t < e.now {
		return fmt.Errorf("sim: reschedule at %v before now %v", t, e.now)
	}
	ev.dead = false
	ev.at = t
	ev.seq = e.seq
	e.seq++
	if ev.idx >= 0 && ev.idx < len(e.queue) && e.queue[ev.idx] == ev {
		heap.Fix(&e.queue, ev.idx)
	} else {
		heap.Push(&e.queue, ev)
	}
	return nil
}

// Run processes events until the queue is empty or until simulated time
// would exceed until. Events exactly at until still fire. It returns the
// time of the last processed event (or the starting time if none fired).
func (e *Engine) Run(until Time) (Time, error) {
	if e.running {
		return e.now, errors.New("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()

	budget := e.MaxEvents
	if budget == 0 {
		budget = 500_000_000
	}
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.at > until {
			return e.now, nil
		}
		heap.Pop(&e.queue)
		if next.dead {
			continue
		}
		if e.processed >= budget {
			return e.now, ErrHorizon
		}
		e.processed++
		e.metrics.Events.Inc()
		e.now = next.at
		next.fn()
	}
	return e.now, nil
}

// RunAll processes every queued event with no time bound.
func (e *Engine) RunAll() (Time, error) { return e.Run(MaxTime) }

// Step executes exactly one pending (non-cancelled) event and returns true,
// or returns false if the queue is empty. Like Run, it refuses to execute
// re-entrantly (from inside an event callback) and stops once the
// MaxEvents budget is exhausted.
func (e *Engine) Step() bool {
	if e.running {
		return false
	}
	e.running = true
	defer func() { e.running = false }()

	budget := e.MaxEvents
	if budget == 0 {
		budget = 500_000_000
	}
	for len(e.queue) > 0 {
		if e.queue[0].dead {
			heap.Pop(&e.queue)
			continue
		}
		if e.processed >= budget {
			return false
		}
		next := heap.Pop(&e.queue).(*Event)
		e.processed++
		e.metrics.Events.Inc()
		e.now = next.at
		next.fn()
		return true
	}
	return false
}
