// Package sim provides a deterministic single-threaded discrete-event
// simulation engine. All higher layers (network, HDFS, YARN, MapReduce)
// schedule callbacks on one Engine so that an entire cluster run is a pure
// function of its inputs and RNG seed.
//
// Events live in a per-engine slab and are addressed by int32 slot ids
// ordered by an index heap, so the hot path never boxes through interfaces
// or allocates per event. Slots are recycled through a free list and
// generation-counted: a handle to a fired or cancelled event goes stale
// instead of aliasing the slot's next occupant.
package sim

import (
	"errors"
	"fmt"
	"math"
	"time"

	"keddah/internal/telemetry"
)

// Time is simulated time measured from the start of the run.
// It uses time.Duration so call sites read naturally (500*time.Millisecond).
type Time = time.Duration

// MaxTime is the largest representable simulation instant.
const MaxTime Time = math.MaxInt64

// eventSlot is one slab entry. Exactly one of fn and cb is set: fn is the
// closure form, cb+arg the closure-free form hot paths use so that
// re-arming a pooled event allocates nothing.
type eventSlot struct {
	at  Time
	seq uint64
	fn  func()
	cb  func(uint64)
	arg uint64
	// gen is bumped every time the slot is freed, invalidating handles.
	gen uint32
	// heapIdx is the slot's position in the engine heap, -1 when unqueued.
	heapIdx int32
	// used marks the slot as owned (queued one-shot or live timer).
	used bool
	// persistent slots (timers) survive firing and cancellation; their
	// owner re-arms them with Schedule. One-shot slots are freed on fire.
	persistent bool
}

// Event is a generation-counted handle to a scheduled callback. It is a
// small value (copy freely); the zero value refers to no event and every
// operation on it is a safe no-op or error. Handles to one-shot events go
// stale once the event fires or is cancelled; handles to timers made with
// NewTimer stay valid for the engine's lifetime.
type Event struct {
	eng *Engine
	id  int32
	gen uint32
}

// Valid reports whether the handle was ever bound to an event. It does
// not imply the event is still pending — see Pending.
func (ev Event) Valid() bool { return ev.eng != nil }

// live returns the slot if the handle still refers to its event.
func (ev Event) live() *eventSlot {
	if ev.eng == nil || int(ev.id) >= len(ev.eng.slots) {
		return nil
	}
	s := &ev.eng.slots[ev.id]
	if s.gen != ev.gen || !s.used {
		return nil
	}
	return s
}

// Pending reports whether the event is queued to fire.
func (ev Event) Pending() bool {
	s := ev.live()
	return s != nil && s.heapIdx >= 0
}

// At returns the simulated time the event is scheduled for, or zero if
// the handle is stale.
func (ev Event) At() Time {
	if s := ev.live(); s != nil {
		return s.at
	}
	return 0
}

// Cancel removes a pending event from the queue. A cancelled one-shot
// event's slot is recycled immediately and its callback released, so
// cancellation storms leave no tombstones in the heap and no reachable
// closures. Cancelling a stale handle (already fired or cancelled) or the
// zero Event is a no-op. A cancelled timer stays owned and can be
// re-armed with Schedule.
func (ev Event) Cancel() {
	s := ev.live()
	if s == nil {
		return
	}
	if s.heapIdx >= 0 {
		ev.eng.heapRemove(s.heapIdx)
	}
	if !s.persistent {
		ev.eng.freeSlot(ev.id)
	}
}

// Schedule arms (or re-arms) the event to fire at absolute time t. A
// pending event is moved in place; an idle timer is queued. The event is
// given a fresh sequence number, so among same-time events it fires as if
// newly scheduled. Scheduling into the past, on the zero Event, or on a
// stale one-shot handle is an error (a fired one-shot's callback is gone —
// use NewTimer for events that must be revivable).
func (ev Event) Schedule(t Time) error {
	if ev.eng == nil {
		return errors.New("sim: Schedule on zero Event")
	}
	e := ev.eng
	s := ev.live()
	if s == nil {
		return errors.New("sim: Schedule on stale event handle")
	}
	if t < e.now {
		return fmt.Errorf("sim: reschedule at %v before now %v", t, e.now)
	}
	s.at = t
	s.seq = e.seq
	e.seq++
	if s.heapIdx >= 0 {
		e.heapFix(s.heapIdx)
	} else {
		e.heapPush(ev.id)
	}
	return nil
}

// ErrHorizon is returned by Run when the event limit is exhausted before the
// queue drains, which almost always indicates a scheduling livelock.
var ErrHorizon = errors.New("sim: event budget exhausted before queue drained")

// Engine is the discrete-event core. The zero value is not usable; call New.
type Engine struct {
	now     Time
	slots   []eventSlot
	free    []int32
	heap    []int32
	seq     uint64
	running bool
	// MaxEvents bounds a single Run; 0 means the default of 500 million.
	MaxEvents uint64
	processed uint64
	metrics   telemetry.SimMetrics
}

// SetMetrics attaches engine instrumentation. The zero value detaches
// it (every hook degrades to a nil check).
func (e *Engine) SetMetrics(m telemetry.SimMetrics) { e.metrics = m }

// New returns an Engine with the clock at zero and an empty queue.
func New() *Engine {
	return &Engine{}
}

// Reserve pre-sizes the event slab and heap for at least n concurrent
// events, so a capture whose peak is known up front performs no slab
// growth on the hot path.
func (e *Engine) Reserve(n int) {
	if n <= cap(e.slots) {
		return
	}
	slots := make([]eventSlot, len(e.slots), n)
	copy(slots, e.slots)
	e.slots = slots
	heap := make([]int32, len(e.heap), n)
	copy(heap, e.heap)
	e.heap = heap
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently queued. Cancelled events
// leave the queue immediately, so the count is exact.
func (e *Engine) Pending() int { return len(e.heap) }

// allocSlot takes a slot from the free list or grows the slab.
func (e *Engine) allocSlot() int32 {
	if n := len(e.free); n > 0 {
		id := e.free[n-1]
		e.free = e.free[:n-1]
		return id
	}
	e.slots = append(e.slots, eventSlot{heapIdx: -1, gen: 1})
	return int32(len(e.slots) - 1)
}

// freeSlot recycles a slot: the generation bump invalidates every
// outstanding handle and the callback references are dropped so cancelled
// work is collectable.
func (e *Engine) freeSlot(id int32) {
	s := &e.slots[id]
	s.gen++
	s.fn = nil
	s.cb = nil
	s.arg = 0
	s.used = false
	s.persistent = false
	s.heapIdx = -1
	e.free = append(e.free, id)
}

// schedule books a slot and queues it.
func (e *Engine) schedule(t Time, fn func(), cb func(uint64), arg uint64) Event {
	id := e.allocSlot()
	s := &e.slots[id]
	s.at = t
	s.seq = e.seq
	e.seq++
	s.fn = fn
	s.cb = cb
	s.arg = arg
	s.used = true
	e.heapPush(id)
	return Event{eng: e, id: id, gen: s.gen}
}

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past is an error: the engine cannot rewind.
func (e *Engine) At(t Time, fn func()) (Event, error) {
	if t < e.now {
		return Event{}, fmt.Errorf("sim: schedule at %v before now %v", t, e.now)
	}
	return e.schedule(t, fn, nil, 0), nil
}

// After schedules fn to run d after the current time. Negative delays
// clamp to zero (fire "now", after currently-running event returns).
func (e *Engine) After(d Time, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.schedule(e.now+d, fn, nil, 0)
}

// AtCall is At for the closure-free callback form: cb(arg) runs at t.
// Passing a long-lived func value (stored once by the caller) makes
// scheduling allocation-free.
func (e *Engine) AtCall(t Time, cb func(uint64), arg uint64) (Event, error) {
	if t < e.now {
		return Event{}, fmt.Errorf("sim: schedule at %v before now %v", t, e.now)
	}
	return e.schedule(t, nil, cb, arg), nil
}

// AfterCall is After for the closure-free callback form.
func (e *Engine) AfterCall(d Time, cb func(uint64), arg uint64) Event {
	if d < 0 {
		d = 0
	}
	return e.schedule(e.now+d, nil, cb, arg)
}

// NewTimer reserves a persistent event slot bound to cb(arg). The timer
// starts unarmed; arm it with Schedule and disarm with Cancel, both any
// number of times — the slot is never recycled, so one timer re-armed per
// occurrence replaces an allocation-per-occurrence stream of one-shots.
func (e *Engine) NewTimer(cb func(uint64), arg uint64) Event {
	id := e.allocSlot()
	s := &e.slots[id]
	s.cb = cb
	s.arg = arg
	s.used = true
	s.persistent = true
	return Event{eng: e, id: id, gen: s.gen}
}

// less orders the heap by (time, sequence): equal-time events fire in the
// order they were scheduled, which is what makes runs reproducible.
func (e *Engine) less(a, b int32) bool {
	sa, sb := &e.slots[a], &e.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	return sa.seq < sb.seq
}

func (e *Engine) heapPush(id int32) {
	e.slots[id].heapIdx = int32(len(e.heap))
	e.heap = append(e.heap, id)
	e.siftUp(len(e.heap) - 1)
	e.metrics.HeapDepthMax.SetMax(float64(len(e.heap)))
}

// heapRemove deletes the heap entry at position i.
func (e *Engine) heapRemove(i int32) {
	n := len(e.heap) - 1
	id := e.heap[i]
	if int(i) != n {
		e.heap[i] = e.heap[n]
		e.slots[e.heap[i]].heapIdx = i
	}
	e.heap = e.heap[:n]
	if int(i) != n {
		e.heapFix(i)
	}
	e.slots[id].heapIdx = -1
}

// heapFix restores heap order for the entry at position i after its key
// changed in place.
func (e *Engine) heapFix(i int32) {
	if !e.siftDown(int(i)) {
		e.siftUp(int(i))
	}
}

func (e *Engine) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(e.heap[i], e.heap[parent]) {
			break
		}
		e.heapSwap(i, parent)
		i = parent
	}
}

// siftDown returns true if the entry moved.
func (e *Engine) siftDown(i int) bool {
	moved := false
	n := len(e.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && e.less(e.heap[right], e.heap[left]) {
			least = right
		}
		if !e.less(e.heap[least], e.heap[i]) {
			break
		}
		e.heapSwap(i, least)
		i = least
		moved = true
	}
	return moved
}

func (e *Engine) heapSwap(i, j int) {
	e.heap[i], e.heap[j] = e.heap[j], e.heap[i]
	e.slots[e.heap[i]].heapIdx = int32(i)
	e.slots[e.heap[j]].heapIdx = int32(j)
}

// fire pops and executes the heap minimum. The slot is released (or, for
// timers, parked) before the callback runs, so callbacks can freely
// schedule new events — including re-arming the very timer that fired.
func (e *Engine) fire() {
	id := e.heap[0]
	e.heapRemove(0)
	s := &e.slots[id]
	e.processed++
	e.metrics.Events.Inc()
	e.now = s.at
	fn, cb, arg := s.fn, s.cb, s.arg
	if !s.persistent {
		e.freeSlot(id)
	}
	if cb != nil {
		cb(arg)
	} else {
		fn()
	}
}

// Run processes events until the queue is empty or until simulated time
// would exceed until. Events exactly at until still fire. It returns the
// time of the last processed event (or the starting time if none fired).
func (e *Engine) Run(until Time) (Time, error) {
	if e.running {
		return e.now, errors.New("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()

	budget := e.MaxEvents
	if budget == 0 {
		budget = 500_000_000
	}
	for len(e.heap) > 0 {
		if e.slots[e.heap[0]].at > until {
			return e.now, nil
		}
		if e.processed >= budget {
			return e.now, ErrHorizon
		}
		e.fire()
	}
	return e.now, nil
}

// RunAll processes every queued event with no time bound.
func (e *Engine) RunAll() (Time, error) { return e.Run(MaxTime) }

// NextEventAt returns the time of the earliest queued event, or false if
// the queue is empty. The sharded window scheduler peeks every shard's
// queue to derive the next conservative window boundary.
func (e *Engine) NextEventAt() (Time, bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.slots[e.heap[0]].at, true
}

// RunBefore processes events strictly before bound: an event scheduled
// exactly at bound does not fire. This is the half-open window the
// sharded scheduler needs — a window [t, B) must leave boundary events
// for the next window, where cross-shard deliveries merged at the
// barrier can still be ordered ahead of them.
func (e *Engine) RunBefore(bound Time) (Time, error) {
	if e.running {
		return e.now, errors.New("sim: RunBefore called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()

	budget := e.MaxEvents
	if budget == 0 {
		budget = 500_000_000
	}
	for len(e.heap) > 0 {
		if e.slots[e.heap[0]].at >= bound {
			return e.now, nil
		}
		if e.processed >= budget {
			return e.now, ErrHorizon
		}
		e.fire()
	}
	return e.now, nil
}

// Step executes exactly one pending event and returns true, or returns
// false if the queue is empty. Like Run, it refuses to execute
// re-entrantly (from inside an event callback) and stops once the
// MaxEvents budget is exhausted.
func (e *Engine) Step() bool {
	if e.running {
		return false
	}
	e.running = true
	defer func() { e.running = false }()

	budget := e.MaxEvents
	if budget == 0 {
		budget = 500_000_000
	}
	if len(e.heap) == 0 || e.processed >= budget {
		return false
	}
	e.fire()
	return true
}
