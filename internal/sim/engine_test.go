package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.After(3*time.Second, func() { order = append(order, 3) })
	e.After(1*time.Second, func() { order = append(order, 1) })
	e.After(2*time.Second, func() { order = append(order, 2) })
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Errorf("clock = %v, want 3s", e.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Second, func() { order = append(order, i) })
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of FIFO order: %v", order)
		}
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	e := New()
	fired := false
	ev := e.After(time.Second, func() { fired = true })
	ev.Cancel()
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
	// Double-cancel and nil-cancel are no-ops.
	ev.Cancel()
	var nilEv *Event
	nilEv.Cancel()
}

func TestScheduleInPastRejected(t *testing.T) {
	e := New()
	e.After(time.Second, func() {
		if _, err := e.At(0, func() {}); err == nil {
			t.Error("scheduling in the past succeeded")
		}
	})
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := New()
	var at Time
	e.After(time.Second, func() {
		e.After(-5*time.Second, func() { at = e.Now() })
	})
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if at != time.Second {
		t.Errorf("negative-delay event fired at %v, want 1s", at)
	}
}

func TestRunUntilBound(t *testing.T) {
	e := New()
	var fired []Time
	for _, d := range []Time{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		e.After(d, func() { fired = append(fired, d) })
	}
	if _, err := e.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events by t=2s, want 2", len(fired))
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 {
		t.Errorf("fired %d events total, want 3", len(fired))
	}
}

func TestEventBudgetDetectsLivelock(t *testing.T) {
	e := New()
	e.MaxEvents = 100
	var spin func()
	spin = func() { e.After(0, spin) }
	e.After(0, spin)
	if _, err := e.RunAll(); err != ErrHorizon {
		t.Errorf("err = %v, want ErrHorizon", err)
	}
}

func TestStepProcessesOneEvent(t *testing.T) {
	e := New()
	n := 0
	e.After(time.Second, func() { n++ })
	e.After(2*time.Second, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("after first Step n=%d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("after second Step n=%d", n)
	}
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestReentrantRunRejected(t *testing.T) {
	e := New()
	var innerErr error
	e.After(time.Second, func() {
		_, innerErr = e.RunAll()
	})
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if innerErr == nil {
		t.Error("re-entrant Run succeeded")
	}
}

func TestRescheduleMovesEvent(t *testing.T) {
	e := New()
	var fired []string
	ev := e.After(time.Second, func() { fired = append(fired, "moved") })
	e.After(2*time.Second, func() { fired = append(fired, "fixed") })
	// Push the first event past the second, then pull it back earlier.
	if err := e.Reschedule(ev, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := e.Reschedule(ev, 1500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != "moved" || fired[1] != "fixed" {
		t.Errorf("order = %v, want [moved fixed]", fired)
	}
	if ev.At() != 1500*time.Millisecond {
		t.Errorf("At() = %v after reschedule", ev.At())
	}
}

func TestRescheduleLeavesNoDeadEvents(t *testing.T) {
	e := New()
	ev := e.After(time.Second, func() {})
	for i := 0; i < 100; i++ {
		if err := e.Reschedule(ev, Time(i)*time.Millisecond+time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d after 100 reschedules, want 1 (no tombstones)", e.Pending())
	}
}

func TestRescheduleRevivesFiredAndCancelled(t *testing.T) {
	e := New()
	n := 0
	ev := e.After(time.Second, func() { n++ })
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("event did not fire")
	}
	// Revive the already-fired event.
	if err := e.Reschedule(ev, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	// Cancel and revive again.
	ev.Cancel()
	if err := e.Reschedule(ev, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("revived event fired %d extra times, want 1", n-1)
	}
	if e.Now() != 3*time.Second {
		t.Errorf("clock = %v, want 3s", e.Now())
	}
}

func TestRescheduleRejectsPastAndNil(t *testing.T) {
	e := New()
	ev := e.After(2*time.Second, func() {})
	e.After(time.Second, func() {
		if err := e.Reschedule(ev, 0); err == nil {
			t.Error("reschedule into the past succeeded")
		}
	})
	if err := e.Reschedule(nil, time.Second); err == nil {
		t.Error("reschedule of nil event succeeded")
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
}

// TestRescheduleSameTimeFIFO: a rescheduled event lands at the back of
// the FIFO among events at the same instant, as if newly scheduled.
func TestRescheduleSameTimeFIFO(t *testing.T) {
	e := New()
	var order []int
	ev := e.After(time.Second, func() { order = append(order, 1) })
	e.After(2*time.Second, func() { order = append(order, 2) })
	if err := e.Reschedule(ev, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{2, 1}
	if len(order) != 2 || order[0] != want[0] || order[1] != want[1] {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestStepHonorsEventBudget(t *testing.T) {
	e := New()
	e.MaxEvents = 2
	n := 0
	for i := 0; i < 5; i++ {
		e.After(Time(i)*time.Second, func() { n++ })
	}
	for e.Step() {
	}
	if n != 2 {
		t.Errorf("Step executed %d events with MaxEvents=2", n)
	}
	if e.Pending() != 3 {
		t.Errorf("pending = %d, want 3 (budget must not drop events)", e.Pending())
	}
}

func TestStepRejectsReentrancy(t *testing.T) {
	e := New()
	inner := true
	e.After(time.Second, func() {
		inner = e.Step()
	})
	e.After(2*time.Second, func() {})
	if !e.Step() {
		t.Fatal("outer Step returned false")
	}
	if inner {
		t.Error("re-entrant Step executed an event")
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
}

// TestClockMonotonic property: for any batch of scheduled delays, events
// fire in non-decreasing time order.
func TestClockMonotonic(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New()
		var times []Time
		for _, d := range delays {
			e.After(Time(d)*time.Millisecond, func() { times = append(times, e.Now()) })
		}
		if _, err := e.RunAll(); err != nil {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
