package sim

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.After(3*time.Second, func() { order = append(order, 3) })
	e.After(1*time.Second, func() { order = append(order, 1) })
	e.After(2*time.Second, func() { order = append(order, 2) })
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Errorf("clock = %v, want 3s", e.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Second, func() { order = append(order, i) })
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of FIFO order: %v", order)
		}
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	e := New()
	fired := false
	ev := e.After(time.Second, func() { fired = true })
	if !ev.Pending() {
		t.Fatal("Pending() = false before Cancel")
	}
	ev.Cancel()
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
	if ev.Pending() {
		t.Error("Pending() = true after Cancel")
	}
	// Double-cancel and zero-value cancel are no-ops.
	ev.Cancel()
	var zero Event
	zero.Cancel()
	if zero.Pending() {
		t.Error("zero Event reports pending")
	}
}

// A cancelled one-shot's slot is recycled eagerly; the stale handle must
// not cancel or move the slot's next occupant.
func TestStaleHandleCannotTouchRecycledSlot(t *testing.T) {
	e := New()
	stale := e.After(time.Second, func() {})
	stale.Cancel()

	fired := false
	fresh := e.After(2*time.Second, func() { fired = true })
	if fresh.id != stale.id {
		t.Fatalf("slot not recycled: fresh id %d, stale id %d", fresh.id, stale.id)
	}
	stale.Cancel() // must be a no-op against the new occupant
	if err := stale.Schedule(5 * time.Second); err == nil {
		t.Error("Schedule on stale handle succeeded")
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("new occupant was disturbed by a stale handle")
	}
	if e.Now() != 2*time.Second {
		t.Errorf("clock = %v, want 2s (stale Schedule must not move the occupant)", e.Now())
	}
}

func TestScheduleInPastRejected(t *testing.T) {
	e := New()
	e.After(time.Second, func() {
		if _, err := e.At(0, func() {}); err == nil {
			t.Error("scheduling in the past succeeded")
		}
	})
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := New()
	var at Time
	e.After(time.Second, func() {
		e.After(-5*time.Second, func() { at = e.Now() })
	})
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if at != time.Second {
		t.Errorf("negative-delay event fired at %v, want 1s", at)
	}
}

func TestRunUntilBound(t *testing.T) {
	e := New()
	var fired []Time
	for _, d := range []Time{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		e.After(d, func() { fired = append(fired, d) })
	}
	if _, err := e.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events by t=2s, want 2", len(fired))
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 {
		t.Errorf("fired %d events total, want 3", len(fired))
	}
}

func TestEventBudgetDetectsLivelock(t *testing.T) {
	e := New()
	e.MaxEvents = 100
	var spin func()
	spin = func() { e.After(0, spin) }
	e.After(0, spin)
	if _, err := e.RunAll(); err != ErrHorizon {
		t.Errorf("err = %v, want ErrHorizon", err)
	}
}

func TestStepProcessesOneEvent(t *testing.T) {
	e := New()
	n := 0
	e.After(time.Second, func() { n++ })
	e.After(2*time.Second, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("after first Step n=%d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("after second Step n=%d", n)
	}
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestReentrantRunRejected(t *testing.T) {
	e := New()
	var innerErr error
	e.After(time.Second, func() {
		_, innerErr = e.RunAll()
	})
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if innerErr == nil {
		t.Error("re-entrant Run succeeded")
	}
}

func TestScheduleMovesEvent(t *testing.T) {
	e := New()
	var fired []string
	ev := e.After(time.Second, func() { fired = append(fired, "moved") })
	e.After(2*time.Second, func() { fired = append(fired, "fixed") })
	// Push the first event past the second, then pull it back earlier.
	if err := ev.Schedule(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := ev.Schedule(1500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != "moved" || fired[1] != "fixed" {
		t.Errorf("order = %v, want [moved fixed]", fired)
	}
}

func TestScheduleLeavesNoDeadEvents(t *testing.T) {
	e := New()
	ev := e.After(time.Second, func() {})
	for i := 0; i < 100; i++ {
		if err := ev.Schedule(Time(i)*time.Millisecond + time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d after 100 reschedules, want 1 (no tombstones)", e.Pending())
	}
	if ev.At() != 99*time.Millisecond+time.Second {
		t.Errorf("At() = %v after reschedules", ev.At())
	}
}

// A fired or cancelled one-shot cannot be revived — its slot is recycled
// and its callback gone. Persistent timers are the revivable form.
func TestScheduleRejectsStaleOneShot(t *testing.T) {
	e := New()
	ev := e.After(time.Second, func() {})
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if err := ev.Schedule(2 * time.Second); err == nil {
		t.Error("Schedule on fired one-shot succeeded")
	}
	ev2 := e.After(time.Second, func() {})
	ev2.Cancel()
	if err := ev2.Schedule(2 * time.Second); err == nil {
		t.Error("Schedule on cancelled one-shot succeeded")
	}
}

func TestTimerReArmAndCancel(t *testing.T) {
	e := New()
	var fired []Time
	var tm Event
	tm = e.NewTimer(func(uint64) {
		fired = append(fired, e.Now())
		if len(fired) < 3 {
			if err := tm.Schedule(e.Now() + time.Second); err != nil {
				t.Error(err)
			}
		}
	}, 0)
	if tm.Pending() {
		t.Fatal("fresh timer reports pending")
	}
	if err := tm.Schedule(time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 || fired[2] != 3*time.Second {
		t.Fatalf("timer fired at %v, want [1s 2s 3s]", fired)
	}
	// Cancel parks the timer but keeps it revivable.
	if err := tm.Schedule(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	tm.Cancel()
	if tm.Pending() {
		t.Error("cancelled timer reports pending")
	}
	if err := tm.Schedule(11 * time.Second); err != nil {
		t.Fatalf("re-arm after cancel: %v", err)
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 4 || fired[3] != 11*time.Second {
		t.Fatalf("re-armed timer fired at %v", fired)
	}
}

func TestAtCallPassesArg(t *testing.T) {
	e := New()
	var got []uint64
	cb := func(arg uint64) { got = append(got, arg) }
	if _, err := e.AtCall(time.Second, cb, 7); err != nil {
		t.Fatal(err)
	}
	e.AfterCall(2*time.Second, cb, 9)
	if _, err := e.AtCall(0, cb, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 7 || got[2] != 9 {
		t.Errorf("args = %v, want [1 7 9]", got)
	}
}

// TestScheduleSameTimeFIFO: a rescheduled event lands at the back of
// the FIFO among events at the same instant, as if newly scheduled.
func TestScheduleSameTimeFIFO(t *testing.T) {
	e := New()
	var order []int
	ev := e.After(time.Second, func() { order = append(order, 1) })
	e.After(2*time.Second, func() { order = append(order, 2) })
	if err := ev.Schedule(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{2, 1}
	if len(order) != 2 || order[0] != want[0] || order[1] != want[1] {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestScheduleRejectsPastAndZero(t *testing.T) {
	e := New()
	ev := e.After(2*time.Second, func() {})
	e.After(time.Second, func() {
		if err := ev.Schedule(0); err == nil {
			t.Error("reschedule into the past succeeded")
		}
	})
	var zero Event
	if err := zero.Schedule(time.Second); err == nil {
		t.Error("schedule of zero Event succeeded")
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestStepHonorsEventBudget(t *testing.T) {
	e := New()
	e.MaxEvents = 2
	n := 0
	for i := 0; i < 5; i++ {
		e.After(Time(i)*time.Second, func() { n++ })
	}
	for e.Step() {
	}
	if n != 2 {
		t.Errorf("Step executed %d events with MaxEvents=2", n)
	}
	if e.Pending() != 3 {
		t.Errorf("pending = %d, want 3 (budget must not drop events)", e.Pending())
	}
}

func TestStepRejectsReentrancy(t *testing.T) {
	e := New()
	inner := true
	e.After(time.Second, func() {
		inner = e.Step()
	})
	e.After(2*time.Second, func() {})
	if !e.Step() {
		t.Fatal("outer Step returned false")
	}
	if inner {
		t.Error("re-entrant Step executed an event")
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
}

// TestClockMonotonic property: for any batch of scheduled delays, events
// fire in non-decreasing time order.
func TestClockMonotonic(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New()
		var times []Time
		for _, d := range delays {
			e.After(Time(d)*time.Millisecond, func() { times = append(times, e.Now()) })
		}
		if _, err := e.RunAll(); err != nil {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// waitCollected GCs until the finalizer-observed flag flips or the
// attempt budget runs out. The flag is atomic because finalizers run on
// their own goroutine.
func waitCollected(collected *atomic.Bool) bool {
	for i := 0; i < 20 && !collected.Load(); i++ {
		runtime.GC()
	}
	return collected.Load()
}

// Regression test for event-heap churn: a cancelled event must not keep
// its callback (and everything the closure captures) reachable through
// the engine's internal storage.
func TestCancelReleasesCallback(t *testing.T) {
	e := New()
	var collected atomic.Bool
	func() {
		payload := make([]byte, 1<<16)
		runtime.SetFinalizer(&payload[0], func(*byte) { collected.Store(true) })
		ev := e.After(time.Second, func() { _ = payload[0] })
		ev.Cancel()
	}()
	if !waitCollected(&collected) {
		t.Error("cancelled event still holds its callback closure")
	}
	_ = e.Pending()
}

// A fired event's callback must be released too, even when the heap's
// backing array still has capacity covering its old slot.
func TestFiredEventReleasesCallback(t *testing.T) {
	e := New()
	var collected atomic.Bool
	func() {
		payload := make([]byte, 1<<16)
		runtime.SetFinalizer(&payload[0], func(*byte) { collected.Store(true) })
		e.After(time.Second, func() { _ = payload[0] })
	}()
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !waitCollected(&collected) {
		t.Error("fired event still holds its callback closure")
	}
}

// Re-arming one persistent timer must not allocate: this is the engine
// half of the zero-alloc steady-state guarantee.
func TestTimerReArmZeroAlloc(t *testing.T) {
	e := New()
	tick := func(uint64) {}
	tm := e.NewTimer(tick, 0)
	if err := tm.Schedule(time.Second); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(1000, func() {
		if err := tm.Schedule(tm.At() + time.Millisecond); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("Schedule allocates %v times per re-arm, want 0", avg)
	}
}

func TestReservePreservesQueue(t *testing.T) {
	e := New()
	var order []int
	e.After(2*time.Second, func() { order = append(order, 2) })
	e.After(1*time.Second, func() { order = append(order, 1) })
	e.Reserve(1024)
	e.After(3*time.Second, func() { order = append(order, 3) })
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
}
