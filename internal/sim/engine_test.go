package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.After(3*time.Second, func() { order = append(order, 3) })
	e.After(1*time.Second, func() { order = append(order, 1) })
	e.After(2*time.Second, func() { order = append(order, 2) })
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Errorf("clock = %v, want 3s", e.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Second, func() { order = append(order, i) })
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of FIFO order: %v", order)
		}
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	e := New()
	fired := false
	ev := e.After(time.Second, func() { fired = true })
	ev.Cancel()
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
	// Double-cancel and nil-cancel are no-ops.
	ev.Cancel()
	var nilEv *Event
	nilEv.Cancel()
}

func TestScheduleInPastRejected(t *testing.T) {
	e := New()
	e.After(time.Second, func() {
		if _, err := e.At(0, func() {}); err == nil {
			t.Error("scheduling in the past succeeded")
		}
	})
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := New()
	var at Time
	e.After(time.Second, func() {
		e.After(-5*time.Second, func() { at = e.Now() })
	})
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if at != time.Second {
		t.Errorf("negative-delay event fired at %v, want 1s", at)
	}
}

func TestRunUntilBound(t *testing.T) {
	e := New()
	var fired []Time
	for _, d := range []Time{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		e.After(d, func() { fired = append(fired, d) })
	}
	if _, err := e.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events by t=2s, want 2", len(fired))
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 {
		t.Errorf("fired %d events total, want 3", len(fired))
	}
}

func TestEventBudgetDetectsLivelock(t *testing.T) {
	e := New()
	e.MaxEvents = 100
	var spin func()
	spin = func() { e.After(0, spin) }
	e.After(0, spin)
	if _, err := e.RunAll(); err != ErrHorizon {
		t.Errorf("err = %v, want ErrHorizon", err)
	}
}

func TestStepProcessesOneEvent(t *testing.T) {
	e := New()
	n := 0
	e.After(time.Second, func() { n++ })
	e.After(2*time.Second, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("after first Step n=%d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("after second Step n=%d", n)
	}
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestReentrantRunRejected(t *testing.T) {
	e := New()
	var innerErr error
	e.After(time.Second, func() {
		_, innerErr = e.RunAll()
	})
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if innerErr == nil {
		t.Error("re-entrant Run succeeded")
	}
}

// TestClockMonotonic property: for any batch of scheduled delays, events
// fire in non-decreasing time order.
func TestClockMonotonic(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New()
		var times []Time
		for _, d := range delays {
			e.After(Time(d)*time.Millisecond, func() { times = append(times, e.Now()) })
		}
		if _, err := e.RunAll(); err != nil {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
