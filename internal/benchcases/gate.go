package benchcases

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
)

// Diff compares one benchmark between a committed baseline and the
// current run. Ratio is current/baseline ns/op and AllocRatio is
// current/baseline allocs/op; Regressed and AllocRegressed mark ratios
// beyond the gate's tolerances.
type Diff struct {
	Name           string  `json:"name"`
	BaselineNs     float64 `json:"baselineNsPerOp"`
	CurrentNs      float64 `json:"currentNsPerOp"`
	Ratio          float64 `json:"ratio"`
	Regressed      bool    `json:"regressed"`
	BaselineAllocs int64   `json:"baselineAllocsPerOp"`
	CurrentAllocs  int64   `json:"currentAllocsPerOp"`
	AllocRatio     float64 `json:"allocRatio"`
	AllocRegressed bool    `json:"allocRegressed"`
}

// ErrRegression is wrapped by Gate failures so callers can distinguish a
// performance regression from an IO or schema problem.
var ErrRegression = errors.New("benchcases: performance regression")

// Gate compares the named benchmarks between baseline and current and
// returns one Diff per name. It fails when a name is missing from either
// report, when current ns/op exceeds baseline by more than maxRegress
// (0.15 = +15%), or when current allocs/op exceeds baseline by more than
// maxAllocRegress (0.10 = +10%). Allocation counts are near-deterministic,
// so their tolerance is tighter than the wall-time one; a baseline entry
// with zero allocs/op (predating alloc tracking, or genuinely
// allocation-free) skips the allocs check for that name rather than
// dividing by zero. Speedups and alloc reductions never fail the gate:
// CI baselines are refreshed by committing a new BENCH_netsim.json, not
// enforced both ways (hardware jitter would make a two-sided gate flaky).
func Gate(baseline, current Report, names []string, maxRegress, maxAllocRegress float64) ([]Diff, error) {
	diffs := make([]Diff, 0, len(names))
	var failures []string
	for _, name := range names {
		b, ok := baseline.Lookup(name)
		if !ok {
			return diffs, fmt.Errorf("benchcases: baseline has no benchmark %q", name)
		}
		c, ok := current.Lookup(name)
		if !ok {
			return diffs, fmt.Errorf("benchcases: current run has no benchmark %q", name)
		}
		if b.NsPerOp <= 0 {
			return diffs, fmt.Errorf("benchcases: baseline %q has non-positive ns/op %v", name, b.NsPerOp)
		}
		d := Diff{
			Name:           name,
			BaselineNs:     b.NsPerOp,
			CurrentNs:      c.NsPerOp,
			Ratio:          c.NsPerOp / b.NsPerOp,
			BaselineAllocs: b.AllocsPerOp,
			CurrentAllocs:  c.AllocsPerOp,
		}
		if d.Ratio > 1+maxRegress {
			d.Regressed = true
			failures = append(failures, fmt.Sprintf("%s %.2fx (%.0f -> %.0f ns/op)", name, d.Ratio, d.BaselineNs, d.CurrentNs))
		}
		if b.AllocsPerOp > 0 {
			d.AllocRatio = float64(c.AllocsPerOp) / float64(b.AllocsPerOp)
			if d.AllocRatio > 1+maxAllocRegress {
				d.AllocRegressed = true
				failures = append(failures, fmt.Sprintf("%s %.2fx (%d -> %d allocs/op)", name, d.AllocRatio, d.BaselineAllocs, d.CurrentAllocs))
			}
		}
		diffs = append(diffs, d)
	}
	if len(failures) > 0 {
		return diffs, fmt.Errorf("%w (>+%.0f%% ns/op or >+%.0f%% allocs/op): %s",
			ErrRegression, maxRegress*100, maxAllocRegress*100, strings.Join(failures, "; "))
	}
	return diffs, nil
}

// WriteDiffs dumps gate results as indented JSON to path (the CI
// artifact uploaded on regression).
func WriteDiffs(path string, diffs []Diff) error {
	data, err := json.MarshalIndent(diffs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
