package benchcases

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
)

// Entry is one benchmark's machine-readable result.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
}

// Report is the BENCH_netsim.json schema: a full run of Cases plus the
// environment the numbers were measured in.
type Report struct {
	GoVersion  string  `json:"goVersion"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Benchmarks []Entry `json:"benchmarks"`
}

// Lookup returns the named benchmark's entry.
func (r Report) Lookup(name string) (Entry, bool) {
	for _, e := range r.Benchmarks {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// RunReport executes every shared benchmark case via testing.Benchmark
// and collects ns/op, B/op and allocs/op. Progress notes go to progress
// when non-nil.
func RunReport(progress io.Writer) (Report, error) {
	report := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, c := range Cases() {
		if progress != nil {
			fmt.Fprintf(progress, "bench %s...\n", c.Name)
		}
		r := testing.Benchmark(c.Fn)
		if r.N == 0 {
			return report, fmt.Errorf("benchmark %s failed", c.Name)
		}
		report.Benchmarks = append(report.Benchmarks, Entry{
			Name:        c.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		if progress != nil {
			fmt.Fprintf(progress, "bench %s: %s %s\n", c.Name, r.String(), r.MemString())
		}
	}
	return report, nil
}

// WriteFile marshals the report as indented JSON to path.
func (r Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadReport reads a Report previously written by WriteFile (or the
// committed BENCH_netsim.json baseline).
func LoadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("parse %s: %w", path, err)
	}
	return r, nil
}
