package benchcases

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func report(entries ...Entry) Report {
	return Report{GoVersion: "go1.x", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 4, Benchmarks: entries}
}

func TestGateVerdicts(t *testing.T) {
	base := report(
		Entry{Name: "A", NsPerOp: 1000, AllocsPerOp: 100},
		Entry{Name: "B", NsPerOp: 2000, AllocsPerOp: 50},
		// Y predates alloc tracking: ns/op gated, allocs check skipped.
		Entry{Name: "Y", NsPerOp: 10, AllocsPerOp: 0},
	)
	cases := []struct {
		name      string
		current   Report
		gated     []string
		wantErr   error  // nil = pass
		wantMsg   string // substring of a non-regression error
		regressed int    // Diffs with Regressed set
	}{
		{
			name:    "within tolerance",
			current: report(Entry{Name: "A", NsPerOp: 1100, AllocsPerOp: 105}, Entry{Name: "B", NsPerOp: 2000, AllocsPerOp: 50}),
			gated:   []string{"A", "B"},
		},
		{
			name:    "speedup never fails",
			current: report(Entry{Name: "A", NsPerOp: 100, AllocsPerOp: 1}, Entry{Name: "B", NsPerOp: 50}),
			gated:   []string{"A", "B"},
		},
		{
			name:      "regression beyond tolerance",
			current:   report(Entry{Name: "A", NsPerOp: 1300, AllocsPerOp: 100}, Entry{Name: "B", NsPerOp: 2000, AllocsPerOp: 50}),
			gated:     []string{"A", "B"},
			wantErr:   ErrRegression,
			regressed: 1,
		},
		{
			name:      "alloc regression beyond tolerance",
			current:   report(Entry{Name: "A", NsPerOp: 1000, AllocsPerOp: 120}, Entry{Name: "B", NsPerOp: 2000, AllocsPerOp: 50}),
			gated:     []string{"A", "B"},
			wantErr:   ErrRegression,
			wantMsg:   "allocs/op",
			regressed: 0, // ns/op fine; only AllocRegressed is set
		},
		{
			name:    "alloc check skipped for zero-alloc baseline",
			current: report(Entry{Name: "A", NsPerOp: 1000, AllocsPerOp: 100}, Entry{Name: "B", NsPerOp: 2000, AllocsPerOp: 50}, Entry{Name: "Y", NsPerOp: 10, AllocsPerOp: 7}),
			gated:   []string{"A", "B", "Y"},
		},
		{
			name:    "name missing from current",
			current: report(Entry{Name: "A", NsPerOp: 1000}),
			gated:   []string{"A", "B"},
			wantMsg: "no benchmark",
		},
		{
			name:    "name missing from baseline",
			current: report(Entry{Name: "C", NsPerOp: 5}),
			gated:   []string{"C"},
			wantMsg: "baseline has no benchmark",
		},
		{
			name:    "corrupt baseline entry",
			current: report(Entry{Name: "Z", NsPerOp: 5}),
			gated:   []string{"Z"},
			wantMsg: "non-positive",
		},
	}
	baseWithZ := base
	baseWithZ.Benchmarks = append(baseWithZ.Benchmarks, Entry{Name: "Z", NsPerOp: 0})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := base
			if tc.name == "corrupt baseline entry" {
				b = baseWithZ
			}
			diffs, err := Gate(b, tc.current, tc.gated, 0.15, 0.10)
			if tc.wantErr == nil && tc.wantMsg == "" {
				if err != nil {
					t.Fatalf("gate failed: %v", err)
				}
				if len(diffs) != len(tc.gated) {
					t.Fatalf("got %d diffs, want %d", len(diffs), len(tc.gated))
				}
				return
			}
			if err == nil {
				t.Fatal("gate passed, want failure")
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("error %v does not match %v", err, tc.wantErr)
			}
			if tc.wantErr == nil && errors.Is(err, ErrRegression) {
				t.Fatalf("schema error %v misclassified as regression", err)
			}
			if tc.wantMsg != "" && !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("error %q does not mention %q", err, tc.wantMsg)
			}
			got := 0
			for _, d := range diffs {
				if d.Regressed {
					got++
				}
			}
			if got != tc.regressed {
				t.Fatalf("%d diffs regressed, want %d", got, tc.regressed)
			}
		})
	}
}

func TestGateDiffContents(t *testing.T) {
	base := report(Entry{Name: "A", NsPerOp: 1000, AllocsPerOp: 200})
	cur := report(Entry{Name: "A", NsPerOp: 1500, AllocsPerOp: 300})
	diffs, err := Gate(base, cur, []string{"A"}, 0.15, 0.10)
	if !errors.Is(err, ErrRegression) {
		t.Fatalf("err = %v, want ErrRegression", err)
	}
	if len(diffs) != 1 {
		t.Fatalf("got %d diffs, want 1", len(diffs))
	}
	d := diffs[0]
	if d.Name != "A" || d.BaselineNs != 1000 || d.CurrentNs != 1500 || d.Ratio != 1.5 || !d.Regressed {
		t.Fatalf("diff = %+v", d)
	}
	if d.BaselineAllocs != 200 || d.CurrentAllocs != 300 || d.AllocRatio != 1.5 || !d.AllocRegressed {
		t.Fatalf("alloc side of diff = %+v", d)
	}
}

func TestReportRoundTripAndDiffArtifact(t *testing.T) {
	dir := t.TempDir()
	r := report(Entry{Name: "A", Iterations: 7, NsPerOp: 123.5, BytesPerOp: 64, AllocsPerOp: 2})
	path := filepath.Join(dir, "bench.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.GoVersion != r.GoVersion || len(got.Benchmarks) != 1 || got.Benchmarks[0] != r.Benchmarks[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	diffPath := filepath.Join(dir, "diff.json")
	if err := WriteDiffs(diffPath, []Diff{{Name: "A", BaselineNs: 1, CurrentNs: 2, Ratio: 2, Regressed: true}}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(diffPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name": "A"`, `"ratio": 2`, `"regressed": true`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("diff artifact missing %q", want)
		}
	}
	if _, err := LoadReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("loading a missing report did not error")
	}
}

func TestGatedBenchmarkNamesExist(t *testing.T) {
	names := map[string]bool{}
	for _, c := range Cases() {
		names[c.Name] = true
	}
	for _, want := range []string{"NetsimFanIn", "ReplayFatTree", "ReplayFatTreeTelemetry", "CaptureTerasort"} {
		if !names[want] {
			t.Errorf("shared benchmark %q missing from Cases()", want)
		}
	}
}
