// Package benchcases holds the benchmark bodies shared by the root bench
// suite (go test -bench) and cmd/keddah-bench's -benchjson mode. Keeping
// one copy of each body means the committed BENCH_netsim.json numbers and
// the `go test -bench` numbers measure the identical workload.
package benchcases

import (
	"testing"

	"keddah/internal/core"
	"keddah/internal/flows"
	"keddah/internal/netsim"
	"keddah/internal/sim"
	"keddah/internal/telemetry"
	"keddah/internal/workload"
)

// Case is a named benchmark body runnable via testing.Benchmark.
type Case struct {
	Name string
	Fn   func(*testing.B)
}

// Cases lists the benchmark bodies exported for machine-readable runs:
// the netsim hot path and the end-to-end replay/capture pipelines built
// on it.
func Cases() []Case {
	return []Case{
		{"NetsimFanIn", NetsimFanIn},
		{"NetsimFanInTCP", NetsimFanInTCP},
		{"NetsimFanInSharded", NetsimFanInSharded},
		{"ReplayFatTree", ReplayFatTree},
		{"ReplayFatTreeTelemetry", ReplayFatTreeTelemetry},
		{"CaptureTerasort", CaptureTerasort},
		{"CaptureTerasortTCP", CaptureTerasortTCP},
		{"CaptureMultiPodSharded", CaptureMultiPodSharded},
		{"FitTerasort", FitTerasort},
		{"ClassifyDataset", ClassifyDataset},
	}
}

// fitCorpus captures the small multi-run terasort corpus the modelling
// benchmarks fit from (two runs at different input sizes so the
// duration line and count/unit ratios see variation).
func fitCorpus(b *testing.B) *core.TraceSet {
	b.Helper()
	ts, _, err := core.Capture(core.ClusterSpec{Workers: 16, Seed: 6},
		[]workload.RunSpec{
			{Profile: "terasort", InputBytes: 512 << 20, JobName: "ts-a", InputPath: "/data/a"},
			{Profile: "terasort", InputBytes: 640 << 20, JobName: "ts-b", InputPath: "/data/b"},
		})
	if err != nil {
		b.Fatal(err)
	}
	return ts
}

// FitTerasort measures the modelling stage (toolchain stage 2): fitting
// the per-phase size / inter-arrival / offset laws of a two-run terasort
// corpus, including AIC model selection and the goodness-of-fit report.
// The capture runs outside the timer.
func FitTerasort(b *testing.B) {
	ts := fitCorpus(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		model, err := core.Fit(ts, core.FitOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if model.Jobs["terasort"] == nil {
			b.Fatal("terasort model missing")
		}
	}
}

// ClassifyDataset measures the flow-classification and per-phase slicing
// path the modelling stage leans on: building a classified dataset from
// raw records, slicing every phase, and extracting the per-phase size,
// duration and inter-arrival series.
func ClassifyDataset(b *testing.B) {
	ts := fitCorpus(b)
	records := ts.Runs[0].Records
	phases := append([]flows.Phase{}, flows.AllPhases...)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ds := flows.NewDataset(records)
		total := 0
		for _, ph := range phases {
			sub := ds.ByPhase(ph)
			total += len(sub.Sizes("")) + len(sub.Durations("")) + len(sub.InterArrivals(""))
		}
		if total == 0 {
			b.Fatal("classification produced no per-phase series")
		}
	}
}

// NetsimFanIn measures flow-level simulation throughput: 512 flows
// converging on 16 hosts with max-min reallocation at every arrival and
// departure.
func NetsimFanIn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		topo, err := netsim.Star(17, netsim.Gbps)
		if err != nil {
			b.Fatal(err)
		}
		eng := sim.New()
		net := netsim.NewNetwork(eng, topo, netsim.Config{})
		h := topo.Hosts()
		for f := 0; f < 512; f++ {
			src, dst := h[f%16], h[(f+1)%16+1]
			delay := sim.Time(f) * 1_000_000
			fl := f
			eng.After(delay, func() {
				if _, err := net.StartFlow(netsim.FlowSpec{
					Src: src, Dst: dst, SrcPort: fl, DstPort: 80, SizeBytes: 10 << 20,
				}); err != nil {
					b.Error(err)
				}
			})
		}
		if _, err := eng.RunAll(); err != nil {
			b.Fatal(err)
		}
		if net.Completed() != 512 {
			b.Fatalf("completed %d flows", net.Completed())
		}
	}
}

// NetsimFanInTCP is NetsimFanIn under the flow-level TCP transport: the
// same 512-flow fan-in now pays per-flow window bookkeeping, millisecond
// tick settlement and loss recovery. Comparing its ns/op against
// NetsimFanIn in BENCH_netsim.json bounds the TCP-mode overhead.
func NetsimFanInTCP(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		topo, err := netsim.Star(17, netsim.Gbps)
		if err != nil {
			b.Fatal(err)
		}
		eng := sim.New()
		net := netsim.NewNetwork(eng, topo, netsim.Config{Transport: "tcp"})
		h := topo.Hosts()
		for f := 0; f < 512; f++ {
			src, dst := h[f%16], h[(f+1)%16+1]
			delay := sim.Time(f) * 1_000_000
			fl := f
			eng.After(delay, func() {
				if _, err := net.StartFlow(netsim.FlowSpec{
					Src: src, Dst: dst, SrcPort: fl, DstPort: 80, SizeBytes: 10 << 20,
				}); err != nil {
					b.Error(err)
				}
			})
		}
		if _, err := eng.RunAll(); err != nil {
			b.Fatal(err)
		}
		if net.Completed() != 512 {
			b.Fatalf("completed %d flows", net.Completed())
		}
	}
}

// NetsimFanInSharded is the NetsimFanIn workload split across a 4-pod
// sharded scheduler: each pod owns its own Star(17) topology, network and
// 128 of the 512 flows, and the windowed drain replaces RunAll. Comparing
// its ns/op against NetsimFanIn in BENCH_netsim.json bounds the window
// protocol's overhead (barriers, boundary peeks, worker handoff) on the
// netsim hot path.
func NetsimFanInSharded(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		const pods = 4
		sched, err := sim.NewSharded(pods, pods, 1_000_000)
		if err != nil {
			b.Fatal(err)
		}
		nets := make([]*netsim.Network, pods)
		for p := 0; p < pods; p++ {
			topo, err := netsim.Star(17, netsim.Gbps)
			if err != nil {
				b.Fatal(err)
			}
			eng := sched.PodEngine(p)
			net := netsim.NewNetwork(eng, topo, netsim.Config{})
			nets[p] = net
			h := topo.Hosts()
			for f := 0; f < 128; f++ {
				src, dst := h[f%16], h[(f+1)%16+1]
				delay := sim.Time(f) * 1_000_000
				fl := f
				eng.After(delay, func() {
					if _, err := net.StartFlow(netsim.FlowSpec{
						Src: src, Dst: dst, SrcPort: fl, DstPort: 80, SizeBytes: 10 << 20,
					}); err != nil {
						b.Error(err)
					}
				})
			}
		}
		if _, err := sched.Drain(); err != nil {
			b.Fatal(err)
		}
		var total uint64
		for _, net := range nets {
			total += net.Completed()
		}
		if total != 512 {
			b.Fatalf("completed %d flows", total)
		}
	}
}

// ReplayFatTree measures schedule replay on a k=4 fat-tree (toolchain
// stage 4). The one-off capture+fit+generate setup runs outside the timer.
func ReplayFatTree(b *testing.B) {
	ts, _, err := core.Capture(core.ClusterSpec{Workers: 16, Seed: 6},
		[]workload.RunSpec{{Profile: "terasort", InputBytes: 512 << 20}})
	if err != nil {
		b.Fatal(err)
	}
	model, err := core.Fit(ts, core.FitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	sched, err := model.Generate(core.GenSpec{Workload: "terasort", Workers: 16, Jobs: 2, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		recs, _, err := core.Replay(sched, core.ClusterSpec{Topology: "fattree", FatTreeK: 4, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		if len(recs) == 0 {
			b.Fatal("no flows replayed")
		}
	}
}

// ReplayFatTreeTelemetry is ReplayFatTree with a live telemetry sink
// attached: every counter, gauge and span hook fires. Comparing its
// ns/op against ReplayFatTree in BENCH_netsim.json bounds the
// instrumentation overhead (budget: ≤5%).
func ReplayFatTreeTelemetry(b *testing.B) {
	ts, _, err := core.Capture(core.ClusterSpec{Workers: 16, Seed: 6},
		[]workload.RunSpec{{Profile: "terasort", InputBytes: 512 << 20}})
	if err != nil {
		b.Fatal(err)
	}
	model, err := core.Fit(ts, core.FitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	sched, err := model.Generate(core.GenSpec{Workload: "terasort", Workers: 16, Jobs: 2, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	tel := telemetry.New()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		recs, _, err := core.ReplayWith(sched, core.ClusterSpec{Topology: "fattree", FatTreeK: 4, Seed: 3}, tel)
		if err != nil {
			b.Fatal(err)
		}
		if len(recs) == 0 {
			b.Fatal("no flows replayed")
		}
	}
}

// CaptureTerasort measures the full cluster-simulation capture path (the
// toolchain's stage 1) for a 256 MiB terasort.
func CaptureTerasort(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts, _, err := core.Capture(core.ClusterSpec{Workers: 16, Seed: int64(i + 1)},
			[]workload.RunSpec{{Profile: "terasort", InputBytes: 256 << 20}})
		if err != nil {
			b.Fatal(err)
		}
		if len(ts.Runs) != 1 {
			b.Fatal("lost the run")
		}
	}
}

// CaptureMultiPodSharded measures the multi-pod capture path end to end:
// a 4-pod × 16-worker federation on the auto shard layout, one terasort
// per pod plus the ring of cross-pod distcp copies. This is the gated
// guard on the sharded scheduler's capture-path overhead (windows,
// barriers, inter-pod fabric, merge).
func CaptureMultiPodSharded(b *testing.B) {
	b.ReportAllocs()
	shards := -1
	for i := 0; i < b.N; i++ {
		runs := make([]workload.RunSpec, 4)
		for p := range runs {
			runs[p] = workload.RunSpec{Profile: "terasort", InputBytes: 128 << 20}
		}
		ts, _, err := core.CaptureWith(core.ClusterSpec{
			Workers: 16, Pods: 4, CrossPod: "ring", Seed: int64(i + 1),
		}, runs, core.CaptureOpts{Shards: &shards})
		if err != nil {
			b.Fatal(err)
		}
		if len(ts.Runs) != 4 {
			b.Fatal("lost a run")
		}
	}
}

// CaptureTerasortTCP is CaptureTerasort with the TCP transport selected:
// the full cluster-simulation capture with every shuffle and HDFS flow
// paced by the window state machine instead of the fluid allocator.
func CaptureTerasortTCP(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts, _, err := core.Capture(core.ClusterSpec{Workers: 16, Seed: int64(i + 1), Transport: "tcp"},
			[]workload.RunSpec{{Profile: "terasort", InputBytes: 256 << 20}})
		if err != nil {
			b.Fatal(err)
		}
		if len(ts.Runs) != 1 {
			b.Fatal("lost the run")
		}
	}
}
