package netsim

import (
	"errors"
	"fmt"
	"math"

	"keddah/internal/sim"
	"keddah/internal/telemetry"
)

// FlowSpec describes a transfer to start on the network.
type FlowSpec struct {
	Src, Dst NodeID
	// SrcPort and DstPort are TCP-style port numbers. Keddah classifies
	// flows by the well-known Hadoop destination ports.
	SrcPort, DstPort int
	// SizeBytes is the number of application bytes to move.
	SizeBytes int64
	// Label is a free-form ground-truth annotation ("job7/shuffle")
	// carried through to captures for classifier validation.
	Label string
	// OnComplete, if non-nil, runs when the last byte is delivered.
	OnComplete func(*Flow)
	// OnAbort, if non-nil, runs when the flow is torn down before
	// completion (its path died and no reroute existed, or its endpoint
	// process was killed). Exactly one of OnComplete/OnAbort fires.
	OnAbort func(*Flow)
}

// RateSegment records the allocated rate of a flow from Start until the
// next segment (or flow end). Captures use segments to synthesise packets
// with realistic timestamps.
type RateSegment struct {
	Start   sim.Time
	RateBps float64
}

// Flow is the exported handle to an in-flight or finished transfer.
//
// With the default struct-of-arrays core the handle is thin: while the
// flow is in flight it reads through (slot, gen) into the core's parallel
// slices, and at completion the observable state (end time, transferred
// bytes, rate segments) is snapshotted into the handle before the slot is
// recycled — so captures retaining handles for lazy packet synthesis keep
// working after the storage is reused. With the pointer reference core it
// wraps a *ptrFlow directly.
type Flow struct {
	id    uint64
	spec  FlowSpec
	start sim.Time

	// Exactly one live reference is set: soa+slot+gen, or pf.
	soa  *soaCore
	slot int32
	gen  uint32
	pf   *ptrFlow

	// Snapshot of the final observable state (SoA core only), taken the
	// instant the flow finishes, before its slot returns to the free list.
	snapped     bool
	aborted     bool
	end         sim.Time
	transferred int64
	segments    []RateSegment
}

// ID returns the network-unique flow identifier.
func (f *Flow) ID() uint64 { return f.id }

// Spec returns the originating specification.
func (f *Flow) Spec() FlowSpec { return f.spec }

// Start returns when the flow was opened.
func (f *Flow) Start() sim.Time { return f.start }

// Done reports whether the flow has finished (completed or aborted).
func (f *Flow) Done() bool {
	if f.pf != nil {
		return f.pf.done
	}
	return f.snapped
}

// Aborted reports whether the flow was torn down before delivering all
// its bytes (path failure with no reroute, or endpoint death).
func (f *Flow) Aborted() bool {
	if f.pf != nil {
		return f.pf.aborted
	}
	return f.aborted
}

// End returns when the last byte arrived (valid once done).
func (f *Flow) End() sim.Time {
	if f.pf != nil {
		return f.pf.end
	}
	return f.end
}

// transferredOf converts a byte residue into delivered bytes.
func transferredOf(size int64, remaining float64) int64 {
	rem := int64(remaining + 0.5)
	if rem < 0 {
		rem = 0
	}
	if rem > size {
		rem = size
	}
	return size - rem
}

// Transferred returns the bytes actually delivered so far. For completed
// flows this equals SizeBytes; for aborted flows it is the partial
// progress captures should account for.
func (f *Flow) Transferred() int64 {
	if f.pf != nil {
		return transferredOf(f.spec.SizeBytes, f.pf.remaining)
	}
	if f.snapped {
		return f.transferred
	}
	if f.soa != nil && f.soa.gen[f.slot] == f.gen {
		return transferredOf(f.spec.SizeBytes, f.soa.remaining[f.slot])
	}
	return 0
}

// Segments returns the rate history (read-only view).
func (f *Flow) Segments() []RateSegment {
	if f.pf != nil {
		return f.pf.segments
	}
	if f.snapped {
		return f.segments
	}
	if f.soa != nil && f.soa.gen[f.slot] == f.gen {
		return f.soa.copySegments(f.slot)
	}
	return nil
}

// FlowID returns the flow's compact generation-counted id (SoA core
// only; the zero FlowID for pointer-core flows).
func (f *Flow) FlowID() FlowID {
	if f.soa != nil {
		return FlowID{slot: f.slot, gen: f.gen}
	}
	return FlowID{}
}

// FlowID is a compact, generation-counted reference to a flow slot in the
// struct-of-arrays core. It stays cheap to store across link-state changes
// and reroutes (faults hold ids, not pointers), and it can never alias a
// recycled slot's new occupant: once the flow finishes and the slot is
// reused, the generation no longer matches and operations return
// ErrStaleFlow instead of touching the new flow. The zero value is invalid.
type FlowID struct {
	slot int32
	gen  uint32
}

// ErrStaleFlow is returned for operations on a FlowID whose flow already
// finished (its slot may have been recycled for a new flow).
var ErrStaleFlow = errors.New("netsim: stale flow id")

// Tap observes flow lifecycle events, e.g. a packet capture.
type Tap interface {
	FlowStarted(f *Flow)
	FlowCompleted(f *Flow)
}

// Allocator selects the bandwidth-sharing discipline.
type Allocator int

// Supported allocators. AllocMaxMin (the default) is progressive-filling
// max-min fairness, the standard flow-level model of TCP sharing.
// AllocEqualSplit is the naive alternative — each flow independently gets
// min over its links of capacity/flow-count, ignoring bandwidth freed by
// flows bottlenecked elsewhere. It exists as an ablation: Keddah's replay
// fidelity depends on the fair-sharing model (experiment A2).
const (
	AllocMaxMin Allocator = iota
	AllocEqualSplit
)

// Config tunes network-wide constants.
type Config struct {
	// LoopbackBps is the rate for src==dst transfers (local disk/memory
	// path). Default 20 Gbps.
	LoopbackBps float64
	// Allocator selects the bandwidth sharing model (default AllocMaxMin).
	Allocator Allocator
	// ModelSlowStart adds a TCP slow-start penalty to each flow's
	// activation: ceil(log2(1 + size/10·MSS)) round trips at the path
	// RTT. Flow-level models otherwise let short flows finish in one
	// latency, which overstates control-flow and small-fetch speed.
	// Off by default; enable for latency-sensitive studies.
	ModelSlowStart bool
	// UseReferenceAllocator switches max-min fairness back to the
	// original from-scratch progressive filling that rescans every
	// active flow per bottleneck round. It exists to property-test the
	// incremental allocator (both must produce identical rate vectors)
	// and as an escape hatch; it is O(rounds × flows × links) where the
	// default incremental path is O(rounds × links + frozen × path).
	UseReferenceAllocator bool
	// UsePointerFlows selects the pointer-per-flow reference core
	// instead of the struct-of-arrays core. The two are trajectory-
	// identical (same completion times, same captures, same telemetry);
	// the pointer core exists as the lockstep oracle for the SoA
	// refactor and as an escape hatch.
	UsePointerFlows bool
	// ExpectedFlows pre-sizes flow storage (slot arrays, path arena,
	// per-link indexes, allocator scratch) for the given peak number of
	// concurrent flows, so a capture whose concurrency is predicted from
	// its workload profile allocates nothing on the steady-state path.
	ExpectedFlows int
	// Transport selects the rate model: "" or "fluid" for instantaneous
	// max-min sharing (the default), "tcp" for the per-flow TCP state
	// machine (slow start, AIMD, fast retransmit, RTO) over droptail
	// queues. Validate user input with ParseTransport before building a
	// Network — NewNetwork panics on names ParseTransport rejects.
	Transport string
	// TCP tunes the TCP transport; ignored unless Transport is "tcp".
	// The zero value selects the documented defaults.
	TCP TCPConfig
}

// Network runs flows over a Topology on a shared simulation engine. It is
// a thin dispatch layer over exactly one of two cores: the default
// struct-of-arrays core (soa) or the pointer-per-flow reference core (ptr).
type Network struct {
	eng  *sim.Engine
	topo *Topology
	cfg  Config
	taps []Tap

	soa *soaCore
	ptr *ptrCore

	// Stats counters (maintained by whichever core is active).
	completed    uint64
	abortedCount uint64
	totalBytes   float64

	metrics telemetry.NetMetrics
}

// SetMetrics attaches network instrumentation. The zero value detaches
// it (every hook degrades to a nil check).
func (n *Network) SetMetrics(m telemetry.NetMetrics) { n.metrics = m }

// NewNetwork creates a Network bound to the engine and topology.
func NewNetwork(eng *sim.Engine, topo *Topology, cfg Config) *Network {
	if cfg.LoopbackBps == 0 {
		cfg.LoopbackBps = 20 * Gbps
	}
	tr, err := ParseTransport(cfg.Transport)
	if err != nil {
		panic(err)
	}
	if tr == TransportTCP && cfg.UsePointerFlows {
		panic("netsim: transport \"tcp\" requires the struct-of-arrays core")
	}
	n := &Network{eng: eng, topo: topo, cfg: cfg}
	if cfg.UsePointerFlows {
		n.ptr = newPtrCore(n)
	} else {
		n.soa = newSoaCore(n)
		if cfg.ExpectedFlows > 0 {
			n.Reserve(cfg.ExpectedFlows)
		}
	}
	return n
}

// Reserve pre-sizes flow storage for at least peakFlows concurrent flows
// (and the engine's event slab to match: one completion event per flow
// plus activation and coalescing headroom). It is cheap to call again
// with a larger estimate and a no-op with a smaller one. The pointer core
// ignores it — that core allocates per flow by design.
func (n *Network) Reserve(peakFlows int) {
	if peakFlows <= 0 {
		return
	}
	if n.soa != nil {
		n.soa.reserve(peakFlows)
	}
	// TCP mode holds one more persistent timer per flow (the RTO timer)
	// on top of completion + activation/coalescing headroom.
	mult := 2
	if n.soa != nil && n.soa.tcp != nil {
		mult = 3
	}
	n.eng.Reserve(mult*peakFlows + 16)
}

// Transport returns the rate model the network runs flows under.
func (n *Network) Transport() Transport {
	if n.soa != nil && n.soa.tcp != nil {
		return TransportTCP
	}
	return TransportFluid
}

// TCPStats returns the cumulative TCP event counts (fast retransmits and
// retransmission timeouts fired). Both are zero in fluid mode. Available
// without a telemetry sink so experiments and tests can read them directly.
func (n *Network) TCPStats() (fastRetransmits, timeouts uint64) {
	if n.soa != nil && n.soa.tcp != nil {
		return n.soa.tcp.fastRtx, n.soa.tcp.rtoFired
	}
	return 0, 0
}

// Topology returns the network's topology.
func (n *Network) Topology() *Topology { return n.topo }

// Engine returns the simulation engine the network runs on.
func (n *Network) Engine() *sim.Engine { return n.eng }

// AddTap registers a lifecycle observer.
func (n *Network) AddTap(t Tap) { n.taps = append(n.taps, t) }

// Completed returns the number of flows finished so far.
func (n *Network) Completed() uint64 { return n.completed }

// TotalBytes returns the total bytes delivered so far.
func (n *Network) TotalBytes() float64 { return n.totalBytes }

// flowHash mixes the 5-tuple for deterministic ECMP path selection.
func flowHash(s FlowSpec, id uint64) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(s.Src))
	mix(uint64(s.Dst))
	mix(uint64(s.SrcPort))
	mix(uint64(s.DstPort))
	mix(id)
	return h
}

// noRouteTimeout is how long a flow opened towards an unreachable
// destination (network partition) lingers before aborting — the TCP
// connect-timeout stand-in. Retrying layers observe the abort and apply
// their own backoff on top.
const noRouteTimeout = sim.Time(1_000_000_000)

// checkSpec validates flow endpoints and size for both start entry points.
func (n *Network) checkSpec(spec FlowSpec) error {
	if !n.topo.IsHost(spec.Src) || !n.topo.IsHost(spec.Dst) {
		return fmt.Errorf("netsim: flow endpoints must be hosts (%d -> %d)", spec.Src, spec.Dst)
	}
	if spec.SizeBytes < 0 {
		return fmt.Errorf("netsim: negative flow size %d", spec.SizeBytes)
	}
	return nil
}

// StartFlow opens a transfer. It returns an error if src/dst are not hosts
// or the size is negative. A destination currently unreachable because of
// link faults is NOT an error: the flow is created and aborts (firing
// OnAbort, never OnComplete) after a connect timeout, as a real connection
// attempt into a partition would.
func (n *Network) StartFlow(spec FlowSpec) (*Flow, error) {
	if err := n.checkSpec(spec); err != nil {
		return nil, err
	}
	if n.ptr != nil {
		return n.ptr.startFlow(spec), nil
	}
	_, h := n.soa.startFlow(spec, true)
	return h, nil
}

// StartFlowID opens a transfer and returns its compact generation-counted
// id instead of a handle. When the flow needs no handle at all (no taps,
// no completion callbacks) the start is allocation-free — this is the
// steady-state entry point. Only the struct-of-arrays core supports it.
func (n *Network) StartFlowID(spec FlowSpec) (FlowID, error) {
	if n.ptr != nil {
		return FlowID{}, errors.New("netsim: StartFlowID requires the struct-of-arrays core")
	}
	if err := n.checkSpec(spec); err != nil {
		return FlowID{}, err
	}
	id, _ := n.soa.startFlow(spec, false)
	return id, nil
}

// AbortFlow tears down the identified flow before completion, exactly as
// a fault-injected endpoint death would (OnAbort fires, partial progress
// stays readable through taps). Aborting a flow that already finished —
// even if its slot has since been recycled by a new flow — returns
// ErrStaleFlow and leaves the new occupant untouched.
func (n *Network) AbortFlow(id FlowID) error {
	if n.ptr != nil {
		return errors.New("netsim: AbortFlow requires the struct-of-arrays core")
	}
	c := n.soa
	if id.slot < 0 || int(id.slot) >= len(c.gen) || c.gen[id.slot] != id.gen || c.state[id.slot] == slotFree {
		return ErrStaleFlow
	}
	c.abortSlot(id.slot)
	return nil
}

// FlowPending reports whether the identified flow is still in flight
// (false once it completed or aborted and its id went stale).
func (n *Network) FlowPending(id FlowID) bool {
	if n.soa == nil {
		return false
	}
	c := n.soa
	return id.slot >= 0 && int(id.slot) < len(c.gen) && c.gen[id.slot] == id.gen && c.state[id.slot] != slotFree
}

// slowStartInitialWindow is the IW10 initial congestion window in bytes
// (10 segments of 1448 B payload).
const slowStartInitialWindow = 10 * 1448

// slowStartPenaltyNs approximates TCP slow start analytically: the
// number of window doublings needed to cover the flow, each costing one
// RTT (= 2 × one-way path latency).
func slowStartPenaltyNs(size int64, onewayNs int64) int64 {
	if size <= 0 {
		return 0
	}
	rtt := 2 * onewayNs
	rounds := int64(math.Ceil(math.Log2(1 + float64(size)/slowStartInitialWindow)))
	return rounds * rtt
}

// durationFor converts bytes at bps into simulated time, rounding UP to
// the next nanosecond so a completion event never fires before the last
// byte has actually been charged by settle. A zero/negative rate, or one
// so small the transfer would outlast the representable horizon, clamps
// to MaxTime instead of overflowing sim.Time.
func durationFor(bytes, bps float64) sim.Time {
	if bytes <= 0 {
		return 0
	}
	if bps <= 0 {
		return sim.MaxTime
	}
	ns := math.Ceil(bytes * 8 / bps * 1e9)
	if ns >= float64(sim.MaxTime) || math.IsNaN(ns) {
		return sim.MaxTime
	}
	return sim.Time(ns)
}

// rateTolerance is the relative tolerance under which a recomputed rate
// counts as unchanged, leaving the flow's completion event in place.
const rateTolerance = 1e-9

func rateEqual(a, b float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	m := math.Abs(a)
	if mb := math.Abs(b); mb > m {
		m = mb
	}
	return d <= m*rateTolerance
}

// SetLinkState takes a link down or brings it back up, recomputing routes.
// Active flows whose path crosses a downed link are rerouted over the
// surviving fabric when a route remains and aborted otherwise (firing
// their OnAbort). Bringing a link up never disturbs in-flight flows —
// they keep their current paths until they finish.
func (n *Network) SetLinkState(lid LinkID, up bool) error {
	if lid < 0 || int(lid) >= len(n.topo.links) {
		return fmt.Errorf("netsim: link %d out of range", lid)
	}
	if n.ptr != nil {
		return n.ptr.setLinkState(lid, up)
	}
	return n.soa.setLinkState(lid, up)
}

// SetLinkCapacityScale degrades (or restores) a link to factor × its
// as-built capacity and triggers reallocation, modelling partial faults:
// a flapping optic, an oversubscribed middlebox, a half-duplex fallback.
func (n *Network) SetLinkCapacityScale(lid LinkID, factor float64) error {
	if err := n.topo.SetLinkCapacityScale(lid, factor); err != nil {
		return err
	}
	if n.ptr != nil {
		n.ptr.settle()
		n.ptr.markDirty()
	} else {
		n.soa.settle()
		n.soa.markDirty()
	}
	return nil
}

// AbortFlowsWhere aborts every actively-transferring flow matching pred
// and returns how many were torn down (flows still in their propagation
// window are too young to have endpoint state and are left alone).
// Simulated daemon crashes use it to kill the TCP connections the dead
// process owned.
func (n *Network) AbortFlowsWhere(pred func(FlowSpec) bool) int {
	if n.ptr != nil {
		return n.ptr.abortFlowsWhere(pred)
	}
	return n.soa.abortFlowsWhere(pred)
}

// Reachable reports whether the current fabric routes src to dst.
func (n *Network) Reachable(src, dst NodeID) bool {
	if src == dst {
		return true
	}
	return len(n.topo.nextHops[src][dst]) > 0
}

// AbortedFlows returns the number of flows torn down by faults so far.
func (n *Network) AbortedFlows() uint64 { return n.abortedCount }

// ActiveFlows returns the number of currently transferring network flows.
func (n *Network) ActiveFlows() int {
	if n.ptr != nil {
		return len(n.ptr.flows)
	}
	return len(n.soa.active)
}

// linkFlowCount returns the number of active flows crossing link lid.
func (n *Network) linkFlowCount(lid LinkID) int {
	if n.ptr != nil {
		return len(n.ptr.linkFlows[lid])
	}
	return len(n.soa.linkFlows[lid])
}

// reallocPendingNow reports whether a coalesced reallocation is queued at
// the current instant (installed rates intentionally stale).
func (n *Network) reallocPendingNow() bool {
	if n.ptr != nil {
		return n.ptr.reallocPending
	}
	return n.soa.reallocPending
}

// LinkRates returns the current allocated rate on every directed link
// (bits per second), indexed by LinkID. Utilization probes and invariant
// checks read this between events.
func (n *Network) LinkRates() []float64 {
	rates := make([]float64, len(n.topo.links))
	n.addLinkRates(rates)
	return rates
}

func (n *Network) addLinkRates(rates []float64) {
	if n.ptr != nil {
		for _, f := range n.ptr.flows {
			for _, lid := range f.path {
				rates[lid] += f.rate
			}
		}
		return
	}
	c := n.soa
	for _, s := range c.active {
		for _, lid := range c.path(s) {
			rates[lid] += c.rate[s]
		}
	}
}

// CheckInvariants verifies the classic max-min fairness conditions on the
// current allocation: (1) no link carries more than its capacity;
// (2) every flow with a positive rate is bottlenecked — it crosses at
// least one saturated link (within tolerance). It returns a descriptive
// error on the first violation. Intended for tests and debugging; it is
// meaningful only under AllocMaxMin.
func (n *Network) CheckInvariants() error {
	const relTol = 1e-6
	rates := n.LinkRates()
	for lid, used := range rates {
		capBps := n.topo.links[lid].CapacityBps
		if used > capBps*(1+relTol) {
			return fmt.Errorf("netsim: link %d over capacity: %.3g > %.3g bps", lid, used, capBps)
		}
	}
	if n.soa != nil && n.soa.tcp != nil {
		// TCP mode: allocation is demand-limited water-filling, so the
		// fluid bottleneck condition only binds flows whose window demand
		// exceeds their allocation. A flow at (or below) its demand is
		// window-limited; anything in between must cross a saturated link.
		c, tc := n.soa, n.soa.tcp
		for _, s := range c.active {
			rate, d := c.rate[s], tc.demand[s]
			if rate > d*(1+relTol)+1e-6 {
				return fmt.Errorf("netsim: flow %d rate %.3g exceeds TCP demand %.3g bps", c.fid[s], rate, d)
			}
			if rate <= 0 || rate >= d*(1-relTol) {
				continue // stalled, or demand-limited at its window
			}
			sat := false
			for _, lid := range c.path(s) {
				if rates[lid] >= n.topo.links[lid].CapacityBps*(1-relTol) {
					sat = true
					break
				}
			}
			if !sat {
				return fmt.Errorf("netsim: flow %d (rate %.3g of demand %.3g bps) crosses no saturated link", c.fid[s], rate, d)
			}
		}
		return nil
	}
	if n.cfg.Allocator != AllocMaxMin {
		return nil
	}
	checkFlow := func(id uint64, rate float64, path []LinkID) error {
		if rate <= 0 || len(path) == 0 {
			return nil
		}
		for _, lid := range path {
			if rates[lid] >= n.topo.links[lid].CapacityBps*(1-relTol) {
				return nil
			}
		}
		return fmt.Errorf("netsim: flow %d (rate %.3g bps) crosses no saturated link", id, rate)
	}
	if n.ptr != nil {
		for _, f := range n.ptr.flows {
			if err := checkFlow(f.id, f.rate, f.path); err != nil {
				return err
			}
		}
		return nil
	}
	c := n.soa
	for _, s := range c.active {
		if err := checkFlow(c.fid[s], c.rate[s], c.path(s)); err != nil {
			return err
		}
	}
	return nil
}
