package netsim

import (
	"fmt"
	"math"

	"keddah/internal/sim"
	"keddah/internal/telemetry"
)

// FlowSpec describes a transfer to start on the network.
type FlowSpec struct {
	Src, Dst NodeID
	// SrcPort and DstPort are TCP-style port numbers. Keddah classifies
	// flows by the well-known Hadoop destination ports.
	SrcPort, DstPort int
	// SizeBytes is the number of application bytes to move.
	SizeBytes int64
	// Label is a free-form ground-truth annotation ("job7/shuffle")
	// carried through to captures for classifier validation.
	Label string
	// OnComplete, if non-nil, runs when the last byte is delivered.
	OnComplete func(*Flow)
	// OnAbort, if non-nil, runs when the flow is torn down before
	// completion (its path died and no reroute existed, or its endpoint
	// process was killed). Exactly one of OnComplete/OnAbort fires.
	OnAbort func(*Flow)
}

// RateSegment records the allocated rate of a flow from Start until the
// next segment (or flow end). Captures use segments to synthesise packets
// with realistic timestamps.
type RateSegment struct {
	Start   sim.Time
	RateBps float64
}

// Flow is an in-flight or finished transfer.
type Flow struct {
	id        uint64
	spec      FlowSpec
	path      []LinkID
	start     sim.Time
	activated sim.Time // start + propagation latency
	end       sim.Time
	remaining float64 // bytes
	rate      float64 // bps
	last      sim.Time
	segments  []RateSegment
	completeE *sim.Event
	done      bool
	aborted   bool
	active    bool
	// listIdx is this flow's position in Network.flows while active, so
	// removal never scans the active set.
	listIdx int
	// linkPos[i] is this flow's position in Network.linkFlows[path[i]],
	// so the per-link index is maintained in O(len(path)) on finish.
	linkPos []int
}

// ID returns the network-unique flow identifier.
func (f *Flow) ID() uint64 { return f.id }

// Spec returns the originating specification.
func (f *Flow) Spec() FlowSpec { return f.spec }

// Start returns when the flow was opened.
func (f *Flow) Start() sim.Time { return f.start }

// End returns when the last byte arrived (valid once done).
func (f *Flow) End() sim.Time { return f.end }

// Done reports whether the flow has finished (completed or aborted).
func (f *Flow) Done() bool { return f.done }

// Aborted reports whether the flow was torn down before delivering all
// its bytes (path failure with no reroute, or endpoint death).
func (f *Flow) Aborted() bool { return f.aborted }

// Transferred returns the bytes actually delivered so far. For completed
// flows this equals SizeBytes; for aborted flows it is the partial
// progress captures should account for.
func (f *Flow) Transferred() int64 {
	rem := int64(f.remaining + 0.5)
	if rem < 0 {
		rem = 0
	}
	if rem > f.spec.SizeBytes {
		rem = f.spec.SizeBytes
	}
	return f.spec.SizeBytes - rem
}

// Segments returns the rate history (read-only view).
func (f *Flow) Segments() []RateSegment { return f.segments }

// Tap observes flow lifecycle events, e.g. a packet capture.
type Tap interface {
	FlowStarted(f *Flow)
	FlowCompleted(f *Flow)
}

// Allocator selects the bandwidth-sharing discipline.
type Allocator int

// Supported allocators. AllocMaxMin (the default) is progressive-filling
// max-min fairness, the standard flow-level model of TCP sharing.
// AllocEqualSplit is the naive alternative — each flow independently gets
// min over its links of capacity/flow-count, ignoring bandwidth freed by
// flows bottlenecked elsewhere. It exists as an ablation: Keddah's replay
// fidelity depends on the fair-sharing model (experiment A2).
const (
	AllocMaxMin Allocator = iota
	AllocEqualSplit
)

// Config tunes network-wide constants.
type Config struct {
	// LoopbackBps is the rate for src==dst transfers (local disk/memory
	// path). Default 20 Gbps.
	LoopbackBps float64
	// Allocator selects the bandwidth sharing model (default AllocMaxMin).
	Allocator Allocator
	// ModelSlowStart adds a TCP slow-start penalty to each flow's
	// activation: ceil(log2(1 + size/10·MSS)) round trips at the path
	// RTT. Flow-level models otherwise let short flows finish in one
	// latency, which overstates control-flow and small-fetch speed.
	// Off by default; enable for latency-sensitive studies.
	ModelSlowStart bool
	// UseReferenceAllocator switches max-min fairness back to the
	// original from-scratch progressive filling that rescans every
	// active flow per bottleneck round. It exists to property-test the
	// incremental allocator (both must produce identical rate vectors)
	// and as an escape hatch; it is O(rounds × flows × links) where the
	// default incremental path is O(rounds × links + frozen × path).
	UseReferenceAllocator bool
}

// Network runs flows over a Topology on a shared simulation engine.
type Network struct {
	eng   *sim.Engine
	topo  *Topology
	cfg   Config
	seq   uint64
	flows []*Flow // active flows in activation order
	taps  []Tap

	// linkFlows indexes the active flows crossing each link, maintained
	// in O(len(path)) on flow activation and completion so the allocator
	// never scans the whole active set to find who shares a bottleneck.
	// Order within a link's list is arbitrary (swap-remove).
	linkFlows [][]*Flow

	reallocPending bool
	dirtyE         *sim.Event // pooled coalescing event, reused via Reschedule

	// Allocation scratch, reused across reallocations so the hot path
	// does not allocate per event. remCap/cnt are indexed by LinkID;
	// rates/frozen by Flow.listIdx; freezeBuf holds one round's
	// bottleneck candidates.
	remCap    []float64
	cnt       []int
	rates     []float64
	frozen    []bool
	freezeBuf []*Flow

	// Stats counters.
	completed    uint64
	abortedCount uint64
	totalBytes   float64

	metrics telemetry.NetMetrics
}

// SetMetrics attaches network instrumentation. The zero value detaches
// it (every hook degrades to a nil check).
func (n *Network) SetMetrics(m telemetry.NetMetrics) { n.metrics = m }

// NewNetwork creates a Network bound to the engine and topology.
func NewNetwork(eng *sim.Engine, topo *Topology, cfg Config) *Network {
	if cfg.LoopbackBps == 0 {
		cfg.LoopbackBps = 20 * Gbps
	}
	return &Network{
		eng:       eng,
		topo:      topo,
		cfg:       cfg,
		linkFlows: make([][]*Flow, len(topo.links)),
		remCap:    make([]float64, len(topo.links)),
		cnt:       make([]int, len(topo.links)),
	}
}

// Topology returns the network's topology.
func (n *Network) Topology() *Topology { return n.topo }

// Engine returns the simulation engine the network runs on.
func (n *Network) Engine() *sim.Engine { return n.eng }

// AddTap registers a lifecycle observer.
func (n *Network) AddTap(t Tap) { n.taps = append(n.taps, t) }

// Completed returns the number of flows finished so far.
func (n *Network) Completed() uint64 { return n.completed }

// TotalBytes returns the total bytes delivered so far.
func (n *Network) TotalBytes() float64 { return n.totalBytes }

// flowHash mixes the 5-tuple for deterministic ECMP path selection.
func flowHash(s FlowSpec, id uint64) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(s.Src))
	mix(uint64(s.Dst))
	mix(uint64(s.SrcPort))
	mix(uint64(s.DstPort))
	mix(id)
	return h
}

// noRouteTimeout is how long a flow opened towards an unreachable
// destination (network partition) lingers before aborting — the TCP
// connect-timeout stand-in. Retrying layers observe the abort and apply
// their own backoff on top.
const noRouteTimeout = sim.Time(1_000_000_000)

// StartFlow opens a transfer. It returns an error if src/dst are not hosts
// or the size is negative. A destination currently unreachable because of
// link faults is NOT an error: the flow is created and aborts (firing
// OnAbort, never OnComplete) after a connect timeout, as a real connection
// attempt into a partition would.
func (n *Network) StartFlow(spec FlowSpec) (*Flow, error) {
	if !n.topo.IsHost(spec.Src) || !n.topo.IsHost(spec.Dst) {
		return nil, fmt.Errorf("netsim: flow endpoints must be hosts (%d -> %d)", spec.Src, spec.Dst)
	}
	if spec.SizeBytes < 0 {
		return nil, fmt.Errorf("netsim: negative flow size %d", spec.SizeBytes)
	}
	f := &Flow{
		id:        n.seq,
		spec:      spec,
		start:     n.eng.Now(),
		remaining: float64(spec.SizeBytes),
	}
	n.seq++
	n.metrics.FlowsStarted.Inc()

	var latency int64
	if spec.Src != spec.Dst {
		path, err := n.topo.Path(spec.Src, spec.Dst, flowHash(spec, f.id))
		if err != nil {
			// Partitioned: park the flow and abort after the connect
			// timeout. (Build guarantees full reachability, so this only
			// happens once link faults are in play.)
			for _, t := range n.taps {
				t.FlowStarted(f)
			}
			n.eng.After(noRouteTimeout, func() { n.abort(f) })
			return f, nil
		}
		f.path = path
		latency = n.topo.PathLatencyNs(path)
		if n.cfg.ModelSlowStart {
			latency += slowStartPenaltyNs(spec.SizeBytes, latency)
		}
	} else {
		latency = 10_000 // 10 µs loopback
	}

	for _, t := range n.taps {
		t.FlowStarted(f)
	}

	// The flow starts transferring after propagation latency.
	n.eng.After(sim.Time(latency), func() {
		if f.done {
			return // aborted while still propagating
		}
		f.activated = n.eng.Now()
		f.last = f.activated
		f.active = true
		if f.spec.Src == f.spec.Dst {
			// Loopback: fixed rate, no interaction with fairness.
			f.rate = n.cfg.LoopbackBps
			f.segments = append(f.segments, RateSegment{Start: f.activated, RateBps: f.rate})
			d := durationFor(f.remaining, f.rate)
			f.completeE = n.eng.After(d, func() { n.finish(f) })
			return
		}
		if !n.topo.pathUp(f.path) {
			// A link on the precomputed path went down during the
			// propagation window: reroute if the fabric still connects
			// the endpoints, abort otherwise.
			path, err := n.topo.Path(f.spec.Src, f.spec.Dst, flowHash(f.spec, f.id))
			if err != nil {
				f.active = false
				n.abort(f)
				return
			}
			f.path = path
		}
		f.listIdx = len(n.flows)
		n.flows = append(n.flows, f)
		n.linkInsert(f)
		n.markDirty()
	})
	return f, nil
}

// linkInsert adds the flow to the per-link active index, O(len(path)).
func (n *Network) linkInsert(f *Flow) {
	f.linkPos = make([]int, len(f.path))
	for i, lid := range f.path {
		f.linkPos[i] = len(n.linkFlows[lid])
		n.linkFlows[lid] = append(n.linkFlows[lid], f)
	}
}

// linkRemove deletes the flow from the per-link index by swap-remove,
// O(len(path)²) worst case (paths are ≤6 links on a fat-tree).
func (n *Network) linkRemove(f *Flow) {
	for i, lid := range f.path {
		lst := n.linkFlows[lid]
		p := f.linkPos[i]
		last := len(lst) - 1
		moved := lst[last]
		lst[p] = moved
		lst[last] = nil
		n.linkFlows[lid] = lst[:last]
		if moved != f {
			// Tell the relocated flow where it now sits on this link.
			for j, ml := range moved.path {
				if ml == lid {
					moved.linkPos[j] = p
					break
				}
			}
		}
	}
}

// slowStartInitialWindow is the IW10 initial congestion window in bytes
// (10 segments of 1448 B payload).
const slowStartInitialWindow = 10 * 1448

// slowStartPenaltyNs approximates TCP slow start analytically: the
// number of window doublings needed to cover the flow, each costing one
// RTT (= 2 × one-way path latency).
func slowStartPenaltyNs(size int64, onewayNs int64) int64 {
	if size <= 0 {
		return 0
	}
	rtt := 2 * onewayNs
	rounds := int64(math.Ceil(math.Log2(1 + float64(size)/slowStartInitialWindow)))
	return rounds * rtt
}

// durationFor converts bytes at bps into simulated time, rounding UP to
// the next nanosecond so a completion event never fires before the last
// byte has actually been charged by settle. A zero/negative rate, or one
// so small the transfer would outlast the representable horizon, clamps
// to MaxTime instead of overflowing sim.Time.
func durationFor(bytes, bps float64) sim.Time {
	if bytes <= 0 {
		return 0
	}
	if bps <= 0 {
		return sim.MaxTime
	}
	ns := math.Ceil(bytes * 8 / bps * 1e9)
	if ns >= float64(sim.MaxTime) || math.IsNaN(ns) {
		return sim.MaxTime
	}
	return sim.Time(ns)
}

// markDirty coalesces reallocation requests occurring at the same instant.
// The coalescing event is pooled: one Event per Network, re-armed with
// Reschedule, so arrival/departure storms do not churn the event heap.
func (n *Network) markDirty() {
	if n.reallocPending {
		return
	}
	n.reallocPending = true
	if n.dirtyE == nil {
		n.dirtyE = n.eng.After(0, func() {
			n.reallocPending = false
			n.reallocate()
		})
		return
	}
	n.eng.Reschedule(n.dirtyE, n.eng.Now())
}

// settle charges elapsed transfer progress to every active flow.
func (n *Network) settle() {
	now := n.eng.Now()
	for _, f := range n.flows {
		if dt := now - f.last; dt > 0 && f.rate > 0 {
			f.remaining -= f.rate * dt.Seconds() / 8
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
		f.last = now
	}
}

// reallocate recomputes fair rates for all active flows and reschedules
// the completion events whose rate actually changed. The rate vector is
// computed into the n.rates scratch buffer by the configured allocator.
func (n *Network) reallocate() {
	n.settle()

	nf := len(n.flows)
	if nf == 0 {
		return
	}
	n.resetScratch(nf)
	n.metrics.Reallocs.Inc()
	n.metrics.ActiveFlowsMax.SetMax(float64(nf))

	switch {
	case n.cfg.Allocator == AllocEqualSplit:
		n.equalSplitRates()
	case n.cfg.UseReferenceAllocator:
		n.referenceMaxMinRates()
	default:
		n.incrementalMaxMinRates()
	}

	n.applyRates()
}

// resetScratch sizes and clears the per-flow allocation buffers.
func (n *Network) resetScratch(nf int) {
	if cap(n.rates) < nf {
		n.rates = make([]float64, nf)
		n.frozen = make([]bool, nf)
	}
	n.rates = n.rates[:nf]
	n.frozen = n.frozen[:nf]
	for i := range n.frozen {
		n.frozen[i] = false
	}
}

// rateTolerance is the relative tolerance under which a recomputed rate
// counts as unchanged, leaving the flow's completion event in place.
const rateTolerance = 1e-9

func rateEqual(a, b float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	m := math.Abs(a)
	if mb := math.Abs(b); mb > m {
		m = mb
	}
	return d <= m*rateTolerance
}

// applyRates installs the n.rates vector. A flow whose rate is unchanged
// (within rateTolerance) keeps its pending completion event untouched —
// the event still lands exactly where the unchanged rate drains the
// remaining bytes. Changed flows reuse their completion Event via
// Engine.Reschedule instead of cancel-then-push, so no dead events pile
// up in the heap and no Event/closure is allocated after the first.
func (n *Network) applyRates() {
	now := n.eng.Now()
	for i, f := range n.flows {
		newRate := n.rates[i]
		if rateEqual(f.rate, newRate) {
			continue
		}
		f.rate = newRate
		f.segments = append(f.segments, RateSegment{Start: now, RateBps: newRate})
		n.scheduleCompletion(f)
	}
}

// scheduleCompletion (re)arms the flow's completion event for its current
// rate and residue. Flows with no rate — or a rate so small completion
// would fall past the simulation horizon — park with no pending event
// until a future reallocation revives them.
func (n *Network) scheduleCompletion(f *Flow) {
	if f.rate <= 0 {
		f.completeE.Cancel()
		return
	}
	d := durationFor(f.remaining, f.rate)
	now := n.eng.Now()
	if d >= sim.MaxTime-now {
		f.completeE.Cancel()
		return
	}
	if f.completeE == nil {
		flow := f
		f.completeE = n.eng.After(d, func() { n.finish(flow) })
		return
	}
	n.eng.Reschedule(f.completeE, now+d)
}

// finish completes a flow: removes it from the active set, notifies taps
// and the owner callback, and triggers reallocation for the survivors.
func (n *Network) finish(f *Flow) {
	if f.done {
		return
	}
	// Settle to charge the final interval (loopback flows are not in the
	// active list; handle them directly).
	if f.spec.Src == f.spec.Dst {
		f.remaining = 0
	} else {
		n.settle()
		if f.remaining > 1e-3 {
			// The event fired before the flow truly drained (float
			// rounding or a stale event). Reschedule for the residue —
			// never strand a flow without a pending completion.
			n.scheduleCompletion(f)
			return
		}
		f.remaining = 0
		n.removeActive(f)
		n.markDirty()
	}
	f.done = true
	f.active = false
	f.end = n.eng.Now()
	n.completed++
	n.totalBytes += float64(f.spec.SizeBytes)
	n.metrics.FlowsCompleted.Inc()
	n.metrics.FlowBytes.Observe(f.spec.SizeBytes)
	for _, t := range n.taps {
		t.FlowCompleted(f)
	}
	if f.spec.OnComplete != nil {
		f.spec.OnComplete(f)
	}
}

// removeActive deletes f from the active set, preserving order: the flow
// knows its own position, so no scan — just close the gap and renumber
// the tail — and drops it from the per-link index.
func (n *Network) removeActive(f *Flow) {
	i := f.listIdx
	last := len(n.flows) - 1
	copy(n.flows[i:], n.flows[i+1:])
	n.flows[last] = nil
	n.flows = n.flows[:last]
	for j := i; j < last; j++ {
		n.flows[j].listIdx = j
	}
	n.linkRemove(f)
}

// abort tears a flow down before completion: it leaves the active set,
// its partial progress is kept readable via Transferred, taps observe the
// (aborted) completion, and OnAbort — not OnComplete — fires. Aborting a
// finished flow is a no-op.
func (n *Network) abort(f *Flow) {
	if f.done {
		return
	}
	if f.active {
		n.settle()
		n.removeActive(f)
		n.markDirty()
	}
	f.completeE.Cancel()
	f.done = true
	f.aborted = true
	f.active = false
	f.end = n.eng.Now()
	n.abortedCount++
	n.metrics.FlowsAborted.Inc()
	for _, t := range n.taps {
		t.FlowCompleted(f)
	}
	if f.spec.OnAbort != nil {
		f.spec.OnAbort(f)
	}
}

// SetLinkState takes a link down or brings it back up, recomputing routes.
// Active flows whose path crosses a downed link are rerouted over the
// surviving fabric when a route remains and aborted otherwise (firing
// their OnAbort). Bringing a link up never disturbs in-flight flows —
// they keep their current paths until they finish.
func (n *Network) SetLinkState(lid LinkID, up bool) error {
	if lid < 0 || int(lid) >= len(n.topo.links) {
		return fmt.Errorf("netsim: link %d out of range", lid)
	}
	down := !up
	if n.topo.linkDown[lid] == down {
		return nil
	}
	n.settle()
	if err := n.topo.SetLinkDown(lid, down); err != nil {
		return err
	}
	n.metrics.LinkTransitions.Inc()
	if down {
		// Snapshot: rerouting mutates the per-link index in place.
		victims := make([]*Flow, len(n.linkFlows[lid]))
		copy(victims, n.linkFlows[lid])
		for _, f := range victims {
			n.rerouteOrAbort(f)
		}
	}
	n.markDirty()
	return nil
}

// rerouteOrAbort moves an active flow onto a fresh shortest path, or
// aborts it when the fabric no longer connects its endpoints.
func (n *Network) rerouteOrAbort(f *Flow) {
	path, err := n.topo.Path(f.spec.Src, f.spec.Dst, flowHash(f.spec, f.id))
	if err != nil {
		n.abort(f)
		return
	}
	n.linkRemove(f)
	f.path = path
	n.linkInsert(f)
	n.metrics.Reroutes.Inc()
}

// SetLinkCapacityScale degrades (or restores) a link to factor × its
// as-built capacity and triggers reallocation, modelling partial faults:
// a flapping optic, an oversubscribed middlebox, a half-duplex fallback.
func (n *Network) SetLinkCapacityScale(lid LinkID, factor float64) error {
	if err := n.topo.SetLinkCapacityScale(lid, factor); err != nil {
		return err
	}
	n.settle()
	n.markDirty()
	return nil
}

// AbortFlowsWhere aborts every actively-transferring flow matching pred
// and returns how many were torn down (flows still in their propagation
// window are too young to have endpoint state and are left alone).
// Simulated daemon crashes use it to kill the TCP connections the dead
// process owned.
func (n *Network) AbortFlowsWhere(pred func(FlowSpec) bool) int {
	victims := make([]*Flow, 0, 4)
	for _, f := range n.flows {
		if pred(f.spec) {
			victims = append(victims, f)
		}
	}
	for _, f := range victims {
		n.abort(f)
	}
	return len(victims)
}

// Reachable reports whether the current fabric routes src to dst.
func (n *Network) Reachable(src, dst NodeID) bool {
	if src == dst {
		return true
	}
	return len(n.topo.nextHops[src][dst]) > 0
}

// AbortedFlows returns the number of flows torn down by faults so far.
func (n *Network) AbortedFlows() uint64 { return n.abortedCount }

// ActiveFlows returns the number of currently transferring network flows.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// LinkRates returns the current allocated rate on every directed link
// (bits per second), indexed by LinkID. Utilization probes and invariant
// checks read this between events.
func (n *Network) LinkRates() []float64 {
	rates := make([]float64, len(n.topo.links))
	for _, f := range n.flows {
		for _, lid := range f.path {
			rates[lid] += f.rate
		}
	}
	return rates
}

// CheckInvariants verifies the classic max-min fairness conditions on the
// current allocation: (1) no link carries more than its capacity;
// (2) every flow with a positive rate is bottlenecked — it crosses at
// least one saturated link (within tolerance). It returns a descriptive
// error on the first violation. Intended for tests and debugging; it is
// meaningful only under AllocMaxMin.
func (n *Network) CheckInvariants() error {
	const relTol = 1e-6
	rates := n.LinkRates()
	for lid, used := range rates {
		capBps := n.topo.links[lid].CapacityBps
		if used > capBps*(1+relTol) {
			return fmt.Errorf("netsim: link %d over capacity: %.3g > %.3g bps", lid, used, capBps)
		}
	}
	if n.cfg.Allocator != AllocMaxMin {
		return nil
	}
	for _, f := range n.flows {
		if f.rate <= 0 || len(f.path) == 0 {
			continue
		}
		bottlenecked := false
		for _, lid := range f.path {
			if rates[lid] >= n.topo.links[lid].CapacityBps*(1-relTol) {
				bottlenecked = true
				break
			}
		}
		if !bottlenecked {
			return fmt.Errorf("netsim: flow %d (rate %.3g bps) crosses no saturated link", f.id, f.rate)
		}
	}
	return nil
}
