package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"keddah/internal/sim"
)

// TestMaxMinInvariantsUnderRandomLoad: for arbitrary flow sets on
// arbitrary fabrics, at every allocation instant (a) link capacities are
// respected and (b) every flow is bottlenecked — the defining properties
// of a max-min fair allocation.
func TestMaxMinInvariantsUnderRandomLoad(t *testing.T) {
	f := func(seed int64, topoPick uint8, nFlowsRaw uint8) bool {
		var topo *Topology
		var err error
		switch topoPick % 3 {
		case 0:
			topo, err = Star(6, Gbps)
		case 1:
			topo, err = MultiRack(2, 3, Gbps, 2*Gbps)
		default:
			topo, err = FatTree(4, Gbps)
		}
		if err != nil {
			return false
		}
		eng := sim.New()
		net := NewNetwork(eng, topo, Config{})
		hosts := topo.Hosts()

		// Deterministic pseudo-random flow set from the seed.
		state := uint64(seed)*2862933555777941757 + 3037000493
		next := func(n int) int {
			state = state*6364136223846793005 + 1442695040888963407
			return int((state >> 33) % uint64(n))
		}
		nFlows := int(nFlowsRaw%40) + 2
		for i := 0; i < nFlows; i++ {
			src := hosts[next(len(hosts))]
			dst := hosts[next(len(hosts))]
			if src == dst {
				dst = hosts[(next(len(hosts)-1)+1+int(src))%len(hosts)]
				if src == dst {
					continue
				}
			}
			size := int64(next(50_000_000) + 1000)
			delay := sim.Time(next(1_000_000_000))
			s, d := src, dst
			eng.After(delay, func() {
				if _, err := net.StartFlow(FlowSpec{Src: s, Dst: d, SrcPort: 1000 + i, DstPort: 2000, SizeBytes: size}); err != nil {
					t.Error(err)
				}
			})
		}

		// Sample the allocation every 50 ms of simulated time.
		ok := true
		var probe func()
		probe = func() {
			if err := net.CheckInvariants(); err != nil {
				t.Log(err)
				ok = false
				return
			}
			if net.ActiveFlows() > 0 || eng.Pending() > 1 {
				eng.After(50*time.Millisecond, probe)
			}
		}
		eng.After(60*time.Millisecond, probe)

		if _, err := eng.RunAll(); err != nil {
			return false
		}
		return ok && net.ActiveFlows() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestEqualSplitNeverOversubscribes: even the naive ablation allocator
// must respect link capacities (it under-uses them, never over-uses).
func TestEqualSplitNeverOversubscribes(t *testing.T) {
	topo, err := MultiRack(2, 3, Gbps, Gbps)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	net := NewNetwork(eng, topo, Config{Allocator: AllocEqualSplit})
	h := topo.Hosts()
	for i := 0; i < 8; i++ {
		if _, err := net.StartFlow(FlowSpec{Src: h[i%3], Dst: h[3+i%3], SrcPort: i, DstPort: 80, SizeBytes: 10_000_000}); err != nil {
			t.Fatal(err)
		}
	}
	checked := 0
	var probe func()
	probe = func() {
		if err := net.CheckInvariants(); err != nil {
			t.Error(err)
			return
		}
		checked++
		if net.ActiveFlows() > 0 {
			eng.After(10*time.Millisecond, probe)
		}
	}
	eng.After(time.Millisecond, probe)
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Error("probe never ran")
	}
}

func TestLinkRatesSumToFlows(t *testing.T) {
	topo := mustStar(t, 3, Gbps)
	eng := sim.New()
	net := NewNetwork(eng, topo, Config{})
	h := topo.Hosts()
	if _, err := net.StartFlow(FlowSpec{Src: h[0], Dst: h[1], SrcPort: 1, DstPort: 2, SizeBytes: 100_000_000}); err != nil {
		t.Fatal(err)
	}
	eng.After(10*time.Millisecond, func() {
		rates := net.LinkRates()
		var active float64
		for _, r := range rates {
			if r > active {
				active = r
			}
		}
		// One flow alone gets the full 1 Gbps on its links.
		if active < 0.99*Gbps {
			t.Errorf("peak link rate %v, want ~1 Gbps", active)
		}
	})
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
}
