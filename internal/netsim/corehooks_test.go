package netsim

// Test-only accessors that reach into whichever core a Network runs on,
// so the invariant-corruption and allocator-equivalence tests can drive
// the struct-of-arrays layout and the pointer reference layout through
// one code path.

// testSetRemaining corrupts the first active flow's byte residue.
func testSetRemaining(n *Network, v float64) {
	if n.ptr != nil {
		n.ptr.flows[0].remaining = v
		return
	}
	n.soa.remaining[n.soa.active[0]] = v
}

// testMarkDone marks the first active flow finished without removing it
// from the active set — the inconsistency VerifyState must flag.
func testMarkDone(n *Network) {
	if n.ptr != nil {
		n.ptr.flows[0].done = true
		return
	}
	n.soa.state[n.soa.active[0]] = slotFree
}

// testScaleRate perturbs the first active flow's installed rate.
func testScaleRate(n *Network, factor float64) {
	if n.ptr != nil {
		n.ptr.flows[0].rate *= factor
		return
	}
	n.soa.rate[n.soa.active[0]] *= factor
}

// testFirstLink returns the first link of the first active flow's path.
func testFirstLink(n *Network) LinkID {
	if n.ptr != nil {
		return n.ptr.flows[0].path[0]
	}
	return n.soa.path(n.soa.active[0])[0]
}

// snapshotRates returns flow id → allocated rate for the active set.
func snapshotRates(n *Network) map[uint64]float64 {
	if n.ptr != nil {
		out := make(map[uint64]float64, len(n.ptr.flows))
		for _, f := range n.ptr.flows {
			out[f.id] = f.rate
		}
		return out
	}
	c := n.soa
	out := make(map[uint64]float64, len(c.active))
	for _, s := range c.active {
		out[c.fid[s]] = c.rate[s]
	}
	return out
}
