package netsim

import (
	"testing"

	"keddah/internal/sim"
)

// FuzzTCPStep drives the TCP state machine with an arbitrary op script —
// flow starts, time advances, capacity degrades, link flaps, aborts — and
// sweeps the structural invariants after every op: cwnd stays within
// [MSS, BDP+buffer], RTO backoff never exceeds its cap, stalled flows
// carry zero demand with a pending timer, and queues stay within their
// buffers (tcpCore.verify via VerifyState). The state machine must never
// panic and never wedge the event loop.
func FuzzTCPStep(f *testing.F) {
	f.Add([]byte{0x00, 0x11, 0x22, 0x01, 0x41, 0x02, 0x90, 0x03})
	f.Add([]byte{0x10, 0x10, 0x10, 0x10, 0x81, 0x81, 0x81, 0x81, 0x52, 0x04})
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0xf0, 0xff})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 256 {
			t.Skip()
		}
		topo, err := Star(9, Gbps)
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.New()
		eng.MaxEvents = 2_000_000 // wedge guard: a runaway tick loop trips this
		net := NewNetwork(eng, topo, Config{Transport: "tcp", ExpectedFlows: 32})
		hosts := topo.Hosts()

		flows := make([]FlowID, 0, 64)
		started := 0
		for i, op := range script {
			arg := int(op >> 4)
			switch op & 0x0f {
			case 0, 1, 2, 3: // start a fan-in flow (sizes vary with arg)
				if started >= 64 {
					break
				}
				id, err := net.StartFlowID(FlowSpec{
					Src: hosts[1+started%8], Dst: hosts[0],
					SrcPort: 1000 + started, DstPort: 13562,
					SizeBytes: int64(16<<10) << uint(arg%6),
				})
				if err != nil {
					t.Fatal(err)
				}
				flows = append(flows, id)
				started++
			case 4, 5, 6: // advance simulated time by arg-scaled steps
				until := eng.Now() + sim.Time(1+arg)*sim.Time(500_000)
				if _, err := eng.Run(until); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			case 7: // degrade a link
				lid := LinkID(arg % topo.NumLinks())
				if err := net.SetLinkCapacityScale(lid, 0.1+float64(arg)/32); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			case 8: // restore a link's capacity
				lid := LinkID(arg % topo.NumLinks())
				if err := net.SetLinkCapacityScale(lid, 1.0); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			case 9: // flap a link down
				if err := net.SetLinkState(LinkID(arg%topo.NumLinks()), false); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			case 10: // bring a link up
				if err := net.SetLinkState(LinkID(arg%topo.NumLinks()), true); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			case 11: // abort one tracked flow (stale ids are fine)
				if len(flows) > 0 {
					_ = net.AbortFlow(flows[arg%len(flows)])
				}
			default: // abort by predicate
				net.AbortFlowsWhere(func(s FlowSpec) bool { return s.SrcPort%16 == arg })
			}
			if err := net.VerifyState(); err != nil {
				t.Fatalf("op %d (0x%02x): %v", i, op, err)
			}
		}
		// Restore the fabric and drain: every surviving flow must finish.
		for lid := 0; lid < topo.NumLinks(); lid++ {
			_ = net.SetLinkState(LinkID(lid), true)
			_ = net.SetLinkCapacityScale(LinkID(lid), 1.0)
		}
		if _, err := eng.RunAll(); err != nil {
			t.Fatal(err)
		}
		if net.ActiveFlows() != 0 {
			t.Fatalf("%d flows wedged active after drain", net.ActiveFlows())
		}
		if got := net.Completed() + net.AbortedFlows(); got != uint64(started) {
			t.Fatalf("completed+aborted = %d, want %d", got, started)
		}
		if err := net.VerifyState(); err != nil {
			t.Fatal(err)
		}
	})
}
