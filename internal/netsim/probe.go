package netsim

import (
	"keddah/internal/sim"
	"keddah/internal/telemetry"
)

// UtilSample is one utilization observation of a link set.
type UtilSample struct {
	AtNs int64
	// Utilization is allocated-rate ÷ capacity per probed link, in the
	// order the probe was configured with.
	Utilization []float64
}

// UtilizationProbe samples the allocated rate of selected links at a
// fixed period — the per-link time series a capacity-planning study
// plots. Create with NewUtilizationProbe, then Start; it stops itself
// when the network goes idle (and resumes if Started again).
type UtilizationProbe struct {
	net      *Network
	links    []LinkID
	interval sim.Time
	samples  []UtilSample
	running  bool
	timeline *telemetry.LinkTimeline
}

// AttachTimeline mirrors every sample into a telemetry link timeline
// (utilisation plus the per-link active flow count). Pass nil to detach.
func (p *UtilizationProbe) AttachTimeline(tl *telemetry.LinkTimeline) { p.timeline = tl }

// NewUtilizationProbe probes the given links every interval. An empty
// link list probes every link.
func NewUtilizationProbe(net *Network, links []LinkID, interval sim.Time) *UtilizationProbe {
	if len(links) == 0 {
		for i := range net.topo.links {
			links = append(links, LinkID(i))
		}
	}
	ls := make([]LinkID, len(links))
	copy(ls, links)
	if interval <= 0 {
		interval = 100_000_000 // 100 ms
	}
	return &UtilizationProbe{net: net, links: ls, interval: interval}
}

// Start begins sampling. The probe re-arms itself while the network has
// active flows or pending events beyond its own tick, so the event queue
// can drain once the simulation finishes.
func (p *UtilizationProbe) Start() {
	if p.running {
		return
	}
	p.running = true
	p.tick()
}

func (p *UtilizationProbe) tick() {
	rates := p.net.LinkRates()
	sample := UtilSample{AtNs: int64(p.net.eng.Now()), Utilization: make([]float64, len(p.links))}
	for i, lid := range p.links {
		capBps := p.net.topo.links[lid].CapacityBps
		if capBps > 0 {
			sample.Utilization[i] = rates[lid] / capBps
		}
	}
	p.samples = append(p.samples, sample)
	if p.timeline != nil {
		for i, lid := range p.links {
			p.timeline.Append(telemetry.LinkPoint{
				AtNs:  sample.AtNs,
				Link:  int(lid),
				Util:  sample.Utilization[i],
				Flows: p.net.linkFlowCount(lid),
			})
		}
	}
	if p.net.ActiveFlows() == 0 && p.net.eng.Pending() <= 1 {
		p.running = false
		return
	}
	p.net.eng.After(p.interval, func() { p.tick() })
}

// Samples returns the collected series (read-only view).
func (p *UtilizationProbe) Samples() []UtilSample { return p.samples }

// Links returns the probed link ids.
func (p *UtilizationProbe) Links() []LinkID {
	out := make([]LinkID, len(p.links))
	copy(out, p.links)
	return out
}

// PeakUtilization returns, per probed link, the maximum observed
// utilization across all samples.
func (p *UtilizationProbe) PeakUtilization() []float64 {
	peaks := make([]float64, len(p.links))
	for _, s := range p.samples {
		for i, u := range s.Utilization {
			if u > peaks[i] {
				peaks[i] = u
			}
		}
	}
	return peaks
}

// MeanUtilization returns, per probed link, the time-average observed
// utilization (simple sample mean).
func (p *UtilizationProbe) MeanUtilization() []float64 {
	means := make([]float64, len(p.links))
	if len(p.samples) == 0 {
		return means
	}
	for _, s := range p.samples {
		for i, u := range s.Utilization {
			means[i] += u
		}
	}
	for i := range means {
		means[i] /= float64(len(p.samples))
	}
	return means
}

// BusyFraction returns, per probed link, the fraction of samples with
// utilization at or above the threshold (e.g. 0.95 = saturated time).
func (p *UtilizationProbe) BusyFraction(threshold float64) []float64 {
	out := make([]float64, len(p.links))
	if len(p.samples) == 0 {
		return out
	}
	for _, s := range p.samples {
		for i, u := range s.Utilization {
			if u >= threshold {
				out[i]++
			}
		}
	}
	for i := range out {
		out[i] /= float64(len(p.samples))
	}
	return out
}
