package netsim

import (
	"errors"
	"math"
	"testing"
	"time"

	"keddah/internal/sim"
)

func TestParseTransport(t *testing.T) {
	cases := []struct {
		name    string
		want    Transport
		wantErr bool
	}{
		{"", TransportFluid, false},
		{"fluid", TransportFluid, false},
		{"tcp", TransportTCP, false},
		{"TCP", TransportFluid, true}, // case-sensitive, like every config enum here
		{"udp", TransportFluid, true},
		{"fluid ", TransportFluid, true},
		{"packet", TransportFluid, true},
	}
	for _, tc := range cases {
		got, err := ParseTransport(tc.name)
		if got != tc.want {
			t.Errorf("ParseTransport(%q) = %v, want %v", tc.name, got, tc.want)
		}
		if (err != nil) != tc.wantErr {
			t.Errorf("ParseTransport(%q) err = %v, wantErr %v", tc.name, err, tc.wantErr)
		}
		if err != nil && !errors.Is(err, ErrBadTransport) {
			t.Errorf("ParseTransport(%q) error %v does not wrap ErrBadTransport", tc.name, err)
		}
	}
}

func TestTransportString(t *testing.T) {
	if TransportFluid.String() != "fluid" || TransportTCP.String() != "tcp" {
		t.Errorf("Transport.String() = %q/%q, want fluid/tcp", TransportFluid, TransportTCP)
	}
}

func TestNewNetworkRejectsBadTransportConfig(t *testing.T) {
	topo := mustStar(t, 2, Gbps)
	mustPanic := func(name string, cfg Config) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: NewNetwork did not panic", name)
			}
		}()
		NewNetwork(sim.New(), topo, cfg)
	}
	mustPanic("unknown name", Config{Transport: "udp"})
	mustPanic("tcp over pointer core", Config{Transport: "tcp", UsePointerFlows: true})
	// Valid combinations construct fine.
	if got := NewNetwork(sim.New(), topo, Config{Transport: "tcp"}).Transport(); got != TransportTCP {
		t.Errorf("Transport() = %v, want tcp", got)
	}
	if got := NewNetwork(sim.New(), topo, Config{UsePointerFlows: true}).Transport(); got != TransportFluid {
		t.Errorf("pointer-core Transport() = %v, want fluid", got)
	}
}

// incastResult summarises one fan-in run.
type incastResult struct {
	makespan   time.Duration
	goodputBps float64
	fcts       []time.Duration
	fastRtx    uint64
	rtoFired   uint64
}

// runIncast starts fanin synchronized senders, each pushing sizeBytes into
// hosts[0] of a star, and runs to completion under the given transport.
func runIncast(t *testing.T, transport string, fanin int, sizeBytes int64) incastResult {
	t.Helper()
	topo := mustStar(t, fanin+1, Gbps)
	eng := sim.New()
	net := NewNetwork(eng, topo, Config{Transport: transport, ExpectedFlows: fanin})
	hosts := topo.Hosts()
	var res incastResult
	for i := 0; i < fanin; i++ {
		if _, err := net.StartFlow(FlowSpec{
			Src: hosts[i+1], Dst: hosts[0], SrcPort: 10000 + i, DstPort: 13562, SizeBytes: sizeBytes,
			OnComplete: func(f *Flow) {
				fct := time.Duration(f.End() - f.Start())
				res.fcts = append(res.fcts, fct)
				if end := time.Duration(f.End()); end > res.makespan {
					res.makespan = end
				}
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := net.Completed(); got != uint64(fanin) {
		t.Fatalf("transport %q fan-in %d: completed %d flows, want %d", transport, fanin, got, fanin)
	}
	res.goodputBps = float64(fanin) * float64(sizeBytes) * 8 / res.makespan.Seconds()
	res.fastRtx, res.rtoFired = net.TCPStats()
	return res
}

// TestTCPIncastCollapse is the tentpole behaviour check: synchronized
// shuffle fan-in into one receiver collapses TCP goodput (droptail
// overflow → synchronized loss → windows below the fast-retransmit
// threshold → 200 ms RTO stalls) while the fluid model serenely shares the
// bottleneck at full utilisation. Small fan-in must NOT collapse: fast
// retransmit keeps large windows transmitting.
func TestTCPIncastCollapse(t *testing.T) {
	const unit = 256 << 10
	fluidSmall := runIncast(t, "fluid", 2, unit)
	tcpSmall := runIncast(t, "tcp", 2, unit)
	fluidBig := runIncast(t, "fluid", 32, unit)
	tcpBig := runIncast(t, "tcp", 32, unit)

	ratioSmall := tcpSmall.goodputBps / fluidSmall.goodputBps
	ratioBig := tcpBig.goodputBps / fluidBig.goodputBps
	t.Logf("fan-in  2: fluid %.0f Mbps, tcp %.0f Mbps (ratio %.2f, rtx %d, rto %d)",
		fluidSmall.goodputBps/1e6, tcpSmall.goodputBps/1e6, ratioSmall, tcpSmall.fastRtx, tcpSmall.rtoFired)
	t.Logf("fan-in 32: fluid %.0f Mbps, tcp %.0f Mbps (ratio %.2f, rtx %d, rto %d)",
		fluidBig.goodputBps/1e6, tcpBig.goodputBps/1e6, ratioBig, tcpBig.fastRtx, tcpBig.rtoFired)

	if ratioBig >= 0.5 {
		t.Errorf("fan-in 32: TCP goodput ratio %.2f, want < 0.5 (incast collapse)", ratioBig)
	}
	if tcpBig.rtoFired == 0 {
		t.Error("fan-in 32: no RTO fired — collapse should be timeout-driven")
	}
	if ratioSmall < 2*ratioBig {
		t.Errorf("fan-in 2 ratio %.2f not clearly healthier than fan-in 32 ratio %.2f", ratioSmall, ratioBig)
	}
	if tcpBig.makespan <= tcpSmall.makespan {
		t.Errorf("fan-in 32 makespan %v not above fan-in 2 makespan %v", tcpBig.makespan, tcpSmall.makespan)
	}
}

// TestTCPSingleFlowNearCapacity checks the state machine in the benign
// case: one long flow should sustain goodput near the bottleneck capacity
// (sawtooth losses from filling the droptail buffer are fine; RTO stalls
// are not).
func TestTCPSingleFlowNearCapacity(t *testing.T) {
	topo := mustStar(t, 2, Gbps)
	eng := sim.New()
	net := NewNetwork(eng, topo, Config{Transport: "tcp"})
	hosts := topo.Hosts()
	var dur time.Duration
	const size = 125_000_000 // 1 s at line rate
	if _, err := net.StartFlow(FlowSpec{
		Src: hosts[0], Dst: hosts[1], SrcPort: 1000, DstPort: 2000, SizeBytes: size,
		OnComplete: func(f *Flow) { dur = time.Duration(f.End() - f.Start()) },
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	goodput := float64(size) * 8 / dur.Seconds()
	_, rto := net.TCPStats()
	t.Logf("single flow: %v, %.0f Mbps, %d RTOs", dur, goodput/1e6, rto)
	if goodput < 0.8*Gbps {
		t.Errorf("single-flow goodput %.0f Mbps, want >= 800 Mbps", goodput/1e6)
	}
	if rto != 0 {
		t.Errorf("single flow hit %d RTO stalls, want 0", rto)
	}
}

// TestTCPDeterminism: identical seed-free scenarios replayed twice must
// produce byte-identical flow completion times and event counters.
func TestTCPDeterminism(t *testing.T) {
	run := func() ([]time.Duration, uint64, uint64) {
		r := runIncast(t, "tcp", 16, 512<<10)
		return r.fcts, r.fastRtx, r.rtoFired
	}
	f1, rtx1, rto1 := run()
	f2, rtx2, rto2 := run()
	if rtx1 != rtx2 || rto1 != rto2 {
		t.Fatalf("counters diverge across reruns: rtx %d vs %d, rto %d vs %d", rtx1, rtx2, rto1, rto2)
	}
	if len(f1) != len(f2) {
		t.Fatalf("completion counts diverge: %d vs %d", len(f1), len(f2))
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("flow %d completion diverges: %v vs %v", i, f1[i], f2[i])
		}
	}
}

// TestFluidConfigUnchangedByTransportField: Transport "" and "fluid" are
// the same model and must produce bit-identical trajectories.
func TestFluidConfigUnchangedByTransportField(t *testing.T) {
	a := runIncast(t, "", 8, 1<<20)
	b := runIncast(t, "fluid", 8, 1<<20)
	if a.makespan != b.makespan {
		t.Fatalf("makespan diverges: %v vs %v", a.makespan, b.makespan)
	}
	for i := range a.fcts {
		if a.fcts[i] != b.fcts[i] {
			t.Fatalf("flow %d FCT diverges: %v vs %v", i, a.fcts[i], b.fcts[i])
		}
	}
	if a.fastRtx != 0 || a.rtoFired != 0 || b.fastRtx != 0 || b.rtoFired != 0 {
		t.Error("fluid mode moved TCP counters")
	}
}

// TestTCPInvariantsDuringIncast sweeps VerifyState (which includes the
// TCP-specific cwnd/queue bounds) across an incast run.
func TestTCPInvariantsDuringIncast(t *testing.T) {
	topo := mustStar(t, 9, Gbps)
	eng := sim.New()
	net := NewNetwork(eng, topo, Config{Transport: "tcp"})
	hosts := topo.Hosts()
	for i := 0; i < 8; i++ {
		if _, err := net.StartFlow(FlowSpec{
			Src: hosts[i+1], Dst: hosts[0], SrcPort: 20000 + i, DstPort: 13562, SizeBytes: 256 << 10,
		}); err != nil {
			t.Fatal(err)
		}
	}
	steps := 0
	for eng.Step() {
		steps++
		if err := net.VerifyState(); err != nil {
			t.Fatalf("after %d events: %v", steps, err)
		}
	}
	if net.Completed() != 8 {
		t.Fatalf("completed %d, want 8", net.Completed())
	}
}

// TestTCPRerouteKeepsWindowBounded: a reroute onto a slower path must
// clamp cwnd into the new path's BDP+buffer cap.
func TestTCPRerouteKeepsWindowBounded(t *testing.T) {
	// Two racks, oversubscribed uplink: host r0h0 → r1h0 crosses the core.
	topo, err := MultiRack(2, 2, Gbps, Gbps)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	net := NewNetwork(eng, topo, Config{Transport: "tcp"})
	hosts := topo.Hosts()
	done := false
	if _, err := net.StartFlow(FlowSpec{
		Src: hosts[0], Dst: hosts[2], SrcPort: 1, DstPort: 2, SizeBytes: 64 << 20,
		OnComplete: func(*Flow) { done = true },
	}); err != nil {
		t.Fatal(err)
	}
	// Mid-transfer, degrade every link to 1/10 capacity: cwndCap shrinks.
	if _, err := eng.Run(sim.Time(50_000_000)); err != nil {
		t.Fatal(err)
	}
	for lid := 0; lid < topo.NumLinks(); lid++ {
		if err := net.SetLinkCapacityScale(LinkID(lid), 0.1); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.VerifyState(); err == nil {
		// cwnd may transiently exceed the shrunk cap until the next tick;
		// the run must still converge and finish verifiably.
		_ = err
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("flow did not complete after capacity degrade")
	}
	if err := net.VerifyState(); err != nil {
		t.Fatal(err)
	}
}

// TestTCPConfigDefaults pins the documented TCPConfig defaults.
func TestTCPConfigDefaults(t *testing.T) {
	d := TCPConfig{}.withDefaults()
	if d.MSSBytes != 1448 || d.InitWindowBytes != 14480 {
		t.Errorf("MSS/IW defaults = %.0f/%.0f, want 1448/14480", d.MSSBytes, d.InitWindowBytes)
	}
	if d.BufferBytes != 131072 {
		t.Errorf("buffer default = %.0f, want 131072", d.BufferBytes)
	}
	if d.RTOMinNs != 200_000_000 || d.RTOMaxNs != 60_000_000_000 || d.TickNs != 1_000_000 {
		t.Errorf("timer defaults = %d/%d/%d", d.RTOMinNs, d.RTOMaxNs, d.TickNs)
	}
	// Overrides survive.
	o := TCPConfig{MSSBytes: 9000, TickNs: 5}.withDefaults()
	if o.MSSBytes != 9000 || o.InitWindowBytes != 90000 || o.TickNs != 5 {
		t.Errorf("override lost: %+v", o)
	}
	if math.IsNaN(o.BufferBytes) || o.BufferBytes <= 0 {
		t.Errorf("buffer default broken under overrides: %.0f", o.BufferBytes)
	}
}
