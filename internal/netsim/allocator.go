package netsim

import (
	"math"
	"slices"
)

// This file holds the struct-of-arrays core's bandwidth-sharing rate
// computations. All three write the per-flow rate vector into c.rates
// (indexed by active-list position), sized by reallocate before dispatch.
// The ptrCore twins (ptrcore.go) perform the identical floating-point
// operations in the identical order, so the two cores' rate vectors agree
// bit for bit — as do incremental and reference within each core.
//
// incrementalMaxMinRates is the production path: progressive filling
// driven by the per-link active-flow index, O(rounds × links) for
// bottleneck selection plus O(Σ path) for freezing — it never rescans
// the whole flow set per round. referenceMaxMinRates preserves the
// original from-scratch formulation (scan every flow every round) for
// equivalence testing behind Config.UseReferenceAllocator.

// incrementalMaxMinRates computes max-min fair rates by progressive
// filling over the per-link flow index:
//
//  1. cnt[l] starts as the number of active flows crossing l (the
//     maintained index length — no path scan), remCap[l] as capacity.
//  2. Each round picks the bottleneck link (minimum remCap/cnt among
//     loaded links), then freezes exactly the unfrozen flows in
//     linkFlows[bottleneck] at that fair share, returning their
//     bandwidth claim to the other links on their paths.
//  3. Rounds repeat until every flow is frozen; a flow always keeps its
//     own links loaded until frozen, so progress is guaranteed.
//
// Candidates are processed in active-list order (ascending listIdx) to
// reproduce the reference allocator's arithmetic exactly: the per-link
// lists are swap-remove ordered, so they are sorted here — the sort is
// over one bottleneck's flows only, not the whole active set, and
// slices.SortFunc keeps it allocation-free.
func (c *soaCore) incrementalMaxMinRates() {
	for i, l := range c.topo.links {
		c.remCap[i] = l.CapacityBps
		c.cnt[i] = len(c.linkFlows[i])
	}
	remaining := len(c.active)
	for remaining > 0 {
		best := -1
		bestShare := math.Inf(1)
		for i, cn := range c.cnt {
			if cn == 0 {
				continue
			}
			share := c.remCap[i] / float64(cn)
			if share < bestShare {
				bestShare = share
				best = i
			}
		}
		if best < 0 {
			c.freezeStranded(&remaining)
			break
		}
		cand := c.freezeBuf[:0]
		for _, s := range c.linkFlows[best] {
			if !c.frozen[c.listIdx[s]] {
				cand = append(cand, s)
			}
		}
		// The per-link lists are usually already in activation order
		// (swap-remove only perturbs them on completions), so check
		// before paying for the sort.
		sorted := true
		for i := 1; i < len(cand); i++ {
			if c.listIdx[cand[i-1]] > c.listIdx[cand[i]] {
				sorted = false
				break
			}
		}
		if !sorted {
			slices.SortFunc(cand, func(a, b int32) int {
				return int(c.listIdx[a]) - int(c.listIdx[b])
			})
		}
		for _, s := range cand {
			li := c.listIdx[s]
			c.rates[li] = bestShare
			c.frozen[li] = true
			remaining--
			for _, lid := range c.path(s) {
				c.remCap[lid] -= bestShare
				if c.remCap[lid] < 0 {
					c.remCap[lid] = 0
				}
				c.cnt[lid]--
			}
		}
		c.freezeBuf = cand[:0]
	}
}

// referenceMaxMinRates is the original allocator, kept verbatim as the
// oracle for the incremental path: it recounts link loads from scratch
// and rescans the entire active set every bottleneck round.
func (c *soaCore) referenceMaxMinRates() {
	remCap := make([]float64, len(c.topo.links))
	cnt := make([]int, len(c.topo.links))
	for i, l := range c.topo.links {
		remCap[i] = l.CapacityBps
	}
	for _, s := range c.active {
		for _, lid := range c.path(s) {
			cnt[lid]++
		}
	}
	frozen := make([]bool, len(c.active))
	remaining := len(c.active)
	for remaining > 0 {
		// Find bottleneck link: min fair share among loaded links.
		best := -1
		bestShare := math.Inf(1)
		for i := range remCap {
			if cnt[i] == 0 {
				continue
			}
			share := remCap[i] / float64(cnt[i])
			if share < bestShare {
				bestShare = share
				best = i
			}
		}
		if best < 0 {
			copy(c.frozen, frozen)
			c.freezeStranded(&remaining)
			break
		}
		// Freeze every unfrozen flow crossing the bottleneck.
		for i, s := range c.active {
			if frozen[i] {
				continue
			}
			crosses := false
			for _, lid := range c.path(s) {
				if lid == LinkID(best) {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			c.rates[i] = bestShare
			frozen[i] = true
			remaining--
			for _, lid := range c.path(s) {
				remCap[lid] -= bestShare
				if remCap[lid] < 0 {
					remCap[lid] = 0
				}
				cnt[lid]--
			}
		}
	}
}

// freezeStranded handles the should-not-happen case of unfrozen flows
// with no loaded links left: they freeze at the loopback rate.
func (c *soaCore) freezeStranded(remaining *int) {
	for i := range c.frozen {
		if !c.frozen[i] {
			c.rates[i] = c.cfg.LoopbackBps
			c.frozen[i] = true
			*remaining -= 1
		}
	}
}

// equalSplitRates is the ablation allocator: each flow gets min over its
// path of capacity/flow-count, with no redistribution of slack.
func (c *soaCore) equalSplitRates() {
	for i := range c.topo.links {
		c.cnt[i] = len(c.linkFlows[i])
	}
	for i, s := range c.active {
		rate := math.Inf(1)
		for _, lid := range c.path(s) {
			share := c.topo.links[lid].CapacityBps / float64(c.cnt[lid])
			if share < rate {
				rate = share
			}
		}
		if math.IsInf(rate, 1) {
			rate = c.cfg.LoopbackBps
		}
		c.rates[i] = rate
	}
}
