package netsim

import (
	"math"
	"sort"
)

// This file holds the bandwidth-sharing rate computations. All three
// write the per-flow rate vector into n.rates (indexed by Flow.listIdx),
// sized by reallocate before dispatch.
//
// incrementalMaxMinRates is the production path: progressive filling
// driven by the per-link active-flow index, O(rounds × links) for
// bottleneck selection plus O(Σ path) for freezing — it never rescans
// the whole flow set per round. referenceMaxMinRates preserves the
// original from-scratch formulation (scan every flow every round) for
// equivalence testing behind Config.UseReferenceAllocator. Both perform
// the identical floating-point operations in the identical order, so
// their rate vectors agree bit for bit.

// incrementalMaxMinRates computes max-min fair rates by progressive
// filling over the per-link flow index:
//
//  1. cnt[l] starts as the number of active flows crossing l (the
//     maintained index length — no path scan), remCap[l] as capacity.
//  2. Each round picks the bottleneck link (minimum remCap/cnt among
//     loaded links), then freezes exactly the unfrozen flows in
//     linkFlows[bottleneck] at that fair share, returning their
//     bandwidth claim to the other links on their paths.
//  3. Rounds repeat until every flow is frozen; a flow always keeps its
//     own links loaded until frozen, so progress is guaranteed.
//
// Candidates are processed in active-list order (ascending listIdx) to
// reproduce the reference allocator's arithmetic exactly: the per-link
// lists are swap-remove ordered, so they are sorted here — the sort is
// over one bottleneck's flows only, not the whole active set.
func (n *Network) incrementalMaxMinRates() {
	for i, l := range n.topo.links {
		n.remCap[i] = l.CapacityBps
		n.cnt[i] = len(n.linkFlows[i])
	}
	remaining := len(n.flows)
	for remaining > 0 {
		best := -1
		bestShare := math.Inf(1)
		for i, c := range n.cnt {
			if c == 0 {
				continue
			}
			share := n.remCap[i] / float64(c)
			if share < bestShare {
				bestShare = share
				best = i
			}
		}
		if best < 0 {
			n.freezeStranded(&remaining)
			break
		}
		cand := n.freezeBuf[:0]
		for _, f := range n.linkFlows[best] {
			if !n.frozen[f.listIdx] {
				cand = append(cand, f)
			}
		}
		// The per-link lists are usually already in activation order
		// (swap-remove only perturbs them on completions), so check
		// before paying for the sort.
		sorted := true
		for i := 1; i < len(cand); i++ {
			if cand[i-1].listIdx > cand[i].listIdx {
				sorted = false
				break
			}
		}
		if !sorted {
			sort.Slice(cand, func(a, b int) bool { return cand[a].listIdx < cand[b].listIdx })
		}
		for _, f := range cand {
			n.rates[f.listIdx] = bestShare
			n.frozen[f.listIdx] = true
			remaining--
			for _, lid := range f.path {
				n.remCap[lid] -= bestShare
				if n.remCap[lid] < 0 {
					n.remCap[lid] = 0
				}
				n.cnt[lid]--
			}
		}
		n.freezeBuf = cand[:0]
	}
}

// referenceMaxMinRates is the original allocator, kept verbatim as the
// oracle for the incremental path: it recounts link loads from scratch
// and rescans the entire active set every bottleneck round.
func (n *Network) referenceMaxMinRates() {
	remCap := make([]float64, len(n.topo.links))
	cnt := make([]int, len(n.topo.links))
	for i, l := range n.topo.links {
		remCap[i] = l.CapacityBps
	}
	for _, f := range n.flows {
		for _, lid := range f.path {
			cnt[lid]++
		}
	}
	frozen := make([]bool, len(n.flows))
	remaining := len(n.flows)
	for remaining > 0 {
		// Find bottleneck link: min fair share among loaded links.
		best := -1
		bestShare := math.Inf(1)
		for i := range remCap {
			if cnt[i] == 0 {
				continue
			}
			share := remCap[i] / float64(cnt[i])
			if share < bestShare {
				bestShare = share
				best = i
			}
		}
		if best < 0 {
			copy(n.frozen, frozen)
			n.freezeStranded(&remaining)
			break
		}
		// Freeze every unfrozen flow crossing the bottleneck.
		for i, f := range n.flows {
			if frozen[i] {
				continue
			}
			crosses := false
			for _, lid := range f.path {
				if lid == LinkID(best) {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			n.rates[i] = bestShare
			frozen[i] = true
			remaining--
			for _, lid := range f.path {
				remCap[lid] -= bestShare
				if remCap[lid] < 0 {
					remCap[lid] = 0
				}
				cnt[lid]--
			}
		}
	}
}

// freezeStranded handles the should-not-happen case of unfrozen flows
// with no loaded links left: they freeze at the loopback rate.
func (n *Network) freezeStranded(remaining *int) {
	for i := range n.frozen {
		if !n.frozen[i] {
			n.rates[i] = n.cfg.LoopbackBps
			n.frozen[i] = true
			*remaining -= 1
		}
	}
}

// equalSplitRates is the ablation allocator: each flow gets min over its
// path of capacity/flow-count, with no redistribution of slack.
func (n *Network) equalSplitRates() {
	for i := range n.topo.links {
		n.cnt[i] = len(n.linkFlows[i])
	}
	for i, f := range n.flows {
		rate := math.Inf(1)
		for _, lid := range f.path {
			share := n.topo.links[lid].CapacityBps / float64(n.cnt[lid])
			if share < rate {
				rate = share
			}
		}
		if math.IsInf(rate, 1) {
			rate = n.cfg.LoopbackBps
		}
		n.rates[i] = rate
	}
}
