package netsim

import (
	"errors"
	"testing"

	"keddah/internal/sim"
)

// TestFlowIDRecycle is the table-driven slot-recycling contract: a FlowID
// goes stale the instant its flow finishes, and every operation through a
// stale id — even after the slot is reoccupied by a new flow — is a
// checked no-op, never a mutation of the new occupant.
func TestFlowIDRecycle(t *testing.T) {
	cases := []struct {
		name   string
		retire func(t *testing.T, net *Network, eng *sim.Engine, id FlowID)
	}{
		{
			name: "completes",
			retire: func(t *testing.T, net *Network, eng *sim.Engine, id FlowID) {
				if _, err := eng.RunAll(); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name: "aborted",
			retire: func(t *testing.T, net *Network, eng *sim.Engine, id FlowID) {
				if err := net.AbortFlow(id); err != nil {
					t.Fatal(err)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			topo := mustStar(t, 4, Gbps)
			eng := sim.New()
			net := NewNetwork(eng, topo, Config{})
			h := topo.Hosts()

			first, err := net.StartFlowID(FlowSpec{Src: h[0], Dst: h[1], SrcPort: 1, DstPort: 80, SizeBytes: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			if !net.FlowPending(first) {
				t.Fatal("fresh flow not pending")
			}
			tc.retire(t, net, eng, first)
			if net.FlowPending(first) {
				t.Fatal("retired flow still pending")
			}
			if err := net.AbortFlow(first); !errors.Is(err, ErrStaleFlow) {
				t.Fatalf("abort of retired flow: got %v, want ErrStaleFlow", err)
			}

			// A new flow must reuse the freed slot (LIFO free list) under a
			// bumped generation; the stale id must not reach it.
			second, err := net.StartFlowID(FlowSpec{Src: h[1], Dst: h[2], SrcPort: 2, DstPort: 80, SizeBytes: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			if second.slot != first.slot {
				t.Fatalf("slot not recycled: first %d, second %d", first.slot, second.slot)
			}
			if second.gen == first.gen {
				t.Fatal("generation not bumped on recycle")
			}
			if net.FlowPending(first) {
				t.Fatal("stale id reports the new occupant as its own flow")
			}
			if err := net.AbortFlow(first); !errors.Is(err, ErrStaleFlow) {
				t.Fatalf("stale abort against recycled slot: got %v, want ErrStaleFlow", err)
			}
			if !net.FlowPending(second) {
				t.Fatal("stale abort mutated the recycled slot's new occupant")
			}
			if err := net.VerifyState(); err != nil {
				t.Fatal(err)
			}
			if _, err := eng.RunAll(); err != nil {
				t.Fatal(err)
			}
			if net.FlowPending(second) {
				t.Fatal("second flow never finished")
			}
		})
	}
}

// FuzzFlowIDRecycle drives a pseudo-random interleaving of flow starts,
// partial event processing, aborts through current and stale FlowIDs, and
// structural verification. The properties: an abort through a stale id
// always returns ErrStaleFlow and never perturbs the slot's new occupant,
// VerifyState holds at every probe point, and the network always drains.
func FuzzFlowIDRecycle(f *testing.F) {
	f.Add([]byte{0, 16, 5, 1, 0, 8, 2, 3, 0, 1, 2, 2, 3})
	f.Add([]byte{0, 0, 0, 0, 1, 255, 2, 2, 2, 2, 3})
	f.Add([]byte{4, 9, 1, 33, 0, 12, 2, 7, 1, 64, 3, 0, 200, 1, 40, 2, 0, 3})
	f.Fuzz(func(t *testing.T, ops []byte) {
		topo, err := Star(4, Gbps)
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.New()
		net := NewNetwork(eng, topo, Config{})
		hosts := topo.Hosts()

		var ids []FlowID // every id ever issued, live or stale
		for i := 0; i+1 < len(ops) && i < 256; i += 2 {
			op, arg := ops[i], int(ops[i+1])
			switch op % 4 {
			case 0: // start a flow (size and endpoints from arg)
				src := hosts[arg%len(hosts)]
				dst := hosts[(arg/4+1)%len(hosts)]
				id, err := net.StartFlowID(FlowSpec{
					Src: src, Dst: dst, SrcPort: 1000 + i, DstPort: 80,
					SizeBytes: int64(arg)*4096 + 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !net.FlowPending(id) {
					t.Fatal("fresh flow not pending")
				}
				ids = append(ids, id)
			case 1: // process a bounded number of events
				for j := 0; j <= arg%32; j++ {
					if !eng.Step() {
						break
					}
				}
			case 2: // abort an arbitrary past id (possibly stale)
				if len(ids) == 0 {
					continue
				}
				id := ids[arg%len(ids)]
				pending := net.FlowPending(id)
				occupant := FlowID{slot: id.slot, gen: net.soa.gen[id.slot]}
				occupied := net.soa.state[id.slot] != slotFree
				switch err := net.AbortFlow(id); {
				case pending && err != nil:
					t.Fatalf("abort of pending flow: %v", err)
				case !pending && !errors.Is(err, ErrStaleFlow):
					t.Fatalf("stale abort: got %v, want ErrStaleFlow", err)
				case !pending && occupied && !net.FlowPending(occupant):
					t.Fatal("stale abort tore down the slot's new occupant")
				}
			case 3: // structural probe
				if err := net.VerifyState(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := eng.RunAll(); err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			if net.FlowPending(id) {
				t.Fatal("flow still pending after drain")
			}
			if err := net.AbortFlow(id); !errors.Is(err, ErrStaleFlow) {
				t.Fatalf("post-drain abort: got %v, want ErrStaleFlow", err)
			}
		}
		if err := net.VerifyState(); err != nil {
			t.Fatal(err)
		}
	})
}
