package netsim

import (
	"math"
	"testing"
	"time"

	"keddah/internal/sim"
)

func mustStar(t *testing.T, n int, bps float64) *Topology {
	t.Helper()
	topo, err := Star(n, bps)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestStarTopologyShape(t *testing.T) {
	topo := mustStar(t, 4, Gbps)
	if got := len(topo.Hosts()); got != 4 {
		t.Fatalf("hosts = %d, want 4", got)
	}
	if topo.NumNodes() != 5 {
		t.Errorf("nodes = %d, want 5 (4 hosts + switch)", topo.NumNodes())
	}
	hosts := topo.Hosts()
	path, err := topo.Path(hosts[0], hosts[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 {
		t.Errorf("host-host path length = %d, want 2", len(path))
	}
	if !topo.IsHost(hosts[0]) {
		t.Error("host not marked as host")
	}
}

func TestMultiRackRouting(t *testing.T) {
	topo, err := MultiRack(2, 3, Gbps, 10*Gbps)
	if err != nil {
		t.Fatal(err)
	}
	hosts := topo.Hosts()
	if len(hosts) != 6 {
		t.Fatalf("hosts = %d, want 6", len(hosts))
	}
	// Same-rack: 2 hops (host→tor→host); cross-rack: 4 hops.
	same, err := topo.Path(hosts[0], hosts[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(same) != 2 {
		t.Errorf("same-rack path = %d hops, want 2", len(same))
	}
	cross, err := topo.Path(hosts[0], hosts[3], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cross) != 4 {
		t.Errorf("cross-rack path = %d hops, want 4", len(cross))
	}
	if topo.Rack(hosts[0]) == topo.Rack(hosts[3]) {
		t.Error("hosts 0 and 3 should be in different racks")
	}
}

func TestFatTreeShapeAndReachability(t *testing.T) {
	topo, err := FatTree(4, Gbps)
	if err != nil {
		t.Fatal(err)
	}
	hosts := topo.Hosts()
	if len(hosts) != 16 {
		t.Fatalf("fat-tree k=4 hosts = %d, want 16", len(hosts))
	}
	// 16 hosts + 4 core + 8 agg + 8 edge = 36 nodes.
	if topo.NumNodes() != 36 {
		t.Errorf("nodes = %d, want 36", topo.NumNodes())
	}
	// Cross-pod paths are 6 hops; same-edge 2 hops.
	p, err := topo.Path(hosts[0], hosts[15], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 6 {
		t.Errorf("cross-pod path = %d hops, want 6", len(p))
	}
	p, err = topo.Path(hosts[0], hosts[1], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 {
		t.Errorf("same-edge path = %d hops, want 2", len(p))
	}
}

func TestFatTreeECMPUsesMultiplePaths(t *testing.T) {
	topo, err := FatTree(4, Gbps)
	if err != nil {
		t.Fatal(err)
	}
	hosts := topo.Hosts()
	seen := make(map[LinkID]bool)
	for h := uint64(0); h < 64; h++ {
		p, err := topo.Path(hosts[0], hosts[15], h)
		if err != nil {
			t.Fatal(err)
		}
		seen[p[1]] = true // the edge→agg choice varies under ECMP
	}
	if len(seen) < 2 {
		t.Errorf("ECMP used %d distinct second hops, want >= 2", len(seen))
	}
	// Same hash must give the same path.
	p1, _ := topo.Path(hosts[0], hosts[15], 99)
	p2, _ := topo.Path(hosts[0], hosts[15], 99)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("ECMP path not deterministic for equal hash")
		}
	}
}

func TestInvalidTopologies(t *testing.T) {
	if _, err := Star(0, Gbps); err == nil {
		t.Error("Star(0) accepted")
	}
	if _, err := MultiRack(0, 2, Gbps, Gbps); err == nil {
		t.Error("MultiRack(0 racks) accepted")
	}
	if _, err := FatTree(3, Gbps); err == nil {
		t.Error("FatTree(odd k) accepted")
	}
	if _, err := NewBuilder().Build(); err == nil {
		t.Error("empty topology accepted")
	}
	// Disconnected hosts must be rejected.
	b := NewBuilder()
	b.AddHost("a", 0)
	b.AddHost("b", 0)
	if _, err := b.Build(); err == nil {
		t.Error("disconnected topology accepted")
	}
}

// runFlow starts one flow of size bytes and returns its duration.
func runFlow(t *testing.T, size int64) time.Duration {
	t.Helper()
	topo := mustStar(t, 2, Gbps)
	eng := sim.New()
	net := NewNetwork(eng, topo, Config{})
	hosts := topo.Hosts()
	var dur time.Duration
	_, err := net.StartFlow(FlowSpec{
		Src: hosts[0], Dst: hosts[1], SrcPort: 1000, DstPort: 2000, SizeBytes: size,
		OnComplete: func(f *Flow) { dur = time.Duration(f.End() - f.Start()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	return dur
}

func TestSingleFlowTransferTime(t *testing.T) {
	// 125 MB at 1 Gbps = 1 s (plus 2 hops × 50 µs latency).
	dur := runFlow(t, 125_000_000)
	want := time.Second + 100*time.Microsecond
	if math.Abs(float64(dur-want)) > float64(time.Millisecond) {
		t.Errorf("duration = %v, want ~%v", dur, want)
	}
}

func TestZeroSizeFlowCompletesAtLatency(t *testing.T) {
	dur := runFlow(t, 0)
	if dur != 100*time.Microsecond {
		t.Errorf("zero-size duration = %v, want 100µs", dur)
	}
}

func TestFairSharingTwoFlowsOneLink(t *testing.T) {
	topo := mustStar(t, 3, Gbps)
	eng := sim.New()
	net := NewNetwork(eng, topo, Config{})
	hosts := topo.Hosts()
	durs := make(map[int]time.Duration)
	// Two flows into the same destination share its 1 Gbps access link.
	for i := 0; i < 2; i++ {
		i := i
		src := hosts[i]
		if _, err := net.StartFlow(FlowSpec{
			Src: src, Dst: hosts[2], SrcPort: 1000 + i, DstPort: 2000, SizeBytes: 125_000_000,
			OnComplete: func(f *Flow) { durs[i] = time.Duration(f.End() - f.Start()) },
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	// Each flow gets 500 Mbps → ~2 s.
	for i, d := range durs {
		if math.Abs(d.Seconds()-2.0) > 0.01 {
			t.Errorf("flow %d duration = %v, want ~2s", i, d)
		}
	}
}

func TestMaxMinUnbottleneckedFlowGetsFullRate(t *testing.T) {
	// Flows: A→C and B→C share C's link; D→E is independent and must get
	// the full rate despite the shared allocation pass.
	topo := mustStar(t, 5, Gbps)
	eng := sim.New()
	net := NewNetwork(eng, topo, Config{})
	h := topo.Hosts()
	var indep time.Duration
	mk := func(src, dst NodeID, onDone func(*Flow)) {
		if _, err := net.StartFlow(FlowSpec{Src: src, Dst: dst, SrcPort: 1, DstPort: 2, SizeBytes: 125_000_000, OnComplete: onDone}); err != nil {
			t.Fatal(err)
		}
	}
	mk(h[0], h[2], nil)
	mk(h[1], h[2], nil)
	mk(h[3], h[4], func(f *Flow) { indep = time.Duration(f.End() - f.Start()) })
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(indep.Seconds()-1.0) > 0.01 {
		t.Errorf("independent flow took %v, want ~1s", indep)
	}
}

func TestRateReallocationOnDeparture(t *testing.T) {
	// Flow B starts when flow A is halfway done; after A leaves, B speeds
	// up. B moves 125 MB: 0.5s at 500 Mbps (31.25 MB) then the rest at
	// 1 Gbps (~0.75s) → ~1.25s total.
	topo := mustStar(t, 3, Gbps)
	eng := sim.New()
	net := NewNetwork(eng, topo, Config{})
	h := topo.Hosts()
	if _, err := net.StartFlow(FlowSpec{Src: h[0], Dst: h[2], SrcPort: 1, DstPort: 2, SizeBytes: 62_500_000}); err != nil {
		t.Fatal(err)
	}
	var durB time.Duration
	eng.After(500*time.Millisecond, func() {
		if _, err := net.StartFlow(FlowSpec{Src: h[1], Dst: h[2], SrcPort: 1, DstPort: 2, SizeBytes: 125_000_000,
			OnComplete: func(f *Flow) { durB = time.Duration(f.End() - f.Start()) }}); err != nil {
			t.Error(err)
		}
	})
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	// A has 62.5MB: alone 0-0.5s moves 62.5MB? No: 0.5s at 1Gbps = 62.5MB,
	// so A finishes exactly as B starts; B then runs alone at 1 Gbps → 1s.
	// Verify the behaviourally important part: B's duration is within
	// [1s, 2s] and its rate history shows at most two segments.
	if durB < time.Second-10*time.Millisecond || durB > 2*time.Second {
		t.Errorf("flow B duration = %v", durB)
	}
}

func TestOversubscribedUplinkBottleneck(t *testing.T) {
	// 2 racks × 2 hosts, 1 Gbps access, 1 Gbps uplink. Two cross-rack
	// flows share the uplink → 500 Mbps each.
	topo, err := MultiRack(2, 2, Gbps, Gbps)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	net := NewNetwork(eng, topo, Config{})
	h := topo.Hosts()
	var durs []time.Duration
	for i := 0; i < 2; i++ {
		if _, err := net.StartFlow(FlowSpec{Src: h[i], Dst: h[2+i], SrcPort: 1, DstPort: 2, SizeBytes: 125_000_000,
			OnComplete: func(f *Flow) { durs = append(durs, time.Duration(f.End()-f.Start())) }}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	for _, d := range durs {
		if math.Abs(d.Seconds()-2.0) > 0.01 {
			t.Errorf("cross-rack flow duration = %v, want ~2s (uplink shared)", d)
		}
	}
}

func TestLoopbackFlow(t *testing.T) {
	topo := mustStar(t, 2, Gbps)
	eng := sim.New()
	net := NewNetwork(eng, topo, Config{LoopbackBps: 10 * Gbps})
	h := topo.Hosts()
	var dur time.Duration
	if _, err := net.StartFlow(FlowSpec{Src: h[0], Dst: h[0], SrcPort: 1, DstPort: 2, SizeBytes: 125_000_000,
		OnComplete: func(f *Flow) { dur = time.Duration(f.End() - f.Start()) }}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	// 1 Gb at 10 Gbps = 100 ms (plus 10 µs loopback latency).
	if math.Abs(dur.Seconds()-0.1) > 0.001 {
		t.Errorf("loopback duration = %v, want ~100ms", dur)
	}
}

func TestFlowValidation(t *testing.T) {
	topo := mustStar(t, 2, Gbps)
	eng := sim.New()
	net := NewNetwork(eng, topo, Config{})
	h := topo.Hosts()
	// Switch endpoints rejected (switch is node id of "core").
	var swID NodeID = -1
	for i := 0; i < topo.NumNodes(); i++ {
		if !topo.IsHost(NodeID(i)) {
			swID = NodeID(i)
			break
		}
	}
	if _, err := net.StartFlow(FlowSpec{Src: swID, Dst: h[0], SizeBytes: 1}); err == nil {
		t.Error("switch source accepted")
	}
	if _, err := net.StartFlow(FlowSpec{Src: h[0], Dst: h[1], SizeBytes: -1}); err == nil {
		t.Error("negative size accepted")
	}
}

func TestTapObservesLifecycle(t *testing.T) {
	topo := mustStar(t, 2, Gbps)
	eng := sim.New()
	net := NewNetwork(eng, topo, Config{})
	h := topo.Hosts()
	tap := &countingTap{}
	net.AddTap(tap)
	if _, err := net.StartFlow(FlowSpec{Src: h[0], Dst: h[1], SrcPort: 5, DstPort: 6, SizeBytes: 1000}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if tap.started != 1 || tap.completed != 1 {
		t.Errorf("tap saw %d starts, %d completions; want 1, 1", tap.started, tap.completed)
	}
	if net.Completed() != 1 || net.TotalBytes() != 1000 {
		t.Errorf("network stats: %d flows, %v bytes", net.Completed(), net.TotalBytes())
	}
}

type countingTap struct{ started, completed int }

func (c *countingTap) FlowStarted(*Flow)   { c.started++ }
func (c *countingTap) FlowCompleted(*Flow) { c.completed++ }

func TestSegmentsRecordRateHistory(t *testing.T) {
	topo := mustStar(t, 3, Gbps)
	eng := sim.New()
	net := NewNetwork(eng, topo, Config{})
	h := topo.Hosts()
	var segs []RateSegment
	if _, err := net.StartFlow(FlowSpec{Src: h[0], Dst: h[2], SrcPort: 1, DstPort: 2, SizeBytes: 250_000_000,
		OnComplete: func(f *Flow) { segs = f.Segments() }}); err != nil {
		t.Fatal(err)
	}
	// A competing flow arrives at 0.5s, shifting the first flow's rate.
	eng.After(500*time.Millisecond, func() {
		if _, err := net.StartFlow(FlowSpec{Src: h[1], Dst: h[2], SrcPort: 1, DstPort: 2, SizeBytes: 250_000_000}); err != nil {
			t.Error(err)
		}
	})
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("segments = %d, want >= 2 (rate change)", len(segs))
	}
	if segs[0].RateBps <= segs[1].RateBps {
		t.Errorf("expected rate drop: %v -> %v", segs[0].RateBps, segs[1].RateBps)
	}
}

func TestByteConservationManyFlows(t *testing.T) {
	topo := mustStar(t, 8, Gbps)
	eng := sim.New()
	net := NewNetwork(eng, topo, Config{})
	h := topo.Hosts()
	var total int64
	var count int
	for i := 0; i < 50; i++ {
		size := int64(1000 * (i + 1))
		total += size
		src, dst := h[i%8], h[(i+3)%8]
		delay := time.Duration(i) * 10 * time.Millisecond
		eng.After(delay, func() {
			if _, err := net.StartFlow(FlowSpec{Src: src, Dst: dst, SrcPort: 1, DstPort: 2, SizeBytes: size,
				OnComplete: func(*Flow) { count++ }}); err != nil {
				t.Error(err)
			}
		})
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if count != 50 {
		t.Errorf("completed %d flows, want 50", count)
	}
	if net.TotalBytes() != float64(total) {
		t.Errorf("delivered %v bytes, want %d", net.TotalBytes(), total)
	}
	if net.ActiveFlows() != 0 {
		t.Errorf("%d flows still active after drain", net.ActiveFlows())
	}
}

func TestSlowStartPenalty(t *testing.T) {
	// Same 1 MB flow with and without the slow-start model; the modelled
	// flow takes extra round trips.
	run := func(cfg Config) time.Duration {
		topo := mustStar(t, 2, Gbps)
		eng := sim.New()
		net := NewNetwork(eng, topo, cfg)
		h := topo.Hosts()
		var dur time.Duration
		if _, err := net.StartFlow(FlowSpec{Src: h[0], Dst: h[1], SrcPort: 1, DstPort: 2, SizeBytes: 1 << 20,
			OnComplete: func(f *Flow) { dur = time.Duration(f.End() - f.Start()) }}); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.RunAll(); err != nil {
			t.Fatal(err)
		}
		return dur
	}
	plain := run(Config{})
	ss := run(Config{ModelSlowStart: true})
	if ss <= plain {
		t.Fatalf("slow start did not lengthen the flow: %v vs %v", ss, plain)
	}
	// 1 MiB / 14480 B IW: ceil(log2(1+72.4)) = 7 RTTs of 200 µs = 1.4 ms.
	extra := ss - plain
	if extra != 1400*time.Microsecond {
		t.Errorf("slow-start penalty = %v, want 1.4ms", extra)
	}
}

func TestSlowStartZeroSize(t *testing.T) {
	if p := slowStartPenaltyNs(0, 100_000); p != 0 {
		t.Errorf("penalty for empty flow = %d", p)
	}
	// One-window flow costs a single RTT.
	if p := slowStartPenaltyNs(1000, 100_000); p != 200_000 {
		t.Errorf("penalty for tiny flow = %d, want one RTT", p)
	}
}

func TestUtilizationProbe(t *testing.T) {
	topo, err := MultiRack(2, 2, Gbps, Gbps)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	net := NewNetwork(eng, topo, Config{})
	h := topo.Hosts()
	// Two cross-rack flows saturate the uplink for ~2s.
	for i := 0; i < 2; i++ {
		if _, err := net.StartFlow(FlowSpec{Src: h[i], Dst: h[2+i], SrcPort: i, DstPort: 80, SizeBytes: 125_000_000}); err != nil {
			t.Fatal(err)
		}
	}
	var uplinks []LinkID
	for i, l := range topo.Links() {
		if topo.Name(l.To) == "core" {
			uplinks = append(uplinks, LinkID(i))
		}
	}
	probe := NewUtilizationProbe(net, uplinks, 100_000_000)
	probe.Start()
	probe.Start() // idempotent
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(probe.Samples()) < 10 {
		t.Fatalf("samples = %d, want ≥10 over ~2s at 100ms", len(probe.Samples()))
	}
	peaks := probe.PeakUtilization()
	sawSaturated := false
	for _, p := range peaks {
		if p > 1.000001 {
			t.Errorf("peak utilization %v above 1", p)
		}
		if p > 0.99 {
			sawSaturated = true
		}
	}
	if !sawSaturated {
		t.Error("cross-rack load never saturated an uplink")
	}
	busy := probe.BusyFraction(0.95)
	anyBusy := false
	for _, b := range busy {
		if b > 0 {
			anyBusy = true
		}
	}
	if !anyBusy {
		t.Error("busy fraction zero despite saturation")
	}
	means := probe.MeanUtilization()
	if len(means) != len(uplinks) {
		t.Errorf("means length = %d", len(means))
	}
}

func TestUtilizationProbeAllLinksDefault(t *testing.T) {
	topo := mustStar(t, 2, Gbps)
	eng := sim.New()
	net := NewNetwork(eng, topo, Config{})
	probe := NewUtilizationProbe(net, nil, 0)
	if got, want := len(probe.Links()), len(topo.Links()); got != want {
		t.Errorf("probed links = %d, want all %d", got, want)
	}
	probe.Start()
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(probe.Samples()) == 0 {
		t.Error("no samples on idle network")
	}
}
