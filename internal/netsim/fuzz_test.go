package netsim

import "testing"

// FuzzTopologyBuild drives the three fabric constructors with arbitrary
// dimensions. Construction must never panic: it either fails with an
// error or yields a topology whose hosts are all mutually routable and
// whose links all carry positive capacity.
func FuzzTopologyBuild(f *testing.F) {
	f.Add(uint8(0), 17, 2, 8, 1.0, 10.0)
	f.Add(uint8(1), 0, 4, 4, 1.0, 4.0)
	f.Add(uint8(2), 3, 1, 6, 2.5, 0.0)
	f.Fuzz(func(t *testing.T, fabric uint8, hosts, racks, k int, hostGbps, uplinkGbps float64) {
		// Bound the dimensions so a single case stays cheap; the
		// constructors' rejection paths still see negatives and zeros.
		if hosts > 128 || hosts < -128 || racks > 16 || racks < -16 || k > 8 || k < -8 {
			t.Skip()
		}
		var (
			topo *Topology
			err  error
		)
		switch fabric % 3 {
		case 0:
			topo, err = Star(hosts, hostGbps*Gbps)
		case 1:
			topo, err = MultiRack(racks, hosts, hostGbps*Gbps, uplinkGbps*Gbps)
		case 2:
			topo, err = FatTree(k, hostGbps*Gbps)
		}
		if err != nil {
			return
		}
		if topo.NumNodes() <= 0 {
			t.Fatalf("built topology with %d nodes and no error", topo.NumNodes())
		}
		for i, l := range topo.Links() {
			if l.CapacityBps <= 0 {
				t.Fatalf("link %d built with capacity %v", i, l.CapacityBps)
			}
		}
		hostIDs := topo.Hosts()
		for _, src := range hostIDs {
			for _, dst := range hostIDs {
				if src == dst {
					continue
				}
				path, err := topo.Path(src, dst, 0)
				if err != nil {
					t.Fatalf("no path %d -> %d in freshly built fabric: %v", src, dst, err)
				}
				if len(path) == 0 {
					t.Fatalf("empty path %d -> %d", src, dst)
				}
			}
		}
	})
}
