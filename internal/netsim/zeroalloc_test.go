package netsim

import (
	"testing"

	"keddah/internal/sim"
)

// TestSteadyStateZeroAlloc is the tentpole's end-state guarantee: once a
// pre-sized network has warmed up — slot slabs, per-slot completion
// timers, the segment chunk pool, the path arena and allocator scratch
// all populated — a full capture cycle (start flows by id, activate,
// reallocate under max-min fairness, complete, recycle) performs zero
// heap allocations.
func TestSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under the race detector")
	}
	topo := mustStar(t, 9, Gbps)
	eng := sim.New()
	net := NewNetwork(eng, topo, Config{ExpectedFlows: 64})
	hosts := topo.Hosts()

	port := 1000
	batch := func() {
		for i := 0; i < 32; i++ {
			src := hosts[i%len(hosts)]
			dst := hosts[(i+1+i/len(hosts))%len(hosts)]
			if _, err := net.StartFlowID(FlowSpec{
				Src: src, Dst: dst, SrcPort: port + i, DstPort: 80, SizeBytes: 4 << 20,
			}); err != nil {
				t.Fatal(err)
			}
		}
		port += 32
		if _, err := eng.RunAll(); err != nil {
			t.Fatal(err)
		}
	}
	batch() // warm-up: populate every slab and pool

	avg := testing.AllocsPerRun(10, batch)
	if avg != 0 {
		t.Errorf("steady-state capture loop allocates %v times per batch, want 0", avg)
	}
	if err := net.VerifyState(); err != nil {
		t.Fatal(err)
	}
}

// TestSteadyStateZeroAllocTCP extends the guarantee to the TCP transport:
// the per-slot TCP arrays, the per-slot persistent RTO timers and the
// global tick timer are all warmed by a first batch driven deep into
// incast (every flow funnels into one host, so the warm-up provokes both
// fast retransmits and RTO stalls, forcing every slot's RTO timer into
// existence), after which repeated batches allocate nothing.
func TestSteadyStateZeroAllocTCP(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under the race detector")
	}
	topo := mustStar(t, 9, Gbps)
	eng := sim.New()
	net := NewNetwork(eng, topo, Config{Transport: "tcp", ExpectedFlows: 64})
	hosts := topo.Hosts()

	port := 1000
	batch := func() {
		for i := 0; i < 32; i++ {
			if _, err := net.StartFlowID(FlowSpec{
				Src: hosts[1+i%(len(hosts)-1)], Dst: hosts[0], SrcPort: port + i, DstPort: 13562, SizeBytes: 512 << 10,
			}); err != nil {
				t.Fatal(err)
			}
		}
		port += 32
		if _, err := eng.RunAll(); err != nil {
			t.Fatal(err)
		}
	}
	batch() // warm-up: populate slabs, TCP slot arrays and RTO timers

	rtx, rto := net.TCPStats()
	if rtx == 0 || rto == 0 {
		t.Fatalf("warm-up batch saw %d fast rtx / %d RTOs — the workload is not exercising the loss paths", rtx, rto)
	}
	avg := testing.AllocsPerRun(10, batch)
	if avg != 0 {
		t.Errorf("steady-state TCP capture loop allocates %v times per batch, want 0", avg)
	}
	if err := net.VerifyState(); err != nil {
		t.Fatal(err)
	}
}
