package netsim

import (
	"testing"

	"keddah/internal/sim"
)

// TestSteadyStateZeroAlloc is the tentpole's end-state guarantee: once a
// pre-sized network has warmed up — slot slabs, per-slot completion
// timers, the segment chunk pool, the path arena and allocator scratch
// all populated — a full capture cycle (start flows by id, activate,
// reallocate under max-min fairness, complete, recycle) performs zero
// heap allocations.
func TestSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under the race detector")
	}
	topo := mustStar(t, 9, Gbps)
	eng := sim.New()
	net := NewNetwork(eng, topo, Config{ExpectedFlows: 64})
	hosts := topo.Hosts()

	port := 1000
	batch := func() {
		for i := 0; i < 32; i++ {
			src := hosts[i%len(hosts)]
			dst := hosts[(i+1+i/len(hosts))%len(hosts)]
			if _, err := net.StartFlowID(FlowSpec{
				Src: src, Dst: dst, SrcPort: port + i, DstPort: 80, SizeBytes: 4 << 20,
			}); err != nil {
				t.Fatal(err)
			}
		}
		port += 32
		if _, err := eng.RunAll(); err != nil {
			t.Fatal(err)
		}
	}
	batch() // warm-up: populate every slab and pool

	avg := testing.AllocsPerRun(10, batch)
	if avg != 0 {
		t.Errorf("steady-state capture loop allocates %v times per batch, want 0", avg)
	}
	if err := net.VerifyState(); err != nil {
		t.Fatal(err)
	}
}
