package netsim

import (
	"errors"
	"math"
	"testing"
)

// Regression: the builders used to accept non-positive (and NaN/Inf)
// capacities silently; flows on such links never drained or produced NaN
// rates in the allocator. Build now rejects them with ErrBadLink.
func TestBuildersRejectBadCapacity(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Topology, error)
	}{
		{"star zero", func() (*Topology, error) { return Star(5, 0) }},
		{"star negative", func() (*Topology, error) { return Star(5, -Gbps) }},
		{"star NaN", func() (*Topology, error) { return Star(5, math.NaN()) }},
		{"star +Inf", func() (*Topology, error) { return Star(5, math.Inf(1)) }},
		{"multirack zero uplink", func() (*Topology, error) { return MultiRack(2, 4, Gbps, 0) }},
		{"multirack negative host", func() (*Topology, error) { return MultiRack(2, 4, -1, 10*Gbps) }},
		{"fattree zero", func() (*Topology, error) { return FatTree(4, 0) }},
		{"hand-built negative latency", func() (*Topology, error) {
			b := NewBuilder()
			a := b.AddHost("a", 0)
			c := b.AddHost("b", 0)
			b.Connect(a, c, Gbps, -1)
			return b.Build()
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			topo, err := c.build()
			if !errors.Is(err, ErrBadLink) {
				t.Fatalf("err = %v, want ErrBadLink", err)
			}
			if topo != nil {
				t.Fatal("bad topology returned non-nil")
			}
		})
	}
}

// Valid capacities must keep building: the validation only rejects the
// degenerate cases.
func TestBuildersAcceptGoodCapacity(t *testing.T) {
	if _, err := Star(5, Gbps); err != nil {
		t.Fatalf("Star: %v", err)
	}
	if _, err := MultiRack(2, 4, Gbps, 10*Gbps); err != nil {
		t.Fatalf("MultiRack: %v", err)
	}
	if _, err := FatTree(4, 10*Gbps); err != nil {
		t.Fatalf("FatTree: %v", err)
	}
}
