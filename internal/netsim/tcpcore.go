package netsim

import (
	"fmt"
	"math"
	"slices"

	"keddah/internal/sim"
)

// tcpCore is the TCP transport attached to the struct-of-arrays flow
// storage when Config.Transport is "tcp". Every active flow carries a TCP
// state machine (slow start, AIMD congestion avoidance, fast retransmit,
// RTO with exponential backoff) and every link a fluid droptail queue; a
// single persistent ack-clock timer steps all flows once per tick and the
// existing allocator machinery installs demand-limited water-filling
// rates, where a flow's demand is cwnd/srtt.
//
// The model is the classic fluid approximation of TCP (Misra/Gong/Towsley
// style): goodput is charged at the allocated (capacity-feasible) rate,
// queues integrate the surplus of offered window-demand over capacity, and
// a queue hitting its buffer timestamps an overflow that every flow
// crossing the link reacts to at its next tick — synchronized loss, which
// is exactly the mechanism behind shuffle fan-in incast collapse.
//
// Everything runs on the network's sim.Engine with persistent timers (one
// global tick, one RTO timer per slot, created on first use like the
// completion timers), so the steady-state loop allocates nothing and
// same-seed runs are bit-identical. When tcpCore is nil (fluid mode) every
// hook in soaCore degrades to a nil check and the fluid trajectory is
// byte-identical to a build without this file.
type tcpCore struct {
	c   *soaCore
	cfg TCPConfig

	// Per-slot state, parallel to soaCore's slot arrays.
	cwnd     []float64 // congestion window, bytes
	ssthresh []float64 // slow-start threshold, bytes
	cwndCap  []float64 // path BDP + bottleneck buffer, bytes
	baseRTT  []float64 // propagation round trip, seconds
	srtt     []float64 // smoothed RTT (base + queue delay), seconds
	demand   []float64 // offered rate cwnd*8/srtt, bps
	acked    []float64 // bytes delivered since the last tick
	lossAt   []sim.Time
	tstate   []uint8
	backoff  []uint8
	// rtoEv[s] is the slot's persistent retransmission timer, created on
	// the slot's first whole-window loss and re-armed forever after.
	rtoEv []sim.Event

	// Per-link droptail queue model.
	qBytes     []float64 // current queue depth, bytes
	offeredBps []float64 // sum of crossing flows' demand, bps
	overflowAt []sim.Time
	lastQ      sim.Time

	tickEv sim.Event

	// Cumulative event counts, mirrored into telemetry when attached.
	fastRtx  uint64
	rtoFired uint64

	tickCb func(uint64)
	rtoCb  func(uint64)
}

// TCP flow states.
const (
	tcpSlowStart uint8 = iota
	tcpAvoid
	tcpRTOWait
)

// tcpMaxBackoff caps RTO exponential backoff at 2^6 = 64x.
const tcpMaxBackoff = 6

func newTCPCore(c *soaCore) *tcpCore {
	t := &tcpCore{
		c:          c,
		cfg:        c.cfg.TCP.withDefaults(),
		qBytes:     make([]float64, len(c.topo.links)),
		offeredBps: make([]float64, len(c.topo.links)),
		overflowAt: make([]sim.Time, len(c.topo.links)),
	}
	for i := range t.overflowAt {
		t.overflowAt[i] = -1
	}
	t.tickCb = t.tick
	t.rtoCb = t.rtoFire
	t.tickEv = c.eng.NewTimer(t.tickCb, 0)
	return t
}

// reserve pre-sizes the per-slot arrays alongside soaCore.reserve.
func (t *tcpCore) reserve(peak int) {
	t.cwnd = growCap(t.cwnd, peak)
	t.ssthresh = growCap(t.ssthresh, peak)
	t.cwndCap = growCap(t.cwndCap, peak)
	t.baseRTT = growCap(t.baseRTT, peak)
	t.srtt = growCap(t.srtt, peak)
	t.demand = growCap(t.demand, peak)
	t.acked = growCap(t.acked, peak)
	t.lossAt = growCap(t.lossAt, peak)
	t.tstate = growCap(t.tstate, peak)
	t.backoff = growCap(t.backoff, peak)
	t.rtoEv = growCap(t.rtoEv, peak)
}

// appendSlot extends the per-slot arrays for a freshly appended slot.
func (t *tcpCore) appendSlot() {
	t.cwnd = append(t.cwnd, 0)
	t.ssthresh = append(t.ssthresh, 0)
	t.cwndCap = append(t.cwndCap, 0)
	t.baseRTT = append(t.baseRTT, 0)
	t.srtt = append(t.srtt, 0)
	t.demand = append(t.demand, 0)
	t.acked = append(t.acked, 0)
	t.lossAt = append(t.lossAt, 0)
	t.tstate = append(t.tstate, tcpSlowStart)
	t.backoff = append(t.backoff, 0)
	t.rtoEv = append(t.rtoEv, sim.Event{})
}

// refreshPath recomputes the path-derived window parameters: the base RTT
// from topology latencies and the window cap (path BDP plus the bottleneck
// buffer — more than this can never be in flight). Called on activation
// and after reroutes.
func (t *tcpCore) refreshPath(s int32) {
	path := t.c.path(s)
	rtt := 2 * float64(t.c.topo.PathLatencyNs(path)) / 1e9
	if rtt <= 0 {
		rtt = 1e-6 // zero-latency fabric: floor the RTT at 1 µs
	}
	t.baseRTT[s] = rtt
	bneck := math.Inf(1)
	for _, lid := range path {
		if c := t.c.topo.links[lid].CapacityBps; c < bneck {
			bneck = c
		}
	}
	if math.IsInf(bneck, 1) {
		bneck = t.c.cfg.LoopbackBps
	}
	w := bneck/8*rtt + t.cfg.BufferBytes
	if w < 2*t.cfg.MSSBytes {
		w = 2 * t.cfg.MSSBytes
	}
	t.cwndCap[s] = w
}

// onActivate initialises TCP state when a flow joins the active set.
func (t *tcpCore) onActivate(s int32) {
	now := t.c.eng.Now()
	t.refreshPath(s)
	iw := t.cfg.InitWindowBytes
	if iw > t.cwndCap[s] {
		iw = t.cwndCap[s]
	}
	if iw < t.cfg.MSSBytes {
		iw = t.cfg.MSSBytes
	}
	t.cwnd[s] = iw
	t.ssthresh[s] = t.cwndCap[s]
	t.srtt[s] = t.baseRTT[s]
	t.demand[s] = t.cwnd[s] * 8 / t.srtt[s]
	t.acked[s] = 0
	t.lossAt[s] = now
	t.tstate[s] = tcpSlowStart
	t.backoff[s] = 0
	if !t.tickEv.Pending() {
		_ = t.tickEv.Schedule(now + sim.Time(t.cfg.TickNs))
	}
}

// onReroute re-derives path parameters after a fault moved the flow and
// clamps the window into the new path's bounds.
func (t *tcpCore) onReroute(s int32) {
	t.refreshPath(s)
	if t.cwnd[s] > t.cwndCap[s] {
		t.cwnd[s] = t.cwndCap[s]
	}
	if t.cwnd[s] < t.cfg.MSSBytes {
		t.cwnd[s] = t.cfg.MSSBytes
	}
}

// onRemove releases TCP state when a flow leaves the active set.
func (t *tcpCore) onRemove(s int32) {
	t.rtoEv[s].Cancel()
	t.demand[s] = 0
	t.acked[s] = 0
}

// settleQueues integrates every link's droptail queue over the interval
// since the last settle: depth grows by (offered demand − capacity) and a
// queue pinned at its buffer while oversubscribed timestamps an overflow
// that flows crossing the link treat as loss at their next tick.
func (t *tcpCore) settleQueues(now sim.Time) {
	dt := (now - t.lastQ).Seconds()
	t.lastQ = now
	if dt <= 0 {
		return
	}
	maxQ := 0.0
	for l := range t.qBytes {
		net := (t.offeredBps[l] - t.c.topo.links[l].CapacityBps) / 8
		q := t.qBytes[l] + net*dt
		if q >= t.cfg.BufferBytes {
			q = t.cfg.BufferBytes
			if net > 0 {
				t.overflowAt[l] = now
			}
		}
		if q < 0 {
			q = 0
		}
		t.qBytes[l] = q
		if q > maxQ {
			maxQ = q
		}
	}
	if maxQ > 0 {
		t.c.nw.metrics.TCPQueueMaxBytes.SetMax(maxQ)
	}
}

// updateOffered rebuilds the per-link offered load from current demands.
// Called by reallocate after demands changed, so queue integration over
// the *next* interval uses the new windows.
func (t *tcpCore) updateOffered() {
	for i := range t.offeredBps {
		t.offeredBps[i] = 0
	}
	for _, s := range t.c.active {
		d := t.demand[s]
		if d <= 0 {
			continue
		}
		for _, lid := range t.c.path(s) {
			t.offeredBps[lid] += d
		}
	}
}

// clearOffered zeroes the offered load once the active set drains, so
// queues integrate down to empty across idle gaps.
func (t *tcpCore) clearOffered() {
	for i := range t.offeredBps {
		t.offeredBps[i] = 0
	}
}

// tick is the global ack clock: charge progress (settle), step every
// active flow's state machine, then trigger one coalesced reallocation.
func (t *tcpCore) tick(uint64) {
	c := t.c
	if len(c.active) == 0 {
		return // re-armed by the next activation
	}
	c.settle()
	now := c.eng.Now()
	for _, s := range c.active {
		t.step(s, now)
	}
	c.markDirty()
	_ = t.tickEv.Schedule(now + sim.Time(t.cfg.TickNs))
}

// pathLossSince reports whether any link on s's path overflowed after the
// flow's last loss reaction — at most one window reduction per overflow
// episode per tick, for every flow sharing the link (synchronized loss).
func (t *tcpCore) pathLossSince(s int32) bool {
	loss := t.lossAt[s]
	for _, lid := range t.c.path(s) {
		if t.overflowAt[lid] > loss {
			return true
		}
	}
	return false
}

// pathQueueDelay sums the queueing delay along s's path in seconds.
func (t *tcpCore) pathQueueDelay(s int32) float64 {
	var d float64
	for _, lid := range t.c.path(s) {
		d += t.qBytes[lid] * 8 / t.c.topo.links[lid].CapacityBps
	}
	return d
}

// step advances one flow's state machine by one tick. Window growth is
// driven by the bytes actually delivered since the last tick (slow start:
// one byte per acked byte; avoidance: MSS²/cwnd per acked MSS), so the
// dynamics do not depend on the tick cadence.
func (t *tcpCore) step(s int32, now sim.Time) {
	if t.tstate[s] == tcpRTOWait {
		t.acked[s] = 0
		return
	}
	acked := t.acked[s]
	t.acked[s] = 0
	if t.pathLossSince(s) {
		t.onLoss(s, now)
		return
	}
	if acked > 0 {
		t.backoff[s] = 0
		switch t.tstate[s] {
		case tcpSlowStart:
			t.cwnd[s] += acked
			if t.cwnd[s] >= t.ssthresh[s] {
				t.tstate[s] = tcpAvoid
			}
		case tcpAvoid:
			t.cwnd[s] += t.cfg.MSSBytes * acked / t.cwnd[s]
		}
		if t.cwnd[s] > t.cwndCap[s] {
			t.cwnd[s] = t.cwndCap[s]
		}
		t.c.nw.metrics.TCPCwndMaxBytes.SetMax(t.cwnd[s])
	}
	rtt := t.baseRTT[s] + t.pathQueueDelay(s)
	t.srtt[s] += (rtt - t.srtt[s]) / 8
	t.demand[s] = t.cwnd[s] * 8 / t.srtt[s]
}

// onLoss reacts to queue overflow on the flow's path. A window of at least
// four segments has enough duplicate acks to fast-retransmit: halve and
// keep transmitting. A smaller window lost everything in flight — the
// connection stalls silent until its retransmission timer fires.
func (t *tcpCore) onLoss(s int32, now sim.Time) {
	t.lossAt[s] = now
	mss := t.cfg.MSSBytes
	half := t.cwnd[s] / 2
	if half < 2*mss {
		half = 2 * mss
	}
	t.ssthresh[s] = half
	if t.cwnd[s] >= 4*mss {
		t.cwnd[s] = half
		t.tstate[s] = tcpAvoid
		rtt := t.baseRTT[s] + t.pathQueueDelay(s)
		t.srtt[s] += (rtt - t.srtt[s]) / 8
		t.demand[s] = t.cwnd[s] * 8 / t.srtt[s]
		t.fastRtx++
		t.c.nw.metrics.TCPFastRetransmits.Inc()
		return
	}
	t.tstate[s] = tcpRTOWait
	t.demand[s] = 0
	t.armRTO(s, now)
}

// armRTO schedules the slot's persistent retransmission timer at
// max(RTOmin, 2·srtt) · 2^backoff, capped at RTOmax.
func (t *tcpCore) armRTO(s int32, now sim.Time) {
	rto := 2 * t.srtt[s] * 1e9
	if rto < float64(t.cfg.RTOMinNs) {
		rto = float64(t.cfg.RTOMinNs)
	}
	rto *= float64(int64(1) << t.backoff[s])
	if rto > float64(t.cfg.RTOMaxNs) {
		rto = float64(t.cfg.RTOMaxNs)
	}
	if !t.rtoEv[s].Valid() {
		t.rtoEv[s] = t.c.eng.NewTimer(t.rtoCb, uint64(uint32(s)))
	}
	_ = t.rtoEv[s].Schedule(now + sim.Time(int64(rto)))
}

// rtoFire ends an RTO stall: the window collapses to one segment and the
// flow probes again from slow start, with the next timeout backed off
// exponentially until progress resets it.
func (t *tcpCore) rtoFire(arg uint64) {
	s := int32(uint32(arg))
	c := t.c
	if c.state[s] != slotActive || t.tstate[s] != tcpRTOWait {
		return
	}
	now := c.eng.Now()
	c.settle()
	t.rtoFired++
	c.nw.metrics.TCPTimeouts.Inc()
	if t.backoff[s] < tcpMaxBackoff {
		t.backoff[s]++
	}
	t.cwnd[s] = t.cfg.MSSBytes
	t.tstate[s] = tcpSlowStart
	t.lossAt[s] = now
	t.acked[s] = 0
	t.demand[s] = t.cwnd[s] * 8 / t.srtt[s]
	c.markDirty()
}

// rates installs demand-limited max-min water-filling into c.rates: the
// fluid allocator's progressive filling, except a flow whose demand
// (cwnd/srtt) is below the bottleneck fair share freezes at its demand —
// window-limited flows cannot use their share, and the slack redistributes
// to flows that can. Stalled flows (RTO wait, demand 0) claim nothing.
func (t *tcpCore) rates() {
	c := t.c
	for i, l := range c.topo.links {
		c.remCap[i] = l.CapacityBps
		c.cnt[i] = len(c.linkFlows[i])
	}
	remaining := len(c.active)
	for i, s := range c.active {
		if t.demand[s] <= 0 {
			c.rates[i] = 0
			c.frozen[i] = true
			remaining--
			for _, lid := range c.path(s) {
				c.cnt[lid]--
			}
		}
	}
	for remaining > 0 {
		best := -1
		bestShare := math.Inf(1)
		for i, cn := range c.cnt {
			if cn == 0 {
				continue
			}
			share := c.remCap[i] / float64(cn)
			if share < bestShare {
				bestShare = share
				best = i
			}
		}
		if best < 0 {
			// Stranded (no loaded links): the demand itself is the cap.
			for i, s := range c.active {
				if !c.frozen[i] {
					c.rates[i] = t.demand[s]
					c.frozen[i] = true
					remaining--
				}
			}
			break
		}
		// Demand-limited flows freeze first: demand ≤ the current fair
		// share means the flow cannot fill its share anywhere, and its
		// claim must be released before shares are final. Freezing at
		// demand keeps every link feasible: the share only grows for the
		// flows left behind.
		froze := false
		for i, s := range c.active {
			if c.frozen[i] || t.demand[s] > bestShare {
				continue
			}
			d := t.demand[s]
			c.rates[i] = d
			c.frozen[i] = true
			remaining--
			froze = true
			for _, lid := range c.path(s) {
				c.remCap[lid] -= d
				if c.remCap[lid] < 0 {
					c.remCap[lid] = 0
				}
				c.cnt[lid]--
			}
		}
		if froze {
			continue // shares moved; re-pick the bottleneck
		}
		// No demand-limited flow left: the bottleneck's flows freeze at
		// the fair share, in active-list order for determinism (same
		// discipline as incrementalMaxMinRates).
		cand := c.freezeBuf[:0]
		for _, s := range c.linkFlows[best] {
			if !c.frozen[c.listIdx[s]] {
				cand = append(cand, s)
			}
		}
		sorted := true
		for i := 1; i < len(cand); i++ {
			if c.listIdx[cand[i-1]] > c.listIdx[cand[i]] {
				sorted = false
				break
			}
		}
		if !sorted {
			slices.SortFunc(cand, func(a, b int32) int {
				return int(c.listIdx[a]) - int(c.listIdx[b])
			})
		}
		for _, s := range cand {
			li := c.listIdx[s]
			c.rates[li] = bestShare
			c.frozen[li] = true
			remaining--
			for _, lid := range c.path(s) {
				c.remCap[lid] -= bestShare
				if c.remCap[lid] < 0 {
					c.remCap[lid] = 0
				}
				c.cnt[lid]--
			}
		}
		c.freezeBuf = cand[:0]
	}
}

// verify checks the TCP state machine's structural invariants: windows
// inside [MSS, BDP+buffer], thresholds and RTTs sane, stalled flows
// demand-free with a pending retransmission timer, queues inside their
// buffers. Wired into Network.VerifyState, so the invariants layer
// (keddah_checks) sweeps it during captures.
func (t *tcpCore) verify() error {
	c := t.c
	mss := t.cfg.MSSBytes
	for _, s := range c.active {
		if math.IsNaN(t.cwnd[s]) || t.cwnd[s] < mss*0.999 || t.cwnd[s] > t.cwndCap[s]*1.001 {
			return fmt.Errorf("netsim: flow %d cwnd %.1f outside [MSS %.0f, BDP+buffer %.1f]",
				c.fid[s], t.cwnd[s], mss, t.cwndCap[s])
		}
		if t.ssthresh[s] < 2*mss*0.999 {
			return fmt.Errorf("netsim: flow %d ssthresh %.1f below 2 MSS", c.fid[s], t.ssthresh[s])
		}
		if t.srtt[s] < t.baseRTT[s]*0.999 || math.IsNaN(t.srtt[s]) {
			return fmt.Errorf("netsim: flow %d srtt %.3gs below base RTT %.3gs", c.fid[s], t.srtt[s], t.baseRTT[s])
		}
		if t.demand[s] < 0 || math.IsNaN(t.demand[s]) {
			return fmt.Errorf("netsim: flow %d negative demand %.3g", c.fid[s], t.demand[s])
		}
		if t.backoff[s] > tcpMaxBackoff {
			return fmt.Errorf("netsim: flow %d RTO backoff %d beyond cap %d", c.fid[s], t.backoff[s], tcpMaxBackoff)
		}
		if t.tstate[s] == tcpRTOWait {
			if t.demand[s] != 0 {
				return fmt.Errorf("netsim: flow %d stalled in RTO but demands %.3g bps", c.fid[s], t.demand[s])
			}
			if !t.rtoEv[s].Pending() {
				return fmt.Errorf("netsim: flow %d stalled in RTO with no pending timer", c.fid[s])
			}
		}
	}
	for l, q := range t.qBytes {
		if math.IsNaN(q) || q < 0 || q > t.cfg.BufferBytes*1.001 {
			return fmt.Errorf("netsim: link %d queue %.1f outside [0, buffer %.0f]", l, q, t.cfg.BufferBytes)
		}
	}
	return nil
}
