// Package netsim is a flow-level discrete-event network simulator. It
// models hosts and switches connected by capacitated links, routes flows
// along shortest paths (with hash-based ECMP when multiple equal-cost
// next hops exist), and shares link bandwidth between concurrent flows by
// max-min fairness. It is the substrate that both the simulated Hadoop
// cluster and Keddah's synthetic traffic generator transmit over — the
// role ns-3 plays for the original toolchain.
package netsim

import (
	"fmt"
)

// NodeID identifies a node (host or switch) in a Topology.
type NodeID int

// LinkID identifies a directed link in a Topology.
type LinkID int

// Link is a directed, capacitated edge.
type Link struct {
	From, To NodeID
	// CapacityBps is the capacity in bits per second.
	CapacityBps float64
	// LatencyNs is the one-way propagation delay in nanoseconds.
	LatencyNs int64
}

// Topology is an immutable node/link graph with precomputed equal-cost
// shortest-path routing.
type Topology struct {
	names  []string
	isHost []bool
	rackOf []int
	links  []Link
	adj    [][]LinkID // outgoing links per node
	// nextHops[src][dst] lists the outgoing LinkIDs that lie on some
	// shortest path from src to dst.
	nextHops [][][]LinkID
	hosts    []NodeID
}

// Builder accumulates nodes and links before routing is computed.
type Builder struct {
	t *Topology
}

// NewBuilder returns an empty topology builder.
func NewBuilder() *Builder {
	return &Builder{t: &Topology{}}
}

// AddHost adds an end host assigned to the given rack and returns its ID.
func (b *Builder) AddHost(name string, rack int) NodeID {
	return b.addNode(name, true, rack)
}

// AddSwitch adds a switch and returns its ID. Switches never source or
// sink flows.
func (b *Builder) AddSwitch(name string) NodeID {
	return b.addNode(name, false, -1)
}

func (b *Builder) addNode(name string, host bool, rack int) NodeID {
	id := NodeID(len(b.t.names))
	b.t.names = append(b.t.names, name)
	b.t.isHost = append(b.t.isHost, host)
	b.t.rackOf = append(b.t.rackOf, rack)
	b.t.adj = append(b.t.adj, nil)
	if host {
		b.t.hosts = append(b.t.hosts, id)
	}
	return id
}

// Connect adds a bidirectional link (two directed links) between a and b.
func (b *Builder) Connect(a, c NodeID, capacityBps float64, latencyNs int64) {
	b.addLink(a, c, capacityBps, latencyNs)
	b.addLink(c, a, capacityBps, latencyNs)
}

func (b *Builder) addLink(from, to NodeID, capacityBps float64, latencyNs int64) {
	id := LinkID(len(b.t.links))
	b.t.links = append(b.t.links, Link{From: from, To: to, CapacityBps: capacityBps, LatencyNs: latencyNs})
	b.t.adj[from] = append(b.t.adj[from], id)
}

// Build computes all-pairs equal-cost shortest-path next hops and returns
// the finished topology. One BFS on the reversed graph per destination
// gives distance-to-dst for every node; link u→v lies on a shortest path
// to dst iff distTo[v]+1 == distTo[u]. The reverse adjacency and BFS
// scratch are built once and reused across destinations, and each
// destination's next-hop lists are carved from a single arena — replay
// pipelines rebuild topologies per run, so Build sits on a measured path.
func (b *Builder) Build() (*Topology, error) {
	t := b.t
	n := len(t.names)
	if n == 0 {
		return nil, fmt.Errorf("netsim: empty topology")
	}
	t.nextHops = make([][][]LinkID, n)
	for src := 0; src < n; src++ {
		t.nextHops[src] = make([][]LinkID, n)
	}

	// Reverse adjacency, flat-packed: radj[v] lists nodes with a link
	// into v.
	deg := make([]int, n)
	for _, l := range t.links {
		deg[l.To]++
	}
	radjFlat := make([]NodeID, len(t.links))
	radj := make([][]NodeID, n)
	off := 0
	for v := 0; v < n; v++ {
		radj[v] = radjFlat[off : off : off+deg[v]]
		off += deg[v]
	}
	for _, l := range t.links {
		radj[l.To] = append(radj[l.To], l.From)
	}

	distTo := make([]int, n)
	queue := make([]NodeID, 0, n)
	for dst := 0; dst < n; dst++ {
		// BFS on the reversed graph: hop counts TO dst (-1 unreachable).
		for i := range distTo {
			distTo[i] = -1
		}
		distTo[dst] = 0
		queue = append(queue[:0], NodeID(dst))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range radj[u] {
				if distTo[v] < 0 {
					distTo[v] = distTo[u] + 1
					queue = append(queue, v)
				}
			}
		}

		// Fill next hops for every source from one arena sized by a
		// counting pass.
		total := 0
		for u := 0; u < n; u++ {
			if u == dst || distTo[u] < 0 {
				continue
			}
			for _, lid := range t.adj[u] {
				v := t.links[lid].To
				if distTo[v] >= 0 && distTo[v]+1 == distTo[u] {
					total++
				}
			}
		}
		arena := make([]LinkID, 0, total)
		for u := 0; u < n; u++ {
			if u == dst || distTo[u] < 0 {
				continue
			}
			start := len(arena)
			for _, lid := range t.adj[u] {
				v := t.links[lid].To
				if distTo[v] >= 0 && distTo[v]+1 == distTo[u] {
					arena = append(arena, lid)
				}
			}
			if len(arena) > start {
				t.nextHops[u][dst] = arena[start:len(arena):len(arena)]
			}
		}
	}
	// Validate host reachability.
	for _, a := range t.hosts {
		for _, c := range t.hosts {
			if a != c && len(t.nextHops[a][c]) == 0 {
				return nil, fmt.Errorf("netsim: host %s cannot reach host %s", t.names[a], t.names[c])
			}
		}
	}
	return t, nil
}

// NumNodes returns the total node count (hosts + switches).
func (t *Topology) NumNodes() int { return len(t.names) }

// Hosts returns the IDs of all end hosts in creation order.
func (t *Topology) Hosts() []NodeID {
	out := make([]NodeID, len(t.hosts))
	copy(out, t.hosts)
	return out
}

// Name returns the node's name.
func (t *Topology) Name(id NodeID) string { return t.names[id] }

// IsHost reports whether id is an end host.
func (t *Topology) IsHost(id NodeID) bool { return t.isHost[id] }

// Rack returns the rack index of a host (-1 for switches or rackless hosts).
func (t *Topology) Rack(id NodeID) int { return t.rackOf[id] }

// Links returns a copy of the directed link table.
func (t *Topology) Links() []Link {
	out := make([]Link, len(t.links))
	copy(out, t.links)
	return out
}

// Path returns the sequence of directed links from src to dst, choosing
// among equal-cost next hops by the given flow hash (deterministic ECMP).
func (t *Topology) Path(src, dst NodeID, hash uint64) ([]LinkID, error) {
	if src == dst {
		return nil, nil
	}
	var path []LinkID
	cur := src
	for cur != dst {
		hops := t.nextHops[cur][dst]
		if len(hops) == 0 {
			return nil, fmt.Errorf("netsim: no route %s -> %s", t.names[src], t.names[dst])
		}
		lid := hops[hash%uint64(len(hops))]
		path = append(path, lid)
		cur = t.links[lid].To
		if len(path) > len(t.names) {
			return nil, fmt.Errorf("netsim: routing loop %s -> %s", t.names[src], t.names[dst])
		}
	}
	return path, nil
}

// PathLatencyNs sums the propagation delay along a path.
func (t *Topology) PathLatencyNs(path []LinkID) int64 {
	var total int64
	for _, lid := range path {
		total += t.links[lid].LatencyNs
	}
	return total
}
