// Package netsim is a flow-level discrete-event network simulator. It
// models hosts and switches connected by capacitated links, routes flows
// along shortest paths (with hash-based ECMP when multiple equal-cost
// next hops exist), and shares link bandwidth between concurrent flows by
// max-min fairness. It is the substrate that both the simulated Hadoop
// cluster and Keddah's synthetic traffic generator transmit over — the
// role ns-3 plays for the original toolchain.
package netsim

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadLink is the typed error wrapped by Build when a link was added
// with a non-positive (or NaN) capacity or a negative latency. Builders
// used to accept such links silently; the flows they carried would then
// never drain (zero rate) or crash the allocator (NaN rates).
var ErrBadLink = errors.New("netsim: invalid link parameters")

// NodeID identifies a node (host or switch) in a Topology.
type NodeID int

// LinkID identifies a directed link in a Topology.
type LinkID int

// Link is a directed, capacitated edge.
type Link struct {
	From, To NodeID
	// CapacityBps is the capacity in bits per second.
	CapacityBps float64
	// LatencyNs is the one-way propagation delay in nanoseconds.
	LatencyNs int64
}

// Topology is a node/link graph with precomputed equal-cost shortest-path
// routing. The graph shape is fixed after Build, but per-link operational
// state (down links, degraded capacity) can change at runtime through
// SetLinkDown / SetLinkCapacityScale — the substrate fault injection
// drives. Routes are recomputed on every link up/down transition.
type Topology struct {
	names  []string
	isHost []bool
	rackOf []int
	links  []Link
	adj    [][]LinkID // outgoing links per node
	// nextHops[src][dst] lists the outgoing LinkIDs that lie on some
	// shortest path from src to dst.
	nextHops [][][]LinkID
	hosts    []NodeID
	// baseCap[l] is the as-built capacity of link l; links[l].CapacityBps
	// is the current (possibly degraded) capacity.
	baseCap []float64
	// linkDown[l] marks links administratively/faultily down; down links
	// carry no flows and are excluded from routing.
	linkDown []bool
}

// Builder accumulates nodes and links before routing is computed.
type Builder struct {
	t *Topology
}

// NewBuilder returns an empty topology builder.
func NewBuilder() *Builder {
	return &Builder{t: &Topology{}}
}

// AddHost adds an end host assigned to the given rack and returns its ID.
func (b *Builder) AddHost(name string, rack int) NodeID {
	return b.addNode(name, true, rack)
}

// AddSwitch adds a switch and returns its ID. Switches never source or
// sink flows.
func (b *Builder) AddSwitch(name string) NodeID {
	return b.addNode(name, false, -1)
}

func (b *Builder) addNode(name string, host bool, rack int) NodeID {
	id := NodeID(len(b.t.names))
	b.t.names = append(b.t.names, name)
	b.t.isHost = append(b.t.isHost, host)
	b.t.rackOf = append(b.t.rackOf, rack)
	b.t.adj = append(b.t.adj, nil)
	if host {
		b.t.hosts = append(b.t.hosts, id)
	}
	return id
}

// Connect adds a bidirectional link (two directed links) between a and b.
func (b *Builder) Connect(a, c NodeID, capacityBps float64, latencyNs int64) {
	b.addLink(a, c, capacityBps, latencyNs)
	b.addLink(c, a, capacityBps, latencyNs)
}

func (b *Builder) addLink(from, to NodeID, capacityBps float64, latencyNs int64) {
	id := LinkID(len(b.t.links))
	b.t.links = append(b.t.links, Link{From: from, To: to, CapacityBps: capacityBps, LatencyNs: latencyNs})
	b.t.adj[from] = append(b.t.adj[from], id)
}

// Build computes all-pairs equal-cost shortest-path next hops and returns
// the finished topology. One BFS on the reversed graph per destination
// gives distance-to-dst for every node; link u→v lies on a shortest path
// to dst iff distTo[v]+1 == distTo[u]. The reverse adjacency and BFS
// scratch are built once and reused across destinations, and each
// destination's next-hop lists are carved from a single arena — replay
// pipelines rebuild topologies per run, so Build sits on a measured path.
func (b *Builder) Build() (*Topology, error) {
	t := b.t
	n := len(t.names)
	if n == 0 {
		return nil, fmt.Errorf("netsim: empty topology")
	}
	// Every link must have a usable capacity and latency before routing:
	// Build is the single funnel all builders (Star, MultiRack, FatTree,
	// hand-assembled) pass through.
	for i, l := range t.links {
		if !(l.CapacityBps > 0) || math.IsInf(l.CapacityBps, 1) {
			return nil, fmt.Errorf("%w: link %d (%s -> %s) capacity %v bps",
				ErrBadLink, i, t.names[l.From], t.names[l.To], l.CapacityBps)
		}
		if l.LatencyNs < 0 {
			return nil, fmt.Errorf("%w: link %d (%s -> %s) negative latency %d ns",
				ErrBadLink, i, t.names[l.From], t.names[l.To], l.LatencyNs)
		}
	}
	t.baseCap = make([]float64, len(t.links))
	for i, l := range t.links {
		t.baseCap[i] = l.CapacityBps
	}
	t.linkDown = make([]bool, len(t.links))
	t.recomputeRoutes()
	// Validate host reachability (on the full, healthy graph).
	for _, a := range t.hosts {
		for _, c := range t.hosts {
			if a != c && len(t.nextHops[a][c]) == 0 {
				return nil, fmt.Errorf("netsim: host %s cannot reach host %s", t.names[a], t.names[c])
			}
		}
	}
	return t, nil
}

// recomputeRoutes rebuilds the all-pairs equal-cost next-hop tables over
// the links currently up. Build calls it once on the full graph; link
// up/down transitions call it again, so routing always reflects the
// operational fabric. Down links never appear in any next-hop list; node
// pairs separated by a partition simply have empty lists (Path errors).
func (t *Topology) recomputeRoutes() {
	n := len(t.names)
	t.nextHops = make([][][]LinkID, n)
	for src := 0; src < n; src++ {
		t.nextHops[src] = make([][]LinkID, n)
	}

	// Reverse adjacency over up links, flat-packed: radj[v] lists nodes
	// with an up link into v.
	deg := make([]int, n)
	upLinks := 0
	for lid, l := range t.links {
		if t.linkDown[lid] {
			continue
		}
		deg[l.To]++
		upLinks++
	}
	radjFlat := make([]NodeID, upLinks)
	radj := make([][]NodeID, n)
	off := 0
	for v := 0; v < n; v++ {
		radj[v] = radjFlat[off : off : off+deg[v]]
		off += deg[v]
	}
	for lid, l := range t.links {
		if t.linkDown[lid] {
			continue
		}
		radj[l.To] = append(radj[l.To], l.From)
	}

	distTo := make([]int, n)
	queue := make([]NodeID, 0, n)
	for dst := 0; dst < n; dst++ {
		// BFS on the reversed graph: hop counts TO dst (-1 unreachable).
		for i := range distTo {
			distTo[i] = -1
		}
		distTo[dst] = 0
		queue = append(queue[:0], NodeID(dst))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range radj[u] {
				if distTo[v] < 0 {
					distTo[v] = distTo[u] + 1
					queue = append(queue, v)
				}
			}
		}

		// Fill next hops for every source from one arena sized by a
		// counting pass.
		total := 0
		for u := 0; u < n; u++ {
			if u == dst || distTo[u] < 0 {
				continue
			}
			for _, lid := range t.adj[u] {
				v := t.links[lid].To
				if t.linkDown[lid] {
					continue
				}
				if distTo[v] >= 0 && distTo[v]+1 == distTo[u] {
					total++
				}
			}
		}
		arena := make([]LinkID, 0, total)
		for u := 0; u < n; u++ {
			if u == dst || distTo[u] < 0 {
				continue
			}
			start := len(arena)
			for _, lid := range t.adj[u] {
				v := t.links[lid].To
				if t.linkDown[lid] {
					continue
				}
				if distTo[v] >= 0 && distTo[v]+1 == distTo[u] {
					arena = append(arena, lid)
				}
			}
			if len(arena) > start {
				t.nextHops[u][dst] = arena[start:len(arena):len(arena)]
			}
		}
	}
}

// NumNodes returns the total node count (hosts + switches).
func (t *Topology) NumNodes() int { return len(t.names) }

// Hosts returns the IDs of all end hosts in creation order.
func (t *Topology) Hosts() []NodeID {
	out := make([]NodeID, len(t.hosts))
	copy(out, t.hosts)
	return out
}

// Name returns the node's name.
func (t *Topology) Name(id NodeID) string { return t.names[id] }

// IsHost reports whether id is an end host.
func (t *Topology) IsHost(id NodeID) bool { return t.isHost[id] }

// Rack returns the rack index of a host (-1 for switches or rackless hosts).
func (t *Topology) Rack(id NodeID) int { return t.rackOf[id] }

// Links returns a copy of the directed link table.
func (t *Topology) Links() []Link {
	out := make([]Link, len(t.links))
	copy(out, t.links)
	return out
}

// Path returns the sequence of directed links from src to dst, choosing
// among equal-cost next hops by the given flow hash (deterministic ECMP).
func (t *Topology) Path(src, dst NodeID, hash uint64) ([]LinkID, error) {
	return t.AppendPath(nil, src, dst, hash)
}

// AppendPath appends the src→dst path to buf and returns the extended
// slice, so callers with a scratch buffer can route without allocating.
// The route chosen is identical to Path's for the same hash. On error
// the returned slice is buf truncated to its original length.
func (t *Topology) AppendPath(buf []LinkID, src, dst NodeID, hash uint64) ([]LinkID, error) {
	if src == dst {
		return buf, nil
	}
	base := len(buf)
	cur := src
	for cur != dst {
		hops := t.nextHops[cur][dst]
		if len(hops) == 0 {
			return buf[:base], fmt.Errorf("netsim: no route %s -> %s", t.names[src], t.names[dst])
		}
		lid := hops[hash%uint64(len(hops))]
		buf = append(buf, lid)
		cur = t.links[lid].To
		if len(buf)-base > len(t.names) {
			return buf[:base], fmt.Errorf("netsim: routing loop %s -> %s", t.names[src], t.names[dst])
		}
	}
	return buf, nil
}

// PathLatencyNs sums the propagation delay along a path.
func (t *Topology) PathLatencyNs(path []LinkID) int64 {
	var total int64
	for _, lid := range path {
		total += t.links[lid].LatencyNs
	}
	return total
}

// NumLinks returns the directed link count.
func (t *Topology) NumLinks() int { return len(t.links) }

// LinkDown reports whether link lid is currently down.
func (t *Topology) LinkDown(lid LinkID) bool { return t.linkDown[lid] }

// SetLinkDown marks link lid down (or back up) and recomputes routing.
// Callers mutating link state mid-simulation should go through
// Network.SetLinkState, which also fixes up in-flight flows.
func (t *Topology) SetLinkDown(lid LinkID, down bool) error {
	if lid < 0 || int(lid) >= len(t.links) {
		return fmt.Errorf("netsim: link %d out of range", lid)
	}
	if t.linkDown[lid] == down {
		return nil
	}
	t.linkDown[lid] = down
	t.recomputeRoutes()
	return nil
}

// SetLinkCapacityScale sets link lid's capacity to factor × its as-built
// capacity (factor 1 restores full speed). The factor must be positive —
// a zero-capacity link is modelled as down, not infinitely slow.
func (t *Topology) SetLinkCapacityScale(lid LinkID, factor float64) error {
	if lid < 0 || int(lid) >= len(t.links) {
		return fmt.Errorf("netsim: link %d out of range", lid)
	}
	if factor <= 0 {
		return fmt.Errorf("netsim: capacity scale %v must be positive", factor)
	}
	t.links[lid].CapacityBps = t.baseCap[lid] * factor
	return nil
}

// ReverseLink returns the directed link running opposite to lid
// (Connect always adds both directions), or -1 if none exists.
func (t *Topology) ReverseLink(lid LinkID) LinkID {
	l := t.links[lid]
	for _, cand := range t.adj[l.To] {
		if t.links[cand].To == l.From {
			return cand
		}
	}
	return -1
}

// pathUp reports whether every link on path is currently up.
func (t *Topology) pathUp(path []LinkID) bool {
	for _, lid := range path {
		if t.linkDown[lid] {
			return false
		}
	}
	return true
}
