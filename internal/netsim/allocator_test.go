package netsim

import (
	"math"
	"testing"

	"keddah/internal/sim"
)

// buildScenario schedules nFlows pseudo-random flows (sizes, endpoints,
// arrival times derived from seed) onto the network. The same seed
// produces the identical schedule on any network, which is what lets the
// equivalence test drive two allocators in lockstep.
func buildScenario(t *testing.T, net *Network, seed int64, nFlows int) {
	t.Helper()
	hosts := net.Topology().Hosts()
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	for i := 0; i < nFlows; i++ {
		src := hosts[next(len(hosts))]
		dst := hosts[next(len(hosts))]
		if src == dst {
			dst = hosts[(int(src)+1+next(len(hosts)-1))%len(hosts)]
			if src == dst {
				continue
			}
		}
		size := int64(next(80_000_000) + 500)
		delay := sim.Time(next(2_000_000_000))
		s, d, port := src, dst, 1000+i
		net.Engine().After(delay, func() {
			if _, err := net.StartFlow(FlowSpec{Src: s, Dst: d, SrcPort: port, DstPort: 2000, SizeBytes: size}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestIncrementalMatchesReferenceAllocator is the allocator equivalence
// property test: for randomized topologies and flow sets (100–1000
// flows), the incremental max-min allocator and the original from-scratch
// progressive filling must produce identical rate vectors at every event,
// identical completion times, and a max-min allocation that satisfies
// CheckInvariants throughout.
func TestIncrementalMatchesReferenceAllocator(t *testing.T) {
	build := map[string]func() (*Topology, error){
		"star":      func() (*Topology, error) { return Star(17, Gbps) },
		"fattree":   func() (*Topology, error) { return FatTree(4, Gbps) },
		"multirack": func() (*Topology, error) { return MultiRack(3, 6, Gbps, 4*Gbps) },
	}
	cases := []struct {
		topo   string
		seed   int64
		nFlows int
	}{
		{"star", 11, 100},
		{"star", 12, 1000},
		{"fattree", 21, 150},
		{"fattree", 22, 600},
		{"multirack", 31, 100},
		{"multirack", 32, 400},
	}
	for _, tc := range cases {
		mk := func(ref bool) (*sim.Engine, *Network) {
			topo, err := build[tc.topo]()
			if err != nil {
				t.Fatal(err)
			}
			eng := sim.New()
			net := NewNetwork(eng, topo, Config{UseReferenceAllocator: ref})
			buildScenario(t, net, tc.seed, tc.nFlows)
			return eng, net
		}
		incEng, inc := mk(false)
		refEng, ref := mk(true)

		steps := 0
		for {
			iOK := incEng.Step()
			rOK := refEng.Step()
			if iOK != rOK {
				t.Fatalf("%s/seed%d: event streams diverged after %d steps", tc.topo, tc.seed, steps)
			}
			if !iOK {
				break
			}
			steps++
			if incEng.Now() != refEng.Now() {
				t.Fatalf("%s/seed%d step %d: clocks diverged %v vs %v", tc.topo, tc.seed, steps, incEng.Now(), refEng.Now())
			}
			ir, rr := snapshotRates(inc), snapshotRates(ref)
			if len(ir) != len(rr) {
				t.Fatalf("%s/seed%d step %d: active sets differ: %d vs %d flows", tc.topo, tc.seed, steps, len(ir), len(rr))
			}
			for id, rate := range ir {
				if refRate, ok := rr[id]; !ok || refRate != rate {
					t.Fatalf("%s/seed%d step %d: flow %d rate %v (incremental) vs %v (reference)",
						tc.topo, tc.seed, steps, id, rate, refRate)
				}
			}
			// The incremental allocation must itself be max-min fair.
			// Skip instants where a coalesced reallocation is still
			// queued — the active set changed but rates intentionally
			// update one event later.
			if !inc.reallocPendingNow() {
				if err := inc.CheckInvariants(); err != nil {
					t.Fatalf("%s/seed%d step %d: %v", tc.topo, tc.seed, steps, err)
				}
			}
		}
		if inc.ActiveFlows() != 0 || ref.ActiveFlows() != 0 {
			t.Errorf("%s/seed%d: flows stranded: %d incremental, %d reference",
				tc.topo, tc.seed, inc.ActiveFlows(), ref.ActiveFlows())
		}
		if inc.Completed() != ref.Completed() || inc.TotalBytes() != ref.TotalBytes() {
			t.Errorf("%s/seed%d: outcomes differ: %d/%v vs %d/%v", tc.topo, tc.seed,
				inc.Completed(), inc.TotalBytes(), ref.Completed(), ref.TotalBytes())
		}
	}
}

func TestDurationForClampsDegenerateRates(t *testing.T) {
	if d := durationFor(0, Gbps); d != 0 {
		t.Errorf("zero bytes → %v, want 0", d)
	}
	if d := durationFor(-5, Gbps); d != 0 {
		t.Errorf("negative bytes → %v, want 0", d)
	}
	// A zero or negative rate used to produce +Inf seconds and an
	// overflowed (negative) sim.Time; it must clamp to MaxTime.
	if d := durationFor(1000, 0); d != sim.MaxTime {
		t.Errorf("zero rate → %v, want MaxTime", d)
	}
	if d := durationFor(1000, -1); d != sim.MaxTime {
		t.Errorf("negative rate → %v, want MaxTime", d)
	}
	// Tiny-but-positive rates overflow the ns conversion; clamp too.
	if d := durationFor(1e18, 1e-12); d != sim.MaxTime {
		t.Errorf("tiny rate → %v, want MaxTime", d)
	}
	if d := durationFor(1000, Gbps); d <= 0 || d >= sim.MaxTime {
		t.Errorf("normal case → %v, want small positive", d)
	}
	// 1 Gbit at 1 Gbps is exactly one second.
	if d := durationFor(125_000_000, Gbps); d != 1_000_000_000 {
		t.Errorf("1 Gbit at 1 Gbps → %v, want 1s", d)
	}
}

// TestParkedFlowRevivesOnReallocation: a flow whose rate collapses to a
// value that would overflow the horizon parks without a completion event
// but must resume when capacity frees up.
func TestParkedFlowRevivesOnReallocation(t *testing.T) {
	if got := durationFor(1, math.SmallestNonzeroFloat64); got != sim.MaxTime {
		t.Fatalf("sanity: %v", got)
	}
	topo := mustStar(t, 3, Gbps)
	eng := sim.New()
	net := NewNetwork(eng, topo, Config{})
	h := topo.Hosts()
	done := 0
	for i := 0; i < 2; i++ {
		if _, err := net.StartFlow(FlowSpec{Src: h[i], Dst: h[2], SrcPort: i, DstPort: 80, SizeBytes: 10_000_000,
			OnComplete: func(*Flow) { done++ }}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if done != 2 {
		t.Fatalf("completed %d flows, want 2", done)
	}
}
