package netsim

import (
	"strings"
	"testing"

	"keddah/internal/sim"
)

// ipHarness is a P-pod fabric over small star topologies, one network
// per pod on its shard's engine, gateway = host 0 of each star.
type ipHarness struct {
	sched *sim.ShardedEngine
	nets  []*Network
	ip    *InterPod
}

func newIPHarness(t *testing.T, pods, engines int) *ipHarness {
	t.Helper()
	sched, err := sim.NewSharded(pods, engines, sim.Time(DefaultInterPodLatencyNs))
	if err != nil {
		t.Fatal(err)
	}
	nets := make([]*Network, pods)
	gws := make([]NodeID, pods)
	for p := 0; p < pods; p++ {
		topo, err := Star(4, Gbps)
		if err != nil {
			t.Fatal(err)
		}
		nets[p] = NewNetwork(sched.PodEngine(p), topo, Config{})
		gws[p] = topo.Hosts()[0]
	}
	ip, err := NewInterPod(sched, nets, gws, sim.Time(DefaultInterPodLatencyNs))
	if err != nil {
		t.Fatal(err)
	}
	return &ipHarness{sched: sched, nets: nets, ip: ip}
}

func (h *ipHarness) host(pod, i int) NodeID { return h.nets[pod].Topology().Hosts()[i] }

func TestInterPodTransfer(t *testing.T) {
	for _, engines := range []int{1, 3} {
		h := newIPHarness(t, 3, engines)
		done := 0
		spec := TransferSpec{
			SrcPod: 0, DstPod: 2,
			Src: h.host(0, 1), Dst: h.host(2, 3),
			SizeBytes: 1 << 20, Label: "job1/distcp",
			OnComplete: func() { done++ },
			OnAbort:    func() { t.Error("transfer aborted") },
		}
		if _, err := h.sched.PodEngine(0).At(0, func() {
			if err := h.ip.Send(spec); err != nil {
				t.Errorf("Send: %v", err)
			}
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := h.sched.Drain(); err != nil {
			t.Fatalf("engines=%d: %v", engines, err)
		}
		if done != 1 {
			t.Fatalf("engines=%d: OnComplete ran %d times", engines, done)
		}
		s := h.ip.Stats()
		if s.Started != 1 || s.Completed != 1 || s.Aborted != 0 || s.Pending != 0 || s.Relayed != 0 {
			t.Fatalf("engines=%d: stats %+v", engines, s)
		}
		if s.Stage1Bytes != 1<<20 || s.Stage2Bytes != 1<<20 {
			t.Fatalf("engines=%d: stage bytes %d/%d", engines, s.Stage1Bytes, s.Stage2Bytes)
		}
		// Source pod saw the egress flow, destination pod the ingress.
		if h.nets[0].Completed() != 1 || h.nets[2].Completed() != 1 || h.nets[1].Completed() != 0 {
			t.Fatalf("engines=%d: flow counts %d/%d/%d", engines,
				h.nets[0].Completed(), h.nets[1].Completed(), h.nets[2].Completed())
		}
		if err := h.ip.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInterPodValidation(t *testing.T) {
	h := newIPHarness(t, 2, 2)
	base := TransferSpec{SrcPod: 0, DstPod: 1, Src: h.host(0, 1), Dst: h.host(1, 1), SizeBytes: 100}
	cases := []struct {
		name string
		mut  func(*TransferSpec)
	}{
		{"same pod", func(s *TransferSpec) { s.DstPod = 0 }},
		{"pod out of range", func(s *TransferSpec) { s.DstPod = 7 }},
		{"negative pod", func(s *TransferSpec) { s.SrcPod = -1 }},
		{"zero size", func(s *TransferSpec) { s.SizeBytes = 0 }},
		{"src is gateway", func(s *TransferSpec) { s.Src = h.host(0, 0) }},
		{"dst is gateway", func(s *TransferSpec) { s.Dst = h.host(1, 0) }},
	}
	for _, c := range cases {
		spec := base
		c.mut(&spec)
		if err := h.ip.Send(spec); err == nil {
			t.Errorf("%s: Send succeeded", c.name)
		}
	}
	if s := h.ip.Stats(); s.Pending != 0 || s.Started != s.Aborted {
		t.Fatalf("rejected sends leaked state: %+v", s)
	}

	// Constructor validation.
	if _, err := NewInterPod(nil, nil, nil, 1); err == nil {
		t.Error("NewInterPod(nil sched) succeeded")
	}
	if _, err := NewInterPod(h.sched, h.nets[:1], []NodeID{0}, sim.Time(DefaultInterPodLatencyNs)); err == nil {
		t.Error("NewInterPod with wrong net count succeeded")
	}
	if _, err := NewInterPod(h.sched, h.nets, []NodeID{0, 0}, 1); err == nil {
		t.Error("NewInterPod with latency below lookahead succeeded")
	}
}

// TestInterPodRelay: with the direct pair down, a transfer detours
// through the one remaining pod — and the detour is identical at any
// engine count.
func TestInterPodRelay(t *testing.T) {
	for _, engines := range []int{1, 3} {
		h := newIPHarness(t, 3, engines)
		if err := h.ip.SchedulePairFault(0, 2, 0, 0); err != nil {
			t.Fatal(err)
		}
		done := 0
		if _, err := h.sched.PodEngine(0).At(sim.Time(1000), func() {
			err := h.ip.Send(TransferSpec{
				SrcPod: 0, DstPod: 2,
				Src: h.host(0, 1), Dst: h.host(2, 1),
				SizeBytes: 4096, Label: "relay/distcp",
				OnComplete: func() { done++ },
				OnAbort:    func() { t.Error("relayed transfer aborted") },
			})
			if err != nil {
				t.Errorf("Send: %v", err)
			}
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := h.sched.Drain(); err != nil {
			t.Fatal(err)
		}
		if done != 1 {
			t.Fatalf("engines=%d: relayed transfer did not complete", engines)
		}
		if s := h.ip.Stats(); s.Relayed != 1 || s.Completed != 1 {
			t.Fatalf("engines=%d: stats %+v", engines, s)
		}
		if err := h.ip.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestInterPodNoRoute: two pods, pair down, no relay exists — the
// transfer aborts cleanly after its egress leg.
func TestInterPodNoRoute(t *testing.T) {
	h := newIPHarness(t, 2, 2)
	if err := h.ip.SchedulePairFault(0, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	aborted := 0
	if _, err := h.sched.PodEngine(0).At(sim.Time(1000), func() {
		err := h.ip.Send(TransferSpec{
			SrcPod: 0, DstPod: 1,
			Src: h.host(0, 1), Dst: h.host(1, 1),
			SizeBytes: 4096, Label: "doomed",
			OnComplete: func() { t.Error("unroutable transfer completed") },
			OnAbort:    func() { aborted++ },
		})
		if err != nil {
			t.Errorf("Send: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.sched.Drain(); err != nil {
		t.Fatal(err)
	}
	if aborted != 1 {
		t.Fatal("unroutable transfer did not abort")
	}
	s := h.ip.Stats()
	if s.Stage1Bytes != 4096 || s.Stage2Bytes != 0 {
		t.Fatalf("stage bytes %d/%d, want egress only", s.Stage1Bytes, s.Stage2Bytes)
	}
	if err := h.ip.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestInterPodPairRecovery: a pair fault with a recovery window — a
// transfer sent after recovery routes directly again.
func TestInterPodPairRecovery(t *testing.T) {
	h := newIPHarness(t, 2, 2)
	if err := h.ip.SchedulePairFault(0, 1, 0, sim.Time(5*DefaultInterPodLatencyNs)); err != nil {
		t.Fatal(err)
	}
	done := 0
	if _, err := h.sched.PodEngine(0).At(sim.Time(10*DefaultInterPodLatencyNs), func() {
		err := h.ip.Send(TransferSpec{
			SrcPod: 0, DstPod: 1,
			Src: h.host(0, 1), Dst: h.host(1, 1),
			SizeBytes: 4096, Label: "after-recovery",
			OnComplete: func() { done++ },
			OnAbort:    func() { t.Error("post-recovery transfer aborted") },
		})
		if err != nil {
			t.Errorf("Send: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.sched.Drain(); err != nil {
		t.Fatal(err)
	}
	if done != 1 {
		t.Fatal("post-recovery transfer did not complete")
	}
	if err := h.ip.SchedulePairFault(0, 0, 0, 0); err == nil {
		t.Error("self-pair fault accepted")
	}
	if err := h.ip.SchedulePairFault(0, 1, 100, 50); err == nil {
		t.Error("recovery before fault accepted")
	}
}

// TestInterPodAbortMidWindow: a link fault inside the destination pod
// kills the ingress leg mid-flight; the transfer reports the abort and
// conservation still holds (egress bytes moved, ingress bytes did not).
func TestInterPodAbortMidWindow(t *testing.T) {
	h := newIPHarness(t, 2, 2)
	dst := h.host(1, 1)
	// Take down the destination host's access links while the ingress
	// flow (starting after ~2 latencies of egress+hop) is in flight.
	var dstLinks []LinkID
	for lid, l := range h.nets[1].Topology().Links() {
		if l.From == dst || l.To == dst {
			dstLinks = append(dstLinks, LinkID(lid))
		}
	}
	if _, err := h.sched.PodEngine(1).At(sim.Time(2*DefaultInterPodLatencyNs), func() {
		for _, lid := range dstLinks {
			if err := h.nets[1].SetLinkState(lid, false); err != nil {
				t.Errorf("link down: %v", err)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	aborted := 0
	if _, err := h.sched.PodEngine(0).At(0, func() {
		err := h.ip.Send(TransferSpec{
			SrcPod: 0, DstPod: 1,
			Src: h.host(0, 1), Dst: dst,
			// Big enough that the ingress leg is still moving when the
			// links die.
			SizeBytes: 1 << 30, Label: "cut",
			OnComplete: func() { t.Error("cut transfer completed") },
			OnAbort:    func() { aborted++ },
		})
		if err != nil {
			t.Errorf("Send: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.sched.Drain(); err != nil {
		t.Fatal(err)
	}
	if aborted != 1 {
		t.Fatal("severed transfer did not abort")
	}
	s := h.ip.Stats()
	if s.Stage1Bytes != 1<<30 || s.Stage2Bytes != 0 {
		t.Fatalf("stage bytes %d/%d after mid-flight cut", s.Stage1Bytes, s.Stage2Bytes)
	}
	if err := h.ip.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestInterPodWindowGuardMessage pins the boundary-violation error text
// the fabric's panic path relies on.
func TestInterPodWindowGuardMessage(t *testing.T) {
	sched, err := sim.NewSharded(2, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	var guardErr error
	if _, err := sched.PodEngine(0).At(0, func() {
		guardErr = sched.Post(0, 1, 1, func() {})
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Drain(); err != nil {
		t.Fatal(err)
	}
	if guardErr == nil || !strings.Contains(guardErr.Error(), "window boundary") {
		t.Fatalf("guard error = %v", guardErr)
	}
}
