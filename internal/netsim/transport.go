package netsim

import (
	"errors"
	"fmt"
)

// ErrBadTransport is the typed error wrapped by ParseTransport for an
// unrecognised transport name. Config surfaces (ClusterSpec, CLI flags)
// match it with errors.Is to map bad input to a clear user-facing error
// instead of silently falling back to the fluid model.
var ErrBadTransport = errors.New("netsim: unknown transport")

// Transport selects the rate model flows transfer under.
type Transport int

const (
	// TransportFluid is the default flow-level model: instantaneous
	// max-min fair sharing (or the configured ablation allocator) with no
	// per-flow window dynamics. It is the fastest model and the one the
	// paper's evaluation uses.
	TransportFluid Transport = iota
	// TransportTCP gives every flow a TCP state machine — slow start,
	// AIMD congestion avoidance, fast retransmit, RTO with exponential
	// backoff — over per-link droptail queues, so fan-in incast and
	// timeout dynamics invisible to the fluid model become observable.
	TransportTCP
)

// String returns the canonical config name of the transport.
func (t Transport) String() string {
	switch t {
	case TransportTCP:
		return "tcp"
	default:
		return "fluid"
	}
}

// ParseTransport maps a config/CLI transport name to its model. The empty
// string and "fluid" select the fluid model; "tcp" selects the TCP state
// machine. Anything else returns an error wrapping ErrBadTransport.
func ParseTransport(name string) (Transport, error) {
	switch name {
	case "", "fluid":
		return TransportFluid, nil
	case "tcp":
		return TransportTCP, nil
	default:
		return TransportFluid, fmt.Errorf("%w %q (valid: fluid, tcp)", ErrBadTransport, name)
	}
}

// TCPConfig tunes the TCP transport. The zero value selects the defaults
// below; fields are only read when Config.Transport is "tcp".
type TCPConfig struct {
	// MSSBytes is the segment payload size (default 1448, Ethernet MTU
	// minus TCP/IP headers with timestamps).
	MSSBytes float64
	// InitWindowBytes is the initial congestion window (default 10 MSS,
	// RFC 6928 IW10).
	InitWindowBytes float64
	// BufferBytes is the per-link droptail queue depth (default 128 KiB —
	// a shallow ToR-class buffer, the regime where shuffle incast shows).
	BufferBytes float64
	// RTOMinNs is the minimum retransmission timeout (default 200 ms, the
	// Linux default — the constant that makes incast collapse hurt).
	RTOMinNs int64
	// RTOMaxNs caps the backed-off timeout (default 60 s).
	RTOMaxNs int64
	// TickNs is the ack-clock granularity: every tick each active flow
	// grows its window by the bytes acked since the last tick and reacts
	// to queue overflow on its path (default 1 ms). Window growth is
	// driven by acked bytes, so it is insensitive to the tick cadence.
	TickNs int64
}

func (c TCPConfig) withDefaults() TCPConfig {
	if c.MSSBytes <= 0 {
		c.MSSBytes = 1448
	}
	if c.InitWindowBytes <= 0 {
		c.InitWindowBytes = 10 * c.MSSBytes
	}
	if c.BufferBytes <= 0 {
		c.BufferBytes = 128 << 10
	}
	if c.RTOMinNs <= 0 {
		c.RTOMinNs = 200_000_000
	}
	if c.RTOMaxNs <= 0 {
		c.RTOMaxNs = 60_000_000_000
	}
	if c.TickNs <= 0 {
		c.TickNs = 1_000_000
	}
	return c
}
