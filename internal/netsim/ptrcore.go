package netsim

import (
	"math"
	"sort"

	"keddah/internal/sim"
)

// ptrCore is the pointer-per-flow reference implementation — the layout
// the simulator used before the struct-of-arrays refactor, preserved
// verbatim (same event scheduling order, same floating-point arithmetic)
// behind Config.UsePointerFlows. It exists as the lockstep oracle for
// soaCore: the two cores must produce identical trajectories, captures
// and telemetry on any scenario, which the equivalence tests drive.
type ptrCore struct {
	nw   *Network
	eng  *sim.Engine
	topo *Topology
	cfg  Config

	seq   uint64
	flows []*ptrFlow // active flows in activation order

	// linkFlows indexes the active flows crossing each link, maintained
	// in O(len(path)) on flow activation and completion.
	linkFlows [][]*ptrFlow

	reallocPending bool
	dirtyE         sim.Event

	// Allocation scratch, reused across reallocations. remCap/cnt are
	// indexed by LinkID; rates/frozen by ptrFlow.listIdx; freezeBuf holds
	// one round's bottleneck candidates.
	remCap    []float64
	cnt       []int
	rates     []float64
	frozen    []bool
	freezeBuf []*ptrFlow
}

// ptrFlow is the reference core's per-flow record. h is the exported
// handle callers and taps observe.
type ptrFlow struct {
	h         *Flow
	id        uint64
	spec      FlowSpec
	path      []LinkID
	start     sim.Time
	activated sim.Time
	end       sim.Time
	remaining float64 // bytes
	rate      float64 // bps
	last      sim.Time
	segments  []RateSegment
	completeE sim.Event
	done      bool
	aborted   bool
	active    bool
	// listIdx is this flow's position in ptrCore.flows while active.
	listIdx int
	// linkPos[i] is this flow's position in linkFlows[path[i]].
	linkPos []int
}

func newPtrCore(nw *Network) *ptrCore {
	c := &ptrCore{
		nw:        nw,
		eng:       nw.eng,
		topo:      nw.topo,
		cfg:       nw.cfg,
		linkFlows: make([][]*ptrFlow, len(nw.topo.links)),
		remCap:    make([]float64, len(nw.topo.links)),
		cnt:       make([]int, len(nw.topo.links)),
	}
	c.dirtyE = c.eng.NewTimer(func(uint64) {
		c.reallocPending = false
		c.reallocate()
	}, 0)
	return c
}

// startFlow opens a transfer on the reference core (spec already
// validated by Network.StartFlow).
func (c *ptrCore) startFlow(spec FlowSpec) *Flow {
	f := &ptrFlow{
		id:        c.seq,
		spec:      spec,
		start:     c.eng.Now(),
		remaining: float64(spec.SizeBytes),
	}
	c.seq++
	f.h = &Flow{id: f.id, spec: spec, start: f.start, pf: f}
	c.nw.metrics.FlowsStarted.Inc()

	var latency int64
	if spec.Src != spec.Dst {
		path, err := c.topo.Path(spec.Src, spec.Dst, flowHash(spec, f.id))
		if err != nil {
			// Partitioned: park the flow and abort after the connect
			// timeout.
			for _, t := range c.nw.taps {
				t.FlowStarted(f.h)
			}
			c.eng.After(noRouteTimeout, func() { c.abort(f) })
			return f.h
		}
		f.path = path
		latency = c.topo.PathLatencyNs(path)
		if c.cfg.ModelSlowStart {
			latency += slowStartPenaltyNs(spec.SizeBytes, latency)
		}
	} else {
		latency = 10_000 // 10 µs loopback
	}

	for _, t := range c.nw.taps {
		t.FlowStarted(f.h)
	}

	// The flow starts transferring after propagation latency.
	c.eng.After(sim.Time(latency), func() {
		if f.done {
			return // aborted while still propagating
		}
		f.activated = c.eng.Now()
		f.last = f.activated
		f.active = true
		if f.spec.Src == f.spec.Dst {
			// Loopback: fixed rate, no interaction with fairness.
			f.rate = c.cfg.LoopbackBps
			f.segments = append(f.segments, RateSegment{Start: f.activated, RateBps: f.rate})
			d := durationFor(f.remaining, f.rate)
			f.completeE = c.eng.NewTimer(func(uint64) { c.finish(f) }, 0)
			_ = f.completeE.Schedule(f.activated + d)
			return
		}
		if !c.topo.pathUp(f.path) {
			path, err := c.topo.Path(f.spec.Src, f.spec.Dst, flowHash(f.spec, f.id))
			if err != nil {
				f.active = false
				c.abort(f)
				return
			}
			f.path = path
		}
		f.listIdx = len(c.flows)
		c.flows = append(c.flows, f)
		c.linkInsert(f)
		c.markDirty()
	})
	return f.h
}

// linkInsert adds the flow to the per-link active index, O(len(path)).
func (c *ptrCore) linkInsert(f *ptrFlow) {
	f.linkPos = make([]int, len(f.path))
	for i, lid := range f.path {
		f.linkPos[i] = len(c.linkFlows[lid])
		c.linkFlows[lid] = append(c.linkFlows[lid], f)
	}
}

// linkRemove deletes the flow from the per-link index by swap-remove.
func (c *ptrCore) linkRemove(f *ptrFlow) {
	for i, lid := range f.path {
		lst := c.linkFlows[lid]
		p := f.linkPos[i]
		last := len(lst) - 1
		moved := lst[last]
		lst[p] = moved
		lst[last] = nil
		c.linkFlows[lid] = lst[:last]
		if moved != f {
			for j, ml := range moved.path {
				if ml == lid {
					moved.linkPos[j] = p
					break
				}
			}
		}
	}
}

// markDirty coalesces reallocation requests occurring at the same instant
// onto the network's single persistent dirty timer.
func (c *ptrCore) markDirty() {
	if c.reallocPending {
		return
	}
	c.reallocPending = true
	_ = c.dirtyE.Schedule(c.eng.Now())
}

// settle charges elapsed transfer progress to every active flow.
func (c *ptrCore) settle() {
	now := c.eng.Now()
	for _, f := range c.flows {
		if dt := now - f.last; dt > 0 && f.rate > 0 {
			f.remaining -= f.rate * dt.Seconds() / 8
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
		f.last = now
	}
}

// reallocate recomputes fair rates for all active flows.
func (c *ptrCore) reallocate() {
	c.settle()

	nf := len(c.flows)
	if nf == 0 {
		return
	}
	c.resetScratch(nf)
	c.nw.metrics.Reallocs.Inc()
	c.nw.metrics.ActiveFlowsMax.SetMax(float64(nf))

	switch {
	case c.cfg.Allocator == AllocEqualSplit:
		c.equalSplitRates()
	case c.cfg.UseReferenceAllocator:
		c.referenceMaxMinRates()
	default:
		c.incrementalMaxMinRates()
	}

	c.applyRates()
}

// resetScratch sizes and clears the per-flow allocation buffers.
func (c *ptrCore) resetScratch(nf int) {
	if cap(c.rates) < nf {
		c.rates = make([]float64, nf)
		c.frozen = make([]bool, nf)
	}
	c.rates = c.rates[:nf]
	c.frozen = c.frozen[:nf]
	for i := range c.frozen {
		c.frozen[i] = false
	}
}

// applyRates installs the rates vector.
func (c *ptrCore) applyRates() {
	now := c.eng.Now()
	for i, f := range c.flows {
		newRate := c.rates[i]
		if rateEqual(f.rate, newRate) {
			continue
		}
		f.rate = newRate
		f.segments = append(f.segments, RateSegment{Start: now, RateBps: newRate})
		c.scheduleCompletion(f)
	}
}

// scheduleCompletion (re)arms the flow's completion timer for its current
// rate and residue.
func (c *ptrCore) scheduleCompletion(f *ptrFlow) {
	if f.rate <= 0 {
		f.completeE.Cancel()
		return
	}
	d := durationFor(f.remaining, f.rate)
	now := c.eng.Now()
	if d >= sim.MaxTime-now {
		f.completeE.Cancel()
		return
	}
	if !f.completeE.Valid() {
		flow := f
		f.completeE = c.eng.NewTimer(func(uint64) { c.finish(flow) }, 0)
	}
	_ = f.completeE.Schedule(now + d)
}

// finish completes a flow.
func (c *ptrCore) finish(f *ptrFlow) {
	if f.done {
		return
	}
	if f.spec.Src == f.spec.Dst {
		f.remaining = 0
	} else {
		c.settle()
		if f.remaining > 1e-3 {
			c.scheduleCompletion(f)
			return
		}
		f.remaining = 0
		c.removeActive(f)
		c.markDirty()
	}
	f.done = true
	f.active = false
	f.end = c.eng.Now()
	c.nw.completed++
	c.nw.totalBytes += float64(f.spec.SizeBytes)
	c.nw.metrics.FlowsCompleted.Inc()
	c.nw.metrics.FlowBytes.Observe(f.spec.SizeBytes)
	for _, t := range c.nw.taps {
		t.FlowCompleted(f.h)
	}
	if f.spec.OnComplete != nil {
		f.spec.OnComplete(f.h)
	}
}

// removeActive deletes f from the active set, preserving order.
func (c *ptrCore) removeActive(f *ptrFlow) {
	i := f.listIdx
	last := len(c.flows) - 1
	copy(c.flows[i:], c.flows[i+1:])
	c.flows[last] = nil
	c.flows = c.flows[:last]
	for j := i; j < last; j++ {
		c.flows[j].listIdx = j
	}
	c.linkRemove(f)
}

// abort tears a flow down before completion.
func (c *ptrCore) abort(f *ptrFlow) {
	if f.done {
		return
	}
	if f.active {
		c.settle()
		c.removeActive(f)
		c.markDirty()
	}
	f.completeE.Cancel()
	f.done = true
	f.aborted = true
	f.active = false
	f.end = c.eng.Now()
	c.nw.abortedCount++
	c.nw.metrics.FlowsAborted.Inc()
	for _, t := range c.nw.taps {
		t.FlowCompleted(f.h)
	}
	if f.spec.OnAbort != nil {
		f.spec.OnAbort(f.h)
	}
}

// setLinkState is the core half of Network.SetLinkState.
func (c *ptrCore) setLinkState(lid LinkID, up bool) error {
	down := !up
	if c.topo.linkDown[lid] == down {
		return nil
	}
	c.settle()
	if err := c.topo.SetLinkDown(lid, down); err != nil {
		return err
	}
	c.nw.metrics.LinkTransitions.Inc()
	if down {
		// Snapshot: rerouting mutates the per-link index in place.
		victims := make([]*ptrFlow, len(c.linkFlows[lid]))
		copy(victims, c.linkFlows[lid])
		for _, f := range victims {
			c.rerouteOrAbort(f)
		}
	}
	c.markDirty()
	return nil
}

// rerouteOrAbort moves an active flow onto a fresh shortest path, or
// aborts it when the fabric no longer connects its endpoints.
func (c *ptrCore) rerouteOrAbort(f *ptrFlow) {
	if f.done || !f.active {
		return
	}
	path, err := c.topo.Path(f.spec.Src, f.spec.Dst, flowHash(f.spec, f.id))
	if err != nil {
		c.abort(f)
		return
	}
	c.linkRemove(f)
	f.path = path
	c.linkInsert(f)
	c.nw.metrics.Reroutes.Inc()
}

// abortFlowsWhere is the core half of Network.AbortFlowsWhere.
func (c *ptrCore) abortFlowsWhere(pred func(FlowSpec) bool) int {
	victims := make([]*ptrFlow, 0, 4)
	for _, f := range c.flows {
		if pred(f.spec) {
			victims = append(victims, f)
		}
	}
	for _, f := range victims {
		c.abort(f)
	}
	return len(victims)
}

// incrementalMaxMinRates computes max-min fair rates by progressive
// filling over the per-link flow index (see the soaCore twin for the
// algorithm commentary — both perform identical arithmetic).
func (c *ptrCore) incrementalMaxMinRates() {
	for i, l := range c.topo.links {
		c.remCap[i] = l.CapacityBps
		c.cnt[i] = len(c.linkFlows[i])
	}
	remaining := len(c.flows)
	for remaining > 0 {
		best := -1
		bestShare := math.Inf(1)
		for i, cn := range c.cnt {
			if cn == 0 {
				continue
			}
			share := c.remCap[i] / float64(cn)
			if share < bestShare {
				bestShare = share
				best = i
			}
		}
		if best < 0 {
			c.freezeStranded(&remaining)
			break
		}
		cand := c.freezeBuf[:0]
		for _, f := range c.linkFlows[best] {
			if !c.frozen[f.listIdx] {
				cand = append(cand, f)
			}
		}
		// The per-link lists are usually already in activation order
		// (swap-remove only perturbs them on completions), so check
		// before paying for the sort.
		sorted := true
		for i := 1; i < len(cand); i++ {
			if cand[i-1].listIdx > cand[i].listIdx {
				sorted = false
				break
			}
		}
		if !sorted {
			sort.Slice(cand, func(a, b int) bool { return cand[a].listIdx < cand[b].listIdx })
		}
		for _, f := range cand {
			c.rates[f.listIdx] = bestShare
			c.frozen[f.listIdx] = true
			remaining--
			for _, lid := range f.path {
				c.remCap[lid] -= bestShare
				if c.remCap[lid] < 0 {
					c.remCap[lid] = 0
				}
				c.cnt[lid]--
			}
		}
		c.freezeBuf = cand[:0]
	}
}

// referenceMaxMinRates is the original from-scratch allocator, kept as
// the oracle for the incremental path.
func (c *ptrCore) referenceMaxMinRates() {
	remCap := make([]float64, len(c.topo.links))
	cnt := make([]int, len(c.topo.links))
	for i, l := range c.topo.links {
		remCap[i] = l.CapacityBps
	}
	for _, f := range c.flows {
		for _, lid := range f.path {
			cnt[lid]++
		}
	}
	frozen := make([]bool, len(c.flows))
	remaining := len(c.flows)
	for remaining > 0 {
		best := -1
		bestShare := math.Inf(1)
		for i := range remCap {
			if cnt[i] == 0 {
				continue
			}
			share := remCap[i] / float64(cnt[i])
			if share < bestShare {
				bestShare = share
				best = i
			}
		}
		if best < 0 {
			copy(c.frozen, frozen)
			c.freezeStranded(&remaining)
			break
		}
		for i, f := range c.flows {
			if frozen[i] {
				continue
			}
			crosses := false
			for _, lid := range f.path {
				if lid == LinkID(best) {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			c.rates[i] = bestShare
			frozen[i] = true
			remaining--
			for _, lid := range f.path {
				remCap[lid] -= bestShare
				if remCap[lid] < 0 {
					remCap[lid] = 0
				}
				cnt[lid]--
			}
		}
	}
}

// freezeStranded handles the should-not-happen case of unfrozen flows
// with no loaded links left: they freeze at the loopback rate.
func (c *ptrCore) freezeStranded(remaining *int) {
	for i := range c.frozen {
		if !c.frozen[i] {
			c.rates[i] = c.cfg.LoopbackBps
			c.frozen[i] = true
			*remaining -= 1
		}
	}
}

// equalSplitRates is the ablation allocator: each flow gets min over its
// path of capacity/flow-count, with no redistribution of slack.
func (c *ptrCore) equalSplitRates() {
	for i := range c.topo.links {
		c.cnt[i] = len(c.linkFlows[i])
	}
	for i, f := range c.flows {
		rate := math.Inf(1)
		for _, lid := range f.path {
			share := c.topo.links[lid].CapacityBps / float64(c.cnt[lid])
			if share < rate {
				rate = share
			}
		}
		if math.IsInf(rate, 1) {
			rate = c.cfg.LoopbackBps
		}
		c.rates[i] = rate
	}
}
