// Inter-pod fabric: store-and-forward transfers between per-pod networks
// living on different shards of a sim.ShardedEngine. Each pod keeps its
// own Network (and arenas) strictly shard-local; the only thing that
// crosses shards is a boundary event carrying a closure, posted through
// the scheduler's fixed-order mailboxes with at least the inter-pod
// latency of delay — exactly the lookahead the conservative windows are
// derived from, so a post can never violate a window boundary.
//
// A transfer is two flows and a hop: an egress flow from the source host
// to its pod's gateway, a cross-shard post after the inter-pod latency,
// and an ingress flow from the destination pod's gateway to the final
// host. When the direct pod pair is marked down the hop detours through
// one relay pod (two posts, one extra gateway); if no relay exists the
// transfer aborts like any fault-killed flow.
package netsim

import (
	"fmt"
	"sync/atomic"

	"keddah/internal/sim"
)

// InterPodPort is the well-known destination port of inter-pod transfer
// flows, so captures classify fabric traffic like any Hadoop service.
const InterPodPort = 9300

// DefaultInterPodLatencyNs is the one-way latency between pod gateways
// (1ms) — also the lower bound on the scheduler lookahead.
const DefaultInterPodLatencyNs = 1_000_000

// interPodBasePort starts the per-pod ephemeral port range for fabric
// flows, above anything the in-pod Hadoop services allocate.
const interPodBasePort = 40000

// TransferSpec describes one inter-pod transfer.
type TransferSpec struct {
	// SrcPod and DstPod are pod indices; they must differ.
	SrcPod, DstPod int
	// Src and Dst are hosts inside the source and destination pods'
	// topologies. Neither may be its pod's gateway.
	Src, Dst NodeID
	// SizeBytes is moved twice: once to the source gateway, once from
	// the destination gateway.
	SizeBytes int64
	// Label annotates both flows ("/egress" and "/ingress" suffixed).
	Label string
	// OnComplete runs on the destination pod's engine when the ingress
	// flow delivers its last byte. OnAbort runs on whichever pod's
	// engine saw the failure. Exactly one of the two fires.
	OnComplete func()
	OnAbort    func()
}

// InterPodStats is a point-in-time counter snapshot. Counters are summed
// across shards; at a window barrier (no shard goroutine in flight) the
// values are exact and identical at any engine count.
type InterPodStats struct {
	Started, Completed, Aborted, Relayed int64
	Pending                              int64
	Stage1Bytes, Stage2Bytes             int64
}

// InterPod is the fabric. Build it after the per-pod networks, before
// any traffic; Send only from events running on the source pod's engine.
type InterPod struct {
	sched    *sim.ShardedEngine
	nets     []*Network
	gateways []NodeID
	latency  sim.Time

	// ports[p] is pod p's ephemeral port counter, touched only by
	// events on pod p's engine (egress ports on the source pod,
	// ingress ports on the destination pod).
	ports []int

	// down[p] is pod p's local view of the pod-pair fault matrix
	// (row-major P×P). Every pod's view is updated by its own
	// pre-scheduled events at identical simulated times, so the views
	// agree without any cross-shard read.
	down [][]bool

	// Shard goroutines update these concurrently; snapshot at barriers.
	started, completed, aborted, relayed int64
	pending                              int64
	stage1Bytes, stage2Bytes             int64
}

// NewInterPod wires the fabric over one network per pod. gateways[p] is
// the store-and-forward host of pod p (conventionally the master);
// latency is the one-way gateway-to-gateway delay and must be at least
// the scheduler's lookahead for posts to clear window boundaries.
func NewInterPod(sched *sim.ShardedEngine, nets []*Network, gateways []NodeID, latency sim.Time) (*InterPod, error) {
	if sched == nil {
		return nil, fmt.Errorf("netsim: interpod needs a sharded scheduler")
	}
	pods := sched.Pods()
	if len(nets) != pods || len(gateways) != pods {
		return nil, fmt.Errorf("netsim: interpod got %d networks and %d gateways for %d pods",
			len(nets), len(gateways), pods)
	}
	if latency < sched.Lookahead() {
		return nil, fmt.Errorf("netsim: interpod latency %v below scheduler lookahead %v", latency, sched.Lookahead())
	}
	ip := &InterPod{
		sched:    sched,
		nets:     nets,
		gateways: append([]NodeID(nil), gateways...),
		latency:  latency,
		ports:    make([]int, pods),
		down:     make([][]bool, pods),
	}
	for p := range ip.down {
		ip.down[p] = make([]bool, pods*pods)
	}
	for p := range ip.ports {
		ip.ports[p] = interPodBasePort
	}
	return ip, nil
}

// Latency returns the one-way inter-pod delay.
func (ip *InterPod) Latency() sim.Time { return ip.latency }

// Pending returns the in-flight transfer count. Exact at barriers.
func (ip *InterPod) Pending() int { return int(atomic.LoadInt64(&ip.pending)) }

// Stats snapshots the fabric counters. Exact at barriers.
func (ip *InterPod) Stats() InterPodStats {
	return InterPodStats{
		Started:     atomic.LoadInt64(&ip.started),
		Completed:   atomic.LoadInt64(&ip.completed),
		Aborted:     atomic.LoadInt64(&ip.aborted),
		Relayed:     atomic.LoadInt64(&ip.relayed),
		Pending:     atomic.LoadInt64(&ip.pending),
		Stage1Bytes: atomic.LoadInt64(&ip.stage1Bytes),
		Stage2Bytes: atomic.LoadInt64(&ip.stage2Bytes),
	}
}

// CheckInvariants verifies fabric conservation. Call at a barrier or
// after a drain: started transfers must be accounted for exactly, and
// no ingress byte can exist without its egress byte.
func (ip *InterPod) CheckInvariants() error {
	s := ip.Stats()
	if s.Pending < 0 {
		return fmt.Errorf("netsim: interpod pending %d negative", s.Pending)
	}
	if s.Started != s.Completed+s.Aborted+s.Pending {
		return fmt.Errorf("netsim: interpod transfers leak: started %d != completed %d + aborted %d + pending %d",
			s.Started, s.Completed, s.Aborted, s.Pending)
	}
	if s.Stage2Bytes > s.Stage1Bytes {
		return fmt.Errorf("netsim: interpod ingress bytes %d exceed egress bytes %d", s.Stage2Bytes, s.Stage1Bytes)
	}
	return nil
}

// SchedulePairFault marks the (i, j) pod pair down at `at` on every
// pod's local view, recovering at recoverAt (0 = never). Call before the
// run starts: the updates are plain engine events, one per pod, all at
// the same simulated instant, which keeps the local views in agreement.
func (ip *InterPod) SchedulePairFault(i, j int, at, recoverAt sim.Time) error {
	pods := ip.sched.Pods()
	if i < 0 || i >= pods || j < 0 || j >= pods || i == j {
		return fmt.Errorf("netsim: interpod pair fault (%d, %d) invalid for %d pods", i, j, pods)
	}
	if recoverAt != 0 && recoverAt <= at {
		return fmt.Errorf("netsim: interpod pair recovery at %v not after fault at %v", recoverAt, at)
	}
	for p := 0; p < pods; p++ {
		view := ip.down[p]
		if _, err := ip.sched.PodEngine(p).At(at, func() {
			view[i*pods+j] = true
			view[j*pods+i] = true
		}); err != nil {
			return err
		}
		if recoverAt != 0 {
			if _, err := ip.sched.PodEngine(p).At(recoverAt, func() {
				view[i*pods+j] = false
				view[j*pods+i] = false
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// pairUp consults pod p's local view of the (a, b) pair.
func (ip *InterPod) pairUp(p, a, b int) bool {
	return !ip.down[p][a*ip.sched.Pods()+b]
}

// Send opens a transfer. It must be called from an event running on the
// source pod's engine (or before the run starts); the egress flow begins
// immediately.
func (ip *InterPod) Send(spec TransferSpec) error {
	pods := ip.sched.Pods()
	if spec.SrcPod < 0 || spec.SrcPod >= pods || spec.DstPod < 0 || spec.DstPod >= pods {
		return fmt.Errorf("netsim: interpod transfer between pods %d and %d outside [0, %d)", spec.SrcPod, spec.DstPod, pods)
	}
	if spec.SrcPod == spec.DstPod {
		return fmt.Errorf("netsim: interpod transfer within pod %d (use the pod's own network)", spec.SrcPod)
	}
	if spec.SizeBytes <= 0 {
		return fmt.Errorf("netsim: interpod transfer of %d bytes", spec.SizeBytes)
	}
	if spec.Src == ip.gateways[spec.SrcPod] {
		return fmt.Errorf("netsim: interpod source %d is pod %d's gateway", spec.Src, spec.SrcPod)
	}
	if spec.Dst == ip.gateways[spec.DstPod] {
		return fmt.Errorf("netsim: interpod destination %d is pod %d's gateway", spec.Dst, spec.DstPod)
	}

	atomic.AddInt64(&ip.started, 1)
	atomic.AddInt64(&ip.pending, 1)
	ip.ports[spec.SrcPod]++
	_, err := ip.nets[spec.SrcPod].StartFlow(FlowSpec{
		Src:       spec.Src,
		Dst:       ip.gateways[spec.SrcPod],
		SrcPort:   ip.ports[spec.SrcPod],
		DstPort:   InterPodPort,
		SizeBytes: spec.SizeBytes,
		Label:     spec.Label + "/egress",
		OnComplete: func(*Flow) {
			atomic.AddInt64(&ip.stage1Bytes, spec.SizeBytes)
			ip.route(spec.SrcPod, spec)
		},
		OnAbort: func(*Flow) { ip.abort(spec) },
	})
	if err != nil {
		atomic.AddInt64(&ip.aborted, 1)
		atomic.AddInt64(&ip.pending, -1)
		return fmt.Errorf("netsim: interpod egress: %w", err)
	}
	return nil
}

// route forwards a transfer sitting at pod `from`'s gateway toward its
// destination pod, consulting from's local pair view: direct when the
// pair is up, else through the lowest-numbered live relay pod, else
// abort. Runs on from's engine; the post lands after the barrier.
func (ip *InterPod) route(from int, spec TransferSpec) {
	now := ip.sched.PodEngine(from).Now()
	if ip.pairUp(from, from, spec.DstPod) {
		ip.post(from, spec.DstPod, now+ip.latency, func() { ip.ingress(spec) })
		return
	}
	for r := 0; r < ip.sched.Pods(); r++ {
		if r == from || r == spec.DstPod {
			continue
		}
		if ip.pairUp(from, from, r) && ip.pairUp(from, r, spec.DstPod) {
			relay := r
			atomic.AddInt64(&ip.relayed, 1)
			ip.post(from, relay, now+ip.latency, func() { ip.forward(relay, spec) })
			return
		}
	}
	ip.abort(spec)
}

// forward is the relay hop: one more store-and-forward leg from the
// relay pod's gateway. The relay re-checks its own (agreeing) view so a
// recovery between legs still routes consistently.
func (ip *InterPod) forward(relay int, spec TransferSpec) {
	if !ip.pairUp(relay, relay, spec.DstPod) {
		ip.abort(spec)
		return
	}
	now := ip.sched.PodEngine(relay).Now()
	ip.post(relay, spec.DstPod, now+ip.latency, func() { ip.ingress(spec) })
}

// ingress runs on the destination pod's engine: the final gateway→host
// flow, completing the transfer.
func (ip *InterPod) ingress(spec TransferSpec) {
	ip.ports[spec.DstPod]++
	_, err := ip.nets[spec.DstPod].StartFlow(FlowSpec{
		Src:       ip.gateways[spec.DstPod],
		Dst:       spec.Dst,
		SrcPort:   ip.ports[spec.DstPod],
		DstPort:   InterPodPort,
		SizeBytes: spec.SizeBytes,
		Label:     spec.Label + "/ingress",
		OnComplete: func(*Flow) {
			atomic.AddInt64(&ip.stage2Bytes, spec.SizeBytes)
			atomic.AddInt64(&ip.completed, 1)
			atomic.AddInt64(&ip.pending, -1)
			if spec.OnComplete != nil {
				spec.OnComplete()
			}
		},
		OnAbort: func(*Flow) { ip.abort(spec) },
	})
	if err != nil {
		ip.abort(spec)
	}
}

// abort finishes a transfer on the failure path, on whichever pod's
// engine observed it.
func (ip *InterPod) abort(spec TransferSpec) {
	atomic.AddInt64(&ip.aborted, 1)
	atomic.AddInt64(&ip.pending, -1)
	if spec.OnAbort != nil {
		spec.OnAbort()
	}
}

// post wraps ShardedEngine.Post; a rejected post inside an event is an
// internal protocol bug (latency below lookahead), not a caller error.
func (ip *InterPod) post(src, dst int, at sim.Time, fn func()) {
	if err := ip.sched.Post(src, dst, at, fn); err != nil {
		panic(fmt.Sprintf("netsim: interpod post: %v", err))
	}
}
