package netsim

import (
	"testing"

	"keddah/internal/sim"
)

// Satellite coverage: SetLinkCapacityScale / Reachable / AbortFlowsWhere
// edge cases must behave identically (API-wise) under both transports —
// degraded links, partitions and predicate aborts are fault-layer
// behaviours the transport model must not change.

var bothTransports = []string{"fluid", "tcp"}

func TestSetLinkCapacityScaleEdgeCases(t *testing.T) {
	for _, tr := range bothTransports {
		t.Run(tr, func(t *testing.T) {
			topo := mustStar(t, 3, Gbps)
			eng := sim.New()
			net := NewNetwork(eng, topo, Config{Transport: tr})
			hosts := topo.Hosts()

			// Out-of-range link and out-of-range factors are rejected.
			if err := net.SetLinkCapacityScale(LinkID(topo.NumLinks()), 0.5); err == nil {
				t.Error("out-of-range link accepted")
			}
			if err := net.SetLinkCapacityScale(0, 0); err == nil {
				t.Error("zero factor accepted")
			}
			if err := net.SetLinkCapacityScale(0, -1); err == nil {
				t.Error("negative factor accepted")
			}

			// Degrade mid-transfer, then restore: the flow must still finish,
			// and more slowly than an undisturbed run. The fault windows are
			// scheduled as simulation events so they occupy real simulated
			// time regardless of the transport's own event cadence.
			var done bool
			if _, err := net.StartFlow(FlowSpec{
				Src: hosts[0], Dst: hosts[1], SrcPort: 1, DstPort: 2, SizeBytes: 12_500_000,
				OnComplete: func(*Flow) { done = true },
			}); err != nil {
				t.Fatal(err)
			}
			scale := func(factor float64) {
				for lid := 0; lid < topo.NumLinks(); lid++ {
					if err := net.SetLinkCapacityScale(LinkID(lid), factor); err != nil {
						t.Fatal(err)
					}
				}
			}
			if _, err := eng.At(sim.Time(20_000_000), func() { scale(0.05) }); err != nil {
				t.Fatal(err)
			}
			if _, err := eng.At(sim.Time(40_000_000), func() { scale(1.0) }); err != nil {
				t.Fatal(err)
			}
			if _, err := eng.RunAll(); err != nil {
				t.Fatal(err)
			}
			if !done {
				t.Fatal("flow did not survive degrade/restore cycle")
			}
			if err := net.VerifyState(); err != nil {
				t.Fatal(err)
			}
			// An undisturbed 12.5 MB flow takes ~100 ms at 1 Gbps; the
			// degraded window must have stretched the run past that.
			if now := eng.Now(); now < sim.Time(110_000_000) {
				t.Errorf("run finished at %v — degrade apparently had no effect", now)
			}
		})
	}
}

func TestReachableUnderFaults(t *testing.T) {
	for _, tr := range bothTransports {
		t.Run(tr, func(t *testing.T) {
			topo := mustStar(t, 3, Gbps)
			eng := sim.New()
			net := NewNetwork(eng, topo, Config{Transport: tr})
			hosts := topo.Hosts()

			if !net.Reachable(hosts[0], hosts[1]) {
				t.Fatal("healthy fabric not reachable")
			}
			if !net.Reachable(hosts[0], hosts[0]) {
				t.Error("self-reachability must always hold")
			}
			// Cut every link incident to h1: h0↔h1 partitions, h0→h2
			// survives, h1→h1 loopback stays reachable.
			for lid, l := range topo.links {
				if l.From == hosts[1] || l.To == hosts[1] {
					if err := net.SetLinkState(LinkID(lid), false); err != nil {
						t.Fatal(err)
					}
				}
			}
			if net.Reachable(hosts[0], hosts[1]) || net.Reachable(hosts[1], hosts[0]) {
				t.Error("severed host still reachable")
			}
			if !net.Reachable(hosts[0], hosts[2]) {
				t.Error("unaffected pair lost reachability")
			}
			if !net.Reachable(hosts[1], hosts[1]) {
				t.Error("loopback reachability lost on severed host")
			}
			// A flow opened into the partition aborts after the connect
			// timeout rather than erroring at start.
			var aborted bool
			if _, err := net.StartFlow(FlowSpec{
				Src: hosts[0], Dst: hosts[1], SizeBytes: 1 << 20,
				OnAbort: func(*Flow) { aborted = true },
			}); err != nil {
				t.Fatal(err)
			}
			if _, err := eng.RunAll(); err != nil {
				t.Fatal(err)
			}
			if !aborted {
				t.Error("flow into partition did not abort")
			}
			// Heal and verify reachability returns.
			for lid, l := range topo.links {
				if l.From == hosts[1] || l.To == hosts[1] {
					if err := net.SetLinkState(LinkID(lid), true); err != nil {
						t.Fatal(err)
					}
				}
			}
			if !net.Reachable(hosts[0], hosts[1]) {
				t.Error("healed fabric not reachable")
			}
		})
	}
}

func TestAbortFlowsWhereEdgeCases(t *testing.T) {
	for _, tr := range bothTransports {
		t.Run(tr, func(t *testing.T) {
			topo := mustStar(t, 4, Gbps)
			eng := sim.New()
			net := NewNetwork(eng, topo, Config{Transport: tr})
			hosts := topo.Hosts()

			// Nothing active: predicate matches nothing.
			if n := net.AbortFlowsWhere(func(FlowSpec) bool { return true }); n != 0 {
				t.Errorf("abort on idle network tore down %d flows", n)
			}

			aborts, completes := 0, 0
			start := func(src, dst NodeID, port int) {
				t.Helper()
				if _, err := net.StartFlow(FlowSpec{
					Src: src, Dst: dst, SrcPort: port, DstPort: 13562, SizeBytes: 8 << 20,
					OnComplete: func(*Flow) { completes++ },
					OnAbort:    func(*Flow) { aborts++ },
				}); err != nil {
					t.Fatal(err)
				}
			}
			start(hosts[1], hosts[0], 1)
			start(hosts[2], hosts[0], 2)
			start(hosts[3], hosts[0], 3)

			// Flows still propagating are too young to abort.
			if n := net.AbortFlowsWhere(func(FlowSpec) bool { return true }); n != 0 {
				t.Errorf("aborted %d propagating flows, want 0", n)
			}
			// Let them activate, then kill the flows from hosts[2] only.
			if _, err := eng.Run(sim.Time(5_000_000)); err != nil {
				t.Fatal(err)
			}
			n := net.AbortFlowsWhere(func(s FlowSpec) bool { return s.Src == hosts[2] })
			if n != 1 {
				t.Errorf("aborted %d flows, want 1", n)
			}
			if err := net.VerifyState(); err != nil {
				t.Fatal(err)
			}
			// Matching nothing is a no-op even with survivors active.
			if n := net.AbortFlowsWhere(func(s FlowSpec) bool { return s.DstPort == 99 }); n != 0 {
				t.Errorf("no-match abort tore down %d flows", n)
			}
			if _, err := eng.RunAll(); err != nil {
				t.Fatal(err)
			}
			if aborts != 1 || completes != 2 {
				t.Errorf("aborts/completes = %d/%d, want 1/2", aborts, completes)
			}
			if net.ActiveFlows() != 0 {
				t.Errorf("%d flows still active after RunAll", net.ActiveFlows())
			}
		})
	}
}
