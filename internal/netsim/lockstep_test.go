package netsim

import (
	"reflect"
	"testing"

	"keddah/internal/sim"
)

// flowOutcome is the observable end state of one flow, recorded by the
// lockstep test's completion callbacks.
type flowOutcome struct {
	End         sim.Time
	Aborted     bool
	Transferred int64
	Segments    []RateSegment
}

// lockstepScenario schedules a deterministic pseudo-random flow mix —
// including loopback transfers — and, when chaos is on, a deterministic
// fault schedule (link down/up, capacity degrade/restore, endpoint kills)
// onto the network. Every flow records its outcome into rec keyed by flow
// id; both cores assign ids in start order, so the maps line up.
func lockstepScenario(t *testing.T, net *Network, seed int64, nFlows int, chaos bool, rec map[uint64]flowOutcome) {
	t.Helper()
	hosts := net.Topology().Hosts()
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	eng := net.Engine()
	for i := 0; i < nFlows; i++ {
		src := hosts[next(len(hosts))]
		dst := hosts[next(len(hosts))] // src == dst exercises loopback
		size := int64(next(60_000_000) + 500)
		delay := sim.Time(next(1_500_000_000))
		spec := FlowSpec{Src: src, Dst: dst, SrcPort: 1000 + i, DstPort: 2000, SizeBytes: size}
		record := func(f *Flow) {
			rec[f.ID()] = flowOutcome{End: f.End(), Aborted: f.Aborted(), Transferred: f.Transferred(), Segments: f.Segments()}
		}
		spec.OnComplete = record
		spec.OnAbort = record
		eng.After(delay, func() {
			if _, err := net.StartFlow(spec); err != nil {
				t.Error(err)
			}
		})
	}
	if !chaos {
		return
	}
	nl := net.Topology().NumLinks()
	for i := 0; i < 6; i++ {
		lid := LinkID(next(nl))
		at := sim.Time(next(1_200_000_000) + 100_000_000)
		dur := sim.Time(next(500_000_000) + 50_000_000)
		eng.After(at, func() {
			if err := net.SetLinkState(lid, false); err != nil {
				t.Error(err)
			}
		})
		eng.After(at+dur, func() {
			if err := net.SetLinkState(lid, true); err != nil {
				t.Error(err)
			}
		})
	}
	for i := 0; i < 3; i++ {
		lid := LinkID(next(nl))
		at := sim.Time(next(1_200_000_000) + 100_000_000)
		dur := sim.Time(next(500_000_000) + 50_000_000)
		eng.After(at, func() {
			if err := net.SetLinkCapacityScale(lid, 0.25); err != nil {
				t.Error(err)
			}
		})
		eng.After(at+dur, func() {
			if err := net.SetLinkCapacityScale(lid, 1); err != nil {
				t.Error(err)
			}
		})
	}
	for i := 0; i < 2; i++ {
		mod := 7 + i
		at := sim.Time(next(1_500_000_000) + 200_000_000)
		eng.After(at, func() {
			net.AbortFlowsWhere(func(s FlowSpec) bool { return s.SrcPort%13 == mod })
		})
	}
}

// TestSoaMatchesPointerCore is the tentpole equivalence property: the
// struct-of-arrays core and the pointer-per-flow reference core must
// produce bit-identical trajectories — same event stream, same clocks,
// same per-flow rates at every step, same completion times, transferred
// bytes and rate histories, same aggregate counters — on plain traffic
// and under chaos schedules with aborts and re-routes.
func TestSoaMatchesPointerCore(t *testing.T) {
	build := map[string]func() (*Topology, error){
		"star":      func() (*Topology, error) { return Star(9, Gbps) },
		"fattree":   func() (*Topology, error) { return FatTree(4, Gbps) },
		"multirack": func() (*Topology, error) { return MultiRack(3, 5, Gbps, 4*Gbps) },
	}
	cases := []struct {
		topo   string
		seed   int64
		nFlows int
		chaos  bool
	}{
		{"star", 41, 200, false},
		{"star", 42, 150, true},
		{"fattree", 51, 300, false},
		{"fattree", 52, 250, true},
		{"multirack", 61, 200, false},
		{"multirack", 62, 200, true},
	}
	for _, tc := range cases {
		name := tc.topo
		if tc.chaos {
			name += "/chaos"
		}
		t.Run(name, func(t *testing.T) {
			mk := func(pointer bool) (*sim.Engine, *Network, map[uint64]flowOutcome) {
				topo, err := build[tc.topo]()
				if err != nil {
					t.Fatal(err)
				}
				eng := sim.New()
				net := NewNetwork(eng, topo, Config{UsePointerFlows: pointer})
				rec := make(map[uint64]flowOutcome, tc.nFlows)
				lockstepScenario(t, net, tc.seed, tc.nFlows, tc.chaos, rec)
				return eng, net, rec
			}
			soaEng, soaNet, soaRec := mk(false)
			ptrEng, ptrNet, ptrRec := mk(true)

			steps := 0
			for {
				sOK := soaEng.Step()
				pOK := ptrEng.Step()
				if sOK != pOK {
					t.Fatalf("event streams diverged after %d steps", steps)
				}
				if !sOK {
					break
				}
				steps++
				if soaEng.Now() != ptrEng.Now() {
					t.Fatalf("step %d: clocks diverged %v vs %v", steps, soaEng.Now(), ptrEng.Now())
				}
				if soaNet.ActiveFlows() != ptrNet.ActiveFlows() {
					t.Fatalf("step %d: active sets differ: %d vs %d", steps, soaNet.ActiveFlows(), ptrNet.ActiveFlows())
				}
				sr, pr := snapshotRates(soaNet), snapshotRates(ptrNet)
				if !reflect.DeepEqual(sr, pr) {
					t.Fatalf("step %d: rate vectors diverged:\nsoa %v\nptr %v", steps, sr, pr)
				}
			}
			if soaNet.ActiveFlows() != 0 || ptrNet.ActiveFlows() != 0 {
				t.Fatalf("flows stranded: %d soa, %d ptr", soaNet.ActiveFlows(), ptrNet.ActiveFlows())
			}
			if soaNet.Completed() != ptrNet.Completed() ||
				soaNet.AbortedFlows() != ptrNet.AbortedFlows() ||
				soaNet.TotalBytes() != ptrNet.TotalBytes() {
				t.Fatalf("aggregates differ: completed %d/%d aborted %d/%d bytes %v/%v",
					soaNet.Completed(), ptrNet.Completed(),
					soaNet.AbortedFlows(), ptrNet.AbortedFlows(),
					soaNet.TotalBytes(), ptrNet.TotalBytes())
			}
			if len(soaRec) != len(ptrRec) {
				t.Fatalf("outcome counts differ: %d vs %d", len(soaRec), len(ptrRec))
			}
			for id, so := range soaRec {
				po, ok := ptrRec[id]
				if !ok {
					t.Fatalf("flow %d finished on soa only", id)
				}
				if !reflect.DeepEqual(so, po) {
					t.Fatalf("flow %d outcomes diverged:\nsoa %+v\nptr %+v", id, so, po)
				}
			}
			if err := soaNet.VerifyState(); err != nil {
				t.Fatal(err)
			}
			if err := ptrNet.VerifyState(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
