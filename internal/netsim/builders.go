package netsim

import (
	"fmt"
)

// Common capacities in bits per second.
const (
	Gbps  = 1e9
	Mbps  = 1e6
	TenGE = 10 * Gbps
)

// DefaultLatencyNs is the per-link propagation delay used by the builders
// (50 µs, a typical intra-datacenter figure).
const DefaultLatencyNs = 50_000

// Star builds a single-switch topology with n hosts, each attached at
// hostBps. All hosts are in rack 0.
func Star(n int, hostBps float64) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("netsim: star needs >=1 host, got %d", n)
	}
	b := NewBuilder()
	sw := b.AddSwitch("core")
	for i := 0; i < n; i++ {
		h := b.AddHost(fmt.Sprintf("h%02d", i), 0)
		b.Connect(h, sw, hostBps, DefaultLatencyNs)
	}
	return b.Build()
}

// MultiRack builds racks × hostsPerRack hosts. Hosts attach to their rack
// switch at hostBps; each rack switch attaches to a core switch at
// uplinkBps. uplinkBps < hostsPerRack×hostBps yields an oversubscribed
// fabric, the regime where Hadoop's shuffle is network-bound.
func MultiRack(racks, hostsPerRack int, hostBps, uplinkBps float64) (*Topology, error) {
	if racks < 1 || hostsPerRack < 1 {
		return nil, fmt.Errorf("netsim: multirack needs >=1 rack and host, got %d x %d", racks, hostsPerRack)
	}
	b := NewBuilder()
	core := b.AddSwitch("core")
	for r := 0; r < racks; r++ {
		tor := b.AddSwitch(fmt.Sprintf("tor%d", r))
		b.Connect(tor, core, uplinkBps, DefaultLatencyNs)
		for i := 0; i < hostsPerRack; i++ {
			h := b.AddHost(fmt.Sprintf("r%dh%02d", r, i), r)
			b.Connect(h, tor, hostBps, DefaultLatencyNs)
		}
	}
	return b.Build()
}

// FatTree builds a k-ary fat-tree (k even): k pods of k/2 edge and k/2
// aggregation switches, (k/2)² core switches, and k³/4 hosts at linkBps on
// every link. Hosts under one edge switch share a rack index.
func FatTree(k int, linkBps float64) (*Topology, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("netsim: fat-tree arity must be even and >=2, got %d", k)
	}
	b := NewBuilder()
	half := k / 2

	cores := make([]NodeID, half*half)
	for i := range cores {
		cores[i] = b.AddSwitch(fmt.Sprintf("core%d", i))
	}
	rack := 0
	for p := 0; p < k; p++ {
		aggs := make([]NodeID, half)
		edges := make([]NodeID, half)
		for i := 0; i < half; i++ {
			aggs[i] = b.AddSwitch(fmt.Sprintf("p%da%d", p, i))
			edges[i] = b.AddSwitch(fmt.Sprintf("p%de%d", p, i))
		}
		for _, e := range edges {
			for _, a := range aggs {
				b.Connect(e, a, linkBps, DefaultLatencyNs)
			}
		}
		for i, a := range aggs {
			for j := 0; j < half; j++ {
				b.Connect(a, cores[i*half+j], linkBps, DefaultLatencyNs)
			}
		}
		for i, e := range edges {
			for j := 0; j < half; j++ {
				h := b.AddHost(fmt.Sprintf("p%de%dh%d", p, i, j), rack)
				b.Connect(h, e, linkBps, DefaultLatencyNs)
			}
			rack++
		}
	}
	return b.Build()
}
