//go:build !race

package netsim

// raceEnabled reports whether the race detector is compiled in; the
// allocation-accounting tests skip under it (the race runtime allocates).
const raceEnabled = false
