package netsim

import (
	"keddah/internal/sim"
)

// soaCore is the default flow storage engine: an arena-per-capture,
// struct-of-arrays layout where every per-flow attribute lives in a
// parallel slice keyed by an int32 slot id. Slots are recycled through a
// free list and generation-counted (a stale FlowID can never touch a
// slot's next occupant), flow paths live in one shared arena indexed by
// slot × stride, and rate-history segments come from a chunk pool linked
// by int32 next ids. Together with the engine's event slab and persistent
// per-slot completion timers, a settled capture loop — start, activate,
// reallocate, complete, recycle — performs zero heap allocations.
//
// The pointer-per-flow implementation survives as ptrCore; the two are
// kept trajectory-identical (same event order, same floating-point
// arithmetic, same telemetry counters), which the lockstep tests enforce.
type soaCore struct {
	nw   *Network
	eng  *sim.Engine
	topo *Topology
	cfg  Config

	// Per-slot parallel arrays (SoA). gen counts slot reuse; state is one
	// of the slot* constants; listIdx is the slot's position in active
	// while state == slotActive.
	fid       []uint64
	spec      []FlowSpec
	gen       []uint32
	state     []uint8
	start     []sim.Time
	activated []sim.Time
	last      []sim.Time
	remaining []float64 // bytes
	rate      []float64 // bps
	listIdx   []int32
	handle    []*Flow
	// completeEv[s] is the slot's persistent completion timer, created on
	// the slot's first completion scheduling and re-armed by every
	// subsequent occupant — one event allocation per slot, ever.
	completeEv []sim.Event

	// Path storage: slot s's path is pathArena[s*stride : s*stride+pathLen[s]],
	// with posArena the parallel per-link index positions. The stride
	// grows (rarely — fabric diameter is small) by arena rebuild.
	pathArena  []LinkID
	posArena   []int32
	pathLen    []int32
	pathStride int

	// Rate-segment chunk pool: per-slot chained chunk lists, recycled in
	// O(1) on slot free.
	segChunks   []segChunk
	segFreeHead int32
	segHead     []int32
	segTail     []int32
	segCount    []int32

	freeSlots []int32

	// active lists transferring slots in activation order (the order the
	// allocator and settle iterate in — it mirrors ptrCore.flows exactly).
	active []int32
	// linkFlows indexes the active slots crossing each link, maintained
	// in O(len(path)) on flow activation and completion so the allocator
	// never scans the whole active set to find who shares a bottleneck.
	linkFlows [][]int32

	seq            uint64
	reallocPending bool
	dirtyE         sim.Event

	// tcp carries the per-flow TCP state machine when Config.Transport is
	// "tcp"; nil in fluid mode, and every hook below nil-checks it so the
	// fluid trajectory is bit-identical to a build without the subsystem.
	tcp *tcpCore

	// Allocation scratch, reused across reallocations. remCap/cnt are
	// indexed by LinkID; rates/frozen by active-list position; freezeBuf
	// holds one round's bottleneck candidates; pathScratch is the route
	// computation buffer.
	remCap      []float64
	cnt         []int
	rates       []float64
	frozen      []bool
	freezeBuf   []int32
	pathScratch []LinkID

	// Stored callbacks, bound once so scheduling never allocates a closure.
	activateCb func(uint64)
	abortCb    func(uint64)
	finishCb   func(uint64)
}

// Slot lifecycle states.
const (
	slotFree        uint8 = iota // on the free list
	slotPropagating              // activation (or no-route abort) event pending
	slotLoopback                 // src==dst transfer, not in the active list
	slotActive                   // transferring, in the active list
)

func encodeSlotGen(s int32, g uint32) uint64 {
	return uint64(uint32(s)) | uint64(g)<<32
}

func decodeSlotGen(arg uint64) (int32, uint32) {
	return int32(uint32(arg)), uint32(arg >> 32)
}

func newSoaCore(nw *Network) *soaCore {
	c := &soaCore{
		nw:          nw,
		eng:         nw.eng,
		topo:        nw.topo,
		cfg:         nw.cfg,
		pathStride:  8,
		segFreeHead: -1,
		linkFlows:   make([][]int32, len(nw.topo.links)),
		remCap:      make([]float64, len(nw.topo.links)),
		cnt:         make([]int, len(nw.topo.links)),
	}
	c.activateCb = c.activate
	c.abortCb = c.abortByArg
	c.finishCb = c.finishByArg
	c.dirtyE = c.eng.NewTimer(c.dirty, 0)
	if tr, err := ParseTransport(nw.cfg.Transport); err == nil && tr == TransportTCP {
		c.tcp = newTCPCore(c)
	}
	return c
}

// growLen extends s to length n, reallocating with headroom when needed.
func growLen[T any](s []T, n int) []T {
	if n <= cap(s) {
		return s[:n]
	}
	out := make([]T, n, 2*n)
	copy(out, s)
	return out
}

// growCap raises s's capacity to at least n without changing its length.
func growCap[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s
	}
	out := make([]T, len(s), n)
	copy(out, s)
	return out
}

// reserve pre-sizes every slab for peak concurrent flows so the
// steady-state loop never grows storage.
func (c *soaCore) reserve(peak int) {
	c.fid = growCap(c.fid, peak)
	c.spec = growCap(c.spec, peak)
	c.gen = growCap(c.gen, peak)
	c.state = growCap(c.state, peak)
	c.start = growCap(c.start, peak)
	c.activated = growCap(c.activated, peak)
	c.last = growCap(c.last, peak)
	c.remaining = growCap(c.remaining, peak)
	c.rate = growCap(c.rate, peak)
	c.listIdx = growCap(c.listIdx, peak)
	c.handle = growCap(c.handle, peak)
	c.completeEv = growCap(c.completeEv, peak)
	c.pathLen = growCap(c.pathLen, peak)
	c.segHead = growCap(c.segHead, peak)
	c.segTail = growCap(c.segTail, peak)
	c.segCount = growCap(c.segCount, peak)
	c.pathArena = growCap(c.pathArena, peak*c.pathStride)
	c.posArena = growCap(c.posArena, peak*c.pathStride)
	c.freeSlots = growCap(c.freeSlots, peak)
	c.active = growCap(c.active, peak)
	c.rates = growCap(c.rates, peak)
	c.frozen = growCap(c.frozen, peak)
	c.freezeBuf = growCap(c.freezeBuf, peak)
	c.segChunks = growCap(c.segChunks, peak)
	if c.tcp != nil {
		c.tcp.reserve(peak)
	}
	// Per-link index lists: flows × mean path length spread over links,
	// with a floor so small fabrics start usable.
	if nl := len(c.linkFlows); nl > 0 {
		per := 8 * peak / nl
		if per < 8 {
			per = 8
		}
		for i := range c.linkFlows {
			c.linkFlows[i] = growCap(c.linkFlows[i], per)
		}
	}
}

// allocSlot takes a slot from the free list or appends a fresh one to
// every parallel array.
func (c *soaCore) allocSlot() int32 {
	if n := len(c.freeSlots); n > 0 {
		s := c.freeSlots[n-1]
		c.freeSlots = c.freeSlots[:n-1]
		return s
	}
	s := int32(len(c.fid))
	c.fid = append(c.fid, 0)
	c.spec = append(c.spec, FlowSpec{})
	c.gen = append(c.gen, 1)
	c.state = append(c.state, slotFree)
	c.start = append(c.start, 0)
	c.activated = append(c.activated, 0)
	c.last = append(c.last, 0)
	c.remaining = append(c.remaining, 0)
	c.rate = append(c.rate, 0)
	c.listIdx = append(c.listIdx, -1)
	c.handle = append(c.handle, nil)
	c.completeEv = append(c.completeEv, sim.Event{})
	c.pathLen = append(c.pathLen, 0)
	c.segHead = append(c.segHead, -1)
	c.segTail = append(c.segTail, -1)
	c.segCount = append(c.segCount, 0)
	need := (int(s) + 1) * c.pathStride
	c.pathArena = growLen(c.pathArena, need)
	c.posArena = growLen(c.posArena, need)
	if c.tcp != nil {
		c.tcp.appendSlot()
	}
	return s
}

// freeSlot recycles a slot: the generation bump invalidates every
// outstanding FlowID/handle reference and the spec (with its callback
// closures) is dropped so finished flows hold nothing alive.
func (c *soaCore) freeSlot(s int32) {
	c.cancelCompletion(s)
	c.recycleSegments(s)
	c.gen[s]++
	c.state[s] = slotFree
	c.listIdx[s] = -1
	c.pathLen[s] = 0
	c.handle[s] = nil
	c.spec[s] = FlowSpec{}
	c.freeSlots = append(c.freeSlots, s)
}

// path returns slot s's route (a view into the shared arena).
func (c *soaCore) path(s int32) []LinkID {
	off := int(s) * c.pathStride
	return c.pathArena[off : off+int(c.pathLen[s])]
}

// linkPos returns slot s's per-link index positions (parallel to path).
func (c *soaCore) linkPos(s int32) []int32 {
	off := int(s) * c.pathStride
	return c.posArena[off : off+int(c.pathLen[s])]
}

// storePath installs p as slot s's route, growing the arena stride in the
// (rare) case a path outgrows it.
func (c *soaCore) storePath(s int32, p []LinkID) {
	if len(p) > c.pathStride {
		c.growStride(len(p))
	}
	copy(c.pathArena[int(s)*c.pathStride:], p)
	c.pathLen[s] = int32(len(p))
}

// growStride rebuilds both arenas with a wider per-slot stride,
// preserving every slot's stored prefix (including live linkPos values).
func (c *soaCore) growStride(need int) {
	ns := c.pathStride
	for ns < need {
		ns *= 2
	}
	slots := len(c.fid)
	pa := make([]LinkID, slots*ns)
	po := make([]int32, slots*ns)
	for i := 0; i < slots; i++ {
		l := int(c.pathLen[i])
		copy(pa[i*ns:], c.pathArena[i*c.pathStride:i*c.pathStride+l])
		copy(po[i*ns:], c.posArena[i*c.pathStride:i*c.pathStride+l])
	}
	c.pathArena, c.posArena, c.pathStride = pa, po, ns
}

// setPath routes spec's endpoints into the scratch buffer and installs
// the result for slot s — no per-flow path slice is ever allocated.
func (c *soaCore) setPath(s int32, spec FlowSpec, fid uint64) error {
	p, err := c.topo.AppendPath(c.pathScratch[:0], spec.Src, spec.Dst, flowHash(spec, fid))
	c.pathScratch = p[:0]
	if err != nil {
		return err
	}
	c.storePath(s, p)
	return nil
}

// segChunkCap sizes one rate-segment chunk (~232 B — small enough to
// recycle freely, large enough that ordinary flows need exactly one).
const segChunkCap = 14

type segChunk struct {
	next int32
	used int32
	seg  [segChunkCap]RateSegment
}

func (c *soaCore) allocChunk() int32 {
	if c.segFreeHead >= 0 {
		id := c.segFreeHead
		ch := &c.segChunks[id]
		c.segFreeHead = ch.next
		ch.next = -1
		ch.used = 0
		return id
	}
	c.segChunks = append(c.segChunks, segChunk{next: -1})
	return int32(len(c.segChunks) - 1)
}

func (c *soaCore) appendSegment(s int32, rs RateSegment) {
	tail := c.segTail[s]
	if tail < 0 || c.segChunks[tail].used == segChunkCap {
		nc := c.allocChunk()
		if tail < 0 {
			c.segHead[s] = nc
		} else {
			c.segChunks[tail].next = nc
		}
		c.segTail[s] = nc
		tail = nc
	}
	ch := &c.segChunks[tail]
	ch.seg[ch.used] = rs
	ch.used++
	c.segCount[s]++
}

// recycleSegments splices slot s's whole chunk chain onto the free list.
func (c *soaCore) recycleSegments(s int32) {
	if head := c.segHead[s]; head >= 0 {
		c.segChunks[c.segTail[s]].next = c.segFreeHead
		c.segFreeHead = head
	}
	c.segHead[s] = -1
	c.segTail[s] = -1
	c.segCount[s] = 0
}

// copySegments materialises slot s's rate history as an exact-size slice
// (used for completion snapshots and live Segments() reads).
func (c *soaCore) copySegments(s int32) []RateSegment {
	n := int(c.segCount[s])
	if n == 0 {
		return nil
	}
	out := make([]RateSegment, 0, n)
	for id := c.segHead[s]; id >= 0; id = c.segChunks[id].next {
		ch := &c.segChunks[id]
		out = append(out, ch.seg[:ch.used]...)
	}
	return out
}

// startFlow books a slot for the validated spec. A handle is built only
// when someone can observe it (caller, taps, or completion callbacks) —
// the id-only steady-state path allocates nothing.
func (c *soaCore) startFlow(spec FlowSpec, wantHandle bool) (FlowID, *Flow) {
	now := c.eng.Now()
	s := c.allocSlot()
	fid := c.seq
	c.seq++
	c.fid[s] = fid
	c.spec[s] = spec
	c.start[s] = now
	c.remaining[s] = float64(spec.SizeBytes)
	c.rate[s] = 0
	c.state[s] = slotPropagating
	c.nw.metrics.FlowsStarted.Inc()

	var h *Flow
	if wantHandle || len(c.nw.taps) > 0 || spec.OnComplete != nil || spec.OnAbort != nil {
		h = &Flow{id: fid, spec: spec, start: now, soa: c, slot: s, gen: c.gen[s]}
		c.handle[s] = h
	}
	id := FlowID{slot: s, gen: c.gen[s]}

	var latency int64
	if spec.Src != spec.Dst {
		if err := c.setPath(s, spec, fid); err != nil {
			// Partitioned: park the flow and abort after the connect
			// timeout. (Build guarantees full reachability, so this only
			// happens once link faults are in play.)
			for _, t := range c.nw.taps {
				t.FlowStarted(h)
			}
			c.eng.AfterCall(noRouteTimeout, c.abortCb, encodeSlotGen(s, c.gen[s]))
			return id, h
		}
		latency = c.topo.PathLatencyNs(c.path(s))
		// The TCP transport models slow start natively; the analytic
		// startup penalty belongs to the fluid model only.
		if c.cfg.ModelSlowStart && c.tcp == nil {
			latency += slowStartPenaltyNs(spec.SizeBytes, latency)
		}
	} else {
		latency = 10_000 // 10 µs loopback
	}

	for _, t := range c.nw.taps {
		t.FlowStarted(h)
	}

	// The flow starts transferring after propagation latency.
	c.eng.AfterCall(sim.Time(latency), c.activateCb, encodeSlotGen(s, c.gen[s]))
	return id, h
}

// activate fires after the propagation latency: the flow joins the
// active set (or the loopback fast path) and the allocation goes dirty.
func (c *soaCore) activate(arg uint64) {
	s, g := decodeSlotGen(arg)
	if c.gen[s] != g || c.state[s] != slotPropagating {
		return // aborted while still propagating
	}
	now := c.eng.Now()
	c.activated[s] = now
	c.last[s] = now
	if c.spec[s].Src == c.spec[s].Dst {
		// Loopback: fixed rate, no interaction with fairness.
		c.state[s] = slotLoopback
		c.rate[s] = c.cfg.LoopbackBps
		c.appendSegment(s, RateSegment{Start: now, RateBps: c.rate[s]})
		d := durationFor(c.remaining[s], c.rate[s])
		c.armCompletion(s, now+d)
		return
	}
	if !c.topo.pathUp(c.path(s)) {
		// A link on the precomputed path went down during the
		// propagation window: reroute if the fabric still connects
		// the endpoints, abort otherwise.
		if err := c.setPath(s, c.spec[s], c.fid[s]); err != nil {
			c.abortSlot(s)
			return
		}
	}
	c.state[s] = slotActive
	c.listIdx[s] = int32(len(c.active))
	c.active = append(c.active, s)
	c.linkInsert(s)
	if c.tcp != nil {
		c.tcp.onActivate(s)
	}
	c.markDirty()
}

func (c *soaCore) abortByArg(arg uint64) {
	s, g := decodeSlotGen(arg)
	if c.gen[s] != g || c.state[s] == slotFree {
		return
	}
	c.abortSlot(s)
}

func (c *soaCore) finishByArg(arg uint64) {
	c.finish(int32(uint32(arg)))
}

// linkInsert adds the slot to the per-link active index, O(len(path)).
func (c *soaCore) linkInsert(s int32) {
	pos := c.linkPos(s)
	for i, lid := range c.path(s) {
		pos[i] = int32(len(c.linkFlows[lid]))
		c.linkFlows[lid] = append(c.linkFlows[lid], s)
	}
}

// linkRemove deletes the slot from the per-link index by swap-remove,
// O(len(path)²) worst case (paths are ≤6 links on a fat-tree).
func (c *soaCore) linkRemove(s int32) {
	pos := c.linkPos(s)
	for i, lid := range c.path(s) {
		lst := c.linkFlows[lid]
		p := pos[i]
		last := int32(len(lst) - 1)
		moved := lst[last]
		lst[p] = moved
		c.linkFlows[lid] = lst[:last]
		if moved != s {
			// Tell the relocated slot where it now sits on this link.
			mpos := c.linkPos(moved)
			for j, ml := range c.path(moved) {
				if ml == lid {
					mpos[j] = p
					break
				}
			}
		}
	}
}

// markDirty coalesces reallocation requests occurring at the same instant
// onto the network's single persistent dirty timer.
func (c *soaCore) markDirty() {
	if c.reallocPending {
		return
	}
	c.reallocPending = true
	_ = c.dirtyE.Schedule(c.eng.Now())
}

func (c *soaCore) dirty(uint64) {
	c.reallocPending = false
	c.reallocate()
}

// settle charges elapsed transfer progress to every active flow. In TCP
// mode the same charge feeds the per-tick acked-byte accumulator (window
// growth tracks delivered bytes exactly, independent of tick cadence) and
// the link queues integrate over the elapsed interval.
func (c *soaCore) settle() {
	now := c.eng.Now()
	for _, s := range c.active {
		if dt := now - c.last[s]; dt > 0 && c.rate[s] > 0 {
			d := c.rate[s] * dt.Seconds() / 8
			c.remaining[s] -= d
			if c.remaining[s] < 0 {
				c.remaining[s] = 0
			}
			if c.tcp != nil {
				c.tcp.acked[s] += d
			}
		}
		c.last[s] = now
	}
	if c.tcp != nil {
		c.tcp.settleQueues(now)
	}
}

// reallocate recomputes fair rates for all active flows and reschedules
// the completion events whose rate actually changed. The rate vector is
// computed into the rates scratch buffer by the configured allocator.
func (c *soaCore) reallocate() {
	c.settle()

	nf := len(c.active)
	if nf == 0 {
		if c.tcp != nil {
			c.tcp.clearOffered() // let queues drain across idle gaps
		}
		return
	}
	c.resetScratch(nf)
	c.nw.metrics.Reallocs.Inc()
	c.nw.metrics.ActiveFlowsMax.SetMax(float64(nf))

	switch {
	case c.tcp != nil:
		c.tcp.updateOffered()
		c.tcp.rates()
	case c.cfg.Allocator == AllocEqualSplit:
		c.equalSplitRates()
	case c.cfg.UseReferenceAllocator:
		c.referenceMaxMinRates()
	default:
		c.incrementalMaxMinRates()
	}

	c.applyRates()
}

// resetScratch sizes and clears the per-flow allocation buffers.
func (c *soaCore) resetScratch(nf int) {
	if cap(c.rates) < nf {
		c.rates = make([]float64, nf)
		c.frozen = make([]bool, nf)
	}
	c.rates = c.rates[:nf]
	c.frozen = c.frozen[:nf]
	for i := range c.frozen {
		c.frozen[i] = false
	}
}

// applyRates installs the rates vector. A flow whose rate is unchanged
// (within rateTolerance) keeps its pending completion event untouched —
// the event still lands exactly where the unchanged rate drains the
// remaining bytes.
func (c *soaCore) applyRates() {
	now := c.eng.Now()
	for i, s := range c.active {
		newRate := c.rates[i]
		if rateEqual(c.rate[s], newRate) {
			continue
		}
		c.rate[s] = newRate
		c.appendSegment(s, RateSegment{Start: now, RateBps: newRate})
		c.scheduleCompletion(s)
	}
}

// scheduleCompletion (re)arms the slot's completion timer for its current
// rate and residue. Flows with no rate — or a rate so small completion
// would fall past the simulation horizon — park with no pending event
// until a future reallocation revives them.
func (c *soaCore) scheduleCompletion(s int32) {
	if c.rate[s] <= 0 {
		c.cancelCompletion(s)
		return
	}
	d := durationFor(c.remaining[s], c.rate[s])
	now := c.eng.Now()
	if d >= sim.MaxTime-now {
		c.cancelCompletion(s)
		return
	}
	c.armCompletion(s, now+d)
}

// armCompletion schedules slot s's persistent completion timer for
// absolute time at, creating it on the slot's first use.
func (c *soaCore) armCompletion(s int32, at sim.Time) {
	if !c.completeEv[s].Valid() {
		c.completeEv[s] = c.eng.NewTimer(c.finishCb, uint64(uint32(s)))
	}
	_ = c.completeEv[s].Schedule(at)
}

func (c *soaCore) cancelCompletion(s int32) {
	c.completeEv[s].Cancel()
}

// finish completes a flow: removes it from the active set, snapshots and
// recycles the slot, notifies taps and the owner callback, and triggers
// reallocation for the survivors.
func (c *soaCore) finish(s int32) {
	switch c.state[s] {
	case slotLoopback:
		c.remaining[s] = 0
	case slotActive:
		// Settle to charge the final interval.
		c.settle()
		if c.remaining[s] > 1e-3 {
			// The event fired before the flow truly drained (float
			// rounding or a stale event). Reschedule for the residue —
			// never strand a flow without a pending completion.
			c.scheduleCompletion(s)
			return
		}
		c.remaining[s] = 0
		c.removeActive(s)
		c.markDirty()
	default:
		return // already torn down
	}
	c.completeSlot(s, false)
}

// removeActive deletes slot s from the active set, preserving order: the
// slot knows its own position, so no scan — just close the gap and
// renumber the tail — and drops it from the per-link index.
func (c *soaCore) removeActive(s int32) {
	i := int(c.listIdx[s])
	last := len(c.active) - 1
	copy(c.active[i:], c.active[i+1:])
	c.active = c.active[:last]
	for j := i; j < last; j++ {
		c.listIdx[c.active[j]] = int32(j)
	}
	c.linkRemove(s)
	if c.tcp != nil {
		c.tcp.onRemove(s)
	}
}

// abortSlot tears a flow down before completion: it leaves the active
// set, its partial progress is snapshotted into the handle (readable via
// Transferred), taps observe the (aborted) completion, and OnAbort — not
// OnComplete — fires.
func (c *soaCore) abortSlot(s int32) {
	switch c.state[s] {
	case slotFree:
		return
	case slotActive:
		c.settle()
		c.removeActive(s)
		c.markDirty()
	}
	c.cancelCompletion(s)
	c.completeSlot(s, true)
}

// completeSlot retires a finished (or aborted) flow: counters and
// telemetry update, the handle — if any observer holds one — receives its
// final-state snapshot, the slot returns to the free list, and only then
// do taps and the owner callback run, so they are free to start new flows
// that reuse the storage.
func (c *soaCore) completeSlot(s int32, aborted bool) {
	spec := c.spec[s]
	h := c.handle[s]
	if h != nil {
		h.snapped = true
		h.aborted = aborted
		h.end = c.eng.Now()
		h.transferred = transferredOf(spec.SizeBytes, c.remaining[s])
		h.segments = c.copySegments(s)
	}
	if aborted {
		c.nw.abortedCount++
		c.nw.metrics.FlowsAborted.Inc()
	} else {
		c.nw.completed++
		c.nw.totalBytes += float64(spec.SizeBytes)
		c.nw.metrics.FlowsCompleted.Inc()
		c.nw.metrics.FlowBytes.Observe(spec.SizeBytes)
	}
	c.freeSlot(s)
	for _, t := range c.nw.taps {
		t.FlowCompleted(h)
	}
	if aborted {
		if spec.OnAbort != nil {
			spec.OnAbort(h)
		}
	} else if spec.OnComplete != nil {
		spec.OnComplete(h)
	}
}

// setLinkState is the core half of Network.SetLinkState.
func (c *soaCore) setLinkState(lid LinkID, up bool) error {
	down := !up
	if c.topo.linkDown[lid] == down {
		return nil
	}
	c.settle()
	if err := c.topo.SetLinkDown(lid, down); err != nil {
		return err
	}
	c.nw.metrics.LinkTransitions.Inc()
	if down {
		// Snapshot as generation-checked ids: rerouting mutates the
		// per-link index in place, and an abort callback could recycle a
		// victim's slot for a brand-new flow mid-loop.
		victims := make([]FlowID, 0, len(c.linkFlows[lid]))
		for _, s := range c.linkFlows[lid] {
			victims = append(victims, FlowID{slot: s, gen: c.gen[s]})
		}
		for _, v := range victims {
			if c.gen[v.slot] == v.gen && c.state[v.slot] == slotActive {
				c.rerouteOrAbort(v.slot)
			}
		}
	}
	c.markDirty()
	return nil
}

// rerouteOrAbort moves an active flow onto a fresh shortest path, or
// aborts it when the fabric no longer connects its endpoints.
func (c *soaCore) rerouteOrAbort(s int32) {
	p, err := c.topo.AppendPath(c.pathScratch[:0], c.spec[s].Src, c.spec[s].Dst, flowHash(c.spec[s], c.fid[s]))
	c.pathScratch = p[:0]
	if err != nil {
		c.abortSlot(s)
		return
	}
	c.linkRemove(s) // uses the old path/positions
	c.storePath(s, p)
	c.linkInsert(s)
	if c.tcp != nil {
		c.tcp.onReroute(s)
	}
	c.nw.metrics.Reroutes.Inc()
}

// abortFlowsWhere is the core half of Network.AbortFlowsWhere.
func (c *soaCore) abortFlowsWhere(pred func(FlowSpec) bool) int {
	victims := make([]FlowID, 0, 4)
	for _, s := range c.active {
		if pred(c.spec[s]) {
			victims = append(victims, FlowID{slot: s, gen: c.gen[s]})
		}
	}
	for _, v := range victims {
		if c.gen[v.slot] == v.gen && c.state[v.slot] != slotFree {
			c.abortSlot(v.slot)
		}
	}
	return len(victims)
}
