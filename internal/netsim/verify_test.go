package netsim

import (
	"strings"
	"testing"

	"keddah/internal/sim"
)

// checkedNet starts nFlows flows on a small star fabric and settles the
// first allocation so no reallocation is pending.
func checkedNet(t *testing.T, nFlows int, cfg Config) (*Network, *sim.Engine) {
	t.Helper()
	topo, err := Star(5, Gbps)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	net := NewNetwork(eng, topo, cfg)
	hosts := topo.Hosts()
	for i := 0; i < nFlows; i++ {
		if _, err := net.StartFlow(FlowSpec{
			Src: hosts[i%len(hosts)], Dst: hosts[(i+1)%len(hosts)],
			SrcPort: 40000 + i, DstPort: 80, SizeBytes: 64 << 20,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Flows join the active set after their SYN latency; settle until
	// every flow is active and the coalesced reallocation has fired.
	for net.ActiveFlows() < nFlows || net.reallocPendingNow() {
		if !eng.Step() {
			t.Fatalf("queue drained with %d/%d flows active (realloc pending %v)",
				net.ActiveFlows(), nFlows, net.reallocPendingNow())
		}
	}
	return net, eng
}

// TestVerifyStateCatchesCorruption drives each netsim checker over a
// healthy allocation and over deliberate corruptions that must fire,
// on both flow-storage cores.
func TestVerifyStateCatchesCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(n *Network)
		check   func(n *Network) error
		want    string // "" = must stay nil
	}{
		{
			name:    "healthy state",
			corrupt: func(n *Network) {},
			check:   (*Network).VerifyState,
		},
		{
			name:    "healthy oracle",
			corrupt: func(n *Network) {},
			check:   (*Network).CheckAllocatorOracle,
		},
		{
			name:    "negative residue",
			corrupt: func(n *Network) { testSetRemaining(n, -1) },
			check:   (*Network).VerifyState,
			want:    "remaining",
		},
		{
			name:    "done flow in active set",
			corrupt: testMarkDone,
			check:   (*Network).VerifyState,
			want:    "done",
		},
		{
			name: "capacity oversubscription",
			// Shrink a loaded link's capacity behind the allocator's back
			// (Topology.SetLinkCapacityScale does not mark the network
			// dirty): the installed rates now exceed the link.
			corrupt: func(n *Network) {
				if err := n.topo.SetLinkCapacityScale(testFirstLink(n), 0.01); err != nil {
					panic(err)
				}
			},
			check: (*Network).VerifyState,
		},
		{
			name:    "rate disagrees with max-min oracle",
			corrupt: func(n *Network) { testScaleRate(n, 0.5) },
			check:   (*Network).CheckAllocatorOracle,
			want:    "max-min",
		},
	}
	for _, core := range []struct {
		name string
		cfg  Config
	}{
		{"soa", Config{}},
		{"ptr", Config{UsePointerFlows: true}},
	} {
		for _, tc := range cases {
			t.Run(core.name+"/"+tc.name, func(t *testing.T) {
				net, _ := checkedNet(t, 6, core.cfg)
				tc.corrupt(net)
				err := tc.check(net)
				mustFire := tc.name != "healthy state" && tc.name != "healthy oracle"
				if !mustFire {
					if err != nil {
						t.Fatalf("healthy network failed check: %v", err)
					}
					return
				}
				if err == nil {
					t.Fatalf("corruption %q went undetected", tc.name)
				}
				if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
					t.Fatalf("error %q does not mention %q", err, tc.want)
				}
			})
		}
	}
}

// TestVerifyStateSilentWhileReallocPending: between a structural change
// and its coalesced reallocation event the installed rates are stale by
// design; the checks must not fire inside that window.
func TestVerifyStateSilentWhileReallocPending(t *testing.T) {
	for _, core := range []struct {
		name string
		cfg  Config
	}{
		{"soa", Config{}},
		{"ptr", Config{UsePointerFlows: true}},
	} {
		t.Run(core.name, func(t *testing.T) {
			topo, err := Star(5, Gbps)
			if err != nil {
				t.Fatal(err)
			}
			eng := sim.New()
			net := NewNetwork(eng, topo, core.cfg)
			hosts := topo.Hosts()
			if _, err := net.StartFlow(FlowSpec{Src: hosts[0], Dst: hosts[1], SrcPort: 1, DstPort: 80, SizeBytes: 1 << 20}); err != nil {
				t.Fatal(err)
			}
			// Step until the flow's arrival marks the allocation dirty,
			// stopping before the coalesced reallocation event fires.
			for !net.reallocPendingNow() {
				if !eng.Step() {
					t.Fatal("queue drained before the allocation went dirty")
				}
			}
			if err := net.VerifyState(); err != nil {
				t.Fatalf("VerifyState fired on a pending reallocation: %v", err)
			}
			if err := net.CheckAllocatorOracle(); err != nil {
				t.Fatalf("oracle fired on a pending reallocation: %v", err)
			}
		})
	}
}
