package netsim

import (
	"fmt"
	"math"
)

// This file holds the read-only state checks consumed by the
// internal/invariants layer. Both entry points are strictly observational:
// they allocate only local scratch, draw no randomness, and schedule no
// events, so a checked run's trajectory is identical to an unchecked one.

// VerifyState checks the structural invariants of the active flow set:
// the active list and the per-link flow index agree with each other, no
// active flow crosses a downed link (SetLinkState reroutes or aborts
// victims synchronously, so this holds even while a reallocation is
// pending), and every flow's residue is within [0, SizeBytes]. When no
// reallocation is pending it additionally verifies the allocation itself
// via CheckInvariants (capacity and bottleneck conditions).
func (n *Network) VerifyState() error {
	for i, f := range n.flows {
		if f.listIdx != i {
			return fmt.Errorf("netsim: flow %d listIdx %d but held at position %d", f.id, f.listIdx, i)
		}
		if f.done || !f.active {
			return fmt.Errorf("netsim: flow %d in active set but done=%v active=%v", f.id, f.done, f.active)
		}
		if f.remaining < 0 || f.remaining > float64(f.spec.SizeBytes) {
			return fmt.Errorf("netsim: flow %d remaining %.3g outside [0, %d]", f.id, f.remaining, f.spec.SizeBytes)
		}
		if len(f.linkPos) != len(f.path) {
			return fmt.Errorf("netsim: flow %d linkPos/path length mismatch (%d vs %d)", f.id, len(f.linkPos), len(f.path))
		}
		for j, lid := range f.path {
			if n.topo.linkDown[lid] {
				return fmt.Errorf("netsim: flow %d active on downed link %d", f.id, lid)
			}
			p := f.linkPos[j]
			if p < 0 || p >= len(n.linkFlows[lid]) || n.linkFlows[lid][p] != f {
				return fmt.Errorf("netsim: flow %d link index stale on link %d (pos %d)", f.id, lid, p)
			}
		}
	}
	indexed := 0
	for _, lst := range n.linkFlows {
		indexed += len(lst)
	}
	pathSum := 0
	for _, f := range n.flows {
		pathSum += len(f.path)
	}
	if indexed != pathSum {
		return fmt.Errorf("netsim: per-link index holds %d entries, active paths cover %d", indexed, pathSum)
	}
	if n.reallocPending {
		// Rates are stale until the coalesced dirty event fires at this
		// same timestamp; the allocation conditions are not meaningful yet.
		return nil
	}
	return n.CheckInvariants()
}

// CheckAllocatorOracle recomputes the max-min rate vector with the exact
// arithmetic of referenceMaxMinRates — from-scratch progressive filling
// into fresh local buffers — and compares it against the rates the
// production incremental allocator installed. It returns nil when the
// allocator is not AllocMaxMin, when a reallocation is pending (the
// installed rates are intentionally stale), or when the vectors agree
// within rateTolerance.
func (n *Network) CheckAllocatorOracle() error {
	if n.cfg.Allocator != AllocMaxMin || n.reallocPending || len(n.flows) == 0 {
		return nil
	}
	remCap := make([]float64, len(n.topo.links))
	cnt := make([]int, len(n.topo.links))
	for i, l := range n.topo.links {
		remCap[i] = l.CapacityBps
	}
	for _, f := range n.flows {
		for _, lid := range f.path {
			cnt[lid]++
		}
	}
	rates := make([]float64, len(n.flows))
	frozen := make([]bool, len(n.flows))
	remaining := len(n.flows)
	for remaining > 0 {
		best := -1
		bestShare := math.Inf(1)
		for i := range remCap {
			if cnt[i] == 0 {
				continue
			}
			share := remCap[i] / float64(cnt[i])
			if share < bestShare {
				bestShare = share
				best = i
			}
		}
		if best < 0 {
			// Stranded flows (no loaded links) freeze at the loopback
			// rate, mirroring freezeStranded.
			for i := range frozen {
				if !frozen[i] {
					rates[i] = n.cfg.LoopbackBps
					frozen[i] = true
					remaining--
				}
			}
			break
		}
		for i, f := range n.flows {
			if frozen[i] {
				continue
			}
			crosses := false
			for _, lid := range f.path {
				if lid == LinkID(best) {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			rates[i] = bestShare
			frozen[i] = true
			remaining--
			for _, lid := range f.path {
				remCap[lid] -= bestShare
				if remCap[lid] < 0 {
					remCap[lid] = 0
				}
				cnt[lid]--
			}
		}
	}
	for i, f := range n.flows {
		if !rateEqual(f.rate, rates[i]) {
			return fmt.Errorf("netsim: flow %d rate %.6g bps diverges from max-min oracle %.6g bps", f.id, f.rate, rates[i])
		}
	}
	return nil
}
