package netsim

import (
	"fmt"
	"math"
)

// This file holds the read-only state checks consumed by the
// internal/invariants layer. Both entry points are strictly observational:
// they allocate only local scratch, draw no randomness, and schedule no
// events, so a checked run's trajectory is identical to an unchecked one.
// Each check dispatches to the active core and verifies that core's own
// structural representation (SoA slots+arenas, or pointer lists).

// VerifyState checks the structural invariants of the active flow set:
// the active list and the per-link flow index agree with each other, no
// active flow crosses a downed link (SetLinkState reroutes or aborts
// victims synchronously, so this holds even while a reallocation is
// pending), and every flow's residue is within [0, SizeBytes]. When no
// reallocation is pending it additionally verifies the allocation itself
// via CheckInvariants (capacity and bottleneck conditions).
func (n *Network) VerifyState() error {
	if n.ptr != nil {
		if err := n.ptr.verifyState(); err != nil {
			return err
		}
	} else {
		if err := n.soa.verifyState(); err != nil {
			return err
		}
		if n.soa.tcp != nil {
			if err := n.soa.tcp.verify(); err != nil {
				return err
			}
		}
	}
	if n.reallocPendingNow() {
		// Rates are stale until the coalesced dirty event fires at this
		// same timestamp; the allocation conditions are not meaningful yet.
		return nil
	}
	return n.CheckInvariants()
}

func (c *soaCore) verifyState() error {
	for i, s := range c.active {
		if int(c.listIdx[s]) != i {
			return fmt.Errorf("netsim: flow %d listIdx %d but held at position %d", c.fid[s], c.listIdx[s], i)
		}
		if c.state[s] != slotActive {
			return fmt.Errorf("netsim: flow %d in active set but state %d (done, free or not yet active)", c.fid[s], c.state[s])
		}
		if c.remaining[s] < 0 || c.remaining[s] > float64(c.spec[s].SizeBytes) {
			return fmt.Errorf("netsim: flow %d remaining %.3g outside [0, %d]", c.fid[s], c.remaining[s], c.spec[s].SizeBytes)
		}
		path, pos := c.path(s), c.linkPos(s)
		for j, lid := range path {
			if c.topo.linkDown[lid] {
				return fmt.Errorf("netsim: flow %d active on downed link %d", c.fid[s], lid)
			}
			p := pos[j]
			if p < 0 || int(p) >= len(c.linkFlows[lid]) || c.linkFlows[lid][p] != s {
				return fmt.Errorf("netsim: flow %d link index stale on link %d (pos %d)", c.fid[s], lid, p)
			}
		}
	}
	indexed := 0
	for _, lst := range c.linkFlows {
		indexed += len(lst)
	}
	pathSum := 0
	for _, s := range c.active {
		pathSum += int(c.pathLen[s])
	}
	if indexed != pathSum {
		return fmt.Errorf("netsim: per-link index holds %d entries, active paths cover %d", indexed, pathSum)
	}
	// Slot accounting: every slot is exactly one of free-listed, in the
	// active list, or mid-lifecycle (propagating/loopback).
	inFree := 0
	for _, s := range c.freeSlots {
		if c.state[s] != slotFree {
			return fmt.Errorf("netsim: slot %d on the free list but in state %d", s, c.state[s])
		}
		inFree++
	}
	nFree := 0
	for s := range c.state {
		if c.state[s] == slotFree {
			nFree++
		}
	}
	if inFree != nFree {
		return fmt.Errorf("netsim: %d slots marked free but %d on the free list", nFree, inFree)
	}
	return nil
}

func (c *ptrCore) verifyState() error {
	for i, f := range c.flows {
		if f.listIdx != i {
			return fmt.Errorf("netsim: flow %d listIdx %d but held at position %d", f.id, f.listIdx, i)
		}
		if f.done || !f.active {
			return fmt.Errorf("netsim: flow %d in active set but done=%v active=%v", f.id, f.done, f.active)
		}
		if f.remaining < 0 || f.remaining > float64(f.spec.SizeBytes) {
			return fmt.Errorf("netsim: flow %d remaining %.3g outside [0, %d]", f.id, f.remaining, f.spec.SizeBytes)
		}
		if len(f.linkPos) != len(f.path) {
			return fmt.Errorf("netsim: flow %d linkPos/path length mismatch (%d vs %d)", f.id, len(f.linkPos), len(f.path))
		}
		for j, lid := range f.path {
			if c.topo.linkDown[lid] {
				return fmt.Errorf("netsim: flow %d active on downed link %d", f.id, lid)
			}
			p := f.linkPos[j]
			if p < 0 || p >= len(c.linkFlows[lid]) || c.linkFlows[lid][p] != f {
				return fmt.Errorf("netsim: flow %d link index stale on link %d (pos %d)", f.id, lid, p)
			}
		}
	}
	indexed := 0
	for _, lst := range c.linkFlows {
		indexed += len(lst)
	}
	pathSum := 0
	for _, f := range c.flows {
		pathSum += len(f.path)
	}
	if indexed != pathSum {
		return fmt.Errorf("netsim: per-link index holds %d entries, active paths cover %d", indexed, pathSum)
	}
	return nil
}

// CheckAllocatorOracle recomputes the max-min rate vector with the exact
// arithmetic of referenceMaxMinRates — from-scratch progressive filling
// into fresh local buffers — and compares it against the rates the
// production incremental allocator installed. It returns nil when the
// allocator is not AllocMaxMin, when a reallocation is pending (the
// installed rates are intentionally stale), or when the vectors agree
// within rateTolerance.
func (n *Network) CheckAllocatorOracle() error {
	if n.cfg.Allocator != AllocMaxMin || n.reallocPendingNow() || n.ActiveFlows() == 0 {
		return nil
	}
	if n.soa != nil && n.soa.tcp != nil {
		// TCP rates are demand-limited; the unconstrained max-min oracle
		// does not apply. tcpCore.verify covers the TCP-mode invariants.
		return nil
	}
	// Assemble the oracle inputs from the active core's view.
	nf := n.ActiveFlows()
	paths := make([][]LinkID, nf)
	installed := make([]float64, nf)
	ids := make([]uint64, nf)
	if n.ptr != nil {
		for i, f := range n.ptr.flows {
			paths[i], installed[i], ids[i] = f.path, f.rate, f.id
		}
	} else {
		c := n.soa
		for i, s := range c.active {
			paths[i], installed[i], ids[i] = c.path(s), c.rate[s], c.fid[s]
		}
	}

	remCap := make([]float64, len(n.topo.links))
	cnt := make([]int, len(n.topo.links))
	for i, l := range n.topo.links {
		remCap[i] = l.CapacityBps
	}
	for _, p := range paths {
		for _, lid := range p {
			cnt[lid]++
		}
	}
	rates := make([]float64, nf)
	frozen := make([]bool, nf)
	remaining := nf
	for remaining > 0 {
		best := -1
		bestShare := math.Inf(1)
		for i := range remCap {
			if cnt[i] == 0 {
				continue
			}
			share := remCap[i] / float64(cnt[i])
			if share < bestShare {
				bestShare = share
				best = i
			}
		}
		if best < 0 {
			// Stranded flows (no loaded links) freeze at the loopback
			// rate, mirroring freezeStranded.
			for i := range frozen {
				if !frozen[i] {
					rates[i] = n.cfg.LoopbackBps
					frozen[i] = true
					remaining--
				}
			}
			break
		}
		for i, p := range paths {
			if frozen[i] {
				continue
			}
			crosses := false
			for _, lid := range p {
				if lid == LinkID(best) {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			rates[i] = bestShare
			frozen[i] = true
			remaining--
			for _, lid := range p {
				remCap[lid] -= bestShare
				if remCap[lid] < 0 {
					remCap[lid] = 0
				}
				cnt[lid]--
			}
		}
	}
	for i := range paths {
		if !rateEqual(installed[i], rates[i]) {
			return fmt.Errorf("netsim: flow %d rate %.6g bps diverges from max-min oracle %.6g bps", ids[i], installed[i], rates[i])
		}
	}
	return nil
}
