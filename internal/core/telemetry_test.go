package core

import (
	"bytes"
	"testing"

	"keddah/internal/telemetry"
	"keddah/internal/workload"
)

// instrumentedCapture runs one fixed-seed capture (including a worker
// failure, so recovery counters fire) and returns the deterministic JSON
// snapshot bytes.
func instrumentedCapture(t *testing.T) ([]byte, *telemetry.Telemetry) {
	t.Helper()
	tel := telemetry.New()
	spec := ClusterSpec{Workers: 8, Seed: 11}
	runs := []workload.RunSpec{
		{Profile: "terasort", InputBytes: 512 << 20},
		{Profile: "wordcount", InputBytes: 256 << 20},
	}
	opts := CaptureOpts{
		Telemetry: tel,
		Failures:  []FailureSpec{{WorkerIndex: 2, AtNs: 5_000_000_000}},
	}
	if _, _, err := CaptureWith(spec, runs, opts); err != nil {
		t.Fatalf("capture: %v", err)
	}
	var buf bytes.Buffer
	if err := tel.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), tel
}

// TestTelemetrySnapshotDeterministic is the PR's headline invariant:
// two captures with the same seed and spec produce byte-identical JSON
// snapshots (wall-clock gauges are excluded; everything else is driven
// by the deterministic simulation).
func TestTelemetrySnapshotDeterministic(t *testing.T) {
	a, _ := instrumentedCapture(t)
	b, _ := instrumentedCapture(t)
	if !bytes.Equal(a, b) {
		t.Errorf("same-seed snapshots differ:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestTelemetryCountersPopulated checks the cross-layer wiring: one
// instrumented capture with a worker failure must move counters in every
// layer it touches.
func TestTelemetryCountersPopulated(t *testing.T) {
	_, tel := instrumentedCapture(t)
	checks := []struct {
		name string
		got  int64
	}{
		{"sim events", tel.Sim.Events.Value()},
		{"net flows completed", tel.Net.FlowsCompleted.Value()},
		{"net flow bytes observations", tel.Net.FlowBytes.Count()},
		{"hdfs blocks written", tel.HDFS.BlocksWritten.Value()},
		{"hdfs re-replicated blocks", tel.HDFS.ReReplicatedBlocks.Value()},
		{"yarn containers granted", tel.Yarn.ContainersGranted.Value()},
		{"yarn node expiries", tel.Yarn.NodeExpiries.Value()},
		{"mr jobs completed", tel.MR.JobsCompleted.Value()},
		{"mr maps completed", tel.MR.MapsCompleted.Value()},
		{"mr shuffle fetches", tel.MR.ShuffleFetches.Value()},
		{"core captures", tel.Core.Captures.Value()},
	}
	for _, c := range checks {
		if c.got == 0 {
			t.Errorf("%s = 0, want > 0", c.name)
		}
	}
	if len(tel.Trace.Spans()) == 0 {
		t.Error("no spans traced")
	}
}

// TestTelemetryDoesNotPerturbCapture: attaching telemetry must not
// change the simulation trajectory — same records and makespan as a bare
// run. This is why fault bookkeeping events are scheduled identically
// whether or not a sink is attached.
func TestTelemetryDoesNotPerturbCapture(t *testing.T) {
	spec := ClusterSpec{Workers: 8, Seed: 11}
	runs := []workload.RunSpec{{Profile: "terasort", InputBytes: 512 << 20}}
	opts := CaptureOpts{Failures: []FailureSpec{{WorkerIndex: 2, AtNs: 5_000_000_000}}}

	bare, bareRes, err := CaptureWith(spec, runs, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Telemetry = telemetry.New()
	inst, instRes, err := CaptureWith(spec, runs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(bare.Runs) != len(inst.Runs) {
		t.Fatalf("run count changed: %d != %d", len(bare.Runs), len(inst.Runs))
	}
	for i := range bare.Runs {
		br, ir := bare.Runs[i], inst.Runs[i]
		if len(br.Records) != len(ir.Records) {
			t.Fatalf("run %d flow count changed: %d != %d", i, len(br.Records), len(ir.Records))
		}
		for j := range br.Records {
			if br.Records[j] != ir.Records[j] {
				t.Fatalf("run %d flow %d changed: %+v != %+v", i, j, br.Records[j], ir.Records[j])
			}
		}
	}
	if bareRes[0].Rounds[0].Duration() != instRes[0].Rounds[0].Duration() {
		t.Errorf("job duration changed: %v != %v",
			bareRes[0].Rounds[0].Duration(), instRes[0].Rounds[0].Duration())
	}
}

// TestReplayWithTelemetry covers the replay path's instrumentation and
// its determinism.
func TestReplayWithTelemetry(t *testing.T) {
	sched := sampleSchedule()
	tel := telemetry.New()
	recs, makespan, err := ReplayWith(sched, ClusterSpec{Workers: 8, Seed: 3}, tel)
	if err != nil {
		t.Fatal(err)
	}
	bareRecs, bareMakespan, err := Replay(sched, ClusterSpec{Workers: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(bareRecs) || makespan != bareMakespan {
		t.Errorf("instrumented replay diverged: %d/%v vs %d/%v",
			len(recs), makespan, len(bareRecs), bareMakespan)
	}
	if tel.Core.Replays.Value() != 1 {
		t.Errorf("replays counter = %d", tel.Core.Replays.Value())
	}
	if tel.Net.FlowsCompleted.Value() == 0 {
		t.Error("replay flows not counted")
	}
}
