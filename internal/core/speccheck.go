package core

import (
	"errors"
	"fmt"
	"math"
)

// This file validates generation specs up front, so malformed requests —
// NaN rates smuggled in through JSON, negative sizes, worker counts that
// would explode structural scaling — fail fast with a typed error instead
// of surfacing as a deep generation failure (or an enormous allocation)
// minutes later. keddah-serve maps ErrBadSpec to HTTP 400.

// ErrBadSpec is the sentinel wrapped by every spec-validation failure.
var ErrBadSpec = errors.New("core: invalid spec")

// SpecError reports one invalid spec field. It wraps ErrBadSpec, so
// errors.Is(err, ErrBadSpec) identifies validation failures without
// string matching.
type SpecError struct {
	Spec   string // "GenSpec" or "MixSpec"
	Field  string
	Reason string
}

// Error implements error.
func (e *SpecError) Error() string {
	return fmt.Sprintf("core: invalid spec: %s.%s %s", e.Spec, e.Field, e.Reason)
}

// Unwrap makes errors.Is(err, ErrBadSpec) true.
func (e *SpecError) Unwrap() error { return ErrBadSpec }

// Structural-scaling guards. Counts above these bounds cannot describe a
// measured Hadoop deployment; they only arise from malformed or hostile
// requests, and admitting them turns one request into an
// out-of-memory-sized allocation.
const (
	maxSpecWorkers  = 1 << 20 // hosts traffic is spread over
	maxSpecJobs     = 1 << 20 // job instances per request
	maxSpecReducers = 1 << 20 // reduce fan-in
	maxSpecMaps     = 1 << 26 // map tasks (input/block ratio)
	maxMixArrivals  = 1 << 20 // expected arrivals in a mix window
)

func badFloat(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

func genErr(field, reason string) error {
	return &SpecError{Spec: "GenSpec", Field: field, Reason: reason}
}

func mixErr(field, reason string) error {
	return &SpecError{Spec: "MixSpec", Field: field, Reason: reason}
}

// Validate rejects malformed GenSpec fields. Zero values are legal
// (withDefaults fills them in); what is rejected is anything no default
// can repair: negative counts and sizes, non-finite stagger, and
// magnitudes whose structural scaling would overflow or exhaust memory.
// Generate calls this first, so every path — CLI, API, library — fails
// fast with an error wrapping ErrBadSpec.
func (g GenSpec) Validate() error {
	switch {
	case g.InputBytes < 0:
		return genErr("inputBytes", "is negative")
	case g.BlockSize < 0:
		return genErr("blockSize", "is negative")
	case g.Reducers < 0:
		return genErr("reducers", "is negative")
	case g.Reducers > maxSpecReducers:
		return genErr("reducers", fmt.Sprintf("%d exceeds the %d limit", g.Reducers, maxSpecReducers))
	case g.Workers < 0:
		return genErr("workers", "is negative")
	case g.Workers > maxSpecWorkers:
		return genErr("workers", fmt.Sprintf("%d exceeds the %d limit", g.Workers, maxSpecWorkers))
	case g.Jobs < 0:
		return genErr("jobs", "is negative")
	case g.Jobs > maxSpecJobs:
		return genErr("jobs", fmt.Sprintf("%d exceeds the %d limit", g.Jobs, maxSpecJobs))
	case badFloat(g.Stagger):
		return genErr("stagger", "is not finite")
	}
	if g.InputBytes > 0 && g.BlockSize > 0 {
		if g.InputBytes > math.MaxInt64-g.BlockSize {
			return genErr("inputBytes", "overflows the map count")
		}
		if maps := (g.InputBytes + g.BlockSize - 1) / g.BlockSize; maps > maxSpecMaps {
			return genErr("inputBytes", fmt.Sprintf("implies %d maps, above the %d limit", maps, maxSpecMaps))
		}
	}
	return nil
}

// validateScaled re-checks the structural bounds after model defaults
// were substituted (a request may omit BlockSize and still imply an
// absurd map count against the model's reference block size).
func (g GenSpec) validateScaled() error {
	if g.BlockSize > 0 {
		if maps := (g.InputBytes + g.BlockSize - 1) / g.BlockSize; maps > maxSpecMaps {
			return genErr("inputBytes", fmt.Sprintf("implies %d maps at block size %d, above the %d limit", maps, g.BlockSize, maxSpecMaps))
		}
	}
	if g.Reducers > maxSpecReducers {
		return genErr("reducers", fmt.Sprintf("scales to %d, above the %d limit", g.Reducers, maxSpecReducers))
	}
	return nil
}

// Validate rejects malformed MixSpec fields: non-finite or negative
// rates, windows and scales, weight values that are not finite or are
// negative, and rate×window products that would schedule an unbounded
// number of arrivals. GenerateMix calls this first.
func (m MixSpec) Validate() error {
	switch {
	case badFloat(m.JobsPerMinute):
		return mixErr("jobsPerMinute", "is not finite")
	case m.JobsPerMinute < 0:
		return mixErr("jobsPerMinute", "is negative")
	case badFloat(m.WindowSecs):
		return mixErr("windowSecs", "is not finite")
	case m.WindowSecs < 0:
		return mixErr("windowSecs", "is negative")
	case badFloat(m.InputScale):
		return mixErr("inputScale", "is not finite")
	case m.InputScale < 0:
		return mixErr("inputScale", "is negative")
	case m.Workers < 0:
		return mixErr("workers", "is negative")
	case m.Workers > maxSpecWorkers:
		return mixErr("workers", fmt.Sprintf("%d exceeds the %d limit", m.Workers, maxSpecWorkers))
	case len(m.Weights) == 0:
		return mixErr("weights", "needs at least one workload")
	}
	for name, w := range m.Weights {
		if badFloat(w) {
			return mixErr("weights", fmt.Sprintf("%q is not finite", name))
		}
		if w < 0 {
			return mixErr("weights", fmt.Sprintf("%q is negative", name))
		}
	}
	// Expected arrivals with defaults applied; a malformed rate must not
	// schedule millions of jobs.
	d := m.withDefaults()
	if arrivals := d.JobsPerMinute / 60 * d.WindowSecs; arrivals > maxMixArrivals {
		return mixErr("jobsPerMinute", fmt.Sprintf("implies ~%.0f arrivals over the window, above the %d limit", arrivals, maxMixArrivals))
	}
	return nil
}
