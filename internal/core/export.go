package core

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"keddah/internal/flows"
)

// This file provides external-simulator exports of synthetic schedules —
// the role the original toolchain's ns-3 module plays. Two formats:
//
//   - CSV: one flow per row (start_s, src, dst, src_port, dst_port,
//     bytes, phase, job). Trivially consumed by pandas/gnuplot or a
//     custom simulator application.
//   - NS3: a C++-ish command stream for a BulkSendApplication-style
//     replay driver: one "flow" directive per line plus node-count
//     metadata, matching the keddah-ns3 driver convention:
//
//     # keddah-ns3 v1
//     nodes <workers+1>
//     flow <start_s> <srcNode> <dstNode> <dstPort> <bytes> <tag>
//
// Host numbering in both formats: workers are 0..N-1 and the master is
// node N (the last index), so a driver can allocate N+1 ns-3 nodes and
// wire them to its chosen topology helper.

// ExportCSV writes the schedule as CSV with a header row.
func ExportCSV(w io.Writer, schedule []SynthFlow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"start_s", "src_host", "dst_host", "src_port", "dst_port", "bytes", "phase", "job"}); err != nil {
		return fmt.Errorf("write csv header: %w", err)
	}
	for _, sf := range schedule {
		rec := []string{
			strconv.FormatFloat(float64(sf.StartNs)/1e9, 'f', 9, 64),
			strconv.Itoa(sf.SrcHost),
			strconv.Itoa(sf.DstHost),
			strconv.Itoa(sf.SrcPort),
			strconv.Itoa(sf.DstPort),
			strconv.FormatInt(sf.Bytes, 10),
			string(sf.Phase),
			sf.Job,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ImportCSV reads a schedule previously written by ExportCSV.
func ImportCSV(r io.Reader) ([]SynthFlow, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read csv header: %w", err)
	}
	if len(header) != 8 || header[0] != "start_s" {
		return nil, fmt.Errorf("core: not a keddah schedule CSV (header %v)", header)
	}
	var out []SynthFlow
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("read csv line %d: %w", line, err)
		}
		startS, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: start: %w", line, err)
		}
		ints := make([]int, 4)
		for i := 0; i < 4; i++ {
			v, err := strconv.Atoi(rec[1+i])
			if err != nil {
				return nil, fmt.Errorf("line %d: field %d: %w", line, i+1, err)
			}
			ints[i] = v
		}
		bytes, err := strconv.ParseInt(rec[5], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bytes: %w", line, err)
		}
		out = append(out, SynthFlow{
			StartNs: int64(startS * 1e9),
			SrcHost: ints[0],
			DstHost: ints[1],
			SrcPort: ints[2],
			DstPort: ints[3],
			Bytes:   bytes,
			Phase:   flows.Phase(rec[6]),
			Job:     rec[7],
		})
	}
}

// ExportNS3 writes the schedule in the keddah-ns3 driver format for the
// given worker count.
func ExportNS3(w io.Writer, schedule []SynthFlow, workers int) error {
	if workers <= 0 {
		return fmt.Errorf("core: ns3 export needs a positive worker count")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# keddah-ns3 v1")
	fmt.Fprintf(bw, "nodes %d\n", workers+1)
	master := workers
	node := func(h int) int {
		if h < 0 {
			return master
		}
		return h % workers
	}
	for _, sf := range schedule {
		tag := string(sf.Phase)
		if sf.Job != "" {
			tag = sf.Job + ":" + tag
		}
		fmt.Fprintf(bw, "flow %.9f %d %d %d %d %s\n",
			float64(sf.StartNs)/1e9, node(sf.SrcHost), node(sf.DstHost),
			sf.DstPort, sf.Bytes, sanitizeTag(tag))
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("flush ns3 export: %w", err)
	}
	return nil
}

// sanitizeTag keeps driver lines single-token parseable.
func sanitizeTag(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == ':', r == '-', r == '_', r == '.', r == '/':
			return r
		default:
			return '_'
		}
	}, s)
}
