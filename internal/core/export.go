package core

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"keddah/internal/flows"
	"keddah/internal/pcap"
)

// This file provides external-simulator exports of synthetic schedules —
// the role the original toolchain's ns-3 module plays. Three formats:
//
//   - CSV: one flow per row (start_s, src, dst, src_port, dst_port,
//     bytes, phase, job). Trivially consumed by pandas/gnuplot or a
//     custom simulator application.
//   - JSONL: one JSON-encoded SynthFlow per line — the streaming twin of
//     keddah-gen's JSON array output, consumable record-by-record by a
//     client that never holds the whole schedule.
//   - NS3: a C++-ish command stream for a BulkSendApplication-style
//     replay driver: one "flow" directive per line plus node-count
//     metadata, matching the keddah-ns3 driver convention:
//
//     # keddah-ns3 v1
//     nodes <workers+1>
//     flow <start_s> <srcNode> <dstNode> <dstPort> <bytes> <tag>
//
// Host numbering in CSV and NS3: workers are 0..N-1 and the master is
// node N (the last index), so a driver can allocate N+1 ns-3 nodes and
// wire them to its chosen topology helper.
//
// Every format is implemented as a StreamEncoder, and the batch Export*
// helpers are Begin+Flows+End in one call — so a chunked stream
// (keddah-serve) and a batch export (keddah-gen) of the same schedule
// produce byte-identical output, and every write error (a dead socket, a
// full disk) is propagated promptly instead of truncating silently.

// StreamEncoder writes a schedule incrementally: Begin writes the
// format's header, Flows appends any number of flow batches (each batch
// is flushed to the underlying writer before returning, so a streaming
// caller never buffers more than one batch), and End flushes any
// remaining state. Methods must not be called after an error.
type StreamEncoder interface {
	// ContentType is the MIME type of the encoded stream.
	ContentType() string
	Begin() error
	Flows([]SynthFlow) error
	End() error
}

// NewStreamEncoder returns the encoder for format — "csv", "jsonl" or
// "ns3" — writing to w. workers is the worker host count the ns3 header
// needs for its node count; the other formats ignore it.
func NewStreamEncoder(format string, w io.Writer, workers int) (StreamEncoder, error) {
	switch format {
	case "csv":
		return &csvEncoder{cw: csv.NewWriter(w)}, nil
	case "jsonl":
		return &jsonlEncoder{enc: json.NewEncoder(w)}, nil
	case "ns3":
		if workers <= 0 {
			return nil, fmt.Errorf("core: ns3 export needs a positive worker count")
		}
		return &ns3Encoder{bw: bufio.NewWriter(w), workers: workers}, nil
	default:
		return nil, fmt.Errorf("core: unknown schedule format %q (csv | jsonl | ns3)", format)
	}
}

// exportAll is the batch path: one encoder, one Flows call.
func exportAll(format string, w io.Writer, schedule []SynthFlow, workers int) error {
	enc, err := NewStreamEncoder(format, w, workers)
	if err != nil {
		return err
	}
	if err := enc.Begin(); err != nil {
		return err
	}
	if err := enc.Flows(schedule); err != nil {
		return err
	}
	return enc.End()
}

// ExportCSV writes the schedule as CSV with a header row.
func ExportCSV(w io.Writer, schedule []SynthFlow) error {
	return exportAll("csv", w, schedule, 0)
}

// ExportJSONL writes the schedule as one JSON object per line.
func ExportJSONL(w io.Writer, schedule []SynthFlow) error {
	return exportAll("jsonl", w, schedule, 0)
}

type csvEncoder struct{ cw *csv.Writer }

func (e *csvEncoder) ContentType() string { return "text/csv" }

func (e *csvEncoder) Begin() error {
	if err := e.cw.Write([]string{"start_s", "src_host", "dst_host", "src_port", "dst_port", "bytes", "phase", "job"}); err != nil {
		return fmt.Errorf("write csv header: %w", err)
	}
	e.cw.Flush()
	return errWrap("write csv header", e.cw.Error())
}

func (e *csvEncoder) Flows(schedule []SynthFlow) error {
	for _, sf := range schedule {
		rec := []string{
			strconv.FormatFloat(float64(sf.StartNs)/1e9, 'f', 9, 64),
			strconv.Itoa(sf.SrcHost),
			strconv.Itoa(sf.DstHost),
			strconv.Itoa(sf.SrcPort),
			strconv.Itoa(sf.DstPort),
			strconv.FormatInt(sf.Bytes, 10),
			string(sf.Phase),
			sf.Job,
		}
		if err := e.cw.Write(rec); err != nil {
			return fmt.Errorf("write csv row: %w", err)
		}
	}
	e.cw.Flush()
	return errWrap("write csv rows", e.cw.Error())
}

func (e *csvEncoder) End() error {
	e.cw.Flush()
	return errWrap("flush csv export", e.cw.Error())
}

type jsonlEncoder struct{ enc *json.Encoder }

func (e *jsonlEncoder) ContentType() string { return "application/x-ndjson" }

func (e *jsonlEncoder) Begin() error { return nil }

func (e *jsonlEncoder) Flows(schedule []SynthFlow) error {
	for i := range schedule {
		// Encode appends exactly one newline per value — the JSONL frame.
		if err := e.enc.Encode(&schedule[i]); err != nil {
			return fmt.Errorf("write jsonl row: %w", err)
		}
	}
	return nil
}

func (e *jsonlEncoder) End() error { return nil }

// errWrap contextualises a non-nil error and passes nil through.
func errWrap(what string, err error) error {
	if err != nil {
		return fmt.Errorf("%s: %w", what, err)
	}
	return nil
}

// ImportCSV reads a schedule previously written by ExportCSV.
func ImportCSV(r io.Reader) ([]SynthFlow, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read csv header: %w", err)
	}
	if len(header) != 8 || header[0] != "start_s" {
		return nil, fmt.Errorf("core: not a keddah schedule CSV (header %v)", header)
	}
	var out []SynthFlow
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("read csv line %d: %w", line, err)
		}
		startS, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: start: %w", line, err)
		}
		ints := make([]int, 4)
		for i := 0; i < 4; i++ {
			v, err := strconv.Atoi(rec[1+i])
			if err != nil {
				return nil, fmt.Errorf("line %d: field %d: %w", line, i+1, err)
			}
			ints[i] = v
		}
		bytes, err := strconv.ParseInt(rec[5], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bytes: %w", line, err)
		}
		out = append(out, SynthFlow{
			StartNs: int64(startS * 1e9),
			SrcHost: ints[0],
			DstHost: ints[1],
			SrcPort: ints[2],
			DstPort: ints[3],
			Bytes:   bytes,
			Phase:   flows.Phase(rec[6]),
			Job:     rec[7],
		})
	}
}

// ExportNS3 writes the schedule in the keddah-ns3 driver format for the
// given worker count.
func ExportNS3(w io.Writer, schedule []SynthFlow, workers int) error {
	return exportAll("ns3", w, schedule, workers)
}

type ns3Encoder struct {
	bw      *bufio.Writer
	workers int
}

func (e *ns3Encoder) ContentType() string { return "text/plain" }

func (e *ns3Encoder) Begin() error {
	if _, err := fmt.Fprintln(e.bw, "# keddah-ns3 v1"); err != nil {
		return fmt.Errorf("write ns3 header: %w", err)
	}
	if _, err := fmt.Fprintf(e.bw, "nodes %d\n", e.workers+1); err != nil {
		return fmt.Errorf("write ns3 header: %w", err)
	}
	return errWrap("write ns3 header", e.bw.Flush())
}

func (e *ns3Encoder) Flows(schedule []SynthFlow) error {
	master := e.workers
	node := func(h int) int {
		if h < 0 {
			return master
		}
		return h % e.workers
	}
	for _, sf := range schedule {
		tag := string(sf.Phase)
		if sf.Job != "" {
			tag = sf.Job + ":" + tag
		}
		// bufio's error is sticky, so checking each write aborts the loop
		// promptly once the sink dies instead of formatting the rest of
		// the schedule into a dead buffer.
		if _, err := fmt.Fprintf(e.bw, "flow %.9f %d %d %d %d %s\n",
			float64(sf.StartNs)/1e9, node(sf.SrcHost), node(sf.DstHost),
			sf.DstPort, sf.Bytes, sanitizeTag(tag)); err != nil {
			return fmt.Errorf("write ns3 flow: %w", err)
		}
	}
	return errWrap("write ns3 flows", e.bw.Flush())
}

func (e *ns3Encoder) End() error {
	return errWrap("flush ns3 export", e.bw.Flush())
}

// sanitizeTag keeps driver lines single-token parseable.
func sanitizeTag(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == ':', r == '-', r == '_', r == '.', r == '/':
			return r
		default:
			return '_'
		}
	}, s)
}

// WriteFlowCSV exports a TraceSet's ground-truth flow records — every
// run plus background — as CSV, one flow per row in a fixed column
// order. The output is a pure function of the TraceSet, so the CI
// shard-determinism job byte-diffs it across engine layouts.
func WriteFlowCSV(w io.Writer, ts *TraceSet) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"scope", "label", "src", "dst", "src_port", "dst_port", "first_ns", "last_ns", "bytes"}); err != nil {
		return fmt.Errorf("write flow csv header: %w", err)
	}
	row := func(scope string, r pcap.FlowRecord) error {
		return cw.Write([]string{
			scope, r.Label,
			r.Key.Src.String(), r.Key.Dst.String(),
			strconv.Itoa(int(r.Key.SrcPort)), strconv.Itoa(int(r.Key.DstPort)),
			strconv.FormatInt(r.FirstNs, 10), strconv.FormatInt(r.LastNs, 10),
			strconv.FormatInt(r.Bytes, 10),
		})
	}
	for _, r := range ts.Background {
		if err := row("background", r); err != nil {
			return fmt.Errorf("write flow csv: %w", err)
		}
	}
	for _, run := range ts.Runs {
		for _, r := range run.Records {
			if err := row(run.JobName, r); err != nil {
				return fmt.Errorf("write flow csv: %w", err)
			}
		}
	}
	cw.Flush()
	return errWrap("flush flow csv", cw.Error())
}
