package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"keddah/internal/flows"
	"keddah/internal/netsim"
	"keddah/internal/pcap"
	"keddah/internal/sim"
	"keddah/internal/stats"
	"keddah/internal/telemetry"
)

// SynthFlow is one synthetic transfer in a generated schedule. Host
// indexes are worker ordinals (0-based); -1 addresses the master. A
// schedule is simulator-agnostic: Replay runs it on the built-in netsim,
// and the JSON form can feed an external simulator.
type SynthFlow struct {
	StartNs int64       `json:"startNs"`
	SrcHost int         `json:"srcHost"`
	DstHost int         `json:"dstHost"`
	SrcPort int         `json:"srcPort"`
	DstPort int         `json:"dstPort"`
	Bytes   int64       `json:"bytes"`
	Phase   flows.Phase `json:"phase"`
	Job     string      `json:"job"`
}

// GenSpec parameterises traffic generation from a fitted model.
type GenSpec struct {
	// Workload selects the JobModel.
	Workload string `json:"workload"`
	// InputBytes scales the job (0 = the model's reference size).
	InputBytes int64 `json:"inputBytes"`
	// BlockSize (0 = model reference) sets the HDFS block size the
	// synthetic job is assumed to run with.
	BlockSize int64 `json:"blockSize"`
	// Reducers (0 = scaled from the model reference) sets the reduce
	// fan-in.
	Reducers int `json:"reducers"`
	// Workers is the worker host count traffic is spread over.
	Workers int `json:"workers"`
	// Jobs is how many job instances to generate (default 1).
	Jobs int `json:"jobs"`
	// Stagger spaces successive job starts as a fraction of the scaled
	// job duration: 1 (default) is back-to-back, 0.25 overlaps four
	// jobs — the multi-tenant scenario replays exist to study. Negative
	// values are treated as 0 (all jobs start together).
	Stagger float64 `json:"stagger"`
	// IncludeBackground adds cluster heartbeat traffic from the
	// background model.
	IncludeBackground bool `json:"includeBackground"`
	// Seed fixes generation randomness.
	Seed int64 `json:"seed"`
}

func (g GenSpec) withDefaults(jm *JobModel) GenSpec {
	if g.InputBytes <= 0 {
		g.InputBytes = jm.RefInputBytes
	}
	if g.BlockSize <= 0 {
		g.BlockSize = jm.RefBlockSize
	}
	if g.Workers <= 0 {
		g.Workers = 16
	}
	if g.Reducers <= 0 {
		scale := float64(g.InputBytes) / float64(jm.RefInputBytes)
		g.Reducers = int(math.Max(1, math.Round(float64(jm.RefReducers)*scale)))
	}
	if g.Jobs <= 0 {
		g.Jobs = 1
	}
	if g.Stagger == 0 {
		g.Stagger = 1
	} else if g.Stagger < 0 {
		g.Stagger = 1e-9
	}
	return g
}

// phasePorts returns the (srcPort, dstPort) convention for synthetic
// flows of a phase so that generated traffic classifies identically to
// measured traffic.
func phasePorts(ph flows.Phase, rng *stats.RNG) (int, int) {
	eph := 32768 + rng.Intn(28232)
	switch ph {
	case flows.PhaseHDFSRead:
		return flows.PortDataNodeData, eph
	case flows.PhaseHDFSWrite:
		return eph, flows.PortDataNodeData
	case flows.PhaseShuffle:
		return flows.PortShuffle, eph
	default:
		return eph, flows.PortRMTracker
	}
}

// genCtxStride is how many flows are generated between context polls in
// the inner sampling loops: coarse enough to stay off the hot path, fine
// enough that a cancelled request stops within microseconds of work.
const genCtxStride = 4096

// Generate builds a synthetic flow schedule for spec from the fitted
// model — the toolchain's reproduction stage. Structural counts scale
// with the requested input size and reducer fan-in; sizes, phase offsets
// and arrival spacing are drawn from the fitted laws.
func (m *Model) Generate(spec GenSpec) ([]SynthFlow, error) {
	return m.GenerateContext(context.Background(), spec)
}

// GenerateContext is Generate with validation and cancellation: the spec
// is checked up front (errors wrap ErrBadSpec), and ctx is polled
// between phases and every genCtxStride flows, so a caller whose client
// vanished — or whose deadline passed — aborts the schedule mid-build
// instead of completing work nobody will read. The output is identical
// to Generate for any spec that runs to completion.
func (m *Model) GenerateContext(ctx context.Context, spec GenSpec) ([]SynthFlow, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	jm, ok := m.Jobs[spec.Workload]
	if !ok {
		return nil, fmt.Errorf("core: model has no workload %q", spec.Workload)
	}
	spec = spec.withDefaults(jm)
	if err := spec.validateScaled(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(spec.Seed)

	maps := int((spec.InputBytes + spec.BlockSize - 1) / spec.BlockSize)
	if maps < 1 {
		maps = 1
	}
	blocks := maps
	durSecs := jm.DurationAt(spec.InputBytes)
	if durSecs <= 0 {
		durSecs = jm.DurationSecs
	}

	var schedule []SynthFlow
	jobStart := 0.0
	for job := 0; job < spec.Jobs; job++ {
		jobName := fmt.Sprintf("%s-gen%d", spec.Workload, job)
		// Assign task hosts round-robin with a random rotation, the way
		// a busy scheduler spreads containers.
		rot := rng.Intn(spec.Workers)
		mapHost := func(i int) int { return (rot + i) % spec.Workers }
		redHost := func(i int) int { return (rot + 7*i + 3) % spec.Workers }

		for _, ph := range flows.AllPhases {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: generate: %w", err)
			}
			pm, ok := jm.Phases[ph]
			if !ok {
				continue
			}
			count := phaseCount(pm, maps, blocks, spec.Reducers, durSecs)
			if count == 0 {
				continue
			}
			sizeLaw, err := pm.Size.Build()
			if err != nil {
				return nil, fmt.Errorf("size law %s/%s: %w", spec.Workload, ph, err)
			}
			iaLaw, err := pm.InterArrival.Build()
			if err != nil {
				return nil, fmt.Errorf("inter-arrival law %s/%s: %w", spec.Workload, ph, err)
			}
			offLaw, err := pm.StartOffset.Build()
			if err != nil {
				return nil, fmt.Errorf("offset law %s/%s: %w", spec.Workload, ph, err)
			}

			// The size law lives in normalized space (shuffle sizes are
			// fitted ×reducers); divide the normalizer back out for the
			// target configuration.
			denom := 1.0
			if pm.SizeNormalizer == "reducers" && spec.Reducers > 0 {
				denom = float64(spec.Reducers)
			}
			sampleSize := func() float64 {
				r := rng.Float64()
				acc := 0.0
				for _, a := range pm.SizeAtoms {
					acc += a.Weight
					if r < acc {
						return a.Value / denom
					}
				}
				return winsorize(sizeLaw.Sample(rng), pm.SizeMin, pm.SizeMax) / denom
			}

			t := jobStart + math.Max(0, offLaw.Sample(rng))
			for i := 0; i < count; i++ {
				if i%genCtxStride == 0 && ctx.Err() != nil {
					return nil, fmt.Errorf("core: generate: %w", ctx.Err())
				}
				if i > 0 {
					t += math.Max(0, iaLaw.Sample(rng))
				}
				size := int64(math.Max(1, sampleSize()))
				src, dst := endpointsFor(ph, i, maps, spec.Reducers, spec.Workers, mapHost, redHost, rng)
				sp, dp := phasePorts(ph, rng)
				schedule = append(schedule, SynthFlow{
					StartNs: int64(t * 1e9),
					SrcHost: src,
					DstHost: dst,
					SrcPort: sp,
					DstPort: dp,
					Bytes:   size,
					Phase:   ph,
					Job:     jobName,
				})
			}
		}
		jobStart += durSecs * spec.Stagger
	}

	if spec.IncludeBackground && m.Background != nil {
		bg, err := m.generateBackground(ctx, spec, jobStart, rng)
		if err != nil {
			return nil, err
		}
		schedule = append(schedule, bg...)
	}

	sort.SliceStable(schedule, func(i, j int) bool { return schedule[i].StartNs < schedule[j].StartNs })
	return schedule, nil
}

// GenerateChunks streams the schedule GenerateContext would return —
// identical flows in identical time order — through emit in slices of at
// most chunk flows (chunk <= 0 selects genCtxStride). ctx is honoured
// both during generation and between emits, so a disconnected or
// deadline-expired client aborts the stream mid-schedule. The compact
// flow structs are materialised once (global time ordering requires the
// full schedule before the first record can be emitted); what is never
// materialised is the encoded output — each emitted slice can be encoded
// and flushed to the client before the next is touched, which is what
// keeps keddah-serve's per-stream memory flat regardless of schedule
// length. A chunk slice is only valid during its emit call.
func (m *Model) GenerateChunks(ctx context.Context, spec GenSpec, chunk int, emit func([]SynthFlow) error) error {
	sched, err := m.GenerateContext(ctx, spec)
	if err != nil {
		return err
	}
	return emitChunks(ctx, sched, chunk, emit)
}

// emitChunks feeds a schedule to emit in bounded slices with a context
// poll before each call.
func emitChunks(ctx context.Context, sched []SynthFlow, chunk int, emit func([]SynthFlow) error) error {
	if chunk <= 0 {
		chunk = genCtxStride
	}
	for len(sched) > 0 {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: generate: %w", err)
		}
		n := chunk
		if n > len(sched) {
			n = len(sched)
		}
		if err := emit(sched[:n]); err != nil {
			return err
		}
		sched = sched[n:]
	}
	return nil
}

// EstimateFlows predicts the exact schedule length Generate would
// produce for spec without sampling a single law: phase counts are
// structural (deterministic in maps, reducers and duration), and the
// background count is a deterministic function of the job span. Callers
// admitting untrusted specs (keddah-serve) use it to reject requests
// whose schedules would not fit in memory before doing any work.
func (m *Model) EstimateFlows(spec GenSpec) (int64, error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	jm, ok := m.Jobs[spec.Workload]
	if !ok {
		return 0, fmt.Errorf("core: model has no workload %q", spec.Workload)
	}
	spec = spec.withDefaults(jm)
	if err := spec.validateScaled(); err != nil {
		return 0, err
	}
	maps := int((spec.InputBytes + spec.BlockSize - 1) / spec.BlockSize)
	if maps < 1 {
		maps = 1
	}
	durSecs := jm.DurationAt(spec.InputBytes)
	if durSecs <= 0 {
		durSecs = jm.DurationSecs
	}
	var perJob int64
	for _, ph := range flows.AllPhases {
		pm, ok := jm.Phases[ph]
		if !ok {
			continue
		}
		perJob += int64(phaseCount(pm, maps, maps, spec.Reducers, durSecs))
	}
	total := perJob * int64(spec.Jobs)
	if spec.IncludeBackground && m.Background != nil {
		spanSecs := durSecs * spec.Stagger * float64(spec.Jobs)
		total += int64(math.Round(m.Background.CountPerUnit * spanSecs * float64(spec.Workers)))
	}
	return total, nil
}

// winsorize clamps a sampled size to the model's empirical support so
// heavy-tailed fits cannot generate flows far larger than anything
// measured. No-op when the support was not recorded.
func winsorize(v, lo, hi float64) float64 {
	if hi <= 0 {
		return v
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// phaseCount applies the structural scaling rule.
func phaseCount(pm *PhaseModel, maps, blocks, reducers int, durSecs float64) int {
	var units float64
	switch pm.Unit {
	case "mapxreduce":
		units = float64(maps * reducers)
	case "block":
		units = float64(blocks)
	case "second":
		units = durSecs
	case "controlmix":
		units = controlUnits(float64(maps), float64(reducers), durSecs)
	case "hostsecond":
		units = durSecs // caller multiplies by hosts
	default:
		units = 1
	}
	return int(math.Round(pm.CountPerUnit * units))
}

// endpointsFor picks a host pair matching the phase's communication
// pattern.
func endpointsFor(ph flows.Phase, i, maps, reducers, workers int, mapHost, redHost func(int) int, rng *stats.RNG) (int, int) {
	switch ph {
	case flows.PhaseShuffle:
		// Enumerate (map, reducer) pairs as the real all-to-all does.
		m := i % maxInt(1, maps)
		r := (i / maxInt(1, maps)) % maxInt(1, reducers)
		return mapHost(m), redHost(r)
	case flows.PhaseHDFSRead:
		// Replica host → mapper host.
		return rng.Intn(workers), mapHost(i % maxInt(1, maps))
	case flows.PhaseHDFSWrite:
		// Writer (reducer or pipeline hop) → datanode.
		src := redHost(i % maxInt(1, reducers))
		dst := rng.Intn(workers)
		return src, dst
	default:
		// Control: worker ↔ master (-1).
		return rng.Intn(workers), -1
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// generateBackground emits heartbeat traffic over the job span.
func (m *Model) generateBackground(ctx context.Context, spec GenSpec, spanSecs float64, rng *stats.RNG) ([]SynthFlow, error) {
	pm := m.Background
	sizeLaw, err := pm.Size.Build()
	if err != nil {
		return nil, fmt.Errorf("background size law: %w", err)
	}
	count := int(math.Round(pm.CountPerUnit * spanSecs * float64(spec.Workers)))
	out := make([]SynthFlow, 0, count)
	for i := 0; i < count; i++ {
		if i%genCtxStride == 0 && ctx.Err() != nil {
			return nil, fmt.Errorf("core: generate background: %w", ctx.Err())
		}
		t := rng.Float64() * spanSecs
		sp, dp := phasePorts(flows.PhaseControl, rng)
		size := sizeLaw.Sample(rng)
		if len(pm.SizeAtoms) > 0 && rng.Float64() < pm.SizeAtoms[0].Weight {
			size = pm.SizeAtoms[0].Value
		}
		out = append(out, SynthFlow{
			StartNs: int64(t * 1e9),
			SrcHost: rng.Intn(spec.Workers),
			DstHost: -1,
			SrcPort: sp,
			DstPort: dp,
			Bytes:   int64(math.Max(1, winsorize(size, pm.SizeMin, pm.SizeMax))),
			Phase:   flows.PhaseControl,
			Job:     "background",
		})
	}
	return out, nil
}

// ScheduleFromRecords converts measured flow records into a replayable
// schedule that preserves start times, endpoints, ports and sizes —
// trace-driven simulation, the model-free alternative to Generate.
// Record addresses must have been produced by the capture taps
// (pcap.HostAddr over node ids); the first host maps to the master.
func ScheduleFromRecords(records []pcap.FlowRecord) []SynthFlow {
	if len(records) == 0 {
		return nil
	}
	base := records[0].FirstNs
	for _, r := range records {
		if r.FirstNs < base {
			base = r.FirstNs
		}
	}
	out := make([]SynthFlow, 0, len(records))
	for _, r := range records {
		job := r.Label
		if i := strings.IndexByte(job, '/'); i >= 0 {
			job = job[:i]
		}
		out = append(out, SynthFlow{
			StartNs: r.FirstNs - base,
			// Node id 0 is conventionally the master host in the
			// capture clusters; shift worker ids down by one and send
			// master traffic to -1.
			SrcHost: r.Key.Src.HostIndex() - 1,
			DstHost: r.Key.Dst.HostIndex() - 1,
			SrcPort: int(r.Key.SrcPort),
			DstPort: int(r.Key.DstPort),
			Bytes:   r.Bytes,
			Phase:   flows.Classify(r),
			Job:     job,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartNs < out[j].StartNs })
	return out
}

// Replay runs a synthetic schedule on a topology built from cluster and
// returns the captured flow records plus the simulated makespan — the
// "for use with network simulators" half of the toolchain.
func Replay(schedule []SynthFlow, cluster ClusterSpec) ([]pcap.FlowRecord, sim.Time, error) {
	return ReplayWith(schedule, cluster, nil)
}

// ReplayWith is Replay with instrumentation: engine and network metrics
// are attached to the replay substrate and the stage is counted and
// timed. A nil Telemetry behaves exactly like Replay.
func ReplayWith(schedule []SynthFlow, cluster ClusterSpec, tel *telemetry.Telemetry) ([]pcap.FlowRecord, sim.Time, error) {
	wallStart := time.Now()
	topo, err := cluster.BuildTopology()
	if err != nil {
		return nil, 0, err
	}
	if _, err := netsim.ParseTransport(cluster.Transport); err != nil {
		return nil, 0, fmt.Errorf("core: %w", err)
	}
	// Replays drive one network, so there is only one shard to run — but
	// a non-zero Shards still routes the run through the windowed
	// scheduler, proving the window protocol is identity-preserving on
	// the replay path too (the -shards CI lockstep uses this).
	eng := sim.New()
	var sched *sim.ShardedEngine
	if cluster.Shards != 0 {
		la := sim.Time(cluster.InterPodLatencyNs)
		if la <= 0 {
			la = sim.Time(netsim.DefaultInterPodLatencyNs)
		}
		var err error
		if sched, err = sim.NewSharded(1, 1, la); err != nil {
			return nil, 0, err
		}
		eng = sched.PodEngine(0)
	}
	net := netsim.NewNetwork(eng, topo, netsim.Config{Transport: cluster.Transport})
	if tel != nil {
		eng.SetMetrics(tel.Sim)
		net.SetMetrics(tel.Net)
	}
	capture := pcap.NewCapture()
	net.AddTap(capture)

	hosts := topo.Hosts()
	if len(hosts) < 2 {
		return nil, 0, fmt.Errorf("core: replay topology has %d hosts", len(hosts))
	}
	master, workers := hosts[0], hosts[1:]
	resolve := func(h int) netsim.NodeID {
		if h < 0 {
			return master
		}
		return workers[h%len(workers)]
	}

	for _, sf := range schedule {
		sf := sf
		if _, err := eng.At(sim.Time(sf.StartNs), func() {
			// Same-host pairs ride the loopback path, exactly as local
			// shuffle fetches and node-local HDFS reads do on a real
			// cluster (and in the measured captures).
			src, dst := resolve(sf.SrcHost), resolve(sf.DstHost)
			if _, err := net.StartFlow(netsim.FlowSpec{
				Src:       src,
				Dst:       dst,
				SrcPort:   sf.SrcPort,
				DstPort:   sf.DstPort,
				SizeBytes: sf.Bytes,
				Label:     sf.Job + "/" + string(sf.Phase),
			}); err != nil {
				panic(fmt.Sprintf("core: replay flow: %v", err))
			}
		}); err != nil {
			return nil, 0, fmt.Errorf("schedule flow: %w", err)
		}
	}
	var end sim.Time
	if sched != nil {
		end, err = sched.Drain()
	} else {
		end, err = eng.RunAll()
	}
	if err != nil {
		return nil, 0, fmt.Errorf("replay: %w", err)
	}
	if tel != nil {
		tel.Core.Replays.Inc()
		tel.Core.ReplayWallMs.Add(float64(time.Since(wallStart).Milliseconds()))
		tel.Trace.Add(telemetry.Span{Cat: "core", Name: "replay", Attr: cluster.Topology, EndNs: int64(end)})
	}
	return capture.Truth(), end, nil
}
