package core

import (
	"time"

	"keddah/internal/pcap"
	"keddah/internal/telemetry"
)

// This file holds the instrumented variants of the toolchain stages.
// Each is its bare counterpart plus a stage counter, a wall-clock
// volatile gauge, and (where the stage has a simulated extent) a span.
// A nil Telemetry makes every variant behave exactly like the original.

// FitWith is Fit with stage telemetry.
func FitWith(ts *TraceSet, opts FitOptions, tel *telemetry.Telemetry) (*Model, error) {
	wallStart := time.Now()
	m, err := Fit(ts, opts)
	if tel != nil && err == nil {
		tel.Core.Fits.Inc()
		tel.Core.FitWallMs.Add(float64(time.Since(wallStart).Milliseconds()))
	}
	return m, err
}

// GenerateWith is Model.Generate with stage telemetry.
func (m *Model) GenerateWith(spec GenSpec, tel *telemetry.Telemetry) ([]SynthFlow, error) {
	wallStart := time.Now()
	sched, err := m.Generate(spec)
	if tel != nil && err == nil {
		tel.Core.Generates.Inc()
		tel.Core.GenerateWallMs.Add(float64(time.Since(wallStart).Milliseconds()))
	}
	return sched, err
}

// ValidateWith is Validate with stage telemetry.
func ValidateWith(workload string, measured, generated []pcap.FlowRecord, tel *telemetry.Telemetry) Validation {
	wallStart := time.Now()
	v := Validate(workload, measured, generated)
	if tel != nil {
		tel.Core.Validates.Inc()
		tel.Core.ValidateWallMs.Add(float64(time.Since(wallStart).Milliseconds()))
	}
	return v
}
