package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"keddah/internal/flows"
)

var updateGolden = flag.Bool("update", false, "rewrite the export golden files")

// goldenSchedule exercises the format edge cases: master host (-1),
// CSV-hostile job names (comma, quote), NS3-tag-hostile names (spaces),
// sub-second start times and zero-byte flows.
func goldenSchedule() []SynthFlow {
	return []SynthFlow{
		{StartNs: 0, SrcHost: 0, DstHost: 1, SrcPort: 40001, DstPort: 50010,
			Bytes: 134_217_728, Phase: flows.PhaseHDFSWrite, Job: "terasort-gen0"},
		{StartNs: 1_500_000_000, SrcHost: 3, DstHost: 0, SrcPort: 13562, DstPort: 40002,
			Bytes: 4_194_304, Phase: flows.PhaseShuffle, Job: `weird "job", with csv`},
		{StartNs: 2_000_000_000, SrcHost: 2, DstHost: -1, SrcPort: 40003, DstPort: 8031,
			Bytes: 512, Phase: flows.PhaseControl, Job: "job with spaces"},
		{StartNs: 2_000_000_001, SrcHost: 7, DstHost: 4, SrcPort: 40004, DstPort: 13562,
			Bytes: 0, Phase: flows.PhaseShuffle, Job: ""},
	}
}

// checkGolden compares got against testdata/<name>, rewriting the file
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestExportCSVGolden pins the CSV wire format byte for byte: field
// order, float formatting, and quoting of hostile job names must not
// drift, or previously written schedules stop importing elsewhere.
func TestExportCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportCSV(&buf, goldenSchedule()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "schedule.golden.csv", buf.Bytes())

	// The golden bytes must also round-trip losslessly.
	back, err := ImportCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	want := goldenSchedule()
	if len(back) != len(want) {
		t.Fatalf("round trip lost flows: %d != %d", len(back), len(want))
	}
	for i := range want {
		if back[i] != want[i] {
			t.Errorf("flow %d changed: %+v -> %+v", i, want[i], back[i])
		}
	}
}

// TestExportNS3Golden pins the driver stream format: header, node
// count, flow-line layout and tag sanitisation.
func TestExportNS3Golden(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportNS3(&buf, goldenSchedule(), 8); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "schedule.golden.ns3", buf.Bytes())
}
