package core

import (
	"reflect"
	"testing"

	"keddah/internal/faults"
	"keddah/internal/workload"
)

// chaosSchedule mixes all three fault kinds inside the job window of a
// small terasort on a 6-worker star (access links 0..6, worker links
// start at 1 because link 0 belongs to the master).
func chaosSchedule() faults.Schedule {
	return faults.Schedule{Faults: []faults.Fault{
		{Kind: faults.LinkDown, Link: 2, AtNs: 6_000_000_000, DurationNs: 3_000_000_000},
		{Kind: faults.LinkDegrade, Link: 4, AtNs: 8_000_000_000, DurationNs: 4_000_000_000, Factor: 0.25},
		{Kind: faults.NodeCrash, Worker: 3, AtNs: 7_000_000_000, DurationNs: 12_000_000_000},
	}}
}

func chaosSpecAndRuns() (ClusterSpec, []workload.RunSpec) {
	return ClusterSpec{Workers: 6, Seed: 99},
		[]workload.RunSpec{{Profile: "terasort", InputBytes: 256 << 20}}
}

// TestEmptyScheduleLockstep is the lockstep guarantee: a capture with an
// empty fault schedule must be record-identical — the whole TraceSet,
// stats included — to one that never went near the faults package.
func TestEmptyScheduleLockstep(t *testing.T) {
	spec, runs := chaosSpecAndRuns()
	plain, _, err := Capture(spec, runs)
	if err != nil {
		t.Fatal(err)
	}
	empty, _, err := CaptureWith(spec, runs, CaptureOpts{Faults: faults.Schedule{}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, empty) {
		t.Error("empty fault schedule changed the capture")
	}
}

// TestFaultCaptureDeterministic reruns the same seed and non-empty
// schedule and requires bit-identical trace sets: fault injection must
// not introduce any ordering or RNG nondeterminism.
func TestFaultCaptureDeterministic(t *testing.T) {
	spec, runs := chaosSpecAndRuns()
	sched := chaosSchedule()
	a, resA, err := CaptureWith(spec, runs, CaptureOpts{Faults: sched})
	if err != nil {
		t.Fatal(err)
	}
	b, resB, err := CaptureWith(spec, runs, CaptureOpts{Faults: sched})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed and schedule produced different trace sets")
	}
	if !reflect.DeepEqual(resA, resB) {
		t.Error("same seed and schedule produced different run results")
	}
	// The schedule actually did something — otherwise this test proves
	// nothing beyond the lockstep case.
	if a.Stats.AbortedFlows == 0 {
		t.Error("chaos schedule aborted no flows")
	}
	if reflect.DeepEqual(a.Runs[0].Records, mustHealthy(t).Runs[0].Records) {
		t.Error("chaos capture identical to healthy capture")
	}
}

func mustHealthy(t *testing.T) *TraceSet {
	t.Helper()
	spec, runs := chaosSpecAndRuns()
	ts, _, err := Capture(spec, runs)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestFaultScheduleValidated(t *testing.T) {
	spec, runs := chaosSpecAndRuns()
	bad := faults.Schedule{Faults: []faults.Fault{
		{Kind: faults.LinkDown, Link: 9999, AtNs: 1, DurationNs: 1},
	}}
	if _, _, err := CaptureWith(spec, runs, CaptureOpts{Faults: bad}); err == nil {
		t.Error("out-of-range link fault accepted")
	}
	overlapping := faults.Schedule{Faults: []faults.Fault{
		{Kind: faults.NodeCrash, Worker: 1, AtNs: 1_000_000_000, DurationNs: 5_000_000_000},
		{Kind: faults.NodeCrash, Worker: 1, AtNs: 2_000_000_000, DurationNs: 5_000_000_000},
	}}
	if _, _, err := CaptureWith(spec, runs, CaptureOpts{Faults: overlapping}); err == nil {
		t.Error("overlapping faults on one worker accepted")
	}
}
