package core

import (
	"fmt"
	"time"

	"keddah/internal/faults"
	"keddah/internal/flows"
	"keddah/internal/hadoop"
	"keddah/internal/hadoop/hdfs"
	"keddah/internal/hadoop/yarn"
	"keddah/internal/invariants"
	"keddah/internal/netsim"
	"keddah/internal/pcap"
	"keddah/internal/sim"
	"keddah/internal/telemetry"
	"keddah/internal/workload"
)

// ClusterSpec describes the testbed a capture session runs on. It covers
// the configuration axes the paper varies: cluster size, fabric shape and
// capacity, HDFS block size and replication, and container slots.
type ClusterSpec struct {
	// Topology is "star", "multirack" or "fattree" (default "star").
	Topology string `json:"topology"`
	// Workers is the worker host count (star/multirack). One extra
	// master host is always added.
	Workers int `json:"workers"`
	// Racks is the rack count for multirack (default 2).
	Racks int `json:"racks"`
	// HostGbps is the access-link capacity (default 1).
	HostGbps float64 `json:"hostGbps"`
	// UplinkGbps is the rack uplink capacity for multirack (default 10).
	UplinkGbps float64 `json:"uplinkGbps"`
	// FatTreeK is the fat-tree arity (hosts = k³/4; first host is the
	// master).
	FatTreeK int `json:"fatTreeK"`
	// BlockSize / Replication / SlotsPerNode are Hadoop parameters
	// (defaults 128 MiB, 3, 4).
	BlockSize    int64 `json:"blockSize"`
	Replication  int   `json:"replication"`
	SlotsPerNode int   `json:"slotsPerNode"`
	// LocalityWaitNs overrides the delay-scheduling window (0 = the
	// YARN default of 3s; pass 1 to disable locality waiting — the A1
	// ablation).
	LocalityWaitNs int64 `json:"localityWaitNs"`
	// Allocator selects the bandwidth sharing model: "" or "maxmin"
	// (default), "equalsplit" (the A2 ablation), or "maxmin-ref" (the
	// from-scratch reference implementation of max-min fairness, kept
	// for equivalence testing of the incremental allocator).
	Allocator string `json:"allocator"`
	// NetImpl selects the netsim flow-storage core: "" or "soa" (the
	// default struct-of-arrays layout) or "pointer" (the pointer-per-flow
	// reference core, kept for lockstep equivalence testing). The two are
	// trajectory-identical; only memory behaviour differs.
	NetImpl string `json:"netImpl"`
	// Transport selects the network rate model: "" or "fluid" (default
	// max-min fluid sharing) or "tcp" (per-flow TCP state machine with
	// slow start, AIMD, fast retransmit and RTO over droptail queues).
	// "tcp" requires the struct-of-arrays core.
	Transport string `json:"transport"`
	// Seed fixes all randomness.
	Seed int64 `json:"seed"`
	// Pods is the pod count of a multi-pod capture. 0 or 1 runs the
	// classic single-pod session; above 1, each pod is a full cluster
	// of Workers hosts (own master, own network) and pods exchange
	// traffic through the store-and-forward inter-pod fabric.
	Pods int `json:"pods,omitempty"`
	// Shards selects the engine layout of a multi-pod capture:
	// 0 = serial (one event engine hosting every pod, still advancing
	// through the same conservative windows), -1 = auto (one engine per
	// pod), or an explicit count in [1, Pods]. Output is byte-identical
	// at every setting; only wall-clock changes. Single-pod captures
	// ignore it.
	Shards int `json:"shards,omitempty"`
	// CrossPod selects the inter-pod copy traffic each pod emits after
	// its last run: "" or "ring" (pod p distcps its final output to pod
	// p+1), "fanin" (every pod sends to pod 0 — the skewed-reducer
	// shape), or "none".
	CrossPod string `json:"crossPod,omitempty"`
	// InterPodLatencyNs is the one-way gateway-to-gateway latency of
	// the inter-pod fabric (default 1ms). It is also the scheduler
	// lookahead the conservative windows are derived from.
	InterPodLatencyNs int64 `json:"interPodLatencyNs,omitempty"`
}

func (s ClusterSpec) withDefaults() ClusterSpec {
	if s.Topology == "" {
		s.Topology = "star"
	}
	if s.Workers <= 0 {
		s.Workers = 16
	}
	if s.Racks <= 0 {
		s.Racks = 2
	}
	if s.HostGbps <= 0 {
		s.HostGbps = 1
	}
	if s.UplinkGbps <= 0 {
		s.UplinkGbps = 10
	}
	if s.FatTreeK <= 0 {
		s.FatTreeK = 4
	}
	return s
}

// BuildTopology constructs the fabric described by the spec.
func (s ClusterSpec) BuildTopology() (*netsim.Topology, error) {
	s = s.withDefaults()
	switch s.Topology {
	case "star":
		return netsim.Star(s.Workers+1, s.HostGbps*netsim.Gbps)
	case "multirack":
		total := s.Workers + 1
		perRack := (total + s.Racks - 1) / s.Racks
		return netsim.MultiRack(s.Racks, perRack, s.HostGbps*netsim.Gbps, s.UplinkGbps*netsim.Gbps)
	case "fattree":
		return netsim.FatTree(s.FatTreeK, s.HostGbps*netsim.Gbps)
	default:
		return nil, fmt.Errorf("core: unknown topology %q", s.Topology)
	}
}

// BuildCluster assembles a Hadoop cluster on the spec's fabric.
func (s ClusterSpec) BuildCluster() (*hadoop.Cluster, error) {
	return s.buildClusterOn(nil)
}

// buildClusterOn is BuildCluster with the event engine chosen by the
// caller — multi-pod captures place each pod's cluster on its shard's
// engine. A nil engine gives the cluster a fresh private one.
func (s ClusterSpec) buildClusterOn(eng *sim.Engine) (*hadoop.Cluster, error) {
	topo, err := s.BuildTopology()
	if err != nil {
		return nil, err
	}
	s = s.withDefaults()
	var alloc netsim.Allocator
	var reference bool
	switch s.Allocator {
	case "", "maxmin":
		alloc = netsim.AllocMaxMin
	case "maxmin-ref":
		alloc = netsim.AllocMaxMin
		reference = true
	case "equalsplit":
		alloc = netsim.AllocEqualSplit
	default:
		return nil, fmt.Errorf("core: unknown allocator %q", s.Allocator)
	}
	var pointer bool
	switch s.NetImpl {
	case "", "soa":
	case "pointer":
		pointer = true
	default:
		return nil, fmt.Errorf("core: unknown net impl %q", s.NetImpl)
	}
	transport, err := netsim.ParseTransport(s.Transport)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if transport == netsim.TransportTCP && pointer {
		return nil, fmt.Errorf("core: transport %q requires the struct-of-arrays net impl, not %q", s.Transport, s.NetImpl)
	}
	return hadoop.New(topo, hadoop.Config{
		HDFS: hdfs.Config{BlockSize: s.BlockSize, Replication: s.Replication},
		YARN: yarn.Config{SlotsPerNode: s.SlotsPerNode, LocalityWait: sim.Time(s.LocalityWaitNs)},
		Net: netsim.Config{
			Allocator: alloc, UseReferenceAllocator: reference,
			UsePointerFlows: pointer, Transport: s.Transport,
		},
		Engine: eng,
		Seed:   s.Seed,
	})
}

// FailureSpec injects a whole-worker failure during a capture session.
type FailureSpec struct {
	// WorkerIndex selects the victim among the cluster's workers.
	WorkerIndex int `json:"workerIndex"`
	// AtNs is the simulated failure time.
	AtNs int64 `json:"atNs"`
}

// CaptureOpts extends Capture with optional session behaviour.
type CaptureOpts struct {
	// Failures schedules permanent crash-stop worker kills (the legacy
	// E11 path, kept for compatibility).
	Failures []FailureSpec
	// Faults is the generalised fault schedule: link down/degrade and
	// transient node crash+rejoin. An empty schedule changes nothing —
	// captures are record-identical to a fault-free session.
	Faults faults.Schedule
	// Telemetry, when non-nil, instruments the whole session: counters
	// and spans across every layer, and — when the Telemetry has a link
	// timeline enabled — a per-link utilisation probe. The capture's
	// traffic is unchanged by attaching it.
	Telemetry *telemetry.Telemetry
	// StrictChecks runs the invariants layer during the session: sampled
	// cross-layer sweeps after engine steps plus end-of-capture packet
	// train and conservation checks. Checks are read-only, so the
	// captured traffic is byte-identical either way. Binaries built with
	// the keddah_checks tag force this on for every capture.
	StrictChecks bool
	// Transport, when non-empty, overrides the spec's network transport
	// for this session ("fluid" or "tcp") — experiments comparing the two
	// models on one cluster spec thread the choice through here.
	Transport string
	// Shards, when non-nil, overrides spec.Shards for this session
	// (0 = serial, -1 = auto, 1..Pods explicit). The CLI -shards flag
	// and the lockstep experiments thread the engine layout here.
	Shards *int
	// InterPodFaults marks pod-pair fabric outages in a multi-pod
	// capture: transfers between a down pair detour through a relay pod
	// or abort. Ignored (with an error) outside multi-pod sessions.
	InterPodFaults []InterPodFault
}

// InterPodFault takes the (SrcPod, DstPod) fabric pair down at AtNs for
// DurationNs (0 = permanently).
type InterPodFault struct {
	SrcPod     int   `json:"srcPod"`
	DstPod     int   `json:"dstPod"`
	AtNs       int64 `json:"atNs"`
	DurationNs int64 `json:"durationNs"`
}

// Capture runs the given workloads sequentially on a fresh cluster built
// from spec, tapping every flow, and reduces the capture into a TraceSet:
// one Run per MapReduce round, with cluster-wide heartbeat traffic in
// Background. This is the toolchain's measurement stage.
func Capture(spec ClusterSpec, runSpecs []workload.RunSpec) (*TraceSet, []workload.RunResult, error) {
	return CaptureWith(spec, runSpecs, CaptureOpts{})
}

// CaptureWith is Capture with failure injection and other session options.
func CaptureWith(spec ClusterSpec, runSpecs []workload.RunSpec, opts CaptureOpts) (*TraceSet, []workload.RunResult, error) {
	spec = spec.withDefaults()
	if opts.Transport != "" {
		spec.Transport = opts.Transport
	}
	if spec.Pods > 1 {
		return captureMultiPod(spec, runSpecs, opts)
	}
	if len(opts.InterPodFaults) > 0 {
		return nil, nil, fmt.Errorf("core: inter-pod faults need a multi-pod capture (pods=%d)", spec.Pods)
	}
	wallStart := time.Now()
	cluster, err := spec.BuildCluster()
	if err != nil {
		return nil, nil, fmt.Errorf("build cluster: %w", err)
	}
	// Pre-size the network's flow storage (and the engine's event slab)
	// from the workload profiles' predicted peak concurrency, so the
	// steady-state capture loop allocates nothing.
	cluster.Net.Reserve(workload.EstimatePeakFlows(
		runSpecs, len(cluster.Workers()), spec.SlotsPerNode, spec.Replication))
	cluster.AttachTelemetry(opts.Telemetry)
	for _, f := range opts.Failures {
		workers := cluster.Workers()
		if f.WorkerIndex < 0 || f.WorkerIndex >= len(workers) {
			return nil, nil, fmt.Errorf("core: failure worker index %d out of range", f.WorkerIndex)
		}
		if err := cluster.FailWorker(workers[f.WorkerIndex], sim.Time(f.AtNs)); err != nil {
			return nil, nil, fmt.Errorf("schedule failure: %w", err)
		}
	}
	if err := faults.Inject(cluster, opts.Faults); err != nil {
		return nil, nil, fmt.Errorf("schedule faults: %w", err)
	}
	capture := pcap.NewCapture()
	cluster.Net.AddTap(capture)
	var checker *invariants.Checker
	if opts.StrictChecks || invariants.BuildEnabled {
		var copts invariants.Options
		if opts.Telemetry != nil {
			copts.Tracer = opts.Telemetry.Trace
		}
		checker = invariants.Attach(cluster, copts)
	}
	var probe *netsim.UtilizationProbe
	if tel := opts.Telemetry; tel != nil && tel.Links != nil {
		probe = netsim.NewUtilizationProbe(cluster.Net, nil, sim.Time(tel.Links.IntervalNs))
		probe.AttachTimeline(tel.Links)
	}

	results := make([]workload.RunResult, 0, len(runSpecs))
	// Run workloads strictly one after another so each run's traffic is
	// cleanly attributable (the paper isolates jobs the same way).
	var launch func(i int) error
	launch = func(i int) error {
		if i == len(runSpecs) {
			return nil
		}
		rs := runSpecs[i]
		if rs.JobName == "" {
			rs.JobName = fmt.Sprintf("%s%d", rs.Profile, i)
		}
		return workload.Run(cluster, rs, i, func(res workload.RunResult) {
			results = append(results, res)
			if err := launch(i + 1); err != nil {
				panic(fmt.Sprintf("core: launch run %d: %v", i+1, err))
			}
		})
	}
	if err := launch(0); err != nil {
		return nil, nil, fmt.Errorf("launch first run: %w", err)
	}
	if probe != nil {
		probe.Start()
	}
	end, err := cluster.RunToIdle()
	if err != nil {
		return nil, nil, fmt.Errorf("simulate: %w", err)
	}
	if checker != nil {
		faultFree := len(opts.Failures) == 0 && len(opts.Faults.Faults) == 0
		if err := checker.Final(capture, faultFree); err != nil {
			return nil, nil, err
		}
	}
	if tel := opts.Telemetry; tel != nil {
		tel.Core.Captures.Inc()
		tel.Core.CaptureSimNs.SetMax(float64(end))
		tel.Core.CaptureWallMs.Add(float64(time.Since(wallStart).Milliseconds()))
		tel.Trace.Add(telemetry.Span{Cat: "core", Name: "capture", Attr: spec.Topology, EndNs: int64(end)})
	}

	ts, err := reduceCapture(spec, capture.Truth(), results)
	if err != nil {
		return nil, nil, err
	}
	ts.Stats = CaptureStats{
		ReReplicatedBytes:  cluster.FS.ReReplicatedBytes,
		ReReplicatedBlocks: cluster.FS.ReReplicatedBlocks,
		LostContainers:     cluster.RM.LostContainers,
		LostBlocks:         cluster.FS.LostBlocks,
		PipelineRecoveries: cluster.FS.PipelineRecoveries,
		ReadRetries:        cluster.FS.ReadRetries,
		AbortedFlows:       int64(cluster.Net.AbortedFlows()),
	}
	return ts, results, nil
}

// reduceCapture groups ground-truth flow records into per-job Runs plus
// cluster background traffic.
func reduceCapture(spec ClusterSpec, records []pcap.FlowRecord, results []workload.RunResult) (*TraceSet, error) {
	groups := flows.GroupByJob(records)
	ts := &TraceSet{BackgroundHosts: spec.Workers}

	// Background: cluster-wide heartbeats (yarn/*, hdfs/*) plus the
	// inter-pod copy traffic of multi-pod sessions (distcp/*).
	for _, key := range []string{"yarn", "hdfs", "distcp"} {
		if g, ok := groups[key]; ok {
			ts.Background = append(ts.Background, g.Records...)
		}
	}
	if len(ts.Background) > 0 {
		first, last := flows.NewDataset(ts.Background).Span()
		ts.BackgroundSpanNs = last - first
	}

	for _, rr := range results {
		for _, round := range rr.Rounds {
			g, ok := groups[round.Name]
			if !ok {
				return nil, fmt.Errorf("core: no captured flows for job %s", round.Name)
			}
			ts.Runs = append(ts.Runs, &Run{
				Workload:    rr.Spec.Profile,
				JobName:     round.Name,
				InputBytes:  round.InputBytes,
				Maps:        round.Maps,
				Reducers:    round.Reducers,
				BlockSize:   blockSizeOr(spec.BlockSize),
				Replication: replicationOr(spec.Replication),
				Hosts:       spec.Workers,
				StartNs:     int64(round.Submitted),
				EndNs:       int64(round.Finished),
				Records:     g.Records,
			})
		}
	}
	return ts, nil
}

func blockSizeOr(v int64) int64 {
	if v <= 0 {
		return 128 << 20
	}
	return v
}

func replicationOr(v int) int {
	if v <= 0 {
		return 3
	}
	return v
}
