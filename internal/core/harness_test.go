package core

import (
	"testing"

	"keddah/internal/workload"
)

func TestClusterSpecTopologies(t *testing.T) {
	cases := []struct {
		spec  ClusterSpec
		hosts int
	}{
		{ClusterSpec{Topology: "star", Workers: 4}, 5},
		{ClusterSpec{Topology: "multirack", Workers: 5, Racks: 2}, 6},
		{ClusterSpec{Topology: "fattree", FatTreeK: 4}, 16},
	}
	for _, c := range cases {
		topo, err := c.spec.BuildTopology()
		if err != nil {
			t.Errorf("%s: %v", c.spec.Topology, err)
			continue
		}
		if got := len(topo.Hosts()); got != c.hosts {
			t.Errorf("%s hosts = %d, want %d", c.spec.Topology, got, c.hosts)
		}
	}
	if _, err := (ClusterSpec{Topology: "mesh"}).BuildTopology(); err == nil {
		t.Error("unknown topology accepted")
	}
	if _, err := (ClusterSpec{Allocator: "psychic"}).BuildCluster(); err == nil {
		t.Error("unknown allocator accepted")
	}
}

func TestCaptureWithValidation(t *testing.T) {
	spec := ClusterSpec{Workers: 4, Seed: 1}
	runs := []workload.RunSpec{{Profile: "grep", InputBytes: 128 << 20}}
	if _, _, err := CaptureWith(spec, runs, CaptureOpts{
		Failures: []FailureSpec{{WorkerIndex: 99, AtNs: 1}},
	}); err == nil {
		t.Error("out-of-range failure worker accepted")
	}
	if _, _, err := Capture(spec, []workload.RunSpec{{Profile: "bogus", InputBytes: 1}}); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestCaptureDeterministicAcrossCalls(t *testing.T) {
	spec := ClusterSpec{Workers: 6, Seed: 77}
	runs := []workload.RunSpec{{Profile: "wordcount", InputBytes: 256 << 20}}
	a, _, err := Capture(spec, runs)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Capture(spec, runs)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Runs[0].Records) != len(b.Runs[0].Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Runs[0].Records), len(b.Runs[0].Records))
	}
	for i := range a.Runs[0].Records {
		if a.Runs[0].Records[i] != b.Runs[0].Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	if a.Runs[0].EndNs != b.Runs[0].EndNs {
		t.Error("run end times differ")
	}
}

func TestCaptureMatchesReferenceAllocator(t *testing.T) {
	// The incremental max-min allocator must be indistinguishable from the
	// from-scratch reference at the capture-pipeline level: same spec and
	// seed, identical flow records and run timings.
	runs := []workload.RunSpec{
		{Profile: "terasort", InputBytes: 512 << 20},
		{Profile: "wordcount", InputBytes: 256 << 20},
	}
	mk := func(alloc string) *TraceSet {
		ts, _, err := Capture(ClusterSpec{Topology: "fattree", FatTreeK: 4, Seed: 42, Allocator: alloc}, runs)
		if err != nil {
			t.Fatalf("%s: %v", alloc, err)
		}
		return ts
	}
	inc, ref := mk("maxmin"), mk("maxmin-ref")
	if len(inc.Runs) != len(ref.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(inc.Runs), len(ref.Runs))
	}
	for i := range inc.Runs {
		a, b := inc.Runs[i], ref.Runs[i]
		if a.EndNs != b.EndNs || a.StartNs != b.StartNs {
			t.Errorf("run %d span differs: [%d,%d] vs [%d,%d]", i, a.StartNs, a.EndNs, b.StartNs, b.EndNs)
		}
		if len(a.Records) != len(b.Records) {
			t.Fatalf("run %d record counts differ: %d vs %d", i, len(a.Records), len(b.Records))
		}
		for j := range a.Records {
			if a.Records[j] != b.Records[j] {
				t.Fatalf("run %d record %d differs:\n%+v\n%+v", i, j, a.Records[j], b.Records[j])
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	ts := captureSmallCorpus(t)
	model, err := Fit(ts, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.Generate(GenSpec{Workload: "nope"}); err == nil {
		t.Error("unknown workload accepted")
	}
	// Scaling: double input doubles structural shuffle counts.
	jm := model.Jobs["terasort"]
	s1, err := model.Generate(GenSpec{Workload: "terasort", Workers: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := model.Generate(GenSpec{Workload: "terasort", InputBytes: 2 * jm.RefInputBytes, Workers: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	count := func(s []SynthFlow, ph string) int {
		n := 0
		for _, f := range s {
			if string(f.Phase) == ph {
				n++
			}
		}
		return n
	}
	n1, n2 := count(s1, "shuffle"), count(s2, "shuffle")
	// Double input → double maps × double reducers ⇒ ~4× shuffle flows.
	if n2 < 3*n1 || n2 > 5*n1 {
		t.Errorf("shuffle count scaling: %d -> %d (want ≈4x)", n1, n2)
	}
	// Winsorization: no generated flow exceeds the observed support.
	maxSize := jm.Phases["shuffle"].SizeMax
	for _, f := range s2 {
		if f.Phase == "shuffle" && float64(f.Bytes) > maxSize+1 {
			t.Errorf("generated shuffle flow %d bytes beyond support %v", f.Bytes, maxSize)
		}
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(&TraceSet{}, FitOptions{}); err == nil {
		t.Error("empty trace set accepted")
	}
}

func TestCountUnitsAndNames(t *testing.T) {
	r := &Run{Maps: 4, Reducers: 2, InputBytes: 512 << 20, BlockSize: 128 << 20,
		StartNs: 0, EndNs: 10e9}
	if u := countUnits("shuffle", r); u != 8 {
		t.Errorf("shuffle units = %v, want 8", u)
	}
	if u := countUnits("hdfs_read", r); u != 4 {
		t.Errorf("read units = %v, want 4", u)
	}
	// Control: 3·maps + 2·reducers + duration = 12 + 4 + 10.
	if u := countUnits("control", r); u != 26 {
		t.Errorf("control units = %v, want 26", u)
	}
	if u := countUnits("other", r); u != 0 {
		t.Errorf("fallback units = %v, want 0", u)
	}
	if unitName("shuffle") != "mapxreduce" || unitName("hdfs_write") != "block" ||
		unitName("control") != "controlmix" || unitName("other") != "job" {
		t.Error("unit names wrong")
	}
}

func TestFitDurationLine(t *testing.T) {
	// Perfectly affine data recovers intercept and slope.
	runs := []*Run{
		{InputBytes: 1 << 30, StartNs: 0, EndNs: int64(12e9)}, // 10 + 2/GB
		{InputBytes: 2 << 30, StartNs: 0, EndNs: int64(14e9)},
		{InputBytes: 4 << 30, StartNs: 0, EndNs: int64(18e9)},
	}
	a, b := fitDurationLine(runs)
	if diff := a - 10; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("intercept = %v, want 10", a)
	}
	perGB := b * float64(1<<30)
	if diff := perGB - 2; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("slope = %v s/GB, want 2", perGB)
	}
	// Single-size corpus falls back to proportional.
	same := []*Run{
		{InputBytes: 1 << 30, StartNs: 0, EndNs: int64(10e9)},
		{InputBytes: 1 << 30, StartNs: 0, EndNs: int64(12e9)},
	}
	a, b = fitDurationLine(same)
	if a != 0 || b <= 0 {
		t.Errorf("proportional fallback = (%v, %v)", a, b)
	}
	jm := &JobModel{DurIntercept: 10, DurSecsPerByte: 2.0 / float64(1<<30)}
	if d := jm.DurationAt(3 << 30); d < 15.9 || d > 16.1 {
		t.Errorf("DurationAt(3GB) = %v, want 16", d)
	}
}

func TestExtractAtoms(t *testing.T) {
	// 60% of the sample is exactly one value → one atom + residue.
	xs := []float64{128, 128, 128, 128, 128, 128, 10, 20, 30, 40}
	atoms, rest := extractAtoms(xs)
	if len(atoms) != 1 || atoms[0].Value != 128 {
		t.Fatalf("atoms = %+v", atoms)
	}
	if atoms[0].Weight != 0.6 {
		t.Errorf("weight = %v, want 0.6", atoms[0].Weight)
	}
	if len(rest) != 4 {
		t.Errorf("rest = %v", rest)
	}
	// No repeats → no atoms.
	atoms, rest = extractAtoms([]float64{1, 2, 3, 4, 5, 6})
	if len(atoms) != 0 || len(rest) != 6 {
		t.Errorf("unexpected atoms on distinct sample: %+v", atoms)
	}
	// Tiny samples skip atomisation.
	atoms, _ = extractAtoms([]float64{5, 5, 5})
	if len(atoms) != 0 {
		t.Errorf("atoms on tiny sample: %+v", atoms)
	}
}

func TestWinsorize(t *testing.T) {
	if v := winsorize(50, 10, 40); v != 40 {
		t.Errorf("high clamp = %v", v)
	}
	if v := winsorize(5, 10, 40); v != 10 {
		t.Errorf("low clamp = %v", v)
	}
	if v := winsorize(25, 10, 40); v != 25 {
		t.Errorf("in-range changed = %v", v)
	}
	if v := winsorize(99, 0, 0); v != 99 {
		t.Errorf("unset support clamped = %v", v)
	}
}
