package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestGenerateChunksMatchesBatch: the chunked path must deliver exactly
// the flows Generate returns, in order, in bounded pieces.
func TestGenerateChunksMatchesBatch(t *testing.T) {
	model := mixModel(t)
	spec := GenSpec{Workload: "terasort", Jobs: 3, Seed: 9}
	want, err := model.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var got []SynthFlow
	chunks := 0
	err = model.GenerateChunks(context.Background(), spec, 7, func(c []SynthFlow) error {
		if len(c) > 7 {
			t.Fatalf("chunk of %d flows exceeds the requested size", len(c))
		}
		got = append(got, c...)
		chunks++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("chunked flows differ from batch: %d vs %d", len(got), len(want))
	}
	if chunks < 2 {
		t.Fatalf("%d flows arrived in %d chunk(s); chunking did not happen", len(got), chunks)
	}
}

// TestGenerateMixChunksMatchesBatch does the same for the mix path.
func TestGenerateMixChunksMatchesBatch(t *testing.T) {
	model := mixModel(t)
	spec := MixSpec{
		Weights:       map[string]float64{"terasort": 1, "wordcount": 1},
		JobsPerMinute: 4,
		WindowSecs:    300,
		Workers:       8,
		Seed:          3,
	}
	want, err := model.GenerateMix(spec)
	if err != nil {
		t.Fatal(err)
	}
	var got []SynthFlow
	err = model.GenerateMixChunks(context.Background(), spec, 11, func(c []SynthFlow) error {
		got = append(got, c...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("chunked mix differs from batch: %d vs %d flows", len(got), len(want))
	}
}

// TestGenerateChunksCancellation: a cancelled context stops emission at
// the next chunk boundary with the context's error.
func TestGenerateChunksCancellation(t *testing.T) {
	model := mixModel(t)
	spec := GenSpec{Workload: "terasort", Jobs: 3, Seed: 9}

	t.Run("pre-cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		err := model.GenerateChunks(ctx, spec, 7, func([]SynthFlow) error {
			t.Fatal("emit called with a dead context")
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	})
	t.Run("mid-stream", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		calls := 0
		err := model.GenerateChunks(ctx, spec, 7, func([]SynthFlow) error {
			calls++
			cancel()
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
		if calls != 1 {
			t.Fatalf("%d emits after cancellation, want exactly 1", calls)
		}
	})
}

// TestGenerateChunksEmitError: an emit failure (a dead client in serve)
// aborts generation and propagates.
func TestGenerateChunksEmitError(t *testing.T) {
	model := mixModel(t)
	sink := errors.New("client hung up")
	calls := 0
	err := model.GenerateChunks(context.Background(), GenSpec{Workload: "terasort", Jobs: 3, Seed: 9}, 7,
		func([]SynthFlow) error {
			calls++
			if calls == 2 {
				return sink
			}
			return nil
		})
	if !errors.Is(err, sink) {
		t.Fatalf("got %v, want the emit error", err)
	}
	if calls != 2 {
		t.Fatalf("%d emits after the failure, want exactly 2", calls)
	}
}

// TestEstimateFlowsExact: the admission-control estimate must equal the
// real schedule length — it gates requests, so an undercount would let
// an oversized schedule through and an overcount would shed valid work.
func TestEstimateFlowsExact(t *testing.T) {
	model := mixModel(t)
	specs := []GenSpec{
		{Workload: "terasort"},
		{Workload: "terasort", Jobs: 3, Seed: 5},
		{Workload: "terasort", InputBytes: 1 << 30, Jobs: 2, Workers: 8},
		{Workload: "wordcount", Jobs: 2, IncludeBackground: true},
		{Workload: "wordcount", InputBytes: 2 << 30, Reducers: 12, Stagger: 0.25, Jobs: 4, IncludeBackground: true},
	}
	for _, spec := range specs {
		n, err := model.EstimateFlows(spec)
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		sched, err := model.Generate(spec)
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		if n != int64(len(sched)) {
			t.Errorf("%+v: estimated %d flows, generated %d", spec, n, len(sched))
		}
	}
	if _, err := model.EstimateFlows(GenSpec{Workload: "nosuch"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := model.EstimateFlows(GenSpec{Workload: "terasort", Jobs: -1}); !errors.Is(err, ErrBadSpec) {
		t.Fatal("invalid spec accepted")
	}
}
