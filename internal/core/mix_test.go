package core

import (
	"testing"

	"keddah/internal/workload"
)

// mixModel fits a two-workload model for mix tests.
func mixModel(t *testing.T) *Model {
	t.Helper()
	ts, _, err := Capture(ClusterSpec{Workers: 8, Seed: 13}, []workload.RunSpec{
		{Profile: "terasort", InputBytes: 512 << 20, JobName: "t0", InputPath: "/d/t"},
		{Profile: "terasort", InputBytes: 512 << 20, JobName: "t1", InputPath: "/d/t"},
		{Profile: "wordcount", InputBytes: 512 << 20, JobName: "w0", InputPath: "/d/w"},
		{Profile: "wordcount", InputBytes: 512 << 20, JobName: "w1", InputPath: "/d/w"},
	})
	if err != nil {
		t.Fatal(err)
	}
	model, err := Fit(ts, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return model
}

func TestGenerateMixComposition(t *testing.T) {
	model := mixModel(t)
	sched, err := model.GenerateMix(MixSpec{
		Weights:       map[string]float64{"terasort": 3, "wordcount": 1},
		JobsPerMinute: 6,
		WindowSecs:    600,
		Workers:       8,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := SummarizeMix(sched)
	totalJobs := sum.Arrivals["terasort"] + sum.Arrivals["wordcount"]
	// 6/min over 10 min ≈ 60 arrivals; Poisson spread allows slack.
	if totalJobs < 35 || totalJobs > 90 {
		t.Errorf("arrivals = %d, want ≈60", totalJobs)
	}
	// 3:1 weighting within sampling noise.
	ratio := float64(sum.Arrivals["terasort"]) / float64(sum.Arrivals["wordcount"]+1)
	if ratio < 1.5 || ratio > 6 {
		t.Errorf("terasort:wordcount ratio = %.2f, want ≈3", ratio)
	}
	if sum.Flows != len(sched) {
		t.Errorf("summary flows = %d, schedule = %d", sum.Flows, len(sched))
	}
	// Arrivals spread across the window.
	if sum.SpanSecs < 300 {
		t.Errorf("span = %.1fs, want most of the 600s window", sum.SpanSecs)
	}
	// Schedule is time sorted.
	for i := 1; i < len(sched); i++ {
		if sched[i].StartNs < sched[i-1].StartNs {
			t.Fatal("mix schedule not sorted")
		}
	}
}

func TestGenerateMixDeterministic(t *testing.T) {
	model := mixModel(t)
	spec := MixSpec{Weights: map[string]float64{"terasort": 1}, JobsPerMinute: 4, WindowSecs: 120, Workers: 8, Seed: 9}
	a, err := model.GenerateMix(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := model.GenerateMix(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d differs", i)
		}
	}
}

func TestGenerateMixValidation(t *testing.T) {
	model := mixModel(t)
	if _, err := model.GenerateMix(MixSpec{}); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := model.GenerateMix(MixSpec{Weights: map[string]float64{"bogus": 1}}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := model.GenerateMix(MixSpec{Weights: map[string]float64{"terasort": -1}}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := model.GenerateMix(MixSpec{Weights: map[string]float64{"terasort": 0}}); err == nil {
		t.Error("zero-sum weights accepted")
	}
}

func TestGenerateMixReplays(t *testing.T) {
	model := mixModel(t)
	sched, err := model.GenerateMix(MixSpec{
		Weights:       map[string]float64{"terasort": 1, "wordcount": 1},
		JobsPerMinute: 10,
		WindowSecs:    60,
		Workers:       8,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, makespan, err := Replay(sched, ClusterSpec{Workers: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(sched) {
		t.Errorf("replayed %d of %d flows", len(recs), len(sched))
	}
	if makespan <= 0 {
		t.Error("zero makespan")
	}
}
