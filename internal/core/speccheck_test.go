package core

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestGenSpecValidate(t *testing.T) {
	cases := []struct {
		name  string
		spec  GenSpec
		field string // "" = valid
	}{
		{"zero value is legal", GenSpec{}, ""},
		{"fully specified", GenSpec{Workload: "terasort", InputBytes: 1 << 30, BlockSize: 128 << 20, Reducers: 8, Workers: 16, Jobs: 4, Stagger: 0.5}, ""},
		{"negative input", GenSpec{InputBytes: -1}, "inputBytes"},
		{"negative block", GenSpec{BlockSize: -1}, "blockSize"},
		{"negative reducers", GenSpec{Reducers: -1}, "reducers"},
		{"reducers over limit", GenSpec{Reducers: maxSpecReducers + 1}, "reducers"},
		{"negative workers", GenSpec{Workers: -1}, "workers"},
		{"workers over limit", GenSpec{Workers: maxSpecWorkers + 1}, "workers"},
		{"negative jobs", GenSpec{Jobs: -1}, "jobs"},
		{"jobs over limit", GenSpec{Jobs: maxSpecJobs + 1}, "jobs"},
		{"NaN stagger", GenSpec{Stagger: math.NaN()}, "stagger"},
		{"infinite stagger", GenSpec{Stagger: math.Inf(1)}, "stagger"},
		{"negative stagger is legal (clamped)", GenSpec{Stagger: -2}, ""},
		{"map-count overflow", GenSpec{InputBytes: math.MaxInt64 - 1, BlockSize: 2}, "inputBytes"},
		{"absurd map count", GenSpec{InputBytes: math.MaxInt64 / 2, BlockSize: 1}, "inputBytes"},
		{"huge input at sane block size", GenSpec{InputBytes: 1 << 50, BlockSize: 128 << 20, Workload: "t"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			checkSpecErr(t, err, tc.field, "GenSpec")
		})
	}
}

func TestMixSpecValidate(t *testing.T) {
	w := map[string]float64{"terasort": 1}
	cases := []struct {
		name  string
		spec  MixSpec
		field string
	}{
		{"minimal valid", MixSpec{Weights: w}, ""},
		{"NaN rate", MixSpec{Weights: w, JobsPerMinute: math.NaN()}, "jobsPerMinute"},
		{"negative rate", MixSpec{Weights: w, JobsPerMinute: -1}, "jobsPerMinute"},
		{"infinite window", MixSpec{Weights: w, WindowSecs: math.Inf(1)}, "windowSecs"},
		{"negative window", MixSpec{Weights: w, WindowSecs: -1}, "windowSecs"},
		{"NaN scale", MixSpec{Weights: w, InputScale: math.NaN()}, "inputScale"},
		{"negative scale", MixSpec{Weights: w, InputScale: -0.5}, "inputScale"},
		{"negative workers", MixSpec{Weights: w, Workers: -1}, "workers"},
		{"workers over limit", MixSpec{Weights: w, Workers: maxSpecWorkers + 1}, "workers"},
		{"no weights", MixSpec{}, "weights"},
		{"NaN weight", MixSpec{Weights: map[string]float64{"t": math.NaN()}}, "weights"},
		{"negative weight", MixSpec{Weights: map[string]float64{"t": -1}}, "weights"},
		{"unbounded arrivals", MixSpec{Weights: w, JobsPerMinute: 1e12, WindowSecs: 1e6}, "jobsPerMinute"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			checkSpecErr(t, err, tc.field, "MixSpec")
		})
	}
}

func checkSpecErr(t *testing.T, err error, field, spec string) {
	t.Helper()
	if field == "" {
		if err != nil {
			t.Fatalf("unexpected rejection: %v", err)
		}
		return
	}
	if err == nil {
		t.Fatalf("accepted; want a %s.%s rejection", spec, field)
	}
	if !errors.Is(err, ErrBadSpec) {
		t.Fatalf("%v does not wrap ErrBadSpec", err)
	}
	var se *SpecError
	if !errors.As(err, &se) {
		t.Fatalf("%v is not a *SpecError", err)
	}
	if se.Spec != spec || se.Field != field {
		t.Fatalf("rejected %s.%s, want %s.%s (%v)", se.Spec, se.Field, spec, field, err)
	}
	if !strings.Contains(err.Error(), field) {
		t.Fatalf("message %q does not name the field", err)
	}
}

// TestGenerateRejectsBadSpec: validation runs inside Generate itself, so
// no caller can bypass it.
func TestGenerateRejectsBadSpec(t *testing.T) {
	model := mixModel(t)
	if _, err := model.Generate(GenSpec{Workload: "terasort", InputBytes: -1}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("Generate: %v, want ErrBadSpec", err)
	}
	if _, err := model.GenerateMix(MixSpec{Weights: map[string]float64{"terasort": math.NaN()}}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("GenerateMix: %v, want ErrBadSpec", err)
	}
	// Scaled re-validation: a legal-looking spec whose defaults imply an
	// absurd map count is still rejected.
	if _, err := model.Generate(GenSpec{Workload: "terasort", InputBytes: 1 << 40, BlockSize: 16}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("scaled validation: %v, want ErrBadSpec", err)
	}
}
