package core

import (
	"bytes"
	"testing"

	"keddah/internal/flows"
	"keddah/internal/pcap"
	"keddah/internal/workload"
)

// captureSmallCorpus runs a few small jobs and returns the trace set.
func captureSmallCorpus(t *testing.T) *TraceSet {
	t.Helper()
	spec := ClusterSpec{Workers: 8, Seed: 11}
	runs := []workload.RunSpec{
		{Profile: "terasort", InputBytes: 512 << 20},
		{Profile: "terasort", InputBytes: 512 << 20},
		{Profile: "terasort", InputBytes: 512 << 20},
		{Profile: "wordcount", InputBytes: 512 << 20},
	}
	ts, results, err := Capture(spec, runs)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	if len(results) != len(runs) {
		t.Fatalf("got %d results, want %d", len(results), len(runs))
	}
	return ts
}

func TestCaptureProducesRunsAndBackground(t *testing.T) {
	ts := captureSmallCorpus(t)
	if len(ts.Runs) != 4 {
		t.Fatalf("got %d runs, want 4", len(ts.Runs))
	}
	if len(ts.Background) == 0 {
		t.Error("no background heartbeat flows captured")
	}
	for _, r := range ts.Runs {
		if len(r.Records) == 0 {
			t.Errorf("run %s has no flows", r.JobName)
		}
		if r.EndNs <= r.StartNs {
			t.Errorf("run %s has non-positive duration", r.JobName)
		}
		ds := r.Dataset()
		if ds.Count(flows.PhaseShuffle) == 0 {
			t.Errorf("run %s captured no shuffle flows", r.JobName)
		}
	}
}

func TestFitGenerateValidateRoundTrip(t *testing.T) {
	ts := captureSmallCorpus(t)
	model, err := Fit(ts, FitOptions{})
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	jm, ok := model.Jobs["terasort"]
	if !ok {
		t.Fatal("model missing terasort")
	}
	for _, ph := range flows.AllPhases {
		if _, ok := jm.Phases[ph]; !ok {
			t.Errorf("terasort model missing phase %s", ph)
		}
	}
	if model.Background == nil {
		t.Error("model missing background")
	}

	// Round-trip the model through JSON.
	var buf bytes.Buffer
	if err := model.WriteJSON(&buf); err != nil {
		t.Fatalf("write model: %v", err)
	}
	model2, err := ReadModel(&buf)
	if err != nil {
		t.Fatalf("read model: %v", err)
	}

	// Generate as many job instances as were measured, then replay.
	sched, err := model2.Generate(GenSpec{Workload: "terasort", Workers: 8, Jobs: 3, Seed: 5})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if len(sched) == 0 {
		t.Fatal("empty schedule")
	}
	gen, makespan, err := Replay(sched, ClusterSpec{Workers: 8, Seed: 5})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if makespan <= 0 {
		t.Error("replay produced zero makespan")
	}

	// Validate against the pooled measured terasort runs.
	var measured []pcap.FlowRecord
	for _, r := range ts.Runs {
		if r.Workload == "terasort" {
			measured = append(measured, r.Records...)
		}
	}
	v := Validate("terasort", measured, gen)
	if len(v.Phases) == 0 {
		t.Fatal("validation produced no phase comparisons")
	}
	for _, pc := range v.Phases {
		if pc.Phase == flows.PhaseShuffle || pc.Phase == flows.PhaseHDFSWrite {
			if pc.GeneratedFlows == 0 {
				t.Errorf("generated no %s flows", pc.Phase)
			}
			if pc.VolumeError > 0.5 {
				t.Errorf("%s volume error %.2f too high (meas %d gen %d bytes)",
					pc.Phase, pc.VolumeError, pc.MeasuredBytes, pc.GeneratedBytes)
			}
			if pc.SizeKS > 0.4 {
				t.Errorf("%s size KS %.3f too high", pc.Phase, pc.SizeKS)
			}
		}
	}
	var tbl bytes.Buffer
	if err := v.WriteTable(&tbl); err != nil {
		t.Fatalf("write table: %v", err)
	}
	if tbl.Len() == 0 {
		t.Error("empty validation table")
	}
}

func TestTraceSetJSONRoundTrip(t *testing.T) {
	ts := captureSmallCorpus(t)
	var buf bytes.Buffer
	if err := ts.WriteJSON(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	ts2, err := ReadTraceSet(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(ts2.Runs) != len(ts.Runs) {
		t.Fatalf("runs: got %d want %d", len(ts2.Runs), len(ts.Runs))
	}
	if ts2.Runs[0].JobName != ts.Runs[0].JobName {
		t.Errorf("job name mismatch after round trip")
	}
	if len(ts2.Background) != len(ts.Background) {
		t.Errorf("background: got %d want %d", len(ts2.Background), len(ts.Background))
	}
}
