package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"strings"

	"keddah/internal/stats"
)

// MixSpec parameterises a multi-tenant scenario: jobs of several
// workloads arriving as a Poisson process over a time window — the
// "more realistic scenarios" the paper's abstract motivates. Each
// arrival instantiates one job from the fitted model library.
type MixSpec struct {
	// Weights gives each workload's relative arrival frequency. Only
	// workloads present in the model library are valid.
	Weights map[string]float64 `json:"weights"`
	// JobsPerMinute is the Poisson arrival rate (default 2).
	JobsPerMinute float64 `json:"jobsPerMinute"`
	// WindowSecs is the arrival window; jobs arriving near the end
	// still run to completion (default 300).
	WindowSecs float64 `json:"windowSecs"`
	// InputScale multiplies each model's reference input size
	// (default 1).
	InputScale float64 `json:"inputScale"`
	// Workers spreads traffic over this many hosts (default 16).
	Workers int `json:"workers"`
	// IncludeBackground adds cluster heartbeat traffic over the window.
	IncludeBackground bool `json:"includeBackground"`
	// Seed fixes arrivals and per-job generation.
	Seed int64 `json:"seed"`
}

func (m MixSpec) withDefaults() MixSpec {
	if m.JobsPerMinute <= 0 {
		m.JobsPerMinute = 2
	}
	if m.WindowSecs <= 0 {
		m.WindowSecs = 300
	}
	if m.InputScale <= 0 {
		m.InputScale = 1
	}
	if m.Workers <= 0 {
		m.Workers = 16
	}
	return m
}

// GenerateMix builds a synthetic multi-job schedule from the model
// library. Arrivals are Poisson; workloads are drawn by weight; each
// arrival's traffic is one Generate(Jobs=1) instance shifted to its
// arrival time.
func (m *Model) GenerateMix(spec MixSpec) ([]SynthFlow, error) {
	return m.GenerateMixContext(context.Background(), spec)
}

// GenerateMixContext is GenerateMix with validation and cancellation:
// the spec is checked up front (errors wrap ErrBadSpec) and ctx is
// polled before each arrival — plus inside each arrival's generation —
// so a vanished client aborts the mix mid-window. Output is identical to
// GenerateMix for any spec that runs to completion.
func (m *Model) GenerateMixContext(ctx context.Context, spec MixSpec) ([]SynthFlow, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.withDefaults()
	// Deterministic weighted sampler over sorted names.
	names := make([]string, 0, len(spec.Weights))
	var total float64
	for name, w := range spec.Weights {
		if _, ok := m.Jobs[name]; !ok {
			return nil, fmt.Errorf("core: model has no workload %q", name)
		}
		names = append(names, name)
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("core: mix weights sum to zero")
	}
	sort.Strings(names)

	rng := stats.NewRNG(spec.Seed)
	pick := func() string {
		r := rng.Float64() * total
		acc := 0.0
		for _, n := range names {
			acc += spec.Weights[n]
			if r < acc {
				return n
			}
		}
		return names[len(names)-1]
	}

	var schedule []SynthFlow
	meanGapSecs := 60 / spec.JobsPerMinute
	t := rng.ExpFloat64() * meanGapSecs
	arrival := 0
	for t < spec.WindowSecs {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: generate mix: %w", err)
		}
		wl := pick()
		jm := m.Jobs[wl]
		job, err := m.GenerateContext(ctx, GenSpec{
			Workload:   wl,
			InputBytes: int64(float64(jm.RefInputBytes) * spec.InputScale),
			Workers:    spec.Workers,
			Jobs:       1,
			Seed:       spec.Seed + int64(arrival)*7919,
		})
		if err != nil {
			return nil, fmt.Errorf("mix arrival %d (%s): %w", arrival, wl, err)
		}
		shift := int64(t * 1e9)
		label := fmt.Sprintf("%s-mix%d", wl, arrival)
		for _, sf := range job {
			sf.StartNs += shift
			sf.Job = label
			schedule = append(schedule, sf)
		}
		arrival++
		t += rng.ExpFloat64() * meanGapSecs
	}

	if spec.IncludeBackground && m.Background != nil {
		// Cover arrivals plus the tail of the last job.
		span := spec.WindowSecs
		for _, sf := range schedule {
			if end := float64(sf.StartNs) / 1e9; end > span {
				span = end
			}
		}
		bg, err := m.generateBackground(ctx, GenSpec{Workers: spec.Workers}, span, rng)
		if err != nil {
			return nil, err
		}
		schedule = append(schedule, bg...)
	}

	sort.SliceStable(schedule, func(i, j int) bool { return schedule[i].StartNs < schedule[j].StartNs })
	return schedule, nil
}

// GenerateMixChunks streams the schedule GenerateMixContext would return
// through emit in slices of at most chunk flows, with the same
// cancellation and memory contract as Model.GenerateChunks.
func (m *Model) GenerateMixChunks(ctx context.Context, spec MixSpec, chunk int, emit func([]SynthFlow) error) error {
	sched, err := m.GenerateMixContext(ctx, spec)
	if err != nil {
		return err
	}
	return emitChunks(ctx, sched, chunk, emit)
}

// MixSummary reports per-workload composition of a mix schedule.
type MixSummary struct {
	Arrivals map[string]int   `json:"arrivals"`
	Bytes    map[string]int64 `json:"bytes"`
	Flows    int              `json:"flows"`
	SpanSecs float64          `json:"spanSecs"`
}

// SummarizeMix aggregates a generated mix schedule by workload (job
// labels have the form "<workload>-mix<N>").
func SummarizeMix(schedule []SynthFlow) MixSummary {
	s := MixSummary{Arrivals: map[string]int{}, Bytes: map[string]int64{}}
	seen := map[string]bool{}
	var minNs, maxNs int64 = math.MaxInt64, 0
	for _, sf := range schedule {
		wl := sf.Job
		if i := strings.LastIndex(wl, "-mix"); i >= 0 {
			wl = wl[:i]
		}
		if !seen[sf.Job] && sf.Job != "background" {
			seen[sf.Job] = true
			s.Arrivals[wl]++
		}
		s.Bytes[wl] += sf.Bytes
		s.Flows++
		if sf.StartNs < minNs {
			minNs = sf.StartNs
		}
		if sf.StartNs > maxNs {
			maxNs = sf.StartNs
		}
	}
	if s.Flows > 0 {
		s.SpanSecs = float64(maxNs-minNs) / 1e9
	}
	return s
}
