package core

import (
	"bytes"
	"strings"
	"testing"

	"keddah/internal/flows"
	"keddah/internal/pcap"
)

func sampleSchedule() []SynthFlow {
	return []SynthFlow{
		{StartNs: 1_500_000_000, SrcHost: 0, DstHost: 3, SrcPort: 13562, DstPort: 40001,
			Bytes: 4 << 20, Phase: flows.PhaseShuffle, Job: "terasort-gen0"},
		{StartNs: 2_000_000_000, SrcHost: 2, DstHost: -1, SrcPort: 40002, DstPort: 8031,
			Bytes: 512, Phase: flows.PhaseControl, Job: "background"},
		{StartNs: 2_250_000_000, SrcHost: 5, DstHost: 1, SrcPort: 40003, DstPort: 50010,
			Bytes: 128 << 20, Phase: flows.PhaseHDFSWrite, Job: "terasort-gen0"},
	}
}

func TestCSVRoundTrip(t *testing.T) {
	sched := sampleSchedule()
	var buf bytes.Buffer
	if err := ExportCSV(&buf, sched); err != nil {
		t.Fatalf("export: %v", err)
	}
	back, err := ImportCSV(&buf)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if len(back) != len(sched) {
		t.Fatalf("round trip lost flows: %d != %d", len(back), len(sched))
	}
	for i := range sched {
		if back[i] != sched[i] {
			t.Errorf("flow %d changed: %+v -> %+v", i, sched[i], back[i])
		}
	}
}

func TestImportCSVRejectsGarbage(t *testing.T) {
	if _, err := ImportCSV(strings.NewReader("nope,nope\n1,2\n")); err == nil {
		t.Error("garbage CSV accepted")
	}
	if _, err := ImportCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	bad := "start_s,src_host,dst_host,src_port,dst_port,bytes,phase,job\nx,0,0,1,1,5,shuffle,j\n"
	if _, err := ImportCSV(strings.NewReader(bad)); err == nil {
		t.Error("non-numeric start accepted")
	}
}

func TestExportNS3Format(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportNS3(&buf, sampleSchedule(), 8); err != nil {
		t.Fatalf("export: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "# keddah-ns3 v1" {
		t.Errorf("bad header: %q", lines[0])
	}
	if lines[1] != "nodes 9" {
		t.Errorf("bad node count: %q", lines[1])
	}
	if len(lines) != 2+3 {
		t.Fatalf("lines = %d, want 5", len(lines))
	}
	// Master (-1) maps to node index 8.
	if !strings.Contains(lines[3], " 2 8 ") {
		t.Errorf("master flow not remapped: %q", lines[3])
	}
	// Every flow line has exactly 7 tokens.
	for _, l := range lines[2:] {
		if got := len(strings.Fields(l)); got != 7 {
			t.Errorf("flow line has %d tokens: %q", got, l)
		}
	}
	if err := ExportNS3(&bytes.Buffer{}, nil, 0); err == nil {
		t.Error("zero workers accepted")
	}
}

func TestExportGeneratedSchedule(t *testing.T) {
	ts := captureSmallCorpus(t)
	model, err := Fit(ts, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := model.Generate(GenSpec{Workload: "terasort", Workers: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ExportCSV(&buf, sched); err != nil {
		t.Fatal(err)
	}
	back, err := ImportCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The re-imported schedule replays identically.
	r1, m1, err := Replay(sched, ClusterSpec{Workers: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	r2, m2, err := Replay(back, ClusterSpec{Workers: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 || len(r1) != len(r2) {
		t.Errorf("round-tripped schedule diverged: %v/%d vs %v/%d", m1, len(r1), m2, len(r2))
	}
}

func TestScheduleFromRecordsTraceDrivenReplay(t *testing.T) {
	ts := captureSmallCorpus(t)
	var recs []pcap.FlowRecord
	for _, r := range ts.Runs {
		recs = append(recs, r.Records...)
	}
	sched := ScheduleFromRecords(recs)
	if len(sched) != len(recs) {
		t.Fatalf("schedule flows = %d, want %d", len(sched), len(recs))
	}
	// Time-shifted to zero and sorted.
	if sched[0].StartNs != 0 {
		t.Errorf("first flow starts at %d, want 0", sched[0].StartNs)
	}
	for i := 1; i < len(sched); i++ {
		if sched[i].StartNs < sched[i-1].StartNs {
			t.Fatal("schedule not sorted")
		}
	}
	// Phases and byte totals preserved.
	var schedBytes, recBytes int64
	for _, sf := range sched {
		schedBytes += sf.Bytes
	}
	for _, r := range recs {
		recBytes += r.Bytes
	}
	if schedBytes != recBytes {
		t.Errorf("bytes: %d != %d", schedBytes, recBytes)
	}
	// Replays on a matching fabric.
	out, makespan, err := Replay(sched, ClusterSpec{Workers: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(sched) || makespan <= 0 {
		t.Errorf("replayed %d flows, makespan %v", len(out), makespan)
	}
	if ScheduleFromRecords(nil) != nil {
		t.Error("empty records should yield nil schedule")
	}
}
