package core

import (
	"bytes"
	"testing"

	"keddah/internal/workload"
)

// lockstepCorpus captures a multi-workload, multi-run trace set (the
// shape of the replication-sweep experiment) so the fit stage has many
// independent (workload, phase) tasks to schedule.
func lockstepCorpus(t *testing.T) *TraceSet {
	t.Helper()
	ts, _, err := Capture(ClusterSpec{Workers: 16, Seed: 21},
		[]workload.RunSpec{
			{Profile: "terasort", InputBytes: 256 << 20, JobName: "ts-a", InputPath: "/data/a"},
			{Profile: "terasort", InputBytes: 384 << 20, JobName: "ts-b", InputPath: "/data/b"},
			{Profile: "wordcount", InputBytes: 256 << 20, JobName: "wc-a", InputPath: "/data/c"},
			{Profile: "sort", InputBytes: 192 << 20, JobName: "so-a", InputPath: "/data/d"},
		})
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// TestFitParallelLockstep proves the worker pool cannot change the
// model: the serialised JSON of a serial fit (Workers=1) and wide
// parallel fits must be byte-identical. Under -race this also exercises
// the shared Sample caches from concurrent fit tasks.
func TestFitParallelLockstep(t *testing.T) {
	ts := lockstepCorpus(t)

	encode := func(workers int) []byte {
		t.Helper()
		m, err := Fit(ts, FitOptions{Workers: workers})
		if err != nil {
			t.Fatalf("Fit(workers=%d): %v", workers, err)
		}
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON(workers=%d): %v", workers, err)
		}
		return buf.Bytes()
	}

	serial := encode(1)
	if len(serial) == 0 {
		t.Fatal("serial fit produced empty JSON")
	}
	for _, workers := range []int{0, 2, 8} {
		par := encode(workers)
		if !bytes.Equal(serial, par) {
			t.Fatalf("Fit(workers=%d) JSON differs from serial fit (%d vs %d bytes)",
				workers, len(par), len(serial))
		}
	}
	// Repeat the widest run to catch schedule-dependent nondeterminism.
	if again := encode(8); !bytes.Equal(serial, again) {
		t.Fatal("second parallel fit differs from serial fit")
	}
}

// TestFitWorkersErrorDeterministic checks that a failing phase fit
// reports the same first error regardless of worker count. An
// exponential-only candidate set cannot represent offset samples that
// include zero, so the corpus below fails deterministically.
func TestFitWorkersErrorDeterministic(t *testing.T) {
	ts := lockstepCorpus(t)
	opts := func(w int) FitOptions {
		return FitOptions{MinSamples: 1, Workers: w}
	}
	m1, err1 := Fit(ts, opts(1))
	m8, err8 := Fit(ts, opts(8))
	if (err1 == nil) != (err8 == nil) {
		t.Fatalf("serial err = %v, parallel err = %v", err1, err8)
	}
	if err1 != nil {
		if err1.Error() != err8.Error() {
			t.Fatalf("error text differs:\n  serial:   %v\n  parallel: %v", err1, err8)
		}
		return
	}
	var b1, b8 bytes.Buffer
	if err := m1.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := m8.WriteJSON(&b8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b8.Bytes()) {
		t.Fatal("MinSamples=1 models differ between serial and parallel fit")
	}
}
