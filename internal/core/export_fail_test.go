package core

import (
	"errors"
	"testing"
)

// failAfter is a sink that accepts n bytes and then fails every write,
// modelling a full disk or a hung-up client mid-export.
type failAfter struct {
	n   int
	err error
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, f.err
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, f.err
	}
	f.n -= len(p)
	return len(p), nil
}

// TestExportFailingWriter: every exporter must surface a sink failure as
// an error — a short CSV or ns3 file that reports success poisons every
// simulation consuming it downstream.
func TestExportFailingWriter(t *testing.T) {
	model := mixModel(t)
	sched, err := model.Generate(GenSpec{Workload: "terasort", Jobs: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sink := errors.New("sink full")
	exports := map[string]func(*failAfter) error{
		"csv":   func(w *failAfter) error { return ExportCSV(w, sched) },
		"jsonl": func(w *failAfter) error { return ExportJSONL(w, sched) },
		"ns3":   func(w *failAfter) error { return ExportNS3(w, sched, 8) },
	}
	// Cut the sink off at several points: immediately, mid-header,
	// mid-body. Every cut must propagate.
	for name, export := range exports {
		for _, budget := range []int{0, 3, 300} {
			err := export(&failAfter{n: budget, err: sink})
			if err == nil {
				t.Errorf("%s export to a writer failing after %d bytes reported success", name, budget)
				continue
			}
			if !errors.Is(err, sink) {
				t.Errorf("%s export after %d bytes: %v does not wrap the sink error", name, budget, err)
			}
		}
	}
}
