package core

import (
	"errors"
	"reflect"
	"testing"

	"keddah/internal/netsim"
	"keddah/internal/workload"
)

// TestClusterSpecTransportValidation: the transport name is validated at
// BuildCluster, wrapping netsim.ErrBadTransport so CLIs can map it to a
// clear user-facing error instead of a fluid fallback.
func TestClusterSpecTransportValidation(t *testing.T) {
	cases := []struct {
		name      string
		spec      ClusterSpec
		wantErr   bool
		wantBadTr bool
	}{
		{"default fluid", ClusterSpec{Workers: 4}, false, false},
		{"explicit fluid", ClusterSpec{Workers: 4, Transport: "fluid"}, false, false},
		{"tcp", ClusterSpec{Workers: 4, Transport: "tcp"}, false, false},
		{"tcp over pointer core", ClusterSpec{Workers: 4, Transport: "tcp", NetImpl: "pointer"}, true, false},
		{"unknown transport", ClusterSpec{Workers: 4, Transport: "udp"}, true, true},
		{"case-sensitive", ClusterSpec{Workers: 4, Transport: "Fluid"}, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.spec.BuildCluster()
			if (err != nil) != tc.wantErr {
				t.Fatalf("BuildCluster err = %v, wantErr %v", err, tc.wantErr)
			}
			if tc.wantBadTr && !errors.Is(err, netsim.ErrBadTransport) {
				t.Errorf("error %v does not wrap netsim.ErrBadTransport", err)
			}
		})
	}
}

// TestCaptureTCPDeterministic: a full TCP-mode capture session (terasort
// on 6 workers) replayed with the same seed must be byte-identical —
// every synthesised flow record, timestamp and run result.
func TestCaptureTCPDeterministic(t *testing.T) {
	spec := ClusterSpec{Workers: 6, Seed: 21, Transport: "tcp"}
	runs := []workload.RunSpec{{Profile: "terasort", InputBytes: 128 << 20}}
	ts1, rr1, err := Capture(spec, runs)
	if err != nil {
		t.Fatal(err)
	}
	ts2, rr2, err := Capture(spec, runs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ts1, ts2) {
		t.Error("TCP-mode trace sets diverged across same-seed reruns")
	}
	if !reflect.DeepEqual(rr1, rr2) {
		t.Error("TCP-mode run results diverged across same-seed reruns")
	}
}

// TestCaptureTransportOptOverride: CaptureOpts.Transport overrides the
// spec for one session without mutating the caller's spec.
func TestCaptureTransportOptOverride(t *testing.T) {
	spec := ClusterSpec{Workers: 4, Seed: 5}
	runs := []workload.RunSpec{{Profile: "terasort", InputBytes: 64 << 20}}
	fluidTS, _, err := Capture(spec, runs)
	if err != nil {
		t.Fatal(err)
	}
	tcpTS, _, err := CaptureWith(spec, runs, CaptureOpts{Transport: "tcp"})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Transport != "" {
		t.Errorf("CaptureWith mutated the caller's spec: Transport = %q", spec.Transport)
	}
	if reflect.DeepEqual(fluidTS, tcpTS) {
		t.Error("TCP-mode capture identical to fluid capture — the transport override had no effect")
	}
	if _, _, err := CaptureWith(spec, runs, CaptureOpts{Transport: "bogus"}); err == nil {
		t.Error("bogus transport override accepted")
	}
}

// TestCaptureTCPStrictChecks runs a TCP-mode capture with the invariants
// layer sweeping state (including the TCP cwnd/queue bounds) throughout.
func TestCaptureTCPStrictChecks(t *testing.T) {
	spec := ClusterSpec{Workers: 6, Seed: 33, Transport: "tcp"}
	runs := []workload.RunSpec{{Profile: "terasort", InputBytes: 128 << 20}}
	if _, _, err := CaptureWith(spec, runs, CaptureOpts{StrictChecks: true}); err != nil {
		t.Fatal(err)
	}
}

// TestCaptureTCPChaos: the PR 2 chaos fault schedule composes with the
// TCP transport — reroutes, degrades and node crashes must not wedge the
// state machine.
func TestCaptureTCPChaos(t *testing.T) {
	spec := ClusterSpec{Workers: 6, Seed: 99, Transport: "tcp"}
	runs := []workload.RunSpec{{Profile: "terasort", InputBytes: 256 << 20}}
	opts := CaptureOpts{Faults: chaosSchedule(), StrictChecks: true}
	ts, _, err := CaptureWith(spec, runs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Runs) == 0 {
		t.Fatal("chaos TCP capture produced no runs")
	}
}
