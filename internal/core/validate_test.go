package core

import (
	"bytes"
	"strings"
	"testing"

	"keddah/internal/flows"
	"keddah/internal/pcap"
)

func flowRec(srcPort, dstPort uint16, size int64, startNs int64) pcap.FlowRecord {
	return pcap.FlowRecord{
		Key: pcap.FlowKey{Src: pcap.HostAddr(1), Dst: pcap.HostAddr(2),
			SrcPort: srcPort, DstPort: dstPort, Proto: pcap.ProtoTCP},
		Bytes: size, FirstNs: startNs, LastNs: startNs + 1000,
	}
}

func TestValidateIdenticalSetsPerfect(t *testing.T) {
	recs := []pcap.FlowRecord{
		flowRec(flows.PortShuffle, 40000, 100, 0),
		flowRec(flows.PortShuffle, 40001, 200, 10),
		flowRec(flows.PortDataNodeData, 40002, 300, 20),
	}
	v := Validate("x", recs, recs)
	if len(v.Phases) != 2 {
		t.Fatalf("phases = %d", len(v.Phases))
	}
	for _, pc := range v.Phases {
		if pc.SizeKS != 0 {
			t.Errorf("%s: KS = %v on identical sets", pc.Phase, pc.SizeKS)
		}
		if pc.VolumeError != 0 {
			t.Errorf("%s: volume error = %v on identical sets", pc.Phase, pc.VolumeError)
		}
		if pc.MeasuredFlows != pc.GeneratedFlows {
			t.Errorf("%s: flow counts differ", pc.Phase)
		}
	}
}

func TestValidateDetectsVolumeGap(t *testing.T) {
	meas := []pcap.FlowRecord{flowRec(flows.PortShuffle, 1, 1000, 0)}
	gen := []pcap.FlowRecord{flowRec(flows.PortShuffle, 2, 1500, 0)}
	v := Validate("x", meas, gen)
	if len(v.Phases) != 1 {
		t.Fatalf("phases = %d", len(v.Phases))
	}
	pc := v.Phases[0]
	if pc.VolumeError < 0.49 || pc.VolumeError > 0.51 {
		t.Errorf("volume error = %v, want 0.5", pc.VolumeError)
	}
	if pc.SizeKS != 1 {
		t.Errorf("size KS = %v, want 1 for disjoint sizes", pc.SizeKS)
	}
}

func TestValidateTableOutput(t *testing.T) {
	meas := []pcap.FlowRecord{flowRec(flows.PortShuffle, 1, 1000, 0)}
	v := Validate("tera", meas, meas)
	var buf bytes.Buffer
	if err := v.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "shuffle") {
		t.Errorf("table missing phase row: %q", out)
	}
	if !strings.Contains(out, "size KS") {
		t.Errorf("table missing header: %q", out)
	}
}

func TestValidatePhaseOnlyOnOneSide(t *testing.T) {
	meas := []pcap.FlowRecord{flowRec(flows.PortShuffle, 1, 1000, 0)}
	gen := []pcap.FlowRecord{flowRec(flows.PortDataNodeData, 2, 1000, 0)}
	v := Validate("x", meas, gen)
	// Both phases appear: shuffle measured-only, hdfs_read generated-only.
	if len(v.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(v.Phases))
	}
	for _, pc := range v.Phases {
		switch pc.Phase {
		case flows.PhaseShuffle:
			if pc.GeneratedFlows != 0 || pc.MeasuredFlows != 1 {
				t.Errorf("shuffle counts = %d/%d", pc.MeasuredFlows, pc.GeneratedFlows)
			}
		case flows.PhaseHDFSRead:
			if pc.MeasuredFlows != 0 || pc.GeneratedFlows != 1 {
				t.Errorf("read counts = %d/%d", pc.MeasuredFlows, pc.GeneratedFlows)
			}
		}
	}
}
