package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"keddah/internal/flows"
	"keddah/internal/stats"
)

// PhaseModel is the fitted empirical model of one Hadoop traffic
// component within one workload: how many flows appear, how big each is,
// when the component begins relative to job start, and how flow arrivals
// are spaced. Counts carry structural scaling rules (flows-per-task /
// flows-per-block) so a model fitted at one input size generates traffic
// for another — the parameterised reuse the paper's toolchain provides.
type PhaseModel struct {
	// Size is the per-flow byte law for the continuous component.
	Size stats.DistSpec `json:"size"`
	// SizeAtoms are point masses drawn before the continuous law: with
	// probability Weight a flow has exactly Value bytes.
	SizeAtoms []Atom `json:"sizeAtoms,omitempty"`
	// SizeMin / SizeMax bound the observed (normalized) per-flow sizes;
	// generation winsorizes samples to this support so a heavy-tailed
	// fit cannot extrapolate far beyond anything actually measured.
	SizeMin float64 `json:"sizeMin"`
	SizeMax float64 `json:"sizeMax"`
	// SizeNormalizer names the per-run factor divided out of flow sizes
	// before fitting (and multiplied back at generation):
	// "reducers" for the shuffle — a shuffle flow is one map's output ÷
	// reducer count, so the law must be fitted on reducer-normalized
	// sizes or it cannot transfer across configurations. Empty for
	// phases whose sizes are already scale-free (block-structured HDFS
	// flows, fixed-size RPCs).
	SizeNormalizer string `json:"sizeNormalizer,omitempty"`
	// InterArrival is the seconds-between-flow-starts law.
	InterArrival stats.DistSpec `json:"interArrival"`
	// StartOffset is the law of (phase start − job start) in seconds.
	StartOffset stats.DistSpec `json:"startOffset"`
	// CountPerUnit scales flow counts: flows per structural unit
	// (see Unit).
	CountPerUnit float64 `json:"countPerUnit"`
	// Unit names the structural count driver: "map", "mapxreduce",
	// "block", "hostsecond".
	Unit string `json:"unit"`
	// VolumeShare is this phase's fraction of total job bytes (for
	// reporting and sanity checks).
	VolumeShare float64 `json:"volumeShare"`
	// SizeGoF records goodness of fit of the chosen size law.
	SizeGoF stats.GoFReport `json:"sizeGoF"`
	// Candidates summarises the per-family model selection for the size
	// law (family → AIC), best first.
	Candidates []CandidateFit `json:"candidates,omitempty"`
	// Samples is the number of flows the phase was fitted from.
	Samples int `json:"samples"`
}

// CandidateFit records one family considered during model selection.
type CandidateFit struct {
	Family stats.Family `json:"family"`
	AIC    float64      `json:"aic"`
	KS     float64      `json:"ks"`
	Failed bool         `json:"failed,omitempty"`
}

// Atom is a point mass in a spike-and-slab size model. HDFS traffic is
// dominated by flows of exactly one block (the spike); the continuous law
// models the remainder (partial blocks, small files).
type Atom struct {
	Value  float64 `json:"value"`
	Weight float64 `json:"weight"`
}

// JobModel is the complete fitted model of one workload's traffic.
type JobModel struct {
	Workload string `json:"workload"`
	// Reference parameters the model was fitted at.
	RefInputBytes  int64   `json:"refInputBytes"`
	RefMaps        int     `json:"refMaps"`
	RefReducers    int     `json:"refReducers"`
	RefBlockSize   int64   `json:"refBlockSize"`
	RefReplication int     `json:"refReplication"`
	RefRuns        int     `json:"refRuns"`
	DurationSecs   float64 `json:"durationSecs"`
	// DurIntercept/DurSecsPerByte model job duration as a linear
	// function of input size, fitted by least squares when the corpus
	// spans multiple sizes. Parallel clusters absorb input growth until
	// slots saturate, so duration is affine — not proportional — in
	// input; generation at other scales depends on getting this right.
	DurIntercept   float64 `json:"durIntercept"`
	DurSecsPerByte float64 `json:"durSecsPerByte"`
	// Phases maps each traffic component to its model.
	Phases map[flows.Phase]*PhaseModel `json:"phases"`
	// BytesPerInputByte is total job traffic per input byte — the
	// headline volume scaling factor.
	BytesPerInputByte float64 `json:"bytesPerInputByte"`
}

// Model is a fitted Keddah model library: one JobModel per workload plus
// the cluster background control-traffic model.
type Model struct {
	// Jobs maps workload name to its model.
	Jobs map[string]*JobModel `json:"jobs"`
	// Background models cluster-wide heartbeat traffic: flows per host
	// per second with the fitted size law.
	Background *PhaseModel `json:"background,omitempty"`
}

// FitOptions tunes the modelling stage.
type FitOptions struct {
	// Candidates restricts the distribution families considered
	// (default stats.DefaultCandidates).
	Candidates []stats.Family
	// MinSamples is the minimum flow count to fit a law from
	// (default 8); smaller samples fall back to a Constant at the mean.
	MinSamples int
}

func (o FitOptions) withDefaults() FitOptions {
	if o.MinSamples <= 0 {
		o.MinSamples = 8
	}
	return o
}

// Fit builds the empirical traffic model from a measurement corpus:
// for every workload × phase it pools flows across runs, selects the
// best-fitting distribution family by AIC for sizes, inter-arrivals and
// phase start offsets, and derives the structural count scaling.
func Fit(ts *TraceSet, opts FitOptions) (*Model, error) {
	opts = opts.withDefaults()
	if len(ts.Runs) == 0 {
		return nil, fmt.Errorf("core: trace set has no runs")
	}
	model := &Model{Jobs: make(map[string]*JobModel)}

	for _, name := range ts.Workloads() {
		runs := ts.ByWorkload()[name]
		jm, err := fitWorkload(name, runs, opts)
		if err != nil {
			return nil, fmt.Errorf("fit %s: %w", name, err)
		}
		model.Jobs[name] = jm
	}

	if len(ts.Background) > 0 && ts.BackgroundSpanNs > 0 && ts.BackgroundHosts > 0 {
		bg, err := fitBackground(ts, opts)
		if err != nil {
			return nil, fmt.Errorf("fit background: %w", err)
		}
		model.Background = bg
	}
	return model, nil
}

// fitWorkload pools a workload's runs and fits every phase.
func fitWorkload(name string, runs []*Run, opts FitOptions) (*JobModel, error) {
	jm := &JobModel{
		Workload: name,
		Phases:   make(map[flows.Phase]*PhaseModel, len(flows.AllPhases)),
		RefRuns:  len(runs),
	}
	var totalBytes, totalInput, totalDur float64
	for _, r := range runs {
		jm.RefInputBytes += r.InputBytes
		jm.RefMaps += r.Maps
		jm.RefReducers += r.Reducers
		jm.RefBlockSize = r.BlockSize
		jm.RefReplication = r.Replication
		totalInput += float64(r.InputBytes)
		totalDur += r.DurationSeconds()
	}
	n := len(runs)
	jm.RefInputBytes /= int64(n)
	jm.RefMaps /= n
	jm.RefReducers /= n
	jm.DurationSecs = totalDur / float64(n)
	jm.DurIntercept, jm.DurSecsPerByte = fitDurationLine(runs)

	// Pool per-phase samples across runs. Start offsets, inter-arrivals
	// and count/unit ratios are computed per run (relative to that run's
	// own start and configuration) before pooling; shuffle flow sizes
	// are normalized by the run's reducer count so the fitted law
	// transfers across configurations.
	sizes := make(map[flows.Phase][]float64)
	inter := make(map[flows.Phase][]float64)
	offsets := make(map[flows.Phase][]float64)
	unitRatios := make(map[flows.Phase][]float64)
	counts := make(map[flows.Phase]float64)
	volumes := make(map[flows.Phase]float64)

	for _, r := range runs {
		ds := r.Dataset()
		for _, ph := range flows.AllPhases {
			sub := ds.ByPhase(ph)
			if sub.Len() == 0 {
				continue
			}
			norm := sizeNormFactor(ph, r)
			for _, sz := range sub.Sizes("") {
				sizes[ph] = append(sizes[ph], sz*norm)
			}
			inter[ph] = append(inter[ph], sub.InterArrivals("")...)
			first, _ := sub.Span()
			offsets[ph] = append(offsets[ph], float64(first-r.StartNs)/1e9)
			if units := countUnits(ph, r); units > 0 {
				unitRatios[ph] = append(unitRatios[ph], float64(sub.Len())/units)
			}
			counts[ph] += float64(sub.Len())
			volumes[ph] += float64(sub.Volume(""))
		}
		totalBytes += float64(ds.Volume(""))
	}

	for _, ph := range flows.AllPhases {
		if counts[ph] == 0 {
			continue
		}
		pm := &PhaseModel{Samples: len(sizes[ph]), SizeNormalizer: sizeNormName(ph)}
		pm.SizeMin, pm.SizeMax = sampleRange(sizes[ph])
		atoms, rest := extractAtoms(sizes[ph])
		pm.SizeAtoms = atoms
		var err error
		pm.Size, pm.SizeGoF, pm.Candidates, err = fitLaw(rest, opts)
		if err != nil {
			return nil, fmt.Errorf("phase %s sizes: %w", ph, err)
		}
		pm.InterArrival, _, _, err = fitLaw(inter[ph], opts)
		if err != nil {
			return nil, fmt.Errorf("phase %s inter-arrivals: %w", ph, err)
		}
		pm.StartOffset, _, _, err = fitLaw(offsets[ph], opts)
		if err != nil {
			return nil, fmt.Errorf("phase %s offsets: %w", ph, err)
		}
		if totalBytes > 0 {
			pm.VolumeShare = volumes[ph] / totalBytes
		}
		pm.Unit = unitName(ph)
		pm.CountPerUnit = meanOf(unitRatios[ph])
		if pm.CountPerUnit == 0 {
			pm.Unit = "job"
			pm.CountPerUnit = counts[ph] / float64(n)
		}
		jm.Phases[ph] = pm
	}
	if totalInput > 0 {
		jm.BytesPerInputByte = totalBytes / totalInput
	}
	return jm, nil
}

// fitDurationLine least-squares-fits duration = a + b·input over the
// corpus runs. When the corpus does not span enough size variation to
// identify a slope (relative spread < 5%), it falls back to the
// proportional model (a=0, b=meanDur/meanInput).
func fitDurationLine(runs []*Run) (a, b float64) {
	n := float64(len(runs))
	var sx, sy, sxx, sxy float64
	for _, r := range runs {
		x := float64(r.InputBytes)
		y := r.DurationSeconds()
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	meanX := sx / n
	meanY := sy / n
	varX := sxx/n - meanX*meanX
	if meanX <= 0 || varX < (0.05*meanX)*(0.05*meanX) {
		if meanX > 0 {
			return 0, meanY / meanX
		}
		return meanY, 0
	}
	b = (sxy/n - meanX*meanY) / varX
	a = meanY - b*meanX
	// Clamp to sane territory: durations never shrink with input.
	if b < 0 {
		b = 0
		a = meanY
	}
	if a < 0 {
		a = 0
		b = meanY / meanX
	}
	return a, b
}

// DurationAt predicts the job duration for an input size using the
// fitted affine model (falling back to proportional scaling for models
// serialised before the line was recorded).
func (jm *JobModel) DurationAt(inputBytes int64) float64 {
	if jm.DurSecsPerByte > 0 || jm.DurIntercept > 0 {
		return jm.DurIntercept + jm.DurSecsPerByte*float64(inputBytes)
	}
	if jm.RefInputBytes > 0 {
		return jm.DurationSecs * float64(inputBytes) / float64(jm.RefInputBytes)
	}
	return jm.DurationSecs
}

// meanOf averages a slice (0 for empty).
func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// unitName names the structural count driver of a phase: shuffle flows
// scale with map×reduce pairs, HDFS flows with blocks, control flows
// with job duration.
func unitName(ph flows.Phase) string {
	switch ph {
	case flows.PhaseShuffle:
		return "mapxreduce"
	case flows.PhaseHDFSRead, flows.PhaseHDFSWrite:
		return "block"
	case flows.PhaseControl:
		return "controlmix"
	default:
		return "job"
	}
}

// countUnits evaluates one run's structural unit count for a phase, so
// CountPerUnit can be the mean of per-run ratios (a ratio of means is
// wrong when runs span configurations — counts are multiplicative in
// maps × reducers, not linear in their averages).
func countUnits(ph flows.Phase, r *Run) float64 {
	switch ph {
	case flows.PhaseShuffle:
		return float64(r.Maps * r.Reducers)
	case flows.PhaseHDFSRead, flows.PhaseHDFSWrite:
		if r.BlockSize > 0 {
			// Integral blocks: a 1.05-block input still has 2 splits.
			return float64((r.InputBytes + r.BlockSize - 1) / r.BlockSize)
		}
	case flows.PhaseControl:
		// Control traffic decomposes into per-task exchanges (container
		// launch, umbilical beats, completion reports ≈ 3/map + 2/reducer),
		// per-block NameNode RPCs (≈ 1/block, maps is the block count),
		// and per-second AM heartbeats.
		return controlUnits(float64(r.Maps), float64(r.Reducers), r.DurationSeconds())
	}
	return 0
}

// controlUnits is the composite driver for control-flow counts.
func controlUnits(maps, reducers, durSecs float64) float64 {
	return 3*maps + 2*reducers + durSecs
}

// sizeNormName / sizeNormFactor implement per-run flow-size
// normalization: a shuffle flow carries one map output ÷ reducer count,
// so fitting pools size × reducers and generation divides back out.
func sizeNormName(ph flows.Phase) string {
	if ph == flows.PhaseShuffle {
		return "reducers"
	}
	return ""
}

func sizeNormFactor(ph flows.Phase, r *Run) float64 {
	if ph == flows.PhaseShuffle && r.Reducers > 0 {
		return float64(r.Reducers)
	}
	return 1
}

// sampleRange returns the min and max of a sample (0,0 when empty).
func sampleRange(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// atomMinFraction is the sample share an exact repeated value must reach
// to become a point mass; atomMaxCount bounds the spike count.
const (
	atomMinFraction = 0.2
	atomMaxCount    = 2
)

// extractAtoms pulls dominant exact repeated values (block-sized HDFS
// flows, fixed-size RPCs) out of a size sample, returning the point
// masses and the remaining continuous sub-sample.
func extractAtoms(xs []float64) ([]Atom, []float64) {
	if len(xs) < 5 {
		return nil, xs
	}
	counts := make(map[float64]int, len(xs))
	for _, x := range xs {
		counts[x]++
	}
	// Collect candidate spikes above threshold, deterministically ordered
	// by weight (ties by value).
	type kv struct {
		v float64
		n int
	}
	var cands []kv
	minCount := int(atomMinFraction * float64(len(xs)))
	if minCount < 2 {
		minCount = 2
	}
	for v, n := range counts {
		if n >= minCount {
			cands = append(cands, kv{v, n})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].n != cands[j].n {
			return cands[i].n > cands[j].n
		}
		return cands[i].v < cands[j].v
	})
	if len(cands) > atomMaxCount {
		cands = cands[:atomMaxCount]
	}
	if len(cands) == 0 {
		return nil, xs
	}
	spikes := make(map[float64]bool, len(cands))
	atoms := make([]Atom, 0, len(cands))
	for _, c := range cands {
		spikes[c.v] = true
		atoms = append(atoms, Atom{Value: c.v, Weight: float64(c.n) / float64(len(xs))})
	}
	rest := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !spikes[x] {
			rest = append(rest, x)
		}
	}
	return atoms, rest
}

// fitLaw selects the best distribution for a sample, degrading gracefully
// for small or degenerate samples.
func fitLaw(xs []float64, opts FitOptions) (stats.DistSpec, stats.GoFReport, []CandidateFit, error) {
	if len(xs) == 0 {
		c, _ := stats.NewConstant(0)
		return stats.Spec(c), stats.GoFReport{}, nil, nil
	}
	if len(xs) < opts.MinSamples {
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		c, err := stats.NewConstant(mean)
		if err != nil {
			return stats.DistSpec{}, stats.GoFReport{}, nil, err
		}
		return stats.Spec(c), sanitizeGoF(stats.Evaluate(c, xs)), nil, nil
	}
	best, all, err := stats.SelectBest(xs, opts.Candidates)
	if err != nil {
		// No candidate family could represent this sample (e.g. zeros
		// under an exponential-only candidate set). Degrade to a point
		// mass at the mean rather than failing the whole model.
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		c, cerr := stats.NewConstant(mean)
		if cerr != nil {
			return stats.DistSpec{}, stats.GoFReport{}, nil, cerr
		}
		return stats.Spec(c), sanitizeGoF(stats.Evaluate(c, xs)), nil, nil
	}
	cands := make([]CandidateFit, 0, len(all))
	for _, fr := range all {
		cf := CandidateFit{AIC: finiteOr(fr.AIC, 0), KS: finiteOr(fr.KS, 1)}
		if fr.Err != nil || !isFinite(fr.AIC) {
			cf.Failed = true
		}
		if fr.Dist != nil {
			cf.Family = fr.Dist.Family()
		}
		cands = append(cands, cf)
	}
	return stats.Spec(best), sanitizeGoF(stats.Evaluate(best, xs)), cands, nil
}

// isFinite reports whether x is a normal float (not NaN/±Inf).
func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// finiteOr replaces non-finite values so the model stays JSON-encodable.
func finiteOr(x, fallback float64) float64 {
	if isFinite(x) {
		return x
	}
	return fallback
}

// sanitizeGoF scrubs non-finite goodness-of-fit values (degenerate
// likelihoods under Constant laws).
func sanitizeGoF(g stats.GoFReport) stats.GoFReport {
	g.KS = finiteOr(g.KS, 1)
	g.KSP = finiteOr(g.KSP, 0)
	g.CvM = finiteOr(g.CvM, 0)
	g.AD = finiteOr(g.AD, 0)
	g.AIC = finiteOr(g.AIC, 0)
	g.BIC = finiteOr(g.BIC, 0)
	g.LogLik = finiteOr(g.LogLik, 0)
	return g
}

// fitBackground models cluster-wide heartbeat traffic.
func fitBackground(ts *TraceSet, opts FitOptions) (*PhaseModel, error) {
	ds := flows.NewDataset(ts.Background)
	pm := &PhaseModel{Samples: ds.Len(), Unit: "hostsecond"}
	pm.SizeMin, pm.SizeMax = sampleRange(ds.Sizes(""))
	var err error
	pm.Size, pm.SizeGoF, pm.Candidates, err = fitLaw(ds.Sizes(""), opts)
	if err != nil {
		return nil, fmt.Errorf("background sizes: %w", err)
	}
	pm.InterArrival, _, _, err = fitLaw(ds.InterArrivals(""), opts)
	if err != nil {
		return nil, fmt.Errorf("background inter-arrivals: %w", err)
	}
	off, _ := stats.NewConstant(0)
	pm.StartOffset = stats.Spec(off)
	spanSecs := float64(ts.BackgroundSpanNs) / 1e9
	pm.CountPerUnit = float64(ds.Len()) / (spanSecs * float64(ts.BackgroundHosts))
	return pm, nil
}

// WriteJSON serialises the model library.
func (m *Model) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("encode model: %w", err)
	}
	return nil
}

// ReadModel deserialises a model library.
func ReadModel(r io.Reader) (*Model, error) {
	var m Model
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("decode model: %w", err)
	}
	return &m, nil
}

// WorkloadNames lists the model's workloads sorted.
func (m *Model) WorkloadNames() []string {
	names := make([]string, 0, len(m.Jobs))
	for k := range m.Jobs {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
