package core

import (
	"cmp"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"keddah/internal/flows"
	"keddah/internal/stats"
)

// PhaseModel is the fitted empirical model of one Hadoop traffic
// component within one workload: how many flows appear, how big each is,
// when the component begins relative to job start, and how flow arrivals
// are spaced. Counts carry structural scaling rules (flows-per-task /
// flows-per-block) so a model fitted at one input size generates traffic
// for another — the parameterised reuse the paper's toolchain provides.
type PhaseModel struct {
	// Size is the per-flow byte law for the continuous component.
	Size stats.DistSpec `json:"size"`
	// SizeAtoms are point masses drawn before the continuous law: with
	// probability Weight a flow has exactly Value bytes.
	SizeAtoms []Atom `json:"sizeAtoms,omitempty"`
	// SizeMin / SizeMax bound the observed (normalized) per-flow sizes;
	// generation winsorizes samples to this support so a heavy-tailed
	// fit cannot extrapolate far beyond anything actually measured.
	SizeMin float64 `json:"sizeMin"`
	SizeMax float64 `json:"sizeMax"`
	// SizeNormalizer names the per-run factor divided out of flow sizes
	// before fitting (and multiplied back at generation):
	// "reducers" for the shuffle — a shuffle flow is one map's output ÷
	// reducer count, so the law must be fitted on reducer-normalized
	// sizes or it cannot transfer across configurations. Empty for
	// phases whose sizes are already scale-free (block-structured HDFS
	// flows, fixed-size RPCs).
	SizeNormalizer string `json:"sizeNormalizer,omitempty"`
	// InterArrival is the seconds-between-flow-starts law.
	InterArrival stats.DistSpec `json:"interArrival"`
	// StartOffset is the law of (phase start − job start) in seconds.
	StartOffset stats.DistSpec `json:"startOffset"`
	// CountPerUnit scales flow counts: flows per structural unit
	// (see Unit).
	CountPerUnit float64 `json:"countPerUnit"`
	// Unit names the structural count driver: "map", "mapxreduce",
	// "block", "hostsecond".
	Unit string `json:"unit"`
	// VolumeShare is this phase's fraction of total job bytes (for
	// reporting and sanity checks).
	VolumeShare float64 `json:"volumeShare"`
	// SizeGoF records goodness of fit of the chosen size law.
	SizeGoF stats.GoFReport `json:"sizeGoF"`
	// Candidates summarises the per-family model selection for the size
	// law (family → AIC), best first.
	Candidates []CandidateFit `json:"candidates,omitempty"`
	// Samples is the number of flows the phase was fitted from.
	Samples int `json:"samples"`
}

// CandidateFit records one family considered during model selection.
type CandidateFit struct {
	Family stats.Family `json:"family"`
	AIC    float64      `json:"aic"`
	KS     float64      `json:"ks"`
	Failed bool         `json:"failed,omitempty"`
}

// Atom is a point mass in a spike-and-slab size model. HDFS traffic is
// dominated by flows of exactly one block (the spike); the continuous law
// models the remainder (partial blocks, small files).
type Atom struct {
	Value  float64 `json:"value"`
	Weight float64 `json:"weight"`
}

// JobModel is the complete fitted model of one workload's traffic.
type JobModel struct {
	Workload string `json:"workload"`
	// Reference parameters the model was fitted at.
	RefInputBytes  int64   `json:"refInputBytes"`
	RefMaps        int     `json:"refMaps"`
	RefReducers    int     `json:"refReducers"`
	RefBlockSize   int64   `json:"refBlockSize"`
	RefReplication int     `json:"refReplication"`
	RefRuns        int     `json:"refRuns"`
	DurationSecs   float64 `json:"durationSecs"`
	// DurIntercept/DurSecsPerByte model job duration as a linear
	// function of input size, fitted by least squares when the corpus
	// spans multiple sizes. Parallel clusters absorb input growth until
	// slots saturate, so duration is affine — not proportional — in
	// input; generation at other scales depends on getting this right.
	DurIntercept   float64 `json:"durIntercept"`
	DurSecsPerByte float64 `json:"durSecsPerByte"`
	// Phases maps each traffic component to its model.
	Phases map[flows.Phase]*PhaseModel `json:"phases"`
	// BytesPerInputByte is total job traffic per input byte — the
	// headline volume scaling factor.
	BytesPerInputByte float64 `json:"bytesPerInputByte"`
}

// Model is a fitted Keddah model library: one JobModel per workload plus
// the cluster background control-traffic model.
type Model struct {
	// Jobs maps workload name to its model.
	Jobs map[string]*JobModel `json:"jobs"`
	// Background models cluster-wide heartbeat traffic: flows per host
	// per second with the fitted size law.
	Background *PhaseModel `json:"background,omitempty"`
}

// FitOptions tunes the modelling stage.
type FitOptions struct {
	// Candidates restricts the distribution families considered
	// (default stats.DefaultCandidates).
	Candidates []stats.Family
	// MinSamples is the minimum flow count to fit a law from
	// (default 8); smaller samples fall back to a Constant at the mean.
	MinSamples int
	// Workers bounds the fit worker pool: the per-(workload, phase)
	// fitting tasks run on up to Workers goroutines (0 = GOMAXPROCS,
	// 1 = serial). Every task is an independent pure function and the
	// results are assembled in a fixed order, so the fitted model —
	// including its serialised JSON — is byte-identical at any width.
	Workers int
}

func (o FitOptions) withDefaults() FitOptions {
	if o.MinSamples <= 0 {
		o.MinSamples = 8
	}
	return o
}

// Fit builds the empirical traffic model from a measurement corpus:
// for every workload × phase it pools flows across runs, selects the
// best-fitting distribution family by AIC for sizes, inter-arrivals and
// phase start offsets, and derives the structural count scaling.
//
// The stage is split in two: a cheap serial pooling pass per workload,
// then the expensive distribution fitting fanned out over a bounded
// worker pool with one task per (workload, phase) plus one for the
// cluster background model (see FitOptions.Workers).
func Fit(ts *TraceSet, opts FitOptions) (*Model, error) {
	opts = opts.withDefaults()
	if len(ts.Runs) == 0 {
		return nil, fmt.Errorf("core: trace set has no runs")
	}
	model := &Model{Jobs: make(map[string]*JobModel)}
	names := ts.Workloads()
	byWorkload := ts.ByWorkload()

	// Stage 1 (serial): pool per-phase samples for every workload.
	pools := make([]*workloadPool, len(names))
	for i, name := range names {
		pools[i] = poolWorkload(name, byWorkload[name])
	}

	// Stage 2 (parallel): one fit task per pooled (workload, phase).
	type phaseSlot struct {
		pool *workloadPool
		ph   flows.Phase
		pm   *PhaseModel
		err  error
	}
	var slots []*phaseSlot
	var tasks []func()
	for _, pool := range pools {
		for _, ph := range flows.AllPhases {
			pp, ok := pool.phases[ph]
			if !ok {
				continue
			}
			slot := &phaseSlot{pool: pool, ph: ph}
			slots = append(slots, slot)
			tasks = append(tasks, func() {
				slot.pm, slot.err = fitPhase(slot.ph, pp, pool, opts)
			})
		}
	}
	var bg *PhaseModel
	var bgErr error
	fitBG := len(ts.Background) > 0 && ts.BackgroundSpanNs > 0 && ts.BackgroundHosts > 0
	if fitBG {
		tasks = append(tasks, func() { bg, bgErr = fitBackground(ts, opts) })
	}
	runTasks(tasks, opts.Workers)

	// Assemble in deterministic (workload, phase) order; the first
	// failure in that order wins, whatever finished first.
	for _, slot := range slots {
		if slot.err != nil {
			return nil, fmt.Errorf("fit %s: %w", slot.pool.jm.Workload, slot.err)
		}
		slot.pool.jm.Phases[slot.ph] = slot.pm
	}
	if fitBG {
		if bgErr != nil {
			return nil, fmt.Errorf("fit background: %w", bgErr)
		}
		model.Background = bg
	}
	for _, pool := range pools {
		model.Jobs[pool.jm.Workload] = pool.jm
	}
	return model, nil
}

// runTasks drains tasks on up to workers goroutines (0 = GOMAXPROCS,
// 1 or a single task = inline serial execution).
func runTasks(tasks []func(), workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				tasks[i]()
			}
		}()
	}
	wg.Wait()
}

// phasePool is one (workload, phase)'s pooled raw samples, ready for an
// independent fit task.
type phasePool struct {
	sizes      []float64
	inter      []float64
	offsets    []float64
	unitRatios []float64
	count      float64
	volume     float64
}

// workloadPool carries a workload's partially built JobModel (reference
// parameters, duration line) plus its pooled per-phase samples.
type workloadPool struct {
	jm         *JobModel
	phases     map[flows.Phase]*phasePool
	totalBytes float64
	runs       int
}

// poolWorkload pools a workload's runs into per-phase samples. Start
// offsets, inter-arrivals and count/unit ratios are computed per run
// (relative to that run's own start and configuration) before pooling;
// shuffle flow sizes are normalized by the run's reducer count so the
// fitted law transfers across configurations.
func poolWorkload(name string, runs []*Run) *workloadPool {
	jm := &JobModel{
		Workload: name,
		Phases:   make(map[flows.Phase]*PhaseModel, len(flows.AllPhases)),
		RefRuns:  len(runs),
	}
	var totalInput, totalDur float64
	for _, r := range runs {
		jm.RefInputBytes += r.InputBytes
		jm.RefMaps += r.Maps
		jm.RefReducers += r.Reducers
		jm.RefBlockSize = r.BlockSize
		jm.RefReplication = r.Replication
		totalInput += float64(r.InputBytes)
		totalDur += r.DurationSeconds()
	}
	n := len(runs)
	jm.RefInputBytes /= int64(n)
	jm.RefMaps /= n
	jm.RefReducers /= n
	jm.DurationSecs = totalDur / float64(n)
	jm.DurIntercept, jm.DurSecsPerByte = fitDurationLine(runs)

	pool := &workloadPool{
		jm:     jm,
		phases: make(map[flows.Phase]*phasePool, len(flows.AllPhases)),
		runs:   n,
	}
	for _, r := range runs {
		ds := r.Dataset()
		for _, ph := range flows.AllPhases {
			cnt := ds.Count(ph)
			if cnt == 0 {
				continue
			}
			pp, ok := pool.phases[ph]
			if !ok {
				pp = &phasePool{}
				pool.phases[ph] = pp
			}
			// Per-phase series come straight off the dataset's phase index;
			// no sub-dataset is materialized.
			norm := sizeNormFactor(ph, r)
			for _, sz := range ds.Sizes(ph) {
				pp.sizes = append(pp.sizes, sz*norm)
			}
			pp.inter = append(pp.inter, ds.InterArrivals(ph)...)
			first, _ := ds.PhaseSpan(ph)
			pp.offsets = append(pp.offsets, float64(first-r.StartNs)/1e9)
			if units := countUnits(ph, r); units > 0 {
				pp.unitRatios = append(pp.unitRatios, float64(cnt)/units)
			}
			pp.count += float64(cnt)
			pp.volume += float64(ds.Volume(ph))
		}
		pool.totalBytes += float64(ds.Volume(""))
	}
	if totalInput > 0 {
		jm.BytesPerInputByte = pool.totalBytes / totalInput
	}
	return pool
}

// fitPhase fits one pooled (workload, phase): size law with atoms,
// inter-arrival law, start-offset law and the structural count scaling.
// It reads only its own pool (plus immutable workload totals), so any
// number of fitPhase tasks can run concurrently.
func fitPhase(ph flows.Phase, pp *phasePool, pool *workloadPool, opts FitOptions) (*PhaseModel, error) {
	// One sort covers range, atom extraction and the size fit: atoms are
	// contiguous runs in the sorted sample, and what remains is still
	// sorted, so the fit below skips its own sort.
	sizes := stats.NewSampleOwned(pp.sizes)
	pm := &PhaseModel{Samples: sizes.Len(), SizeNormalizer: sizeNormName(ph)}
	pm.SizeMin, pm.SizeMax = sizes.Min(), sizes.Max()
	atoms, rest := extractAtoms(sizes.Values())
	pm.SizeAtoms = atoms
	var err error
	pm.Size, pm.SizeGoF, pm.Candidates, err = fitLaw(stats.NewSampleSorted(rest), opts)
	if err != nil {
		return nil, fmt.Errorf("phase %s sizes: %w", ph, err)
	}
	pm.InterArrival, _, _, err = fitLaw(stats.NewSampleOwned(pp.inter), opts)
	if err != nil {
		return nil, fmt.Errorf("phase %s inter-arrivals: %w", ph, err)
	}
	pm.StartOffset, _, _, err = fitLaw(stats.NewSampleOwned(pp.offsets), opts)
	if err != nil {
		return nil, fmt.Errorf("phase %s offsets: %w", ph, err)
	}
	if pool.totalBytes > 0 {
		pm.VolumeShare = pp.volume / pool.totalBytes
	}
	pm.Unit = unitName(ph)
	pm.CountPerUnit = stats.Mean(pp.unitRatios)
	if pm.CountPerUnit == 0 {
		pm.Unit = "job"
		pm.CountPerUnit = pp.count / float64(pool.runs)
	}
	return pm, nil
}

// fitDurationLine least-squares-fits duration = a + b·input over the
// corpus runs. When the corpus does not span enough size variation to
// identify a slope (relative spread < 5%), it falls back to the
// proportional model (a=0, b=meanDur/meanInput).
func fitDurationLine(runs []*Run) (a, b float64) {
	n := float64(len(runs))
	var sx, sy, sxx, sxy float64
	for _, r := range runs {
		x := float64(r.InputBytes)
		y := r.DurationSeconds()
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	meanX := sx / n
	meanY := sy / n
	varX := sxx/n - meanX*meanX
	if meanX <= 0 || varX < (0.05*meanX)*(0.05*meanX) {
		if meanX > 0 {
			return 0, meanY / meanX
		}
		return meanY, 0
	}
	b = (sxy/n - meanX*meanY) / varX
	a = meanY - b*meanX
	// Clamp to sane territory: durations never shrink with input.
	if b < 0 {
		b = 0
		a = meanY
	}
	if a < 0 {
		a = 0
		b = meanY / meanX
	}
	return a, b
}

// DurationAt predicts the job duration for an input size using the
// fitted affine model (falling back to proportional scaling for models
// serialised before the line was recorded).
func (jm *JobModel) DurationAt(inputBytes int64) float64 {
	if jm.DurSecsPerByte > 0 || jm.DurIntercept > 0 {
		return jm.DurIntercept + jm.DurSecsPerByte*float64(inputBytes)
	}
	if jm.RefInputBytes > 0 {
		return jm.DurationSecs * float64(inputBytes) / float64(jm.RefInputBytes)
	}
	return jm.DurationSecs
}

// unitName names the structural count driver of a phase: shuffle flows
// scale with map×reduce pairs, HDFS flows with blocks, control flows
// with job duration.
func unitName(ph flows.Phase) string {
	switch ph {
	case flows.PhaseShuffle:
		return "mapxreduce"
	case flows.PhaseHDFSRead, flows.PhaseHDFSWrite:
		return "block"
	case flows.PhaseControl:
		return "controlmix"
	default:
		return "job"
	}
}

// countUnits evaluates one run's structural unit count for a phase, so
// CountPerUnit can be the mean of per-run ratios (a ratio of means is
// wrong when runs span configurations — counts are multiplicative in
// maps × reducers, not linear in their averages).
func countUnits(ph flows.Phase, r *Run) float64 {
	switch ph {
	case flows.PhaseShuffle:
		return float64(r.Maps * r.Reducers)
	case flows.PhaseHDFSRead, flows.PhaseHDFSWrite:
		if r.BlockSize > 0 {
			// Integral blocks: a 1.05-block input still has 2 splits.
			return float64((r.InputBytes + r.BlockSize - 1) / r.BlockSize)
		}
	case flows.PhaseControl:
		// Control traffic decomposes into per-task exchanges (container
		// launch, umbilical beats, completion reports ≈ 3/map + 2/reducer),
		// per-block NameNode RPCs (≈ 1/block, maps is the block count),
		// and per-second AM heartbeats.
		return controlUnits(float64(r.Maps), float64(r.Reducers), r.DurationSeconds())
	}
	return 0
}

// controlUnits is the composite driver for control-flow counts.
func controlUnits(maps, reducers, durSecs float64) float64 {
	return 3*maps + 2*reducers + durSecs
}

// sizeNormName / sizeNormFactor implement per-run flow-size
// normalization: a shuffle flow carries one map output ÷ reducer count,
// so fitting pools size × reducers and generation divides back out.
func sizeNormName(ph flows.Phase) string {
	if ph == flows.PhaseShuffle {
		return "reducers"
	}
	return ""
}

func sizeNormFactor(ph flows.Phase, r *Run) float64 {
	if ph == flows.PhaseShuffle && r.Reducers > 0 {
		return float64(r.Reducers)
	}
	return 1
}

// atomMinFraction is the sample share an exact repeated value must reach
// to become a point mass; atomMaxCount bounds the spike count.
const (
	atomMinFraction = 0.2
	atomMaxCount    = 2
)

// extractAtoms pulls dominant exact repeated values (block-sized HDFS
// flows, fixed-size RPCs) out of a size sample, returning the point
// masses and the remaining continuous sub-sample. xs must be sorted
// ascending: repeated values are then contiguous runs, so one linear
// scan replaces a value→count map, and the returned rest is itself
// still sorted (callers feed it to NewSampleSorted).
func extractAtoms(xs []float64) ([]Atom, []float64) {
	if len(xs) < 5 {
		return nil, xs
	}
	minCount := int(atomMinFraction * float64(len(xs)))
	if minCount < 2 {
		minCount = 2
	}
	// Collect candidate runs above threshold; scanning sorted data yields
	// them in value order, which the weight sort below uses as tiebreak.
	type run struct {
		start, n int
	}
	var cands []run
	for i := 0; i < len(xs); {
		j := i + 1
		for j < len(xs) && xs[j] == xs[i] {
			j++
		}
		if j-i >= minCount {
			cands = append(cands, run{start: i, n: j - i})
		}
		i = j
	}
	if len(cands) == 0 {
		return nil, xs
	}
	slices.SortFunc(cands, func(a, b run) int {
		if a.n != b.n {
			return cmp.Compare(b.n, a.n)
		}
		return cmp.Compare(xs[a.start], xs[b.start])
	})
	if len(cands) > atomMaxCount {
		cands = cands[:atomMaxCount]
	}
	atoms := make([]Atom, 0, len(cands))
	removed := 0
	for _, c := range cands {
		atoms = append(atoms, Atom{Value: xs[c.start], Weight: float64(c.n) / float64(len(xs))})
		removed += c.n
	}
	// Carve the chosen runs out positionally so rest stays sorted.
	byPos := append([]run(nil), cands...)
	slices.SortFunc(byPos, func(a, b run) int { return cmp.Compare(a.start, b.start) })
	rest := make([]float64, 0, len(xs)-removed)
	prev := 0
	for _, c := range byPos {
		rest = append(rest, xs[prev:c.start]...)
		prev = c.start + c.n
	}
	rest = append(rest, xs[prev:]...)
	return atoms, rest
}

// fitLaw selects the best distribution for a sample, degrading gracefully
// for small or degenerate samples. The sample is sorted exactly once — at
// construction by the caller — and its cached moments feed every
// candidate fit and goodness-of-fit statistic.
func fitLaw(s *stats.Sample, opts FitOptions) (stats.DistSpec, stats.GoFReport, []CandidateFit, error) {
	if s.Len() == 0 {
		c, _ := stats.NewConstant(0)
		return stats.Spec(c), stats.GoFReport{}, nil, nil
	}
	if s.Len() < opts.MinSamples {
		c, err := stats.NewConstant(s.Mean())
		if err != nil {
			return stats.DistSpec{}, stats.GoFReport{}, nil, err
		}
		return stats.Spec(c), sanitizeGoF(s.Evaluate(c)), nil, nil
	}
	best, all, err := s.SelectBest(opts.Candidates)
	if err != nil {
		// No candidate family could represent this sample (e.g. zeros
		// under an exponential-only candidate set). Degrade to a point
		// mass at the mean rather than failing the whole model.
		c, cerr := stats.NewConstant(s.Mean())
		if cerr != nil {
			return stats.DistSpec{}, stats.GoFReport{}, nil, cerr
		}
		return stats.Spec(c), sanitizeGoF(s.Evaluate(c)), nil, nil
	}
	cands := make([]CandidateFit, 0, len(all))
	for _, fr := range all {
		cf := CandidateFit{AIC: finiteOr(fr.AIC, 0), KS: finiteOr(fr.KS, 1)}
		if fr.Err != nil || !isFinite(fr.AIC) {
			cf.Failed = true
		}
		if fr.Dist != nil {
			cf.Family = fr.Dist.Family()
		}
		cands = append(cands, cf)
	}
	return stats.Spec(best), sanitizeGoF(s.Evaluate(best)), cands, nil
}

// isFinite reports whether x is a normal float (not NaN/±Inf).
func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// finiteOr replaces non-finite values so the model stays JSON-encodable.
func finiteOr(x, fallback float64) float64 {
	if isFinite(x) {
		return x
	}
	return fallback
}

// sanitizeGoF scrubs non-finite goodness-of-fit values (degenerate
// likelihoods under Constant laws).
func sanitizeGoF(g stats.GoFReport) stats.GoFReport {
	g.KS = finiteOr(g.KS, 1)
	g.KSP = finiteOr(g.KSP, 0)
	g.CvM = finiteOr(g.CvM, 0)
	g.AD = finiteOr(g.AD, 0)
	g.AIC = finiteOr(g.AIC, 0)
	g.BIC = finiteOr(g.BIC, 0)
	g.LogLik = finiteOr(g.LogLik, 0)
	return g
}

// fitBackground models cluster-wide heartbeat traffic.
func fitBackground(ts *TraceSet, opts FitOptions) (*PhaseModel, error) {
	ds := ts.BackgroundDataset()
	pm := &PhaseModel{Samples: ds.Len(), Unit: "hostsecond"}
	sizes := ds.SizeSample("")
	pm.SizeMin, pm.SizeMax = sizes.Min(), sizes.Max()
	var err error
	pm.Size, pm.SizeGoF, pm.Candidates, err = fitLaw(sizes, opts)
	if err != nil {
		return nil, fmt.Errorf("background sizes: %w", err)
	}
	pm.InterArrival, _, _, err = fitLaw(ds.InterArrivalSample(""), opts)
	if err != nil {
		return nil, fmt.Errorf("background inter-arrivals: %w", err)
	}
	off, _ := stats.NewConstant(0)
	pm.StartOffset = stats.Spec(off)
	spanSecs := float64(ts.BackgroundSpanNs) / 1e9
	pm.CountPerUnit = float64(ds.Len()) / (spanSecs * float64(ts.BackgroundHosts))
	return pm, nil
}

// WriteJSON serialises the model library.
func (m *Model) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("encode model: %w", err)
	}
	return nil
}

// ReadModel deserialises a model library.
func ReadModel(r io.Reader) (*Model, error) {
	var m Model
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("decode model: %w", err)
	}
	return &m, nil
}

// WorkloadNames lists the model's workloads sorted.
func (m *Model) WorkloadNames() []string {
	names := make([]string, 0, len(m.Jobs))
	for k := range m.Jobs {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
