package core

import (
	"fmt"
	"io"
	"text/tabwriter"

	"keddah/internal/flows"
	"keddah/internal/pcap"
	"keddah/internal/stats"
)

// PhaseComparison quantifies how closely generated traffic reproduces
// measured traffic for one phase.
type PhaseComparison struct {
	Phase flows.Phase `json:"phase"`
	// MeasuredFlows / GeneratedFlows are flow counts.
	MeasuredFlows  int `json:"measuredFlows"`
	GeneratedFlows int `json:"generatedFlows"`
	// MeasuredBytes / GeneratedBytes are volumes.
	MeasuredBytes  int64 `json:"measuredBytes"`
	GeneratedBytes int64 `json:"generatedBytes"`
	// SizeKS is the two-sample KS distance between per-flow size
	// distributions; SizeKSP its p-value.
	SizeKS  float64 `json:"sizeKS"`
	SizeKSP float64 `json:"sizeKSP"`
	// ArrivalKS compares inter-arrival distributions.
	ArrivalKS float64 `json:"arrivalKS"`
	// VolumeError is |gen−meas|/meas.
	VolumeError float64 `json:"volumeError"`
}

// Validation is the full measured-vs-generated report for one workload.
type Validation struct {
	Workload string            `json:"workload"`
	Phases   []PhaseComparison `json:"phases"`
}

// Validate compares a measured flow dataset against a generated one,
// phase by phase — the toolchain's closing fidelity check (the paper's
// measured-vs-model CDF comparison).
func Validate(workload string, measured, generated []pcap.FlowRecord) Validation {
	md := flows.NewDataset(measured)
	gd := flows.NewDataset(generated)
	v := Validation{Workload: workload}
	for _, ph := range flows.AllPhases {
		ms, gs := md.SizeSample(ph), gd.SizeSample(ph)
		if ms.Len() == 0 && gs.Len() == 0 {
			continue
		}
		pc := PhaseComparison{
			Phase:          ph,
			MeasuredFlows:  ms.Len(),
			GeneratedFlows: gs.Len(),
			MeasuredBytes:  md.Volume(ph),
			GeneratedBytes: gd.Volume(ph),
		}
		pc.SizeKS = stats.KSStatistic2Sorted(ms.Values(), gs.Values())
		pc.SizeKSP = stats.KSPValue2(pc.SizeKS, ms.Len(), gs.Len())
		pc.ArrivalKS = stats.KSStatistic2Sorted(
			md.InterArrivalSample(ph).Values(), gd.InterArrivalSample(ph).Values())
		if pc.MeasuredBytes > 0 {
			diff := float64(pc.GeneratedBytes - pc.MeasuredBytes)
			if diff < 0 {
				diff = -diff
			}
			pc.VolumeError = diff / float64(pc.MeasuredBytes)
		}
		v.Phases = append(v.Phases, pc)
	}
	return v
}

// WriteTable renders the validation as an aligned text table.
func (v Validation) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "phase\tmeas flows\tgen flows\tmeas MB\tgen MB\tvol err\tsize KS\tarrival KS\n")
	for _, pc := range v.Phases {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%.1f\t%.1f%%\t%.3f\t%.3f\n",
			pc.Phase, pc.MeasuredFlows, pc.GeneratedFlows,
			float64(pc.MeasuredBytes)/(1<<20), float64(pc.GeneratedBytes)/(1<<20),
			pc.VolumeError*100, pc.SizeKS, pc.ArrivalKS)
	}
	return tw.Flush()
}
