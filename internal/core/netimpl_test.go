package core

import (
	"reflect"
	"runtime/debug"
	"testing"

	"keddah/internal/telemetry"
	"keddah/internal/workload"
)

// TestNetImplLockstep is the capture-level half of the flow-storage
// equivalence guarantee: full capture sessions shaped like the suite's
// E4 (replication sweep point), E11 (worker failure) and E16 (chaos
// schedule with re-routes and aborts) experiments must be identical
// between the struct-of-arrays core and the pointer reference core —
// the whole TraceSet (every synthesised flow record and timestamp), the
// per-run results, and the deterministic telemetry snapshot.
func TestNetImplLockstep(t *testing.T) {
	cases := []struct {
		name string
		spec ClusterSpec
		runs []workload.RunSpec
		opts CaptureOpts
	}{
		{
			name: "E4 replication sweep point",
			spec: ClusterSpec{Workers: 6, Replication: 2, Seed: 7},
			runs: []workload.RunSpec{{Profile: "terasort", InputBytes: 192 << 20}},
		},
		{
			name: "E11 worker failure",
			spec: ClusterSpec{Workers: 6, Seed: 11},
			runs: []workload.RunSpec{{Profile: "sort", InputBytes: 192 << 20}},
			opts: CaptureOpts{Failures: []FailureSpec{{WorkerIndex: 2, AtNs: 6_000_000_000}}},
		},
		{
			name: "E16 chaos schedule",
			spec: ClusterSpec{Workers: 6, Seed: 99},
			runs: []workload.RunSpec{{Profile: "terasort", InputBytes: 256 << 20}},
			opts: CaptureOpts{Faults: chaosSchedule()},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(impl string) (*TraceSet, []workload.RunResult, telemetry.Snapshot) {
				spec := tc.spec
				spec.NetImpl = impl
				opts := tc.opts
				tel := telemetry.New()
				opts.Telemetry = tel
				ts, rr, err := CaptureWith(spec, tc.runs, opts)
				if err != nil {
					t.Fatal(err)
				}
				return ts, rr, tel.Snapshot()
			}
			soaTS, soaRR, soaSnap := run("soa")
			ptrTS, ptrRR, ptrSnap := run("pointer")
			if !reflect.DeepEqual(soaTS, ptrTS) {
				t.Error("trace sets diverged between soa and pointer cores")
			}
			if !reflect.DeepEqual(soaRR, ptrRR) {
				t.Error("run results diverged between soa and pointer cores")
			}
			if !reflect.DeepEqual(soaSnap, ptrSnap) {
				t.Error("telemetry snapshots diverged between soa and pointer cores")
			}
		})
	}
}

// TestCaptureIdenticalUnderGCPressure: GC timing must never influence a
// capture. Running the same session under GOGC=20 — collections firing an
// order of magnitude more often, recycled slots and arenas churning
// through the allocator — must produce a byte-identical TraceSet.
func TestCaptureIdenticalUnderGCPressure(t *testing.T) {
	spec, runs := chaosSpecAndRuns()
	baseline, _, err := Capture(spec, runs)
	if err != nil {
		t.Fatal(err)
	}
	old := debug.SetGCPercent(20)
	defer debug.SetGCPercent(old)
	pressured, _, err := Capture(spec, runs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(baseline, pressured) {
		t.Error("GOGC=20 changed the captured trace set")
	}
}
