// Package core implements the Keddah toolchain itself: capturing traffic
// from (simulated) Hadoop cluster runs, reducing it to per-job per-phase
// flow datasets, fitting empirical distribution models, serialising those
// models, regenerating synthetic traffic from them inside a network
// simulator, and validating generated against measured traffic.
//
// The pipeline mirrors the paper:
//
//	capture → classify → model → generate → validate
package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"keddah/internal/flows"
	"keddah/internal/pcap"
)

// Run is the captured traffic of one job execution plus the job metadata
// the model is parameterised on.
type Run struct {
	// Workload names the profile ("terasort").
	Workload string `json:"workload"`
	// JobName is the per-run unique job label ("terasort0-r0").
	JobName string `json:"jobName"`
	// InputBytes, Maps, Reducers are the job parameters.
	InputBytes int64 `json:"inputBytes"`
	Maps       int   `json:"maps"`
	Reducers   int   `json:"reducers"`
	// BlockSize and Replication are the cluster parameters in force.
	BlockSize   int64 `json:"blockSize"`
	Replication int   `json:"replication"`
	// Hosts is the worker count.
	Hosts int `json:"hosts"`
	// StartNs/EndNs bound the job in simulated time.
	StartNs int64 `json:"startNs"`
	EndNs   int64 `json:"endNs"`
	// Records are the job's flow records (ground-truth-labelled,
	// phase-classified by ports).
	Records []pcap.FlowRecord `json:"records"`

	dsOnce sync.Once
	ds     *flows.Dataset
}

// DurationSeconds returns the job duration.
func (r *Run) DurationSeconds() float64 { return float64(r.EndNs-r.StartNs) / 1e9 }

// Dataset returns the run's classified flow dataset. The dataset is
// built on first use and cached: Records are fixed once the capture
// session ends and classification is pure, so every caller — including
// repeated Fit invocations — shares one phase-indexed view. Callers must
// treat the returned dataset as read-only.
func (r *Run) Dataset() *flows.Dataset {
	r.dsOnce.Do(func() { r.ds = flows.NewDataset(r.Records) })
	return r.ds
}

// CaptureStats summarises cluster-level events of a capture session.
type CaptureStats struct {
	// ReReplicatedBytes / ReReplicatedBlocks count HDFS failure-recovery
	// copies; LostContainers counts YARN containers killed by node
	// failures; LostBlocks counts data irrecoverably lost.
	ReReplicatedBytes  int64 `json:"reReplicatedBytes"`
	ReReplicatedBlocks int64 `json:"reReplicatedBlocks"`
	LostContainers     int64 `json:"lostContainers"`
	LostBlocks         int64 `json:"lostBlocks"`
	// PipelineRecoveries / ReadRetries count HDFS client-side recovery
	// actions; AbortedFlows counts flows torn down by fault injection.
	PipelineRecoveries int64 `json:"pipelineRecoveries,omitempty"`
	ReadRetries        int64 `json:"readRetries,omitempty"`
	AbortedFlows       int64 `json:"abortedFlows,omitempty"`
	// InterPod* describe the fabric traffic of a multi-pod capture:
	// transfers completed, detoured through a relay pod, aborted, and
	// the application bytes that crossed pod boundaries.
	InterPodTransfers int64 `json:"interPodTransfers,omitempty"`
	InterPodRelayed   int64 `json:"interPodRelayed,omitempty"`
	InterPodAborted   int64 `json:"interPodAborted,omitempty"`
	InterPodBytes     int64 `json:"interPodBytes,omitempty"`
}

// TraceSet is a collection of captured runs — the measurement corpus the
// model is fitted from.
type TraceSet struct {
	// Background holds cluster-wide control flows not attributable to a
	// single job (NodeManager/DataNode heartbeats, failure recovery).
	Background []pcap.FlowRecord `json:"background"`
	// BackgroundHosts and BackgroundSpanNs scale the background model.
	BackgroundHosts  int          `json:"backgroundHosts"`
	BackgroundSpanNs int64        `json:"backgroundSpanNs"`
	Stats            CaptureStats `json:"stats"`
	Runs             []*Run       `json:"runs"`

	bgOnce sync.Once
	bgDS   *flows.Dataset
}

// BackgroundDataset returns the classified background-flow dataset,
// built on first use and cached under the same contract as Run.Dataset:
// Background is fixed once the capture session ends, and callers must
// treat the returned dataset as read-only.
func (ts *TraceSet) BackgroundDataset() *flows.Dataset {
	ts.bgOnce.Do(func() { ts.bgDS = flows.NewDataset(ts.Background) })
	return ts.bgDS
}

// ByWorkload groups runs by workload name, sorted for determinism.
func (ts *TraceSet) ByWorkload() map[string][]*Run {
	out := make(map[string][]*Run)
	for _, r := range ts.Runs {
		out[r.Workload] = append(out[r.Workload], r)
	}
	return out
}

// Workloads lists the distinct workload names in sorted order.
func (ts *TraceSet) Workloads() []string {
	seen := make(map[string]bool)
	var names []string
	for _, r := range ts.Runs {
		if !seen[r.Workload] {
			seen[r.Workload] = true
			names = append(names, r.Workload)
		}
	}
	sort.Strings(names)
	return names
}

// WriteJSON serialises the trace set.
func (ts *TraceSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(ts); err != nil {
		return fmt.Errorf("encode trace set: %w", err)
	}
	return nil
}

// ReadTraceSet deserialises a trace set.
func ReadTraceSet(r io.Reader) (*TraceSet, error) {
	var ts TraceSet
	if err := json.NewDecoder(r).Decode(&ts); err != nil {
		return nil, fmt.Errorf("decode trace set: %w", err)
	}
	return &ts, nil
}
