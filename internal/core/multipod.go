// Multi-pod capture: several full Hadoop clusters ("pods"), each on its
// own shard of a sim.ShardedEngine, exchanging traffic through the
// store-and-forward inter-pod fabric. Everything inside a pod — network
// arenas, HDFS, YARN, jobs, RNG streams — stays strictly shard-local;
// the only cross-shard channel is the fabric's boundary posts, merged in
// fixed order at window barriers. The whole capture is therefore
// byte-identical at any engine layout (Shards 0, -1, or explicit) and
// any GOMAXPROCS, which the lockstep tests and the shard-determinism CI
// job verify against the serial layout.
package core

import (
	"fmt"
	"time"

	"keddah/internal/faults"
	"keddah/internal/hadoop"
	"keddah/internal/invariants"
	"keddah/internal/netsim"
	"keddah/internal/pcap"
	"keddah/internal/sim"
	"keddah/internal/telemetry"
	"keddah/internal/workload"
)

// podSeedStride separates the pods' seed spaces: pod p runs with
// Seed + p·stride so its stochastic choices are independent of every
// other pod's but still a pure function of the spec.
const podSeedStride = 1_000_003

// sweepEveryEvents paces strict-mode invariant sweeps at window barriers
// by processed-event deltas — a count that is identical at every engine
// layout, unlike window wall-clock or per-shard step counts.
const sweepEveryEvents = 4096

// resolveShards maps the Shards knob to an engine count:
// 0 = serial (one engine), -1 = auto (one per pod), 1..pods explicit.
func resolveShards(pods, shards int) (int, error) {
	switch {
	case shards == 0:
		return 1, nil
	case shards == -1:
		return pods, nil
	case shards >= 1 && shards <= pods:
		return shards, nil
	default:
		return 0, fmt.Errorf("core: shards %d outside {-1, 0, 1..%d pods}", shards, pods)
	}
}

// captureMultiPod is the Pods > 1 arm of CaptureWith.
func captureMultiPod(spec ClusterSpec, runSpecs []workload.RunSpec, opts CaptureOpts) (*TraceSet, []workload.RunResult, error) {
	pods := spec.Pods
	shards := spec.Shards
	if opts.Shards != nil {
		shards = *opts.Shards
	}
	engines, err := resolveShards(pods, shards)
	if err != nil {
		return nil, nil, err
	}
	switch spec.CrossPod {
	case "", "ring", "fanin", "none":
	default:
		return nil, nil, fmt.Errorf("core: unknown cross-pod traffic mode %q", spec.CrossPod)
	}
	latency := sim.Time(spec.InterPodLatencyNs)
	if latency <= 0 {
		latency = sim.Time(netsim.DefaultInterPodLatencyNs)
	}
	wallStart := time.Now()
	tel := opts.Telemetry

	sched, err := sim.NewSharded(pods, engines, latency)
	if err != nil {
		return nil, nil, err
	}
	if tel != nil {
		sched.SetMetrics(tel.ShardSet(engines))
	}

	// Build one full cluster per pod on its shard's engine. Pod seeds are
	// disjoint strides of the spec seed so each pod's traffic is its own
	// deterministic stream.
	clusters := make([]*hadoop.Cluster, pods)
	captures := make([]*pcap.Capture, pods)
	nets := make([]*netsim.Network, pods)
	gateways := make([]netsim.NodeID, pods)
	est := workload.EstimatePeakFlowsMultiPod(
		runSpecs, spec.Workers, spec.SlotsPerNode, spec.Replication, pods-1)
	for p := 0; p < pods; p++ {
		podSpec := spec
		podSpec.Seed = spec.Seed + int64(p)*podSeedStride
		c, err := podSpec.buildClusterOn(sched.PodEngine(p))
		if err != nil {
			return nil, nil, fmt.Errorf("build pod %d: %w", p, err)
		}
		c.Net.Reserve(est)
		c.AttachTelemetry(tel)
		if tel != nil {
			// The heap high-water mark depends on how many pods share an
			// engine; keep only the layout-invariant event counter so the
			// deterministic snapshot is byte-identical at every -shards.
			c.Eng.SetMetrics(telemetry.SimMetrics{Events: tel.Sim.Events})
		}
		cap := pcap.NewCapture()
		// Disjoint address ranges per pod: merged traces keep globally
		// unique 5-tuples.
		cap.SetHostOffset(p * c.Net.Topology().NumNodes())
		c.Net.AddTap(cap)
		clusters[p], captures[p] = c, cap
		nets[p], gateways[p] = c.Net, c.Master()
	}

	ip, err := netsim.NewInterPod(sched, nets, gateways, latency)
	if err != nil {
		return nil, nil, err
	}

	// Failure and fault schedules address workers globally
	// (pod = index / Workers); link faults are pod-ambiguous and
	// rejected — pod-pair outages go through InterPodFaults instead.
	for _, f := range opts.Failures {
		p := f.WorkerIndex / spec.Workers
		if f.WorkerIndex < 0 || p >= pods {
			return nil, nil, fmt.Errorf("core: failure worker index %d out of range (%d pods × %d workers)",
				f.WorkerIndex, pods, spec.Workers)
		}
		w := clusters[p].Workers()[f.WorkerIndex%spec.Workers]
		if err := clusters[p].FailWorker(w, sim.Time(f.AtNs)); err != nil {
			return nil, nil, fmt.Errorf("schedule failure: %w", err)
		}
	}
	podFaults := make([]faults.Schedule, pods)
	for _, f := range opts.Faults.Faults {
		if f.Kind != faults.NodeCrash {
			return nil, nil, fmt.Errorf("core: fault kind %q targets a pod-local link; multi-pod captures take nodeCrash plus InterPodFaults", f.Kind)
		}
		p := f.Worker / spec.Workers
		if f.Worker < 0 || p >= pods {
			return nil, nil, fmt.Errorf("core: fault worker index %d out of range (%d pods × %d workers)",
				f.Worker, pods, spec.Workers)
		}
		lf := f
		lf.Worker = f.Worker % spec.Workers
		podFaults[p].Faults = append(podFaults[p].Faults, lf)
	}
	for p, s := range podFaults {
		if err := faults.Inject(clusters[p], s); err != nil {
			return nil, nil, fmt.Errorf("schedule faults on pod %d: %w", p, err)
		}
	}
	for _, f := range opts.InterPodFaults {
		recover := sim.Time(0)
		if f.DurationNs > 0 {
			recover = sim.Time(f.AtNs + f.DurationNs)
		}
		if err := ip.SchedulePairFault(f.SrcPod, f.DstPod, sim.Time(f.AtNs), recover); err != nil {
			return nil, nil, fmt.Errorf("schedule inter-pod fault: %w", err)
		}
	}

	// Strict mode: one read-only checker per pod, swept from the barrier
	// hook (no shard goroutine in flight there) at a deterministic
	// processed-event cadence, plus the fabric's conservation check.
	var checkers []*invariants.Checker
	var tracer *telemetry.Tracer
	if tel != nil {
		tracer = tel.Trace
	}
	if opts.StrictChecks || invariants.BuildEnabled {
		for p := 0; p < pods; p++ {
			checkers = append(checkers, invariants.Attach(clusters[p], invariants.Options{Tracer: tracer}))
		}
		var lastSweep uint64
		sched.SetBarrierHook(func() error {
			if done := sched.ProcessedTotal(); done-lastSweep >= sweepEveryEvents {
				lastSweep = done
				for _, ck := range checkers {
					if err := ck.Sweep(); err != nil {
						return err
					}
				}
				return invariants.CheckInterPod(ip, int64(sched.Now()), tracer)
			}
			return nil
		})
	}

	// Each pod runs its slice of the workload list (striped: run i goes
	// to pod i % pods) strictly sequentially, exactly like the serial
	// harness; after a pod's last run, the cross-pod copy of its final
	// output is sent through the fabric.
	results := make([]workload.RunResult, len(runSpecs))
	podRuns := make([][]int, pods)
	for i := range runSpecs {
		podRuns[i%pods] = append(podRuns[i%pods], i)
	}
	crossPod := func(p int, last workload.RunResult) {
		dst := -1
		switch spec.CrossPod {
		case "", "ring":
			dst = (p + 1) % pods
		case "fanin":
			if p != 0 {
				dst = 0
			}
		}
		if dst < 0 || dst == p {
			return
		}
		var size int64
		for _, round := range last.Rounds {
			size += round.OutputBytes
		}
		if size <= 0 {
			return
		}
		src := clusters[p].Workers()[0]
		dstHosts := clusters[dst].Workers()
		err := ip.Send(netsim.TransferSpec{
			SrcPod: p, DstPod: dst,
			Src: src, Dst: dstHosts[len(dstHosts)-1],
			SizeBytes: size,
			Label:     fmt.Sprintf("distcp/%d-%d", p, dst),
		})
		if err != nil {
			panic(fmt.Sprintf("core: cross-pod copy %d→%d: %v", p, dst, err))
		}
	}
	var launch func(p, k int) error
	launch = func(p, k int) error {
		if k == len(podRuns[p]) {
			return nil
		}
		i := podRuns[p][k]
		rs := runSpecs[i]
		if rs.JobName == "" {
			rs.JobName = fmt.Sprintf("%s%d", rs.Profile, i)
		}
		return workload.Run(clusters[p], rs, i, func(res workload.RunResult) {
			results[i] = res
			if k+1 < len(podRuns[p]) {
				if err := launch(p, k+1); err != nil {
					panic(fmt.Sprintf("core: launch run %d on pod %d: %v", podRuns[p][k+1], p, err))
				}
				return
			}
			crossPod(p, res)
		})
	}
	for p := 0; p < pods; p++ {
		clusters[p].Start()
		if err := launch(p, 0); err != nil {
			return nil, nil, fmt.Errorf("launch first run on pod %d: %w", p, err)
		}
	}

	// Advance all pods window by window until every pod is idle and the
	// fabric has no transfer in flight, then tear down and drain exactly
	// like the serial RunToIdle.
	done := func() bool {
		for _, c := range clusters {
			if c.Pending() > 0 {
				return false
			}
		}
		return ip.Pending() == 0
	}
	end, err := sched.RunWindows(done)
	if err != nil {
		return nil, nil, fmt.Errorf("simulate: %w", err)
	}
	for _, c := range clusters {
		c.FS.Shutdown()
		c.RM.Shutdown()
	}
	if _, err := sched.Drain(); err != nil {
		return nil, nil, fmt.Errorf("drain: %w", err)
	}

	faultFree := len(opts.Failures) == 0 && len(opts.Faults.Faults) == 0 && len(opts.InterPodFaults) == 0
	for p, ck := range checkers {
		if err := ck.Final(captures[p], faultFree); err != nil {
			return nil, nil, fmt.Errorf("pod %d: %w", p, err)
		}
	}
	if len(checkers) > 0 {
		if err := invariants.CheckInterPod(ip, int64(end), tracer); err != nil {
			return nil, nil, err
		}
	}
	if tel != nil {
		tel.Core.Captures.Inc()
		tel.Core.CaptureSimNs.SetMax(float64(end))
		tel.Core.CaptureWallMs.Add(float64(time.Since(wallStart).Milliseconds()))
		tel.Trace.Add(telemetry.Span{Cat: "core", Name: "capture", Attr: spec.Topology, EndNs: int64(end)})
	}

	// Merge ground truth in pod order — each pod's records are already in
	// its own completion order, and the concatenation is independent of
	// engine layout — then reduce exactly like a single-pod capture.
	var truth []pcap.FlowRecord
	for _, cap := range captures {
		truth = append(truth, cap.Truth()...)
	}
	ts, err := reduceCapture(spec, truth, results)
	if err != nil {
		return nil, nil, err
	}
	ts.BackgroundHosts = spec.Workers * pods
	var stats CaptureStats
	for _, c := range clusters {
		stats.ReReplicatedBytes += c.FS.ReReplicatedBytes
		stats.ReReplicatedBlocks += c.FS.ReReplicatedBlocks
		stats.LostContainers += c.RM.LostContainers
		stats.LostBlocks += c.FS.LostBlocks
		stats.PipelineRecoveries += c.FS.PipelineRecoveries
		stats.ReadRetries += c.FS.ReadRetries
		stats.AbortedFlows += int64(c.Net.AbortedFlows())
	}
	ipStats := ip.Stats()
	stats.InterPodTransfers = ipStats.Completed
	stats.InterPodRelayed = ipStats.Relayed
	stats.InterPodAborted = ipStats.Aborted
	stats.InterPodBytes = ipStats.Stage2Bytes
	ts.Stats = stats
	return ts, results, nil
}
