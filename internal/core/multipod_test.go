package core

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"keddah/internal/faults"
	"keddah/internal/telemetry"
	"keddah/internal/workload"
)

// multiPodOutput runs one multi-pod capture at the given engine layout
// and GOMAXPROCS and returns every deterministic artifact concatenated:
// the TraceSet JSON, the flow CSV, and the telemetry snapshot JSON.
// Byte-equality of this string across layouts is the lockstep criterion.
func multiPodOutput(t *testing.T, spec ClusterSpec, runs []workload.RunSpec, opts CaptureOpts, shards, procs int) (string, *TraceSet) {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	tel := telemetry.New()
	o := opts
	o.Telemetry = tel
	o.Shards = &shards
	ts, results, err := CaptureWith(spec, runs, o)
	if err != nil {
		t.Fatalf("capture (shards=%d procs=%d): %v", shards, procs, err)
	}
	if len(results) != len(runs) {
		t.Fatalf("capture returned %d results for %d runs", len(results), len(runs))
	}
	var buf bytes.Buffer
	if err := ts.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := WriteFlowCSV(&buf, ts); err != nil {
		t.Fatal(err)
	}
	snap, err := json.Marshal(tel.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(snap)
	return buf.String(), ts
}

// lockstep compares a serial-layout reference against sharded layouts at
// several GOMAXPROCS settings.
func lockstep(t *testing.T, spec ClusterSpec, runs []workload.RunSpec, opts CaptureOpts, layouts []int, procs []int) *TraceSet {
	t.Helper()
	ref, ts := multiPodOutput(t, spec, runs, opts, 0, 1)
	for _, shards := range layouts {
		for _, p := range procs {
			if got, _ := multiPodOutput(t, spec, runs, opts, shards, p); got != ref {
				t.Errorf("shards=%d GOMAXPROCS=%d diverged from serial layout (ref %d bytes, got %d bytes)",
					shards, p, len(ref), len(got))
			}
		}
	}
	return ts
}

// TestMultiPodLockstep256 is the acceptance-criteria run: a 256-worker
// (8 pods × 32 workers) capture, byte-identical TraceSet, flow CSV and
// telemetry snapshot between the serial layout and the fully sharded
// layout at GOMAXPROCS ∈ {1, 2, 8}.
func TestMultiPodLockstep256(t *testing.T) {
	if testing.Short() {
		t.Skip("256-worker capture in -short mode")
	}
	spec := ClusterSpec{
		Topology: "star", Workers: 32, Pods: 8,
		CrossPod: "ring", Seed: 7,
	}
	runs := make([]workload.RunSpec, 8)
	for i := range runs {
		runs[i] = workload.RunSpec{Profile: "terasort", InputBytes: 32 << 20}
	}
	ts := lockstep(t, spec, runs, CaptureOpts{}, []int{-1}, []int{1, 2, 8})
	if len(ts.Runs) != 8 {
		t.Fatalf("got %d runs, want 8", len(ts.Runs))
	}
	if ts.BackgroundHosts != 256 {
		t.Fatalf("background hosts %d, want 256", ts.BackgroundHosts)
	}
	if ts.Stats.InterPodTransfers != 8 {
		t.Fatalf("ring cross-pod transfers %d, want 8", ts.Stats.InterPodTransfers)
	}
	if ts.Stats.InterPodBytes <= 0 {
		t.Fatal("no inter-pod bytes crossed the fabric")
	}
}

// TestMultiPodLockstepChaos covers the fault paths on both transports:
// a permanent worker failure, a transient node crash, and an inter-pod
// pair outage forcing a relay — still byte-identical across layouts.
func TestMultiPodLockstepChaos(t *testing.T) {
	for _, transport := range []string{"fluid", "tcp"} {
		spec := ClusterSpec{
			Topology: "star", Workers: 8, Pods: 4,
			CrossPod: "ring", Transport: transport, Seed: 11,
		}
		runs := []workload.RunSpec{
			{Profile: "terasort", InputBytes: 16 << 20},
			{Profile: "wordcount", InputBytes: 16 << 20},
			{Profile: "terasort", InputBytes: 8 << 20},
			{Profile: "wordcount", InputBytes: 8 << 20},
		}
		opts := CaptureOpts{
			StrictChecks: true,
			// Worker 9 = pod 1 / local 1; crash worker 20 = pod 2 / local 4.
			Failures: []FailureSpec{{WorkerIndex: 9, AtNs: 3e9}},
			Faults: faults.Schedule{Faults: []faults.Fault{
				{Kind: faults.NodeCrash, Worker: 20, AtNs: 2e9, DurationNs: 40e9},
			}},
			InterPodFaults: []InterPodFault{
				{SrcPod: 0, DstPod: 1, AtNs: 1, DurationNs: 0}, // permanent: relays via pod 2 or 3
			},
		}
		ts := lockstep(t, spec, runs, opts, []int{-1, 2}, []int{2})
		if ts.Stats.InterPodRelayed == 0 {
			t.Errorf("%s: pair 0-1 down but no transfer relayed", transport)
		}
	}
}

// TestMultiPodRelayReroute: the inter-pod pair carrying the ring copy
// goes down permanently; the transfer must detour through the third pod
// and still complete.
func TestMultiPodRelayReroute(t *testing.T) {
	spec := ClusterSpec{
		Topology: "star", Workers: 4, Pods: 3,
		CrossPod: "ring", Seed: 3,
	}
	runs := []workload.RunSpec{
		{Profile: "terasort", InputBytes: 8 << 20},
		{Profile: "terasort", InputBytes: 8 << 20},
		{Profile: "terasort", InputBytes: 8 << 20},
	}
	opts := CaptureOpts{
		StrictChecks:   true,
		InterPodFaults: []InterPodFault{{SrcPod: 0, DstPod: 1, AtNs: 1}},
	}
	ts := lockstep(t, spec, runs, opts, []int{-1}, []int{2})
	if ts.Stats.InterPodTransfers != 3 {
		t.Fatalf("transfers %d, want 3 (ring of 3 pods)", ts.Stats.InterPodTransfers)
	}
	if ts.Stats.InterPodRelayed != 1 {
		t.Fatalf("relayed %d, want exactly the 0→1 copy", ts.Stats.InterPodRelayed)
	}
	if ts.Stats.InterPodAborted != 0 {
		t.Fatalf("aborted %d, want 0", ts.Stats.InterPodAborted)
	}
}

// TestMultiPodAbortedTransfer: two pods, the only pair down, no relay
// exists — the cross-pod copy aborts mid-capture and the session still
// converges with the abort on the books.
func TestMultiPodAbortedTransfer(t *testing.T) {
	spec := ClusterSpec{
		Topology: "star", Workers: 4, Pods: 2,
		CrossPod: "ring", Seed: 5,
	}
	runs := []workload.RunSpec{
		{Profile: "terasort", InputBytes: 8 << 20},
		{Profile: "terasort", InputBytes: 8 << 20},
	}
	opts := CaptureOpts{
		StrictChecks:   true,
		InterPodFaults: []InterPodFault{{SrcPod: 0, DstPod: 1, AtNs: 1}},
	}
	ts := lockstep(t, spec, runs, opts, []int{-1}, []int{2})
	if ts.Stats.InterPodAborted != 2 {
		t.Fatalf("aborted %d, want both ring copies", ts.Stats.InterPodAborted)
	}
	if ts.Stats.InterPodTransfers != 0 || ts.Stats.InterPodBytes != 0 {
		t.Fatalf("transfers %d bytes %d, want none to complete", ts.Stats.InterPodTransfers, ts.Stats.InterPodBytes)
	}
}

// TestMultiPodSkewedFanIn: every pod's copy lands in pod 0 — the
// skewed-reducer shape the per-pod Reserve sizing must absorb (strict
// checks verify flow-state invariants while pod 0 holds the full fan-in).
func TestMultiPodSkewedFanIn(t *testing.T) {
	spec := ClusterSpec{
		Topology: "star", Workers: 4, Pods: 4,
		CrossPod: "fanin", Seed: 9,
	}
	runs := []workload.RunSpec{
		{Profile: "terasort", InputBytes: 8 << 20},
		{Profile: "terasort", InputBytes: 8 << 20},
		{Profile: "terasort", InputBytes: 8 << 20},
		{Profile: "terasort", InputBytes: 8 << 20},
	}
	ts := lockstep(t, spec, runs, CaptureOpts{StrictChecks: true}, []int{-1}, []int{2})
	if ts.Stats.InterPodTransfers != 3 {
		t.Fatalf("fan-in transfers %d, want 3 (pods 1..3 → pod 0)", ts.Stats.InterPodTransfers)
	}
	// All fabric ingress lands in pod 0's capture: its truth must hold
	// three distcp ingress legs.
	ingress := 0
	for _, r := range ts.Background {
		if len(r.Label) >= 6 && r.Label[:6] == "distcp" {
			ingress++
		}
	}
	if ingress != 6 { // 3 egress + 3 ingress legs
		t.Fatalf("distcp background flows %d, want 6", ingress)
	}
}

// TestMultiPodValidation exercises the option/spec error paths.
func TestMultiPodValidation(t *testing.T) {
	base := ClusterSpec{Topology: "star", Workers: 4, Pods: 2, Seed: 1}
	runs := []workload.RunSpec{{Profile: "terasort", InputBytes: 4 << 20}}

	bad := base
	bad.Shards = 3 // > pods
	if _, _, err := Capture(bad, runs); err == nil {
		t.Error("shards > pods accepted")
	}
	bad = base
	bad.CrossPod = "mesh"
	if _, _, err := Capture(bad, runs); err == nil {
		t.Error("unknown cross-pod mode accepted")
	}
	if _, _, err := CaptureWith(base, runs, CaptureOpts{
		Faults: faults.Schedule{Faults: []faults.Fault{{Kind: faults.LinkDown, Link: 1, AtNs: 1, DurationNs: 10}}},
	}); err == nil {
		t.Error("link fault accepted in multi-pod capture")
	}
	if _, _, err := CaptureWith(base, runs, CaptureOpts{
		Failures: []FailureSpec{{WorkerIndex: 8, AtNs: 1}},
	}); err == nil {
		t.Error("out-of-range global worker index accepted")
	}
	if _, _, err := CaptureWith(base, runs, CaptureOpts{
		InterPodFaults: []InterPodFault{{SrcPod: 0, DstPod: 2, AtNs: 1}},
	}); err == nil {
		t.Error("out-of-range inter-pod fault accepted")
	}
	single := base
	single.Pods = 1
	if _, _, err := CaptureWith(single, runs, CaptureOpts{
		InterPodFaults: []InterPodFault{{SrcPod: 0, DstPod: 1, AtNs: 1}},
	}); err == nil {
		t.Error("inter-pod faults accepted on a single-pod capture")
	}
}

func TestResolveShards(t *testing.T) {
	cases := []struct {
		pods, shards, want int
		ok                 bool
	}{
		{4, 0, 1, true},
		{4, -1, 4, true},
		{4, 2, 2, true},
		{4, 4, 4, true},
		{4, 5, 0, false},
		{4, -2, 0, false},
	}
	for _, c := range cases {
		got, err := resolveShards(c.pods, c.shards)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("resolveShards(%d, %d) = %d, %v; want %d, ok=%v", c.pods, c.shards, got, err, c.want, c.ok)
		}
	}
}

// TestReplayShardedLockstep: a replay routed through the windowed
// scheduler (Shards != 0) reproduces the plain engine's records exactly.
func TestReplayShardedLockstep(t *testing.T) {
	schedule := []SynthFlow{
		{StartNs: 0, SrcHost: 0, DstHost: 1, SrcPort: 40001, DstPort: 50010, Bytes: 1 << 20, Job: "j0", Phase: "shuffle"},
		{StartNs: 5e6, SrcHost: 2, DstHost: 1, SrcPort: 40002, DstPort: 50010, Bytes: 2 << 20, Job: "j0", Phase: "shuffle"},
		{StartNs: 9e6, SrcHost: 1, DstHost: 3, SrcPort: 40003, DstPort: 50020, Bytes: 512 << 10, Job: "j1", Phase: "output"},
	}
	cluster := ClusterSpec{Topology: "star", Workers: 4, Seed: 1}
	refRecs, refEnd, err := Replay(schedule, cluster)
	if err != nil {
		t.Fatal(err)
	}
	sharded := cluster
	sharded.Shards = -1
	recs, end, err := Replay(schedule, sharded)
	if err != nil {
		t.Fatal(err)
	}
	if end != refEnd {
		t.Fatalf("sharded replay end %v, serial %v", end, refEnd)
	}
	if len(recs) != len(refRecs) {
		t.Fatalf("sharded replay captured %d records, serial %d", len(recs), len(refRecs))
	}
	for i := range recs {
		if recs[i] != refRecs[i] {
			t.Fatalf("record %d diverged:\nserial:  %+v\nsharded: %+v", i, refRecs[i], recs[i])
		}
	}
}
