package core

import (
	"reflect"
	"testing"

	"keddah/internal/telemetry"
)

// TestStrictChecksLockstep is the read-only guarantee of the invariants
// layer: a strictly checked capture — with or without telemetry, fault
// free or under the chaos schedule — must produce a TraceSet that is
// record-identical to the unchecked one. The checks may only observe.
func TestStrictChecksLockstep(t *testing.T) {
	spec, runs := chaosSpecAndRuns()
	cases := []struct {
		name string
		bare CaptureOpts
	}{
		{name: "fault-free", bare: CaptureOpts{}},
		{name: "chaos schedule", bare: CaptureOpts{Faults: chaosSchedule()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plain, _, err := CaptureWith(spec, runs, tc.bare)
			if err != nil {
				t.Fatal(err)
			}
			strictOpts := tc.bare
			strictOpts.StrictChecks = true
			strict, _, err := CaptureWith(spec, runs, strictOpts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain, strict) {
				t.Error("strict checks changed the capture")
			}
			telOpts := strictOpts
			telOpts.Telemetry = telemetry.New()
			both, _, err := CaptureWith(spec, runs, telOpts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain, both) {
				t.Error("strict checks with telemetry changed the capture")
			}
		})
	}
}
