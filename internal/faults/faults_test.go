package faults

import (
	"reflect"
	"testing"
)

func TestValidateRejectsBadSchedules(t *testing.T) {
	cases := []struct {
		name string
		s    Schedule
	}{
		{"unknown kind", Schedule{Faults: []Fault{{Kind: "meteorStrike", AtNs: 1, DurationNs: 1}}}},
		{"link out of range", Schedule{Faults: []Fault{{Kind: LinkDown, Link: 10, AtNs: 1, DurationNs: 1}}}},
		{"negative link", Schedule{Faults: []Fault{{Kind: LinkDown, Link: -1, AtNs: 1, DurationNs: 1}}}},
		{"worker out of range", Schedule{Faults: []Fault{{Kind: NodeCrash, Worker: 4, AtNs: 1, DurationNs: 1}}}},
		{"negative time", Schedule{Faults: []Fault{{Kind: LinkDown, Link: 1, AtNs: -1, DurationNs: 1}}}},
		{"zero duration", Schedule{Faults: []Fault{{Kind: LinkDown, Link: 1, AtNs: 1, DurationNs: 0}}}},
		{"degrade factor zero", Schedule{Faults: []Fault{{Kind: LinkDegrade, Link: 1, AtNs: 1, DurationNs: 1}}}},
		{"degrade factor above one", Schedule{Faults: []Fault{{Kind: LinkDegrade, Link: 1, AtNs: 1, DurationNs: 1, Factor: 1.5}}}},
		{"overlap on one link", Schedule{Faults: []Fault{
			{Kind: LinkDown, Link: 1, AtNs: 0, DurationNs: 10},
			{Kind: LinkDegrade, Link: 1, AtNs: 5, DurationNs: 10, Factor: 0.5},
		}}},
		{"overlap on one worker", Schedule{Faults: []Fault{
			{Kind: NodeCrash, Worker: 2, AtNs: 0, DurationNs: 10},
			{Kind: NodeCrash, Worker: 2, AtNs: 9, DurationNs: 10},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.s.Validate(10, 4); err == nil {
				t.Error("bad schedule validated")
			}
		})
	}
	good := Schedule{Faults: []Fault{
		{Kind: LinkDown, Link: 1, AtNs: 0, DurationNs: 10},
		{Kind: LinkDown, Link: 1, AtNs: 10, DurationNs: 10}, // back-to-back is fine
		{Kind: LinkDown, Link: 2, AtNs: 5, DurationNs: 10},  // overlap on another link is fine
		{Kind: NodeCrash, Worker: 2, AtNs: 5, DurationNs: 10},
	}}
	if err := good.Validate(10, 4); err != nil {
		t.Errorf("good schedule rejected: %v", err)
	}
	if !(Schedule{}).Empty() {
		t.Error("zero schedule not empty")
	}
}

func TestRandomDeterministicAndValid(t *testing.T) {
	opts := RandomOpts{N: 12, Links: 8, Workers: 6}
	a := Random(42, opts)
	b := Random(42, opts)
	if !reflect.DeepEqual(a, b) {
		t.Error("equal seeds produced different schedules")
	}
	if len(a.Faults) == 0 {
		t.Fatal("random schedule is empty")
	}
	if err := a.Validate(8, 6); err != nil {
		t.Errorf("random schedule does not validate: %v", err)
	}
	if c := Random(43, opts); reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical schedules")
	}
	// Kind restriction holds.
	crashes := Random(7, RandomOpts{N: 5, Kinds: []Kind{NodeCrash}, Workers: 3})
	for _, f := range crashes.Faults {
		if f.Kind != NodeCrash {
			t.Errorf("restricted draw produced kind %s", f.Kind)
		}
	}
}

func TestScheduleForWrongClusterRejected(t *testing.T) {
	// A schedule drawn for a large fabric but validated against a small
	// one must error — Inject delegates to the same check, so a stale
	// schedule fails at injection time instead of panicking mid-run.
	s := Random(1, RandomOpts{N: 8, Kinds: []Kind{LinkDown}, Links: 50})
	if len(s.Faults) == 0 {
		t.Fatal("random schedule is empty")
	}
	if err := s.Validate(2, 1); err == nil {
		t.Error("oversized link indices validated against a 2-link fabric")
	}
}
