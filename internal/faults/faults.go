// Package faults is the unified fault-injection subsystem: a declarative,
// seedable schedule of link faults (down/up, capacity degradation) and
// transient node crashes with rejoin, applied to a simulated Hadoop
// cluster. Faults surface to the stack through the substrates' own
// recovery machinery — flow aborts and reroutes in netsim, write-pipeline
// recovery and read retries in HDFS, heartbeat-expiry detection and NM
// re-registration in YARN, shuffle fetch retry and blacklisting in
// MapReduce — so a chaos capture contains exactly the retry/recovery
// traffic a degraded physical cluster would.
//
// Injection is bit-deterministic: an empty Schedule leaves the cluster's
// event and RNG sequences untouched, and equal seeds with equal schedules
// reproduce identical traces.
package faults

import (
	"fmt"

	"keddah/internal/hadoop"
	"keddah/internal/netsim"
	"keddah/internal/sim"
	"keddah/internal/stats"
	"keddah/internal/telemetry"
)

// Kind selects the fault mechanism.
type Kind string

// The supported fault kinds.
const (
	// LinkDown takes a link (both directions) out of service: routes are
	// recomputed, in-flight flows re-route where an alternate path exists
	// and abort otherwise, and new flows toward partitioned destinations
	// time out like a failed TCP connect.
	LinkDown Kind = "linkDown"
	// LinkDegrade scales a link's capacity (both directions) by Factor —
	// the brown-out regime of a flapping optic or saturated middlebox.
	LinkDegrade Kind = "linkDegrade"
	// NodeCrash takes a whole worker down — network, DataNode and
	// NodeManager — and rejoins it after the duration, exercising
	// detection timers, re-registration and task re-execution.
	NodeCrash Kind = "nodeCrash"
)

// Fault is one scheduled fault on one target.
type Fault struct {
	Kind Kind `json:"kind"`
	// Link is the directed link index for link faults; the reverse
	// direction is faulted in lockstep.
	Link int `json:"link,omitempty"`
	// Worker is the worker index for node faults.
	Worker int `json:"worker,omitempty"`
	// AtNs is the injection time; DurationNs is how long the fault
	// lasts before healing.
	AtNs       int64 `json:"atNs"`
	DurationNs int64 `json:"durationNs"`
	// Factor is the LinkDegrade capacity multiplier in (0, 1].
	Factor float64 `json:"factor,omitempty"`
}

// Schedule is a set of faults to inject into one capture session. The
// zero value is the healthy schedule: injecting it is a guaranteed no-op.
type Schedule struct {
	Faults []Fault `json:"faults,omitempty"`
}

// Empty reports whether the schedule injects nothing.
func (s Schedule) Empty() bool { return len(s.Faults) == 0 }

// target keys faults that contend for the same resource.
func (f Fault) target() string {
	switch f.Kind {
	case LinkDown, LinkDegrade:
		return fmt.Sprintf("link:%d", f.Link)
	default:
		return fmt.Sprintf("worker:%d", f.Worker)
	}
}

// Validate checks every fault against the cluster dimensions and rejects
// overlapping faults on the same target (whose heal events would race).
func (s Schedule) Validate(links, workers int) error {
	for i, f := range s.Faults {
		switch f.Kind {
		case LinkDown, LinkDegrade:
			if f.Link < 0 || f.Link >= links {
				return fmt.Errorf("faults: fault %d: link %d out of range [0,%d)", i, f.Link, links)
			}
		case NodeCrash:
			if f.Worker < 0 || f.Worker >= workers {
				return fmt.Errorf("faults: fault %d: worker %d out of range [0,%d)", i, f.Worker, workers)
			}
		default:
			return fmt.Errorf("faults: fault %d: unknown kind %q", i, f.Kind)
		}
		if f.AtNs < 0 {
			return fmt.Errorf("faults: fault %d: negative injection time %d", i, f.AtNs)
		}
		if f.DurationNs <= 0 {
			return fmt.Errorf("faults: fault %d: non-positive duration %d", i, f.DurationNs)
		}
		if f.Kind == LinkDegrade && (f.Factor <= 0 || f.Factor > 1) {
			return fmt.Errorf("faults: fault %d: degrade factor %v outside (0,1]", i, f.Factor)
		}
		for k, g := range s.Faults[:i] {
			if f.target() != g.target() {
				continue
			}
			if f.AtNs < g.AtNs+g.DurationNs && g.AtNs < f.AtNs+f.DurationNs {
				return fmt.Errorf("faults: faults %d and %d overlap on %s", k, i, f.target())
			}
		}
	}
	return nil
}

// Inject schedules every fault of s onto the cluster. It validates the
// schedule against the cluster's link and worker counts first, so a bad
// schedule errors here instead of panicking mid-simulation. Call before
// Cluster.RunToIdle. An empty schedule schedules nothing.
func Inject(c *hadoop.Cluster, s Schedule) error {
	topo := c.Net.Topology()
	workers := c.Workers()
	if err := s.Validate(topo.NumLinks(), len(workers)); err != nil {
		return err
	}
	tel := c.Telemetry()
	for _, f := range s.Faults {
		f := f
		at := sim.Time(f.AtNs)
		heal := sim.Time(f.AtNs + f.DurationNs)
		record(tel, f)
		switch f.Kind {
		case LinkDown:
			lid := netsim.LinkID(f.Link)
			rev := topo.ReverseLink(lid)
			if _, err := c.Eng.At(at, func() { inject(tel, f); setLinkPair(c.Net, lid, rev, false) }); err != nil {
				return fmt.Errorf("faults: schedule %s: %w", f.target(), err)
			}
			if _, err := c.Eng.At(heal, func() { healed(tel, f); setLinkPair(c.Net, lid, rev, true) }); err != nil {
				return fmt.Errorf("faults: schedule %s heal: %w", f.target(), err)
			}
		case LinkDegrade:
			lid := netsim.LinkID(f.Link)
			rev := topo.ReverseLink(lid)
			if _, err := c.Eng.At(at, func() { inject(tel, f); scaleLinkPair(c.Net, lid, rev, f.Factor) }); err != nil {
				return fmt.Errorf("faults: schedule %s: %w", f.target(), err)
			}
			if _, err := c.Eng.At(heal, func() { healed(tel, f); scaleLinkPair(c.Net, lid, rev, 1) }); err != nil {
				return fmt.Errorf("faults: schedule %s heal: %w", f.target(), err)
			}
		case NodeCrash:
			if err := c.CrashWorker(workers[f.Worker], at, heal); err != nil {
				return fmt.Errorf("faults: schedule %s: %w", f.target(), err)
			}
			// CrashWorker schedules its own events; bracket them with the
			// counters at the same instants.
			if _, err := c.Eng.At(at, func() { inject(tel, f) }); err != nil {
				return fmt.Errorf("faults: schedule %s: %w", f.target(), err)
			}
			if _, err := c.Eng.At(heal, func() { healed(tel, f) }); err != nil {
				return fmt.Errorf("faults: schedule %s heal: %w", f.target(), err)
			}
		}
	}
	return nil
}

// record adds the fault's lifetime as a span; injection counters fire at
// the scheduled instants via inject/healed.
func record(tel *telemetry.Telemetry, f Fault) {
	if tel == nil {
		return
	}
	tel.Trace.Add(telemetry.Span{
		Cat: "fault", Name: string(f.Kind), Attr: f.target(),
		StartNs: f.AtNs, EndNs: f.AtNs + f.DurationNs,
	})
}

func inject(tel *telemetry.Telemetry, f Fault) {
	if tel != nil {
		tel.Fault.Injected(string(f.Kind)).Inc()
	}
}

func healed(tel *telemetry.Telemetry, f Fault) {
	if tel != nil {
		tel.Fault.Healed(string(f.Kind)).Inc()
	}
}

// setLinkPair flips both directions of a link; a missing reverse (never
// the case for Connect-built fabrics) is skipped.
func setLinkPair(net *netsim.Network, lid, rev netsim.LinkID, up bool) {
	if err := net.SetLinkState(lid, up); err != nil {
		panic(fmt.Sprintf("faults: set link state: %v", err))
	}
	if rev >= 0 {
		if err := net.SetLinkState(rev, up); err != nil {
			panic(fmt.Sprintf("faults: set link state: %v", err))
		}
	}
}

// scaleLinkPair rescales both directions of a link's capacity.
func scaleLinkPair(net *netsim.Network, lid, rev netsim.LinkID, factor float64) {
	if err := net.SetLinkCapacityScale(lid, factor); err != nil {
		panic(fmt.Sprintf("faults: scale link: %v", err))
	}
	if rev >= 0 {
		if err := net.SetLinkCapacityScale(rev, factor); err != nil {
			panic(fmt.Sprintf("faults: scale link: %v", err))
		}
	}
}

// RandomOpts parameterises Random schedule generation.
type RandomOpts struct {
	// N is the fault count to generate.
	N int
	// Kinds restricts the kinds drawn (default: all three).
	Kinds []Kind
	// Links / Workers are the target pool sizes (the cluster's directed
	// link count and worker count).
	Links   int
	Workers int
	// WindowStartNs / WindowEndNs bound injection times (default window
	// end: 60 s).
	WindowStartNs int64
	WindowEndNs   int64
	// MinDurationNs / MaxDurationNs bound fault durations (defaults 3 s
	// and 10 s).
	MinDurationNs int64
	MaxDurationNs int64
	// MinFactor / MaxFactor bound LinkDegrade factors (defaults 0.1, 0.5).
	MinFactor float64
	MaxFactor float64
}

func (o *RandomOpts) applyDefaults() {
	if len(o.Kinds) == 0 {
		o.Kinds = []Kind{LinkDown, LinkDegrade, NodeCrash}
	}
	if o.WindowEndNs <= o.WindowStartNs {
		o.WindowEndNs = o.WindowStartNs + 60_000_000_000
	}
	if o.MinDurationNs <= 0 {
		o.MinDurationNs = 3_000_000_000
	}
	if o.MaxDurationNs < o.MinDurationNs {
		o.MaxDurationNs = o.MinDurationNs + 7_000_000_000
	}
	if o.MinFactor <= 0 {
		o.MinFactor = 0.1
	}
	if o.MaxFactor < o.MinFactor {
		o.MaxFactor = 0.5
	}
}

// Random generates a deterministic schedule from seed: equal seeds and
// options produce identical schedules. Draws that would overlap an
// already-placed fault on the same target are re-drawn a bounded number
// of times and dropped if space cannot be found, so the result always
// validates.
func Random(seed int64, opts RandomOpts) Schedule {
	opts.applyDefaults()
	rng := stats.NewRNG(seed)
	var s Schedule
	for i := 0; i < opts.N; i++ {
		for try := 0; try < 64; try++ {
			f := draw(rng, opts)
			ok := true
			for _, g := range s.Faults {
				if f.target() != g.target() {
					continue
				}
				if f.AtNs < g.AtNs+g.DurationNs && g.AtNs < f.AtNs+f.DurationNs {
					ok = false
					break
				}
			}
			if ok {
				s.Faults = append(s.Faults, f)
				break
			}
		}
	}
	return s
}

// draw samples one fault uniformly within the option bounds.
func draw(rng *stats.RNG, opts RandomOpts) Fault {
	f := Fault{Kind: opts.Kinds[rng.Intn(len(opts.Kinds))]}
	span := opts.WindowEndNs - opts.WindowStartNs
	f.AtNs = opts.WindowStartNs + int64(rng.Float64()*float64(span))
	durSpan := opts.MaxDurationNs - opts.MinDurationNs
	f.DurationNs = opts.MinDurationNs + int64(rng.Float64()*float64(durSpan))
	switch f.Kind {
	case LinkDown, LinkDegrade:
		f.Link = rng.Intn(opts.Links)
	case NodeCrash:
		f.Worker = rng.Intn(opts.Workers)
	}
	if f.Kind == LinkDegrade {
		f.Factor = opts.MinFactor + rng.Float64()*(opts.MaxFactor-opts.MinFactor)
	}
	return f
}
