package faults

import "testing"

// FuzzFaultScheduleValidate checks the generator/validator contract
// under arbitrary options: whatever the bounds, Random must neither
// panic nor emit a schedule its own Validate rejects (Inject relies on
// this to fail fast instead of mid-simulation), and equal seeds must
// reproduce the schedule exactly.
func FuzzFaultScheduleValidate(f *testing.F) {
	f.Add(int64(1), 4, 16, 8, int64(0), int64(60_000_000_000))
	f.Add(int64(99), 0, 1, 1, int64(-5), int64(-5))
	f.Add(int64(-7), 32, 3, 100, int64(1_000_000_000), int64(500_000_000))
	f.Fuzz(func(t *testing.T, seed int64, n, links, workers int, winStart, winEnd int64) {
		if n < 0 || n > 64 || links < 1 || links > 1<<20 || workers < 1 || workers > 1<<20 {
			t.Skip()
		}
		opts := RandomOpts{
			N:             n,
			Links:         links,
			Workers:       workers,
			WindowStartNs: winStart,
			WindowEndNs:   winEnd,
		}
		if winStart < 0 {
			// Negative injection times are invalid by construction; the
			// generator does not defend against a caller asking for them.
			t.Skip()
		}
		s := Random(seed, opts)
		if err := s.Validate(links, workers); err != nil {
			t.Fatalf("Random(%d, %+v) emitted an invalid schedule: %v", seed, opts, err)
		}
		if len(s.Faults) > n {
			t.Fatalf("asked for %d faults, got %d", n, len(s.Faults))
		}
		// Determinism: the same seed and options reproduce the schedule.
		s2 := Random(seed, opts)
		if len(s2.Faults) != len(s.Faults) {
			t.Fatalf("same seed drew %d then %d faults", len(s.Faults), len(s2.Faults))
		}
		for i := range s.Faults {
			if s.Faults[i] != s2.Faults[i] {
				t.Fatalf("fault %d differs across identical draws: %+v vs %+v", i, s.Faults[i], s2.Faults[i])
			}
		}
	})
}
