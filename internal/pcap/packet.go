// Package pcap is the capture substrate of the toolchain: packet records,
// a compact binary trace format, and TCP-style flow reassembly. It plays
// the role tcpdump + post-processing play in the original Keddah pipeline:
// the simulated network is tapped, packets are synthesised from flow
// progress, written to a trace, and later reduced back to flow records for
// classification and modelling.
package pcap

import (
	"fmt"
)

// ProtoTCP is the only transport the Hadoop substrate uses.
const ProtoTCP = 6

// Addr is an IPv4-style 32-bit address.
type Addr uint32

// HostAddr maps a simulator node id to a stable 10.x address. Captures
// use the netsim NodeID as the index, so consumers translating addresses
// back to topology locations must treat HostIndex as a node id.
func HostAddr(host int) Addr {
	return Addr(0x0A_00_00_00 | uint32(host&0x00FF_FFFF))
}

// HostIndex recovers the host index from a HostAddr-assigned address.
func (a Addr) HostIndex() int { return int(uint32(a) & 0x00FF_FFFF) }

// String renders dotted-quad.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Packet is one captured record. Timestamps are nanoseconds of simulated
// time. Len is the payload byte count carried by the record; with
// GRO-style aggregation one record may represent several wire MTUs.
type Packet struct {
	TsNs    int64
	Src     Addr
	Dst     Addr
	SrcPort uint16
	DstPort uint16
	Len     uint32
	Proto   uint8
	// Flags uses TCP-style bits (SYN=0x02, FIN=0x01, ACK=0x10) so flow
	// reassembly can detect boundaries.
	Flags uint8
}

// TCP flag bits used by the synthesiser and flow table.
const (
	FlagFIN = 0x01
	FlagSYN = 0x02
	FlagRST = 0x04
	FlagACK = 0x10
)

// FlowKey is the classic 5-tuple.
type FlowKey struct {
	Src     Addr
	Dst     Addr
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// Key extracts the packet's 5-tuple.
func (p Packet) Key() FlowKey {
	return FlowKey{Src: p.Src, Dst: p.Dst, SrcPort: p.SrcPort, DstPort: p.DstPort, Proto: p.Proto}
}

// FlowRecord is a reassembled unidirectional flow.
type FlowRecord struct {
	Key     FlowKey
	FirstNs int64
	LastNs  int64
	Bytes   int64
	Packets int64
	// Label is ground truth carried by simulator-side captures; empty
	// when the record was reconstructed purely from packets.
	Label string
}

// DurationNs returns the flow's active duration in nanoseconds.
func (r FlowRecord) DurationNs() int64 { return r.LastNs - r.FirstNs }
