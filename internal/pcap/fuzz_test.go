package pcap

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzPcapReader throws arbitrary bytes at the trace reader. Whatever
// the input, the reader must not panic, must never hand back a record
// claiming more than MaxPacketLen payload, and must fail only with
// ErrBadTrace-wrapping errors. Salvage additionally must agree with the
// strict path on the decoded prefix.
func FuzzPcapReader(f *testing.F) {
	// Seed: a well-formed two-record trace from the real writer.
	var good bytes.Buffer
	w, err := NewWriter(&good)
	if err != nil {
		f.Fatal(err)
	}
	_ = w.WritePacket(Packet{TsNs: 1, Src: HostAddr(1), Dst: HostAddr(2), SrcPort: 999, DstPort: 50010, Proto: ProtoTCP, Flags: FlagSYN})
	_ = w.WritePacket(Packet{TsNs: 2, Src: HostAddr(1), Dst: HostAddr(2), SrcPort: 999, DstPort: 50010, Len: 1448, Proto: ProtoTCP, Flags: FlagACK})
	_ = w.Flush()
	f.Add(good.Bytes())
	// Seed: truncated record tail.
	f.Add(good.Bytes()[:good.Len()-5])
	// Seed: bad magic, short input.
	f.Add([]byte("BOGUS!!!"))
	f.Add([]byte("KD"))

	f.Fuzz(func(t *testing.T, data []byte) {
		strict, strictErr := func() ([]Packet, error) {
			r, err := NewReader(bytes.NewReader(data))
			if err != nil {
				return nil, err
			}
			return r.ReadAll()
		}()
		if strictErr != nil && !errors.Is(strictErr, ErrBadTrace) {
			t.Fatalf("strict read failed with non-ErrBadTrace error: %v", strictErr)
		}
		for i, p := range strict {
			if p.Len > MaxPacketLen {
				t.Fatalf("strict record %d claims %d bytes > MaxPacketLen", i, p.Len)
			}
		}

		salvaged, salvageErr := ReadAllSalvage(bytes.NewReader(data))
		if salvageErr != nil && !errors.Is(salvageErr, ErrBadTrace) {
			t.Fatalf("salvage failed with non-ErrBadTrace error: %v", salvageErr)
		}
		if (strictErr == nil) != (salvageErr == nil) {
			t.Fatalf("strict err %v but salvage err %v", strictErr, salvageErr)
		}
		// Salvage decodes exactly the records the strict path decoded
		// before the first error.
		if len(salvaged) != len(strict) {
			t.Fatalf("salvage decoded %d records, strict %d", len(salvaged), len(strict))
		}
		for i := range strict {
			if salvaged[i] != strict[i] {
				t.Fatalf("record %d differs: salvage %+v strict %+v", i, salvaged[i], strict[i])
			}
		}
	})
}
