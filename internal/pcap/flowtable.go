package pcap

import (
	"sort"
	"time"
)

// DefaultIdleTimeout splits a 5-tuple into separate flows when no packet
// is seen for this long — the usual tcptrace/Bro convention.
const DefaultIdleTimeout = 60 * time.Second

// FlowTable reassembles packets into unidirectional flow records. Feed
// packets in any order; Records sorts output by first timestamp.
type FlowTable struct {
	idleNs int64
	open   map[FlowKey]*FlowRecord
	closed []*FlowRecord
}

// NewFlowTable returns a table with the given idle split timeout
// (DefaultIdleTimeout if zero).
func NewFlowTable(idle time.Duration) *FlowTable {
	if idle <= 0 {
		idle = DefaultIdleTimeout
	}
	return &FlowTable{
		idleNs: idle.Nanoseconds(),
		open:   make(map[FlowKey]*FlowRecord),
	}
}

// Add ingests one packet. Pure ACKs (zero length, no SYN/FIN) still count
// toward packet totals but a flow is only opened by a payload or SYN
// packet, matching how capture post-processing discards stray ACK noise.
func (t *FlowTable) Add(p Packet) {
	key := p.Key()
	rec, ok := t.open[key]
	if ok && p.TsNs-rec.LastNs > t.idleNs {
		// Idle split: retire the old flow and start a new one.
		t.closed = append(t.closed, rec)
		delete(t.open, key)
		ok = false
	}
	if !ok {
		if p.Len == 0 && p.Flags&FlagSYN == 0 {
			return
		}
		rec = &FlowRecord{Key: key, FirstNs: p.TsNs, LastNs: p.TsNs}
		t.open[key] = rec
	}
	rec.Packets++
	rec.Bytes += int64(p.Len)
	if p.TsNs > rec.LastNs {
		rec.LastNs = p.TsNs
	}
	if p.TsNs < rec.FirstNs {
		rec.FirstNs = p.TsNs
	}
	if p.Flags&FlagFIN != 0 {
		t.closed = append(t.closed, rec)
		delete(t.open, key)
	}
}

// Records retires all open flows and returns every record sorted by first
// timestamp (ties broken by 5-tuple for determinism).
func (t *FlowTable) Records() []FlowRecord {
	for _, rec := range t.open {
		t.closed = append(t.closed, rec)
	}
	t.open = make(map[FlowKey]*FlowRecord)
	out := make([]FlowRecord, len(t.closed))
	for i, r := range t.closed {
		out[i] = *r
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.FirstNs != b.FirstNs {
			return a.FirstNs < b.FirstNs
		}
		if a.Key.Src != b.Key.Src {
			return a.Key.Src < b.Key.Src
		}
		if a.Key.Dst != b.Key.Dst {
			return a.Key.Dst < b.Key.Dst
		}
		if a.Key.SrcPort != b.Key.SrcPort {
			return a.Key.SrcPort < b.Key.SrcPort
		}
		return a.Key.DstPort < b.Key.DstPort
	})
	return out
}
