package pcap

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func TestHostAddrRoundTrip(t *testing.T) {
	for _, h := range []int{0, 1, 255, 4095, 1 << 20} {
		a := HostAddr(h)
		if a.HostIndex() != h {
			t.Errorf("HostAddr(%d).HostIndex() = %d", h, a.HostIndex())
		}
	}
	if got := HostAddr(0).String(); got != "10.0.0.0" {
		t.Errorf("addr string = %s, want 10.0.0.0", got)
	}
	if got := HostAddr(258).String(); got != "10.0.1.2" {
		t.Errorf("addr string = %s, want 10.0.1.2", got)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	pkts := []Packet{
		{TsNs: 1, Src: HostAddr(1), Dst: HostAddr(2), SrcPort: 1000, DstPort: 50010, Len: 0, Proto: ProtoTCP, Flags: FlagSYN},
		{TsNs: 5, Src: HostAddr(1), Dst: HostAddr(2), SrcPort: 1000, DstPort: 50010, Len: 1448, Proto: ProtoTCP, Flags: FlagACK},
		{TsNs: 9, Src: HostAddr(1), Dst: HostAddr(2), SrcPort: 1000, DstPort: 50010, Len: 0, Proto: ProtoTCP, Flags: FlagFIN},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Errorf("count = %d", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pkts) {
		t.Fatalf("read %d packets, want %d", len(got), len(pkts))
	}
	for i := range pkts {
		if got[i] != pkts[i] {
			t.Errorf("packet %d: got %+v, want %+v", i, got[i], pkts[i])
		}
	}
}

func TestTraceRejectsBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("BOGUS!!!"))); !errors.Is(err, ErrBadTrace) {
		t.Errorf("bad magic: err = %v, want ErrBadTrace", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte("KD"))); !errors.Is(err, ErrBadTrace) {
		t.Errorf("short header: err = %v, want ErrBadTrace", err)
	}
}

func TestTraceTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.WritePacket(Packet{TsNs: 1, Len: 10})
	_ = w.Flush()
	data := buf.Bytes()[:buf.Len()-5] // chop the record
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); !errors.Is(err, ErrBadTrace) {
		t.Errorf("truncated record: err = %v, want ErrBadTrace", err)
	}
}

// TestTraceRejectsHugeLength is the regression for the fuzz-found bug
// where a record claiming an absurd payload length decoded silently and
// poisoned downstream byte accounting: both the strict and salvage read
// paths must reject it with ErrBadTrace. The same crasher input lives in
// testdata/fuzz/FuzzPcapReader as a permanent fuzz corpus entry.
func TestTraceRejectsHugeLength(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.WritePacket(Packet{TsNs: 1, Len: 10, Proto: ProtoTCP, Flags: FlagACK})
	_ = w.Flush()
	data := buf.Bytes()
	// Corrupt the record's Len field (offset 8-byte header + 20) to 2 GiB.
	data[8+20], data[8+21], data[8+22], data[8+23] = 0xff, 0xff, 0xff, 0x7f

	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); !errors.Is(err, ErrBadTrace) {
		t.Errorf("huge length: ReadPacket err = %v, want ErrBadTrace", err)
	}

	got, err := ReadAllSalvage(bytes.NewReader(data))
	if !errors.Is(err, ErrBadTrace) {
		t.Errorf("huge length: Salvage err = %v, want ErrBadTrace", err)
	}
	if len(got) != 0 {
		t.Errorf("huge length: salvaged %d records from a poisoned head, want 0", len(got))
	}
}

func TestTraceRoundTripProperty(t *testing.T) {
	f := func(ts int64, src, dst uint32, sp, dp uint16, ln uint32, flags uint8) bool {
		// Writers only ever produce lengths within the format's bound;
		// over-bound lengths are exercised by TestTraceRejectsHugeLength.
		p := Packet{TsNs: ts, Src: Addr(src), Dst: Addr(dst), SrcPort: sp, DstPort: dp, Len: ln % (MaxPacketLen + 1), Proto: ProtoTCP, Flags: flags}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		if err := w.WritePacket(p); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		q, err := r.ReadPacket()
		if err != nil {
			return false
		}
		if _, err := r.ReadPacket(); err != io.EOF {
			return false
		}
		return p == q
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// flowPackets builds a simple SYN/data/FIN train for one 5-tuple.
func flowPackets(startNs int64, n int, gapNs int64, size uint32) []Packet {
	base := Packet{Src: HostAddr(1), Dst: HostAddr(2), SrcPort: 1000, DstPort: 13562, Proto: ProtoTCP}
	var out []Packet
	syn := base
	syn.TsNs = startNs
	syn.Flags = FlagSYN
	out = append(out, syn)
	for i := 0; i < n; i++ {
		p := base
		p.TsNs = startNs + int64(i+1)*gapNs
		p.Len = size
		p.Flags = FlagACK
		out = append(out, p)
	}
	fin := base
	fin.TsNs = startNs + int64(n+1)*gapNs
	fin.Flags = FlagFIN
	out = append(out, fin)
	return out
}

func TestFlowTableReassembly(t *testing.T) {
	ft := NewFlowTable(0)
	for _, p := range flowPackets(1000, 10, 100, 1448) {
		ft.Add(p)
	}
	recs := ft.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1", len(recs))
	}
	r := recs[0]
	if r.Bytes != 14480 {
		t.Errorf("bytes = %d, want 14480", r.Bytes)
	}
	if r.Packets != 12 { // SYN + 10 data + FIN
		t.Errorf("packets = %d, want 12", r.Packets)
	}
	if r.FirstNs != 1000 || r.LastNs != 1000+11*100 {
		t.Errorf("span = [%d, %d]", r.FirstNs, r.LastNs)
	}
}

func TestFlowTableFINSplitsFlows(t *testing.T) {
	ft := NewFlowTable(0)
	for _, p := range flowPackets(0, 3, 10, 100) {
		ft.Add(p)
	}
	for _, p := range flowPackets(1000, 3, 10, 100) {
		ft.Add(p)
	}
	recs := ft.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2 (FIN closes first)", len(recs))
	}
}

func TestFlowTableIdleTimeoutSplits(t *testing.T) {
	ft := NewFlowTable(time.Millisecond)
	base := Packet{Src: HostAddr(1), Dst: HostAddr(2), SrcPort: 7, DstPort: 8, Proto: ProtoTCP, Flags: FlagACK, Len: 10}
	p1, p2 := base, base
	p1.TsNs = 0
	p2.TsNs = 10_000_000 // 10 ms later > 1 ms idle timeout
	ft.Add(p1)
	ft.Add(p2)
	recs := ft.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2 (idle split)", len(recs))
	}
}

func TestFlowTableIgnoresStrayAcks(t *testing.T) {
	ft := NewFlowTable(0)
	ft.Add(Packet{TsNs: 5, Src: HostAddr(3), Dst: HostAddr(4), SrcPort: 1, DstPort: 2, Proto: ProtoTCP, Flags: FlagACK, Len: 0})
	if recs := ft.Records(); len(recs) != 0 {
		t.Errorf("stray pure ACK opened a flow: %+v", recs)
	}
}

func TestFlowTableSortsDeterministically(t *testing.T) {
	ft := NewFlowTable(0)
	// Two flows starting at the same instant with different tuples.
	for _, sp := range []uint16{30, 10, 20} {
		ft.Add(Packet{TsNs: 100, Src: HostAddr(1), Dst: HostAddr(2), SrcPort: sp, DstPort: 9, Proto: ProtoTCP, Flags: FlagSYN})
	}
	recs := ft.Records()
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	if !(recs[0].Key.SrcPort < recs[1].Key.SrcPort && recs[1].Key.SrcPort < recs[2].Key.SrcPort) {
		t.Errorf("tie-break order wrong: %v %v %v", recs[0].Key.SrcPort, recs[1].Key.SrcPort, recs[2].Key.SrcPort)
	}
}

func TestSamplerKeepsBoundariesAndEstimatesBytes(t *testing.T) {
	const n = 8
	s := NewSampler(n)
	// One flow of 800 data packets of 1000 B: true volume 800 kB.
	for _, p := range flowPackets(0, 800, 100, 1000) {
		s.Add(p)
	}
	recs := s.EstimateFlows()
	if len(recs) != 1 {
		t.Fatalf("flows = %d, want 1 (SYN/FIN preserved)", len(recs))
	}
	est := recs[0].Bytes
	// Count-based 1-in-8 sampling of 800 packets keeps exactly 100 →
	// estimate is exact for uniform packet sizes.
	if est != 800_000 {
		t.Errorf("estimated bytes = %d, want 800000", est)
	}
	if s.Kept() >= s.Seen() {
		t.Errorf("kept %d of %d — no thinning", s.Kept(), s.Seen())
	}
}

func TestSamplerOneKeepsEverything(t *testing.T) {
	s := NewSampler(1)
	for _, p := range flowPackets(0, 10, 100, 500) {
		s.Add(p)
	}
	if s.Kept() != s.Seen() {
		t.Errorf("sampler(1) dropped packets: %d of %d", s.Kept(), s.Seen())
	}
	recs := s.EstimateFlows()
	if len(recs) != 1 || recs[0].Bytes != 5000 {
		t.Errorf("recs = %+v", recs)
	}
	// Invalid factors clamp to 1.
	if NewSampler(0).n != 1 {
		t.Error("sampler(0) not clamped")
	}
}

func TestSamplerEstimationAccuracyOnRealCapture(t *testing.T) {
	// Sampled estimation of a real multi-flow capture lands within 20%
	// of the true per-phase volume.
	c := runCapturedFlows(t, 6, 20_000_000)
	truth := int64(6 * 20_000_000)
	s := NewSampler(16)
	for _, p := range c.Packets() {
		s.Add(p)
	}
	var est int64
	for _, r := range s.EstimateFlows() {
		est += r.Bytes
	}
	ratio := float64(est) / float64(truth)
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("sampled volume estimate off by %.2fx (est %d, truth %d)", ratio, est, truth)
	}
}
