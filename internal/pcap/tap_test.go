package pcap

import (
	"testing"
	"time"

	"keddah/internal/netsim"
	"keddah/internal/sim"
)

// runCapturedFlows pushes n flows of the given size through a small star
// network with a Capture attached.
func runCapturedFlows(t *testing.T, n int, size int64) *Capture {
	t.Helper()
	topo, err := netsim.Star(4, netsim.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	net := netsim.NewNetwork(eng, topo, netsim.Config{})
	c := NewCapture()
	net.AddTap(c)
	h := topo.Hosts()
	for i := 0; i < n; i++ {
		src, dst := h[i%len(h)], h[(i+1)%len(h)]
		if _, err := net.StartFlow(netsim.FlowSpec{
			Src: src, Dst: dst, SrcPort: 1000 + i, DstPort: 13562,
			SizeBytes: size, Label: "job/shuffle",
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCaptureByteConservation(t *testing.T) {
	const size = 10_000_000
	c := runCapturedFlows(t, 3, size)
	// Packets → flow table must reproduce the exact byte totals.
	ft := NewFlowTable(0)
	for _, p := range c.Packets() {
		ft.Add(p)
	}
	recs := ft.Records()
	if len(recs) != 3 {
		t.Fatalf("reassembled %d flows, want 3", len(recs))
	}
	for _, r := range recs {
		if r.Bytes != size {
			t.Errorf("flow %v bytes = %d, want %d", r.Key, r.Bytes, size)
		}
	}
}

func TestCaptureTruthMatchesReassembly(t *testing.T) {
	c := runCapturedFlows(t, 5, 2_000_000)
	truth := c.Truth()
	if len(truth) != 5 {
		t.Fatalf("truth records = %d, want 5", len(truth))
	}
	ft := NewFlowTable(0)
	for _, p := range c.Packets() {
		ft.Add(p)
	}
	recs := ft.Records()
	if len(recs) != len(truth) {
		t.Fatalf("reassembled %d flows, truth has %d", len(recs), len(truth))
	}
	byKey := make(map[FlowKey]FlowRecord, len(truth))
	for _, r := range truth {
		byKey[r.Key] = r
	}
	for _, r := range recs {
		tr, ok := byKey[r.Key]
		if !ok {
			t.Errorf("reassembled flow %v missing from truth", r.Key)
			continue
		}
		if r.Bytes != tr.Bytes {
			t.Errorf("flow %v: reassembled %d bytes, truth %d", r.Key, r.Bytes, tr.Bytes)
		}
		if tr.Label != "job/shuffle" {
			t.Errorf("truth label = %q", tr.Label)
		}
		// Reassembled span must lie within the truth span.
		if r.FirstNs < tr.FirstNs || r.LastNs > tr.LastNs {
			t.Errorf("flow %v: span [%d,%d] outside truth [%d,%d]",
				r.Key, r.FirstNs, r.LastNs, tr.FirstNs, tr.LastNs)
		}
	}
}

func TestCapturePacketBoundRespected(t *testing.T) {
	c := runCapturedFlows(t, 1, 500_000_000) // 500 MB would be ~345k MTUs
	n := 0
	for _, p := range c.Packets() {
		if p.Len > 0 {
			n++
		}
	}
	if n > DefaultMaxPacketsPerFlow {
		t.Errorf("synthesised %d data records, bound is %d", n, DefaultMaxPacketsPerFlow)
	}
}

func TestCapturePacketTimestampsWithinFlow(t *testing.T) {
	c := runCapturedFlows(t, 1, 5_000_000)
	truth := c.Truth()[0]
	for _, p := range c.Packets() {
		if p.TsNs < truth.FirstNs || p.TsNs > truth.LastNs {
			t.Errorf("packet ts %d outside flow [%d, %d]", p.TsNs, truth.FirstNs, truth.LastNs)
		}
	}
}

func TestStreamingCaptureSink(t *testing.T) {
	topo, err := netsim.Star(2, netsim.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	net := netsim.NewNetwork(eng, topo, netsim.Config{})
	var got []Packet
	c := NewStreamingCapture(func(p Packet) error {
		got = append(got, p)
		return nil
	})
	net.AddTap(c)
	h := topo.Hosts()
	if _, err := net.StartFlow(netsim.FlowSpec{Src: h[0], Dst: h[1], SrcPort: 1, DstPort: 2, SizeBytes: 1448 * 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if c.Err() != nil {
		t.Fatalf("sink err: %v", c.Err())
	}
	if len(got) != 5 { // SYN + 3 data + FIN
		t.Errorf("streamed %d packets, want 5", len(got))
	}
	if len(c.Packets()) != 0 {
		t.Error("streaming capture buffered packets")
	}
}

func TestCaptureSmallFlowExactPackets(t *testing.T) {
	c := runCapturedFlows(t, 1, 1448*2+100)
	var data []Packet
	for _, p := range c.Packets() {
		if p.Len > 0 {
			data = append(data, p)
		}
	}
	var total int64
	for _, p := range data {
		total += int64(p.Len)
	}
	if total != 1448*2+100 {
		t.Errorf("data bytes = %d, want %d", total, 1448*2+100)
	}
	if len(data) != 3 {
		t.Errorf("data packets = %d, want 3 (two MSS + remainder)", len(data))
	}
}

func TestSetMaxPacketsPerFlow(t *testing.T) {
	c := NewCapture()
	c.SetMaxPacketsPerFlow(1) // below minimum — ignored
	if c.maxPkts != DefaultMaxPacketsPerFlow {
		t.Error("bound below minimum was accepted")
	}
	c.SetMaxPacketsPerFlow(16)
	if c.maxPkts != 16 {
		t.Error("bound not applied")
	}
}

func TestFlowRecordDuration(t *testing.T) {
	r := FlowRecord{FirstNs: int64(time.Second), LastNs: int64(3 * time.Second)}
	if r.DurationNs() != int64(2*time.Second) {
		t.Errorf("duration = %d", r.DurationNs())
	}
}
