package pcap

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// writeTrace serialises pkts into a fresh trace buffer.
func writeTrace(t *testing.T, pkts []Packet) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSalvageTruncatedTrace(t *testing.T) {
	pkts := []Packet{
		{TsNs: 1, Src: HostAddr(1), Dst: HostAddr(2), SrcPort: 1000, DstPort: 50010, Len: 1448, Proto: ProtoTCP, Flags: FlagACK},
		{TsNs: 2, Src: HostAddr(2), Dst: HostAddr(3), SrcPort: 1001, DstPort: 13562, Len: 900, Proto: ProtoTCP, Flags: FlagACK},
		{TsNs: 3, Src: HostAddr(3), Dst: HostAddr(1), SrcPort: 1002, DstPort: 50010, Len: 0, Proto: ProtoTCP, Flags: FlagRST},
	}
	raw := writeTrace(t, pkts)

	// Cut mid-way through the final record, as a crashed capture would.
	cut := raw[:len(raw)-recordSize/2]
	got, err := ReadAllSalvage(bytes.NewReader(cut))
	if !errors.Is(err, ErrBadTrace) {
		t.Fatalf("salvage of truncated trace: err = %v, want ErrBadTrace", err)
	}
	if len(got) != 2 || !reflect.DeepEqual(got, []Packet{pkts[0], pkts[1]}) {
		t.Fatalf("salvaged %d packets %+v, want the 2 intact records", len(got), got)
	}

	// ReadAll on the same damage reports the error with the same prefix.
	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	all, err := r.ReadAll()
	if !errors.Is(err, ErrBadTrace) || len(all) != 2 {
		t.Fatalf("ReadAll on truncated trace = %d packets, err %v", len(all), err)
	}
}

func TestSalvageIntactAndHeaderDamage(t *testing.T) {
	pkts := []Packet{
		{TsNs: 7, Src: HostAddr(4), Dst: HostAddr(5), SrcPort: 1003, DstPort: 8020, Len: 64, Proto: ProtoTCP, Flags: FlagACK},
	}
	raw := writeTrace(t, pkts)

	got, err := ReadAllSalvage(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("salvage of intact trace: %v", err)
	}
	if !reflect.DeepEqual(got, pkts) {
		t.Fatalf("salvage of intact trace = %+v, want %+v", got, pkts)
	}

	// Flip a magic byte: nothing salvageable, typed error.
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xff
	got, err = ReadAllSalvage(bytes.NewReader(bad))
	if !errors.Is(err, ErrBadTrace) || got != nil {
		t.Fatalf("salvage with bad magic = %+v, err %v, want nil + ErrBadTrace", got, err)
	}

	// A header cut short is also typed, not an io error.
	got, err = ReadAllSalvage(bytes.NewReader(raw[:4]))
	if !errors.Is(err, ErrBadTrace) || got != nil {
		t.Fatalf("salvage with short header = %+v, err %v, want nil + ErrBadTrace", got, err)
	}
}
