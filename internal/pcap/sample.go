package pcap

import (
	"sort"
)

// Sampler thins a packet stream 1-in-N, the way sFlow/NetFlow-style
// capture does when full tcpdump capture is too expensive at cluster
// scale. Keddah-style modelling on sampled captures must then re-inflate
// byte counts; EstimateFlows does that and the A4 ablation quantifies
// what sampling costs the fitted models.
//
// Sampling is deterministic count-based (every Nth packet globally),
// which matches switch-based samplers and keeps runs reproducible.
type Sampler struct {
	n     int
	seen  int64
	kept  int64
	table *FlowTable
}

// NewSampler samples 1-in-n packets into a fresh flow table (n ≥ 1;
// n = 1 keeps everything).
func NewSampler(n int) *Sampler {
	if n < 1 {
		n = 1
	}
	return &Sampler{n: n, table: NewFlowTable(0)}
}

// Add offers one packet to the sampler. SYN/FIN control packets are
// always kept (samplers forward TCP flag packets so flow boundaries
// survive); data packets are thinned 1-in-N.
func (s *Sampler) Add(p Packet) {
	s.seen++
	if p.Flags&(FlagSYN|FlagFIN) != 0 || s.seen%int64(s.n) == 0 {
		s.kept++
		s.table.Add(p)
	}
}

// Seen and Kept report the stream and sample sizes.
func (s *Sampler) Seen() int64 { return s.seen }
func (s *Sampler) Kept() int64 { return s.kept }

// EstimateFlows reassembles the sampled stream and re-inflates per-flow
// byte and packet counts by the sampling factor — the standard unbiased
// (Horvitz–Thompson) estimator for count-based sampling. Flow spans are
// left as observed (sampling cannot recover missing first/last packets).
func (s *Sampler) EstimateFlows() []FlowRecord {
	recs := s.table.Records()
	out := make([]FlowRecord, len(recs))
	for i, r := range recs {
		r.Bytes *= int64(s.n)
		r.Packets *= int64(s.n)
		out[i] = r
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FirstNs != out[j].FirstNs {
			return out[i].FirstNs < out[j].FirstNs
		}
		return out[i].Key.SrcPort < out[j].Key.SrcPort
	})
	return out
}
