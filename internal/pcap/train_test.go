package pcap

import (
	"strings"
	"testing"
)

// TestCheckTrainCatchesMalformedTrains table-drives CheckTrain over a
// healthy train and each way a synthesised train can be malformed —
// including non-monotone timestamps.
func TestCheckTrainCatchesMalformedTrains(t *testing.T) {
	good := func() []Packet { return flowPackets(1000, 4, 100, 1448) }
	cases := []struct {
		name   string
		mutate func(tr []Packet) []Packet
		want   string // "" = must stay nil
	}{
		{
			name:   "healthy",
			mutate: func(tr []Packet) []Packet { return tr },
		},
		{
			name:   "too short to bracket",
			mutate: func(tr []Packet) []Packet { return tr[:1] },
			want:   "cannot bracket",
		},
		{
			name: "missing SYN",
			mutate: func(tr []Packet) []Packet {
				tr[0].Flags = FlagACK
				tr[0].Len = 10
				return tr
			},
			want: "bare SYN",
		},
		{
			name: "missing FIN",
			mutate: func(tr []Packet) []Packet {
				tr[len(tr)-1].Flags = FlagACK
				return tr
			},
			want: "FIN or RST",
		},
		{
			name: "non-monotone timestamps",
			mutate: func(tr []Packet) []Packet {
				tr[2].TsNs = tr[1].TsNs - 50
				return tr
			},
			want: "timestamps regress",
		},
		{
			name: "mixed 5-tuples",
			mutate: func(tr []Packet) []Packet {
				tr[2].SrcPort++
				return tr
			},
			want: "mixes 5-tuples",
		},
		{
			name: "empty data record",
			mutate: func(tr []Packet) []Packet {
				tr[2].Len = 0
				return tr
			},
			want: "length 0",
		},
		{
			name: "oversized data record",
			mutate: func(tr []Packet) []Packet {
				tr[2].Len = MaxPacketLen + 1
				return tr
			},
			want: "outside",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckTrain(tc.mutate(good()))
			if tc.want == "" {
				if err != nil {
					t.Fatalf("healthy train rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("malformed train %q accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestVerifyTrainsOnRealCapture: every train a real capture synthesises
// passes verification, and verifying does not consume the pending queue
// (Packets() must still see every record afterwards).
func TestVerifyTrainsOnRealCapture(t *testing.T) {
	c := runCapturedFlows(t, 4, 10_000_000)
	if err := c.VerifyTrains(); err != nil {
		t.Fatalf("real capture fails train verification: %v", err)
	}
	if got := len(c.Packets()); got == 0 {
		t.Fatal("VerifyTrains consumed the pending flows")
	}
	// RST bracketing is covered by the abort path in tap_test.go.
}
