package pcap

import (
	"sort"

	"keddah/internal/netsim"
)

// MSS is the data bytes carried per wire MTU (1500 − 40 IP/TCP overhead −
// 12 timestamps).
const MSS = 1448

// DefaultMaxPacketsPerFlow bounds synthesis cost for big flows; records
// beyond the bound carry multiple MSS worth of payload each, mimicking a
// GRO-enabled capture. Byte totals stay exact.
const DefaultMaxPacketsPerFlow = 2048

// Capture taps a netsim.Network, synthesising packet records from
// completed flows and keeping ground-truth flow records for classifier
// validation. All state is owned by the single-threaded simulation loop.
//
// Packet synthesis is lazy in the buffered mode: FlowCompleted only
// retains the finished flow, and the packet train is synthesised on the
// first Packets() call. Pipeline stages that consume ground truth alone
// (core.Capture, core.Replay — the hot replay path) therefore never pay
// for packets they don't read. Streaming captures synthesise eagerly,
// since the sink wants packets as they happen.
type Capture struct {
	maxPkts int
	packets []Packet
	// pending holds completed flows whose packet trains have not been
	// synthesised yet (buffered mode only; completion order).
	pending []*netsim.Flow
	truth   []FlowRecord
	// sink, if set, receives packets instead of the in-memory buffer
	// (used to stream straight to a trace file).
	sink func(Packet) error
	err  error
}

var _ netsim.Tap = (*Capture)(nil)

// NewCapture returns a Capture buffering packets in memory.
func NewCapture() *Capture {
	return &Capture{maxPkts: DefaultMaxPacketsPerFlow}
}

// NewStreamingCapture routes synthesised packets to sink instead of the
// in-memory buffer (ground truth is still buffered).
func NewStreamingCapture(sink func(Packet) error) *Capture {
	return &Capture{maxPkts: DefaultMaxPacketsPerFlow, sink: sink}
}

// SetMaxPacketsPerFlow overrides the synthesis bound (≥ 2).
func (c *Capture) SetMaxPacketsPerFlow(n int) {
	if n >= 2 {
		c.maxPkts = n
	}
}

// Err returns the first sink error encountered, if any.
func (c *Capture) Err() error { return c.err }

// FlowStarted implements netsim.Tap.
func (c *Capture) FlowStarted(*netsim.Flow) {}

// FlowCompleted implements netsim.Tap: records ground truth and either
// streams the flow's packet train to the sink or defers synthesis until
// Packets() is called.
func (c *Capture) FlowCompleted(f *netsim.Flow) {
	spec := f.Spec()
	base := Packet{
		Src:     HostAddr(int(spec.Src)),
		Dst:     HostAddr(int(spec.Dst)),
		SrcPort: uint16(spec.SrcPort),
		DstPort: uint16(spec.DstPort),
		Proto:   ProtoTCP,
	}
	// Aborted flows (fault-injection teardowns) record the bytes that
	// actually crossed the wire, not the intended size; for completed
	// flows Transferred equals SizeBytes exactly.
	c.truth = append(c.truth, FlowRecord{
		Key:     base.Key(),
		FirstNs: int64(f.Start()),
		LastNs:  int64(f.End()),
		Bytes:   f.Transferred(),
		Packets: 0,
		Label:   spec.Label,
	})
	if c.sink == nil {
		c.pending = append(c.pending, f)
		return
	}
	c.synthesize(f)
}

// synthesize emits the flow's packet train (SYN, paced data, FIN) to the
// sink or the in-memory buffer.
func (c *Capture) synthesize(f *netsim.Flow) {
	spec := f.Spec()
	base := Packet{
		Src:     HostAddr(int(spec.Src)),
		Dst:     HostAddr(int(spec.Dst)),
		SrcPort: uint16(spec.SrcPort),
		DstPort: uint16(spec.DstPort),
		Proto:   ProtoTCP,
	}

	emit := func(p Packet) {
		if c.err != nil {
			return
		}
		if c.sink != nil {
			if err := c.sink(p); err != nil {
				c.err = err
			}
			return
		}
		c.packets = append(c.packets, p)
	}

	startNs := int64(f.Start())
	endNs := int64(f.End())

	// SYN opens the connection at flow start.
	syn := base
	syn.TsNs = startNs
	syn.Flags = FlagSYN
	emit(syn)

	// Data records paced across the flow's rate segments. Aborted flows
	// pace only the bytes that made it onto the wire.
	total := f.Transferred()
	if total > 0 {
		chunk := int64(MSS)
		if total/chunk > int64(c.maxPkts-2) {
			chunk = (total/int64(c.maxPkts-2) + MSS) / MSS * MSS
		}
		segs := f.Segments()
		emitted := int64(0)
		for si, seg := range segs {
			segStart := int64(seg.Start)
			segEnd := endNs
			if si+1 < len(segs) {
				segEnd = int64(segs[si+1].Start)
			}
			segBytes := seg.RateBps * float64(segEnd-segStart) / 1e9 / 8
			if si == len(segs)-1 {
				segBytes = float64(total - emitted) // absorb rounding
			}
			toSend := int64(segBytes)
			if emitted+toSend > total {
				toSend = total - emitted
			}
			if toSend <= 0 || seg.RateBps <= 0 {
				continue
			}
			sent := int64(0)
			for sent < toSend {
				sz := chunk
				if sent+sz > toSend {
					sz = toSend - sent
				}
				// Timestamp the record at the moment its last byte left.
				off := float64(sent+sz) * 8 / seg.RateBps * 1e9
				p := base
				p.TsNs = segStart + int64(off)
				if p.TsNs > endNs {
					p.TsNs = endNs
				}
				p.Len = uint32(sz)
				p.Flags = FlagACK
				emit(p)
				sent += sz
			}
			emitted += toSend
		}
		// Any residue from float truncation goes into one final record.
		if emitted < total {
			p := base
			p.TsNs = endNs
			p.Len = uint32(total - emitted)
			p.Flags = FlagACK
			emit(p)
		}
	}

	// FIN closes the connection at flow end; an aborted flow is torn
	// down with RST instead.
	fin := base
	fin.TsNs = endNs
	fin.Flags = FlagFIN
	if f.Aborted() {
		fin.Flags = FlagRST
	}
	emit(fin)
}

// Packets returns buffered packets sorted by timestamp (stable across
// flows completing at the same instant). Deferred flows are synthesised
// here, in completion order, then cached.
func (c *Capture) Packets() []Packet {
	for _, f := range c.pending {
		c.synthesize(f)
	}
	c.pending = c.pending[:0]
	out := make([]Packet, len(c.packets))
	copy(out, c.packets)
	sort.SliceStable(out, func(i, j int) bool { return out[i].TsNs < out[j].TsNs })
	return out
}

// Truth returns the ground-truth flow records in completion order.
func (c *Capture) Truth() []FlowRecord {
	out := make([]FlowRecord, len(c.truth))
	copy(out, c.truth)
	return out
}
