package pcap

import (
	"fmt"
	"sort"

	"keddah/internal/netsim"
)

// MSS is the data bytes carried per wire MTU (1500 − 40 IP/TCP overhead −
// 12 timestamps).
const MSS = 1448

// DefaultMaxPacketsPerFlow bounds synthesis cost for big flows; records
// beyond the bound carry multiple MSS worth of payload each, mimicking a
// GRO-enabled capture. Byte totals stay exact.
const DefaultMaxPacketsPerFlow = 2048

// Capture taps a netsim.Network, synthesising packet records from
// completed flows and keeping ground-truth flow records for classifier
// validation. All state is owned by the single-threaded simulation loop.
//
// Packet synthesis is lazy in the buffered mode: FlowCompleted only
// retains the finished flow, and the packet train is synthesised on the
// first Packets() call. Pipeline stages that consume ground truth alone
// (core.Capture, core.Replay — the hot replay path) therefore never pay
// for packets they don't read. Streaming captures synthesise eagerly,
// since the sink wants packets as they happen.
type Capture struct {
	maxPkts int
	packets []Packet
	// pending holds completed flows whose packet trains have not been
	// synthesised yet (buffered mode only; completion order).
	pending []*netsim.Flow
	truth   []FlowRecord
	// sink, if set, receives packets instead of the in-memory buffer
	// (used to stream straight to a trace file).
	sink func(Packet) error
	err  error
	// train is the per-flow synthesis scratch buffer, reused across flows.
	train []Packet
	// offset shifts this capture's node ids before address synthesis.
	// Multi-pod captures give each pod's tap a disjoint range so merged
	// traces keep globally unique 5-tuples.
	offset int
}

var _ netsim.Tap = (*Capture)(nil)

// NewCapture returns a Capture buffering packets in memory.
func NewCapture() *Capture {
	return &Capture{maxPkts: DefaultMaxPacketsPerFlow}
}

// NewStreamingCapture routes synthesised packets to sink instead of the
// in-memory buffer (ground truth is still buffered).
func NewStreamingCapture(sink func(Packet) error) *Capture {
	return &Capture{maxPkts: DefaultMaxPacketsPerFlow, sink: sink}
}

// SetHostOffset shifts every node id seen by this capture by n before it
// becomes a synthetic address: pod p of a multi-pod capture uses
// n = p × hostsPerPod so the merged trace's 5-tuples stay globally
// unique. Set before any flow completes.
func (c *Capture) SetHostOffset(n int) {
	if n >= 0 {
		c.offset = n
	}
}

// SetMaxPacketsPerFlow overrides the synthesis bound (≥ 2).
func (c *Capture) SetMaxPacketsPerFlow(n int) {
	if n >= 2 {
		c.maxPkts = n
	}
}

// Err returns the first sink error encountered, if any.
func (c *Capture) Err() error { return c.err }

// FlowStarted implements netsim.Tap.
func (c *Capture) FlowStarted(*netsim.Flow) {}

// FlowCompleted implements netsim.Tap: records ground truth and either
// streams the flow's packet train to the sink or defers synthesis until
// Packets() is called.
func (c *Capture) FlowCompleted(f *netsim.Flow) {
	spec := f.Spec()
	base := Packet{
		Src:     HostAddr(c.offset + int(spec.Src)),
		Dst:     HostAddr(c.offset + int(spec.Dst)),
		SrcPort: uint16(spec.SrcPort),
		DstPort: uint16(spec.DstPort),
		Proto:   ProtoTCP,
	}
	// Aborted flows (fault-injection teardowns) record the bytes that
	// actually crossed the wire, not the intended size; for completed
	// flows Transferred equals SizeBytes exactly.
	c.truth = append(c.truth, FlowRecord{
		Key:     base.Key(),
		FirstNs: int64(f.Start()),
		LastNs:  int64(f.End()),
		Bytes:   f.Transferred(),
		Packets: 0,
		Label:   spec.Label,
	})
	if c.sink == nil {
		c.pending = append(c.pending, f)
		return
	}
	c.synthesize(f)
}

// synthesize emits the flow's packet train (SYN, paced data, FIN) to the
// sink or the in-memory buffer. The train itself is built by appendTrain
// into a reused scratch buffer.
func (c *Capture) synthesize(f *netsim.Flow) {
	c.train = appendTrain(c.train[:0], f, c.maxPkts, c.offset)
	for _, p := range c.train {
		if c.err != nil {
			return
		}
		if c.sink != nil {
			if err := c.sink(p); err != nil {
				c.err = err
			}
			continue
		}
		c.packets = append(c.packets, p)
	}
}

// appendTrain appends the packet train for one finished flow to dst: a
// SYN at flow start, data records paced across the flow's rate segments
// (at most maxPkts records in total), and a FIN — or RST for an aborted
// flow — at flow end. It is pure over the flow's observable state, so
// invariant checks can rebuild a train without touching the capture.
func appendTrain(dst []Packet, f *netsim.Flow, maxPkts, offset int) []Packet {
	spec := f.Spec()
	base := Packet{
		Src:     HostAddr(offset + int(spec.Src)),
		Dst:     HostAddr(offset + int(spec.Dst)),
		SrcPort: uint16(spec.SrcPort),
		DstPort: uint16(spec.DstPort),
		Proto:   ProtoTCP,
	}

	startNs := int64(f.Start())
	endNs := int64(f.End())

	// SYN opens the connection at flow start.
	syn := base
	syn.TsNs = startNs
	syn.Flags = FlagSYN
	dst = append(dst, syn)

	// Data records paced across the flow's rate segments. Aborted flows
	// pace only the bytes that made it onto the wire.
	total := f.Transferred()
	if total > 0 {
		chunk := int64(MSS)
		if budget := int64(maxPkts - 2); budget > 0 && total/chunk > budget {
			chunk = (total/budget + MSS) / MSS * MSS
		} else if budget <= 0 {
			// No room for more than one data record between SYN and FIN.
			chunk = total
		}
		segs := f.Segments()
		emitted := int64(0)
		for si, seg := range segs {
			segStart := int64(seg.Start)
			segEnd := endNs
			if si+1 < len(segs) {
				segEnd = int64(segs[si+1].Start)
			}
			segBytes := seg.RateBps * float64(segEnd-segStart) / 1e9 / 8
			if si == len(segs)-1 {
				segBytes = float64(total - emitted) // absorb rounding
			}
			toSend := int64(segBytes)
			if emitted+toSend > total {
				toSend = total - emitted
			}
			if toSend <= 0 || seg.RateBps <= 0 {
				continue
			}
			sent := int64(0)
			for sent < toSend {
				sz := chunk
				if sent+sz > toSend {
					sz = toSend - sent
				}
				// Timestamp the record at the moment its last byte left.
				off := float64(sent+sz) * 8 / seg.RateBps * 1e9
				p := base
				p.TsNs = segStart + int64(off)
				if p.TsNs > endNs {
					p.TsNs = endNs
				}
				p.Len = uint32(sz)
				p.Flags = FlagACK
				dst = append(dst, p)
				sent += sz
			}
			emitted += toSend
		}
		// Any residue from float truncation goes into one final record.
		if emitted < total {
			p := base
			p.TsNs = endNs
			p.Len = uint32(total - emitted)
			p.Flags = FlagACK
			dst = append(dst, p)
		}
	}

	// FIN closes the connection at flow end; an aborted flow is torn
	// down with RST instead.
	fin := base
	fin.TsNs = endNs
	fin.Flags = FlagFIN
	if f.Aborted() {
		fin.Flags = FlagRST
	}
	return append(dst, fin)
}

// Packets returns buffered packets sorted by timestamp (stable across
// flows completing at the same instant). Deferred flows are synthesised
// here, in completion order, then cached.
func (c *Capture) Packets() []Packet {
	for _, f := range c.pending {
		c.synthesize(f)
	}
	c.pending = c.pending[:0]
	out := make([]Packet, len(c.packets))
	copy(out, c.packets)
	sort.SliceStable(out, func(i, j int) bool { return out[i].TsNs < out[j].TsNs })
	return out
}

// Truth returns the ground-truth flow records in completion order.
func (c *Capture) Truth() []FlowRecord {
	out := make([]FlowRecord, len(c.truth))
	copy(out, c.truth)
	return out
}

// CheckTrain verifies the well-formedness of one flow's packet train:
// SYN/FIN (or RST) bracketing, a single 5-tuple throughout, positive
// bounded data lengths, and non-decreasing timestamps. It returns a
// descriptive error on the first violation.
func CheckTrain(train []Packet) error {
	if len(train) < 2 {
		return fmt.Errorf("pcap: train of %d packets cannot bracket a connection", len(train))
	}
	key := train[0].Key()
	if train[0].Flags != FlagSYN || train[0].Len != 0 {
		return fmt.Errorf("pcap: train does not open with a bare SYN (flags %#x, len %d)", train[0].Flags, train[0].Len)
	}
	last := train[len(train)-1]
	if (last.Flags != FlagFIN && last.Flags != FlagRST) || last.Len != 0 {
		return fmt.Errorf("pcap: train does not close with FIN or RST (flags %#x, len %d)", last.Flags, last.Len)
	}
	for i, p := range train {
		if p.Key() != key {
			return fmt.Errorf("pcap: train mixes 5-tuples at record %d", i)
		}
		if i > 0 && p.TsNs < train[i-1].TsNs {
			return fmt.Errorf("pcap: train timestamps regress at record %d (%d < %d)", i, p.TsNs, train[i-1].TsNs)
		}
		if i > 0 && i < len(train)-1 {
			if p.Flags != FlagACK {
				return fmt.Errorf("pcap: data record %d carries flags %#x, want ACK", i, p.Flags)
			}
			if p.Len == 0 || p.Len > MaxPacketLen {
				return fmt.Errorf("pcap: data record %d length %d outside (0, %d]", i, p.Len, MaxPacketLen)
			}
		}
	}
	return nil
}

// VerifyTrains rebuilds the packet train of every flow awaiting lazy
// synthesis — without consuming the pending queue or touching the packet
// buffer — and checks each against CheckTrain plus the flow's own ground
// truth: the SYN at flow start, the FIN/RST at flow end (RST exactly for
// aborts), data bytes summing to the bytes the flow actually moved, and
// coherent truth-record time bounds.
func (c *Capture) VerifyTrains() error {
	for _, f := range c.pending {
		train := appendTrain(nil, f, c.maxPkts, c.offset)
		if err := CheckTrain(train); err != nil {
			return fmt.Errorf("flow %d (%s): %w", f.ID(), f.Spec().Label, err)
		}
		last := train[len(train)-1]
		if train[0].TsNs != int64(f.Start()) || last.TsNs != int64(f.End()) {
			return fmt.Errorf("pcap: flow %d train spans [%d, %d], flow spans [%d, %d]",
				f.ID(), train[0].TsNs, last.TsNs, int64(f.Start()), int64(f.End()))
		}
		if f.Aborted() != (last.Flags == FlagRST) {
			return fmt.Errorf("pcap: flow %d aborted=%v but train closes with flags %#x", f.ID(), f.Aborted(), last.Flags)
		}
		var data int64
		for _, p := range train[1 : len(train)-1] {
			data += int64(p.Len)
		}
		if data != f.Transferred() {
			return fmt.Errorf("pcap: flow %d train carries %d data bytes, flow moved %d", f.ID(), data, f.Transferred())
		}
	}
	for i, tr := range c.truth {
		if tr.FirstNs > tr.LastNs {
			return fmt.Errorf("pcap: truth record %d (%s) ends before it starts (%d > %d)", i, tr.Label, tr.FirstNs, tr.LastNs)
		}
		if tr.Bytes < 0 {
			return fmt.Errorf("pcap: truth record %d (%s) carries negative bytes %d", i, tr.Label, tr.Bytes)
		}
	}
	return nil
}
