package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Trace format: 8-byte header (magic "KDHP" + u32 version), then a stream
// of fixed-size 28-byte little-endian packet records.

var traceMagic = [4]byte{'K', 'D', 'H', 'P'}

const (
	traceVersion = 1
	recordSize   = 8 + 4 + 4 + 2 + 2 + 4 + 1 + 1 + 2 // ts,src,dst,sp,dp,len,proto,flags,pad
)

// ErrBadTrace reports a malformed trace file.
var ErrBadTrace = errors.New("pcap: malformed trace")

// MaxPacketLen is the largest payload length a record may claim (1 GiB).
// Synthesised records carry at most a few MSS of coalesced payload, so
// anything near this bound is file corruption, not data; readers reject
// such records instead of passing silently absurd lengths downstream.
const MaxPacketLen = 1 << 30

// Writer streams packets to a trace.
type Writer struct {
	w   *bufio.Writer
	buf [recordSize]byte
	n   int64
}

// NewWriter writes the trace header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return nil, fmt.Errorf("write trace magic: %w", err)
	}
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], traceVersion)
	if _, err := bw.Write(v[:]); err != nil {
		return nil, fmt.Errorf("write trace version: %w", err)
	}
	return &Writer{w: bw}, nil
}

// WritePacket appends one record.
func (w *Writer) WritePacket(p Packet) error {
	b := w.buf[:]
	binary.LittleEndian.PutUint64(b[0:], uint64(p.TsNs))
	binary.LittleEndian.PutUint32(b[8:], uint32(p.Src))
	binary.LittleEndian.PutUint32(b[12:], uint32(p.Dst))
	binary.LittleEndian.PutUint16(b[16:], p.SrcPort)
	binary.LittleEndian.PutUint16(b[18:], p.DstPort)
	binary.LittleEndian.PutUint32(b[20:], p.Len)
	b[24] = p.Proto
	b[25] = p.Flags
	b[26], b[27] = 0, 0
	if _, err := w.w.Write(b); err != nil {
		return fmt.Errorf("write packet record: %w", err)
	}
	w.n++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int64 { return w.n }

// Flush drains buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader streams packets from a trace.
type Reader struct {
	r   *bufio.Reader
	buf [recordSize]byte
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadTrace, err)
	}
	if [4]byte(hdr[:4]) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, v)
	}
	return &Reader{r: br}, nil
}

// ReadPacket returns the next record, or io.EOF at end of trace.
func (r *Reader) ReadPacket() (Packet, error) {
	if _, err := io.ReadFull(r.r, r.buf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("%w: truncated record: %v", ErrBadTrace, err)
	}
	b := r.buf[:]
	p := Packet{
		TsNs:    int64(binary.LittleEndian.Uint64(b[0:])),
		Src:     Addr(binary.LittleEndian.Uint32(b[8:])),
		Dst:     Addr(binary.LittleEndian.Uint32(b[12:])),
		SrcPort: binary.LittleEndian.Uint16(b[16:]),
		DstPort: binary.LittleEndian.Uint16(b[18:]),
		Len:     binary.LittleEndian.Uint32(b[20:]),
		Proto:   b[24],
		Flags:   b[25],
	}
	if p.Len > MaxPacketLen {
		return Packet{}, fmt.Errorf("%w: record claims %d-byte payload (max %d)", ErrBadTrace, p.Len, MaxPacketLen)
	}
	return p, nil
}

// ReadAll drains the trace into memory.
func (r *Reader) ReadAll() ([]Packet, error) {
	var out []Packet
	for {
		p, err := r.ReadPacket()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}

// Salvage reads to the end of a possibly-damaged trace, returning every
// whole record it could decode. Unlike ReadAll — whose error means "the
// result is incomplete" — Salvage treats the decoded prefix as the
// result: err is nil for a clean end-of-trace and wraps ErrBadTrace when
// the tail was truncated or corrupt, with the salvaged records returned
// either way.
func (r *Reader) Salvage() ([]Packet, error) {
	out, err := r.ReadAll()
	if err == nil || errors.Is(err, ErrBadTrace) {
		return out, err
	}
	return out, fmt.Errorf("%w: %v", ErrBadTrace, err)
}

// ReadAllSalvage opens and drains a trace in salvage mode: a damaged
// header yields no records and an ErrBadTrace-wrapping error; a damaged
// body yields every record decoded before the damage plus the error; an
// intact trace yields all records and a nil error. Use it to recover
// what a capture wrote before a crash or a full disk cut it short.
func ReadAllSalvage(r io.Reader) ([]Packet, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	return tr.Salvage()
}
