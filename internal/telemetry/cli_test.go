package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFlagsDisabledByDefault(t *testing.T) {
	var f Flags
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.Enabled() {
		t.Error("enabled with no flags")
	}
	if f.Telemetry() != nil {
		t.Error("telemetry built with no flags")
	}
	// Emit on a nil session is a no-op.
	if err := f.Emit(nil, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestFlagsMetricsStdout(t *testing.T) {
	var f Flags
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse([]string{"-metrics"}); err != nil {
		t.Fatal(err)
	}
	tel := f.Telemetry()
	if tel == nil {
		t.Fatal("telemetry not built")
	}
	if tel.Links != nil {
		t.Error("link timeline enabled without -links-out")
	}
	tel.MR.JobsCompleted.Inc()
	var out bytes.Buffer
	if err := f.Emit(tel, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "keddah_mr_jobs_completed_total 1") {
		t.Error("prometheus exposition missing from stdout")
	}
	if !strings.Contains(s, `"counters"`) {
		t.Error("JSON snapshot missing from stdout")
	}
}

func TestFlagsFileOutputs(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "tel")
	tracePath := filepath.Join(dir, "spans.csv")
	linksPath := filepath.Join(dir, "links.csv")

	var f Flags
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f.Register(fs)
	args := []string{"-metrics-out", prefix, "-trace-out", tracePath, "-links-out", linksPath}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	tel := f.Telemetry()
	if tel.Links == nil {
		t.Fatal("-links-out did not enable the link timeline")
	}
	tel.Sim.Events.Inc()
	tel.Trace.Add(Span{Cat: "mr", Name: "job", StartNs: 1, EndNs: 2})
	tel.Links.Append(LinkPoint{AtNs: 5, Link: 0, Util: 1, Flows: 1})

	var out bytes.Buffer
	if err := f.Emit(tel, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Error("file-only flags wrote to stdout")
	}
	for path, want := range map[string]string{
		prefix + ".prom": "keddah_sim_events_total 1",
		prefix + ".json": `"keddah_sim_events_total"`,
		tracePath:        "mr,job",
		linksPath:        "at_ns,link,util,flows",
	} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if !strings.Contains(string(data), want) {
			t.Errorf("%s missing %q:\n%s", path, want, data)
		}
	}
}
