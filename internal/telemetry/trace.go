package telemetry

import (
	"encoding/csv"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Span is one traced phase episode on the simulated clock: a job, a
// map/shuffle/reduce window, an HDFS write pipeline, a YARN scheduling
// decision, or a fault's injected-to-healed interval.
type Span struct {
	// Cat groups spans by subsystem: "core", "mr", "hdfs", "yarn", "fault".
	Cat string `json:"cat"`
	// Name is the phase ("job", "map", "pipeline", "schedule", ...).
	Name string `json:"name"`
	// Attr carries the instance label (job name, block path, fault target).
	Attr string `json:"attr,omitempty"`
	// StartNs / EndNs are simulated times.
	StartNs int64 `json:"startNs"`
	EndNs   int64 `json:"endNs"`
}

// Tracer collects spans under a mutex with a bounded buffer. All methods
// are nil-receiver safe so tracing can be compiled out by not attaching.
type Tracer struct {
	mu      sync.Mutex
	spans   []Span
	limit   int
	dropped int64
}

// NewTracer returns a tracer holding at most limit spans (<=0 selects
// the default of 1<<20); beyond that spans are counted as dropped.
func NewTracer(limit int) *Tracer {
	if limit <= 0 {
		limit = 1 << 20
	}
	return &Tracer{limit: limit}
}

// Add records a span. Safe on a nil tracer.
func (t *Tracer) Add(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.spans) >= t.limit {
		t.dropped++
	} else {
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

// Dropped returns how many spans were discarded over the limit.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans returns a copy sorted by (start, cat, name, attr, end) — a
// stable order even when spans were recorded from concurrent captures.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.StartNs != b.StartNs {
			return a.StartNs < b.StartNs
		}
		if a.Cat != b.Cat {
			return a.Cat < b.Cat
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Attr != b.Attr {
			return a.Attr < b.Attr
		}
		return a.EndNs < b.EndNs
	})
	return out
}

// WriteCSV writes the sorted span timeline with a fixed header. Field
// quoting/escaping follows encoding/csv, so attrs with commas or quotes
// round-trip.
func (t *Tracer) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"cat", "name", "attr", "start_ns", "end_ns", "duration_ns"}); err != nil {
		return err
	}
	for _, s := range t.Spans() {
		rec := []string{
			s.Cat, s.Name, s.Attr,
			strconv.FormatInt(s.StartNs, 10),
			strconv.FormatInt(s.EndNs, 10),
			strconv.FormatInt(s.EndNs-s.StartNs, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
