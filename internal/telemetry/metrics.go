package telemetry

import "strconv"

// The metric catalog: one value struct per instrumented layer. The zero
// value of each struct holds nil instruments, so a layer that was never
// attached pays only a nil check per hook — that is the disabled path.

// SimMetrics instruments the discrete-event engine.
type SimMetrics struct {
	// Events counts processed events.
	Events *Counter
	// HeapDepthMax tracks the event queue's high-water mark.
	HeapDepthMax *Gauge
}

// ShardMetrics instruments the sharded window scheduler multi-pod
// captures run on. Windows and BoundaryEvents are deterministic — by
// construction identical at any shard count and any GOMAXPROCS — so they
// live in the deterministic snapshot. StallMs and the per-shard
// ShardEvents/ShardBusyMs gauges depend on wall clock and shard layout
// and are volatile: Prometheus-only, never in the JSON snapshot, so a
// sharded capture's exported telemetry stays byte-identical to the
// serial engine's.
type ShardMetrics struct {
	Windows        *Counter // conservative windows executed
	BoundaryEvents *Counter // cross-shard events merged at barriers
	StallMs        *Gauge   // volatile: cumulative barrier wait across shards
	CritPathMs     *Gauge   // volatile: per-window max shard busy time, summed (parallel critical path)
	ShardEvents    []*Gauge // volatile, labeled shard=i: events processed per shard
	ShardBusyMs    []*Gauge // volatile, labeled shard=i: wall time inside windows per shard
}

// NetMetrics instruments the flow-level network simulator.
type NetMetrics struct {
	FlowsStarted    *Counter
	FlowsCompleted  *Counter
	FlowsAborted    *Counter
	Reallocs        *Counter // max-min reallocation passes
	Reroutes        *Counter // flows moved to an alternate path after a link fault
	LinkTransitions *Counter // SetLinkState up/down changes
	ActiveFlowsMax  *Gauge
	FlowBytes       *Histogram

	// TCP transport instruments; only move when Config.Transport is "tcp".
	TCPFastRetransmits *Counter // loss recoveries without an RTO stall
	TCPTimeouts        *Counter // retransmission timeouts fired
	TCPCwndMaxBytes    *Gauge   // congestion-window high-water mark
	TCPQueueMaxBytes   *Gauge   // droptail queue-depth high-water mark
}

// HDFSMetrics instruments the simulated DFS.
type HDFSMetrics struct {
	BlocksWritten      *Counter
	BlocksRead         *Counter
	BytesWritten       *Counter
	BytesRead          *Counter
	Heartbeats         *Counter
	PipelineRecoveries *Counter
	ReadRetries        *Counter
	ReReplicatedBlocks *Counter
	ReReplicatedBytes  *Counter
	LostBlocks         *Counter
	DNCrashes          *Counter
	DNRejoins          *Counter
}

// YarnMetrics instruments the resource manager.
type YarnMetrics struct {
	NMHeartbeats      *Counter
	AMHeartbeats      *Counter
	ContainersGranted *Counter
	ContainersLocal   *Counter
	ContainersLost    *Counter
	NodeExpiries      *Counter
	NodeRejoins       *Counter
	QueueDepthMax     *Gauge
}

// MRMetrics instruments the MapReduce runtime.
type MRMetrics struct {
	JobsSubmitted      *Counter
	JobsCompleted      *Counter
	JobsFailed         *Counter
	MapAttempts        *Counter
	MapsCompleted      *Counter
	MapsReexecuted     *Counter
	MapsSpeculative    *Counter
	ReduceAttempts     *Counter
	ReducersReexecuted *Counter
	ShuffleFetches     *Counter
	ShuffleRetries     *Counter
	ShuffleBlacklists  *Counter
	AMRestarts         *Counter
}

// FaultMetrics counts injected and healed faults per kind.
type FaultMetrics struct {
	injected map[string]*Counter
	healed   map[string]*Counter
}

// Injected returns the injected-faults counter for kind (nil, hence a
// no-op, when the metrics were never built or the kind is unknown).
func (m FaultMetrics) Injected(kind string) *Counter { return m.injected[kind] }

// Healed returns the healed-faults counter for kind.
func (m FaultMetrics) Healed(kind string) *Counter { return m.healed[kind] }

// ServeMetrics instruments the keddah-serve streaming daemon: request
// admission, load shedding, stream lifecycle and model-cache traffic.
// Queue/active gauges are live values; the *Max gauges are monotone
// high-water marks (SetMax) so a post-run snapshot still shows peaks.
type ServeMetrics struct {
	Requests      *Counter // generation requests received (any outcome)
	Streams       *Counter // streams that ran to completion
	Shed          *Counter // requests shed with 503 (queue full or drain)
	QueueTimeouts *Counter // requests shed after waiting out the queue
	Deadlines     *Counter // streams aborted by per-request deadline
	ClientAborts  *Counter // streams aborted by client disconnect
	Panics        *Counter // generation panics recovered per-request
	BadRequests   *Counter // malformed or invalid specs rejected (400)
	ModelLoads    *Counter // model files loaded into the handle cache
	ModelErrors   *Counter // model loads that failed (negative-cached)
	FlowsStreamed *Counter // synthetic flows written to clients
	BytesStreamed *Counter // encoded bytes written to clients
	QueueDepth    *Gauge   // requests currently waiting for a worker slot
	QueueDepthMax *Gauge   // wait-queue high-water mark
	Active        *Gauge   // streams currently generating/encoding
	ActiveMax     *Gauge   // concurrent-stream high-water mark
	Draining      *Gauge   // 1 while the daemon is draining, else 0
}

// CoreMetrics instruments the capture→fit→generate→validate toolchain.
// The *WallMs gauges are volatile (wall-clock): Prometheus-only, never
// in the deterministic JSON snapshot.
type CoreMetrics struct {
	Captures       *Counter
	Fits           *Counter
	Generates      *Counter
	Validates      *Counter
	Replays        *Counter
	CaptureSimNs   *Gauge // high-water simulated end time across captures
	CaptureWallMs  *Gauge
	FitWallMs      *Gauge
	GenerateWallMs *Gauge
	ValidateWallMs *Gauge
	ReplayWallMs   *Gauge
}

// Telemetry is one observability session: the registry, the full metric
// catalog, the span tracer and (optionally) a link timeline. Share one
// instance across concurrent captures — instruments are atomic and the
// tracer locks — or use one per capture when per-run isolation matters.
type Telemetry struct {
	Reg   *Registry
	Trace *Tracer
	// Links, when non-nil, asks captures to sample per-link
	// utilisation/flow-count timelines. Enable with EnableLinkTimeline;
	// leave nil when several captures share this session (their
	// simulated clocks would interleave in one series).
	Links *LinkTimeline

	Sim   SimMetrics
	Shard ShardMetrics
	Net   NetMetrics
	HDFS  HDFSMetrics
	Yarn  YarnMetrics
	MR    MRMetrics
	Fault FaultMetrics
	Core  CoreMetrics
	Serve ServeMetrics
}

// FaultKinds are the fault kinds pre-registered by New. Kept as strings
// so telemetry does not import the faults package.
var FaultKinds = []string{"linkDown", "linkDegrade", "nodeCrash"}

// New builds a telemetry session with the full metric catalog
// registered. Flow-size histogram buckets are powers of four from 256 B
// to 4 GiB.
func New() *Telemetry {
	r := NewRegistry()
	t := &Telemetry{Reg: r, Trace: NewTracer(0)}

	t.Sim = SimMetrics{
		Events:       r.Counter("keddah_sim_events_total", "Discrete events processed."),
		HeapDepthMax: r.Gauge("keddah_sim_heap_depth_max", "Event queue high-water mark."),
	}

	t.Shard = ShardMetrics{
		Windows:        r.Counter("keddah_sim_shard_windows_total", "Conservative windows executed by the sharded scheduler."),
		BoundaryEvents: r.Counter("keddah_sim_shard_boundary_events_total", "Cross-shard events merged at window barriers."),
		StallMs:        r.VolatileGauge("keddah_sim_shard_stall_ms", "Cumulative barrier wait across shards (ms)."),
		CritPathMs:     r.VolatileGauge("keddah_sim_shard_crit_ms", "Parallel critical path: per-window max shard busy time, summed (ms)."),
	}

	var flowBounds []float64
	for b := float64(256); b <= float64(4)*(1<<30); b *= 4 {
		flowBounds = append(flowBounds, b)
	}
	t.Net = NetMetrics{
		FlowsStarted:    r.Counter("keddah_net_flows_started_total", "Flows admitted to the network."),
		FlowsCompleted:  r.Counter("keddah_net_flows_completed_total", "Flows that delivered all bytes."),
		FlowsAborted:    r.Counter("keddah_net_flows_aborted_total", "Flows aborted by faults or timeouts."),
		Reallocs:        r.Counter("keddah_net_reallocs_total", "Bandwidth reallocation passes."),
		Reroutes:        r.Counter("keddah_net_reroutes_total", "Flows rerouted after link state changes."),
		LinkTransitions: r.Counter("keddah_net_link_transitions_total", "Link up/down state changes."),
		ActiveFlowsMax:  r.Gauge("keddah_net_active_flows_max", "Concurrent flow high-water mark."),
		FlowBytes:       r.Histogram("keddah_net_flow_bytes", "Completed flow sizes in bytes.", flowBounds),

		TCPFastRetransmits: r.Counter("keddah_net_tcp_fast_retransmits_total", "TCP loss recoveries via fast retransmit."),
		TCPTimeouts:        r.Counter("keddah_net_tcp_rto_fired_total", "TCP retransmission timeouts fired."),
		TCPCwndMaxBytes:    r.Gauge("keddah_net_tcp_cwnd_max_bytes", "TCP congestion-window high-water mark."),
		TCPQueueMaxBytes:   r.Gauge("keddah_net_tcp_queue_depth_max_bytes", "Droptail queue-depth high-water mark."),
	}

	t.HDFS = HDFSMetrics{
		BlocksWritten:      r.Counter("keddah_hdfs_blocks_written_total", "Blocks fully written through pipelines."),
		BlocksRead:         r.Counter("keddah_hdfs_blocks_read_total", "Block reads completed."),
		BytesWritten:       r.Counter("keddah_hdfs_bytes_written_total", "Bytes written (per replica hop payload counted once)."),
		BytesRead:          r.Counter("keddah_hdfs_bytes_read_total", "Bytes read from DataNodes."),
		Heartbeats:         r.Counter("keddah_hdfs_heartbeats_total", "DataNode heartbeats sent."),
		PipelineRecoveries: r.Counter("keddah_hdfs_pipeline_recoveries_total", "Write pipelines rebuilt after a DataNode loss."),
		ReadRetries:        r.Counter("keddah_hdfs_read_retries_total", "Block read attempts retried on another replica."),
		ReReplicatedBlocks: r.Counter("keddah_hdfs_rereplicated_blocks_total", "Blocks re-replicated after node loss."),
		ReReplicatedBytes:  r.Counter("keddah_hdfs_rereplicated_bytes_total", "Bytes moved by re-replication."),
		LostBlocks:         r.Counter("keddah_hdfs_lost_blocks_total", "Blocks that lost all replicas."),
		DNCrashes:          r.Counter("keddah_hdfs_dn_crashes_total", "DataNode crash events."),
		DNRejoins:          r.Counter("keddah_hdfs_dn_rejoins_total", "DataNode rejoin (re-registration) events."),
	}

	t.Yarn = YarnMetrics{
		NMHeartbeats:      r.Counter("keddah_yarn_nm_heartbeats_total", "NodeManager heartbeats."),
		AMHeartbeats:      r.Counter("keddah_yarn_am_heartbeats_total", "ApplicationMaster heartbeats."),
		ContainersGranted: r.Counter("keddah_yarn_containers_granted_total", "Containers allocated."),
		ContainersLocal:   r.Counter("keddah_yarn_containers_local_total", "Containers allocated data-local."),
		ContainersLost:    r.Counter("keddah_yarn_containers_lost_total", "Containers lost to node failures."),
		NodeExpiries:      r.Counter("keddah_yarn_node_expiries_total", "NodeManagers declared lost by heartbeat expiry."),
		NodeRejoins:       r.Counter("keddah_yarn_node_rejoins_total", "NodeManagers re-registered after a crash."),
		QueueDepthMax:     r.Gauge("keddah_yarn_queue_depth_max", "Scheduler request-queue high-water mark."),
	}

	t.MR = MRMetrics{
		JobsSubmitted:      r.Counter("keddah_mr_jobs_submitted_total", "MapReduce jobs submitted."),
		JobsCompleted:      r.Counter("keddah_mr_jobs_completed_total", "MapReduce jobs completed."),
		JobsFailed:         r.Counter("keddah_mr_jobs_failed_total", "MapReduce jobs aborted."),
		MapAttempts:        r.Counter("keddah_mr_map_attempts_total", "Map task attempts launched."),
		MapsCompleted:      r.Counter("keddah_mr_maps_completed_total", "Map tasks completed."),
		MapsReexecuted:     r.Counter("keddah_mr_maps_reexecuted_total", "Map tasks re-executed after loss or fetch failures."),
		MapsSpeculative:    r.Counter("keddah_mr_maps_speculative_total", "Speculative map attempts launched."),
		ReduceAttempts:     r.Counter("keddah_mr_reduce_attempts_total", "Reduce task attempts launched."),
		ReducersReexecuted: r.Counter("keddah_mr_reducers_reexecuted_total", "Reduce tasks re-executed after container loss."),
		ShuffleFetches:     r.Counter("keddah_mr_shuffle_fetches_total", "Shuffle fetch flows started."),
		ShuffleRetries:     r.Counter("keddah_mr_shuffle_retries_total", "Shuffle fetches retried after aborts."),
		ShuffleBlacklists:  r.Counter("keddah_mr_shuffle_blacklists_total", "Shuffle source hosts blacklisted."),
		AMRestarts:         r.Counter("keddah_mr_am_restarts_total", "ApplicationMaster restarts."),
	}

	t.Fault = FaultMetrics{injected: map[string]*Counter{}, healed: map[string]*Counter{}}
	for _, k := range FaultKinds {
		t.Fault.injected[k] = r.Counter("keddah_faults_injected_total", "Faults injected.", "kind", k)
		t.Fault.healed[k] = r.Counter("keddah_faults_healed_total", "Faults healed (target recovered).", "kind", k)
	}

	t.Core = CoreMetrics{
		Captures:       r.Counter("keddah_core_captures_total", "Capture sessions completed."),
		Fits:           r.Counter("keddah_core_fits_total", "Model fits completed."),
		Generates:      r.Counter("keddah_core_generates_total", "Schedule generations completed."),
		Validates:      r.Counter("keddah_core_validates_total", "Validations completed."),
		Replays:        r.Counter("keddah_core_replays_total", "Schedule replays completed."),
		CaptureSimNs:   r.Gauge("keddah_core_capture_sim_ns", "Longest simulated capture duration (ns)."),
		CaptureWallMs:  r.VolatileGauge("keddah_core_capture_wall_ms", "Wall-clock time spent capturing (ms, cumulative)."),
		FitWallMs:      r.VolatileGauge("keddah_core_fit_wall_ms", "Wall-clock time spent fitting (ms, cumulative)."),
		GenerateWallMs: r.VolatileGauge("keddah_core_generate_wall_ms", "Wall-clock time spent generating (ms, cumulative)."),
		ValidateWallMs: r.VolatileGauge("keddah_core_validate_wall_ms", "Wall-clock time spent validating (ms, cumulative)."),
		ReplayWallMs:   r.VolatileGauge("keddah_core_replay_wall_ms", "Wall-clock time spent replaying (ms, cumulative)."),
	}

	t.Serve = ServeMetrics{
		Requests:      r.Counter("keddah_serve_requests_total", "Generation requests received."),
		Streams:       r.Counter("keddah_serve_streams_total", "Generation streams completed."),
		Shed:          r.Counter("keddah_serve_shed_total", "Requests shed with 503 (queue full or draining)."),
		QueueTimeouts: r.Counter("keddah_serve_queue_timeouts_total", "Requests shed after waiting out the admission queue."),
		Deadlines:     r.Counter("keddah_serve_deadlines_total", "Streams aborted by the per-request deadline."),
		ClientAborts:  r.Counter("keddah_serve_client_aborts_total", "Streams aborted by client disconnect."),
		Panics:        r.Counter("keddah_serve_panics_total", "Generation panics recovered per-request."),
		BadRequests:   r.Counter("keddah_serve_bad_requests_total", "Malformed or invalid generation requests rejected."),
		ModelLoads:    r.Counter("keddah_serve_model_loads_total", "Model files loaded into the handle cache."),
		ModelErrors:   r.Counter("keddah_serve_model_errors_total", "Model loads that failed (negative-cached)."),
		FlowsStreamed: r.Counter("keddah_serve_flows_streamed_total", "Synthetic flows written to clients."),
		BytesStreamed: r.Counter("keddah_serve_bytes_streamed_total", "Encoded bytes written to clients."),
		QueueDepth:    r.Gauge("keddah_serve_queue_depth", "Requests currently waiting for a worker slot."),
		QueueDepthMax: r.Gauge("keddah_serve_queue_depth_max", "Admission wait-queue high-water mark."),
		Active:        r.Gauge("keddah_serve_active_streams", "Streams currently generating or encoding."),
		ActiveMax:     r.Gauge("keddah_serve_active_streams_max", "Concurrent-stream high-water mark."),
		Draining:      r.Gauge("keddah_serve_draining", "1 while the daemon is draining, else 0."),
	}
	return t
}

// ShardSet returns the catalog's shard metrics extended with per-shard
// volatile utilisation gauges for n shards (labels shard="0".."n-1").
// The registry deduplicates instruments, so repeated calls — several
// captures sharing one session — reuse the same gauges.
func (t *Telemetry) ShardSet(n int) ShardMetrics {
	m := t.Shard
	for i := 0; i < n; i++ {
		k := strconv.Itoa(i)
		m.ShardEvents = append(m.ShardEvents,
			t.Reg.VolatileGauge("keddah_sim_shard_events", "Events processed by this shard.", "shard", k))
		m.ShardBusyMs = append(m.ShardBusyMs,
			t.Reg.VolatileGauge("keddah_sim_shard_busy_ms", "Wall time this shard spent inside windows (ms).", "shard", k))
	}
	return m
}

// EnableLinkTimeline attaches a per-link utilisation timeline sampled
// every intervalNs (<=0 selects 100 ms of simulated time).
func (t *Telemetry) EnableLinkTimeline(intervalNs int64) *LinkTimeline {
	t.Links = NewLinkTimeline(intervalNs)
	return t.Links
}

// Snapshot returns the deterministic (volatile-excluded) snapshot.
func (t *Telemetry) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	return t.Reg.Snapshot(false)
}
