// Package telemetry is the toolchain's observability subsystem: cheap
// atomic counters/gauges/histograms with deterministic snapshots, span
// phase tracing keyed to simulated time, and per-link utilisation
// timelines. It imports nothing from the rest of the repo so every layer
// (sim, netsim, hadoop, faults, core) can hook into it without cycles.
//
// Every instrument method is nil-receiver safe: a disabled layer holds
// nil instruments and each call degrades to a pointer test, which is what
// keeps the instrumented-off overhead near zero.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	name, help, labels string
	v                  atomic.Int64
}

// Inc adds one. Safe on a nil counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Safe on a nil counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float-valued metric. Volatile gauges carry wall-clock
// measurements: they appear in Prometheus exposition but are excluded
// from the deterministic JSON snapshot.
type Gauge struct {
	name, help, labels string
	volatile           bool
	bits               atomic.Uint64
}

// Set stores v. Safe on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add atomically adds v. Safe on a nil gauge.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value — a
// deterministic high-water mark even under concurrent captures. Safe on
// a nil gauge.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket integer distribution (e.g. flow sizes).
type Histogram struct {
	name, help string
	bounds     []float64 // upper bucket bounds ("le"), ascending
	buckets    []atomic.Int64
	sum        atomic.Int64
	count      atomic.Int64
}

// Observe records v. Safe on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, float64(v))
	h.buckets[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Registry owns instrument registration. Instruments are created up
// front (or lazily under the registry lock) and then updated lock-free;
// snapshots sort by name so exports are deterministic.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// labelString renders k/v pairs as `k="v",...` with keys sorted. It
// panics on an odd pair count (a programming error at registration).
func labelString(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("telemetry: odd label key/value count")
	}
	pairs := make([]string, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, fmt.Sprintf("%s=%q", kv[i], kv[i+1]))
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

func instrumentKey(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// Counter registers (or returns the existing) counter. Safe on a nil
// registry, which yields a nil no-op counter.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	labels := labelString(kv)
	key := instrumentKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[key]; ok {
		return c
	}
	c := &Counter{name: name, help: help, labels: labels}
	r.counters[key] = c
	return c
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	return r.gauge(name, help, false, kv)
}

// VolatileGauge registers a gauge carrying wall-clock (non-deterministic)
// data: exported to Prometheus, excluded from the JSON snapshot.
func (r *Registry) VolatileGauge(name, help string, kv ...string) *Gauge {
	return r.gauge(name, help, true, kv)
}

func (r *Registry) gauge(name, help string, volatile bool, kv []string) *Gauge {
	if r == nil {
		return nil
	}
	labels := labelString(kv)
	key := instrumentKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[key]; ok {
		return g
	}
	g := &Gauge{name: name, help: help, labels: labels, volatile: volatile}
	r.gauges[key] = g
	return g
}

// Histogram registers (or returns the existing) histogram with the given
// ascending upper bucket bounds; an implicit +Inf bucket is added.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	h := &Histogram{name: name, help: help, bounds: bs, buckets: make([]atomic.Int64, len(bs)+1)}
	r.histograms[name] = h
	return h
}

// CounterPoint is one counter in a snapshot.
type CounterPoint struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Help   string `json:"-"`
	Value  int64  `json:"value"`
}

// GaugePoint is one gauge in a snapshot.
type GaugePoint struct {
	Name     string  `json:"name"`
	Labels   string  `json:"labels,omitempty"`
	Help     string  `json:"-"`
	Value    float64 `json:"value"`
	Volatile bool    `json:"-"`
}

// BucketPoint is one cumulative histogram bucket.
type BucketPoint struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramPoint is one histogram in a snapshot. Buckets are cumulative
// in bound order; the final bucket is the +Inf catch-all (its LE is
// reported as math.MaxFloat64 so the JSON stays finite).
type HistogramPoint struct {
	Name    string        `json:"name"`
	Help    string        `json:"-"`
	Buckets []BucketPoint `json:"buckets"`
	Sum     int64         `json:"sum"`
	Count   int64         `json:"count"`
}

// Snapshot is a point-in-time, name-sorted view of every instrument.
type Snapshot struct {
	Counters   []CounterPoint   `json:"counters"`
	Gauges     []GaugePoint     `json:"gauges"`
	Histograms []HistogramPoint `json:"histograms"`
}

// Snapshot captures every instrument. With includeVolatile false the
// result is deterministic for a fixed seed (wall-clock gauges excluded).
func (r *Registry) Snapshot(includeVolatile bool) Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		s.Counters = append(s.Counters, CounterPoint{Name: c.name, Labels: c.labels, Help: c.help, Value: c.Value()})
	}
	for _, g := range r.gauges {
		if g.volatile && !includeVolatile {
			continue
		}
		s.Gauges = append(s.Gauges, GaugePoint{Name: g.name, Labels: g.labels, Help: g.help, Value: g.Value(), Volatile: g.volatile})
	}
	for _, h := range r.histograms {
		hp := HistogramPoint{Name: h.name, Help: h.help, Sum: h.sum.Load(), Count: h.count.Load()}
		var cum int64
		for i := range h.buckets {
			cum += h.buckets[i].Load()
			le := math.MaxFloat64
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			hp.Buckets = append(hp.Buckets, BucketPoint{LE: le, Count: cum})
		}
		s.Histograms = append(s.Histograms, hp)
	}
	sort.Slice(s.Counters, func(i, j int) bool {
		if s.Counters[i].Name != s.Counters[j].Name {
			return s.Counters[i].Name < s.Counters[j].Name
		}
		return s.Counters[i].Labels < s.Counters[j].Labels
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		if s.Gauges[i].Name != s.Gauges[j].Name {
			return s.Gauges[i].Name < s.Gauges[j].Name
		}
		return s.Gauges[i].Labels < s.Gauges[j].Labels
	})
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
