package telemetry

import (
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler exposing the session:
//
//	/metrics       Prometheus text exposition (includes wall-clock gauges)
//	/metrics.json  deterministic JSON snapshot
//	/trace.csv     span timeline CSV
//	/debug/pprof/  the standard net/http/pprof endpoints
func (t *Telemetry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = t.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = t.WriteJSON(w)
	})
	mux.HandleFunc("/trace.csv", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/csv")
		_ = t.WriteSpanCSV(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ListenAndServe blocks serving Handler on addr — run it in a goroutine
// alongside a long capture to watch metrics live and grab pprof profiles.
func (t *Telemetry) ListenAndServe(addr string) error {
	return http.ListenAndServe(addr, t.Handler())
}
