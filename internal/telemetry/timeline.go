package telemetry

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// LinkPoint is one sample of one link's state.
type LinkPoint struct {
	AtNs  int64   `json:"atNs"`
	Link  int     `json:"link"`
	Util  float64 `json:"util"`  // allocated rate / capacity
	Flows int     `json:"flows"` // flows currently crossing the link
}

// LinkTimeline is the per-link utilisation/queue time series sampled
// from netsim. Samples arrive in simulated-time order from a single
// capture's probe; the mutex makes concurrent use safe anyway.
type LinkTimeline struct {
	// IntervalNs is the sampling period the probe should use.
	IntervalNs int64

	mu     sync.Mutex
	points []LinkPoint
}

// NewLinkTimeline returns a timeline requesting the given sampling
// period (<=0 selects 100 ms).
func NewLinkTimeline(intervalNs int64) *LinkTimeline {
	if intervalNs <= 0 {
		intervalNs = 100_000_000
	}
	return &LinkTimeline{IntervalNs: intervalNs}
}

// Append records one sample. Safe on a nil timeline.
func (t *LinkTimeline) Append(p LinkPoint) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.points = append(t.points, p)
	t.mu.Unlock()
}

// Points returns a copy of the collected samples.
func (t *LinkTimeline) Points() []LinkPoint {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]LinkPoint, len(t.points))
	copy(out, t.points)
	return out
}

// WriteCSV writes the timeline as at_ns,link,util,flows rows.
func (t *LinkTimeline) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"at_ns", "link", "util", "flows"}); err != nil {
		return err
	}
	for _, p := range t.Points() {
		rec := []string{
			strconv.FormatInt(p.AtNs, 10),
			strconv.Itoa(p.Link),
			fmt.Sprintf("%.6f", p.Util),
			strconv.Itoa(p.Flows),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
