package telemetry

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// Every instrument method must be a no-op on a nil receiver — that IS
// the disabled path every layer takes when telemetry is not attached.
func TestNilReceiversAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter value")
	}
	var g *Gauge
	g.Set(1)
	g.Add(2)
	g.SetMax(3)
	if g.Value() != 0 {
		t.Error("nil gauge value")
	}
	var h *Histogram
	h.Observe(42)
	if h.Count() != 0 {
		t.Error("nil histogram count")
	}
	var tr *Tracer
	tr.Add(Span{Cat: "x"})
	if tr.Spans() != nil || tr.Dropped() != 0 {
		t.Error("nil tracer not empty")
	}
	var tl *LinkTimeline
	tl.Append(LinkPoint{})
	if tl.Points() != nil {
		t.Error("nil timeline not empty")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Error("nil registry returned instruments")
	}
	if s := r.Snapshot(false); len(s.Counters) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	var tel *Telemetry
	if s := tel.Snapshot(); len(s.Counters) != 0 {
		t.Error("nil telemetry snapshot not empty")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("keddah_test_total", "help")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	// Same name+labels returns the same instrument.
	if r.Counter("keddah_test_total", "help") != c {
		t.Error("re-registration returned a new counter")
	}
	g := r.Gauge("keddah_test_gauge", "help")
	g.Set(2)
	g.Add(0.5)
	if g.Value() != 2.5 {
		t.Errorf("gauge = %v", g.Value())
	}
	g.SetMax(1) // below current: no change
	if g.Value() != 2.5 {
		t.Errorf("SetMax lowered the gauge to %v", g.Value())
	}
	g.SetMax(7)
	if g.Value() != 7 {
		t.Errorf("SetMax = %v, want 7", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("keddah_test_bytes", "help", []float64{10, 100})
	for _, v := range []int64{1, 10, 11, 1000} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	s := r.Snapshot(false)
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %d", len(s.Histograms))
	}
	hp := s.Histograms[0]
	if hp.Sum != 1022 {
		t.Errorf("sum = %d", hp.Sum)
	}
	// Cumulative: le=10 holds {1,10}, le=100 adds {11}, +Inf adds {1000}.
	wantCum := []int64{2, 3, 4}
	for i, b := range hp.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d count = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if hp.Buckets[2].LE != math.MaxFloat64 {
		t.Errorf("last bucket LE = %v, want +Inf sentinel", hp.Buckets[2].LE)
	}
}

func TestSnapshotExcludesVolatileGauges(t *testing.T) {
	r := NewRegistry()
	r.Gauge("keddah_stable", "").Set(1)
	r.VolatileGauge("keddah_wall_ms", "").Set(123)
	det := r.Snapshot(false)
	if len(det.Gauges) != 1 || det.Gauges[0].Name != "keddah_stable" {
		t.Errorf("deterministic snapshot gauges = %+v", det.Gauges)
	}
	full := r.Snapshot(true)
	if len(full.Gauges) != 2 {
		t.Errorf("full snapshot gauges = %+v", full.Gauges)
	}
}

func TestLabelsSortedAndSnapshotOrdered(t *testing.T) {
	r := NewRegistry()
	// Labels in any registration order render identically.
	a := r.Counter("keddah_l_total", "", "b", "2", "a", "1")
	b := r.Counter("keddah_l_total", "", "a", "1", "b", "2")
	if a != b {
		t.Error("label order created distinct instruments")
	}
	r.Counter("keddah_z_total", "").Inc()
	r.Counter("keddah_a_total", "").Inc()
	s := r.Snapshot(false)
	for i := 1; i < len(s.Counters); i++ {
		prev, cur := s.Counters[i-1], s.Counters[i]
		if prev.Name > cur.Name || (prev.Name == cur.Name && prev.Labels > cur.Labels) {
			t.Fatalf("snapshot not sorted: %v before %v", prev, cur)
		}
	}
}

func TestTracerSortsAndBounds(t *testing.T) {
	tr := NewTracer(2)
	tr.Add(Span{Cat: "b", Name: "y", StartNs: 10, EndNs: 20})
	tr.Add(Span{Cat: "a", Name: "x", StartNs: 5, EndNs: 7})
	tr.Add(Span{Cat: "c", Name: "z", StartNs: 1, EndNs: 2}) // over the limit
	spans := tr.Spans()
	if len(spans) != 2 || tr.Dropped() != 1 {
		t.Fatalf("spans = %d dropped = %d", len(spans), tr.Dropped())
	}
	if spans[0].StartNs != 5 || spans[1].StartNs != 10 {
		t.Errorf("spans not time-sorted: %+v", spans)
	}
}

func TestSpanCSVEscapesAttrs(t *testing.T) {
	tr := NewTracer(0)
	tr.Add(Span{Cat: "mr", Name: "job", Attr: `with,comma "q"`, StartNs: 1, EndNs: 2})
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "cat,name,attr,start_ns,end_ns,duration_ns" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], `"with,comma ""q"""`) {
		t.Errorf("attr not CSV-escaped: %q", lines[1])
	}
}

// TestWriteJSONDeterministicUnderConcurrency drives a full catalog from
// many goroutines and checks that identical update sets produce
// byte-identical JSON snapshots.
func TestWriteJSONDeterministicUnderConcurrency(t *testing.T) {
	render := func() []byte {
		tel := New()
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 1000; i++ {
					tel.Sim.Events.Inc()
					tel.Net.FlowBytes.Observe(int64(i))
					tel.Net.ActiveFlowsMax.SetMax(float64(i))
					tel.Fault.Injected("linkDown").Inc()
					tel.Core.CaptureWallMs.Add(1.5) // volatile: must not affect JSON
				}
			}(w)
		}
		wg.Wait()
		var buf bytes.Buffer
		if err := tel.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Error("same updates produced different JSON snapshots")
	}
	if bytes.Contains(a, []byte("wall_ms")) {
		t.Error("volatile gauge leaked into the JSON snapshot")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	tel := New()
	tel.MR.JobsCompleted.Inc()
	tel.Fault.Injected("nodeCrash").Add(3)
	tel.Core.CaptureWallMs.Set(12.5)
	var buf bytes.Buffer
	if err := tel.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE keddah_mr_jobs_completed_total counter",
		"keddah_mr_jobs_completed_total 1",
		`keddah_faults_injected_total{kind="nodeCrash"} 3`,
		"keddah_core_capture_wall_ms 12.5", // volatile gauges ARE in Prometheus output
		"# TYPE keddah_net_flow_bytes histogram",
		`keddah_net_flow_bytes_bucket{le="+Inf"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}

func TestLinkTimelineCSV(t *testing.T) {
	tl := NewLinkTimeline(0)
	if tl.IntervalNs != 100_000_000 {
		t.Errorf("default interval = %d", tl.IntervalNs)
	}
	tl.Append(LinkPoint{AtNs: 100, Link: 3, Util: 0.5, Flows: 2})
	var buf bytes.Buffer
	if err := tl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "at_ns,link,util,flows\n100,3,0.500000,2\n"
	if buf.String() != want {
		t.Errorf("timeline CSV = %q, want %q", buf.String(), want)
	}
}

func TestUnknownFaultKindIsNoOp(t *testing.T) {
	tel := New()
	tel.Fault.Injected("notAKind").Inc() // nil counter: must not panic
	tel.Fault.Healed("notAKind").Inc()
	if got := tel.Fault.Injected("linkDown").Value(); got != 0 {
		t.Errorf("known kind polluted: %d", got)
	}
}
