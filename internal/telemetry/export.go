package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WriteJSON writes the deterministic snapshot as indented JSON. For a
// fixed seed and capture configuration the bytes are identical run to
// run: wall-clock gauges are excluded and every section is name-sorted.
func (t *Telemetry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(t.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// formatFloat renders a gauge or bound value the way Prometheus clients
// do (shortest round-trip representation).
func formatFloat(v float64) string {
	if math.IsInf(v, 1) || v == math.MaxFloat64 {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every instrument — including volatile
// wall-clock gauges — in the Prometheus text exposition format.
func (t *Telemetry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	s := t.Reg.Snapshot(true)

	lastName := ""
	for _, c := range s.Counters {
		if c.Name != lastName {
			fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n", c.Name, c.Help, c.Name)
			lastName = c.Name
		}
		if c.Labels != "" {
			fmt.Fprintf(bw, "%s{%s} %d\n", c.Name, c.Labels, c.Value)
		} else {
			fmt.Fprintf(bw, "%s %d\n", c.Name, c.Value)
		}
	}
	lastName = ""
	for _, g := range s.Gauges {
		if g.Name != lastName {
			fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s gauge\n", g.Name, g.Help, g.Name)
			lastName = g.Name
		}
		if g.Labels != "" {
			fmt.Fprintf(bw, "%s{%s} %s\n", g.Name, g.Labels, formatFloat(g.Value))
		} else {
			fmt.Fprintf(bw, "%s %s\n", g.Name, formatFloat(g.Value))
		}
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s histogram\n", h.Name, h.Help, h.Name)
		for _, b := range h.Buckets {
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", h.Name, formatFloat(b.LE), b.Count)
		}
		fmt.Fprintf(bw, "%s_sum %d\n", h.Name, h.Sum)
		fmt.Fprintf(bw, "%s_count %d\n", h.Name, h.Count)
	}
	return bw.Flush()
}

// WriteSpanCSV writes the span timeline (empty but valid CSV when no
// tracer is attached).
func (t *Telemetry) WriteSpanCSV(w io.Writer) error {
	var tr *Tracer
	if t != nil {
		tr = t.Trace
	}
	return tr.WriteCSV(w)
}
