package telemetry

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// Flags is the standard telemetry flag set shared by the keddah
// commands. Register binds it to a FlagSet; after the command's work,
// Emit writes whatever outputs were requested.
type Flags struct {
	// Metrics prints the Prometheus text exposition and the JSON
	// snapshot to stdout when the command finishes.
	Metrics bool
	// MetricsOut writes <prefix>.prom and <prefix>.json files.
	MetricsOut string
	// TraceOut writes the span timeline as CSV.
	TraceOut string
	// LinksOut enables the per-link utilisation timeline and writes it
	// as CSV (single-capture commands only).
	LinksOut string
	// PprofAddr serves /metrics, /metrics.json, /trace.csv and
	// /debug/pprof on this address for the lifetime of the command.
	PprofAddr string
}

// Register binds the telemetry flags.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.BoolVar(&f.Metrics, "metrics", false, "collect telemetry; print Prometheus text and JSON snapshot to stdout on exit")
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "collect telemetry; write <prefix>.prom and <prefix>.json snapshots")
	fs.StringVar(&f.TraceOut, "trace-out", "", "collect telemetry; write the phase-span timeline as CSV to this path")
	fs.StringVar(&f.LinksOut, "links-out", "", "sample per-link utilisation; write the timeline as CSV to this path")
	fs.StringVar(&f.PprofAddr, "pprof", "", "serve /metrics and /debug/pprof on this address (e.g. localhost:6060)")
}

// Enabled reports whether any telemetry output was requested.
func (f *Flags) Enabled() bool {
	return f.Metrics || f.MetricsOut != "" || f.TraceOut != "" || f.LinksOut != "" || f.PprofAddr != ""
}

// Telemetry builds the instrumentation the flags ask for, or nil when
// none was requested. A requested pprof server starts immediately on a
// background goroutine.
func (f *Flags) Telemetry() *Telemetry {
	if !f.Enabled() {
		return nil
	}
	t := New()
	if f.LinksOut != "" {
		t.EnableLinkTimeline(0)
	}
	if f.PprofAddr != "" {
		go func() {
			if err := t.ListenAndServe(f.PprofAddr); err != nil {
				fmt.Fprintln(os.Stderr, "telemetry: pprof server:", err)
			}
		}()
	}
	return t
}

// Emit writes the requested outputs. stdout receives the -metrics
// exposition; file outputs go to their configured paths.
func (f *Flags) Emit(t *Telemetry, stdout io.Writer) error {
	if t == nil {
		return nil
	}
	if f.Metrics {
		if err := t.WritePrometheus(stdout); err != nil {
			return fmt.Errorf("telemetry: prometheus: %w", err)
		}
		if err := t.WriteJSON(stdout); err != nil {
			return fmt.Errorf("telemetry: json: %w", err)
		}
	}
	if f.MetricsOut != "" {
		if err := writeFile(f.MetricsOut+".prom", t.WritePrometheus); err != nil {
			return err
		}
		if err := writeFile(f.MetricsOut+".json", t.WriteJSON); err != nil {
			return err
		}
	}
	if f.TraceOut != "" {
		if err := writeFile(f.TraceOut, func(w io.Writer) error {
			return t.Trace.WriteCSV(w)
		}); err != nil {
			return err
		}
	}
	if f.LinksOut != "" && t.Links != nil {
		if err := writeFile(f.LinksOut, func(w io.Writer) error {
			return t.Links.WriteCSV(w)
		}); err != nil {
			return err
		}
	}
	return nil
}

func writeFile(path string, write func(io.Writer) error) error {
	fh, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	if err := write(fh); err != nil {
		fh.Close()
		return fmt.Errorf("telemetry: write %s: %w", path, err)
	}
	return fh.Close()
}
