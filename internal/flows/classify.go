// Package flows classifies reassembled flow records into Hadoop traffic
// components and provides the aggregation helpers Keddah's modelling stage
// consumes (per-phase sizes, counts, inter-arrivals, volumes).
package flows

import (
	"strings"

	"keddah/internal/pcap"
)

// Phase is a Hadoop traffic component.
type Phase string

// The four components Keddah models, plus a bucket for anything else.
const (
	PhaseHDFSRead  Phase = "hdfs_read"
	PhaseHDFSWrite Phase = "hdfs_write"
	PhaseShuffle   Phase = "shuffle"
	PhaseControl   Phase = "control"
	PhaseOther     Phase = "other"
)

// AllPhases lists the modelled components in reporting order.
var AllPhases = []Phase{PhaseHDFSRead, PhaseHDFSWrite, PhaseShuffle, PhaseControl}

// Well-known Hadoop 2.x ports (the port map Keddah's classifier relies on).
const (
	PortDataNodeData = 50010 // HDFS block data transfer
	PortDataNodeIPC  = 50020 // DataNode RPC
	PortNameNodeRPC  = 8020  // NameNode client RPC
	PortNameNodeHTTP = 50070 // NameNode web/status
	PortShuffle      = 13562 // MapReduce ShuffleHandler (HTTP)
	PortRMScheduler  = 8030  // YARN RM applications/scheduler RPC
	PortRMTracker    = 8031  // YARN RM resource tracker (NM heartbeats)
	PortRMAdmin      = 8033  // YARN RM admin RPC
	PortRMClient     = 8032  // YARN RM client RPC
	PortNMIPC        = 8040  // NodeManager localizer IPC
	PortNMHTTP       = 8042  // NodeManager web/status
	PortJobHistory   = 10020 // MapReduce job history server
	PortAMUmbilical  = 30022 // task ↔ ApplicationMaster umbilical (simulated convention)
)

var controlPorts = map[uint16]bool{
	PortDataNodeIPC:  true,
	PortNameNodeRPC:  true,
	PortNameNodeHTTP: true,
	PortRMScheduler:  true,
	PortRMTracker:    true,
	PortRMAdmin:      true,
	PortRMClient:     true,
	PortNMIPC:        true,
	PortNMHTTP:       true,
	PortJobHistory:   true,
	PortAMUmbilical:  true,
}

// Classify maps a flow record to its Hadoop traffic component using the
// well-known port conventions:
//
//   - src port 50010  → HDFS read  (DataNode streams a block to a client)
//   - dst port 50010  → HDFS write (client or upstream DataNode pushes a
//     block into a DataNode; covers pipeline replication)
//   - port 13562 on either side → shuffle (reducer fetch over HTTP)
//   - any RPC/heartbeat port → control
//   - everything else → other
func Classify(r pcap.FlowRecord) Phase {
	k := r.Key
	switch {
	case k.SrcPort == PortShuffle || k.DstPort == PortShuffle:
		return PhaseShuffle
	case k.SrcPort == PortDataNodeData:
		return PhaseHDFSRead
	case k.DstPort == PortDataNodeData:
		return PhaseHDFSWrite
	case controlPorts[k.SrcPort] || controlPorts[k.DstPort]:
		return PhaseControl
	default:
		return PhaseOther
	}
}

// recoveryLabels are whole ground-truth labels produced only by
// failure-recovery machinery.
var recoveryLabels = map[string]bool{
	"hdfs/reReplication": true,
	"hdfs/register":      true,
	"hdfs/blockReport":   true,
	"yarn/nmRegister":    true,
}

// IsRecovery reports whether a ground-truth label marks retry or
// recovery traffic caused by fault injection: shuffle re-fetches, HDFS
// pipeline recovery and read retries (the "-retry"/"-recovery" label
// suffixes), NameNode re-replication, and daemon re-registration flows.
// Labels are simulator ground truth, so this is exact, not heuristic.
func IsRecovery(label string) bool {
	if recoveryLabels[label] {
		return true
	}
	return strings.HasSuffix(label, "-retry") || strings.HasSuffix(label, "-recovery")
}
