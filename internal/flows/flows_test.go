package flows

import (
	"slices"
	"testing"

	"keddah/internal/pcap"
	"keddah/internal/stats"
)

func rec(srcPort, dstPort uint16, bytes int64, firstNs, lastNs int64, label string) pcap.FlowRecord {
	return pcap.FlowRecord{
		Key: pcap.FlowKey{
			Src: pcap.HostAddr(1), Dst: pcap.HostAddr(2),
			SrcPort: srcPort, DstPort: dstPort, Proto: pcap.ProtoTCP,
		},
		Bytes: bytes, FirstNs: firstNs, LastNs: lastNs, Label: label,
	}
}

func TestClassifyPortMap(t *testing.T) {
	cases := []struct {
		name string
		r    pcap.FlowRecord
		want Phase
	}{
		{"hdfs read (src 50010)", rec(PortDataNodeData, 40000, 1, 0, 1, ""), PhaseHDFSRead},
		{"hdfs write (dst 50010)", rec(40000, PortDataNodeData, 1, 0, 1, ""), PhaseHDFSWrite},
		{"shuffle src", rec(PortShuffle, 40000, 1, 0, 1, ""), PhaseShuffle},
		{"shuffle dst", rec(40000, PortShuffle, 1, 0, 1, ""), PhaseShuffle},
		{"nn rpc", rec(40000, PortNameNodeRPC, 1, 0, 1, ""), PhaseControl},
		{"rm tracker", rec(40000, PortRMTracker, 1, 0, 1, ""), PhaseControl},
		{"rm scheduler", rec(40000, PortRMScheduler, 1, 0, 1, ""), PhaseControl},
		{"am umbilical", rec(40000, PortAMUmbilical, 1, 0, 1, ""), PhaseControl},
		{"unknown", rec(40000, 40001, 1, 0, 1, ""), PhaseOther},
	}
	for _, c := range cases {
		if got := Classify(c.r); got != c.want {
			t.Errorf("%s: classified %s, want %s", c.name, got, c.want)
		}
	}
}

func TestClassifyShuffleBeatsControl(t *testing.T) {
	// A flow from the shuffle port to an RPC port (contrived) must
	// classify as shuffle — the shuffle rule is checked first.
	r := rec(PortShuffle, PortNameNodeRPC, 1, 0, 1, "")
	if got := Classify(r); got != PhaseShuffle {
		t.Errorf("got %s, want shuffle", got)
	}
}

func testDataset() *Dataset {
	return NewDataset([]pcap.FlowRecord{
		rec(PortDataNodeData, 40000, 100, 0, 10, "job1/read"),
		rec(40001, PortDataNodeData, 200, 5, 20, "job1/write"),
		rec(PortShuffle, 40002, 300, 10, 30, "job1/shuffle"),
		rec(PortShuffle, 40003, 500, 20, 45, "job1/shuffle"),
		rec(40004, PortRMTracker, 10, 2, 3, "yarn/hb"),
	})
}

func TestDatasetAggregation(t *testing.T) {
	ds := testDataset()
	if ds.Len() != 5 {
		t.Fatalf("len = %d", ds.Len())
	}
	if v := ds.Volume(PhaseShuffle); v != 800 {
		t.Errorf("shuffle volume = %d, want 800", v)
	}
	if v := ds.Volume(""); v != 1110 {
		t.Errorf("total volume = %d, want 1110", v)
	}
	if n := ds.Count(PhaseShuffle); n != 2 {
		t.Errorf("shuffle count = %d, want 2", n)
	}
	if n := ds.Count(""); n != 5 {
		t.Errorf("total count = %d", n)
	}
	sizes := ds.Sizes(PhaseShuffle)
	if len(sizes) != 2 || sizes[0] != 300 || sizes[1] != 500 {
		t.Errorf("shuffle sizes = %v", sizes)
	}
	durs := ds.Durations(PhaseHDFSRead)
	if len(durs) != 1 || durs[0] != 10e-9 {
		t.Errorf("read durations = %v", durs)
	}
	breakdown := ds.VolumeBreakdown()
	if breakdown[PhaseControl] != 10 {
		t.Errorf("control volume = %d", breakdown[PhaseControl])
	}
}

func TestDatasetInterArrivals(t *testing.T) {
	ds := testDataset()
	ia := ds.InterArrivals(PhaseShuffle)
	if len(ia) != 1 {
		t.Fatalf("inter-arrivals = %v", ia)
	}
	if ia[0] != 10e-9 {
		t.Errorf("gap = %v, want 10ns in seconds", ia[0])
	}
	if got := ds.InterArrivals(PhaseControl); got != nil {
		t.Errorf("single flow inter-arrivals = %v, want nil", got)
	}
}

func TestDatasetSpan(t *testing.T) {
	ds := testDataset()
	first, last := ds.Span()
	if first != 0 || last != 45 {
		t.Errorf("span = [%d, %d], want [0, 45]", first, last)
	}
	e := NewDataset(nil)
	if f, l := e.Span(); f != 0 || l != 0 {
		t.Errorf("empty span = [%d, %d]", f, l)
	}
}

func TestDatasetFilterAndByPhase(t *testing.T) {
	ds := testDataset()
	sub := ds.ByPhase(PhaseShuffle)
	if sub.Len() != 2 {
		t.Fatalf("ByPhase len = %d", sub.Len())
	}
	big := ds.Filter(func(r pcap.FlowRecord, _ Phase) bool { return r.Bytes >= 200 })
	if big.Len() != 3 {
		t.Errorf("Filter len = %d, want 3", big.Len())
	}
}

func TestGroupByJob(t *testing.T) {
	groups := GroupByJob(testDataset().Records)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2 (job1, yarn)", len(groups))
	}
	if groups["job1"].Len() != 4 {
		t.Errorf("job1 flows = %d, want 4", groups["job1"].Len())
	}
	if groups["yarn"].Len() != 1 {
		t.Errorf("yarn flows = %d, want 1", groups["yarn"].Len())
	}
	keys := JobKeys(groups)
	if len(keys) != 2 || keys[0] != "job1" || keys[1] != "yarn" {
		t.Errorf("keys = %v", keys)
	}
}

func TestGroupByJobUnlabelled(t *testing.T) {
	groups := GroupByJob([]pcap.FlowRecord{rec(1, 2, 5, 0, 1, "")})
	if groups[""].Len() != 1 {
		t.Error("unlabelled records must land in the empty bucket")
	}
	if keys := JobKeys(groups); len(keys) != 0 {
		t.Errorf("JobKeys included the empty bucket: %v", keys)
	}
}

// TestDatasetPhaseIndexConsistency cross-checks the construction-time
// phase index against per-record classification: ByPhase and Filter must
// agree with classifying every record directly, and the cached phases
// must survive through derived datasets without re-classification.
func TestDatasetPhaseIndexConsistency(t *testing.T) {
	ds := testDataset()
	for i, r := range ds.Records {
		if got, want := ds.Phase(i), Classify(r); got != want {
			t.Fatalf("record %d: cached phase %s, want %s", i, got, want)
		}
	}
	allPhases := append(append([]Phase{}, AllPhases...), PhaseOther)
	total := 0
	for _, ph := range allPhases {
		sub := ds.ByPhase(ph)
		total += sub.Len()
		if sub.Len() != ds.Count(ph) {
			t.Fatalf("%s: ByPhase len %d != Count %d", ph, sub.Len(), ds.Count(ph))
		}
		for i, r := range sub.Records {
			if sub.Phase(i) != ph {
				t.Fatalf("%s: sub record %d cached phase %s", ph, i, sub.Phase(i))
			}
			if Classify(r) != ph {
				t.Fatalf("%s: sub record %d classifies as %s", ph, i, Classify(r))
			}
		}
		// ByPhase must agree with the equivalent Filter.
		filtered := ds.Filter(func(_ pcap.FlowRecord, p Phase) bool { return p == ph })
		if filtered.Len() != sub.Len() {
			t.Fatalf("%s: Filter len %d != ByPhase len %d", ph, filtered.Len(), sub.Len())
		}
	}
	if total != ds.Len() {
		t.Fatalf("phases partition %d of %d records", total, ds.Len())
	}
}

func TestDatasetSeriesExactValues(t *testing.T) {
	ds := testDataset()
	durs := ds.Durations(PhaseShuffle)
	if len(durs) != 2 || durs[0] != 20e-9 || durs[1] != 25e-9 {
		t.Fatalf("shuffle durations = %v", durs)
	}
	inter := ds.InterArrivals("")
	// Starts 0,5,10,20,2 → sorted 0,2,5,10,20 → gaps 2,3,5,10 ns.
	want := []float64{2e-9, 3e-9, 5e-9, 10e-9}
	if len(inter) != len(want) {
		t.Fatalf("inter-arrivals = %v", inter)
	}
	for i := range want {
		if inter[i] != want[i] {
			t.Fatalf("inter-arrivals = %v, want %v", inter, want)
		}
	}
	if got := ds.InterArrivals(PhaseControl); got != nil {
		t.Fatalf("single-flow phase inter-arrivals = %v, want nil", got)
	}
	if got := ds.Sizes(PhaseOther); got != nil {
		t.Fatalf("empty phase sizes = %v, want nil", got)
	}
}

func TestDatasetSamplesSorted(t *testing.T) {
	ds := testDataset()
	for _, ph := range []Phase{"", PhaseShuffle, PhaseHDFSRead} {
		for name, s := range map[string]*stats.Sample{
			"size":     ds.SizeSample(ph),
			"duration": ds.DurationSample(ph),
			"inter":    ds.InterArrivalSample(ph),
		} {
			if !slices.IsSorted(s.Values()) {
				t.Fatalf("%s/%s sample not sorted: %v", ph, name, s.Values())
			}
		}
	}
	s := ds.SizeSample(PhaseShuffle)
	if s.Len() != 2 || s.Min() != 300 || s.Max() != 500 || s.Mean() != 400 {
		t.Fatalf("shuffle size sample: len=%d min=%v max=%v mean=%v",
			s.Len(), s.Min(), s.Max(), s.Mean())
	}
}
