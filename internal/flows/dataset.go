package flows

import (
	"slices"
	"strings"
	"sync"

	"keddah/internal/pcap"
	"keddah/internal/stats"
)

// Dataset is an ordered collection of flow records with cached phase
// classification. It is the unit Keddah's modelling stage consumes.
// Classification runs exactly once, at construction: a phase index
// (phase → record indices) built alongside it makes every per-phase
// view — ByPhase, Sizes, Durations, InterArrivals, Volume, Count — an
// exact-prealloc single scan instead of a re-classifying filter pass.
type Dataset struct {
	Records []pcap.FlowRecord
	phases  []Phase
	idx     map[Phase][]int32

	// samples lazily caches the sorted per-phase Sample views. Records
	// and phases are immutable after construction, so a sample — and the
	// moments it caches internally — stays valid for the dataset's
	// lifetime and can be shared by every fit and validation pass instead
	// of re-sorting per call. Guarded by mu; datasets are safe for
	// concurrent read use.
	mu      sync.Mutex
	samples map[sampleKey]*stats.Sample
}

// sampleKey identifies one cached sample view: which series, which phase.
type sampleKey struct {
	kind  uint8
	phase Phase
}

const (
	sampleSizes uint8 = iota
	sampleDurations
	sampleInterArrivals
)

// cachedSample returns the memoized sample for (kind, p), building it
// via build on first use. The lock is held across build — the builders
// are single linear scans, and duplicate concurrent builds would waste
// the very sort this cache exists to avoid.
func (d *Dataset) cachedSample(kind uint8, p Phase, build func() []float64) *stats.Sample {
	d.mu.Lock()
	defer d.mu.Unlock()
	k := sampleKey{kind: kind, phase: p}
	if s, ok := d.samples[k]; ok {
		return s
	}
	if d.samples == nil {
		d.samples = make(map[sampleKey]*stats.Sample)
	}
	s := stats.NewSampleOwned(build())
	d.samples[k] = s
	return s
}

// NewDataset classifies every record once and returns the dataset.
// The record slice is copied.
func NewDataset(records []pcap.FlowRecord) *Dataset {
	recs := make([]pcap.FlowRecord, len(records))
	copy(recs, records)
	phases := make([]Phase, len(recs))
	for i, r := range recs {
		phases[i] = Classify(r)
	}
	return newClassified(recs, phases)
}

// newClassified assembles a dataset from records whose classification is
// already known, taking ownership of both slices. Filter and ByPhase use
// it to thread the cached phases through instead of calling Classify
// again — classification is pure today, but re-running it was wasted
// work and a trap if it ever gains state.
func newClassified(records []pcap.FlowRecord, phases []Phase) *Dataset {
	d := &Dataset{
		Records: records,
		phases:  phases,
		idx:     make(map[Phase][]int32, len(AllPhases)+1),
	}
	for i, p := range phases {
		d.idx[p] = append(d.idx[p], int32(i))
	}
	return d
}

// Len returns the record count.
func (d *Dataset) Len() int { return len(d.Records) }

// Phase returns the classification of record i.
func (d *Dataset) Phase(i int) Phase { return d.phases[i] }

// Filter returns a new dataset of records satisfying keep.
func (d *Dataset) Filter(keep func(r pcap.FlowRecord, p Phase) bool) *Dataset {
	var recs []pcap.FlowRecord
	var phases []Phase
	for i, r := range d.Records {
		if keep(r, d.phases[i]) {
			recs = append(recs, r)
			phases = append(phases, d.phases[i])
		}
	}
	return newClassified(recs, phases)
}

// ByPhase returns the sub-dataset of one phase.
func (d *Dataset) ByPhase(p Phase) *Dataset {
	ids := d.idx[p]
	recs := make([]pcap.FlowRecord, len(ids))
	phases := make([]Phase, len(ids))
	for i, id := range ids {
		recs[i] = d.Records[id]
		phases[i] = p
	}
	return newClassified(recs, phases)
}

// Sizes returns the per-flow byte counts of records in phase p
// (all phases if p is empty).
func (d *Dataset) Sizes(p Phase) []float64 {
	if p == "" {
		if len(d.Records) == 0 {
			return nil
		}
		out := make([]float64, len(d.Records))
		for i := range d.Records {
			out[i] = float64(d.Records[i].Bytes)
		}
		return out
	}
	ids := d.idx[p]
	if len(ids) == 0 {
		return nil
	}
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = float64(d.Records[id].Bytes)
	}
	return out
}

// SizeSample returns the per-flow byte counts of phase p as a sorted
// stats.Sample, ready for fitting and goodness-of-fit without further
// copying. The sample is built once per (dataset, phase) and cached;
// callers must treat it as read-only.
func (d *Dataset) SizeSample(p Phase) *stats.Sample {
	return d.cachedSample(sampleSizes, p, func() []float64 { return d.Sizes(p) })
}

// Durations returns per-flow durations in seconds for phase p.
func (d *Dataset) Durations(p Phase) []float64 {
	if p == "" {
		if len(d.Records) == 0 {
			return nil
		}
		out := make([]float64, len(d.Records))
		for i := range d.Records {
			out[i] = float64(d.Records[i].DurationNs()) / 1e9
		}
		return out
	}
	ids := d.idx[p]
	if len(ids) == 0 {
		return nil
	}
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = float64(d.Records[id].DurationNs()) / 1e9
	}
	return out
}

// DurationSample returns the per-flow durations of phase p as a sorted
// stats.Sample, cached per (dataset, phase); treat as read-only.
func (d *Dataset) DurationSample(p Phase) *stats.Sample {
	return d.cachedSample(sampleDurations, p, func() []float64 { return d.Durations(p) })
}

// InterArrivals returns successive flow start gaps in seconds for phase p,
// ordered by start time.
func (d *Dataset) InterArrivals(p Phase) []float64 {
	var starts []int64
	if p == "" {
		starts = make([]int64, len(d.Records))
		for i := range d.Records {
			starts[i] = d.Records[i].FirstNs
		}
	} else {
		ids := d.idx[p]
		starts = make([]int64, len(ids))
		for i, id := range ids {
			starts[i] = d.Records[id].FirstNs
		}
	}
	slices.Sort(starts)
	if len(starts) < 2 {
		return nil
	}
	out := make([]float64, 0, len(starts)-1)
	for i := 1; i < len(starts); i++ {
		out = append(out, float64(starts[i]-starts[i-1])/1e9)
	}
	return out
}

// InterArrivalSample returns the inter-arrival gaps of phase p as a
// sorted stats.Sample, cached per (dataset, phase); treat as read-only.
func (d *Dataset) InterArrivalSample(p Phase) *stats.Sample {
	return d.cachedSample(sampleInterArrivals, p, func() []float64 { return d.InterArrivals(p) })
}

// Volume sums bytes over phase p (all records if p is empty).
func (d *Dataset) Volume(p Phase) int64 {
	var total int64
	if p == "" {
		for i := range d.Records {
			total += d.Records[i].Bytes
		}
		return total
	}
	for _, id := range d.idx[p] {
		total += d.Records[id].Bytes
	}
	return total
}

// Count returns the number of flows in phase p (all if empty).
func (d *Dataset) Count(p Phase) int {
	if p == "" {
		return len(d.Records)
	}
	return len(d.idx[p])
}

// VolumeBreakdown returns bytes per modelled phase plus the "other" bucket.
func (d *Dataset) VolumeBreakdown() map[Phase]int64 {
	out := make(map[Phase]int64, len(d.idx))
	for p, ids := range d.idx {
		var total int64
		for _, id := range ids {
			total += d.Records[id].Bytes
		}
		out[p] = total
	}
	return out
}

// Span returns the first start and last end timestamps (ns); zeroes for an
// empty dataset.
func (d *Dataset) Span() (firstNs, lastNs int64) {
	if len(d.Records) == 0 {
		return 0, 0
	}
	firstNs, lastNs = d.Records[0].FirstNs, d.Records[0].LastNs
	for _, r := range d.Records[1:] {
		if r.FirstNs < firstNs {
			firstNs = r.FirstNs
		}
		if r.LastNs > lastNs {
			lastNs = r.LastNs
		}
	}
	return firstNs, lastNs
}

// PhaseSpan is Span restricted to phase p (all records if p is empty),
// read off the phase index without materializing a sub-dataset.
func (d *Dataset) PhaseSpan(p Phase) (firstNs, lastNs int64) {
	if p == "" {
		return d.Span()
	}
	ids := d.idx[p]
	if len(ids) == 0 {
		return 0, 0
	}
	r0 := d.Records[ids[0]]
	firstNs, lastNs = r0.FirstNs, r0.LastNs
	for _, id := range ids[1:] {
		r := d.Records[id]
		if r.FirstNs < firstNs {
			firstNs = r.FirstNs
		}
		if r.LastNs > lastNs {
			lastNs = r.LastNs
		}
	}
	return firstNs, lastNs
}

// GroupByJob splits ground-truth-labelled records on the "<job>/" label
// prefix (e.g. "job3/shuffle" → key "job3"). Unlabelled records land under
// the empty key — callers decide whether that bucket matters.
func GroupByJob(records []pcap.FlowRecord) map[string]*Dataset {
	byJob := make(map[string][]pcap.FlowRecord)
	for _, r := range records {
		key := ""
		if i := strings.IndexByte(r.Label, '/'); i >= 0 {
			key = r.Label[:i]
		}
		byJob[key] = append(byJob[key], r)
	}
	out := make(map[string]*Dataset, len(byJob))
	for k, recs := range byJob {
		out[k] = NewDataset(recs)
	}
	return out
}

// JobKeys returns the sorted non-empty job keys of a GroupByJob result.
func JobKeys(groups map[string]*Dataset) []string {
	keys := make([]string, 0, len(groups))
	for k := range groups {
		if k != "" {
			keys = append(keys, k)
		}
	}
	slices.Sort(keys)
	return keys
}
