package flows

import (
	"sort"
	"strings"

	"keddah/internal/pcap"
)

// Dataset is an ordered collection of flow records with cached phase
// classification. It is the unit Keddah's modelling stage consumes.
type Dataset struct {
	Records []pcap.FlowRecord
	phases  []Phase
}

// NewDataset classifies every record once and returns the dataset.
// The record slice is copied.
func NewDataset(records []pcap.FlowRecord) *Dataset {
	d := &Dataset{
		Records: make([]pcap.FlowRecord, len(records)),
		phases:  make([]Phase, len(records)),
	}
	copy(d.Records, records)
	for i, r := range d.Records {
		d.phases[i] = Classify(r)
	}
	return d
}

// Len returns the record count.
func (d *Dataset) Len() int { return len(d.Records) }

// Phase returns the classification of record i.
func (d *Dataset) Phase(i int) Phase { return d.phases[i] }

// Filter returns a new dataset of records satisfying keep.
func (d *Dataset) Filter(keep func(r pcap.FlowRecord, p Phase) bool) *Dataset {
	var recs []pcap.FlowRecord
	for i, r := range d.Records {
		if keep(r, d.phases[i]) {
			recs = append(recs, r)
		}
	}
	return NewDataset(recs)
}

// ByPhase returns the sub-dataset of one phase.
func (d *Dataset) ByPhase(p Phase) *Dataset {
	return d.Filter(func(_ pcap.FlowRecord, q Phase) bool { return q == p })
}

// Sizes returns the per-flow byte counts of records in phase p
// (all phases if p is empty).
func (d *Dataset) Sizes(p Phase) []float64 {
	var out []float64
	for i, r := range d.Records {
		if p == "" || d.phases[i] == p {
			out = append(out, float64(r.Bytes))
		}
	}
	return out
}

// Durations returns per-flow durations in seconds for phase p.
func (d *Dataset) Durations(p Phase) []float64 {
	var out []float64
	for i, r := range d.Records {
		if p == "" || d.phases[i] == p {
			out = append(out, float64(r.DurationNs())/1e9)
		}
	}
	return out
}

// InterArrivals returns successive flow start gaps in seconds for phase p,
// ordered by start time.
func (d *Dataset) InterArrivals(p Phase) []float64 {
	var starts []int64
	for i, r := range d.Records {
		if p == "" || d.phases[i] == p {
			starts = append(starts, r.FirstNs)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	if len(starts) < 2 {
		return nil
	}
	out := make([]float64, 0, len(starts)-1)
	for i := 1; i < len(starts); i++ {
		out = append(out, float64(starts[i]-starts[i-1])/1e9)
	}
	return out
}

// Volume sums bytes over phase p (all records if p is empty).
func (d *Dataset) Volume(p Phase) int64 {
	var total int64
	for i, r := range d.Records {
		if p == "" || d.phases[i] == p {
			total += r.Bytes
		}
	}
	return total
}

// Count returns the number of flows in phase p (all if empty).
func (d *Dataset) Count(p Phase) int {
	if p == "" {
		return len(d.Records)
	}
	n := 0
	for _, q := range d.phases {
		if q == p {
			n++
		}
	}
	return n
}

// VolumeBreakdown returns bytes per modelled phase plus the "other" bucket.
func (d *Dataset) VolumeBreakdown() map[Phase]int64 {
	out := make(map[Phase]int64, len(AllPhases)+1)
	for i, r := range d.Records {
		out[d.phases[i]] += r.Bytes
	}
	return out
}

// Span returns the first start and last end timestamps (ns); zeroes for an
// empty dataset.
func (d *Dataset) Span() (firstNs, lastNs int64) {
	if len(d.Records) == 0 {
		return 0, 0
	}
	firstNs, lastNs = d.Records[0].FirstNs, d.Records[0].LastNs
	for _, r := range d.Records[1:] {
		if r.FirstNs < firstNs {
			firstNs = r.FirstNs
		}
		if r.LastNs > lastNs {
			lastNs = r.LastNs
		}
	}
	return firstNs, lastNs
}

// GroupByJob splits ground-truth-labelled records on the "<job>/" label
// prefix (e.g. "job3/shuffle" → key "job3"). Unlabelled records land under
// the empty key — callers decide whether that bucket matters.
func GroupByJob(records []pcap.FlowRecord) map[string]*Dataset {
	byJob := make(map[string][]pcap.FlowRecord)
	for _, r := range records {
		key := ""
		if i := strings.IndexByte(r.Label, '/'); i >= 0 {
			key = r.Label[:i]
		}
		byJob[key] = append(byJob[key], r)
	}
	out := make(map[string]*Dataset, len(byJob))
	for k, recs := range byJob {
		out[k] = NewDataset(recs)
	}
	return out
}

// JobKeys returns the sorted non-empty job keys of a GroupByJob result.
func JobKeys(groups map[string]*Dataset) []string {
	keys := make([]string, 0, len(groups))
	for k := range groups {
		if k != "" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}
