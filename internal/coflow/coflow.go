// Package coflow derives coflow-level statistics from captured Hadoop
// traffic. A coflow (Chowdhury & Stoica) is the set of related flows a
// job stage produces — here, each job's shuffle stage. Coflow structure
// (width, total size, skew, duration) is exactly the input coflow
// schedulers like Varys or Aalo are evaluated against; deriving it from
// Keddah captures is the kind of downstream research the toolchain's
// "reproducible Hadoop research" goal enables.
package coflow

import (
	"fmt"
	"sort"

	"keddah/internal/flows"
	"keddah/internal/pcap"
	"keddah/internal/stats"
)

// Coflow summarises one job's shuffle stage.
type Coflow struct {
	// Job is the owning job label.
	Job string `json:"job"`
	// Width is the number of flows.
	Width int `json:"width"`
	// Bytes is the total size.
	Bytes int64 `json:"bytes"`
	// LongestFlowBytes is the size of the largest member flow.
	LongestFlowBytes int64 `json:"longestFlowBytes"`
	// Skew is LongestFlowBytes ÷ mean flow size (1 = perfectly even).
	Skew float64 `json:"skew"`
	// StartNs / EndNs bound the stage (first flow start, last flow end).
	StartNs int64 `json:"startNs"`
	EndNs   int64 `json:"endNs"`
	// Senders / Receivers count the distinct endpoints.
	Senders   int `json:"senders"`
	Receivers int `json:"receivers"`
}

// DurationSeconds is the coflow completion time (CCT) in seconds.
func (c Coflow) DurationSeconds() float64 { return float64(c.EndNs-c.StartNs) / 1e9 }

// FromRecords extracts one Coflow per job from labelled flow records:
// the job's shuffle-phase flows grouped by label prefix. Jobs without
// shuffle traffic (map-only) yield no coflow.
func FromRecords(records []pcap.FlowRecord) []Coflow {
	groups := flows.GroupByJob(records)
	keys := flows.JobKeys(groups)
	out := make([]Coflow, 0, len(keys))
	for _, job := range keys {
		ds := groups[job].ByPhase(flows.PhaseShuffle)
		if ds.Len() == 0 {
			continue
		}
		c := Coflow{Job: job, Width: ds.Len()}
		senders := map[pcap.Addr]bool{}
		receivers := map[pcap.Addr]bool{}
		c.StartNs, c.EndNs = ds.Span()
		for _, r := range ds.Records {
			c.Bytes += r.Bytes
			if r.Bytes > c.LongestFlowBytes {
				c.LongestFlowBytes = r.Bytes
			}
			senders[r.Key.Src] = true
			receivers[r.Key.Dst] = true
		}
		c.Senders = len(senders)
		c.Receivers = len(receivers)
		if c.Width > 0 && c.Bytes > 0 {
			mean := float64(c.Bytes) / float64(c.Width)
			c.Skew = float64(c.LongestFlowBytes) / mean
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartNs < out[j].StartNs })
	return out
}

// Population summarises a set of coflows the way coflow-scheduling papers
// characterise workloads: distributions of width, size and skew.
type Population struct {
	Count    int           `json:"count"`
	Width    stats.Summary `json:"width"`
	Bytes    stats.Summary `json:"bytes"`
	Skew     stats.Summary `json:"skew"`
	Duration stats.Summary `json:"duration"`
}

// Describe computes population statistics over coflows. An empty
// population returns stats.ErrEmptySample.
func Describe(cfs []Coflow) (Population, error) {
	widths := make([]float64, len(cfs))
	sizes := make([]float64, len(cfs))
	skews := make([]float64, len(cfs))
	durs := make([]float64, len(cfs))
	for i, c := range cfs {
		widths[i] = float64(c.Width)
		sizes[i] = float64(c.Bytes)
		skews[i] = c.Skew
		durs[i] = c.DurationSeconds()
	}
	p := Population{Count: len(cfs)}
	var err error
	if p.Width, err = stats.Describe(widths); err != nil {
		return p, err
	}
	if p.Bytes, err = stats.Describe(sizes); err != nil {
		return p, err
	}
	if p.Skew, err = stats.Describe(skews); err != nil {
		return p, err
	}
	if p.Duration, err = stats.Describe(durs); err != nil {
		return p, err
	}
	return p, nil
}

// BottleneckSender returns the sender address carrying the most bytes in
// the coflow's records and its share of the total — the "alpha" port a
// coflow scheduler would pace against. It returns an error when the
// coflow's records are not supplied or contain no shuffle flows.
func BottleneckSender(c Coflow, records []pcap.FlowRecord) (pcap.Addr, float64, error) {
	perSender := map[pcap.Addr]int64{}
	var total int64
	for _, r := range records {
		if flows.Classify(r) != flows.PhaseShuffle {
			continue
		}
		if jobOf(r.Label) != c.Job {
			continue
		}
		perSender[r.Key.Src] += r.Bytes
		total += r.Bytes
	}
	if total == 0 {
		return 0, 0, fmt.Errorf("coflow: no shuffle records for job %s", c.Job)
	}
	var best pcap.Addr
	var bestBytes int64 = -1
	// Deterministic argmax: highest bytes, lowest address on ties.
	addrs := make([]pcap.Addr, 0, len(perSender))
	for a := range perSender {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		if perSender[a] > bestBytes {
			best, bestBytes = a, perSender[a]
		}
	}
	return best, float64(bestBytes) / float64(total), nil
}

func jobOf(label string) string {
	for i := 0; i < len(label); i++ {
		if label[i] == '/' {
			return label[:i]
		}
	}
	return ""
}
