package coflow

import (
	"testing"

	"keddah/internal/core"
	"keddah/internal/flows"
	"keddah/internal/pcap"
	"keddah/internal/workload"
)

func shuffleRec(job string, src, dst int, bytes int64, startNs, endNs int64) pcap.FlowRecord {
	return pcap.FlowRecord{
		Key: pcap.FlowKey{
			Src: pcap.HostAddr(src), Dst: pcap.HostAddr(dst),
			SrcPort: flows.PortShuffle, DstPort: 40000, Proto: pcap.ProtoTCP,
		},
		Bytes: bytes, FirstNs: startNs, LastNs: endNs,
		Label: job + "/shuffle",
	}
}

func TestFromRecordsBasics(t *testing.T) {
	recs := []pcap.FlowRecord{
		shuffleRec("j1", 1, 10, 100, 0, 50),
		shuffleRec("j1", 2, 10, 300, 10, 80),
		shuffleRec("j1", 1, 11, 200, 5, 60),
		shuffleRec("j2", 3, 12, 1000, 100, 200),
		// Non-shuffle flow of j1 must not join the coflow.
		{Key: pcap.FlowKey{Src: pcap.HostAddr(1), Dst: pcap.HostAddr(9), SrcPort: flows.PortDataNodeData, DstPort: 4, Proto: pcap.ProtoTCP},
			Bytes: 999, FirstNs: 0, LastNs: 1, Label: "j1/read"},
	}
	cfs := FromRecords(recs)
	if len(cfs) != 2 {
		t.Fatalf("coflows = %d, want 2", len(cfs))
	}
	j1 := cfs[0]
	if j1.Job != "j1" || j1.Width != 3 || j1.Bytes != 600 {
		t.Errorf("j1 = %+v", j1)
	}
	if j1.Senders != 2 || j1.Receivers != 2 {
		t.Errorf("j1 endpoints = %d senders, %d receivers", j1.Senders, j1.Receivers)
	}
	if j1.StartNs != 0 || j1.EndNs != 80 {
		t.Errorf("j1 span = [%d, %d]", j1.StartNs, j1.EndNs)
	}
	// Skew: largest 300 / mean 200 = 1.5.
	if j1.Skew != 1.5 {
		t.Errorf("j1 skew = %v, want 1.5", j1.Skew)
	}
	j2 := cfs[1]
	if j2.Width != 1 || j2.Skew != 1 {
		t.Errorf("j2 = %+v", j2)
	}
}

func TestBottleneckSender(t *testing.T) {
	recs := []pcap.FlowRecord{
		shuffleRec("j1", 1, 10, 100, 0, 50),
		shuffleRec("j1", 2, 10, 700, 10, 80),
		shuffleRec("j1", 2, 11, 200, 5, 60),
	}
	cfs := FromRecords(recs)
	addr, share, err := BottleneckSender(cfs[0], recs)
	if err != nil {
		t.Fatal(err)
	}
	if addr != pcap.HostAddr(2) {
		t.Errorf("bottleneck = %v, want host 2", addr)
	}
	if share != 0.9 {
		t.Errorf("share = %v, want 0.9", share)
	}
	if _, _, err := BottleneckSender(Coflow{Job: "nope"}, recs); err == nil {
		t.Error("missing job accepted")
	}
}

func TestDescribePopulation(t *testing.T) {
	cfs := []Coflow{
		{Width: 4, Bytes: 400, Skew: 1.2, StartNs: 0, EndNs: 2e9},
		{Width: 8, Bytes: 800, Skew: 1.6, StartNs: 0, EndNs: 4e9},
	}
	p, err := Describe(cfs)
	if err != nil {
		t.Fatal(err)
	}
	if p.Count != 2 {
		t.Fatalf("count = %d", p.Count)
	}
	if p.Width.Mean != 6 || p.Bytes.Mean != 600 {
		t.Errorf("means = %v, %v", p.Width.Mean, p.Bytes.Mean)
	}
	if p.Duration.Max != 4 {
		t.Errorf("max duration = %v", p.Duration.Max)
	}
}

// TestCoflowsFromRealCapture ties the analysis to an actual simulated
// job: a terasort's shuffle must appear as one coflow of width
// maps × reducers.
func TestCoflowsFromRealCapture(t *testing.T) {
	ts, results, err := core.Capture(core.ClusterSpec{Workers: 8, Seed: 4},
		[]workload.RunSpec{{Profile: "terasort", InputBytes: 512 << 20, Reducers: 3}})
	if err != nil {
		t.Fatal(err)
	}
	var recs []pcap.FlowRecord
	for _, r := range ts.Runs {
		recs = append(recs, r.Records...)
	}
	cfs := FromRecords(recs)
	if len(cfs) != 1 {
		t.Fatalf("coflows = %d, want 1", len(cfs))
	}
	round := results[0].Rounds[0]
	if cfs[0].Width != round.Maps*round.Reducers {
		t.Errorf("width = %d, want %d", cfs[0].Width, round.Maps*round.Reducers)
	}
	if cfs[0].Bytes != round.ShuffleBytes {
		t.Errorf("bytes = %d, want %d", cfs[0].Bytes, round.ShuffleBytes)
	}
	// Receivers are distinct hosts; two reducers may share one.
	if cfs[0].Receivers < 1 || cfs[0].Receivers > round.Reducers {
		t.Errorf("receivers = %d, want within [1, %d]", cfs[0].Receivers, round.Reducers)
	}
}
