package mapreduce

import (
	"errors"
	"testing"

	"keddah/internal/flows"
	"keddah/internal/hadoop/hdfs"
	"keddah/internal/hadoop/yarn"
	"keddah/internal/netsim"
	"keddah/internal/pcap"
	"keddah/internal/sim"
	"keddah/internal/stats"
)

// rig bundles the substrates a job needs.
type rig struct {
	eng *sim.Engine
	net *netsim.Network
	fs  *hdfs.FS
	rm  *yarn.RM
	cap *pcap.Capture
	rng *stats.RNG
}

// newRig builds an 8-worker star cluster with an ingested input file.
func newRig(t *testing.T, inputBytes int64, hdfsCfg hdfs.Config) *rig {
	t.Helper()
	topo, err := netsim.Star(9, netsim.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	net := netsim.NewNetwork(eng, topo, netsim.Config{})
	c := pcap.NewCapture()
	net.AddTap(c)
	hosts := topo.Hosts()
	rng := stats.NewRNG(17)
	fs, err := hdfs.New(net, hosts[0], hosts[1:], hdfsCfg, rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	rm, err := yarn.New(net, hosts[0], hosts[1:], yarn.Config{SlotsPerNode: 4}, rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	// Ingest before starting heartbeats so the queue can drain.
	if err := fs.WriteFile(hosts[0], "/in", inputBytes, 0, "ingest", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	rm.Start()
	return &rig{eng: eng, net: net, fs: fs, rm: rm, cap: c, rng: rng}
}

// runJob submits cfg and drives the simulation to completion.
func (r *rig) runJob(t *testing.T, cfg JobConfig) Result {
	t.Helper()
	job, err := NewJob(cfg, r.fs, r.rm, r.rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	done := false
	if err := job.Submit(r.net.Topology().Hosts()[0], func(rr Result) { res = rr; done = true }); err != nil {
		t.Fatal(err)
	}
	for !done {
		if !r.eng.Step() {
			t.Fatal("simulation drained before job finished")
		}
	}
	r.rm.Shutdown()
	if _, err := r.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestJobByteAccounting(t *testing.T) {
	r := newRig(t, 512<<20, hdfs.Config{})
	res := r.runJob(t, JobConfig{
		Name: "j", InputPath: "/in", OutputPath: "/out",
		NumReducers: 4, MapSelectivity: 1, ReduceSelectivity: 1,
	})
	if res.Maps != 4 || res.Reducers != 4 {
		t.Fatalf("tasks = %d maps, %d reducers", res.Maps, res.Reducers)
	}
	in := float64(res.InputBytes)
	if m := float64(res.MapOutBytes); m < in*0.85 || m > in*1.2 {
		t.Errorf("map output = %v of input", m/in)
	}
	if s := float64(res.ShuffleBytes); s < in*0.7 || s > in*1.4 {
		t.Errorf("shuffle = %v of input", s/in)
	}
	if o := float64(res.OutputBytes); o < in*0.7 || o > in*1.4 {
		t.Errorf("output = %v of input", o/in)
	}
	if res.FirstMapStart <= res.Submitted {
		t.Error("maps started before submission")
	}
	if res.LastMapEnd < res.FirstMapStart || res.Finished < res.LastMapEnd {
		t.Error("phase timestamps out of order")
	}
}

func TestShuffleFlowStructure(t *testing.T) {
	r := newRig(t, 512<<20, hdfs.Config{})
	r.runJob(t, JobConfig{
		Name: "j", InputPath: "/in", OutputPath: "/out",
		NumReducers: 3, MapSelectivity: 1, ReduceSelectivity: 1,
	})
	ds := flows.NewDataset(r.cap.Truth())
	shuffle := ds.ByPhase(flows.PhaseShuffle)
	if shuffle.Len() != 4*3 {
		t.Errorf("shuffle flows = %d, want 12 (4 maps × 3 reducers)", shuffle.Len())
	}
	// Every shuffle flow must use the ShuffleHandler source port.
	for _, rec := range shuffle.Records {
		if rec.Key.SrcPort != flows.PortShuffle {
			t.Errorf("shuffle flow src port = %d", rec.Key.SrcPort)
		}
	}
}

func TestLowMapSelectivityShrinksShuffle(t *testing.T) {
	r := newRig(t, 512<<20, hdfs.Config{})
	res := r.runJob(t, JobConfig{
		Name: "grep", InputPath: "/in", OutputPath: "/out",
		NumReducers: 2, MapSelectivity: 0.002, ReduceSelectivity: 1,
	})
	if res.ShuffleBytes > res.InputBytes/100 {
		t.Errorf("grep-like shuffle = %d bytes, want < 1%% of %d", res.ShuffleBytes, res.InputBytes)
	}
}

func TestOutputReplicationControlsWriteTraffic(t *testing.T) {
	vol := map[int]int64{}
	for _, repl := range []int{1, 3} {
		r := newRig(t, 256<<20, hdfs.Config{})
		r.runJob(t, JobConfig{
			Name: "j", InputPath: "/in", OutputPath: "/out",
			NumReducers: 2, MapSelectivity: 1, ReduceSelectivity: 1,
			OutputReplication: repl,
		})
		ds := flows.NewDataset(r.cap.Truth())
		// Isolate job output writes from the ingest.
		jobWrites := ds.Filter(func(rec pcap.FlowRecord, p flows.Phase) bool {
			return p == flows.PhaseHDFSWrite && rec.Label == "j/hdfsWrite"
		})
		vol[repl] = jobWrites.Volume("")
	}
	ratio := float64(vol[3]) / float64(vol[1])
	if ratio < 2.4 || ratio > 3.6 {
		t.Errorf("write volume ratio repl3/repl1 = %.2f, want ≈3 (vols %v)", ratio, vol)
	}
}

func TestDataLocalityMostMapsLocal(t *testing.T) {
	r := newRig(t, 1<<30, hdfs.Config{})
	res := r.runJob(t, JobConfig{
		Name: "j", InputPath: "/in", OutputPath: "/out",
		NumReducers: 2, MapSelectivity: 0.1, ReduceSelectivity: 1,
	})
	if res.LocalMaps < res.Maps/2 {
		t.Errorf("local maps = %d of %d; locality scheduling ineffective", res.LocalMaps, res.Maps)
	}
}

func TestUmbilicalControlTraffic(t *testing.T) {
	r := newRig(t, 512<<20, hdfs.Config{})
	r.runJob(t, JobConfig{
		Name: "j", InputPath: "/in", OutputPath: "/out",
		NumReducers: 2, MapSelectivity: 1, ReduceSelectivity: 1,
		MapCostSecPerMB: 0.1, // slow maps → several umbilical beats
	})
	ds := flows.NewDataset(r.cap.Truth())
	um := ds.Filter(func(rec pcap.FlowRecord, _ flows.Phase) bool {
		return rec.Key.DstPort == flows.PortAMUmbilical
	})
	if um.Len() == 0 {
		t.Error("no umbilical control flows captured")
	}
}

func TestJobValidation(t *testing.T) {
	r := newRig(t, 128<<20, hdfs.Config{})
	if _, err := NewJob(JobConfig{Name: "x", OutputPath: "/o"}, r.fs, r.rm, r.rng); err == nil {
		t.Error("missing input path accepted")
	}
	if _, err := NewJob(JobConfig{Name: "x", InputPath: "/nope", OutputPath: "/o"}, r.fs, r.rm, r.rng); !errors.Is(err, hdfs.ErrNotFound) {
		t.Errorf("missing input: err = %v", err)
	}
	if _, err := NewJob(JobConfig{Name: "x", InputPath: "/in", OutputPath: "/o", MapSelectivity: -1}, r.fs, r.rm, r.rng); err == nil {
		t.Error("negative selectivity accepted")
	}
}

func TestManyReducersManySmallShuffleFlows(t *testing.T) {
	r := newRig(t, 512<<20, hdfs.Config{})
	r.runJob(t, JobConfig{
		Name: "j", InputPath: "/in", OutputPath: "/out",
		NumReducers: 16, MapSelectivity: 1, ReduceSelectivity: 1,
	})
	ds := flows.NewDataset(r.cap.Truth())
	shuffle := ds.ByPhase(flows.PhaseShuffle)
	if shuffle.Len() != 4*16 {
		t.Errorf("shuffle flows = %d, want 64", shuffle.Len())
	}
	mean := float64(shuffle.Volume("")) / float64(shuffle.Len())
	// 512 MiB / 64 flows ≈ 8 MiB per flow.
	if mean < 4<<20 || mean > 16<<20 {
		t.Errorf("mean shuffle flow = %.1f MiB, want ≈8", mean/(1<<20))
	}
}

func TestStragglersSpreadMapEndTimes(t *testing.T) {
	r := newRig(t, 2<<30, hdfs.Config{})
	res := r.runJob(t, JobConfig{
		Name: "j", InputPath: "/in", OutputPath: "/out",
		NumReducers: 2, MapSelectivity: 0.1, ReduceSelectivity: 1,
		StragglerSigma: 0.5,
	})
	mapSpan := res.LastMapEnd - res.FirstMapStart
	if mapSpan <= 0 {
		t.Error("map phase has zero duration")
	}
}

func TestSpeculativeExecution(t *testing.T) {
	// Heavy straggler jitter makes at least one map a clear outlier;
	// speculation must launch duplicate attempts and the job must still
	// account every map exactly once.
	r := newRig(t, 2<<30, hdfs.Config{})
	res := r.runJob(t, JobConfig{
		Name: "spec", InputPath: "/in", OutputPath: "/out",
		NumReducers: 2, MapSelectivity: 0.2, ReduceSelectivity: 1,
		MapCostSecPerMB: 0.08, StragglerSigma: 1.2,
		Speculative: true, SpeculativeThreshold: 1.2,
	})
	if res.SpeculativeMaps == 0 {
		t.Error("no speculative attempts launched despite heavy stragglers")
	}
	if res.Maps != 16 {
		t.Fatalf("maps = %d", res.Maps)
	}
	// Byte accounting must not double count winners + losers.
	in := float64(res.InputBytes)
	if m := float64(res.MapOutBytes); m > in*0.2*1.3 {
		t.Errorf("map output %v suggests double counting", m/in)
	}
	// Duplicate attempts re-read their splits: captured HDFS-read bytes
	// exceed the input.
	ds := flows.NewDataset(r.cap.Truth())
	jobReads := ds.Filter(func(rec pcap.FlowRecord, p flows.Phase) bool {
		return p == flows.PhaseHDFSRead && rec.Label == "spec/hdfsRead"
	})
	if jobReads.Volume("") <= res.InputBytes {
		t.Errorf("read bytes %d not above input %d despite duplicate attempts",
			jobReads.Volume(""), res.InputBytes)
	}
}

func TestSpeculationOffByDefault(t *testing.T) {
	r := newRig(t, 512<<20, hdfs.Config{})
	res := r.runJob(t, JobConfig{
		Name: "nospec", InputPath: "/in", OutputPath: "/out",
		NumReducers: 2, MapSelectivity: 1, ReduceSelectivity: 1,
		StragglerSigma: 1.2,
	})
	if res.SpeculativeMaps != 0 {
		t.Errorf("speculation ran without being enabled: %d", res.SpeculativeMaps)
	}
}
