package mapreduce

import (
	"fmt"
	"math"

	"keddah/internal/flows"
	"keddah/internal/hadoop/hdfs"
	"keddah/internal/hadoop/yarn"
	"keddah/internal/netsim"
)

// reducer is one reduce task attempt: it shuffles a partition from every
// map output (at most MaxParallelFetches concurrent fetches, as the real
// Fetcher pool does), then merges, reduces, and commits its part file to
// HDFS through a replication pipeline. A lost attempt is re-run from
// scratch on a new container — its already-shuffled bytes are wasted,
// exactly the failure cost real deployments pay.
type reducer struct {
	job        *Job
	idx        int
	attempt    int
	container  *yarn.Container
	host       netsim.NodeID
	pending    []int // map indexes ready to fetch
	queued     map[int]bool
	fetchedSet map[int]bool
	active     int
	bytes      int64
	shuffled   bool // all partitions fetched; merge/reduce underway
	done       bool // committed
	dead       bool // attempt superseded after container loss
}

// runReducer starts reduce task ri on the granted container and
// backfills fetches for all already-completed maps.
func (j *Job) runReducer(ri int, c *yarn.Container) {
	if j.finished {
		c.Release()
		return
	}
	attempt := 0
	for len(j.reducers) <= ri {
		j.reducers = append(j.reducers, nil)
	}
	if prev := j.reducers[ri]; prev != nil {
		attempt = prev.attempt + 1
	}
	r := &reducer{
		job:        j,
		idx:        ri,
		attempt:    attempt,
		container:  c,
		host:       c.Host(),
		queued:     make(map[int]bool, len(j.splits)),
		fetchedSet: make(map[int]bool, len(j.splits)),
	}
	j.reducers[ri] = r

	c.OnLost(func() {
		if r.done || j.finished {
			return
		}
		r.dead = true
		j.result.ReexecutedReducers++
		j.requestReducer(ri)
	})
	j.umbilical(r.host, func() bool { return !r.done && !r.dead })

	// Backfill: a map is fetchable iff its output size is recorded.
	for m, out := range j.mapOut {
		if out > 0 {
			r.mapReady(m)
		}
	}
	r.pump()
}

// mapReady queues a completed map's partition for fetching.
func (r *reducer) mapReady(mapIdx int) {
	if r.dead || r.done || r.queued[mapIdx] {
		return
	}
	r.queued[mapIdx] = true
	r.pending = append(r.pending, mapIdx)
	r.pump()
}

// invalidateMap reacts to a map output lost to a node failure: un-queue
// the partition so the re-executed attempt's completion re-feeds it.
// Already-fetched partitions are kept (the reducer spilled them locally).
func (r *reducer) invalidateMap(mapIdx int) {
	if r.dead || r.done || r.fetchedSet[mapIdx] || !r.queued[mapIdx] {
		return
	}
	r.queued[mapIdx] = false
	for i, m := range r.pending {
		if m == mapIdx {
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			break
		}
	}
}

// partitionBytes sizes this reducer's share of one map output: the even
// split perturbed by key-skew jitter.
func (r *reducer) partitionBytes(mapIdx int) int64 {
	j := r.job
	share := float64(j.mapOut[mapIdx]) / float64(j.cfg.NumReducers)
	sz := int64(share * j.lognormalJitter(j.cfg.PartitionSkewSigma))
	if sz < 1 {
		sz = 1
	}
	return sz
}

// pump starts fetches up to the parallel-copy bound and detects shuffle
// completion.
func (r *reducer) pump() {
	j := r.job
	if r.dead || r.done {
		return
	}
	for r.active < j.cfg.MaxParallelFetches && len(r.pending) > 0 {
		mapIdx := r.pending[0]
		r.pending = r.pending[1:]
		r.active++
		size := r.partitionBytes(mapIdx)
		src := j.mapHost[mapIdx]
		_, err := j.net.StartFlow(netsim.FlowSpec{
			Src:       src,
			Dst:       r.host,
			SrcPort:   flows.PortShuffle,
			DstPort:   32768 + j.rng.Intn(28232),
			SizeBytes: size,
			Label:     j.cfg.Name + "/shuffle",
			OnComplete: func(*netsim.Flow) {
				r.active--
				if r.dead {
					return
				}
				r.fetchedSet[mapIdx] = true
				r.bytes += size
				j.result.ShuffleBytes += size
				r.pump()
			},
		})
		if err != nil {
			panic(fmt.Sprintf("mapreduce: shuffle flow: %v", err))
		}
	}
	if r.active == 0 && len(r.fetchedSet) == len(j.splits) && !r.shuffled {
		r.finishShuffle()
	}
}

// finishShuffle runs merge + reduce compute and commits output to HDFS.
func (r *reducer) finishShuffle() {
	j := r.job
	r.shuffled = true
	mergeAndReduce := j.computeDelay(r.bytes, j.cfg.ReduceCostSecPerMB)
	j.eng.After(mergeAndReduce, func() {
		if r.dead || j.finished {
			return
		}
		out := int64(math.Round(float64(r.bytes) * j.cfg.ReduceSelectivity))
		commit := func() {
			if r.dead || j.finished {
				return
			}
			r.done = true
			j.controlFlow(r.host, j.app.AMHost(), flows.PortAMUmbilical, j.cfg.Name+"/reduceDone")
			r.container.Release()
			j.redsDone++
			j.maybeFinish()
		}
		if out <= 0 {
			commit()
			return
		}
		part := fmt.Sprintf("%s/part-r-%05d-a%d", j.cfg.OutputPath, r.idx, r.attempt)
		err := j.fs.WriteFile(r.host, part, out, j.cfg.OutputReplication, j.cfg.Name, func(_ []hdfs.Block) {
			j.result.OutputBytes += out
			commit()
		})
		if err != nil {
			panic(fmt.Sprintf("mapreduce: reduce output write: %v", err))
		}
	})
}
