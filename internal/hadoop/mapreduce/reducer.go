package mapreduce

import (
	"fmt"
	"math"

	"keddah/internal/flows"
	"keddah/internal/hadoop/hdfs"
	"keddah/internal/hadoop/yarn"
	"keddah/internal/netsim"
	"keddah/internal/sim"
	"keddah/internal/telemetry"
)

// reducer is one reduce task attempt: it shuffles a partition from every
// map output (at most MaxParallelFetches concurrent fetches, as the real
// Fetcher pool does), then merges, reduces, and commits its part file to
// HDFS through a replication pipeline. A lost attempt is re-run from
// scratch on a new container — its already-shuffled bytes are wasted,
// exactly the failure cost real deployments pay.
type reducer struct {
	job       *Job
	idx       int
	attempt   int
	container *yarn.Container
	host      netsim.NodeID
	started   sim.Time
	pending   []int // map indexes ready to fetch
	queued    map[int]bool
	// fetchedSet maps each fetched map index to the partition bytes
	// pulled, so shuffle conservation (bytes == Σ fetched sizes) is
	// checkable per reducer.
	fetchedSet map[int]int64
	// retries counts fault-aborted fetch attempts per map index;
	// hostFail counts them per serving host — at MaxFetchFailures the
	// host is blacklisted for this shuffle and the AM re-runs the map.
	retries   map[int]int
	hostFail  map[netsim.NodeID]int
	blacklist map[netsim.NodeID]bool
	active    int
	bytes     int64
	shuffled  bool // all partitions fetched; merge/reduce underway
	done      bool // committed
	dead      bool // attempt superseded after container loss
}

// runReducer starts reduce task ri on the granted container and
// backfills fetches for all already-completed maps.
func (j *Job) runReducer(ri int, c *yarn.Container) {
	if j.finished {
		c.Release()
		return
	}
	attempt := 0
	for len(j.reducers) <= ri {
		j.reducers = append(j.reducers, nil)
	}
	if prev := j.reducers[ri]; prev != nil {
		attempt = prev.attempt + 1
	}
	r := &reducer{
		job:        j,
		idx:        ri,
		attempt:    attempt,
		container:  c,
		host:       c.Host(),
		started:    j.eng.Now(),
		queued:     make(map[int]bool, len(j.splits)),
		fetchedSet: make(map[int]int64, len(j.splits)),
		retries:    make(map[int]int),
		hostFail:   make(map[netsim.NodeID]int),
		blacklist:  make(map[netsim.NodeID]bool),
	}
	j.reducers[ri] = r

	c.OnLost(func() {
		if r.done || j.finished {
			return
		}
		r.dead = true
		j.result.ReexecutedReducers++
		j.metrics.ReducersReexecuted.Inc()
		j.requestReducer(ri)
	})
	j.umbilical(r.host, func() bool { return !r.done && !r.dead })

	// Backfill: a map is fetchable iff its output size is recorded.
	for m, out := range j.mapOut {
		if out > 0 {
			r.mapReady(m)
		}
	}
	r.pump()
}

// mapReady queues a completed map's partition for fetching. A partition
// fetched from a since-lost map attempt is kept, not re-pulled: the
// reducer spilled it locally, so a re-executed map must not trigger a
// duplicate shuffle (invalidateMap may have cleared queued while the
// original fetch was still in flight).
func (r *reducer) mapReady(mapIdx int) {
	if _, fetched := r.fetchedSet[mapIdx]; fetched || r.dead || r.done || r.queued[mapIdx] {
		return
	}
	r.queued[mapIdx] = true
	r.pending = append(r.pending, mapIdx)
	r.pump()
}

// invalidateMap reacts to a map output lost to a node failure: un-queue
// the partition so the re-executed attempt's completion re-feeds it.
// Already-fetched partitions are kept (the reducer spilled them locally).
func (r *reducer) invalidateMap(mapIdx int) {
	if _, fetched := r.fetchedSet[mapIdx]; fetched || r.dead || r.done || !r.queued[mapIdx] {
		return
	}
	r.queued[mapIdx] = false
	for i, m := range r.pending {
		if m == mapIdx {
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			break
		}
	}
}

// partitionBytes sizes this reducer's share of one map output: the even
// split perturbed by key-skew jitter.
func (r *reducer) partitionBytes(mapIdx int) int64 {
	j := r.job
	share := float64(j.mapOut[mapIdx]) / float64(j.cfg.NumReducers)
	sz := int64(share * j.lognormalJitter(j.cfg.PartitionSkewSigma))
	if sz < 1 {
		sz = 1
	}
	return sz
}

// pump starts fetches up to the parallel-copy bound and detects shuffle
// completion.
func (r *reducer) pump() {
	j := r.job
	if r.dead || r.done {
		return
	}
	for r.active < j.cfg.MaxParallelFetches && len(r.pending) > 0 {
		mapIdx := r.pending[0]
		r.pending = r.pending[1:]
		r.active++
		r.startFetch(mapIdx)
	}
	if r.active == 0 && len(r.fetchedSet) == len(j.splits) && !r.shuffled {
		r.finishShuffle()
	}
}

// startFetch pulls one map partition from its ShuffleHandler. A fetch
// torn down by a fault retries against the same host with exponential
// backoff; once MaxFetchFailures accumulate against a host the reducer
// blacklists it and reports the map output lost to the AM, which
// re-executes the map (the real fetch-failure → TooManyFetchFailures
// escalation path).
func (r *reducer) startFetch(mapIdx int) {
	j := r.job
	size := r.partitionBytes(mapIdx)
	src := j.mapHost[mapIdx]
	epoch := j.mapEpoch[mapIdx]
	lbl := j.cfg.Name + "/shuffle"
	if r.retries[mapIdx] > 0 {
		lbl = j.cfg.Name + "/shuffle-retry"
	}
	j.metrics.ShuffleFetches.Inc()
	_, err := j.net.StartFlow(netsim.FlowSpec{
		Src:       src,
		Dst:       r.host,
		SrcPort:   flows.PortShuffle,
		DstPort:   32768 + j.rng.Intn(28232),
		SizeBytes: size,
		Label:     lbl,
		OnComplete: func(*netsim.Flow) {
			r.active--
			if r.dead {
				return
			}
			r.fetchedSet[mapIdx] = size
			r.bytes += size
			j.result.ShuffleBytes += size
			r.pump()
		},
		OnAbort: func(*netsim.Flow) {
			r.active--
			if r.dead || r.done || j.finished {
				return
			}
			j.result.ShuffleRetries++
			j.metrics.ShuffleRetries.Inc()
			r.hostFail[src]++
			if r.hostFail[src] >= j.cfg.MaxFetchFailures && !r.blacklist[src] {
				r.blacklist[src] = true
				j.metrics.ShuffleBlacklists.Inc()
				r.queued[mapIdx] = false
				j.onFetchFailures(mapIdx, src, epoch)
				r.pump()
				return
			}
			r.retries[mapIdx]++
			backoff := fetchBackoff(j.cfg.FetchRetryBase, r.retries[mapIdx]-1)
			j.eng.After(backoff, func() {
				if r.dead || r.done || j.finished {
					return
				}
				if j.mapEpoch[mapIdx] != epoch {
					// The map is being re-executed; its fresh completion
					// will re-feed this partition through mapReady.
					r.queued[mapIdx] = false
					r.pump()
					return
				}
				r.pending = append(r.pending, mapIdx)
				r.pump()
			})
		},
	})
	if err != nil {
		panic(fmt.Sprintf("mapreduce: shuffle flow: %v", err))
	}
}

// fetchBackoff doubles base per attempt, capped at 30 s.
func fetchBackoff(base sim.Time, attempt int) sim.Time {
	const maxBackoff = sim.Time(30_000_000_000)
	d := base
	for i := 0; i < attempt && d < maxBackoff; i++ {
		d *= 2
	}
	if d > maxBackoff {
		d = maxBackoff
	}
	return d
}

// finishShuffle runs merge + reduce compute and commits output to HDFS.
func (r *reducer) finishShuffle() {
	j := r.job
	r.shuffled = true
	mergeAndReduce := j.computeDelay(r.bytes, j.cfg.ReduceCostSecPerMB)
	j.eng.After(mergeAndReduce, func() {
		if r.dead || j.finished {
			return
		}
		out := int64(math.Round(float64(r.bytes) * j.cfg.ReduceSelectivity))
		commit := func() {
			if r.dead || j.finished {
				return
			}
			r.done = true
			j.tracer.Add(telemetry.Span{
				Cat: "mr", Name: "reduce", Attr: fmt.Sprintf("%s/r%d-a%d", j.cfg.Name, r.idx, r.attempt),
				StartNs: int64(r.started), EndNs: int64(j.eng.Now()),
			})
			j.controlFlow(r.host, j.app.AMHost(), flows.PortAMUmbilical, j.cfg.Name+"/reduceDone")
			r.container.Release()
			j.redsDone++
			j.maybeFinish()
		}
		if out <= 0 {
			commit()
			return
		}
		part := fmt.Sprintf("%s/part-r-%05d-a%d", j.cfg.OutputPath, r.idx, r.attempt)
		err := j.fs.WriteFile(r.host, part, out, j.cfg.OutputReplication, j.cfg.Name, func(_ []hdfs.Block) {
			j.result.OutputBytes += out
			commit()
		})
		if err != nil {
			panic(fmt.Sprintf("mapreduce: reduce output write: %v", err))
		}
	})
}
