package mapreduce

import (
	"fmt"

	"keddah/internal/flows"
	"keddah/internal/hadoop/hdfs"
	"keddah/internal/hadoop/yarn"
	"keddah/internal/netsim"
	"keddah/internal/telemetry"
)

// umbilical sends periodic task→AM progress reports while alive() holds.
// It mirrors the TaskUmbilicalProtocol status updates that show up as
// small recurring control flows in captures.
func (j *Job) umbilical(task netsim.NodeID, alive func() bool) {
	var beat func()
	beat = func() {
		if !alive() || j.finished {
			return
		}
		j.controlFlow(task, j.app.AMHost(), flows.PortAMUmbilical, j.cfg.Name+"/umbilical")
		j.eng.After(j.cfg.UmbilicalInterval, beat)
	}
	j.eng.After(j.cfg.UmbilicalInterval, beat)
}

// controlFlow emits one small RPC exchange. Negative endpoints (no AM
// placed during a restart window, say) are skipped.
func (j *Job) controlFlow(src, dst netsim.NodeID, port int, label string) {
	if src == dst || src < 0 || dst < 0 {
		return
	}
	_, err := j.net.StartFlow(netsim.FlowSpec{
		Src:       src,
		Dst:       dst,
		SrcPort:   32768 + j.rng.Intn(28232),
		DstPort:   port,
		SizeBytes: 512,
		Label:     label,
	})
	if err != nil {
		panic(fmt.Sprintf("mapreduce: control flow: %v", err))
	}
}

// runMapTask executes map i on the granted container: read the split
// from HDFS (loopback when a replica is local), compute, record the map
// output size, and — for map-only jobs — write output straight to HDFS.
// If the container's host fails mid-task the attempt is re-requested.
func (j *Job) runMapTask(i int, c *yarn.Container) {
	if j.finished {
		c.Release()
		return
	}
	host := c.Host()
	if j.result.FirstMapStart == 0 {
		j.result.FirstMapStart = j.eng.Now()
	}
	attemptStart := j.eng.Now()
	if j.mapStart[i] == 0 {
		j.mapStart[i] = attemptStart
	}
	j.mapHost[i] = host
	epoch := j.mapEpoch[i]
	taskDone := false
	stale := func() bool { return j.mapEpoch[i] != epoch || c.Lost() }

	c.OnLost(func() {
		if taskDone || j.finished || j.mapEpoch[i] != epoch {
			return
		}
		// Running attempt lost: re-run this split elsewhere.
		j.mapEpoch[i]++
		j.mapStart[i] = 0
		j.specDone[i] = false
		j.result.ReexecutedMaps++
		j.metrics.MapsReexecuted.Inc()
		j.requestMap(i)
	})
	j.umbilical(host, func() bool { return !taskDone && !stale() })

	split := j.splits[i]
	local := false
	for _, r := range split.Replicas {
		if r == host {
			local = true
			break
		}
	}
	if local {
		j.result.LocalMaps++
	}

	j.fs.ReadBlock(host, split, j.cfg.Name, func(netsim.NodeID) {
		if stale() {
			return
		}
		j.eng.After(j.computeDelay(split.Size, j.cfg.MapCostSecPerMB), func() {
			if stale() {
				return
			}
			out := int64(float64(split.Size) * j.cfg.MapSelectivity * j.lognormalJitter(0.05))
			if out < 1 && j.cfg.MapSelectivity > 0 {
				out = 1
			}

			finish := func() {
				if stale() {
					return
				}
				if j.mapOut[i] != 0 {
					// A speculative twin already committed this split;
					// this attempt's traffic was the speculation cost.
					taskDone = true
					c.Release()
					return
				}
				taskDone = true
				j.mapOut[i] = out
				j.result.MapOutBytes += out
				j.mapDurSum += (j.eng.Now() - attemptStart).Seconds()
				j.mapDurN++
				j.metrics.MapsCompleted.Inc()
				j.tracer.Add(telemetry.Span{
					Cat: "mr", Name: "map", Attr: fmt.Sprintf("%s/m%d", j.cfg.Name, i),
					StartNs: int64(attemptStart), EndNs: int64(j.eng.Now()),
				})
				// Completion report to the AM.
				j.controlFlow(host, j.app.AMHost(), flows.PortAMUmbilical, j.cfg.Name+"/mapDone")
				c.Release()
				j.mapsDone++
				if j.mapsDone == len(j.splits) {
					j.result.LastMapEnd = j.eng.Now()
				}
				j.onMapCompleted(i)
			}

			if j.cfg.NumReducers == 0 {
				if j.mapOut[i] != 0 {
					finish() // twin won before our write started
					return
				}
				// Map-only job: commit output directly to HDFS. Attempt
				// ids keep speculative twins' paths distinct; only the
				// winning attempt's bytes count as job output.
				j.attemptSeq++
				part := fmt.Sprintf("%s/part-m-%05d-t%d", j.cfg.OutputPath, i, j.attemptSeq)
				err := j.fs.WriteFile(host, part, out, j.cfg.OutputReplication, j.cfg.Name, func(_ []hdfs.Block) {
					if j.mapOut[i] == 0 && !stale() {
						j.result.OutputBytes += out
					}
					finish()
				})
				if err != nil {
					panic(fmt.Sprintf("mapreduce: map output write: %v", err))
				}
				return
			}
			finish()
		})
	})
}

// onMapCompleted feeds the shuffle: launch reducers at the slowstart
// threshold and notify running reducers that a new map output is ready.
func (j *Job) onMapCompleted(mapIdx int) {
	if j.cfg.NumReducers > 0 {
		j.maybeLaunchReducers()
		for _, r := range j.reducers {
			if r != nil {
				r.mapReady(mapIdx)
			}
		}
	}
	j.maybeFinish()
}

// onNodeFailed re-executes completed maps whose outputs lived on the
// failed host and are still needed by unfinished reducers — the
// TaskAttemptKillEvent path that makes node failure expensive in real
// deployments.
func (j *Job) onNodeFailed(host netsim.NodeID) {
	if j.finished || j.cfg.NumReducers == 0 {
		return
	}
	if j.redsDone == j.cfg.NumReducers {
		return
	}
	for i := range j.splits {
		if j.mapHost[i] != host || j.mapOut[i] == 0 {
			continue
		}
		// Skip if every launched reducer already holds this partition
		// and all reducers are launched.
		if j.redsQueued == j.cfg.NumReducers && j.allFetched(i) {
			continue
		}
		j.mapOut[i] = 0
		j.mapEpoch[i]++
		j.mapStart[i] = 0
		j.specDone[i] = false
		j.mapsDone--
		j.result.ReexecutedMaps++
		j.metrics.MapsReexecuted.Inc()
		for _, r := range j.reducers {
			if r != nil {
				r.invalidateMap(i)
			}
		}
		j.requestMap(i)
	}
}

// onFetchFailures reacts to a reducer exceeding its fetch-failure budget
// against the host serving map mapIdx: the map output is declared lost
// and the map re-executed, as the AM does on TooManyFetchFailures. Stale
// reports (the map already re-running, moved, or epoch-bumped) are
// ignored.
func (j *Job) onFetchFailures(mapIdx int, host netsim.NodeID, epoch int) {
	if j.finished || j.mapEpoch[mapIdx] != epoch {
		return
	}
	if j.mapOut[mapIdx] == 0 || j.mapHost[mapIdx] != host {
		return
	}
	j.mapOut[mapIdx] = 0
	j.mapEpoch[mapIdx]++
	j.mapStart[mapIdx] = 0
	j.specDone[mapIdx] = false
	j.mapsDone--
	j.result.ReexecutedMaps++
	j.metrics.MapsReexecuted.Inc()
	for _, r := range j.reducers {
		if r != nil {
			r.invalidateMap(mapIdx)
		}
	}
	j.requestMap(mapIdx)
}

// allFetched reports whether every live reducer has already pulled map
// i's partition.
func (j *Job) allFetched(mapIdx int) bool {
	for _, r := range j.reducers {
		if r == nil || r.done {
			continue
		}
		if _, fetched := r.fetchedSet[mapIdx]; !fetched {
			return false
		}
	}
	return true
}

// maybeLaunchReducers ramps up reduce containers: at the slowstart
// threshold it requests up to half the cluster's slots (so queued maps
// can never be starved — the RMContainerAllocator's headroom rule), and
// the remainder once every map has finished.
func (j *Job) maybeLaunchReducers() {
	threshold := int(j.cfg.SlowstartMaps*float64(len(j.splits)) + 0.999)
	if threshold < 1 {
		threshold = 1
	}
	if j.mapsDone < threshold {
		return
	}
	allowed := j.cfg.NumReducers
	if j.mapsDone < len(j.splits) {
		if headroom := j.rm.TotalSlots() / 2; allowed > headroom {
			allowed = headroom
		}
	}
	for j.redsQueued < allowed {
		ri := j.redsQueued
		j.redsQueued++
		j.requestReducer(ri)
	}
}

// requestReducer asks YARN for a container to run (or re-run) reducer ri.
func (j *Job) requestReducer(ri int) {
	j.metrics.ReduceAttempts.Inc()
	j.app.RequestContainer(yarn.PriorityReduce, nil, func(c *yarn.Container) {
		j.runReducer(ri, c)
	})
}
