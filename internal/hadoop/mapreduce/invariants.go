package mapreduce

import "fmt"

// VerifyInvariants checks the job's shuffle-conservation and
// re-execution accounting. It is read-only with respect to the
// simulation; it only maintains a private per-map epoch snapshot used to
// assert monotonicity between consecutive checks.
//
// Checked properties:
//   - mapsDone tracks exactly the splits with committed output: a map
//     re-execution (node failure, fetch-failure escalation) zeroes the
//     output and decrements the counter in lockstep, so completed work
//     is never double-counted. (Only meaningful when MapSelectivity > 0
//     — with zero selectivity a committed map's output is legally 0.)
//   - Result.MapOutBytes covers at least the currently committed
//     outputs (superseded attempts may have added more).
//   - Per reducer attempt: its accumulated shuffle bytes equal the sum
//     of the partition sizes it fetched.
//   - Result.ShuffleBytes covers at least the current attempts' bytes,
//     exactly when no reducer was ever re-executed.
//   - Per-map attempt epochs never move backwards.
func (j *Job) VerifyInvariants() error {
	if j.splits == nil {
		return nil // not submitted yet
	}
	if j.mapsDone < 0 || j.mapsDone > len(j.splits) {
		return fmt.Errorf("mapreduce: %s mapsDone %d outside [0, %d]", j.cfg.Name, j.mapsDone, len(j.splits))
	}
	if j.redsDone < 0 || j.redsDone > j.cfg.NumReducers {
		return fmt.Errorf("mapreduce: %s redsDone %d outside [0, %d]", j.cfg.Name, j.redsDone, j.cfg.NumReducers)
	}
	var committed int
	var sumMapOut int64
	for _, out := range j.mapOut {
		if out < 0 {
			return fmt.Errorf("mapreduce: %s negative map output %d", j.cfg.Name, out)
		}
		if out != 0 {
			committed++
		}
		sumMapOut += out
	}
	if j.cfg.MapSelectivity > 0 && committed != j.mapsDone {
		return fmt.Errorf("mapreduce: %s mapsDone %d but %d splits hold committed output (double-counted re-execution?)",
			j.cfg.Name, j.mapsDone, committed)
	}
	if j.result.MapOutBytes < sumMapOut {
		return fmt.Errorf("mapreduce: %s MapOutBytes %d below committed outputs %d", j.cfg.Name, j.result.MapOutBytes, sumMapOut)
	}
	var sumReducerBytes int64
	for _, r := range j.reducers {
		if r == nil {
			continue
		}
		var fetched int64
		for _, sz := range r.fetchedSet {
			fetched += sz
		}
		if r.bytes != fetched {
			return fmt.Errorf("mapreduce: %s reducer %d (attempt %d) shuffled %d bytes but fetched partitions sum to %d",
				j.cfg.Name, r.idx, r.attempt, r.bytes, fetched)
		}
		sumReducerBytes += r.bytes
	}
	if j.result.ShuffleBytes < sumReducerBytes {
		return fmt.Errorf("mapreduce: %s ShuffleBytes %d below current attempts' %d", j.cfg.Name, j.result.ShuffleBytes, sumReducerBytes)
	}
	if j.result.ReexecutedReducers == 0 && j.result.ShuffleBytes != sumReducerBytes {
		return fmt.Errorf("mapreduce: %s ShuffleBytes %d != Σ reducer bytes %d with no re-executed reducers",
			j.cfg.Name, j.result.ShuffleBytes, sumReducerBytes)
	}
	if j.epochCheck == nil {
		j.epochCheck = make([]int, len(j.splits))
	}
	for i, e := range j.mapEpoch {
		if e < j.epochCheck[i] {
			return fmt.Errorf("mapreduce: %s map %d epoch moved backwards (%d -> %d)", j.cfg.Name, i, j.epochCheck[i], e)
		}
		j.epochCheck[i] = e
	}
	return nil
}

// Name returns the job's configured name (for check diagnostics).
func (j *Job) Name() string { return j.cfg.Name }
