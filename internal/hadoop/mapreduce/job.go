// Package mapreduce simulates MapReduce v2 job execution on top of the
// HDFS and YARN substrates: input splits, locality-aware map scheduling,
// the all-to-all shuffle over the ShuffleHandler port with bounded
// parallel fetches, reducer merge + commit to HDFS with pipeline
// replication, slow-started reducers, and task↔AM umbilical control
// traffic. The network-visible behaviour — which host pairs exchange how
// many bytes and when — is what Keddah captures and models.
package mapreduce

import (
	"errors"
	"fmt"
	"math"

	"keddah/internal/hadoop/hdfs"
	"keddah/internal/hadoop/yarn"
	"keddah/internal/netsim"
	"keddah/internal/sim"
	"keddah/internal/stats"
	"keddah/internal/telemetry"
)

// JobConfig describes one MapReduce job. Byte selectivities come from the
// workload profile (internal/workload) and are what differentiate e.g. a
// shuffle-heavy sort from a shuffle-light grep.
type JobConfig struct {
	// Name labels the job in flow ground truth ("job3").
	Name string
	// InputPath is the HDFS file to read (must exist).
	InputPath string
	// OutputPath is the HDFS directory to write ("<out>/part-r-00000"…).
	OutputPath string
	// NumReducers is the reduce-task count; 0 makes the job map-only.
	NumReducers int
	// MapSelectivity is map-output bytes per input byte (e.g. ~1 for
	// sort, ≪1 for grep).
	MapSelectivity float64
	// ReduceSelectivity is job-output bytes per shuffled byte.
	ReduceSelectivity float64
	// OutputReplication overrides dfs.replication for job output
	// (0 = filesystem default; TeraSort conventionally uses 1).
	OutputReplication int
	// SlowstartMaps is the completed-map fraction that triggers reducer
	// launch (default 0.05, as mapreduce.job.reduce.slowstart).
	SlowstartMaps float64
	// MaxParallelFetches bounds concurrent shuffle fetches per reducer
	// (default 5, as mapreduce.reduce.shuffle.parallelcopies).
	MaxParallelFetches int
	// MapCostSecPerMB and ReduceCostSecPerMB model task compute time.
	MapCostSecPerMB    float64
	ReduceCostSecPerMB float64
	// StragglerSigma is the log-normal sigma applied to task compute
	// times (default 0.25): the straggler effect that spreads flow
	// arrivals out in time.
	StragglerSigma float64
	// PartitionSkewSigma jitters per-(map,reducer) partition sizes
	// (default 0.15).
	PartitionSkewSigma float64
	// UmbilicalInterval is the task→AM progress-report period
	// (default 3s).
	UmbilicalInterval sim.Time
	// Speculative enables speculative execution: once half the maps
	// have finished, a running map whose elapsed time exceeds
	// SpeculativeThreshold × the mean completed-map duration gets a
	// duplicate attempt on another node; the first finisher wins and
	// the loser's traffic is wasted — mapreduce.map.speculative.
	Speculative bool
	// SpeculativeThreshold is the slowdown factor that triggers a
	// duplicate attempt (default 1.5).
	SpeculativeThreshold float64
	// FetchRetryBase is the first shuffle-fetch retry backoff; it doubles
	// per failed attempt against the same host, capped at 30 s (default
	// 1 s, a scaled-down mapreduce.reduce.shuffle.retry-delay).
	FetchRetryBase sim.Time
	// MaxFetchFailures is how many failed fetches from one host a reducer
	// tolerates before reporting the map output lost to the AM, which
	// blacklists the host for this shuffle and re-executes the map
	// (default 3, as mapreduce.reduce.shuffle.maxfetchfailures).
	MaxFetchFailures int
	// MaxAMAttempts bounds ApplicationMaster attempts: a lost AM is
	// restarted, recovering completed-task state, until the budget runs
	// out and the job fails (default 2, as
	// yarn.resourcemanager.am.max-attempts).
	MaxAMAttempts int
}

func (c *JobConfig) applyDefaults() {
	if c.SlowstartMaps <= 0 {
		c.SlowstartMaps = 0.05
	}
	if c.MaxParallelFetches <= 0 {
		c.MaxParallelFetches = 5
	}
	if c.MapCostSecPerMB <= 0 {
		c.MapCostSecPerMB = 0.02
	}
	if c.ReduceCostSecPerMB <= 0 {
		c.ReduceCostSecPerMB = 0.02
	}
	if c.StragglerSigma <= 0 {
		c.StragglerSigma = 0.25
	}
	if c.PartitionSkewSigma <= 0 {
		c.PartitionSkewSigma = 0.15
	}
	if c.UmbilicalInterval <= 0 {
		c.UmbilicalInterval = 3_000_000_000
	}
	if c.SpeculativeThreshold <= 0 {
		c.SpeculativeThreshold = 1.5
	}
	if c.FetchRetryBase <= 0 {
		c.FetchRetryBase = 1_000_000_000
	}
	if c.MaxFetchFailures <= 0 {
		c.MaxFetchFailures = 3
	}
	if c.MaxAMAttempts <= 0 {
		c.MaxAMAttempts = 2
	}
}

// Result summarises a finished job.
type Result struct {
	Name          string
	Submitted     sim.Time
	FirstMapStart sim.Time
	LastMapEnd    sim.Time
	Finished      sim.Time
	Maps          int
	Reducers      int
	InputBytes    int64
	MapOutBytes   int64
	ShuffleBytes  int64
	OutputBytes   int64
	LocalMaps     int
	// Failed marks a job aborted by an ApplicationMaster host failure.
	Failed bool
	// ReexecutedMaps / ReexecutedReducers count task attempts restarted
	// after NodeManager failures.
	ReexecutedMaps     int
	ReexecutedReducers int
	// SpeculativeMaps counts duplicate straggler attempts launched.
	SpeculativeMaps int
	// ShuffleRetries counts shuffle fetches torn down by faults and
	// retried (or escalated to the AM after repeated failures).
	ShuffleRetries int
	// AMRestarts counts ApplicationMaster attempts restarted after the
	// AM's host was lost.
	AMRestarts int
}

// Duration returns end-to-end job time.
func (r Result) Duration() sim.Time { return r.Finished - r.Submitted }

// Job drives one MapReduce execution. Create with NewJob, start with
// Submit; the completion callback receives the Result.
type Job struct {
	cfg  JobConfig
	fs   *hdfs.FS
	rm   *yarn.RM
	net  *netsim.Network
	eng  *sim.Engine
	rng  *stats.RNG
	app  *yarn.App
	done func(Result)
	// client is the submitting host, kept for AM restart resubmission.
	client     netsim.NodeID
	amAttempts int

	splits     []hdfs.Block
	mapOut     []int64         // per-map output bytes (set at map end)
	mapHost    []netsim.NodeID // per-map executor
	mapEpoch   []int           // per-map attempt number (bumped on re-execution)
	mapStart   []sim.Time      // per-map earliest attempt start
	specDone   []bool          // per-map speculative attempt launched
	mapDurSum  float64         // completed map durations (seconds)
	mapDurN    int
	attemptSeq int // unique attempt counter for output paths
	mapsDone   int
	reducers   []*reducer
	redsDone   int
	redsQueued int
	result     Result
	finished   bool
	// epochCheck snapshots mapEpoch between invariant checks to assert
	// per-map attempt epochs never move backwards (lazily allocated).
	epochCheck []int

	metrics telemetry.MRMetrics
	tracer  *telemetry.Tracer
}

// SetTelemetry attaches job instrumentation (zero-value metrics and a
// nil tracer detach it). Call before Submit.
func (j *Job) SetTelemetry(m telemetry.MRMetrics, tr *telemetry.Tracer) {
	j.metrics = m
	j.tracer = tr
}

// NewJob validates the configuration and binds the job to its substrates.
func NewJob(cfg JobConfig, fs *hdfs.FS, rm *yarn.RM, rng *stats.RNG) (*Job, error) {
	cfg.applyDefaults()
	if cfg.InputPath == "" || cfg.OutputPath == "" {
		return nil, errors.New("mapreduce: input and output paths required")
	}
	if cfg.MapSelectivity < 0 || cfg.ReduceSelectivity < 0 {
		return nil, fmt.Errorf("mapreduce: negative selectivity in %q", cfg.Name)
	}
	if !fs.Exists(cfg.InputPath) {
		return nil, fmt.Errorf("mapreduce: %w: input %s", hdfs.ErrNotFound, cfg.InputPath)
	}
	net := fs.Network()
	return &Job{cfg: cfg, fs: fs, rm: rm, net: net, eng: net.Engine(), rng: rng}, nil
}

// Submit launches the job from client. done runs once with the Result
// when the job commits.
func (j *Job) Submit(client netsim.NodeID, done func(Result)) error {
	splits, err := j.fs.File(j.cfg.InputPath)
	if err != nil {
		return err
	}
	if len(splits) == 0 {
		return fmt.Errorf("mapreduce: input %s has no blocks", j.cfg.InputPath)
	}
	j.splits = splits
	j.mapOut = make([]int64, len(splits))
	j.mapHost = make([]netsim.NodeID, len(splits))
	j.mapEpoch = make([]int, len(splits))
	j.mapStart = make([]sim.Time, len(splits))
	j.specDone = make([]bool, len(splits))
	j.done = done
	j.result = Result{
		Name:      j.cfg.Name,
		Submitted: j.eng.Now(),
		Maps:      len(splits),
		Reducers:  j.cfg.NumReducers,
	}
	for _, b := range splits {
		j.result.InputBytes += b.Size
	}
	j.client = client
	j.metrics.JobsSubmitted.Inc()
	j.rm.WatchNodeFailures(j.onNodeFailed)
	j.app = j.rm.Submit(client, func(*yarn.App) { j.onAMStarted() })
	return nil
}

// onAMStarted requests a container per map split, preferring replica
// hosts, and arms the AM failure handler (a lost AM restarts until
// MaxAMAttempts is exhausted, then the job fails).
func (j *Job) onAMStarted() {
	j.app.OnAMLost(j.onAMLost)
	for i := range j.splits {
		j.requestMap(i)
	}
	if j.cfg.Speculative {
		j.eng.After(j.cfg.UmbilicalInterval, j.speculationTick)
	}
}

// onAMLost handles the AM's host dying: resubmit the application for a
// fresh AM attempt — completed-task state lives in the Job, mirroring
// MRAM job-history recovery — or fail the job once the attempt budget
// is spent. Tasks running on surviving hosts keep running; their
// reports flow to the new AM once it is placed.
func (j *Job) onAMLost() {
	if j.finished {
		return
	}
	j.amAttempts++
	if j.amAttempts >= j.cfg.MaxAMAttempts {
		j.abort()
		return
	}
	j.result.AMRestarts++
	j.metrics.AMRestarts.Inc()
	j.app = j.rm.Submit(j.client, func(*yarn.App) {
		j.app.OnAMLost(j.onAMLost)
	})
}

// speculationTick is the AM's straggler check: once half the maps have
// finished, any running map slower than the threshold × the mean
// completed-map duration gets one duplicate attempt.
func (j *Job) speculationTick() {
	if j.finished || j.mapsDone == len(j.splits) {
		return
	}
	if 2*j.mapsDone >= len(j.splits) && j.mapDurN > 0 {
		mean := j.mapDurSum / float64(j.mapDurN)
		limit := sim.Time(j.cfg.SpeculativeThreshold * mean * 1e9)
		now := j.eng.Now()
		for i := range j.splits {
			if j.mapOut[i] != 0 || j.specDone[i] || j.mapStart[i] == 0 {
				continue
			}
			if now-j.mapStart[i] > limit {
				j.specDone[i] = true
				j.result.SpeculativeMaps++
				j.metrics.MapsSpeculative.Inc()
				j.requestMap(i)
			}
		}
	}
	j.eng.After(j.cfg.UmbilicalInterval, j.speculationTick)
}

// requestMap asks YARN for a container to run (or re-run) map i.
func (j *Job) requestMap(i int) {
	j.metrics.MapAttempts.Inc()
	j.app.RequestContainer(yarn.PriorityMap, j.splits[i].Replicas, func(c *yarn.Container) {
		j.runMapTask(i, c)
	})
}

// abort fails the job after an unrecoverable loss (the AM's host died).
func (j *Job) abort() {
	if j.finished {
		return
	}
	j.finished = true
	j.result.Failed = true
	j.result.Finished = j.eng.Now()
	j.metrics.JobsFailed.Inc()
	j.traceJob()
	j.app.Finish()
	if j.done != nil {
		j.done(j.result)
	}
}

// traceJob records the job-level span once the result is final.
func (j *Job) traceJob() {
	j.tracer.Add(telemetry.Span{
		Cat: "mr", Name: "job", Attr: j.cfg.Name,
		StartNs: int64(j.result.Submitted), EndNs: int64(j.result.Finished),
	})
}

// lognormalJitter returns exp(N(0, sigma²)) — a multiplicative straggler
// factor with median 1.
func (j *Job) lognormalJitter(sigma float64) float64 {
	return math.Exp(sigma * j.rng.NormFloat64())
}

// computeDelay converts bytes at secPerMB into jittered simulated time.
func (j *Job) computeDelay(bytes int64, secPerMB float64) sim.Time {
	secs := float64(bytes) / (1 << 20) * secPerMB * j.lognormalJitter(j.cfg.StragglerSigma)
	return sim.Time(secs * 1e9)
}

// maybeFinish commits the job when every task has completed.
func (j *Job) maybeFinish() {
	if j.finished {
		return
	}
	mapOnly := j.cfg.NumReducers == 0
	if j.mapsDone < len(j.splits) {
		return
	}
	if !mapOnly && j.redsDone < j.cfg.NumReducers {
		return
	}
	j.finished = true
	j.result.Finished = j.eng.Now()
	j.metrics.JobsCompleted.Inc()
	j.traceJob()
	j.app.Finish()
	if j.done != nil {
		j.done(j.result)
	}
}
