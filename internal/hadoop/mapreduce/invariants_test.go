package mapreduce

import (
	"strings"
	"testing"

	"keddah/internal/hadoop/hdfs"
)

// finishedJob runs a small terasort-shaped job to completion and returns
// the job handle for invariant probing.
func finishedJob(t *testing.T) *Job {
	t.Helper()
	r := newRig(t, 64<<20, hdfs.Config{BlockSize: 16 << 20})
	job, err := NewJob(JobConfig{
		Name: "inv", InputPath: "/in", OutputPath: "/out",
		NumReducers: 2, MapSelectivity: 1, ReduceSelectivity: 1,
	}, r.fs, r.rm, r.rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	done := false
	if err := job.Submit(r.net.Topology().Hosts()[0], func(Result) { done = true }); err != nil {
		t.Fatal(err)
	}
	for !done {
		if !r.eng.Step() {
			t.Fatal("queue drained before job finished")
		}
	}
	return job
}

// TestJobVerifyInvariantsCatchesCorruption checks each MapReduce
// invariant fires on deliberately corrupted job state — in particular a
// duplicated (double-counted) map output — and stays silent on a
// completed healthy job.
func TestJobVerifyInvariantsCatchesCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, j *Job)
		want    string // "" = healthy, must stay nil
	}{
		{
			name:    "healthy",
			corrupt: func(t *testing.T, j *Job) {},
		},
		{
			name: "duplicated map output",
			// A re-executed map whose superseded attempt was not zeroed
			// double-counts bytes: committed outputs exceed MapOutBytes.
			corrupt: func(t *testing.T, j *Job) { j.mapOut[0] += 1000 },
			want:    "MapOutBytes",
		},
		{
			name:    "maps done drift",
			corrupt: func(t *testing.T, j *Job) { j.mapsDone-- },
			want:    "double-counted",
		},
		{
			name: "reducer fetch accounting drift",
			corrupt: func(t *testing.T, j *Job) {
				for _, r := range j.reducers {
					if r != nil {
						r.bytes++
						return
					}
				}
				t.Skip("no reducer attempt retained")
			},
			want: "fetched partitions",
		},
		{
			name:    "shuffle bytes drift",
			corrupt: func(t *testing.T, j *Job) { j.result.ShuffleBytes++ },
			want:    "ShuffleBytes",
		},
		{
			name: "map epoch moved backwards",
			corrupt: func(t *testing.T, j *Job) {
				j.mapEpoch[0] = 3
				if err := j.VerifyInvariants(); err != nil {
					t.Fatalf("snapshot check failed: %v", err)
				}
				j.mapEpoch[0] = 1
			},
			want: "epoch moved backwards",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			j := finishedJob(t)
			if err := j.VerifyInvariants(); err != nil {
				t.Fatalf("finished job fails invariants: %v", err)
			}
			tc.corrupt(t, j)
			err := j.VerifyInvariants()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("healthy job fails invariants: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("corruption %q went undetected", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestJobVerifyInvariantsNilBeforeSubmit: an unsubmitted job has no
// state to check.
func TestJobVerifyInvariantsNilBeforeSubmit(t *testing.T) {
	r := newRig(t, 16<<20, hdfs.Config{BlockSize: 16 << 20})
	job, err := NewJob(JobConfig{Name: "idle", InputPath: "/in", OutputPath: "/out", NumReducers: 1}, r.fs, r.rm, r.rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	if err := job.VerifyInvariants(); err != nil {
		t.Fatalf("unsubmitted job fails invariants: %v", err)
	}
}
