package hadoop

import (
	"testing"

	"keddah/internal/flows"
	"keddah/internal/hadoop/mapreduce"
	"keddah/internal/netsim"
	"keddah/internal/pcap"
)

// newTestCluster builds a 1 master + 8 worker single-rack cluster with a
// capture attached.
func newTestCluster(t *testing.T, seed int64) (*Cluster, *pcap.Capture) {
	t.Helper()
	topo, err := netsim.Star(9, netsim.Gbps)
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	c, err := New(topo, Config{Seed: seed})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	cap := pcap.NewCapture()
	c.Net.AddTap(cap)
	return c, cap
}

func TestClusterRunsSortJob(t *testing.T) {
	c, cap := newTestCluster(t, 1)

	var result mapreduce.Result
	err := c.Ingest("/data/in", 512<<20, func() {
		err := c.Submit(mapreduce.JobConfig{
			Name:              "sort1",
			InputPath:         "/data/in",
			OutputPath:        "/out/sort1",
			NumReducers:       4,
			MapSelectivity:    1.0,
			ReduceSelectivity: 1.0,
		}, func(r mapreduce.Result) { result = r })
		if err != nil {
			t.Errorf("submit: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if _, err := c.RunToIdle(); err != nil {
		t.Fatalf("run: %v", err)
	}

	if result.Finished == 0 {
		t.Fatal("job never finished")
	}
	if result.Maps != 4 { // 512 MiB / 128 MiB blocks
		t.Errorf("maps = %d, want 4", result.Maps)
	}
	if result.InputBytes != 512<<20 {
		t.Errorf("input bytes = %d, want %d", result.InputBytes, 512<<20)
	}
	// Sort shuffles roughly its whole input (jitter allows slack).
	lo, hi := int64(float64(result.InputBytes)*0.7), int64(float64(result.InputBytes)*1.4)
	if result.ShuffleBytes < lo || result.ShuffleBytes > hi {
		t.Errorf("shuffle bytes = %d, want within [%d, %d]", result.ShuffleBytes, lo, hi)
	}
	if result.OutputBytes <= 0 {
		t.Error("no output written")
	}

	// The capture must have seen every phase.
	ds := flows.NewDataset(cap.Truth())
	for _, ph := range flows.AllPhases {
		if ds.Count(ph) == 0 {
			t.Errorf("capture saw no %s flows", ph)
		}
	}
	// Shuffle flows ≈ maps × reducers.
	if got, want := ds.Count(flows.PhaseShuffle), 4*4; got != want {
		t.Errorf("shuffle flow count = %d, want %d", got, want)
	}
}

func TestClusterDeterministicAcrossRuns(t *testing.T) {
	run := func() (int, int64, int64) {
		c, cap := newTestCluster(t, 42)
		err := c.Ingest("/data/in", 256<<20, func() {
			err := c.Submit(mapreduce.JobConfig{
				Name:              "tera",
				InputPath:         "/data/in",
				OutputPath:        "/out/tera",
				NumReducers:       3,
				MapSelectivity:    1,
				ReduceSelectivity: 1,
			}, nil)
			if err != nil {
				t.Errorf("submit: %v", err)
			}
		})
		if err != nil {
			t.Fatalf("ingest: %v", err)
		}
		end, err := c.RunToIdle()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		ds := flows.NewDataset(cap.Truth())
		return ds.Len(), ds.Volume(""), int64(end)
	}
	n1, v1, e1 := run()
	n2, v2, e2 := run()
	if n1 != n2 || v1 != v2 || e1 != e2 {
		t.Errorf("runs diverged: (%d,%d,%d) vs (%d,%d,%d)", n1, v1, e1, n2, v2, e2)
	}
	if n1 == 0 {
		t.Fatal("no flows captured")
	}
}

func TestMapOnlyJob(t *testing.T) {
	c, cap := newTestCluster(t, 7)
	var result mapreduce.Result
	err := c.Ingest("/data/in", 256<<20, func() {
		err := c.Submit(mapreduce.JobConfig{
			Name:           "maponly",
			InputPath:      "/data/in",
			OutputPath:     "/out/mo",
			NumReducers:    0,
			MapSelectivity: 0.5,
		}, func(r mapreduce.Result) { result = r })
		if err != nil {
			t.Errorf("submit: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if _, err := c.RunToIdle(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if result.ShuffleBytes != 0 {
		t.Errorf("map-only job shuffled %d bytes", result.ShuffleBytes)
	}
	if result.OutputBytes <= 0 {
		t.Error("map-only job wrote no output")
	}
	ds := flows.NewDataset(cap.Truth())
	if ds.Count(flows.PhaseShuffle) != 0 {
		t.Errorf("capture saw %d shuffle flows in a map-only job", ds.Count(flows.PhaseShuffle))
	}
}
