// Package hadoop assembles the simulated cluster: one master host running
// the NameNode and ResourceManager, worker hosts each running a DataNode
// and NodeManager, all over a shared netsim.Network — the testbed the
// Keddah toolchain captures from.
package hadoop

import (
	"errors"
	"fmt"

	"keddah/internal/hadoop/hdfs"
	"keddah/internal/hadoop/mapreduce"
	"keddah/internal/hadoop/yarn"
	"keddah/internal/netsim"
	"keddah/internal/sim"
	"keddah/internal/stats"
	"keddah/internal/telemetry"
)

// Config assembles a cluster over an existing topology.
type Config struct {
	HDFS hdfs.Config
	YARN yarn.Config
	// Net tunes the underlying network simulator.
	Net netsim.Config
	// Engine, when non-nil, hosts the cluster's events instead of a
	// fresh private engine. Multi-pod captures place several clusters on
	// the shards of one sim.ShardedEngine this way; everything the
	// cluster schedules stays on the given engine.
	Engine *sim.Engine
	// Seed drives every stochastic choice in the cluster; equal seeds
	// give byte-identical traffic.
	Seed int64
}

// Cluster is a ready-to-run simulated Hadoop deployment.
type Cluster struct {
	Eng     *sim.Engine
	Net     *netsim.Network
	FS      *hdfs.FS
	RM      *yarn.RM
	rng     *stats.RNG
	master  netsim.NodeID
	workers []netsim.NodeID
	pending int
	started bool
	tel     *telemetry.Telemetry
	jobs    []*mapreduce.Job
	// stepCheck, when set, runs after every event RunToIdle processes;
	// a non-nil error aborts the run (the invariant-checking hook).
	stepCheck func() error
}

// SetStepCheck installs a hook run after every event processed by
// RunToIdle. The invariants layer uses it to sample cross-layer checks;
// a returned error stops the run and is propagated to the caller.
func (c *Cluster) SetStepCheck(fn func() error) { c.stepCheck = fn }

// Jobs returns every MapReduce job submitted to the cluster, in
// submission order (live and finished alike).
func (c *Cluster) Jobs() []*mapreduce.Job {
	out := make([]*mapreduce.Job, len(c.jobs))
	copy(out, c.jobs)
	return out
}

// AttachTelemetry wires instrumentation through every cluster layer:
// engine event counts, network flow metrics, HDFS and YARN counters and
// spans, and (via Submit) per-job MapReduce metrics. Attach before
// submitting work; a nil receiver or nil argument is a no-op.
func (c *Cluster) AttachTelemetry(t *telemetry.Telemetry) {
	if c == nil || t == nil {
		return
	}
	c.tel = t
	c.Eng.SetMetrics(t.Sim)
	c.Net.SetMetrics(t.Net)
	c.FS.SetTelemetry(t.HDFS, t.Trace)
	c.RM.SetTelemetry(t.Yarn, t.Trace)
}

// Telemetry returns the attached instrumentation, or nil.
func (c *Cluster) Telemetry() *telemetry.Telemetry { return c.tel }

// New builds a cluster on topo: the first host is the master (NameNode +
// ResourceManager), the rest are workers (DataNode + NodeManager each).
func New(topo *netsim.Topology, cfg Config) (*Cluster, error) {
	hosts := topo.Hosts()
	if len(hosts) < 2 {
		return nil, errors.New("hadoop: need a master and at least one worker host")
	}
	eng := cfg.Engine
	if eng == nil {
		eng = sim.New()
	}
	net := netsim.NewNetwork(eng, topo, cfg.Net)
	rng := stats.NewRNG(cfg.Seed)

	master := hosts[0]
	workers := hosts[1:]

	fs, err := hdfs.New(net, master, workers, cfg.HDFS, rng.Fork())
	if err != nil {
		return nil, fmt.Errorf("hadoop: hdfs: %w", err)
	}
	rm, err := yarn.New(net, master, workers, cfg.YARN, rng.Fork())
	if err != nil {
		return nil, fmt.Errorf("hadoop: yarn: %w", err)
	}
	return &Cluster{
		Eng:     eng,
		Net:     net,
		FS:      fs,
		RM:      rm,
		rng:     rng,
		master:  master,
		workers: workers,
	}, nil
}

// Master returns the master host.
func (c *Cluster) Master() netsim.NodeID { return c.master }

// Workers returns the worker hosts.
func (c *Cluster) Workers() []netsim.NodeID {
	out := make([]netsim.NodeID, len(c.workers))
	copy(out, c.workers)
	return out
}

// RNG returns a fresh child RNG stream for callers that need one.
func (c *Cluster) RNG() *stats.RNG { return c.rng.Fork() }

// Pending returns how many submitted ingests and jobs have not completed
// yet. The multi-pod window scheduler polls it at barriers, where the
// serial loop below would have checked it per event.
func (c *Cluster) Pending() int { return c.pending }

// Start launches the heartbeat machinery without entering the serial run
// loop — multi-pod captures start every pod, then advance all of them
// together through the sharded scheduler's windows.
func (c *Cluster) Start() { c.start() }

// start launches the periodic heartbeat machinery exactly once.
func (c *Cluster) start() {
	if c.started {
		return
	}
	c.started = true
	c.FS.StartHeartbeats()
	c.RM.Start()
}

// Ingest loads a dataset into HDFS from the master gateway (the write
// replicates through normal pipelines, generating the load-time traffic
// the paper observes). Completion is tracked like a job for RunToIdle.
func (c *Cluster) Ingest(path string, size int64, done func()) error {
	c.pending++
	err := c.FS.WriteFile(c.master, path, size, 0, "ingest", func([]hdfs.Block) {
		c.pending--
		if done != nil {
			done()
		}
	})
	if err != nil {
		c.pending--
		return err
	}
	return nil
}

// Submit queues a MapReduce job from the master gateway. done receives
// the job result.
func (c *Cluster) Submit(cfg mapreduce.JobConfig, done func(mapreduce.Result)) error {
	job, err := mapreduce.NewJob(cfg, c.FS, c.RM, c.rng.Fork())
	if err != nil {
		return err
	}
	if c.tel != nil {
		job.SetTelemetry(c.tel.MR, c.tel.Trace)
	}
	c.jobs = append(c.jobs, job)
	c.pending++
	return job.Submit(c.master, func(r mapreduce.Result) {
		c.pending--
		if done != nil {
			done(r)
		}
	})
}

// validWorker rejects failure targets that are not cluster workers up
// front, so a bad schedule errors at injection time instead of panicking
// inside an event.
func (c *Cluster) validWorker(host netsim.NodeID) error {
	if host == c.master {
		return errors.New("hadoop: failing the master is not modelled")
	}
	for _, w := range c.workers {
		if w == host {
			return nil
		}
	}
	return fmt.Errorf("hadoop: host %d is not a cluster worker", host)
}

// FailWorker schedules a whole-worker failure (DataNode + NodeManager) at
// simulated time t: running containers are lost and re-executed by their
// jobs, and the NameNode re-replicates the node's blocks — the failure
// traffic a capture of a degraded cluster contains. Failing an
// already-failed worker is a clean no-op, and scheduling a failure before
// any job is submitted is safe (the cluster just starts degraded).
func (c *Cluster) FailWorker(host netsim.NodeID, at sim.Time) error {
	if err := c.validWorker(host); err != nil {
		return err
	}
	_, err := c.Eng.At(at, func() {
		if err := c.FS.FailDataNode(host); err != nil {
			panic(fmt.Sprintf("hadoop: fail datanode: %v", err))
		}
		if err := c.RM.FailNode(host); err != nil {
			panic(fmt.Sprintf("hadoop: fail nodemanager: %v", err))
		}
	})
	return err
}

// CrashWorker schedules a transient whole-worker crash at `at` with
// rejoin at recoverAt: the host drops off the network (its access links
// go down, resetting every connection it was serving), its DataNode and
// NodeManager stop, and the cluster *detects* the loss through the
// substrates' own timers — ReplicationDetectionDelay and NMExpiry —
// rather than an oracle. At recoverAt the links come back and the
// daemons re-register (block report, NM registration) and rejoin.
func (c *Cluster) CrashWorker(host netsim.NodeID, at, recoverAt sim.Time) error {
	if err := c.validWorker(host); err != nil {
		return err
	}
	if recoverAt <= at {
		return fmt.Errorf("hadoop: crash recovery at %v not after crash at %v", recoverAt, at)
	}
	links := c.accessLinks(host)
	if _, err := c.Eng.At(at, func() {
		// Daemon state first so fault-recovery paths triggered by the
		// aborts below already see the node as dead.
		if err := c.FS.CrashDataNode(host); err != nil {
			panic(fmt.Sprintf("hadoop: crash datanode: %v", err))
		}
		if err := c.RM.CrashNode(host); err != nil {
			panic(fmt.Sprintf("hadoop: crash nodemanager: %v", err))
		}
		for _, lid := range links {
			if err := c.Net.SetLinkState(lid, false); err != nil {
				panic(fmt.Sprintf("hadoop: crash link down: %v", err))
			}
		}
	}); err != nil {
		return err
	}
	_, err := c.Eng.At(recoverAt, func() {
		// Links first so the re-registration flows have routes.
		for _, lid := range links {
			if err := c.Net.SetLinkState(lid, true); err != nil {
				panic(fmt.Sprintf("hadoop: crash link up: %v", err))
			}
		}
		if err := c.FS.RecoverDataNode(host); err != nil {
			panic(fmt.Sprintf("hadoop: recover datanode: %v", err))
		}
		if err := c.RM.RecoverNode(host); err != nil {
			panic(fmt.Sprintf("hadoop: recover nodemanager: %v", err))
		}
	})
	return err
}

// accessLinks returns every directed link touching host.
func (c *Cluster) accessLinks(host netsim.NodeID) []netsim.LinkID {
	var out []netsim.LinkID
	for lid, l := range c.Net.Topology().Links() {
		if l.From == host || l.To == host {
			out = append(out, netsim.LinkID(lid))
		}
	}
	return out
}

// RunToIdle starts the cluster, runs the event loop until every pending
// ingest and job has completed, shuts the periodic machinery down, and
// drains remaining events. It returns the simulated completion time.
func (c *Cluster) RunToIdle() (sim.Time, error) {
	c.start()
	for c.pending > 0 {
		if !c.Eng.Step() {
			return c.Eng.Now(), fmt.Errorf("hadoop: event queue drained with %d tasks pending", c.pending)
		}
		if c.stepCheck != nil {
			if err := c.stepCheck(); err != nil {
				return c.Eng.Now(), err
			}
		}
	}
	end := c.Eng.Now()
	c.FS.Shutdown()
	c.RM.Shutdown()
	if _, err := c.Eng.RunAll(); err != nil {
		return end, fmt.Errorf("hadoop: drain: %w", err)
	}
	return end, nil
}
