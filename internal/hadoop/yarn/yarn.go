// Package yarn simulates the Hadoop 2.x resource layer: a ResourceManager,
// one NodeManager per host with a fixed container capacity, periodic
// NM→RM and AM→RM heartbeat control flows, a FIFO scheduler with delay
// scheduling for data locality, and NodeManager failure with container
// loss notification. Its observable output is (a) where and when
// containers run — which determines HDFS and shuffle flow endpoints —
// and (b) the control-plane traffic Keddah classifies.
package yarn

import (
	"errors"
	"fmt"

	"keddah/internal/flows"
	"keddah/internal/netsim"
	"keddah/internal/sim"
	"keddah/internal/stats"
	"keddah/internal/telemetry"
)

// Config holds the resource-layer parameters.
type Config struct {
	// SlotsPerNode is the concurrent container capacity of each
	// NodeManager (default 4).
	SlotsPerNode int
	// NMHeartbeat is the NodeManager heartbeat period (default 1s).
	NMHeartbeat sim.Time
	// AMHeartbeat is the ApplicationMaster allocate-loop period
	// (default 1s).
	AMHeartbeat sim.Time
	// LocalityWait is how long a request holds out for a preferred host
	// before accepting any host (default 3s — three scheduling rounds).
	LocalityWait sim.Time
	// ContainerLaunchDelay models localization + JVM start (default 800ms).
	ContainerLaunchDelay sim.Time
	// ControlBytes is the size of one RPC exchange (default 512 B).
	ControlBytes int64
	// NMExpiry is how long the RM waits without NodeManager heartbeats
	// before declaring the node lost (default 10s; real YARN's
	// nm.liveness-monitor.expiry-interval-ms is 10 min, scaled down so
	// detection sits within job timescales the way
	// DefaultReplicationDetectionDelay is).
	NMExpiry sim.Time
}

func (c *Config) applyDefaults() {
	if c.SlotsPerNode <= 0 {
		c.SlotsPerNode = 4
	}
	if c.NMHeartbeat <= 0 {
		c.NMHeartbeat = 1_000_000_000
	}
	if c.AMHeartbeat <= 0 {
		c.AMHeartbeat = 1_000_000_000
	}
	if c.LocalityWait <= 0 {
		c.LocalityWait = 3_000_000_000
	}
	if c.ContainerLaunchDelay <= 0 {
		c.ContainerLaunchDelay = 800_000_000
	}
	if c.ControlBytes <= 0 {
		c.ControlBytes = 512
	}
	if c.NMExpiry <= 0 {
		c.NMExpiry = 10_000_000_000
	}
}

// nodeManager tracks one host's container slots.
type nodeManager struct {
	host netsim.NodeID
	used int
	// dead marks a node the RM has declared lost (instant FailNode or
	// heartbeat expiry); crashed marks a node whose NM process is down
	// but not yet detected — it stops heartbeating and picking up work,
	// while the RM still counts its state as live.
	dead    bool
	crashed bool
	// crashedAt is when the current crash began (valid while crashed);
	// invariant checks use it to bound detection latency by NMExpiry.
	crashedAt sim.Time
	// epoch counts life transitions; a pending expiry only fires when the
	// node's epoch is unchanged, so crash→recover→crash sequences each
	// get their own detection timer.
	epoch int
	// hbSeq invalidates stale heartbeat loops across crash/recover cycles.
	hbSeq      int
	containers []*Container
}

// Priority orders container requests; lower values win. MapReduce uses
// PriorityMap for map tasks and PriorityReduce for reducers so maps are
// never starved by waiting reducers (mirroring the RMContainerAllocator).
type Priority int

// Request priorities in scheduling order.
const (
	PriorityAM     Priority = 0
	PriorityMap    Priority = 1
	PriorityReduce Priority = 2
)

// ContainerRequest asks for one container, optionally preferring hosts
// where the task's data lives.
type ContainerRequest struct {
	app       *App
	priority  Priority
	preferred map[netsim.NodeID]bool
	submitted sim.Time
	assign    func(c *Container)
	cancelled bool
}

// Container is a granted execution slot on one host. The owner runs its
// task, registers a loss handler (fired if the host fails while the
// container runs), and releases the slot when done.
type Container struct {
	app       *App
	nm        *nodeManager
	req       *ContainerRequest
	onLost    func()
	released  bool
	lost      bool
	delivered bool
}

// Host returns the node the container runs on.
func (c *Container) Host() netsim.NodeID { return c.nm.host }

// Lost reports whether the container's host failed while it was running.
func (c *Container) Lost() bool { return c.lost }

// OnLost registers the handler fired if the container's host fails.
func (c *Container) OnLost(fn func()) { c.onLost = fn }

// Release frees the slot and pumps the scheduler. Releasing a lost or
// already-released container is a no-op.
func (c *Container) Release() {
	if c.released || c.lost {
		return
	}
	c.released = true
	c.nm.used--
	c.nm.removeContainer(c)
	c.app.running--
	c.app.rm.pump()
}

func (nm *nodeManager) removeContainer(c *Container) {
	for i, other := range nm.containers {
		if other == c {
			nm.containers = append(nm.containers[:i], nm.containers[i+1:]...)
			return
		}
	}
}

// ErrUnknownNode reports an operation on a host with no NodeManager.
var ErrUnknownNode = errors.New("yarn: unknown node")

// RM is the ResourceManager plus the per-host NodeManagers.
type RM struct {
	cfg     Config
	net     *netsim.Network
	eng     *sim.Engine
	rng     *stats.RNG
	rmHost  netsim.NodeID
	nms     []*nodeManager
	nmIndex map[netsim.NodeID]*nodeManager
	queue   []*ContainerRequest
	apps    int
	stopped bool

	// Stats.
	Assigned       int64
	LocalAssigned  int64
	LostContainers int64

	failureWatchers []func(host netsim.NodeID)

	metrics telemetry.YarnMetrics
	tracer  *telemetry.Tracer
}

// SetTelemetry attaches resource-layer instrumentation (zero-value
// metrics and a nil tracer detach it).
func (rm *RM) SetTelemetry(m telemetry.YarnMetrics, tr *telemetry.Tracer) {
	rm.metrics = m
	rm.tracer = tr
}

// New creates an RM with a NodeManager on each worker host.
func New(net *netsim.Network, rmHost netsim.NodeID, workers []netsim.NodeID, cfg Config, rng *stats.RNG) (*RM, error) {
	cfg.applyDefaults()
	if len(workers) == 0 {
		return nil, errors.New("yarn: need at least one worker")
	}
	rm := &RM{
		cfg:     cfg,
		net:     net,
		eng:     net.Engine(),
		rng:     rng,
		rmHost:  rmHost,
		nmIndex: make(map[netsim.NodeID]*nodeManager, len(workers)),
	}
	for _, w := range workers {
		nm := &nodeManager{host: w}
		rm.nms = append(rm.nms, nm)
		rm.nmIndex[w] = nm
	}
	return rm, nil
}

// Config returns the resource-layer configuration.
func (rm *RM) Config() Config { return rm.cfg }

// TotalSlots returns cluster-wide container capacity on live nodes.
func (rm *RM) TotalSlots() int {
	n := 0
	for _, nm := range rm.nms {
		if !nm.dead {
			n += rm.cfg.SlotsPerNode
		}
	}
	return n
}

// Start launches NodeManager heartbeats. They stop after Shutdown.
func (rm *RM) Start() {
	for _, nm := range rm.nms {
		jitter := sim.Time(rm.rng.Float64() * float64(rm.cfg.NMHeartbeat))
		rm.startHeartbeatLoop(nm, jitter)
	}
}

// startHeartbeatLoop begins a fresh heartbeat loop for nm after delay,
// invalidating any loop left over from before a crash/recover cycle.
func (rm *RM) startHeartbeatLoop(nm *nodeManager, delay sim.Time) {
	nm.hbSeq++
	seq := nm.hbSeq
	rm.eng.After(delay, func() { rm.nmHeartbeat(nm, seq) })
}

// Shutdown stops heartbeat rescheduling.
func (rm *RM) Shutdown() { rm.stopped = true }

// FailNode kills the NodeManager on host: its heartbeats stop, it is
// excluded from scheduling, and every running container is lost (firing
// the owners' loss handlers). The host itself stays reachable on the
// network — this models a daemon/agent failure, the common case.
func (rm *RM) FailNode(host netsim.NodeID) error {
	nm, ok := rm.nmIndex[host]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, host)
	}
	if nm.dead {
		return nil
	}
	rm.expireNode(nm)
	return nil
}

// expireNode declares a node lost: the common back half of the instant
// FailNode path and heartbeat-expiry detection after CrashNode.
func (rm *RM) expireNode(nm *nodeManager) {
	nm.dead = true
	rm.metrics.NodeExpiries.Inc()
	lost := nm.containers
	nm.containers = nil
	nm.used = 0
	for _, c := range lost {
		c.lost = true
		c.app.running--
		rm.LostContainers++
		rm.metrics.ContainersLost.Inc()
		if !c.delivered {
			// The host died during container launch: the owner never
			// saw the handle, so the original request goes back into
			// the queue transparently.
			c.req.submitted = rm.eng.Now()
			rm.enqueue(c.req)
			continue
		}
		if c.onLost != nil {
			c.onLost()
		}
	}
	// Applications learn about the node loss (as they do from the RM's
	// node reports) so they can re-run completed work that lived there.
	for _, fn := range rm.failureWatchers {
		fn(nm.host)
	}
	// Freed capacity elsewhere may now satisfy queued requests.
	rm.pump()
}

// CrashNode models a whole-node (or NM-process) crash with realistic
// delayed detection: heartbeats stop immediately, but the RM keeps the
// node's state until NMExpiry elapses without a beat, then declares it
// lost exactly as FailNode does. A node recovered before expiry was
// never "failed" from the RM's point of view — only a heartbeat gap
// happened. Crashing a crashed or dead node is a no-op.
func (rm *RM) CrashNode(host netsim.NodeID) error {
	nm, ok := rm.nmIndex[host]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, host)
	}
	if nm.dead || nm.crashed {
		return nil
	}
	nm.crashed = true
	nm.crashedAt = rm.eng.Now()
	nm.epoch++
	e := nm.epoch
	rm.eng.After(rm.cfg.NMExpiry, func() {
		if nm.epoch == e && nm.crashed && !nm.dead {
			rm.expireNode(nm)
		}
	})
	return nil
}

// RecoverNode rejoins a crashed or lost NodeManager: it re-registers
// with the RM and resumes heartbeating, and — when the node had already
// been declared lost — its slots go back into the schedulable pool.
// Containers lost in the outage stay lost. Recovering a live node is a
// no-op.
func (rm *RM) RecoverNode(host netsim.NodeID) error {
	nm, ok := rm.nmIndex[host]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, host)
	}
	if !nm.dead && !nm.crashed {
		return nil
	}
	wasDead := nm.dead
	nm.dead = false
	nm.crashed = false
	nm.epoch++
	rm.metrics.NodeRejoins.Inc()
	if nm.host != rm.rmHost {
		rm.control(nm.host, rm.rmHost, flows.PortRMTracker, "yarn/nmRegister")
	}
	rm.startHeartbeatLoop(nm, rm.cfg.NMHeartbeat)
	if wasDead {
		// Recovered slots can serve queued requests right away.
		rm.pump()
	}
	return nil
}

// WatchNodeFailures registers fn to run whenever a NodeManager fails.
func (rm *RM) WatchNodeFailures(fn func(host netsim.NodeID)) {
	rm.failureWatchers = append(rm.failureWatchers, fn)
}

// NodeAlive reports whether host's NodeManager is running.
func (rm *RM) NodeAlive(host netsim.NodeID) bool {
	nm, ok := rm.nmIndex[host]
	return ok && !nm.dead
}

func (rm *RM) nmHeartbeat(nm *nodeManager, seq int) {
	if rm.stopped || nm.dead || nm.crashed || seq != nm.hbSeq {
		return
	}
	if nm.host != rm.rmHost {
		rm.metrics.NMHeartbeats.Inc()
		rm.control(nm.host, rm.rmHost, flows.PortRMTracker, "yarn/nmHeartbeat")
	}
	rm.scheduleOn(nm)
	rm.eng.After(rm.cfg.NMHeartbeat, func() { rm.nmHeartbeat(nm, seq) })
}

// control fires a small RPC exchange flow. Negative endpoints (no AM
// placed yet, say) are skipped.
func (rm *RM) control(src, dst netsim.NodeID, port int, label string) {
	if src == dst || src < 0 || dst < 0 {
		return
	}
	_, err := rm.net.StartFlow(netsim.FlowSpec{
		Src:       src,
		Dst:       dst,
		SrcPort:   32768 + rm.rng.Intn(28232),
		DstPort:   port,
		SizeBytes: rm.cfg.ControlBytes,
		Label:     label,
	})
	if err != nil {
		panic(fmt.Sprintf("yarn: control flow: %v", err))
	}
}

// scheduleOn assigns queued requests to a heartbeating NodeManager.
// Requests are considered in priority order; within a priority, requests
// preferring this host (or indifferent) win first (data locality), then
// any request that has out-waited LocalityWait, FIFO within each class.
func (rm *RM) scheduleOn(nm *nodeManager) {
	if nm.dead || nm.crashed {
		return
	}
	now := rm.eng.Now()
	for nm.used < rm.cfg.SlotsPerNode {
		idx := -1
		for pri := PriorityAM; pri <= PriorityReduce && idx < 0; pri++ {
			// Pass 1: oldest request at this priority preferring this
			// host (or with no preference).
			for i, req := range rm.queue {
				if req.cancelled || req.priority != pri {
					continue
				}
				if len(req.preferred) == 0 || req.preferred[nm.host] {
					idx = i
					break
				}
			}
			// Pass 2: oldest request at this priority that has waited
			// out its locality delay.
			if idx < 0 {
				for i, req := range rm.queue {
					if req.cancelled || req.priority != pri {
						continue
					}
					if now-req.submitted >= rm.cfg.LocalityWait {
						idx = i
						break
					}
				}
			}
		}
		if idx < 0 {
			return
		}
		req := rm.queue[idx]
		rm.queue = append(rm.queue[:idx], rm.queue[idx+1:]...)
		rm.grant(nm, req)
	}
}

func (rm *RM) grant(nm *nodeManager, req *ContainerRequest) {
	nm.used++
	rm.Assigned++
	rm.metrics.ContainersGranted.Inc()
	if req.preferred[nm.host] {
		rm.LocalAssigned++
		rm.metrics.ContainersLocal.Inc()
	}
	rm.tracer.Add(telemetry.Span{
		Cat: "yarn", Name: "schedule", Attr: fmt.Sprintf("app%d/pri%d", req.app.id, req.priority),
		StartNs: int64(req.submitted), EndNs: int64(rm.eng.Now()),
	})
	req.app.running++
	c := &Container{app: req.app, nm: nm, req: req}
	nm.containers = append(nm.containers, c)
	// Container launch: RM→NM start-container RPC, then localization delay.
	rm.control(rm.rmHost, nm.host, flows.PortNMIPC, "yarn/startContainer")
	rm.eng.After(rm.cfg.ContainerLaunchDelay, func() {
		if c.lost {
			return // host failed during launch; request was re-queued
		}
		c.delivered = true
		req.assign(c)
	})
}

// pump retries scheduling across all NodeManagers; used when capacity
// frees up between heartbeats.
func (rm *RM) pump() {
	for _, nm := range rm.nms {
		if !nm.dead && !nm.crashed && nm.used < rm.cfg.SlotsPerNode {
			rm.scheduleOn(nm)
		}
	}
}

// App is one submitted application (a MapReduce job's YARN footprint).
type App struct {
	rm      *RM
	id      int
	am      *Container
	running int
	done    bool
}

// Submit registers an application from client: the submission RPC, AM
// container allocation, and the AM heartbeat loop. onAM runs once the AM
// container is up, receiving its host.
func (rm *RM) Submit(client netsim.NodeID, onAM func(app *App)) *App {
	rm.apps++
	app := &App{rm: rm, id: rm.apps}
	rm.control(client, rm.rmHost, flows.PortRMClient, "yarn/submitApp")
	// The AM container itself goes through the scheduler, no preference.
	rm.enqueue(&ContainerRequest{
		app:       app,
		priority:  PriorityAM,
		submitted: rm.eng.Now(),
		assign: func(c *Container) {
			if app.done {
				// The job finished (or aborted) while this AM attempt
				// was still queued; give the slot straight back.
				c.Release()
				return
			}
			app.am = c
			rm.eng.After(0, func() { app.amHeartbeat() })
			onAM(app)
		},
	})
	return app
}

func (rm *RM) enqueue(req *ContainerRequest) {
	rm.queue = append(rm.queue, req)
	rm.metrics.QueueDepthMax.SetMax(float64(len(rm.queue)))
}

// ID returns the application's cluster-unique id.
func (a *App) ID() int { return a.id }

// AMHost returns the host running the ApplicationMaster, or -1 if the
// AM container has not been granted yet.
func (a *App) AMHost() netsim.NodeID {
	if a.am == nil {
		return -1
	}
	return a.am.Host()
}

// OnAMLost registers the handler fired if the AM's host fails.
func (a *App) OnAMLost(fn func()) { a.am.OnLost(fn) }

func (a *App) amHeartbeat() {
	if a.done || a.rm.stopped || a.am.lost {
		return
	}
	a.rm.metrics.AMHeartbeats.Inc()
	a.rm.control(a.AMHost(), a.rm.rmHost, flows.PortRMScheduler, "yarn/amHeartbeat")
	a.rm.eng.After(a.rm.cfg.AMHeartbeat, func() { a.amHeartbeat() })
}

// RequestContainer asks for one task container at the given priority,
// preferring the given hosts (nil for no preference). assign runs on
// grant with the container handle.
func (a *App) RequestContainer(pri Priority, preferred []netsim.NodeID, assign func(c *Container)) {
	var pref map[netsim.NodeID]bool
	if len(preferred) > 0 {
		pref = make(map[netsim.NodeID]bool, len(preferred))
		for _, h := range preferred {
			pref[h] = true
		}
	}
	a.rm.enqueue(&ContainerRequest{
		app:       a,
		priority:  pri,
		preferred: pref,
		submitted: a.rm.eng.Now(),
		assign:    assign,
	})
}

// Finish unregisters the application: stops the AM heartbeat and frees
// the AM container slot.
func (a *App) Finish() {
	if a.done {
		return
	}
	a.done = true
	if a.am == nil {
		// Finished before the AM container was granted (a restart window);
		// the queued request releases itself on grant.
		return
	}
	if !a.am.lost {
		a.rm.control(a.AMHost(), a.rm.rmHost, flows.PortRMScheduler, "yarn/unregisterAM")
	}
	a.am.Release()
}
