package yarn

import (
	"strings"
	"testing"
)

// busyRM builds an RM with a running AM plus allocated containers.
func busyRM(t *testing.T) *RM {
	t.Helper()
	rm, net, _ := testRM(t, 4, Config{SlotsPerNode: 2})
	rm.Start()
	var am *App
	rm.Submit(net.Topology().Hosts()[0], func(a *App) { am = a })
	drainUntil(t, net.Engine(), func() bool { return am != nil })
	granted := 0
	am.RequestContainer(PriorityMap, nil, func(*Container) { granted++ })
	am.RequestContainer(PriorityMap, nil, func(*Container) { granted++ })
	drainUntil(t, net.Engine(), func() bool { return granted == 2 })
	return rm
}

// TestYarnVerifyInvariantsCatchesCorruption checks the slot-accounting
// and failure-detection invariants fire on corrupted RM state and stay
// silent on a healthy allocation.
func TestYarnVerifyInvariantsCatchesCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(rm *RM)
		want    string // "" = healthy, must stay nil
	}{
		{
			name:    "healthy",
			corrupt: func(rm *RM) {},
		},
		{
			name:    "slot counter drift",
			corrupt: func(rm *RM) { rm.nms[0].used++ },
			want:    "containers",
		},
		{
			name: "dead node holding containers",
			corrupt: func(rm *RM) {
				for _, nm := range rm.nms {
					if nm.used > 0 {
						nm.dead = true
						return
					}
				}
				t.Fatal("no node holds a container")
			},
			want: "dead node",
		},
		{
			name: "crash detection missed past NMExpiry",
			corrupt: func(rm *RM) {
				nm := rm.nms[0]
				nm.crashed = true
				// Backdate the crash so now is already past the expiry
				// deadline with no detection recorded.
				nm.crashedAt = rm.eng.Now() - 2*rm.cfg.NMExpiry
			},
			want: "undetected",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rm := busyRM(t)
			if err := rm.VerifyInvariants(); err != nil {
				t.Fatalf("busy RM fails invariants: %v", err)
			}
			tc.corrupt(rm)
			err := rm.VerifyInvariants()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("healthy RM fails invariants: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("corruption %q went undetected", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
