package yarn

import "fmt"

// VerifyInvariants checks the resource layer's slot accounting and
// failure-detection deadlines. It is strictly read-only: no flows, no
// events, no randomness.
//
// Checked properties:
//   - Per NodeManager: the used-slot counter equals the number of held
//     containers and stays within [0, SlotsPerNode].
//   - A node declared lost holds no containers and no slots.
//   - A crashed node is declared lost no later than NMExpiry after the
//     crash (heartbeat-expiry detection cannot be missed).
//   - Cluster-wide, containers on live nodes never exceed TotalSlots.
func (rm *RM) VerifyInvariants() error {
	now := rm.eng.Now()
	total := 0
	for _, nm := range rm.nms {
		if nm.used != len(nm.containers) {
			return fmt.Errorf("yarn: node %d used=%d but holds %d containers", nm.host, nm.used, len(nm.containers))
		}
		if nm.used < 0 || nm.used > rm.cfg.SlotsPerNode {
			return fmt.Errorf("yarn: node %d used=%d outside [0, %d]", nm.host, nm.used, rm.cfg.SlotsPerNode)
		}
		if nm.dead && nm.used != 0 {
			return fmt.Errorf("yarn: dead node %d still holds %d containers", nm.host, nm.used)
		}
		if nm.crashed && !nm.dead && now > nm.crashedAt+rm.cfg.NMExpiry {
			return fmt.Errorf("yarn: node %d crashed at t=%dns, undetected at t=%dns (NMExpiry %dns)",
				nm.host, nm.crashedAt, now, rm.cfg.NMExpiry)
		}
		if !nm.dead {
			total += nm.used
		}
	}
	if slots := rm.TotalSlots(); total > slots {
		return fmt.Errorf("yarn: %d containers on live nodes exceed %d cluster slots", total, slots)
	}
	return nil
}
